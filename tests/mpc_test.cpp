#include <gtest/gtest.h>

#include "circuits/arith_circuit.h"
#include "circuits/boolean_circuit.h"
#include "common/error.h"
#include "he/paillier.h"
#include "mpc/arith_protocol.h"
#include "mpc/yao.h"
#include "mpc/yao_protocol.h"
#include "net/network.h"
#include "ot/group.h"

namespace spfe::mpc {
namespace {

using circuits::ArithCircuit;
using circuits::BooleanCircuit;
using circuits::WireBundle;
using circuits::WireId;

std::vector<bool> to_bits(std::uint64_t v, std::size_t width) {
  std::vector<bool> bits(width);
  for (std::size_t i = 0; i < width; ++i) bits[i] = ((v >> i) & 1) != 0;
  return bits;
}

std::uint64_t from_bits(const std::vector<bool>& bits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) v |= std::uint64_t(1) << i;
  }
  return v;
}

// ---- Garbling (no network) --------------------------------------------------

TEST(YaoGarble, AllGateKindsMatchPlainEval) {
  BooleanCircuit c(2);
  c.add_output(c.xor_gate(0, 1));
  c.add_output(c.and_gate(0, 1));
  c.add_output(c.or_gate(0, 1));
  c.add_output(c.not_gate(0));
  c.add_output(c.const_wire(true));
  c.add_output(c.const_wire(false));

  crypto::Prg prg("garble-gates");
  for (int mask = 0; mask < 4; ++mask) {
    const auto inputs = to_bits(static_cast<std::uint64_t>(mask), 2);
    const GarblingResult g = garble(c, prg);
    std::vector<Label> active;
    for (std::size_t i = 0; i < 2; ++i) active.push_back(g.input_labels[i].get(inputs[i]));
    EXPECT_EQ(evaluate(c, g.garbled, active), c.eval(inputs)) << "mask=" << mask;
  }
}

TEST(YaoGarble, AdderCircuitExhaustive) {
  constexpr std::size_t kW = 4;
  BooleanCircuit c(2 * kW);
  WireBundle a, b;
  for (std::size_t i = 0; i < kW; ++i) a.push_back(c.input(i));
  for (std::size_t i = 0; i < kW; ++i) b.push_back(c.input(kW + i));
  c.add_outputs(circuits::build_add(c, a, b));

  crypto::Prg prg("garble-adder");
  const GarblingResult g = garble(c, prg);
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      std::vector<bool> in = to_bits(x, kW);
      const auto yb = to_bits(y, kW);
      in.insert(in.end(), yb.begin(), yb.end());
      std::vector<Label> active;
      for (std::size_t i = 0; i < in.size(); ++i) active.push_back(g.input_labels[i].get(in[i]));
      EXPECT_EQ(from_bits(evaluate(c, g.garbled, active)), x + y);
    }
  }
}

TEST(YaoGarble, FreeXorProducesNoTables) {
  BooleanCircuit c(2);
  c.add_output(c.xor_gate(0, 1));
  c.add_output(c.not_gate(0));
  crypto::Prg prg("free");
  const GarblingResult g = garble(c, prg);
  EXPECT_TRUE(g.garbled.tables.empty());
}

TEST(YaoGarble, TableCountMatchesNonfreeGates) {
  BooleanCircuit c(3);
  c.and_gate(0, 1);
  c.or_gate(1, 2);
  c.xor_gate(0, 2);
  crypto::Prg prg("tables");
  const GarblingResult g = garble(c, prg);
  EXPECT_EQ(g.garbled.tables.size(), c.nonfree_gate_count());
}

TEST(YaoGarble, SerializationRoundTrip) {
  BooleanCircuit c(2);
  c.add_output(c.and_gate(0, 1));
  c.add_output(c.const_wire(true));
  crypto::Prg prg("ser");
  const GarblingResult g = garble(c, prg);
  const Bytes wire = g.garbled.serialize();
  const GarbledCircuit gc2 = GarbledCircuit::deserialize(wire);
  std::vector<Label> active = {g.input_labels[0].get(true), g.input_labels[1].get(true)};
  EXPECT_EQ(evaluate(c, gc2, active), (std::vector<bool>{true, true}));
}

TEST(YaoGarble, GarblingIsDeterministicGivenSeed) {
  BooleanCircuit c(2);
  c.add_output(c.and_gate(0, 1));
  crypto::Prg p1("same-seed"), p2("same-seed");
  EXPECT_EQ(garble(c, p1).garbled.serialize(), garble(c, p2).garbled.serialize());
}

// ---- Yao over the network ---------------------------------------------------

class YaoProtocolTest : public ::testing::Test {
 protected:
  YaoProtocolTest()
      : group_(ot::SchnorrGroup::rfc_like_512()),
        client_prg_("yao-client"),
        server_prg_("yao-server") {}

  ot::SchnorrGroup group_;
  crypto::Prg client_prg_, server_prg_;
};

TEST_F(YaoProtocolTest, TwoPartyAdditionOneRound) {
  constexpr std::size_t kW = 8;
  BooleanCircuit c(2 * kW);
  WireBundle a, b;
  for (std::size_t i = 0; i < kW; ++i) a.push_back(c.input(i));          // client
  for (std::size_t i = 0; i < kW; ++i) b.push_back(c.input(kW + i));     // server
  c.add_outputs(circuits::build_add_mod(c, a, b));

  net::StarNetwork net(1);
  const auto out = run_yao(net, 0, c, to_bits(0x5a, kW), to_bits(0xc3, kW), group_,
                           client_prg_, server_prg_);
  EXPECT_EQ(from_bits(out), (0x5a + 0xc3) % 256);
  EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.0);
  EXPECT_TRUE(net.idle());
}

TEST_F(YaoProtocolTest, ComparisonCircuit) {
  constexpr std::size_t kW = 6;
  BooleanCircuit c(2 * kW);
  WireBundle a, b;
  for (std::size_t i = 0; i < kW; ++i) a.push_back(c.input(i));
  for (std::size_t i = 0; i < kW; ++i) b.push_back(c.input(kW + i));
  c.add_output(circuits::build_less_than(c, a, b));

  for (const auto& [x, y] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {3, 7}, {7, 3}, {5, 5}, {0, 63}, {63, 0}}) {
    net::StarNetwork net(1);
    const auto out =
        run_yao(net, 0, c, to_bits(x, kW), to_bits(y, kW), group_, client_prg_, server_prg_);
    EXPECT_EQ(out[0], x < y) << x << " vs " << y;
  }
}

TEST_F(YaoProtocolTest, ExtensionVariantMatches) {
  constexpr std::size_t kW = 8;
  BooleanCircuit c(2 * kW);
  WireBundle a, b;
  for (std::size_t i = 0; i < kW; ++i) a.push_back(c.input(i));
  for (std::size_t i = 0; i < kW; ++i) b.push_back(c.input(kW + i));
  c.add_outputs(circuits::build_add_mod(c, a, b));

  net::StarNetwork net(1);
  const auto out = run_yao_with_extension(net, 0, c, to_bits(200, kW), to_bits(100, kW), group_,
                                          client_prg_, server_prg_);
  EXPECT_EQ(from_bits(out), (200 + 100) % 256);
  EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.5);
}

TEST_F(YaoProtocolTest, InputSplitValidation) {
  BooleanCircuit c(4);
  c.add_output(c.and_gate(0, 1));
  net::StarNetwork net(1);
  EXPECT_THROW(run_yao(net, 0, c, {true}, {false}, group_, client_prg_, server_prg_),
               InvalidArgument);
}

// ---- §3.3.4 arithmetic MPC --------------------------------------------------

class ArithMpcTest : public ::testing::Test {
 protected:
  ArithMpcTest()
      : client_prg_("arith-client"),
        server_prg_("arith-server"),
        sk_(he::paillier_keygen(client_prg_, 512)) {}

  // Splits inputs into random additive shares mod u.
  void split(const std::vector<std::uint64_t>& xs, std::uint64_t u,
             std::vector<std::uint64_t>& client, std::vector<std::uint64_t>& server) {
    client.clear();
    server.clear();
    for (const std::uint64_t x : xs) {
      const std::uint64_t a = server_prg_.uniform(u);
      server.push_back(a);
      client.push_back((x % u + u - a) % u);
    }
  }

  crypto::Prg client_prg_, server_prg_;
  he::PaillierPrivateKey sk_;
};

TEST_F(ArithMpcTest, SumCircuit) {
  constexpr std::uint64_t kU = 1000003;
  const auto circuit = ArithCircuit::sum(5, kU);
  const std::vector<std::uint64_t> xs = {10, 20, 30, 40, 999999};
  std::vector<std::uint64_t> cs, ss;
  split(xs, kU, cs, ss);

  net::StarNetwork net(1);
  const auto out = run_arith_mpc_shared(net, 0, circuit, sk_, cs, ss, client_prg_, server_prg_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], circuit.eval(xs)[0]);
  // No mult gates: one share round + one output round.
  EXPECT_TRUE(net.idle());
}

TEST_F(ArithMpcTest, SumAndSumOfSquares) {
  constexpr std::uint64_t kU = 1 << 20;
  const auto circuit = ArithCircuit::sum_and_sum_of_squares(4, kU);
  const std::vector<std::uint64_t> xs = {100, 200, 300, 400};
  std::vector<std::uint64_t> cs, ss;
  split(xs, kU, cs, ss);

  net::StarNetwork net(1);
  const auto out = run_arith_mpc_shared(net, 0, circuit, sk_, cs, ss, client_prg_, server_prg_);
  const auto expect = circuit.eval(xs);
  EXPECT_EQ(out, expect);
}

TEST_F(ArithMpcTest, DeepMultiplicationChain) {
  // x^8 via 3 levels of squaring exercises multi-round mult batching and
  // bound growth.
  constexpr std::uint64_t kU = 65537;
  ArithCircuit c(1, kU);
  std::uint32_t n = c.input(0);
  for (int i = 0; i < 3; ++i) n = c.mul(n, n);
  c.add_output(n);
  EXPECT_EQ(c.mult_depth(), 3u);

  std::vector<std::uint64_t> cs, ss;
  split({3}, kU, cs, ss);
  net::StarNetwork net(1);
  const auto out = run_arith_mpc_shared(net, 0, c, sk_, cs, ss, client_prg_, server_prg_);
  EXPECT_EQ(out[0], c.eval({3})[0]);  // 3^8 = 6561
  EXPECT_EQ(out[0], 6561u);
}

TEST_F(ArithMpcTest, SubtractionStaysCongruent) {
  constexpr std::uint64_t kU = 101;
  ArithCircuit c(2, kU);
  c.add_output(c.sub(c.input(0), c.input(1)));
  std::vector<std::uint64_t> cs, ss;
  split({5, 77}, kU, cs, ss);
  net::StarNetwork net(1);
  const auto out = run_arith_mpc_shared(net, 0, c, sk_, cs, ss, client_prg_, server_prg_);
  EXPECT_EQ(out[0], (5 + kU - 77) % kU);
}

TEST_F(ArithMpcTest, WeightedSumAndConstants) {
  constexpr std::uint64_t kU = 1 << 16;
  const auto circuit = ArithCircuit::weighted_sum({3, 0, 7}, kU);
  std::vector<std::uint64_t> cs, ss;
  split({11, 22, 33}, kU, cs, ss);
  net::StarNetwork net(1);
  const auto out = run_arith_mpc_shared(net, 0, circuit, sk_, cs, ss, client_prg_, server_prg_);
  EXPECT_EQ(out[0], (3 * 11 + 0 * 22 + 7 * 33) % kU);
}

TEST_F(ArithMpcTest, RoundsScaleWithMultDepth) {
  constexpr std::uint64_t kU = 257;
  // Depth-2: (x0*x1) * x2.
  ArithCircuit c(3, kU);
  c.add_output(c.mul(c.mul(c.input(0), c.input(1)), c.input(2)));
  std::vector<std::uint64_t> cs, ss;
  split({5, 6, 7}, kU, cs, ss);
  net::StarNetwork net(1);
  const auto out = run_arith_mpc_shared(net, 0, c, sk_, cs, ss, client_prg_, server_prg_);
  EXPECT_EQ(out[0], (5 * 6 * 7) % kU);
  // shares C->S | L1 S->C | L1 products C->S | L2 S->C | L2 products C->S |
  // outputs S->C = 6 half-rounds = 3.0 rounds (1 + mult_depth).
  EXPECT_EQ(net.stats().half_rounds, 6u);
  EXPECT_DOUBLE_EQ(net.stats().rounds(), 3.0);
}

TEST_F(ArithMpcTest, TooDeepCircuitThrows) {
  crypto::Prg kg("tiny-key");
  const auto tiny = he::paillier_keygen(kg, 128);
  constexpr std::uint64_t kU = 1u << 20;
  ArithCircuit c(1, kU);
  std::uint32_t n = c.input(0);
  for (int i = 0; i < 10; ++i) n = c.mul(n, n);
  c.add_output(n);
  std::vector<std::uint64_t> cs, ss;
  split({3}, kU, cs, ss);
  net::StarNetwork net(1);
  EXPECT_THROW(run_arith_mpc_shared(net, 0, c, tiny, cs, ss, client_prg_, server_prg_),
               CryptoError);
}

TEST_F(ArithMpcTest, ShareCountValidation) {
  const auto circuit = ArithCircuit::sum(3, 101);
  net::StarNetwork net(1);
  EXPECT_THROW(
      run_arith_mpc_shared(net, 0, circuit, sk_, {1, 2}, {1, 2, 3}, client_prg_, server_prg_),
      InvalidArgument);
}

}  // namespace
}  // namespace spfe::mpc
