#include <gtest/gtest.h>

#include <map>

#include "circuits/boolean_circuit.h"
#include "common/error.h"
#include "common/serialize.h"
#include "psm/psm.h"

namespace spfe::psm {
namespace {

crypto::Prg::Seed seed_of(const std::string& label) {
  return crypto::Prg(label).fork_seed("test-seed");
}

TEST(SumPsm, ReconstructsSum) {
  const SumPsm psm(4, 1000);
  const auto seed = seed_of("sum-1");
  const std::uint64_t inputs[] = {10, 990, 5, 7};
  std::vector<Bytes> messages;
  for (std::size_t j = 0; j < 4; ++j) {
    messages.push_back(psm.player_message(j, inputs[j], seed));
  }
  EXPECT_EQ(psm.reconstruct(messages, psm.referee_extra(seed)), (10 + 990 + 5 + 7) % 1000u);
}

TEST(SumPsm, MasksSumToZero) {
  const SumPsm psm(5, 97);
  const auto seed = seed_of("sum-2");
  std::uint64_t total = 0;
  for (std::size_t j = 0; j < 5; ++j) total = (total + psm.mask_of(j, seed)) % 97;
  EXPECT_EQ(total, 0u);
}

TEST(SumPsm, SinglePlayer) {
  const SumPsm psm(1, 50);
  const auto seed = seed_of("sum-3");
  EXPECT_EQ(psm.reconstruct({psm.player_message(0, 42, seed)}, {}), 42u);
}

TEST(SumPsm, MessagesHideInputs) {
  // A single message is uniform: same message distribution for different
  // inputs across seeds.
  const SumPsm psm(3, 11);
  std::map<std::uint64_t, int> dist0, dist7;
  for (int trial = 0; trial < 4400; ++trial) {
    const auto seed = crypto::Prg("hiding" + std::to_string(trial)).fork_seed("s");
    spfe::Reader r0(psm.player_message(0, 0, seed));
    dist0[r0.u64()]++;
    spfe::Reader r7(psm.player_message(0, 7, seed));
    dist7[r7.u64()]++;
  }
  for (std::uint64_t v = 0; v < 11; ++v) {
    EXPECT_NEAR(dist0[v], 400, 150) << v;
    EXPECT_NEAR(dist7[v], 400, 150) << v;
  }
}

TEST(SumPsm, BatchMatchesSingle) {
  const SumPsm psm(2, 1 << 20);
  const auto seed = seed_of("batch");
  const std::vector<std::uint64_t> ys = {1, 2, 3, 99999};
  const auto batch = psm.player_messages(1, ys, seed);
  ASSERT_EQ(batch.size(), ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) {
    EXPECT_EQ(batch[i], psm.player_message(1, ys[i], seed));
  }
}

TEST(SumPsm, Validation) {
  EXPECT_THROW(SumPsm(0, 10), InvalidArgument);
  EXPECT_THROW(SumPsm(3, 1), InvalidArgument);
  const SumPsm psm(2, 10);
  const auto seed = seed_of("v");
  EXPECT_THROW(psm.player_message(2, 0, seed), InvalidArgument);
  EXPECT_THROW(psm.reconstruct({Bytes{}}, {}), InvalidArgument);
}

class YaoPsmTest : public ::testing::Test {
 protected:
  // f(y0, y1) = (y0 + y1 mod 16 == 9), two 4-bit players.
  YaoPsmTest() : circuit_(8) {
    circuits::WireBundle a, b;
    for (std::size_t i = 0; i < 4; ++i) a.push_back(circuit_.input(i));
    for (std::size_t i = 0; i < 4; ++i) b.push_back(circuit_.input(4 + i));
    const auto sum = circuits::build_add_mod(circuit_, a, b);
    circuit_.add_output(circuits::build_eq_const(circuit_, sum, 9));
  }

  circuits::BooleanCircuit circuit_;
};

TEST_F(YaoPsmTest, ReconstructsFunctionValue) {
  const YaoPsm psm(circuit_, 2, 4);
  for (std::uint64_t y0 = 0; y0 < 16; y0 += 3) {
    for (std::uint64_t y1 = 0; y1 < 16; y1 += 5) {
      const auto seed = seed_of("yao" + std::to_string(y0 * 16 + y1));
      const std::vector<Bytes> msgs = {psm.player_message(0, y0, seed),
                                       psm.player_message(1, y1, seed)};
      const auto out = psm.reconstruct(msgs, psm.referee_extra(seed));
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(out[0], (y0 + y1) % 16 == 9) << y0 << "," << y1;
    }
  }
}

TEST_F(YaoPsmTest, MessageSizesMatchAlpha) {
  const YaoPsm psm(circuit_, 2, 4);
  const auto seed = seed_of("alpha");
  EXPECT_EQ(psm.player_message(0, 5, seed).size(), psm.message_bytes());
  EXPECT_EQ(psm.message_bytes(), 4 * 16u);  // bits * label bytes
}

TEST_F(YaoPsmTest, BatchMatchesSingle) {
  const YaoPsm psm(circuit_, 2, 4);
  const auto seed = seed_of("yao-batch");
  const std::vector<std::uint64_t> ys = {0, 7, 15};
  const auto batch = psm.player_messages(0, ys, seed);
  for (std::size_t i = 0; i < ys.size(); ++i) {
    EXPECT_EQ(batch[i], psm.player_message(0, ys[i], seed));
  }
}

TEST_F(YaoPsmTest, Validation) {
  EXPECT_THROW(YaoPsm(circuit_, 3, 4), InvalidArgument);  // 3*4 != 8
  EXPECT_THROW(YaoPsm(circuit_, 2, 0), InvalidArgument);
  const YaoPsm psm(circuit_, 2, 4);
  const auto seed = seed_of("v2");
  EXPECT_THROW(psm.player_message(2, 0, seed), InvalidArgument);
}

}  // namespace
}  // namespace spfe::psm
