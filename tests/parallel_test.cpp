#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"

namespace spfe::common {
namespace {

// Restores the env-derived global pool after each test so thread-count
// overrides never leak into other tests in this binary.
class ParallelTest : public ::testing::Test {
 protected:
  ~ParallelTest() override { ThreadPool::set_global_threads(0); }
};

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool::set_global_threads(threads);
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST_F(ParallelTest, EmptyAndSingleElementRanges) {
  ThreadPool::set_global_threads(4);
  parallel_for(0, [](std::size_t) { FAIL() << "body must not run for n = 0"; });
  std::size_t seen = 0;
  parallel_for(1, [&](std::size_t i) { seen = i + 1; });
  EXPECT_EQ(seen, 1u);
}

TEST_F(ParallelTest, RangeFlavorPartitionIsContiguousAndComplete) {
  ThreadPool::set_global_threads(3);
  const std::size_t n = 1001;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_range(n, [&](std::size_t begin, std::size_t end) {
    EXPECT_LT(begin, end);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, ResultsIdenticalAcrossThreadCounts) {
  const std::size_t n = 4096;
  auto compute = [&] {
    std::vector<std::uint64_t> out(n);
    parallel_for(n, [&](std::size_t i) {
      std::uint64_t v = i * 2654435761u + 1;
      for (int k = 0; k < 64; ++k) v = v * 6364136223846793005ull + 1442695040888963407ull;
      out[i] = v;
    });
    return out;
  };
  ThreadPool::set_global_threads(1);
  const std::vector<std::uint64_t> serial = compute();
  for (const std::size_t threads : {2u, 5u, 8u}) {
    ThreadPool::set_global_threads(threads);
    EXPECT_EQ(compute(), serial) << "threads = " << threads;
  }
}

TEST_F(ParallelTest, PropagatesExceptions) {
  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool::set_global_threads(threads);
    EXPECT_THROW(
        parallel_for(100,
                     [](std::size_t i) {
                       if (i == 57) throw std::runtime_error("boom");
                     }),
        std::runtime_error);
  }
}

TEST_F(ParallelTest, PoolIsReusableAfterException) {
  ThreadPool::set_global_threads(4);
  EXPECT_THROW(parallel_for(16, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int> count{0};
  parallel_for(16, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST_F(ParallelTest, NestedCallsFallBackToSerial) {
  ThreadPool::set_global_threads(4);
  std::vector<std::atomic<int>> hits(64 * 64);
  parallel_for(64, [&](std::size_t outer) {
    parallel_for(64, [&](std::size_t inner) { hits[outer * 64 + inner].fetch_add(1); });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, SetGlobalThreadsControlsPoolSize) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().thread_count(), 3u);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global().thread_count(), 1u);
  ThreadPool::set_global_threads(0);  // back to the environment default
  EXPECT_GE(ThreadPool::global().thread_count(), 1u);
}

TEST_F(ParallelTest, ManyMoreIndicesThanThreads) {
  ThreadPool::set_global_threads(2);
  std::vector<std::uint32_t> out(100000);
  parallel_for(out.size(), [&](std::size_t i) { out[i] = static_cast<std::uint32_t>(i); });
  std::uint64_t sum = std::accumulate(out.begin(), out.end(), std::uint64_t{0});
  EXPECT_EQ(sum, std::uint64_t{100000} * 99999 / 2);
}

}  // namespace
}  // namespace spfe::common
