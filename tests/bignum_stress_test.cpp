// High-volume algebraic property tests for the bignum substrate — the layer
// everything cryptographic reduces to, so it gets the heaviest fuzzing.
#include <gtest/gtest.h>

#include "bignum/bigint.h"
#include "bignum/modarith.h"
#include "bignum/primes.h"
#include "common/error.h"
#include "crypto/prg.h"

namespace spfe::bignum {
namespace {

class BigIntStress : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BigIntStress, RingAxioms) {
  crypto::Prg prg("stress-ring-" + std::to_string(GetParam()));
  const std::size_t bits = GetParam();
  for (int trial = 0; trial < 40; ++trial) {
    const BigInt a = BigInt::random_bits(prg, 1 + prg.uniform(bits));
    const BigInt b = BigInt::random_bits(prg, 1 + prg.uniform(bits));
    const BigInt c = BigInt::random_bits(prg, 1 + prg.uniform(bits));
    // Commutativity, associativity, distributivity.
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    // Subtraction inverts addition.
    EXPECT_EQ(a + b - b, a);
    EXPECT_EQ(a - a, BigInt());
    // Sign symmetry.
    EXPECT_EQ((-a) * b, -(a * b));
    EXPECT_EQ((-a) * (-b), a * b);
  }
}

TEST_P(BigIntStress, DivisionInvariants) {
  crypto::Prg prg("stress-div-" + std::to_string(GetParam()));
  const std::size_t bits = GetParam();
  for (int trial = 0; trial < 40; ++trial) {
    const BigInt a = BigInt::random_bits(prg, 1 + prg.uniform(2 * bits));
    const BigInt b = BigInt::random_bits(prg, 1 + prg.uniform(bits));
    BigInt q, r;
    BigInt::divmod(a, b, q, r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
    // Exact division round-trips.
    EXPECT_EQ((a * b) / b, a);
    EXPECT_TRUE(((a * b) % b).is_zero());
    // Shifts are powers of two.
    const std::size_t sh = prg.uniform(200);
    EXPECT_EQ(a << sh, a * (BigInt(1) << sh));
    EXPECT_EQ((a << sh) >> sh, a);
  }
}

TEST_P(BigIntStress, StringAndBytesRoundTrips) {
  crypto::Prg prg("stress-str-" + std::to_string(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    const BigInt a = BigInt::random_bits(prg, 1 + prg.uniform(GetParam()));
    EXPECT_EQ(BigInt::from_string(a.to_string()), a);
    EXPECT_EQ(BigInt::from_hex(a.to_hex()), a);
    EXPECT_EQ(BigInt::from_bytes_be(a.to_bytes_be()), a);
    EXPECT_EQ(BigInt::from_string((-a).to_string()), -a);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BigIntStress,
                         ::testing::Values(64u, 256u, 1024u, 4096u),
                         [](const auto& inst) { return "bits" + std::to_string(inst.param); });

TEST(ModArithStress, ExponentLaws) {
  crypto::Prg prg("stress-exp");
  for (int trial = 0; trial < 10; ++trial) {
    BigInt m = BigInt::random_bits(prg, 128 + prg.uniform(128));
    if (!m.is_odd()) m += BigInt(1);
    const MontgomeryContext ctx(m);
    const BigInt a = BigInt::random_below(prg, m);
    const BigInt e1 = BigInt::random_bits(prg, 48);
    const BigInt e2 = BigInt::random_bits(prg, 48);
    // a^(e1+e2) = a^e1 * a^e2 (mod m)
    EXPECT_EQ(ctx.pow(a, e1 + e2), mod_mul(ctx.pow(a, e1), ctx.pow(a, e2), m));
    // (a^e1)^e2 = a^(e1*e2) (mod m)
    EXPECT_EQ(ctx.pow(ctx.pow(a, e1), e2), ctx.pow(a, e1 * e2));
  }
}

TEST(ModArithStress, InverseIsInvolutive) {
  crypto::Prg prg("stress-inv");
  const BigInt p = random_prime(prg, 128, 16);
  for (int trial = 0; trial < 50; ++trial) {
    const BigInt a = BigInt::random_below(prg, p - BigInt(1)) + BigInt(1);
    const BigInt inv = mod_inverse(a, p);
    EXPECT_EQ(mod_mul(a, inv, p), BigInt(1));
    EXPECT_EQ(mod_inverse(inv, p), a);
  }
}

TEST(ModArithStress, FermatAndEulerOnRandomPrimes) {
  crypto::Prg prg("stress-fermat");
  for (const std::size_t bits : {32u, 64u, 128u}) {
    const BigInt p = random_prime(prg, bits, 24);
    const MontgomeryContext ctx(p);
    for (int trial = 0; trial < 10; ++trial) {
      const BigInt a = BigInt::random_below(prg, p - BigInt(1)) + BigInt(1);
      EXPECT_EQ(ctx.pow(a, p - BigInt(1)), BigInt(1)) << bits << " bits";
      // Euler criterion consistency with the Jacobi symbol.
      const BigInt ls = ctx.pow(a, (p - BigInt(1)) >> 1);
      const int j = jacobi(a, p);
      EXPECT_EQ(ls.is_one() ? 1 : -1, j);
    }
  }
}

TEST(ModArithStress, CrtAgreesWithDirectReduction) {
  crypto::Prg prg("stress-crt");
  const BigInt p = random_prime(prg, 64, 16);
  BigInt q = random_prime(prg, 64, 16);
  while (q == p) q = random_prime(prg, 64, 16);
  for (int trial = 0; trial < 30; ++trial) {
    const BigInt x = BigInt::random_below(prg, p * q);
    EXPECT_EQ(crt_combine(x % p, p, x % q, q), x);
  }
}

TEST(PrimesStress, GeneratedPrimesAreOddAndSized) {
  crypto::Prg prg("stress-primes");
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t bits = 48 + prg.uniform(80);
    const BigInt p = random_prime(prg, bits, 16);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(p.is_odd());
    // p-1 and p+1 must be composite (trivially even), and a second
    // independent Miller-Rabin pass agrees.
    crypto::Prg other("independent-check" + std::to_string(trial));
    EXPECT_TRUE(is_probable_prime(p, other, 32));
  }
}

}  // namespace
}  // namespace spfe::bignum
