#include <gtest/gtest.h>

#include <map>

#include "bignum/serialize.h"
#include "common/error.h"
#include "common/serialize.h"
#include "he/paillier.h"
#include "net/fault.h"
#include "pir/batch_pir.h"
#include "pir/cpir.h"
#include "pir/itpir.h"

namespace spfe::pir {
namespace {

using bignum::BigInt;
using field::Fp64;

std::vector<std::uint64_t> make_db(std::size_t n, std::uint64_t modulus) {
  std::vector<std::uint64_t> db(n);
  for (std::size_t i = 0; i < n; ++i) db[i] = (i * 31 + 7) % modulus;
  return db;
}

// ---- Selection polynomial ---------------------------------------------------

TEST(SelectionPolynomial, RecoversItemsOnBooleanPoints) {
  const Fp64 f(1009);
  const auto db = make_db(8, 1009);
  for (std::size_t i = 0; i < 8; ++i) {
    // Encode i as 3 bits, leftmost (MSB) first.
    std::vector<std::uint64_t> point = {(i >> 2) & 1, (i >> 1) & 1, i & 1};
    EXPECT_EQ(eval_selection_polynomial(f, db, point), db[i]) << i;
  }
}

TEST(SelectionPolynomial, HandlesNonPowerOfTwoDatabase) {
  const Fp64 f(1009);
  const auto db = make_db(5, 1009);
  std::vector<std::uint64_t> point = {1, 0, 0};  // index 4
  EXPECT_EQ(eval_selection_polynomial(f, db, point), db[4]);
}

// ---- PolyItPir --------------------------------------------------------------

class PolyItPirTest : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(PolyItPirTest, RetrievesEveryIndex) {
  const auto [n, t] = GetParam();
  const Fp64 f(Fp64::kMersenne61);
  const std::size_t k = PolyItPir::min_servers(n, t);
  const PolyItPir pir(f, n, k, t);
  const auto db = make_db(n, 1u << 20);
  crypto::Prg prg("itpir");
  for (std::size_t i = 0; i < n; i += std::max<std::size_t>(1, n / 7)) {
    PolyItPir::ClientState state;
    const auto queries = pir.make_queries(i, state, prg);
    ASSERT_EQ(queries.size(), k);
    std::vector<Bytes> answers;
    for (std::size_t h = 0; h < k; ++h) {
      answers.push_back(pir.answer(h, db, queries[h], nullptr));
    }
    EXPECT_EQ(pir.decode(answers, state), db[i]) << "n=" << n << " t=" << t << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PolyItPirTest,
                         ::testing::Values(std::tuple{2u, 1u}, std::tuple{16u, 1u},
                                           std::tuple{16u, 2u}, std::tuple{100u, 1u},
                                           std::tuple{256u, 2u}, std::tuple{1000u, 1u}));

TEST(PolyItPir, SpirMaskingStillDecodes) {
  const Fp64 f(Fp64::kMersenne61);
  constexpr std::size_t kN = 64, kT = 1;
  const std::size_t k = PolyItPir::min_servers(kN, kT);
  const PolyItPir pir(f, kN, k, kT);
  const auto db = make_db(kN, 1u << 16);
  crypto::Prg prg("itspir");
  const crypto::Prg::Seed shared = crypto::Prg::random_seed();
  PolyItPir::ClientState state;
  const auto queries = pir.make_queries(13, state, prg);
  std::vector<Bytes> answers;
  for (std::size_t h = 0; h < k; ++h) {
    answers.push_back(pir.answer(h, db, queries[h], &shared));
  }
  EXPECT_EQ(pir.decode(answers, state), db[13]);
}

TEST(PolyItPir, SpirMaskChangesAnswers) {
  const Fp64 f(Fp64::kMersenne61);
  constexpr std::size_t kN = 64, kT = 1;
  const std::size_t k = PolyItPir::min_servers(kN, kT);
  const PolyItPir pir(f, kN, k, kT);
  const auto db = make_db(kN, 1u << 16);
  crypto::Prg prg("mask-diff");
  const crypto::Prg::Seed shared = crypto::Prg::random_seed();
  PolyItPir::ClientState state;
  const auto queries = pir.make_queries(13, state, prg);
  EXPECT_NE(pir.answer(0, db, queries[0], &shared), pir.answer(0, db, queries[0], nullptr));
}

TEST(PolyItPir, QueryHidesIndexFromSingleServer) {
  // t=1: one server's received point must be (statistically) independent of
  // the index. Compare first-coordinate distributions for two indices.
  const Fp64 f(101);
  constexpr std::size_t kN = 8;
  const std::size_t k = PolyItPir::min_servers(kN, 1);
  const PolyItPir pir(f, kN, k, 1);
  crypto::Prg prg("hiding");
  std::map<std::uint64_t, int> dist_a, dist_b;
  for (int trial = 0; trial < 4000; ++trial) {
    PolyItPir::ClientState st;
    // Keep the query buffers alive: Reader only holds a view.
    const auto qa = pir.make_queries(0, st, prg);
    Reader ra(qa[0]);
    dist_a[ra.u64()]++;
    const auto qb = pir.make_queries(7, st, prg);
    Reader rb(qb[0]);
    dist_b[rb.u64()]++;
  }
  for (std::uint64_t v = 0; v < 101; ++v) {
    EXPECT_NEAR(dist_a[v], dist_b[v], 60) << v;
  }
}

TEST(PolyItPir, ValidatesParameters) {
  const Fp64 f(1009);
  EXPECT_THROW(PolyItPir(f, 0, 5, 1), InvalidArgument);
  EXPECT_THROW(PolyItPir(f, 16, 4, 1), InvalidArgument);  // k <= t*log n
  EXPECT_THROW(PolyItPir(f, 16, 5, 0), InvalidArgument);
  const Fp64 tiny(5);
  EXPECT_THROW(PolyItPir(tiny, 16, 5, 1), InvalidArgument);  // field <= k
}

TEST(PolyItPir, RejectsMalformedMessages) {
  const Fp64 f(1009);
  const PolyItPir pir(f, 16, 5, 1);
  const auto db = make_db(16, 100);
  crypto::Prg prg("bad");
  EXPECT_THROW(pir.answer(0, db, Bytes{1, 2, 3}, nullptr), Error);
  // Query element outside the field.
  Writer w;
  for (int i = 0; i < 4; ++i) w.u64(~0ull);
  EXPECT_THROW(pir.answer(0, db, w.data(), nullptr), ProtocolError);
}

// ---- TwoServerXorPir --------------------------------------------------------

TEST(TwoServerXorPir, RetrievesByteItems) {
  constexpr std::size_t kN = 30, kItem = 5;
  TwoServerXorPir pir(kN, kItem);
  std::vector<Bytes> db(kN);
  crypto::Prg data("xordata");
  for (auto& item : db) item = data.bytes(kItem);
  crypto::Prg prg("xorpir");
  for (std::size_t i = 0; i < kN; ++i) {
    TwoServerXorPir::ClientState state;
    const auto [q0, q1] = pir.make_queries(i, state, prg);
    const Bytes a0 = pir.answer(db, q0);
    const Bytes a1 = pir.answer(db, q1);
    EXPECT_EQ(pir.decode(a0, a1, state), db[i]) << i;
  }
}

TEST(TwoServerXorPir, SingleQueryIsUniform) {
  TwoServerXorPir pir(16, 1);
  crypto::Prg prg("xoruniform");
  // Each server's query is a fresh uniform bitmap regardless of index:
  // check the two queries differ in exactly the row bit.
  for (std::size_t i = 0; i < 16; ++i) {
    TwoServerXorPir::ClientState state;
    const auto [q0, q1] = pir.make_queries(i, state, prg);
    const Bytes diff = xor_bytes(q0, q1);
    int set_bits = 0;
    for (const auto b : diff) set_bits += std::popcount(static_cast<unsigned>(b));
    EXPECT_EQ(set_bits, 1);
  }
}

// ---- PaillierPir ------------------------------------------------------------

class PaillierPirTest : public ::testing::Test {
 protected:
  PaillierPirTest() : prg_("cpir"), sk_(he::paillier_keygen(prg_, 256)) {}

  crypto::Prg prg_;
  he::PaillierPrivateKey sk_;
};

TEST_F(PaillierPirTest, DepthOneRetrieves) {
  constexpr std::size_t kN = 20;
  const PaillierPir pir(sk_.public_key(), kN, 1);
  const auto db = make_db(kN, 1u << 30);
  for (const std::size_t i : {0u, 7u, 19u}) {
    PaillierPir::ClientState state;
    const Bytes q = pir.make_query(i, state, prg_);
    const Bytes a = pir.answer_u64(db, q, prg_);
    EXPECT_EQ(pir.decode_u64(sk_, a), db[i]) << i;
  }
}

TEST_F(PaillierPirTest, DepthTwoRetrieves) {
  constexpr std::size_t kN = 50;
  const PaillierPir pir(sk_.public_key(), kN, 2);
  const auto db = make_db(kN, 1u << 30);
  for (const std::size_t i : {0u, 1u, 6u, 7u, 23u, 49u}) {
    PaillierPir::ClientState state;
    const Bytes q = pir.make_query(i, state, prg_);
    const Bytes a = pir.answer_u64(db, q, prg_);
    EXPECT_EQ(pir.decode_u64(sk_, a), db[i]) << i;
  }
}

TEST_F(PaillierPirTest, DepthThreeRetrieves) {
  constexpr std::size_t kN = 30;
  const PaillierPir pir(sk_.public_key(), kN, 3);
  const auto db = make_db(kN, 1000000);
  for (const std::size_t i : {0u, 13u, 29u}) {
    PaillierPir::ClientState state;
    const Bytes q = pir.make_query(i, state, prg_);
    const Bytes a = pir.answer_u64(db, q, prg_);
    EXPECT_EQ(pir.decode_u64(sk_, a), db[i]) << i;
  }
}

TEST_F(PaillierPirTest, ByteItemsRoundTrip) {
  constexpr std::size_t kN = 12, kItem = 70;  // item larger than one chunk
  const PaillierPir pir(sk_.public_key(), kN, 2);
  std::vector<Bytes> db(kN);
  crypto::Prg data("bytedata");
  for (auto& item : db) item = data.bytes(kItem);
  for (const std::size_t i : {0u, 5u, 11u}) {
    PaillierPir::ClientState state;
    const Bytes q = pir.make_query(i, state, prg_);
    const Bytes a = pir.answer_bytes(db, kItem, q, prg_);
    EXPECT_EQ(pir.decode_bytes(sk_, kItem, a), db[i]) << i;
  }
}

TEST_F(PaillierPirTest, FoldKernelsByteIdenticalU64) {
  // The multi-exp fold is an evaluation-order change only: with identically
  // seeded server PRGs both kernels must emit byte-identical answers.
  constexpr std::size_t kN = 50;
  const auto db = make_db(kN, 1u << 30);
  for (const std::size_t depth : {1u, 2u, 3u}) {
    PaillierPir multi(sk_.public_key(), kN, depth);
    PaillierPir naive(sk_.public_key(), kN, depth);
    naive.set_fold_kernel(PaillierPir::FoldKernel::kNaive);
    ASSERT_EQ(multi.fold_kernel(), PaillierPir::FoldKernel::kMultiExp);
    PaillierPir::ClientState state;
    const Bytes q = multi.make_query(23, state, prg_);
    crypto::Prg s1("fold-kernel-server"), s2("fold-kernel-server");
    const Bytes a_multi = multi.answer_u64(db, q, s1);
    const Bytes a_naive = naive.answer_u64(db, q, s2);
    EXPECT_EQ(a_multi, a_naive) << "depth=" << depth;
    EXPECT_EQ(multi.decode_u64(sk_, a_multi), db[23]) << "depth=" << depth;
  }
}

TEST_F(PaillierPirTest, FoldKernelsByteIdenticalBytesMultiChunk) {
  constexpr std::size_t kN = 12, kItem = 70;  // multiple chunks per item
  PaillierPir multi(sk_.public_key(), kN, 3);
  PaillierPir naive(sk_.public_key(), kN, 3);
  naive.set_fold_kernel(PaillierPir::FoldKernel::kNaive);
  std::vector<Bytes> db(kN);
  crypto::Prg data("bytedata-kernel");
  for (auto& item : db) item = data.bytes(kItem);
  PaillierPir::ClientState state;
  const Bytes q = multi.make_query(5, state, prg_);
  crypto::Prg s1("fold-kernel-bytes"), s2("fold-kernel-bytes");
  const Bytes a_multi = multi.answer_bytes(db, kItem, q, s1);
  const Bytes a_naive = naive.answer_bytes(db, kItem, q, s2);
  EXPECT_EQ(a_multi, a_naive);
  EXPECT_EQ(multi.decode_bytes(sk_, kItem, a_multi), db[5]);
}

TEST_F(PaillierPirTest, DepthTwoCommunicationBeatsDepthOne) {
  constexpr std::size_t kN = 100;
  const PaillierPir d1(sk_.public_key(), kN, 1);
  const PaillierPir d2(sk_.public_key(), kN, 2);
  PaillierPir::ClientState s1, s2;
  const Bytes q1 = d1.make_query(3, s1, prg_);
  const Bytes q2 = d2.make_query(3, s2, prg_);
  EXPECT_LT(q2.size(), q1.size() / 3);
}

TEST_F(PaillierPirTest, MaliciousLinearCombinationIsWeakSecurity) {
  // A client that encrypts (1, 1, 0, ...) learns x_0 + x_1 — one linear
  // function of two locations, i.e. the paper's weak-security class.
  constexpr std::size_t kN = 8;
  const PaillierPir pir(sk_.public_key(), kN, 1);
  const auto db = make_db(kN, 1000);
  Writer w;
  for (std::size_t i = 0; i < kN; ++i) {
    w.raw(sk_.public_key()
              .encrypt(BigInt(i < 2 ? 1 : 0), prg_)
              .to_bytes_be_padded(sk_.public_key().ciphertext_bytes()));
  }
  const Bytes a = pir.answer_u64(db, w.data(), prg_);
  EXPECT_EQ(pir.decode_u64(sk_, a), db[0] + db[1]);
}

TEST_F(PaillierPirTest, ValidatesGeometry) {
  EXPECT_THROW(PaillierPir(sk_.public_key(), 0, 1), InvalidArgument);
  EXPECT_THROW(PaillierPir(sk_.public_key(), 8, 0), InvalidArgument);
  EXPECT_THROW(PaillierPir(sk_.public_key(), 8, 5), InvalidArgument);
  const PaillierPir pir(sk_.public_key(), 8, 1);
  PaillierPir::ClientState state;
  EXPECT_THROW(pir.make_query(8, state, prg_), InvalidArgument);
}

// ---- CuckooBatchPir ---------------------------------------------------------

class CuckooBatchPirTest : public ::testing::Test {
 protected:
  CuckooBatchPirTest() : prg_("batch"), sk_(he::paillier_keygen(prg_, 256)) {}

  crypto::Prg prg_;
  he::PaillierPrivateKey sk_;
};

TEST_F(CuckooBatchPirTest, RetrievesBatch) {
  constexpr std::size_t kN = 200, kM = 8;
  const CuckooBatchPir pir(sk_.public_key(), kN, kM, 1);
  const auto db = make_db(kN, 1u << 20);
  const std::vector<std::size_t> indices = {3, 77, 121, 0, 199, 42, 58, 90};
  CuckooBatchPir::ClientState state;
  const Bytes q = pir.make_query(indices, state, prg_);
  const Bytes a = pir.answer_u64(db, q, prg_);
  const auto got = pir.decode_u64(sk_, a, state);
  ASSERT_EQ(got.size(), kM);
  for (std::size_t j = 0; j < kM; ++j) EXPECT_EQ(got[j], db[indices[j]]) << j;
}

TEST_F(CuckooBatchPirTest, DepthTwoBuckets) {
  constexpr std::size_t kN = 150, kM = 4;
  const CuckooBatchPir pir(sk_.public_key(), kN, kM, 2);
  const auto db = make_db(kN, 1u << 20);
  const std::vector<std::size_t> indices = {10, 20, 30, 140};
  CuckooBatchPir::ClientState state;
  const auto got = pir.decode_u64(
      sk_, pir.answer_u64(db, pir.make_query(indices, state, prg_), prg_), state);
  for (std::size_t j = 0; j < kM; ++j) EXPECT_EQ(got[j], db[indices[j]]);
}

TEST_F(CuckooBatchPirTest, DuplicateIndicesServedFromDistinctBuckets) {
  constexpr std::size_t kN = 100, kM = 4;
  const CuckooBatchPir pir(sk_.public_key(), kN, kM, 1);
  const auto db = make_db(kN, 1u << 20);
  const std::vector<std::size_t> indices = {55, 55, 7, 99};
  CuckooBatchPir::ClientState state;
  const auto got = pir.decode_u64(
      sk_, pir.answer_u64(db, pir.make_query(indices, state, prg_), prg_), state);
  for (std::size_t j = 0; j < kM; ++j) EXPECT_EQ(got[j], db[indices[j]]);
}

TEST_F(CuckooBatchPirTest, ByteItemsRoundTrip) {
  constexpr std::size_t kN = 120, kM = 4, kItem = 70;
  const CuckooBatchPir pir(sk_.public_key(), kN, kM, 1);
  std::vector<Bytes> db(kN);
  crypto::Prg data("batch-bytes");
  for (auto& item : db) item = data.bytes(kItem);
  const std::vector<std::size_t> indices = {0, 33, 77, 119};
  CuckooBatchPir::ClientState state;
  const Bytes q = pir.make_query(indices, state, prg_);
  const Bytes a = pir.answer_bytes(db, kItem, q, prg_);
  const auto got = pir.decode_bytes(sk_, kItem, a, state);
  ASSERT_EQ(got.size(), kM);
  for (std::size_t j = 0; j < kM; ++j) EXPECT_EQ(got[j], db[indices[j]]) << j;
}

TEST_F(CuckooBatchPirTest, Validation) {
  const CuckooBatchPir pir(sk_.public_key(), 50, 3, 1);
  CuckooBatchPir::ClientState state;
  EXPECT_THROW(pir.make_query({1, 2}, state, prg_), InvalidArgument);
  EXPECT_THROW(pir.make_query({1, 2, 50}, state, prg_), InvalidArgument);
}

// ---- Robust itPIR -----------------------------------------------------------

TEST(PolyItPirRobust, DecodeWithErrorsCorrectsLyingServers) {
  const Fp64 f(Fp64::kMersenne61);
  constexpr std::size_t kErrors = 2;
  const std::size_t k = PolyItPir::min_servers(64, 1) + 2 * kErrors;
  const PolyItPir pir(f, 64, k, 1);
  const auto db = make_db(64, Fp64::kMersenne61);
  crypto::Prg prg("itpir-robust");
  PolyItPir::ClientState state;
  const auto queries = pir.make_queries(17, state, prg);
  std::vector<Bytes> answers;
  for (std::size_t h = 0; h < k; ++h) answers.push_back(pir.answer(h, db, queries[h], nullptr));
  {
    Writer w1, w2;
    w1.u64(424242);
    w2.u64(171717);
    answers[0] = w1.take();
    answers[5] = w2.take();
  }
  EXPECT_NE(pir.decode(answers, state), db[17]);
  EXPECT_EQ(pir.decode_with_errors(answers, state, kErrors), db[17]);
  // Three lies with a budget of two: typed error, never a wrong value.
  Writer w3;
  w3.u64(999999);
  answers[2] = w3.take();
  EXPECT_THROW(pir.decode_with_errors(answers, state, kErrors), ProtocolError);
}

TEST(PolyItPirRobust, RunOverStarNetwork) {
  const Fp64 f(Fp64::kMersenne61);
  const PolyItPir pir(f, 64, 7, 1);
  const auto db = make_db(64, Fp64::kMersenne61);
  crypto::Prg prg("itpir-run");
  net::StarNetwork net(7);
  const auto seed = prg.fork_seed("spir");
  EXPECT_EQ(pir.run(net, db, 29, seed, prg), db[29]);
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.stats().client_to_server_messages, 7u);
  EXPECT_EQ(net.stats().server_to_client_messages, 7u);
  EXPECT_EQ(net.stats().rounds(), 1.0);
  net::StarNetwork wrong(5);
  EXPECT_THROW(pir.run(wrong, db, 29, seed, prg), InvalidArgument);
}

TEST(PolyItPirRobust, RunRobustSurvivesCrashAndLie) {
  const Fp64 f(Fp64::kMersenne61);
  // e = 1, c = 1: k = l*t + 1 + 2 + 1 = 10 for n = 64, t = 1.
  const std::size_t k = PolyItPir::min_servers(64, 1) + 3;
  const PolyItPir pir(f, 64, k, 1);
  const auto db = make_db(64, Fp64::kMersenne61);
  net::FaultPlan plan;
  plan.crash_after(2, 0);  // server 2 dead on arrival
  plan.add(net::Direction::kServerToClient, 6, 0,
           net::Fault{net::FaultKind::kCorruptByte, 1, 0x40, 0});  // server 6 lies
  net::FaultyStarNetwork net(k, plan);
  crypto::Prg prg("itpir-run-robust");
  const auto seed = prg.fork_seed("spir");
  const net::RobustResult res = pir.run_robust(net, db, 29, seed, prg);
  EXPECT_EQ(res.value, db[29]);
  EXPECT_TRUE(res.report.success);
  EXPECT_EQ(res.report.verdicts[2].fate, net::ServerFate::kUnavailable);
  EXPECT_EQ(res.report.verdicts[6].fate, net::ServerFate::kCorrected);
  EXPECT_EQ(res.report.erasures, 1u);
  EXPECT_EQ(res.report.errors_corrected, 1u);
  EXPECT_TRUE(net.idle());
}

}  // namespace
}  // namespace spfe::pir
