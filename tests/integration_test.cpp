// Cross-protocol integration tests: the same private query answered through
// *different* protocol families must produce identical results — the
// strongest end-to-end consistency check the library supports.
#include <gtest/gtest.h>

#include "circuits/arith_circuit.h"
#include "dbgen/census.h"
#include "he/paillier.h"
#include "spfe/multiserver.h"
#include "spfe/psm_spfe.h"
#include "spfe/stats.h"
#include "spfe/two_phase.h"

namespace spfe {
namespace {

using field::Fp64;

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest()
      : client_prg_("integ-client"),
        server_prg_("integ-server"),
        client_sk_(he::paillier_keygen(client_prg_, 512)),
        server_sk_(he::paillier_keygen(server_prg_, 512)) {}

  crypto::Prg client_prg_, server_prg_;
  he::PaillierPrivateKey client_sk_;
  he::PaillierPrivateKey server_sk_;
};

TEST_F(IntegrationTest, SumAgreesAcrossFourProtocolFamilies) {
  // One database, one secret selection; the sum computed via:
  //  (1) §3.1 multi-server polynomial protocol,
  //  (2) §3.2 PSM-based protocol,
  //  (3) §3.3 two-phase (input selection + §3.3.4 arithmetic MPC),
  //  (4) §4 one-round weighted-sum protocol.
  constexpr std::size_t kN = 128, kM = 4;
  constexpr std::uint64_t kCap = 5000;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = (i * 83 + 17) % kCap;
  const std::vector<std::size_t> indices = {5, 31, 77, 127};
  std::uint64_t expect = 0;
  for (const std::size_t i : indices) expect += db[i];

  std::vector<std::uint64_t> results;

  {  // (1) §3.1
    const Fp64 f(Fp64::kMersenne61);
    const std::size_t k = protocols::MultiServerSumSpfe::min_servers(kN, 1);
    const protocols::MultiServerSumSpfe proto(f, kN, kM, k, 1);
    net::StarNetwork net(k);
    results.push_back(proto.run(net, db, indices, std::nullopt, client_prg_));
    EXPECT_TRUE(net.idle());
  }
  {  // (2) §3.2 with sum PSM (modulus well above the sum)
    const protocols::PsmSumSpfeSingleServer proto(client_sk_.public_key(), kN, kM,
                                                  kM * kCap + 1, 2);
    net::StarNetwork net(1);
    results.push_back(proto.run(net, db, indices, client_sk_, client_prg_, server_prg_));
    EXPECT_TRUE(net.idle());
  }
  {  // (3) two-phase arithmetic
    const std::uint64_t p = field::smallest_prime_above(kM * kCap + kN);
    const auto circuit = circuits::ArithCircuit::sum(kM, p);
    net::StarNetwork net(1);
    results.push_back(protocols::run_two_phase_arith(
        net, 0, db, indices, circuit, protocols::SelectionMethod::kPolyMaskClientKey,
        client_sk_, server_sk_, 2, client_prg_, server_prg_)[0]);
    EXPECT_TRUE(net.idle());
  }
  {  // (4) §4 weighted sum with unit weights
    const Fp64 f(field::smallest_prime_above(kM * kCap + kN));
    const protocols::WeightedSumProtocol proto(f, kN, kM, 2);
    net::StarNetwork net(1);
    results.push_back(proto.run(net, 0, db, indices, std::vector<std::uint64_t>(kM, 1),
                                client_sk_, client_prg_, server_prg_));
    EXPECT_TRUE(net.idle());
  }

  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], expect) << "protocol family " << i + 1;
  }
}

TEST_F(IntegrationTest, KeywordMatchAgreesAcrossThreeProtocolFamilies) {
  // f = (x_i == 13) via (1) §3.1 formula protocol on bit columns,
  // (2) BP-PSM, (3) two-phase Yao with a private keyword.
  constexpr std::size_t kN = 64, kBits = 5;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = (i * 7) % 32;
  constexpr std::uint64_t kKeyword = 13;

  for (const std::size_t idx : {0u, 24u, 63u}) {
    const bool expect = db[idx] == kKeyword;
    std::vector<bool> results;

    {  // (1) §3.1: equality of bits as an AND formula over kBits bit columns.
      // Formula arg j = bit j of the item; database per arg = bit column.
      // Encode the match as AND over per-bit equality-to-constant
      // (leaf or NOT(leaf)). Run against a bit-sliced database where each
      // argument selects the same record in a different bit column. To stay
      // within the single-database model, interleave bit columns:
      // position i*kBits + b holds bit b of record i.
      std::string expr;
      for (std::size_t b = 0; b < kBits; ++b) {
        const bool want = ((kKeyword >> b) & 1) != 0;
        if (!expr.empty()) expr += " & ";
        expr += want ? ("x" + std::to_string(b)) : ("~x" + std::to_string(b));
      }
      const auto formula = circuits::Formula::parse(expr);
      std::vector<std::uint64_t> bit_db(kN * kBits);
      for (std::size_t i = 0; i < kN; ++i) {
        for (std::size_t b = 0; b < kBits; ++b) bit_db[i * kBits + b] = (db[i] >> b) & 1;
      }
      const Fp64 f(Fp64::kMersenne61);
      const std::size_t k =
          protocols::MultiServerFormulaSpfe::min_servers(formula, bit_db.size(), 1);
      const protocols::MultiServerFormulaSpfe proto(f, formula, bit_db.size(), k, 1);
      std::vector<std::size_t> bit_indices;
      for (std::size_t b = 0; b < kBits; ++b) bit_indices.push_back(idx * kBits + b);
      net::StarNetwork net(k);
      results.push_back(proto.run(net, bit_db, bit_indices, std::nullopt, client_prg_) != 0);
      EXPECT_TRUE(net.idle());
    }
    {  // (2) BP-PSM
      const protocols::PsmBpSpfeSingleServer proto(
          client_sk_.public_key(), circuits::BranchingProgram::equals_constant(kBits, kKeyword),
          kN, 2);
      net::StarNetwork net(1);
      results.push_back(proto.run(net, db, {idx}, client_sk_, client_prg_, server_prg_));
      EXPECT_TRUE(net.idle());
    }
    {  // (3) two-phase Yao with the keyword as a private parameter
      const auto body = [](circuits::BooleanCircuit& c,
                           const std::vector<circuits::WireBundle>& items,
                           const circuits::WireBundle& param) {
        c.add_output(circuits::build_eq(c, items[0], param));
      };
      const ot::SchnorrGroup group = ot::SchnorrGroup::rfc_like_512();
      net::StarNetwork net(1);
      const auto out = protocols::run_two_phase_boolean_private_param(
          net, 0, db, {idx}, kBits, protocols::SelectionMethod::kPerItem, kKeyword, kBits,
          body, client_sk_, server_sk_, group, 1, client_prg_, server_prg_);
      results.push_back(out[0]);
      EXPECT_TRUE(net.idle());
    }

    for (std::size_t p = 0; p < results.size(); ++p) {
      EXPECT_EQ(results[p], expect) << "idx " << idx << " protocol " << p + 1;
    }
  }
}

TEST_F(IntegrationTest, CensusPipelineMultipleStatisticsOneDatabase) {
  // A realistic session: one census database, three different statistics
  // with three protocols, all consistent with the plaintext.
  crypto::Prg data_prg("integ-census");
  dbgen::CensusOptions options;
  options.num_records = 256;
  options.max_salary = 50'000;
  const auto census = dbgen::generate_census(options, data_prg);
  const auto salaries = census.private_column();
  constexpr std::size_t kM = 6;
  const auto cohort = census.select_sample(
      [](const dbgen::CensusRecord& r) { return r.age_bracket >= 3; }, kM);

  // Statistic 1: mean + variance (§4 package).
  const Fp64 f1(field::smallest_prime_above(kM * 50'001ull * 50'001ull));
  const protocols::MeanVariancePackage pkg(f1, salaries.size(), kM, 1);
  net::StarNetwork net1(1);
  const auto mv = pkg.run(net1, 0, salaries, cohort, client_sk_, client_prg_, server_prg_);
  EXPECT_TRUE(net1.idle());

  // Statistic 2: sum via multi-server (must equal mean * m).
  const Fp64 f61(Fp64::kMersenne61);
  const std::size_t k = protocols::MultiServerSumSpfe::min_servers(salaries.size(), 1);
  const protocols::MultiServerSumSpfe ms(f61, salaries.size(), kM, k, 1);
  net::StarNetwork net2(k);
  const std::uint64_t sum = ms.run(net2, salaries, cohort, std::nullopt, client_prg_);
  EXPECT_TRUE(net2.idle());
  EXPECT_EQ(sum, mv.sum);

  // Statistic 3: frequency of the cohort's own first bracket among brackets.
  std::vector<std::uint64_t> brackets;
  for (const auto& r : census.records) brackets.push_back(r.age_bracket);
  const Fp64 f2(field::smallest_prime_above(brackets.size() + 16));
  const protocols::FrequencyProtocol freq(f2, brackets.size(), kM,
                                          protocols::SelectionMethod::kPolyMaskClientKey, 1);
  net::StarNetwork net3(1);
  const std::uint64_t target = brackets[cohort[0]];
  const std::size_t count = freq.run(net3, 0, brackets, cohort, target, client_sk_, server_sk_,
                                     client_prg_, server_prg_);
  std::size_t expect_count = 0;
  for (const std::size_t i : cohort) expect_count += brackets[i] == target ? 1 : 0;
  EXPECT_EQ(count, expect_count);
  EXPECT_TRUE(net3.idle());
  EXPECT_GE(count, 1u);  // the cohort's own record matches itself
}

}  // namespace
}  // namespace spfe
