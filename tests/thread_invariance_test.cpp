// The parallel crypto engine's contract: SPFE_THREADS is a pure performance
// knob. For any thread count, protocol transcripts (every byte sent in either
// direction) and CommStats metering must be identical to a serial run. These
// tests run bench-shaped PIR and multi-server flows at 1, 2, and 8 threads
// and diff the results.
#include <gtest/gtest.h>

#include <vector>

#include "common/parallel.h"
#include "crypto/prg.h"
#include "he/paillier.h"
#include "net/network.h"
#include "pir/cpir.h"
#include "spfe/multiserver.h"

namespace spfe {
namespace {

using bignum::BigInt;

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

class ThreadInvarianceTest : public ::testing::Test {
 protected:
  ~ThreadInvarianceTest() override { common::ThreadPool::set_global_threads(0); }
};

struct PirTranscript {
  Bytes query;
  Bytes answer;
  std::uint64_t decoded = 0;

  bool operator==(const PirTranscript&) const = default;
};

PirTranscript run_pir(const he::PaillierPrivateKey& sk, std::size_t depth) {
  constexpr std::size_t kN = 128;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = i * 31 + 7;
  const pir::PaillierPir p(sk.public_key(), kN, depth);
  // Fresh, identically seeded PRGs per run: any divergence in PRG
  // consumption order across thread counts would change these bytes.
  crypto::Prg client_prg("ti-pir-client");
  crypto::Prg server_prg("ti-pir-server");
  PirTranscript t;
  pir::PaillierPir::ClientState state;
  t.query = p.make_query(77, state, client_prg);
  t.answer = p.answer_u64(db, t.query, server_prg);
  t.decoded = p.decode_u64(sk, t.answer);
  return t;
}

TEST_F(ThreadInvarianceTest, PaillierPirTranscriptsAreThreadCountInvariant) {
  crypto::Prg prg("ti-pir-key");
  const he::PaillierPrivateKey sk = he::paillier_keygen(prg, 256);
  for (const std::size_t depth : {1u, 2u, 3u}) {
    common::ThreadPool::set_global_threads(1);
    const PirTranscript serial = run_pir(sk, depth);
    EXPECT_EQ(serial.decoded, 77u * 31 + 7);
    for (const std::size_t threads : kThreadCounts) {
      common::ThreadPool::set_global_threads(threads);
      EXPECT_EQ(run_pir(sk, depth), serial)
          << "depth " << depth << ", threads " << threads;
    }
  }
}

struct MultiServerRun {
  std::uint64_t result = 0;
  net::CommStats stats;
};

void expect_same_stats(const net::CommStats& a, const net::CommStats& b,
                       std::size_t threads) {
  EXPECT_EQ(a.client_to_server_bytes, b.client_to_server_bytes) << "threads " << threads;
  EXPECT_EQ(a.server_to_client_bytes, b.server_to_client_bytes) << "threads " << threads;
  EXPECT_EQ(a.client_to_server_messages, b.client_to_server_messages)
      << "threads " << threads;
  EXPECT_EQ(a.server_to_client_messages, b.server_to_client_messages)
      << "threads " << threads;
  EXPECT_EQ(a.half_rounds, b.half_rounds) << "threads " << threads;
}

template <typename Protocol>
MultiServerRun run_multiserver(const Protocol& proto,
                               std::span<const std::uint64_t> database,
                               const std::vector<std::size_t>& indices) {
  net::StarNetwork net(proto.num_servers());
  crypto::Prg prg("ti-ms-client");
  crypto::Prg seed_prg("ti-ms-seed");
  const auto spir_seed = seed_prg.fork_seed("spir");
  MultiServerRun run;
  run.result = proto.run(net, database, indices, spir_seed, prg);
  EXPECT_TRUE(net.idle());
  run.stats = net.stats();
  return run;
}

TEST_F(ThreadInvarianceTest, MultiServerSumIsThreadCountInvariant) {
  const field::Fp64 field(field::Fp64::kMersenne61);
  constexpr std::size_t kN = 512;
  constexpr std::size_t kM = 4;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = (i * 131 + 5) % 10007;
  const std::size_t k = protocols::MultiServerSumSpfe::min_servers(kN, 1);
  const protocols::MultiServerSumSpfe proto(field, kN, kM, k, 1);
  const std::vector<std::size_t> indices = {3, 77, 200, 511};

  common::ThreadPool::set_global_threads(1);
  const MultiServerRun serial = run_multiserver(proto, db, indices);
  EXPECT_EQ(serial.result, (db[3] + db[77] + db[200] + db[511]) % field.modulus());
  for (const std::size_t threads : kThreadCounts) {
    common::ThreadPool::set_global_threads(threads);
    const MultiServerRun run = run_multiserver(proto, db, indices);
    EXPECT_EQ(run.result, serial.result) << "threads " << threads;
    expect_same_stats(run.stats, serial.stats, threads);
  }
}

TEST_F(ThreadInvarianceTest, MultiServerFormulaIsThreadCountInvariant) {
  const field::Fp64 field(field::Fp64::kMersenne61);
  constexpr std::size_t kN = 64;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = i % 2;
  const circuits::Formula formula =
      circuits::Formula::f_and(circuits::Formula::leaf(0), circuits::Formula::leaf(1));
  const std::size_t k = protocols::MultiServerFormulaSpfe::min_servers(formula, kN, 1);
  const protocols::MultiServerFormulaSpfe proto(field, formula, kN, k, 1);
  const std::vector<std::size_t> indices = {3, 7};  // both odd -> both 1 -> AND = 1

  common::ThreadPool::set_global_threads(1);
  const MultiServerRun serial = run_multiserver(proto, db, indices);
  EXPECT_EQ(serial.result, 1u);
  for (const std::size_t threads : kThreadCounts) {
    common::ThreadPool::set_global_threads(threads);
    const MultiServerRun run = run_multiserver(proto, db, indices);
    EXPECT_EQ(run.result, serial.result) << "threads " << threads;
    expect_same_stats(run.stats, serial.stats, threads);
  }
}

// Per-server answer bytes (not just the interpolated result) must match the
// serial run: this pins the full server->client transcript.
TEST_F(ThreadInvarianceTest, MultiServerAnswerBytesAreThreadCountInvariant) {
  const field::Fp64 field(field::Fp64::kMersenne61);
  constexpr std::size_t kN = 256;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = (i * 17 + 3) % 997;
  const std::size_t k = protocols::MultiServerSumSpfe::min_servers(kN, 2);
  const protocols::MultiServerSumSpfe proto(field, kN, 3, k, 2);

  auto transcript = [&] {
    crypto::Prg prg("ti-ms-bytes");
    crypto::Prg seed_prg("ti-ms-bytes-seed");
    const auto spir_seed = seed_prg.fork_seed("spir");
    protocols::MultiServerSumSpfe::ClientState state;
    std::vector<Bytes> msgs = proto.make_queries({1, 128, 255}, state, prg);
    std::vector<Bytes> all = msgs;
    for (std::size_t h = 0; h < msgs.size(); ++h) {
      all.push_back(proto.answer(h, db, msgs[h], &spir_seed));
    }
    return all;
  };

  common::ThreadPool::set_global_threads(1);
  const std::vector<Bytes> serial = transcript();
  for (const std::size_t threads : kThreadCounts) {
    common::ThreadPool::set_global_threads(threads);
    EXPECT_EQ(transcript(), serial) << "threads " << threads;
  }
}

}  // namespace
}  // namespace spfe
