// The parallel crypto engine's contract: SPFE_THREADS is a pure performance
// knob. For any thread count, protocol transcripts (every byte sent in either
// direction) and CommStats metering must be identical to a serial run. These
// tests run bench-shaped PIR and multi-server flows at 1, 2, and 8 threads
// and diff the results.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/parallel.h"
#include "crypto/prg.h"
#include "he/paillier.h"
#include "net/network.h"
#include "obs/obs.h"
#include "pir/cpir.h"
#include "spfe/multiserver.h"

namespace spfe {
namespace {

using bignum::BigInt;

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

class ThreadInvarianceTest : public ::testing::Test {
 protected:
  ~ThreadInvarianceTest() override { common::ThreadPool::set_global_threads(0); }
};

struct PirTranscript {
  Bytes query;
  Bytes answer;
  std::uint64_t decoded = 0;

  bool operator==(const PirTranscript&) const = default;
};

PirTranscript run_pir(const he::PaillierPrivateKey& sk, std::size_t depth) {
  constexpr std::size_t kN = 128;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = i * 31 + 7;
  const pir::PaillierPir p(sk.public_key(), kN, depth);
  // Fresh, identically seeded PRGs per run: any divergence in PRG
  // consumption order across thread counts would change these bytes.
  crypto::Prg client_prg("ti-pir-client");
  crypto::Prg server_prg("ti-pir-server");
  PirTranscript t;
  pir::PaillierPir::ClientState state;
  t.query = p.make_query(77, state, client_prg);
  t.answer = p.answer_u64(db, t.query, server_prg);
  t.decoded = p.decode_u64(sk, t.answer);
  return t;
}

TEST_F(ThreadInvarianceTest, PaillierPirTranscriptsAreThreadCountInvariant) {
  crypto::Prg prg("ti-pir-key");
  const he::PaillierPrivateKey sk = he::paillier_keygen(prg, 256);
  for (const std::size_t depth : {1u, 2u, 3u}) {
    common::ThreadPool::set_global_threads(1);
    const PirTranscript serial = run_pir(sk, depth);
    EXPECT_EQ(serial.decoded, 77u * 31 + 7);
    for (const std::size_t threads : kThreadCounts) {
      common::ThreadPool::set_global_threads(threads);
      EXPECT_EQ(run_pir(sk, depth), serial)
          << "depth " << depth << ", threads " << threads;
    }
  }
}

struct MultiServerRun {
  std::uint64_t result = 0;
  net::CommStats stats;
};

void expect_same_stats(const net::CommStats& a, const net::CommStats& b,
                       std::size_t threads) {
  EXPECT_EQ(a.client_to_server_bytes, b.client_to_server_bytes) << "threads " << threads;
  EXPECT_EQ(a.server_to_client_bytes, b.server_to_client_bytes) << "threads " << threads;
  EXPECT_EQ(a.client_to_server_messages, b.client_to_server_messages)
      << "threads " << threads;
  EXPECT_EQ(a.server_to_client_messages, b.server_to_client_messages)
      << "threads " << threads;
  EXPECT_EQ(a.half_rounds, b.half_rounds) << "threads " << threads;
}

template <typename Protocol>
MultiServerRun run_multiserver(const Protocol& proto,
                               std::span<const std::uint64_t> database,
                               const std::vector<std::size_t>& indices) {
  net::StarNetwork net(proto.num_servers());
  crypto::Prg prg("ti-ms-client");
  crypto::Prg seed_prg("ti-ms-seed");
  const auto spir_seed = seed_prg.fork_seed("spir");
  MultiServerRun run;
  run.result = proto.run(net, database, indices, spir_seed, prg);
  EXPECT_TRUE(net.idle());
  run.stats = net.stats();
  return run;
}

TEST_F(ThreadInvarianceTest, MultiServerSumIsThreadCountInvariant) {
  const field::Fp64 field(field::Fp64::kMersenne61);
  constexpr std::size_t kN = 512;
  constexpr std::size_t kM = 4;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = (i * 131 + 5) % 10007;
  const std::size_t k = protocols::MultiServerSumSpfe::min_servers(kN, 1);
  const protocols::MultiServerSumSpfe proto(field, kN, kM, k, 1);
  const std::vector<std::size_t> indices = {3, 77, 200, 511};

  common::ThreadPool::set_global_threads(1);
  const MultiServerRun serial = run_multiserver(proto, db, indices);
  EXPECT_EQ(serial.result, (db[3] + db[77] + db[200] + db[511]) % field.modulus());
  for (const std::size_t threads : kThreadCounts) {
    common::ThreadPool::set_global_threads(threads);
    const MultiServerRun run = run_multiserver(proto, db, indices);
    EXPECT_EQ(run.result, serial.result) << "threads " << threads;
    expect_same_stats(run.stats, serial.stats, threads);
  }
}

TEST_F(ThreadInvarianceTest, MultiServerFormulaIsThreadCountInvariant) {
  const field::Fp64 field(field::Fp64::kMersenne61);
  constexpr std::size_t kN = 64;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = i % 2;
  const circuits::Formula formula =
      circuits::Formula::f_and(circuits::Formula::leaf(0), circuits::Formula::leaf(1));
  const std::size_t k = protocols::MultiServerFormulaSpfe::min_servers(formula, kN, 1);
  const protocols::MultiServerFormulaSpfe proto(field, formula, kN, k, 1);
  const std::vector<std::size_t> indices = {3, 7};  // both odd -> both 1 -> AND = 1

  common::ThreadPool::set_global_threads(1);
  const MultiServerRun serial = run_multiserver(proto, db, indices);
  EXPECT_EQ(serial.result, 1u);
  for (const std::size_t threads : kThreadCounts) {
    common::ThreadPool::set_global_threads(threads);
    const MultiServerRun run = run_multiserver(proto, db, indices);
    EXPECT_EQ(run.result, serial.result) << "threads " << threads;
    expect_same_stats(run.stats, serial.stats, threads);
  }
}

// Per-server answer bytes (not just the interpolated result) must match the
// serial run: this pins the full server->client transcript.
TEST_F(ThreadInvarianceTest, MultiServerAnswerBytesAreThreadCountInvariant) {
  const field::Fp64 field(field::Fp64::kMersenne61);
  constexpr std::size_t kN = 256;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = (i * 17 + 3) % 997;
  const std::size_t k = protocols::MultiServerSumSpfe::min_servers(kN, 2);
  const protocols::MultiServerSumSpfe proto(field, kN, 3, k, 2);

  auto transcript = [&] {
    crypto::Prg prg("ti-ms-bytes");
    crypto::Prg seed_prg("ti-ms-bytes-seed");
    const auto spir_seed = seed_prg.fork_seed("spir");
    protocols::MultiServerSumSpfe::ClientState state;
    std::vector<Bytes> msgs = proto.make_queries({1, 128, 255}, state, prg);
    std::vector<Bytes> all = msgs;
    for (std::size_t h = 0; h < msgs.size(); ++h) {
      all.push_back(proto.answer(h, db, msgs[h], &spir_seed));
    }
    return all;
  };

  common::ThreadPool::set_global_threads(1);
  const std::vector<Bytes> serial = transcript();
  for (const std::size_t threads : kThreadCounts) {
    common::ThreadPool::set_global_threads(threads);
    EXPECT_EQ(transcript(), serial) << "threads " << threads;
  }
}

// --- trace determinism -------------------------------------------------------
//
// The observability layer's contract mirrors the transcript contract: for a
// fixed seed, the span tree (names, nesting, notes, per-span op deltas) and
// the global op-counter totals are identical at every SPFE_THREADS setting.
// Only timing may differ. This holds because spans are opened exclusively on
// the protocol-driving thread and parallel_for is fork-join, so every span
// boundary is a deterministic program point.

struct SpanShape {
  std::string name;
  std::size_t parent = 0;
  std::size_t depth = 0;
  std::string note;
  obs::OpCounts ops{};

  bool operator==(const SpanShape&) const = default;
};

struct TraceShape {
  std::vector<SpanShape> spans;
  obs::OpCounts totals{};
};

TraceShape capture_trace(const std::function<void()>& run) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_enabled(true);
  tracer.reset();
  run();
  TraceShape shape;
  for (const obs::SpanRecord& s : tracer.spans()) {
    EXPECT_FALSE(s.open()) << "span " << s.name << " left open";
    shape.spans.push_back({s.name, s.parent, s.depth, s.note, s.delta()});
  }
  shape.totals = tracer.totals();
  tracer.set_enabled(false);
  tracer.reset();
  return shape;
}

void expect_same_trace(const TraceShape& got, const TraceShape& want, std::size_t threads) {
  ASSERT_EQ(got.spans.size(), want.spans.size()) << "threads " << threads;
  for (std::size_t i = 0; i < want.spans.size(); ++i) {
    EXPECT_EQ(got.spans[i].name, want.spans[i].name) << "span " << i << ", threads " << threads;
    EXPECT_EQ(got.spans[i].parent, want.spans[i].parent)
        << "span " << i << " (" << want.spans[i].name << "), threads " << threads;
    EXPECT_EQ(got.spans[i].depth, want.spans[i].depth)
        << "span " << i << " (" << want.spans[i].name << "), threads " << threads;
    EXPECT_EQ(got.spans[i].note, want.spans[i].note)
        << "span " << i << " (" << want.spans[i].name << "), threads " << threads;
    for (std::size_t op = 0; op < obs::kNumOps; ++op) {
      EXPECT_EQ(got.spans[i].ops[op], want.spans[i].ops[op])
          << "span " << i << " (" << want.spans[i].name << "), op "
          << obs::op_name(static_cast<obs::Op>(op)) << ", threads " << threads;
    }
  }
  for (std::size_t op = 0; op < obs::kNumOps; ++op) {
    EXPECT_EQ(got.totals[op], want.totals[op])
        << "total " << obs::op_name(static_cast<obs::Op>(op)) << ", threads " << threads;
  }
}

TEST_F(ThreadInvarianceTest, PirTraceIsThreadCountInvariant) {
  crypto::Prg prg("ti-trace-pir-key");
  const he::PaillierPrivateKey sk = he::paillier_keygen(prg, 256);
  common::ThreadPool::set_global_threads(1);
  const TraceShape serial = capture_trace([&] { (void)run_pir(sk, 2); });
  // The cPIR run records at least query/answer/fold/decode spans with ops.
  ASSERT_FALSE(serial.spans.empty());
  bool any_ops = false;
  for (const std::uint64_t c : serial.totals) any_ops |= c != 0;
  EXPECT_TRUE(any_ops);
  for (const std::size_t threads : kThreadCounts) {
    common::ThreadPool::set_global_threads(threads);
    expect_same_trace(capture_trace([&] { (void)run_pir(sk, 2); }), serial, threads);
  }
}

TEST_F(ThreadInvarianceTest, MultiServerTraceIsThreadCountInvariant) {
  const field::Fp64 field(field::Fp64::kMersenne61);
  constexpr std::size_t kN = 256;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = (i * 19 + 11) % 4099;
  const std::size_t k = protocols::MultiServerSumSpfe::min_servers(kN, 1);
  const protocols::MultiServerSumSpfe proto(field, kN, 3, k, 1);
  const std::vector<std::size_t> indices = {2, 100, 255};

  common::ThreadPool::set_global_threads(1);
  const TraceShape serial =
      capture_trace([&] { (void)run_multiserver(proto, db, indices); });
  ASSERT_FALSE(serial.spans.empty());
  // The span tree must contain the multiserver phase structure.
  bool saw_run = false;
  for (const SpanShape& s : serial.spans) saw_run |= s.name == "multiserver.run";
  EXPECT_TRUE(saw_run);
  for (const std::size_t threads : kThreadCounts) {
    common::ThreadPool::set_global_threads(threads);
    expect_same_trace(capture_trace([&] { (void)run_multiserver(proto, db, indices); }),
                      serial, threads);
  }
}

}  // namespace
}  // namespace spfe
