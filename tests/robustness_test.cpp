// Adversarial-input robustness: every protocol parser must handle
// malformed or truncated wire data by throwing spfe::Error (never crashing,
// hanging, or throwing foreign exception types). Messages are mutated by
// truncation, extension, and random byte flips.
#include <gtest/gtest.h>

#include <functional>

#include "common/error.h"
#include "common/serialize.h"
#include "crypto/prg.h"
#include "field/fp64.h"
#include "he/paillier.h"
#include "mpc/yao.h"
#include "mpc/yao_protocol.h"
#include "ot/base_ot.h"
#include "ot/ot_extension.h"
#include "pir/batch_pir.h"
#include "pir/cpir.h"
#include "pir/itpir.h"
#include "spfe/multiserver.h"

namespace spfe {
namespace {

// Applies `handler` to systematically corrupted variants of `valid`.
// The handler may succeed (garbage-in/garbage-out is acceptable for
// semantically — but not syntactically — broken inputs) or throw
// spfe::Error; anything else fails the test.
void fuzz_message(const Bytes& valid, const std::function<void(const Bytes&)>& handler,
                  const std::string& what) {
  crypto::Prg prg("fuzz-" + what);
  std::vector<Bytes> variants;
  variants.push_back({});                                    // empty
  variants.push_back(Bytes(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(
                                              valid.size() / 2)));  // truncated
  {
    Bytes extended = valid;
    append(extended, prg.bytes(16));  // trailing junk
    variants.push_back(std::move(extended));
  }
  for (int trial = 0; trial < 30; ++trial) {  // random single/multi byte flips
    Bytes mutated = valid;
    const std::size_t flips = 1 + prg.uniform(4);
    for (std::size_t f = 0; f < flips && !mutated.empty(); ++f) {
      mutated[prg.uniform(mutated.size())] ^= static_cast<std::uint8_t>(1 + prg.uniform(255));
    }
    variants.push_back(std::move(mutated));
  }
  variants.push_back(prg.bytes(valid.size()));  // pure noise

  for (std::size_t v = 0; v < variants.size(); ++v) {
    try {
      handler(variants[v]);
    } catch (const Error&) {
      // Expected failure mode.
    } catch (const std::exception& e) {
      FAIL() << what << " variant " << v << ": foreign exception: " << e.what();
    }
  }
}

TEST(Robustness, PolyItPirServerRejectsMalformedQueries) {
  const field::Fp64 f(field::Fp64::kMersenne61);
  const pir::PolyItPir pir(f, 64, 7, 1);
  std::vector<std::uint64_t> db(64, 5);
  crypto::Prg prg("r1");
  pir::PolyItPir::ClientState state;
  const Bytes valid = pir.make_queries(3, state, prg)[0];
  fuzz_message(valid, [&](const Bytes& q) { (void)pir.answer(0, db, q, nullptr); },
               "itpir-query");
}

TEST(Robustness, PolyItPirClientRejectsMalformedAnswers) {
  const field::Fp64 f(field::Fp64::kMersenne61);
  const pir::PolyItPir pir(f, 64, 7, 1);
  std::vector<std::uint64_t> db(64, 5);
  crypto::Prg prg("r2");
  pir::PolyItPir::ClientState state;
  const auto queries = pir.make_queries(3, state, prg);
  std::vector<Bytes> answers;
  for (std::size_t h = 0; h < 7; ++h) answers.push_back(pir.answer(h, db, queries[h], nullptr));
  fuzz_message(answers[0],
               [&](const Bytes& a) {
                 std::vector<Bytes> mutated = answers;
                 mutated[0] = a;
                 (void)pir.decode(mutated, state);
               },
               "itpir-answer");
}

TEST(Robustness, PaillierPirServerRejectsMalformedQueries) {
  crypto::Prg prg("r3");
  const auto sk = he::paillier_keygen(prg, 256);
  const pir::PaillierPir pir(sk.public_key(), 16, 2);
  std::vector<std::uint64_t> db(16, 9);
  pir::PaillierPir::ClientState state;
  const Bytes valid = pir.make_query(5, state, prg);
  fuzz_message(valid, [&](const Bytes& q) { (void)pir.answer_u64(db, q, prg); },
               "cpir-query");
}

TEST(Robustness, PaillierPirClientRejectsMalformedAnswers) {
  crypto::Prg prg("r4");
  const auto sk = he::paillier_keygen(prg, 256);
  const pir::PaillierPir pir(sk.public_key(), 16, 2);
  std::vector<std::uint64_t> db(16, 9);
  pir::PaillierPir::ClientState state;
  const Bytes valid = pir.answer_u64(db, pir.make_query(5, state, prg), prg);
  fuzz_message(valid, [&](const Bytes& a) { (void)pir.decode_u64(sk, a); }, "cpir-answer");
}

TEST(Robustness, CuckooBatchPirServerRejectsMalformedQueries) {
  crypto::Prg prg("r5");
  const auto sk = he::paillier_keygen(prg, 256);
  const pir::CuckooBatchPir pir(sk.public_key(), 50, 3, 1);
  std::vector<std::uint64_t> db(50, 2);
  pir::CuckooBatchPir::ClientState state;
  const Bytes valid = pir.make_query({1, 2, 3}, state, prg);
  fuzz_message(valid, [&](const Bytes& q) { (void)pir.answer_u64(db, q, prg); },
               "batch-query");
}

TEST(Robustness, BaseOtSenderRejectsMalformedQueries) {
  const ot::BaseOt ot(ot::SchnorrGroup::rfc_like_512());
  crypto::Prg prg("r6");
  std::vector<ot::OtReceiverState> states;
  const Bytes valid = ot.make_query({true, false}, states, prg);
  std::vector<std::pair<Bytes, Bytes>> msgs = {{Bytes(8, 1), Bytes(8, 2)},
                                               {Bytes(8, 3), Bytes(8, 4)}};
  fuzz_message(valid, [&](const Bytes& q) { (void)ot.answer(q, msgs, prg); }, "ot-query");
}

TEST(Robustness, BaseOtReceiverRejectsMalformedAnswers) {
  const ot::BaseOt ot(ot::SchnorrGroup::rfc_like_512());
  crypto::Prg prg("r7");
  std::vector<ot::OtReceiverState> states;
  const Bytes query = ot.make_query({true}, states, prg);
  std::vector<std::pair<Bytes, Bytes>> msgs = {{Bytes(8, 1), Bytes(8, 2)}};
  const Bytes valid = ot.answer(query, msgs, prg);
  fuzz_message(valid, [&](const Bytes& a) { (void)ot.decode(a, states); }, "ot-answer");
}

TEST(Robustness, OtExtensionRejectsMalformedCorrections) {
  const ot::SchnorrGroup group = ot::SchnorrGroup::rfc_like_512();
  crypto::Prg sprg("r8s"), rprg("r8r");
  ot::OtExtensionSender sender(group);
  ot::OtExtensionReceiver receiver(group, std::vector<bool>(20, true));
  const Bytes m1 = sender.start(sprg);
  const Bytes valid = receiver.respond(m1, rprg);
  std::vector<std::pair<Bytes, Bytes>> msgs(20, {Bytes(16, 1), Bytes(16, 2)});
  fuzz_message(valid, [&](const Bytes& m2) { (void)sender.answer(m2, msgs); }, "ext-resp");
}

TEST(Robustness, GarbledCircuitDeserializeRejectsGarbage) {
  circuits::BooleanCircuit c(2);
  c.add_output(c.and_gate(0, 1));
  crypto::Prg prg("r9");
  const Bytes valid = mpc::garble(c, prg).garbled.serialize();
  fuzz_message(valid, [&](const Bytes& b) { (void)mpc::GarbledCircuit::deserialize(b); },
               "gc-bytes");
}

TEST(Robustness, YaoServerRejectsMalformedClientQuery) {
  circuits::BooleanCircuit c(2);
  c.add_output(c.and_gate(0, 1));
  const ot::SchnorrGroup group = ot::SchnorrGroup::rfc_like_512();
  crypto::Prg cprg("r10c"), sprg("r10s");
  mpc::YaoEvaluatorClient client(c, {true}, group);
  const Bytes valid = client.query(cprg);
  fuzz_message(valid,
               [&](const Bytes& q) {
                 mpc::YaoGarblerServer server(c, {false}, group);
                 (void)server.respond(q, sprg);
               },
               "yao-query");
}

TEST(Robustness, TwoServerXorPirRejectsBadQuerySizes) {
  const pir::TwoServerXorPir pir(16, 4);
  std::vector<Bytes> db(16, Bytes(4, 7));
  crypto::Prg prg("r11");
  pir::TwoServerXorPir::ClientState state;
  const auto [q0, q1] = pir.make_queries(3, state, prg);
  fuzz_message(q0, [&](const Bytes& q) { (void)pir.answer(db, q); }, "xor-query");
}

// --- truncation-at-every-offset sweep ---------------------------------------
//
// fuzz_message only tries one truncation point (half the message); an
// adversarial sender can cut the stream anywhere, including mid-varint and
// mid-length-prefix. Every prefix of a valid message must be rejected with a
// typed spfe::Error (or, for self-delimiting formats, parse to garbage) —
// never a foreign exception like std::length_error or std::bad_alloc from a
// count-driven resize that was never bounds-checked.

void truncation_sweep(const Bytes& valid, const std::function<void(const Bytes&)>& handler,
                      const std::string& what) {
  ASSERT_FALSE(valid.empty()) << what;
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const Bytes prefix(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(len));
    try {
      handler(prefix);
    } catch (const Error&) {
      // Typed rejection is the expected failure mode.
    } catch (const std::exception& e) {
      FAIL() << what << " truncated to " << len << " bytes: foreign exception: " << e.what();
    }
  }
}

TEST(TruncationSweep, GarbledCircuitEveryPrefix) {
  circuits::BooleanCircuit c(2);
  c.add_output(c.and_gate(0, 1));
  crypto::Prg prg("ts1");
  const Bytes valid = mpc::garble(c, prg).garbled.serialize();
  truncation_sweep(valid, [&](const Bytes& b) { (void)mpc::GarbledCircuit::deserialize(b); },
                   "gc-bytes");
}

TEST(TruncationSweep, YaoServerResponseEveryPrefix) {
  circuits::BooleanCircuit c(2);
  c.add_output(c.and_gate(0, 1));
  const ot::SchnorrGroup group = ot::SchnorrGroup::rfc_like_512();
  crypto::Prg cprg("ts2c"), sprg("ts2s");
  mpc::YaoEvaluatorClient client(c, {true}, group);
  const Bytes query = client.query(cprg);
  mpc::YaoGarblerServer server(c, {false}, group);
  const Bytes valid = server.respond(query, sprg);
  truncation_sweep(valid, [&](const Bytes& resp) { (void)client.decode(resp); },
                   "yao-response");
}

TEST(TruncationSweep, CpirAnswerEveryPrefix) {
  crypto::Prg prg("ts3");
  const auto sk = he::paillier_keygen(prg, 256);
  const pir::PaillierPir pir(sk.public_key(), 16, 2);
  std::vector<std::uint64_t> db(16, 9);
  pir::PaillierPir::ClientState state;
  const Bytes valid = pir.answer_u64(db, pir.make_query(5, state, prg), prg);
  truncation_sweep(valid, [&](const Bytes& a) { (void)pir.decode_u64(sk, a); }, "cpir-answer");
}

TEST(TruncationSweep, ItPirQueryEveryPrefix) {
  const field::Fp64 f(field::Fp64::kMersenne61);
  const pir::PolyItPir pir(f, 64, 7, 1);
  std::vector<std::uint64_t> db(64, 5);
  crypto::Prg prg("ts4");
  pir::PolyItPir::ClientState state;
  const Bytes valid = pir.make_queries(3, state, prg)[0];
  truncation_sweep(valid, [&](const Bytes& q) { (void)pir.answer(0, db, q, nullptr); },
                   "itpir-query");
}

// --- adversarial element counts ---------------------------------------------
//
// Regression for the Reader::varint_count hardening: a message whose count
// field claims ~2^60 elements used to reach vector::resize/reserve and throw
// std::length_error or std::bad_alloc (foreign exceptions — or worse, an
// allocation attempt sized by the adversary). Every count must now be checked
// against the remaining payload and rejected as SerializationError.

TEST(Robustness, GarbledCircuitRejectsHugeTableCount) {
  Writer w;
  w.varint(std::uint64_t(1) << 60);  // claims ~10^18 garbled tables
  EXPECT_THROW((void)mpc::GarbledCircuit::deserialize(w.data()), SerializationError);
}

TEST(Robustness, GarbledCircuitRejectsHugeConstLabelCount) {
  Writer w;
  w.varint(0);                       // zero tables (valid)
  w.varint(std::uint64_t(1) << 60);  // huge const-label count
  EXPECT_THROW((void)mpc::GarbledCircuit::deserialize(w.data()), SerializationError);
}

TEST(Robustness, YaoResponseRejectsHugeServerLabelCount) {
  circuits::BooleanCircuit c(2);
  c.add_output(c.and_gate(0, 1));
  const ot::SchnorrGroup group = ot::SchnorrGroup::rfc_like_512();
  crypto::Prg cprg("hc1");
  mpc::YaoEvaluatorClient client(c, {true}, group);
  (void)client.query(cprg);
  crypto::Prg gprg("hc2");
  const Bytes gc_bytes = mpc::garble(c, gprg).garbled.serialize();
  Writer w;
  w.bytes({});                       // empty OT answer (parsed before use)
  w.bytes(gc_bytes);                 // valid garbled circuit
  w.varint(std::uint64_t(1) << 60);  // huge server-label count
  EXPECT_THROW((void)client.decode(w.data()), SerializationError);
}

TEST(Robustness, CpirAnswerRejectsHugeCiphertextCount) {
  crypto::Prg prg("hc3");
  const auto sk = he::paillier_keygen(prg, 256);
  const pir::PaillierPir pir(sk.public_key(), 16, 2);
  Writer w;
  w.varint(std::uint64_t(1) << 60);  // claims ~10^18 ciphertexts
  EXPECT_THROW((void)pir.decode_u64(sk, w.data()), SerializationError);
}

// --- systematic single-bit-flip sweep ---------------------------------------
//
// Complements fuzz_message's random mutations: every byte position of the
// serialized message gets exactly one (seeded) bit flipped. The parser must
// either throw spfe::Error or complete; a handler that can verify the final
// result additionally asserts the flip never yields a silently wrong value.

void bit_flip_sweep(const Bytes& valid, const std::function<void(const Bytes&)>& handler,
                    const std::string& what) {
  ASSERT_FALSE(valid.empty()) << what;
  crypto::Prg prg("bitflip-" + what);
  for (std::size_t i = 0; i < valid.size(); ++i) {
    Bytes mutated = valid;
    mutated[i] ^= static_cast<std::uint8_t>(1u << prg.uniform(8));
    try {
      handler(mutated);
    } catch (const Error&) {
      // Typed rejection is the expected failure mode.
    } catch (const std::exception& e) {
      FAIL() << what << " byte " << i << ": foreign exception: " << e.what();
    }
  }
}

TEST(BitFlipSweep, ItPirQueryEveryByte) {
  const field::Fp64 f(field::Fp64::kMersenne61);
  const pir::PolyItPir pir(f, 64, 7, 1);
  std::vector<std::uint64_t> db(64, 5);
  crypto::Prg prg("bf1");
  pir::PolyItPir::ClientState state;
  const Bytes valid = pir.make_queries(3, state, prg)[0];
  bit_flip_sweep(valid, [&](const Bytes& q) { (void)pir.answer(0, db, q, nullptr); },
                 "itpir-query");
}

TEST(BitFlipSweep, ItPirAnswerEveryByteNeverDecodesWrong) {
  // Provisioned with e = 1 redundancy (k = l*t + 3), the robust decode must
  // turn every single-bit answer corruption into either a typed error or the
  // exact honest item — never a silently wrong value.
  const field::Fp64 f(field::Fp64::kMersenne61);
  const pir::PolyItPir pir(f, 64, 9, 1);
  std::vector<std::uint64_t> db(64);
  for (std::size_t i = 0; i < db.size(); ++i) db[i] = 1000 + i;
  crypto::Prg prg("bf2");
  pir::PolyItPir::ClientState state;
  const auto queries = pir.make_queries(3, state, prg);
  std::vector<Bytes> answers;
  for (std::size_t h = 0; h < 9; ++h) answers.push_back(pir.answer(h, db, queries[h], nullptr));
  bit_flip_sweep(answers[4],
                 [&](const Bytes& a) {
                   std::vector<Bytes> mutated = answers;
                   mutated[4] = a;
                   EXPECT_EQ(pir.decode_with_errors(mutated, state, 1), db[3]);
                 },
                 "itpir-answer-robust");
}

TEST(BitFlipSweep, MultiServerSpfeQueryAndAnswerEveryByte) {
  const field::Fp64 f(field::Fp64::kMersenne61);
  const std::size_t k = protocols::MultiServerSumSpfe::min_servers(64, 1) + 2;
  const protocols::MultiServerSumSpfe proto(f, 64, 2, k, 1);
  std::vector<std::uint64_t> db(64, 3);
  crypto::Prg prg("bf3");
  protocols::MultiServerSumSpfe::ClientState state;
  const auto queries = proto.make_queries({1, 9}, state, prg);
  bit_flip_sweep(queries[0], [&](const Bytes& q) { (void)proto.answer(0, db, q, nullptr); },
                 "spfe-query");
  std::vector<Bytes> answers;
  for (std::size_t h = 0; h < k; ++h) answers.push_back(proto.answer(h, db, queries[h], nullptr));
  bit_flip_sweep(answers[2],
                 [&](const Bytes& a) {
                   std::vector<Bytes> mutated = answers;
                   mutated[2] = a;
                   // e = 1 slack: corrected exactly or rejected, never wrong.
                   EXPECT_EQ(proto.decode_with_errors(mutated, state, 1), 6u);
                 },
                 "spfe-answer-robust");
}

TEST(BitFlipSweep, TwoServerXorPirQueryAndAnswerEveryByte) {
  const pir::TwoServerXorPir pir(16, 4);
  std::vector<Bytes> db(16, Bytes(4, 7));
  crypto::Prg prg("bf4");
  pir::TwoServerXorPir::ClientState state;
  const auto [q0, q1] = pir.make_queries(3, state, prg);
  bit_flip_sweep(q0, [&](const Bytes& q) { (void)pir.answer(db, q); }, "xor-query");
  const Bytes a0 = pir.answer(db, q0);
  const Bytes a1 = pir.answer(db, q1);
  bit_flip_sweep(a0, [&](const Bytes& a) { (void)pir.decode(a, a1, state); }, "xor-answer");
}

TEST(BitFlipSweep, BaseOtMessagesEveryByte) {
  const ot::BaseOt ot(ot::SchnorrGroup::rfc_like_512());
  crypto::Prg prg("bf5");
  std::vector<ot::OtReceiverState> states;
  const Bytes query = ot.make_query({true}, states, prg);
  std::vector<std::pair<Bytes, Bytes>> msgs = {{Bytes(8, 1), Bytes(8, 2)}};
  bit_flip_sweep(query, [&](const Bytes& q) { (void)ot.answer(q, msgs, prg); }, "ot-query");
  const Bytes answer = ot.answer(query, msgs, prg);
  bit_flip_sweep(answer, [&](const Bytes& a) { (void)ot.decode(a, states); }, "ot-answer");
}

TEST(BitFlipSweep, GarbledCircuitBytesEveryByte) {
  circuits::BooleanCircuit c(2);
  c.add_output(c.and_gate(0, 1));
  crypto::Prg prg("bf6");
  const Bytes valid = mpc::garble(c, prg).garbled.serialize();
  bit_flip_sweep(valid, [&](const Bytes& b) { (void)mpc::GarbledCircuit::deserialize(b); },
                 "gc-bytes");
}

}  // namespace
}  // namespace spfe
