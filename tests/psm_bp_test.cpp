#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "circuits/branching_program.h"
#include "common/error.h"
#include "field/gf2.h"
#include "psm/psm_bp.h"

namespace spfe::psm {
namespace {

using circuits::BpGuard;
using circuits::BranchingProgram;
using circuits::Formula;
using field::Gf2Matrix;

// ---- Gf2Matrix ----------------------------------------------------------------

TEST(Gf2Matrix, MultiplyIdentity) {
  crypto::Prg prg("gf2-id");
  const Gf2Matrix m = Gf2Matrix::random(8, prg);
  EXPECT_EQ(m * Gf2Matrix::identity(8), m);
  EXPECT_EQ(Gf2Matrix::identity(8) * m, m);
}

TEST(Gf2Matrix, MultiplyKnownValue) {
  // [[1,1],[0,1]] * [[1,0],[1,1]] = [[0,1],[1,1]] over GF(2).
  Gf2Matrix a(2), b(2);
  a.set(0, 0, true);
  a.set(0, 1, true);
  a.set(1, 1, true);
  b.set(0, 0, true);
  b.set(1, 0, true);
  b.set(1, 1, true);
  const Gf2Matrix c = a * b;
  EXPECT_FALSE(c.get(0, 0));
  EXPECT_TRUE(c.get(0, 1));
  EXPECT_TRUE(c.get(1, 0));
  EXPECT_TRUE(c.get(1, 1));
}

TEST(Gf2Matrix, DeterminantBasics) {
  EXPECT_TRUE(Gf2Matrix::identity(5).determinant());
  Gf2Matrix singular(3);  // zero matrix
  EXPECT_FALSE(singular.determinant());
  // Unit upper-triangular always has det 1.
  crypto::Prg prg("gf2-det");
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(Gf2Matrix::random_unit_upper(10, prg).determinant());
  }
}

TEST(Gf2Matrix, DeterminantMultiplicative) {
  crypto::Prg prg("gf2-mult");
  for (int i = 0; i < 50; ++i) {
    const Gf2Matrix a = Gf2Matrix::random(6, prg);
    const Gf2Matrix b = Gf2Matrix::random(6, prg);
    EXPECT_EQ((a * b).determinant(), a.determinant() && b.determinant());
  }
}

TEST(Gf2Matrix, SerializationRoundTrip) {
  crypto::Prg prg("gf2-ser");
  for (const std::size_t dim : {1u, 2u, 7u, 8u, 9u, 33u, 64u}) {
    const Gf2Matrix m = Gf2Matrix::random(dim, prg);
    const Bytes b = m.to_bytes();
    EXPECT_EQ(b.size(), Gf2Matrix::byte_size(dim));
    EXPECT_EQ(Gf2Matrix::from_bytes(dim, b), m);
  }
  EXPECT_THROW(Gf2Matrix::from_bytes(4, Bytes(1)), SerializationError);
  EXPECT_THROW(Gf2Matrix(0), InvalidArgument);
  EXPECT_THROW(Gf2Matrix(65), InvalidArgument);
}

// ---- BranchingProgram ----------------------------------------------------------

TEST(BranchingProgram, DirectPathCounting) {
  // Two parallel paths 0->2 (one direct, one via 1): f = g_direct ^ (g1 & g2).
  BranchingProgram bp(3);
  bp.add_edge(0, 1, BpGuard::literal(0, 0));
  bp.add_edge(1, 2, BpGuard::literal(1, 0));
  bp.add_edge(0, 2, BpGuard::literal(2, 0));
  for (std::uint64_t mask = 0; mask < 8; ++mask) {
    const std::vector<std::uint64_t> args = {mask & 1, (mask >> 1) & 1, (mask >> 2) & 1};
    const bool expect = ((args[0] & args[1]) ^ args[2]) != 0;
    EXPECT_EQ(bp.eval(args), expect) << mask;
  }
}

TEST(BranchingProgram, FromFormulaMatchesFormulaEval) {
  const char* exprs[] = {"x0",           "~x0",          "x0 & x1",       "x0 | x1",
                         "x0 ^ x1",      "x0 & x1 & x2", "(x0 | x1) & ~x2",
                         "(x0 ^ x1) | (x2 & x0)", "1", "0", "~(x0 & ~x1) ^ x2"};
  for (const char* expr : exprs) {
    const Formula f = Formula::parse(expr);
    const BranchingProgram bp = BranchingProgram::from_formula(f);
    const std::size_t arity = std::max<std::size_t>(f.arity(), 1);
    for (std::uint64_t mask = 0; mask < (std::uint64_t(1) << arity); ++mask) {
      std::vector<bool> fargs(arity);
      std::vector<std::uint64_t> bargs(arity);
      for (std::size_t i = 0; i < arity; ++i) {
        fargs[i] = ((mask >> i) & 1) != 0;
        bargs[i] = (mask >> i) & 1;
      }
      EXPECT_EQ(bp.eval(bargs), f.eval(fargs)) << expr << " mask=" << mask;
    }
  }
}

TEST(BranchingProgram, EqualsConstant) {
  const BranchingProgram bp = BranchingProgram::equals_constant(5, 19);
  for (std::uint64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(bp.eval({v}), v == 19) << v;
  }
  EXPECT_EQ(bp.matrix_dim(), 5u);
}

TEST(BranchingProgram, Validation) {
  EXPECT_THROW(BranchingProgram(1), InvalidArgument);
  BranchingProgram bp(3);
  EXPECT_THROW(bp.add_edge(2, 1, BpGuard::always()), InvalidArgument);
  EXPECT_THROW(bp.add_edge(0, 3, BpGuard::always()), InvalidArgument);
}

// ---- BpPsm ----------------------------------------------------------------------

crypto::Prg::Seed seed_of(const std::string& label) {
  return crypto::Prg(label).fork_seed("bp-psm-test");
}

TEST(BpPsm, ReconstructsEqualityFunction) {
  // Player 0 holds a 4-bit value; f = (y == 11).
  const BpPsm psm(BranchingProgram::equals_constant(4, 11));
  for (std::uint64_t y = 0; y < 16; ++y) {
    const auto seed = seed_of("eq" + std::to_string(y));
    const std::vector<Bytes> msgs = {psm.player_message(0, y, seed)};
    EXPECT_EQ(psm.reconstruct(msgs, psm.referee_extra(seed)), y == 11) << y;
  }
}

TEST(BpPsm, ReconstructsTwoPlayerFormula) {
  // f(x0, x1) = x0 OR x1, one bit per player.
  const BpPsm psm(BranchingProgram::from_formula(Formula::parse("x0 | x1")));
  ASSERT_EQ(psm.num_players(), 2u);
  for (std::uint64_t a = 0; a < 2; ++a) {
    for (std::uint64_t b = 0; b < 2; ++b) {
      const auto seed = seed_of("or" + std::to_string(a * 2 + b));
      const std::vector<Bytes> msgs = {psm.player_message(0, a, seed),
                                       psm.player_message(1, b, seed)};
      EXPECT_EQ(psm.reconstruct(msgs, psm.referee_extra(seed)), (a | b) != 0);
    }
  }
}

TEST(BpPsm, BatchMatchesSingle) {
  const BpPsm psm(BranchingProgram::equals_constant(6, 42));
  const auto seed = seed_of("batch");
  const std::vector<std::uint64_t> ys = {0, 42, 63};
  const auto batch = psm.player_messages(0, ys, seed);
  for (std::size_t i = 0; i < ys.size(); ++i) {
    EXPECT_EQ(batch[i], psm.player_message(0, ys[i], seed));
  }
}

TEST(BpPsm, EncodingDeterminantEqualsFunction) {
  const Formula f = Formula::parse("(x0 & x1) ^ x2");
  const BpPsm psm(BranchingProgram::from_formula(f));
  for (std::uint64_t mask = 0; mask < 8; ++mask) {
    const std::vector<std::uint64_t> args = {mask & 1, (mask >> 1) & 1, (mask >> 2) & 1};
    const auto seed = seed_of("det" + std::to_string(mask));
    const bool expect = f.eval({(mask & 1) != 0, ((mask >> 1) & 1) != 0,
                                ((mask >> 2) & 1) != 0});
    EXPECT_EQ(psm.encode(args, seed).determinant(), expect);
  }
}

TEST(BpPsm, PerfectPrivacyEncodingDistribution) {
  // The heart of the [30] security claim: the distribution of L*M(x)*R must
  // depend only on f(x). Compare empirical message distributions for two
  // inputs with the same output, on a small BP (dim 2 -> 16 possible
  // matrices), using many random seeds.
  const BpPsm psm(BranchingProgram::from_formula(Formula::parse("x0 & x1")));
  ASSERT_EQ(psm.matrix_dim(), 2u);
  // f(0,1) = f(1,0) = 0: distributions over encodings must match.
  std::map<Bytes, int> dist_a, dist_b;
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    const auto seed = seed_of("priv" + std::to_string(t));
    dist_a[psm.encode({0, 1}, seed).to_bytes()]++;
    dist_b[psm.encode({1, 0}, seed).to_bytes()]++;
  }
  ASSERT_EQ(dist_a.size(), dist_b.size());
  for (const auto& [bytes, count] : dist_a) {
    const auto it = dist_b.find(bytes);
    ASSERT_NE(it, dist_b.end());
    EXPECT_NEAR(count, it->second, 5 * std::max(10.0, std::sqrt(count))) << hex_encode(bytes);
  }
}

TEST(BpPsm, ExhaustiveOrbitUniformityDim3) {
  // Exhaustive check of the randomization lemma at dim 3: enumerate all
  // unit upper-triangular (L, R) pairs (2^3 each) and verify that the
  // multiset {L*M*R} is identical for two matrices M, M' of the same form
  // (unit subdiagonal, zero below) with equal determinant.
  auto enumerate = [](const Gf2Matrix& m) {
    std::map<Bytes, int> multiset;
    for (unsigned lbits = 0; lbits < 8; ++lbits) {
      for (unsigned rbits = 0; rbits < 8; ++rbits) {
        Gf2Matrix l = Gf2Matrix::identity(3), r = Gf2Matrix::identity(3);
        l.set(0, 1, lbits & 1);
        l.set(0, 2, (lbits >> 1) & 1);
        l.set(1, 2, (lbits >> 2) & 1);
        r.set(0, 1, rbits & 1);
        r.set(0, 2, (rbits >> 1) & 1);
        r.set(1, 2, (rbits >> 2) & 1);
        multiset[(l * m * r).to_bytes()]++;
      }
    }
    return multiset;
  };
  // Build all matrices with unit subdiagonal / zero below; top area free
  // (entries (0,0),(0,1),(0,2),(1,1),(1,2),(2,2)): 64 matrices.
  std::map<bool, std::vector<Gf2Matrix>> by_det;
  for (unsigned bits = 0; bits < 64; ++bits) {
    Gf2Matrix m(3);
    m.set(1, 0, true);
    m.set(2, 1, true);
    m.set(0, 0, bits & 1);
    m.set(0, 1, (bits >> 1) & 1);
    m.set(0, 2, (bits >> 2) & 1);
    m.set(1, 1, (bits >> 3) & 1);
    m.set(1, 2, (bits >> 4) & 1);
    m.set(2, 2, (bits >> 5) & 1);
    by_det[m.determinant()].push_back(m);
  }
  for (const auto& [det, matrices] : by_det) {
    ASSERT_GE(matrices.size(), 2u);
    const auto reference = enumerate(matrices[0]);
    for (std::size_t i = 1; i < matrices.size(); ++i) {
      EXPECT_EQ(enumerate(matrices[i]), reference) << "det=" << det << " i=" << i;
    }
  }
}

TEST(BpPsm, MessageSizeMatchesDim) {
  const BpPsm psm(BranchingProgram::equals_constant(8, 0));
  EXPECT_EQ(psm.message_bytes(), Gf2Matrix::byte_size(8));
  const auto seed = seed_of("size");
  EXPECT_EQ(psm.player_message(0, 5, seed).size(), psm.message_bytes());
}

TEST(BpPsm, Validation) {
  BranchingProgram no_inputs(2);
  no_inputs.add_edge(0, 1, BpGuard::always());
  EXPECT_THROW(BpPsm{no_inputs}, InvalidArgument);
  const BpPsm psm(BranchingProgram::equals_constant(4, 1));
  const auto seed = seed_of("v");
  EXPECT_THROW(psm.player_message(1, 0, seed), InvalidArgument);
  EXPECT_THROW(psm.reconstruct({}, Bytes(Gf2Matrix::byte_size(4))), InvalidArgument);
}

}  // namespace
}  // namespace spfe::psm
