#include <gtest/gtest.h>

#include "bignum/primes.h"
#include "common/error.h"
#include "field/fp64.h"
#include "field/polynomial.h"
#include "field/zp.h"

namespace spfe::field {
namespace {

using bignum::BigInt;

TEST(Fp64, ConstructionValidation) {
  EXPECT_NO_THROW(Fp64(2));
  EXPECT_NO_THROW(Fp64(Fp64::kMersenne61));
  EXPECT_THROW(Fp64(1), InvalidArgument);
  EXPECT_THROW(Fp64(15), InvalidArgument);  // composite
  EXPECT_THROW(Fp64(std::uint64_t(1) << 63), InvalidArgument);
}

TEST(Fp64, BasicArithmetic) {
  const Fp64 f(17);
  EXPECT_EQ(f.add(9, 12), 4u);
  EXPECT_EQ(f.sub(3, 9), 11u);
  EXPECT_EQ(f.mul(5, 7), 1u);
  EXPECT_EQ(f.neg(5), 12u);
  EXPECT_EQ(f.neg(0), 0u);
  EXPECT_EQ(f.from_u64(100), 15u);
  EXPECT_EQ(f.from_i64(-1), 16u);
  EXPECT_EQ(f.from_i64(-18), 16u);
}

TEST(Fp64, InverseAndPow) {
  const Fp64 f(101);
  for (std::uint64_t a = 1; a < 101; ++a) {
    EXPECT_EQ(f.mul(a, f.inv(a)), 1u);
  }
  EXPECT_THROW(f.inv(0), CryptoError);
  EXPECT_EQ(f.pow(2, 100), 1u);  // Fermat
}

TEST(Fp64, Mersenne61LargeProducts) {
  const Fp64 f(Fp64::kMersenne61);
  const std::uint64_t a = Fp64::kMersenne61 - 1;
  EXPECT_EQ(f.mul(a, a), 1u);  // (-1)^2 = 1
  crypto::Prg prg("fp64");
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t x = f.random(prg);
    const std::uint64_t y = f.random(prg);
    EXPECT_EQ(f.mul(x, y), f.mul(y, x));
    EXPECT_EQ(f.add(x, f.neg(x)), 0u);
  }
}

TEST(Fp64, SmallestPrimeAbove) {
  EXPECT_EQ(smallest_prime_above(0), 2u);
  EXPECT_EQ(smallest_prime_above(2), 3u);
  EXPECT_EQ(smallest_prime_above(10), 11u);
  EXPECT_EQ(smallest_prime_above(1000000), 1000003u);
  const std::uint64_t p = smallest_prime_above(1u << 20);
  EXPECT_NO_THROW(Fp64{p});
}

TEST(Zp, BasicArithmetic) {
  const Zp f(BigInt(101));
  EXPECT_EQ(f.add(BigInt(60), BigInt(60)), BigInt(19));
  EXPECT_EQ(f.mul(BigInt(10), BigInt(11)), BigInt(9));
  EXPECT_EQ(f.sub(BigInt(3), BigInt(9)), BigInt(95));
  EXPECT_EQ(f.mul(BigInt(5), f.inv(BigInt(5))), BigInt(1));
  EXPECT_EQ(f.pow(BigInt(2), BigInt(100)), BigInt(1));
}

TEST(Zp, RejectsEvenModulus) { EXPECT_THROW(Zp(BigInt(100)), InvalidArgument); }

TEST(Zp, LargeModulus) {
  crypto::Prg prg("zp");
  const BigInt p = bignum::random_prime(prg, 128, 16);
  const Zp f(p);
  const BigInt a = f.random(prg);
  const BigInt b = f.random(prg);
  EXPECT_EQ(f.add(f.mul(a, b), f.neg(f.mul(b, a))), f.zero());
  EXPECT_EQ(f.mul(a, f.inv(a)), f.one());
}

TEST(Polynomial, EvalHorner) {
  const Fp64 f(97);
  // p(x) = 3 + 2x + x^2
  const Polynomial<Fp64> p(f, {3, 2, 1});
  EXPECT_EQ(p.eval(0), 3u);
  EXPECT_EQ(p.eval(1), 6u);
  EXPECT_EQ(p.eval(5), (3 + 10 + 25) % 97u);
  EXPECT_EQ(p.degree(), 2u);
}

TEST(Polynomial, TrimsLeadingZeros) {
  const Fp64 f(97);
  const Polynomial<Fp64> p(f, {5, 0, 0});
  EXPECT_EQ(p.degree(), 0u);
  const Polynomial<Fp64> z(f, {0, 0});
  EXPECT_TRUE(z.is_zero());
}

TEST(Polynomial, AddMul) {
  const Fp64 f(97);
  const Polynomial<Fp64> a(f, {1, 2});      // 1 + 2x
  const Polynomial<Fp64> b(f, {3, 0, 4});   // 3 + 4x^2
  const Polynomial<Fp64> sum = a + b;
  EXPECT_EQ(sum.coefficients(), (std::vector<std::uint64_t>{4, 2, 4}));
  const Polynomial<Fp64> prod = a * b;  // 3 + 6x + 4x^2 + 8x^3
  EXPECT_EQ(prod.coefficients(), (std::vector<std::uint64_t>{3, 6, 4, 8}));
}

TEST(Polynomial, RandomWithConstant) {
  const Fp64 f(1009);
  crypto::Prg prg("poly");
  const auto p = Polynomial<Fp64>::random_with_constant(f, 5, 42, prg);
  EXPECT_EQ(p.eval(0), 42u);
  EXPECT_LE(p.degree(), 5u);
}

TEST(Polynomial, InterpolateRecoversPolynomial) {
  const Fp64 f(1009);
  crypto::Prg prg("interp");
  for (std::size_t deg = 0; deg <= 6; ++deg) {
    const auto p = Polynomial<Fp64>::random(f, deg, prg);
    std::vector<std::uint64_t> xs, ys;
    for (std::uint64_t x = 1; x <= deg + 1; ++x) {
      xs.push_back(x);
      ys.push_back(p.eval(x));
    }
    // Recover at several points, including 0.
    EXPECT_EQ(interpolate_at(f, xs, ys, std::uint64_t(0)), p.eval(0)) << "deg=" << deg;
    EXPECT_EQ(interpolate_at(f, xs, ys, std::uint64_t(500)), p.eval(500));
  }
}

TEST(Polynomial, InterpolateRejectsDuplicates) {
  const Fp64 f(97);
  EXPECT_THROW(
      interpolate_at(f, std::vector<std::uint64_t>{1, 1}, std::vector<std::uint64_t>{2, 3},
                     std::uint64_t(0)),
      InvalidArgument);
  EXPECT_THROW(interpolate_at(f, std::vector<std::uint64_t>{}, std::vector<std::uint64_t>{},
                              std::uint64_t(0)),
               InvalidArgument);
}

TEST(Polynomial, LagrangeWeightsMatchInterpolation) {
  const Fp64 f(1009);
  crypto::Prg prg("weights");
  const auto p = Polynomial<Fp64>::random(f, 4, prg);
  std::vector<std::uint64_t> xs, ys;
  for (std::uint64_t x = 1; x <= 5; ++x) {
    xs.push_back(x);
    ys.push_back(p.eval(x));
  }
  const auto w = lagrange_weights_at_zero(f, xs);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) acc = f.add(acc, f.mul(w[i], ys[i]));
  EXPECT_EQ(acc, p.eval(0));
}

TEST(Polynomial, WorksOverZp) {
  const Zp f(BigInt(10007));
  crypto::Prg prg("zp-poly");
  const auto p = Polynomial<Zp>::random_with_constant(f, 3, BigInt(77), prg);
  std::vector<BigInt> xs, ys;
  for (std::uint64_t x = 1; x <= 4; ++x) {
    xs.push_back(BigInt(x));
    ys.push_back(p.eval(BigInt(x)));
  }
  EXPECT_EQ(interpolate_at(f, xs, ys, BigInt()), BigInt(77));
}

TEST(Polynomial, MWiseIndependencePointEvaluations) {
  // A random degree-(m-1) polynomial evaluated at m fixed points should be
  // (close to) uniform on each coordinate: sanity-check the masking family
  // used by the §3.3.2 input-selection protocol.
  const Fp64 f(17);
  crypto::Prg prg("mwise");
  constexpr std::size_t kM = 3;
  std::vector<int> counts(17, 0);
  for (int trial = 0; trial < 1700; ++trial) {
    const auto p = Polynomial<Fp64>::random(f, kM - 1, prg);
    counts[p.eval(5)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 50);
    EXPECT_LT(c, 160);
  }
}

}  // namespace
}  // namespace spfe::field
