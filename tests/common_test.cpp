#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/error.h"
#include "common/serialize.h"

namespace spfe {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(hex_encode(data), "0001abff7f");
  EXPECT_EQ(hex_decode("0001abff7f"), data);
  EXPECT_EQ(hex_decode("0001ABFF7F"), data);
}

TEST(Hex, Empty) {
  EXPECT_EQ(hex_encode({}), "");
  EXPECT_TRUE(hex_decode("").empty());
}

TEST(Hex, RejectsOddLength) { EXPECT_THROW(hex_decode("abc"), SerializationError); }

TEST(Hex, RejectsNonHex) { EXPECT_THROW(hex_decode("zz"), SerializationError); }

TEST(Bytes, XorBytes) {
  const Bytes a = {0xff, 0x00, 0x55};
  const Bytes b = {0x0f, 0xf0, 0xaa};
  EXPECT_EQ(xor_bytes(a, b), (Bytes{0xf0, 0xf0, 0xff}));
  EXPECT_THROW(xor_bytes(a, Bytes{0x00}), InvalidArgument);
}

TEST(Bytes, CtEqual) {
  const Bytes a = {1, 2, 3};
  EXPECT_TRUE(ct_equal(a, Bytes{1, 2, 3}));
  EXPECT_FALSE(ct_equal(a, Bytes{1, 2, 4}));
  EXPECT_FALSE(ct_equal(a, Bytes{1, 2}));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Serialize, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VarintRoundTrip) {
  const std::uint64_t values[] = {0,    1,    127,  128,   16383, 16384,
                                  1u << 20, ~0ull >> 1, ~0ull};
  Writer w;
  for (auto v : values) w.varint(v);
  Reader r(w.data());
  for (auto v : values) EXPECT_EQ(r.varint(), v);
  r.expect_done();
}

TEST(Serialize, VarintEncodingIsMinimalForSmall) {
  Writer w;
  w.varint(5);
  EXPECT_EQ(w.data().size(), 1u);
}

TEST(Serialize, BytesAndStrings) {
  Writer w;
  w.bytes(Bytes{1, 2, 3});
  w.str("hello");
  w.bytes({});
  Reader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.bytes().empty());
  r.expect_done();
}

TEST(Serialize, TruncationThrows) {
  Writer w;
  w.u32(42);
  Reader r(w.data());
  r.u16();
  EXPECT_THROW(r.u32(), SerializationError);
}

TEST(Serialize, LengthBeyondBufferThrows) {
  Writer w;
  w.varint(1000);  // length prefix with no payload
  Reader r(w.data());
  EXPECT_THROW(r.bytes(), SerializationError);
}

TEST(Serialize, ExpectDoneThrowsOnTrailing) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_done(), SerializationError);
}

TEST(Serialize, VarintCountAcceptsPlausibleCount) {
  Writer w;
  w.varint(3);
  w.raw(Bytes(12, 0xab));  // 3 items of >= 4 bytes each
  Reader r(w.data());
  EXPECT_EQ(r.varint_count(4), 3u);
}

TEST(Serialize, VarintCountRejectsCountBeyondBuffer) {
  // A count whose minimal payload cannot fit in the remaining bytes must be
  // rejected BEFORE any count-sized allocation: 2^60 claimed elements over a
  // 12-byte buffer used to reach vector::resize as a std::length_error.
  Writer w;
  w.varint(std::uint64_t(1) << 60);
  w.raw(Bytes(12, 0));
  Reader r(w.data());
  EXPECT_THROW(r.varint_count(4), SerializationError);
}

TEST(Serialize, VarintCountExactFitIsAccepted) {
  Writer w;
  w.varint(5);
  w.raw(Bytes(5, 1));
  Reader r(w.data());
  EXPECT_EQ(r.varint_count(1), 5u);
  // One more element than fits is rejected.
  Writer w2;
  w2.varint(6);
  w2.raw(Bytes(5, 1));
  Reader r2(w2.data());
  EXPECT_THROW(r2.varint_count(1), SerializationError);
}

TEST(Serialize, VarintCountZeroItemSizeTreatedAsOneByte) {
  // min_item_bytes = 0 (caller doesn't know a floor) still bounds the count
  // by the remaining byte count instead of dividing by zero.
  Writer w;
  w.varint(4);
  w.raw(Bytes(4, 9));
  Reader r(w.data());
  EXPECT_EQ(r.varint_count(0), 4u);
  Writer w2;
  w2.varint(5);
  w2.raw(Bytes(4, 9));
  Reader r2(w2.data());
  EXPECT_THROW(r2.varint_count(0), SerializationError);
}

TEST(Serialize, VarintOverflowThrows) {
  // 10 bytes of 0xff encode more than 64 bits.
  const Bytes evil(10, 0xff);
  Reader r(evil);
  EXPECT_THROW(r.varint(), SerializationError);
}

}  // namespace
}  // namespace spfe
