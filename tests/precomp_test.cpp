// Tests for the offline/online precomputation layer (he/precomp.h):
// randomness-pool determinism (the byte-identity contract), exhaustion
// fallback, concurrency, stats invariants, and the constant-time fixed-base
// table cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "he/precomp.h"
#include "obs/obs.h"
#include "pir/cpir.h"

namespace spfe::he {
namespace {

using bignum::BigInt;

class PrecompTest : public ::testing::Test {
 protected:
  // 256-bit keys keep the suite fast; bench_spir covers 512/1024.
  PrecompTest() : prg_("precomp-test"), sk_(paillier_keygen(prg_, 256)) {}

  crypto::Prg prg_;
  PaillierPrivateKey sk_;
};

// The core contract: a pool seeded with S encrypts exactly like a Prg
// seeded with S — cold (every draw a synchronous miss), warm (every draw a
// stocked hit), and mixed.
TEST_F(PrecompTest, PooledEncryptMatchesDirectPrg) {
  const auto& pk = sk_.public_key();
  constexpr std::size_t kCount = 12;

  crypto::Prg direct("pool-seed");
  std::vector<BigInt> expected;
  for (std::size_t i = 0; i < kCount; ++i) {
    expected.push_back(pk.encrypt(BigInt(i * 7 + 1), direct));
  }

  PaillierRandomnessPool cold(pk, crypto::Prg("pool-seed"));
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(cold.encrypt(BigInt(i * 7 + 1)), expected[i]) << "cold draw " << i;
  }
  EXPECT_EQ(cold.stats().hits, 0u);
  EXPECT_EQ(cold.stats().misses, kCount);

  PoolConfig cfg;
  cfg.capacity = kCount;
  PaillierRandomnessPool warm(pk, crypto::Prg("pool-seed"), cfg);
  EXPECT_EQ(warm.refill(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(warm.encrypt(BigInt(i * 7 + 1)), expected[i]) << "warm draw " << i;
  }
  EXPECT_EQ(warm.stats().hits, kCount);
  EXPECT_EQ(warm.stats().misses, 0u);
}

// Exhaustion: a pool smaller than the demand serves its stock, then falls
// back to synchronous computation — still in stream order, so the outputs
// never diverge from the direct-Prg transcript.
TEST_F(PrecompTest, ExhaustedPoolFallsBackInStreamOrder) {
  const auto& pk = sk_.public_key();
  constexpr std::size_t kCapacity = 4;
  constexpr std::size_t kCount = 11;

  crypto::Prg direct("exhaust-seed");
  PoolConfig cfg;
  cfg.capacity = kCapacity;
  PaillierRandomnessPool pool(pk, crypto::Prg("exhaust-seed"), cfg);
  EXPECT_EQ(pool.refill(), kCapacity);
  EXPECT_EQ(pool.stocked(), kCapacity);

  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(pool.encrypt(BigInt(i)), pk.encrypt(BigInt(i), direct)) << "draw " << i;
  }
  const PoolStats st = pool.stats();
  EXPECT_EQ(st.draws, kCount);
  EXPECT_EQ(st.hits, kCapacity);
  EXPECT_EQ(st.misses, kCount - kCapacity);
  EXPECT_EQ(st.hits + st.misses, st.draws);
  EXPECT_EQ(st.precomputed, kCapacity);
}

TEST_F(PrecompTest, RefillIsIdempotentWhenFull) {
  const auto& pk = sk_.public_key();
  PoolConfig cfg;
  cfg.capacity = 3;
  PaillierRandomnessPool pool(pk, crypto::Prg("full-seed"), cfg);
  EXPECT_EQ(pool.refill(), 3u);
  EXPECT_EQ(pool.refill(), 0u);  // already full
  EXPECT_EQ(pool.stocked(), 3u);
  (void)pool.next_factor();
  EXPECT_EQ(pool.refill(), 1u);  // tops back up to capacity
  EXPECT_EQ(pool.stats().refills, 2u);
}

// Rerandomization draws from the same factor stream.
TEST_F(PrecompTest, PooledRerandomizeMatchesDirectPrg) {
  const auto& pk = sk_.public_key();
  const BigInt c = pk.encrypt(BigInt(777), prg_);

  crypto::Prg direct("rr-seed");
  std::vector<BigInt> cts_direct(6, c);
  for (auto& ct : cts_direct) ct = pk.rerandomize(ct, direct);

  PaillierRandomnessPool pool(pk, crypto::Prg("rr-seed"));
  std::vector<BigInt> cts_pool(6, c);
  pool.rerandomize_all(cts_pool);
  EXPECT_EQ(cts_pool, cts_direct);
  for (const auto& ct : cts_pool) EXPECT_EQ(sk_.decrypt(ct), BigInt(777));
}

// Concurrent draws against a racing refill: every handed-out factor must
// come from the pool's stream (no duplicates, no inventions). Order across
// threads is scheduler-dependent, so compare as multisets against the first
// kTotal factors of an identically seeded reference stream.
TEST_F(PrecompTest, ConcurrentDrawAndRefillServeTheStream) {
  const auto& pk = sk_.public_key();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 8;
  constexpr std::size_t kTotal = kThreads * kPerThread;

  crypto::Prg ref("race-seed");
  std::vector<BigInt> expected;
  for (std::size_t i = 0; i < kTotal; ++i) {
    expected.push_back(pk.encryption_factor(pk.random_unit(ref)));
  }

  PoolConfig cfg;
  cfg.capacity = 16;
  PaillierRandomnessPool pool(pk, crypto::Prg("race-seed"), cfg);
  std::vector<std::vector<BigInt>> drawn(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) drawn[t].push_back(pool.next_factor());
    });
  }
  workers.emplace_back([&] {
    for (int i = 0; i < 16; ++i) pool.refill();
  });
  for (auto& w : workers) w.join();

  std::vector<BigInt> got;
  for (const auto& d : drawn) got.insert(got.end(), d.begin(), d.end());
  ASSERT_EQ(got.size(), kTotal);
  std::sort(got.begin(), got.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);

  const PoolStats st = pool.stats();
  EXPECT_EQ(st.draws, kTotal);
  EXPECT_EQ(st.hits + st.misses, st.draws);
}

// The consumer-level contract from ISSUE/DESIGN: PaillierPir::make_query's
// only PRG use is encryption randomness, so the pooled overload emits
// byte-identical queries — cold pool, warm pool, or no pool at all.
TEST_F(PrecompTest, PooledCpirQueryIsByteIdentical) {
  const auto& pk = sk_.public_key();
  constexpr std::size_t kN = 64;
  const pir::PaillierPir p(pk, kN, 2);

  pir::PaillierPir::ClientState st_plain, st_cold, st_warm;
  crypto::Prg direct("query-seed");
  const Bytes q_plain = p.make_query(kN / 3, st_plain, direct);

  PaillierRandomnessPool cold(pk, crypto::Prg("query-seed"));
  EXPECT_EQ(p.make_query(kN / 3, st_cold, cold), q_plain);

  PoolConfig cfg;
  cfg.capacity = 64;
  PaillierRandomnessPool warm(pk, crypto::Prg("query-seed"), cfg);
  warm.refill();
  EXPECT_EQ(p.make_query(kN / 3, st_warm, warm), q_plain);

  // And the query still decodes.
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = i * 3 + 5;
  const Bytes a = p.answer_u64(db, q_plain, prg_);
  EXPECT_EQ(p.decode_u64(sk_, a), db[kN / 3]);
}

TEST_F(PrecompTest, PooledCpirQueryRejectsKeyMismatch) {
  crypto::Prg kprg("other-key");
  const PaillierPrivateKey other = paillier_keygen(kprg, 256);
  const pir::PaillierPir p(sk_.public_key(), 16, 1);
  pir::PaillierPir::ClientState state;
  PaillierRandomnessPool pool(other.public_key(), crypto::Prg("s"));
  EXPECT_THROW((void)p.make_query(3, state, pool), InvalidArgument);
}

// Pool draws are metered: hits + misses recorded in the global counters
// match the pool's own stats.
TEST_F(PrecompTest, PoolDrawsAreCounted) {
  const auto& pk = sk_.public_key();
  obs::Tracer::global().set_enabled(true);
  obs::Tracer::global().reset();

  PoolConfig cfg;
  cfg.capacity = 3;
  PaillierRandomnessPool pool(pk, crypto::Prg("count-seed"), cfg);
  pool.refill();
  for (int i = 0; i < 5; ++i) (void)pool.next_factor();

  const obs::OpCounts totals = obs::Tracer::global().totals();
  obs::Tracer::global().set_enabled(false);
  EXPECT_EQ(totals[static_cast<std::size_t>(obs::Op::kPoolHit)], 3u);
  EXPECT_EQ(totals[static_cast<std::size_t>(obs::Op::kPoolMiss)], 2u);
  EXPECT_EQ(totals[static_cast<std::size_t>(obs::Op::kPoolRefill)], 1u);
}

class GmPrecompTest : public ::testing::Test {
 protected:
  GmPrecompTest() : prg_("gm-precomp-test"), sk_(gm_keygen(prg_, 256)) {}

  crypto::Prg prg_;
  GmPrivateKey sk_;
};

TEST_F(GmPrecompTest, PooledGmEncryptMatchesDirectPrg) {
  const auto& pk = sk_.public_key();
  constexpr std::size_t kCount = 16;

  crypto::Prg direct("gm-seed");
  std::vector<BigInt> expected;
  for (std::size_t i = 0; i < kCount; ++i) {
    expected.push_back(pk.encrypt((i % 3) == 0, direct));
  }

  GmRandomnessPool cold(pk, crypto::Prg("gm-seed"));
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(cold.encrypt((i % 3) == 0), expected[i]) << "cold draw " << i;
  }

  PoolConfig cfg;
  cfg.capacity = kCount;
  GmRandomnessPool warm(pk, crypto::Prg("gm-seed"), cfg);
  EXPECT_EQ(warm.refill(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(warm.encrypt((i % 3) == 0), expected[i]) << "warm draw " << i;
    EXPECT_EQ(sk_.decrypt(expected[i]), (i % 3) == 0);
  }
  EXPECT_EQ(warm.stats().hits, kCount);
}

TEST_F(GmPrecompTest, PooledGmRerandomizeMatchesDirectPrg) {
  const auto& pk = sk_.public_key();
  const BigInt c = pk.encrypt(true, prg_);
  crypto::Prg direct("gm-rr");
  GmRandomnessPool pool(pk, crypto::Prg("gm-rr"));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pool.rerandomize(c), pk.rerandomize(c, direct));
  }
  EXPECT_TRUE(sk_.decrypt(pool.rerandomize(c)));
}

class FixedBaseTest : public ::testing::Test {
 protected:
  FixedBaseTest() : prg_("fbtable-test") {}

  crypto::Prg prg_;
};

TEST_F(FixedBaseTest, TablePowMatchesMontgomeryPow) {
  // An odd modulus and a fixed base; 96-bit exponent space.
  const BigInt p = BigInt::from_hex("f48790ef8b185181709d7d84c42f22e1f82a6bb685eb1ecf"
                                    "43318fbded9c101d");  // odd, not necessarily prime
  const BigInt g(4);
  const std::size_t kBits = 96;
  const bignum::MontgomeryContext ctx(p);
  const CtFixedBaseTable table(p, g, kBits);
  EXPECT_GE(table.max_exp_bits(), kBits);

  std::vector<BigInt> exps = {BigInt(0), BigInt(1), BigInt(2), BigInt(15), BigInt(16),
                              BigInt(17), (BigInt(1) << kBits) - BigInt(1)};
  for (int i = 0; i < 16; ++i) {
    exps.push_back(BigInt::random_below(prg_, BigInt(1) << kBits));
  }
  for (const BigInt& e : exps) {
    EXPECT_EQ(table.pow(e), ctx.pow(g, e)) << "exp " << e.to_hex();
  }
}

TEST_F(FixedBaseTest, CacheSharesTablesAndCounts) {
  const BigInt p = BigInt::from_hex("9098966ce2c4aa7634325f5726fc855cc75d882818e11ed6"
                                    "12178ce6707f361f");
  const BigInt g(9);

  obs::Tracer::global().set_enabled(true);
  obs::Tracer::global().reset();
  FixedBaseCache::global().clear();

  const auto a = FixedBaseCache::global().get(p, g, 64);
  const auto b = FixedBaseCache::global().get(p, g, 64);
  EXPECT_EQ(a.get(), b.get());  // shared, not rebuilt
  const auto c = FixedBaseCache::global().get(p, g, 128);  // different key
  EXPECT_NE(a.get(), c.get());

  const obs::OpCounts totals = obs::Tracer::global().totals();
  obs::Tracer::global().set_enabled(false);
  EXPECT_EQ(totals[static_cast<std::size_t>(obs::Op::kFbTableBuild)], 2u);
  EXPECT_EQ(totals[static_cast<std::size_t>(obs::Op::kFbTableHit)], 1u);

  const bignum::MontgomeryContext ctx(p);
  EXPECT_EQ(a->pow(BigInt(123456789)), ctx.pow(g, BigInt(123456789)));
}

}  // namespace
}  // namespace spfe::he
