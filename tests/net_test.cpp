#include <gtest/gtest.h>

#include "common/error.h"
#include "net/network.h"

namespace spfe::net {
namespace {

TEST(StarNetwork, DeliversInOrder) {
  StarNetwork net(2);
  net.client_send(0, {1});
  net.client_send(0, {2});
  net.client_send(1, {3});
  EXPECT_EQ(net.server_receive(0), (Bytes{1}));
  EXPECT_EQ(net.server_receive(0), (Bytes{2}));
  EXPECT_EQ(net.server_receive(1), (Bytes{3}));
  EXPECT_TRUE(net.idle());
}

TEST(StarNetwork, ReceiveWithoutMessageThrows) {
  StarNetwork net(1);
  EXPECT_THROW(net.server_receive(0), ProtocolError);
  EXPECT_THROW(net.client_receive(0), ProtocolError);
}

TEST(StarNetwork, IndexValidation) {
  StarNetwork net(2);
  EXPECT_THROW(net.client_send(2, {}), InvalidArgument);
  EXPECT_THROW(net.server_send(5, {}), InvalidArgument);
  EXPECT_THROW(StarNetwork(0), InvalidArgument);
}

TEST(StarNetwork, MetersBytesAndMessages) {
  StarNetwork net(2);
  net.client_send(0, Bytes(100));
  net.client_send(1, Bytes(50));
  net.server_send(0, Bytes(7));
  const CommStats& s = net.stats();
  EXPECT_EQ(s.client_to_server_bytes, 150u);
  EXPECT_EQ(s.server_to_client_bytes, 7u);
  EXPECT_EQ(s.client_to_server_messages, 2u);
  EXPECT_EQ(s.server_to_client_messages, 1u);
  EXPECT_EQ(s.total_bytes(), 157u);
}

TEST(StarNetwork, CountsOneRoundExchange) {
  // Client -> both servers, then both reply: exactly 1.0 rounds.
  StarNetwork net(2);
  net.client_send(0, {1});
  net.client_send(1, {1});
  net.server_send(0, {2});
  net.server_send(1, {2});
  EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.0);
}

TEST(StarNetwork, CountsHalfRoundWhenServerSpeaksFirst) {
  // Server -> client, client -> server, server -> client: 1.5 rounds
  // (the §3.3.2 variant-2 communication pattern).
  StarNetwork net(1);
  net.server_send(0, {1});
  net.client_send(0, {2});
  net.server_send(0, {3});
  EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.5);
}

TEST(StarNetwork, BatchedSendsSameDirectionAreOneHalfRound) {
  StarNetwork net(3);
  for (std::size_t s = 0; s < 3; ++s) net.client_send(s, {1});
  for (std::size_t s = 0; s < 3; ++s) net.client_send(s, {2});
  EXPECT_EQ(net.stats().half_rounds, 1u);
  for (std::size_t s = 0; s < 3; ++s) net.server_send(s, {3});
  EXPECT_EQ(net.stats().half_rounds, 2u);
}

TEST(StarNetwork, ZeroByteMessageCountsMessageAndHalfRound) {
  // A zero-byte message is still a message: it carries protocol flow (e.g.
  // an empty acknowledgement) and must advance the message and half-round
  // counters even though it contributes no bytes.
  StarNetwork net(1);
  net.client_send(0, {});
  EXPECT_EQ(net.stats().client_to_server_bytes, 0u);
  EXPECT_EQ(net.stats().client_to_server_messages, 1u);
  EXPECT_EQ(net.stats().half_rounds, 1u);
  net.server_send(0, {});
  EXPECT_EQ(net.stats().server_to_client_messages, 1u);
  EXPECT_EQ(net.stats().half_rounds, 2u);
  EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.0);
  EXPECT_EQ(net.stats().total_bytes(), 0u);
  // Delivery still works for empty payloads.
  EXPECT_EQ(net.server_receive(0), Bytes{});
  EXPECT_EQ(net.client_receive(0), Bytes{});
}

TEST(StarNetwork, ResetStatsMidProtocolSameDirectionOpensNewHalfRound) {
  // reset_stats() mid-protocol clears direction tracking too: a send in the
  // SAME direction as the last pre-reset send must open a new half-round,
  // not silently extend the (now unaccounted) old one.
  StarNetwork net(1);
  net.client_send(0, {1});
  net.client_send(0, {2});
  EXPECT_EQ(net.stats().half_rounds, 1u);
  net.reset_stats();
  net.client_send(0, {3});
  EXPECT_EQ(net.stats().half_rounds, 1u);
  EXPECT_EQ(net.stats().client_to_server_messages, 1u);
  EXPECT_EQ(net.stats().client_to_server_bytes, 1u);
  // Undelivered pre-reset messages are unaffected by the stats reset.
  EXPECT_EQ(net.server_receive(0), Bytes{1});
  EXPECT_EQ(net.server_receive(0), Bytes{2});
  EXPECT_EQ(net.server_receive(0), Bytes{3});
  EXPECT_EQ(net.stats().half_rounds, 1u);
}

TEST(StarNetwork, ReceivesNeverAffectMetering) {
  // Metering is send-side only: draining queues must not change any counter
  // (receives are local dequeues, not wire traffic).
  StarNetwork net(2);
  net.client_send(0, {1, 2});
  net.client_send(1, {3});
  const CommStats before = net.stats();
  (void)net.server_receive(0);
  (void)net.server_receive(1);
  EXPECT_EQ(net.stats().client_to_server_bytes, before.client_to_server_bytes);
  EXPECT_EQ(net.stats().client_to_server_messages, before.client_to_server_messages);
  EXPECT_EQ(net.stats().half_rounds, before.half_rounds);
}

TEST(StarNetwork, ResetStats) {
  StarNetwork net(1);
  net.client_send(0, Bytes(10));
  net.reset_stats();
  EXPECT_EQ(net.stats().total_bytes(), 0u);
  EXPECT_EQ(net.stats().half_rounds, 0u);
  // Direction tracking also resets: next send starts a fresh half-round.
  net.server_send(0, {1});
  EXPECT_EQ(net.stats().half_rounds, 1u);
}

}  // namespace
}  // namespace spfe::net
