#include <gtest/gtest.h>

#include "common/error.h"
#include "net/network.h"

namespace spfe::net {
namespace {

TEST(StarNetwork, DeliversInOrder) {
  StarNetwork net(2);
  net.client_send(0, {1});
  net.client_send(0, {2});
  net.client_send(1, {3});
  EXPECT_EQ(net.server_receive(0), (Bytes{1}));
  EXPECT_EQ(net.server_receive(0), (Bytes{2}));
  EXPECT_EQ(net.server_receive(1), (Bytes{3}));
  EXPECT_TRUE(net.idle());
}

TEST(StarNetwork, ReceiveWithoutMessageThrows) {
  StarNetwork net(1);
  EXPECT_THROW(net.server_receive(0), ProtocolError);
  EXPECT_THROW(net.client_receive(0), ProtocolError);
}

TEST(StarNetwork, IndexValidation) {
  StarNetwork net(2);
  EXPECT_THROW(net.client_send(2, {}), InvalidArgument);
  EXPECT_THROW(net.server_send(5, {}), InvalidArgument);
  EXPECT_THROW(StarNetwork(0), InvalidArgument);
}

TEST(StarNetwork, MetersBytesAndMessages) {
  StarNetwork net(2);
  net.client_send(0, Bytes(100));
  net.client_send(1, Bytes(50));
  net.server_send(0, Bytes(7));
  const CommStats& s = net.stats();
  EXPECT_EQ(s.client_to_server_bytes, 150u);
  EXPECT_EQ(s.server_to_client_bytes, 7u);
  EXPECT_EQ(s.client_to_server_messages, 2u);
  EXPECT_EQ(s.server_to_client_messages, 1u);
  EXPECT_EQ(s.total_bytes(), 157u);
}

TEST(StarNetwork, CountsOneRoundExchange) {
  // Client -> both servers, then both reply: exactly 1.0 rounds.
  StarNetwork net(2);
  net.client_send(0, {1});
  net.client_send(1, {1});
  net.server_send(0, {2});
  net.server_send(1, {2});
  EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.0);
}

TEST(StarNetwork, CountsHalfRoundWhenServerSpeaksFirst) {
  // Server -> client, client -> server, server -> client: 1.5 rounds
  // (the §3.3.2 variant-2 communication pattern).
  StarNetwork net(1);
  net.server_send(0, {1});
  net.client_send(0, {2});
  net.server_send(0, {3});
  EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.5);
}

TEST(StarNetwork, BatchedSendsSameDirectionAreOneHalfRound) {
  StarNetwork net(3);
  for (std::size_t s = 0; s < 3; ++s) net.client_send(s, {1});
  for (std::size_t s = 0; s < 3; ++s) net.client_send(s, {2});
  EXPECT_EQ(net.stats().half_rounds, 1u);
  for (std::size_t s = 0; s < 3; ++s) net.server_send(s, {3});
  EXPECT_EQ(net.stats().half_rounds, 2u);
}

TEST(StarNetwork, ResetStats) {
  StarNetwork net(1);
  net.client_send(0, Bytes(10));
  net.reset_stats();
  EXPECT_EQ(net.stats().total_bytes(), 0u);
  EXPECT_EQ(net.stats().half_rounds, 0u);
  // Direction tracking also resets: next send starts a fresh half-round.
  net.server_send(0, {1});
  EXPECT_EQ(net.stats().half_rounds, 1u);
}

}  // namespace
}  // namespace spfe::net
