#include <gtest/gtest.h>

#include <map>

#include "common/error.h"
#include "field/fp64.h"
#include "field/zp.h"
#include "sharing/additive.h"
#include "sharing/shamir.h"

namespace spfe::sharing {
namespace {

using bignum::BigInt;
using field::Fp64;
using field::Zp;

TEST(Additive, SplitCombineRoundTrip) {
  crypto::Prg prg("additive");
  for (std::uint64_t u : {2ull, 17ull, 1ull << 32, (1ull << 61) - 1}) {
    for (int trial = 0; trial < 50; ++trial) {
      const std::uint64_t secret = prg.uniform(u);
      const AdditivePair p = additive_split(secret, u, prg);
      EXPECT_LT(p.server_share, u);
      EXPECT_LT(p.client_share, u);
      EXPECT_EQ(additive_combine(p.server_share, p.client_share, u), secret);
    }
  }
}

TEST(Additive, ShareMarginalIsUniform) {
  crypto::Prg prg("uniformity");
  constexpr std::uint64_t kU = 5;
  std::map<std::uint64_t, int> counts;
  for (int trial = 0; trial < 5000; ++trial) {
    counts[additive_split(3, kU, prg).client_share]++;
  }
  ASSERT_EQ(counts.size(), kU);
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Additive, KPartySplit) {
  crypto::Prg prg("kparty");
  for (std::size_t k : {1u, 2u, 5u, 16u}) {
    const std::uint64_t u = 1000003;
    const std::uint64_t secret = prg.uniform(u);
    const auto shares = additive_split_k(secret, u, k, prg);
    ASSERT_EQ(shares.size(), k);
    EXPECT_EQ(additive_combine_k(shares, u), secret);
  }
}

TEST(Additive, RejectsBadModulus) {
  crypto::Prg prg("bad");
  EXPECT_THROW(additive_split(0, 0, prg), InvalidArgument);
  EXPECT_THROW(additive_split(0, 1, prg), InvalidArgument);
  EXPECT_THROW(additive_split_k(0, 5, 0, prg), InvalidArgument);
}

TEST(Shamir, SplitReconstructFp64) {
  const Fp64 f(1009);
  crypto::Prg prg("shamir");
  for (std::size_t t : {1u, 2u, 4u}) {
    const std::size_t k = 2 * t + 1;
    const std::uint64_t secret = f.random(prg);
    const auto shares = shamir_split(f, secret, k, t, prg);
    ASSERT_EQ(shares.size(), k);
    // Any t+1 of them reconstruct.
    std::vector<ShamirShare<Fp64>> subset(shares.begin(),
                                          shares.begin() + static_cast<std::ptrdiff_t>(t + 1));
    EXPECT_EQ(shamir_reconstruct(f, subset), secret);
    // A different subset too.
    std::vector<ShamirShare<Fp64>> subset2(shares.end() - static_cast<std::ptrdiff_t>(t + 1),
                                           shares.end());
    EXPECT_EQ(shamir_reconstruct(f, subset2), secret);
  }
}

TEST(Shamir, TSharesRevealNothing) {
  // With threshold t, the distribution of any t shares is independent of the
  // secret: check statistically for t=1 over a small field.
  const Fp64 f(7);
  std::map<std::uint64_t, int> counts_secret0, counts_secret3;
  crypto::Prg prg("hiding");
  for (int trial = 0; trial < 7000; ++trial) {
    counts_secret0[shamir_split(f, std::uint64_t(0), 3, 1, prg)[0].y]++;
    counts_secret3[shamir_split(f, std::uint64_t(3), 3, 1, prg)[0].y]++;
  }
  for (std::uint64_t v = 0; v < 7; ++v) {
    const double ratio = static_cast<double>(counts_secret0[v]) /
                         static_cast<double>(counts_secret3[v]);
    EXPECT_GT(ratio, 0.75) << "share value " << v;
    EXPECT_LT(ratio, 1.33) << "share value " << v;
  }
}

TEST(Shamir, RejectsThresholdGeqShares) {
  const Fp64 f(101);
  crypto::Prg prg("bad-shamir");
  EXPECT_THROW(shamir_split(f, std::uint64_t(5), 3, 3, prg), InvalidArgument);
}

TEST(Shamir, RobustReconstructCorrectsLies) {
  const Fp64 f(Fp64::kMersenne61);
  crypto::Prg prg("shamir-robust");
  for (std::size_t t : {1u, 2u}) {
    for (std::size_t e = 1; e <= 2; ++e) {
      const std::size_t k = t + 1 + 2 * e;
      const std::uint64_t secret = f.random(prg);
      auto shares = shamir_split(f, secret, k, t, prg);
      for (std::size_t j = 0; j < e; ++j) shares[j].y = f.add(shares[j].y, 17 + j);
      EXPECT_EQ(shamir_reconstruct_robust(f, shares, t), secret) << "t=" << t << " e=" << e;
    }
  }
}

TEST(Shamir, RobustReconstructHandlesErasuresAndLies) {
  // k = t + 1 + 2e + c shares; drop c (crashed parties) and corrupt e.
  const Fp64 f(Fp64::kMersenne61);
  crypto::Prg prg("shamir-erasures");
  const std::size_t t = 2, e = 1, c = 2;
  const std::size_t k = t + 1 + 2 * e + c;
  const std::uint64_t secret = f.random(prg);
  auto shares = shamir_split(f, secret, k, t, prg);
  shares.erase(shares.begin(), shares.begin() + c);  // erasures
  shares[0].y = f.add(shares[0].y, 5);               // one lie
  EXPECT_EQ(shamir_reconstruct_robust(f, shares, t), secret);
}

TEST(Shamir, RobustReconstructThrowsBeyondBudget) {
  const Fp64 f(Fp64::kMersenne61);
  crypto::Prg prg("shamir-overload");
  const std::size_t t = 1;
  const std::uint64_t secret = f.random(prg);
  // Too few shares outright.
  auto shares = shamir_split(f, secret, 5, t, prg);
  std::vector<ShamirShare<Fp64>> one(shares.begin(), shares.begin() + 1);
  EXPECT_THROW(shamir_reconstruct_robust(f, one, t), ProtocolError);
  // Enough shares, but a lie with zero error slack (s = t + 2): detected.
  std::vector<ShamirShare<Fp64>> three(shares.begin(), shares.begin() + 3);
  three[1].y = f.add(three[1].y, 9);
  EXPECT_THROW(shamir_reconstruct_robust(f, three, t), ProtocolError);
}

TEST(Shamir, WorksOverZp) {
  const Zp f(BigInt(1000003));
  crypto::Prg prg("shamir-zp");
  const BigInt secret(123456);
  const auto shares = shamir_split(f, secret, 5, 2, prg);
  std::vector<ShamirShare<Zp>> subset(shares.begin(), shares.begin() + 3);
  EXPECT_EQ(shamir_reconstruct(f, subset), secret);
}

}  // namespace
}  // namespace spfe::sharing
