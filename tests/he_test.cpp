#include <gtest/gtest.h>

#include "bignum/primes.h"
#include "common/error.h"
#include "he/goldwasser_micali.h"
#include "he/paillier.h"

namespace spfe::he {
namespace {

using bignum::BigInt;

class PaillierTest : public ::testing::Test {
 protected:
  // 256-bit keys keep the unit suite fast; bench_primitives covers 512/1024.
  PaillierTest() : prg_("paillier-test"), sk_(paillier_keygen(prg_, 256)) {}

  crypto::Prg prg_;
  PaillierPrivateKey sk_;
};

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  const auto& pk = sk_.public_key();
  for (const std::uint64_t m : {0ull, 1ull, 42ull, 1000000007ull}) {
    const BigInt c = pk.encrypt(BigInt(m), prg_);
    EXPECT_EQ(sk_.decrypt(c), BigInt(m));
  }
  // Near the modulus.
  const BigInt big = pk.n() - BigInt(1);
  EXPECT_EQ(sk_.decrypt(pk.encrypt(big, prg_)), big);
}

TEST_F(PaillierTest, EncryptionIsRandomized) {
  const auto& pk = sk_.public_key();
  EXPECT_NE(pk.encrypt(BigInt(7), prg_), pk.encrypt(BigInt(7), prg_));
}

TEST_F(PaillierTest, AdditiveHomomorphism) {
  const auto& pk = sk_.public_key();
  const BigInt a(123456789), b(987654321);
  const BigInt sum = pk.add(pk.encrypt(a, prg_), pk.encrypt(b, prg_));
  EXPECT_EQ(sk_.decrypt(sum), a + b);
}

TEST_F(PaillierTest, HomomorphismWrapsModN) {
  const auto& pk = sk_.public_key();
  const BigInt a = pk.n() - BigInt(5);
  const BigInt b(12);
  const BigInt sum = pk.add(pk.encrypt(a, prg_), pk.encrypt(b, prg_));
  EXPECT_EQ(sk_.decrypt(sum), BigInt(7));
}

TEST_F(PaillierTest, ScalarMultiplication) {
  const auto& pk = sk_.public_key();
  const BigInt c = pk.encrypt(BigInt(1000), prg_);
  EXPECT_EQ(sk_.decrypt(pk.mul_scalar(c, BigInt(37))), BigInt(37000));
  EXPECT_EQ(sk_.decrypt(pk.mul_scalar(c, BigInt(0))), BigInt(0));
  // Negative scalar uses the group inverse: -2 * 1000 = N - 2000.
  EXPECT_EQ(sk_.decrypt(pk.mul_scalar(c, BigInt(-2))), pk.n() - BigInt(2000));
  EXPECT_EQ(sk_.decrypt_signed(pk.mul_scalar(c, BigInt(-2))), BigInt(-2000));
}

TEST_F(PaillierTest, NegateAndSignedDecrypt) {
  const auto& pk = sk_.public_key();
  const BigInt c = pk.negate(pk.encrypt(BigInt(555), prg_));
  EXPECT_EQ(sk_.decrypt_signed(c), BigInt(-555));
}

TEST_F(PaillierTest, RerandomizePreservesPlaintext) {
  const auto& pk = sk_.public_key();
  const BigInt c = pk.encrypt(BigInt(777), prg_);
  const BigInt c2 = pk.rerandomize(c, prg_);
  EXPECT_NE(c, c2);
  EXPECT_EQ(sk_.decrypt(c2), BigInt(777));
}

TEST_F(PaillierTest, LinearCombination) {
  // decrypt(prod E(a_i)^{w_i}) = sum w_i a_i — the §4 weighted-sum core.
  const auto& pk = sk_.public_key();
  const std::uint64_t values[] = {10, 20, 30};
  const std::uint64_t weights[] = {3, 5, 7};
  BigInt acc = pk.encrypt(BigInt(0), prg_);
  for (int i = 0; i < 3; ++i) {
    acc = pk.add(acc, pk.mul_scalar(pk.encrypt(BigInt(values[i]), prg_), BigInt(weights[i])));
  }
  EXPECT_EQ(sk_.decrypt(acc), BigInt(10 * 3 + 20 * 5 + 30 * 7));
}

TEST_F(PaillierTest, PublicKeySerializationRoundTrip) {
  const auto& pk = sk_.public_key();
  Writer w;
  pk.serialize(w);
  Reader r(w.data());
  const PaillierPublicKey pk2 = PaillierPublicKey::deserialize(r);
  EXPECT_EQ(pk2, pk);
  // A ciphertext made by the deserialized key decrypts correctly.
  EXPECT_EQ(sk_.decrypt(pk2.encrypt(BigInt(31337), prg_)), BigInt(31337));
}

TEST_F(PaillierTest, DecryptValidatesRange) {
  EXPECT_THROW(sk_.decrypt(sk_.public_key().n_squared()), InvalidArgument);
  EXPECT_THROW(sk_.decrypt(BigInt(-1)), InvalidArgument);
  EXPECT_THROW(sk_.decrypt_reference(sk_.public_key().n_squared()), InvalidArgument);
  EXPECT_THROW(sk_.decrypt_reference(BigInt(-1)), InvalidArgument);
}

TEST_F(PaillierTest, DecryptBoundaryPlaintexts) {
  // m = 0, N-1, floor(N/2), floor(N/2)+1 — the wrap points of decrypt and
  // decrypt_signed. N is odd, so half = (N-1)/2 and half+1 decrypts signed
  // to -half.
  const auto& pk = sk_.public_key();
  const BigInt n = pk.n();
  const BigInt half = n >> 1;
  const struct {
    BigInt m;
    BigInt expected_signed;
  } cases[] = {
      {BigInt(0), BigInt(0)},
      {n - BigInt(1), BigInt(-1)},
      {half, half},
      {half + BigInt(1), -half},
  };
  for (const auto& tc : cases) {
    const BigInt c = pk.encrypt(tc.m, prg_);
    EXPECT_EQ(sk_.decrypt(c), tc.m);
    EXPECT_EQ(sk_.decrypt_reference(c), tc.m);
    EXPECT_EQ(sk_.decrypt_signed(c), tc.expected_signed);
  }
}

TEST_F(PaillierTest, CrtMatchesReferenceOnRandomCiphertexts) {
  // 1000 uniform elements of Z_{N^2}^* — not just well-formed encryptions —
  // must decrypt identically through the CRT and reference paths.
  const BigInt& n2 = sk_.public_key().n_squared();
  const BigInt& n = sk_.public_key().n();
  std::size_t checked = 0;
  while (checked < 1000) {
    const BigInt c = BigInt::random_below(prg_, n2);
    if (!bignum::gcd(c, n).is_one()) continue;  // negligible; would factor N
    EXPECT_EQ(sk_.decrypt(c), sk_.decrypt_reference(c));
    ++checked;
  }
}

TEST_F(PaillierTest, DecryptAllMatchesDecrypt) {
  const auto& pk = sk_.public_key();
  std::vector<BigInt> cts;
  for (std::uint64_t m = 0; m < 50; ++m) cts.push_back(pk.encrypt(BigInt(m * m + 1), prg_));
  const std::vector<BigInt> plains = sk_.decrypt_all(cts);
  ASSERT_EQ(plains.size(), cts.size());
  for (std::size_t i = 0; i < cts.size(); ++i) {
    EXPECT_EQ(plains[i], BigInt(static_cast<std::uint64_t>(i * i + 1)));
  }
}

TEST_F(PaillierTest, MulScalarReducesOversizedScalars) {
  // Regression: the scalar used to be fed raw into the modexp, so a scalar
  // of k*N + 37 cost a |k*N|-bit exponentiation. It must now be reduced mod
  // N first — same plaintext, bounded cost. Bitwise equality with the
  // pre-reduced scalar proves the reduction happened.
  const auto& pk = sk_.public_key();
  const BigInt c = pk.encrypt(BigInt(1000), prg_);
  const BigInt huge = pk.n() * BigInt(12345) + BigInt(37);
  EXPECT_EQ(pk.mul_scalar(c, huge), pk.mul_scalar(c, BigInt(37)));
  EXPECT_EQ(sk_.decrypt(pk.mul_scalar(c, huge)), BigInt(37000));
  // Negative scalars reduce into [0, N) through the same path.
  const BigInt neg = -(pk.n() * BigInt(99) + BigInt(2));
  EXPECT_EQ(pk.mul_scalar(c, neg), pk.mul_scalar(c, BigInt(-2)));
  EXPECT_EQ(sk_.decrypt_signed(pk.mul_scalar(c, neg)), BigInt(-2000));
}

TEST_F(PaillierTest, MulScalarSumMatchesFoldedMulScalar) {
  // The batch API must be byte-identical to folding mul_scalar with add —
  // it changes evaluation order, not the group element.
  const auto& pk = sk_.public_key();
  std::vector<BigInt> cts, scalars;
  for (const std::uint64_t v : {10ull, 20ull, 30ull, 40ull}) {
    cts.push_back(pk.encrypt(BigInt(v), prg_));
  }
  // Mix of zero, one, oversized, and negative scalars.
  scalars = {BigInt(0), BigInt(1), pk.n() * BigInt(3) + BigInt(7), BigInt(-5)};
  BigInt folded;
  for (std::size_t i = 0; i < cts.size(); ++i) {
    const BigInt term = pk.mul_scalar(cts[i], scalars[i]);
    folded = i == 0 ? term : pk.add(folded, term);
  }
  EXPECT_EQ(pk.mul_scalar_sum(cts, scalars), folded);
  EXPECT_EQ(sk_.decrypt_signed(pk.mul_scalar_sum(cts, scalars)),
            BigInt(20 * 1 + 30 * 7 - 40 * 5));
  const std::vector<BigInt> short_scalars = {BigInt(1)};
  EXPECT_THROW(pk.mul_scalar_sum(cts, short_scalars), InvalidArgument);
}

TEST_F(PaillierTest, MulScalarSumMatrixMatchesColumns) {
  const auto& pk = sk_.public_key();
  constexpr std::size_t kBases = 3, kCols = 5;
  std::vector<BigInt> cts(kBases);
  for (std::size_t i = 0; i < kBases; ++i) cts[i] = pk.encrypt(BigInt(i + 1), prg_);
  std::vector<std::vector<BigInt>> scalars(kBases, std::vector<BigInt>(kCols));
  for (std::size_t i = 0; i < kBases; ++i) {
    for (std::size_t c = 0; c < kCols; ++c) scalars[i][c] = BigInt(7 * i + 13 * c);
  }
  const std::vector<BigInt> out = pk.mul_scalar_sum_matrix(cts, scalars);
  ASSERT_EQ(out.size(), kCols);
  for (std::size_t c = 0; c < kCols; ++c) {
    std::vector<BigInt> col(kBases);
    for (std::size_t i = 0; i < kBases; ++i) col[i] = scalars[i][c];
    EXPECT_EQ(out[c], pk.mul_scalar_sum(cts, col)) << "col=" << c;
  }
}

TEST_F(PaillierTest, RerandomizeAllPreservesPlaintextsAndPrgOrder) {
  const auto& pk = sk_.public_key();
  std::vector<BigInt> cts(6);
  for (std::size_t i = 0; i < cts.size(); ++i) cts[i] = pk.encrypt(BigInt(i * 11), prg_);
  // Reference: the exact serial draw-then-apply order rerandomize_all commits to.
  std::vector<BigInt> expected = cts;
  {
    crypto::Prg serial("rerand-all");
    std::vector<BigInt> rs(cts.size());
    for (auto& r : rs) r = pk.random_unit(serial);
    for (std::size_t i = 0; i < cts.size(); ++i) {
      expected[i] = pk.rerandomize_with_randomness(expected[i], rs[i]);
    }
  }
  crypto::Prg batch("rerand-all");
  pk.rerandomize_all(cts, batch);
  EXPECT_EQ(cts, expected);
  for (std::size_t i = 0; i < cts.size(); ++i) {
    EXPECT_EQ(sk_.decrypt(cts[i]), BigInt(i * 11)) << i;
  }
}

TEST(Paillier, RandomUnitCoversFullRange) {
  // Tiny modulus (N = 5 * 7) so 2000 draws cover [1, N) exhaustively: the
  // old random_below(N-1) + 1 draw could never produce N - 1, and 0 must
  // never appear.
  const PaillierPublicKey pk(BigInt(35));
  crypto::Prg prg("random-unit");
  std::vector<int> seen(35, 0);
  for (int i = 0; i < 2000; ++i) {
    const BigInt r = pk.random_unit(prg);
    ASSERT_FALSE(r.is_zero());
    ASSERT_LT(r, BigInt(35));
    seen[r.to_u64()] += 1;
  }
  EXPECT_EQ(seen[0], 0);
  for (int v = 1; v < 35; ++v) EXPECT_GT(seen[v], 0) << v;
}

TEST(Paillier, PrivateKeyValidatesFactors) {
  // p | q-1 makes gcd(N, phi(N)) = p != 1: the decryption equation breaks,
  // so the constructor must reject it (3 | 7-1 with N = 21, phi = 12).
  EXPECT_THROW(PaillierPrivateKey(BigInt(3), BigInt(7)), InvalidArgument);
  EXPECT_THROW(PaillierPrivateKey(BigInt(7), BigInt(3)), InvalidArgument);
  EXPECT_THROW(PaillierPrivateKey(BigInt(5), BigInt(5)), InvalidArgument);   // p == q
  EXPECT_THROW(PaillierPrivateKey(BigInt(4), BigInt(7)), InvalidArgument);   // even
  EXPECT_THROW(PaillierPrivateKey(BigInt(1), BigInt(7)), InvalidArgument);   // p <= 2
  EXPECT_THROW(PaillierPrivateKey(BigInt(-5), BigInt(7)), InvalidArgument);  // negative
  // A valid small pair still constructs and round-trips (explicit coprime
  // randomness: with N = 143 a random r has a non-negligible common factor).
  const PaillierPrivateKey sk(BigInt(11), BigInt(13));
  EXPECT_EQ(sk.decrypt(sk.public_key().encrypt_with_randomness(BigInt(42), BigInt(2))),
            BigInt(42));
}

TEST(Paillier, KeygenValidatesSize) {
  crypto::Prg prg("kg");
  EXPECT_THROW(paillier_keygen(prg, 8), InvalidArgument);
}

TEST(Paillier, DeterministicEncryptionWithExplicitRandomness) {
  crypto::Prg prg("det");
  const auto sk = paillier_keygen(prg, 128);
  const auto& pk = sk.public_key();
  const BigInt r(12345);
  EXPECT_EQ(pk.encrypt_with_randomness(BigInt(9), r), pk.encrypt_with_randomness(BigInt(9), r));
  EXPECT_EQ(sk.decrypt(pk.encrypt_with_randomness(BigInt(9), r)), BigInt(9));
}

class GmTest : public ::testing::Test {
 protected:
  GmTest() : prg_("gm-test"), sk_(gm_keygen(prg_, 256)) {}

  crypto::Prg prg_;
  GmPrivateKey sk_;
};

TEST_F(GmTest, EncryptDecryptBits) {
  const auto& pk = sk_.public_key();
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(sk_.decrypt(pk.encrypt(false, prg_)));
    EXPECT_TRUE(sk_.decrypt(pk.encrypt(true, prg_)));
  }
}

TEST_F(GmTest, XorHomomorphism) {
  const auto& pk = sk_.public_key();
  for (const bool a : {false, true}) {
    for (const bool b : {false, true}) {
      const auto c = pk.xor_ct(pk.encrypt(a, prg_), pk.encrypt(b, prg_));
      EXPECT_EQ(sk_.decrypt(c), a != b);
    }
  }
}

TEST_F(GmTest, RerandomizePreservesBit) {
  const auto& pk = sk_.public_key();
  const auto c = pk.encrypt(true, prg_);
  const auto c2 = pk.rerandomize(c, prg_);
  EXPECT_NE(c, c2);
  EXPECT_TRUE(sk_.decrypt(c2));
}

TEST_F(GmTest, SerializationRoundTrip) {
  Writer w;
  sk_.public_key().serialize(w);
  Reader r(w.data());
  const GmPublicKey pk2 = GmPublicKey::deserialize(r);
  EXPECT_TRUE(sk_.decrypt(pk2.encrypt(true, prg_)));
}

TEST(Gm, RandomUnitCoversFullRange) {
  const GmPublicKey pk(BigInt(35), BigInt(4));  // jacobi(4, 35) = +1
  crypto::Prg prg("gm-random-unit");
  std::vector<int> seen(35, 0);
  for (int i = 0; i < 2000; ++i) {
    const BigInt r = pk.random_unit(prg);
    ASSERT_FALSE(r.is_zero());
    ASSERT_LT(r, BigInt(35));
    seen[r.to_u64()] += 1;
  }
  EXPECT_EQ(seen[0], 0);
  for (int v = 1; v < 35; ++v) EXPECT_GT(seen[v], 0) << v;
}

TEST(Gm, PublicKeyValidatesZ) {
  crypto::Prg prg("gm-validate");
  const auto sk = gm_keygen(prg, 128);
  // z with Jacobi symbol -1 must be rejected.
  const BigInt n = sk.public_key().n();
  BigInt bad(2);
  while (bignum::jacobi(bad, n) != -1) bad += BigInt(1);
  EXPECT_THROW(GmPublicKey(n, bad), InvalidArgument);
}

}  // namespace
}  // namespace spfe::he
