#include <gtest/gtest.h>

#include "bignum/primes.h"
#include "common/error.h"
#include "he/goldwasser_micali.h"
#include "he/paillier.h"

namespace spfe::he {
namespace {

using bignum::BigInt;

class PaillierTest : public ::testing::Test {
 protected:
  // 256-bit keys keep the unit suite fast; bench_primitives covers 512/1024.
  PaillierTest() : prg_("paillier-test"), sk_(paillier_keygen(prg_, 256)) {}

  crypto::Prg prg_;
  PaillierPrivateKey sk_;
};

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  const auto& pk = sk_.public_key();
  for (const std::uint64_t m : {0ull, 1ull, 42ull, 1000000007ull}) {
    const BigInt c = pk.encrypt(BigInt(m), prg_);
    EXPECT_EQ(sk_.decrypt(c), BigInt(m));
  }
  // Near the modulus.
  const BigInt big = pk.n() - BigInt(1);
  EXPECT_EQ(sk_.decrypt(pk.encrypt(big, prg_)), big);
}

TEST_F(PaillierTest, EncryptionIsRandomized) {
  const auto& pk = sk_.public_key();
  EXPECT_NE(pk.encrypt(BigInt(7), prg_), pk.encrypt(BigInt(7), prg_));
}

TEST_F(PaillierTest, AdditiveHomomorphism) {
  const auto& pk = sk_.public_key();
  const BigInt a(123456789), b(987654321);
  const BigInt sum = pk.add(pk.encrypt(a, prg_), pk.encrypt(b, prg_));
  EXPECT_EQ(sk_.decrypt(sum), a + b);
}

TEST_F(PaillierTest, HomomorphismWrapsModN) {
  const auto& pk = sk_.public_key();
  const BigInt a = pk.n() - BigInt(5);
  const BigInt b(12);
  const BigInt sum = pk.add(pk.encrypt(a, prg_), pk.encrypt(b, prg_));
  EXPECT_EQ(sk_.decrypt(sum), BigInt(7));
}

TEST_F(PaillierTest, ScalarMultiplication) {
  const auto& pk = sk_.public_key();
  const BigInt c = pk.encrypt(BigInt(1000), prg_);
  EXPECT_EQ(sk_.decrypt(pk.mul_scalar(c, BigInt(37))), BigInt(37000));
  EXPECT_EQ(sk_.decrypt(pk.mul_scalar(c, BigInt(0))), BigInt(0));
  // Negative scalar uses the group inverse: -2 * 1000 = N - 2000.
  EXPECT_EQ(sk_.decrypt(pk.mul_scalar(c, BigInt(-2))), pk.n() - BigInt(2000));
  EXPECT_EQ(sk_.decrypt_signed(pk.mul_scalar(c, BigInt(-2))), BigInt(-2000));
}

TEST_F(PaillierTest, NegateAndSignedDecrypt) {
  const auto& pk = sk_.public_key();
  const BigInt c = pk.negate(pk.encrypt(BigInt(555), prg_));
  EXPECT_EQ(sk_.decrypt_signed(c), BigInt(-555));
}

TEST_F(PaillierTest, RerandomizePreservesPlaintext) {
  const auto& pk = sk_.public_key();
  const BigInt c = pk.encrypt(BigInt(777), prg_);
  const BigInt c2 = pk.rerandomize(c, prg_);
  EXPECT_NE(c, c2);
  EXPECT_EQ(sk_.decrypt(c2), BigInt(777));
}

TEST_F(PaillierTest, LinearCombination) {
  // decrypt(prod E(a_i)^{w_i}) = sum w_i a_i — the §4 weighted-sum core.
  const auto& pk = sk_.public_key();
  const std::uint64_t values[] = {10, 20, 30};
  const std::uint64_t weights[] = {3, 5, 7};
  BigInt acc = pk.encrypt(BigInt(0), prg_);
  for (int i = 0; i < 3; ++i) {
    acc = pk.add(acc, pk.mul_scalar(pk.encrypt(BigInt(values[i]), prg_), BigInt(weights[i])));
  }
  EXPECT_EQ(sk_.decrypt(acc), BigInt(10 * 3 + 20 * 5 + 30 * 7));
}

TEST_F(PaillierTest, PublicKeySerializationRoundTrip) {
  const auto& pk = sk_.public_key();
  Writer w;
  pk.serialize(w);
  Reader r(w.data());
  const PaillierPublicKey pk2 = PaillierPublicKey::deserialize(r);
  EXPECT_EQ(pk2, pk);
  // A ciphertext made by the deserialized key decrypts correctly.
  EXPECT_EQ(sk_.decrypt(pk2.encrypt(BigInt(31337), prg_)), BigInt(31337));
}

TEST_F(PaillierTest, DecryptValidatesRange) {
  EXPECT_THROW(sk_.decrypt(sk_.public_key().n_squared()), InvalidArgument);
  EXPECT_THROW(sk_.decrypt(BigInt(-1)), InvalidArgument);
}

TEST(Paillier, KeygenValidatesSize) {
  crypto::Prg prg("kg");
  EXPECT_THROW(paillier_keygen(prg, 8), InvalidArgument);
}

TEST(Paillier, DeterministicEncryptionWithExplicitRandomness) {
  crypto::Prg prg("det");
  const auto sk = paillier_keygen(prg, 128);
  const auto& pk = sk.public_key();
  const BigInt r(12345);
  EXPECT_EQ(pk.encrypt_with_randomness(BigInt(9), r), pk.encrypt_with_randomness(BigInt(9), r));
  EXPECT_EQ(sk.decrypt(pk.encrypt_with_randomness(BigInt(9), r)), BigInt(9));
}

class GmTest : public ::testing::Test {
 protected:
  GmTest() : prg_("gm-test"), sk_(gm_keygen(prg_, 256)) {}

  crypto::Prg prg_;
  GmPrivateKey sk_;
};

TEST_F(GmTest, EncryptDecryptBits) {
  const auto& pk = sk_.public_key();
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(sk_.decrypt(pk.encrypt(false, prg_)));
    EXPECT_TRUE(sk_.decrypt(pk.encrypt(true, prg_)));
  }
}

TEST_F(GmTest, XorHomomorphism) {
  const auto& pk = sk_.public_key();
  for (const bool a : {false, true}) {
    for (const bool b : {false, true}) {
      const auto c = pk.xor_ct(pk.encrypt(a, prg_), pk.encrypt(b, prg_));
      EXPECT_EQ(sk_.decrypt(c), a != b);
    }
  }
}

TEST_F(GmTest, RerandomizePreservesBit) {
  const auto& pk = sk_.public_key();
  const auto c = pk.encrypt(true, prg_);
  const auto c2 = pk.rerandomize(c, prg_);
  EXPECT_NE(c, c2);
  EXPECT_TRUE(sk_.decrypt(c2));
}

TEST_F(GmTest, SerializationRoundTrip) {
  Writer w;
  sk_.public_key().serialize(w);
  Reader r(w.data());
  const GmPublicKey pk2 = GmPublicKey::deserialize(r);
  EXPECT_TRUE(sk_.decrypt(pk2.encrypt(true, prg_)));
}

TEST(Gm, PublicKeyValidatesZ) {
  crypto::Prg prg("gm-validate");
  const auto sk = gm_keygen(prg, 128);
  // z with Jacobi symbol -1 must be rejected.
  const BigInt n = sk.public_key().n();
  BigInt bad(2);
  while (bignum::jacobi(bad, n) != -1) bad += BigInt(1);
  EXPECT_THROW(GmPublicKey(n, bad), InvalidArgument);
}

}  // namespace
}  // namespace spfe::he
