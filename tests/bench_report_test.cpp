// Regression tests for the bench JSON report (bench/bench_util.h): the
// BENCH_*.json artifacts are parsed by strict JSON consumers in CI, so every
// document JsonReport emits must survive a strict parser — including rows
// with NaN/inf timings (emitted as null, never as bare `nan`) and operation
// names containing JSON metacharacters. write() must be atomic and report
// I/O failure instead of leaving a truncated artifact.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "bench_util.h"
#include "json_check.h"

namespace spfe::bench {
namespace {

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string content;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, got);
  std::fclose(f);
  return content;
}

TEST(JsonReport, RoundTripsThroughStrictParser) {
  JsonReport report("roundtrip");
  report.add("paillier_encrypt", 512, 1234.5, 128);
  report.add("modexp", 2048, 0.4, 0);
  const testjson::Value doc = testjson::parse(report.to_json());
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.array.size(), 2u);
  EXPECT_EQ(doc.array[0].find("op")->string, "paillier_encrypt");
  EXPECT_EQ(doc.array[0].find("size")->number, 512.0);
  EXPECT_DOUBLE_EQ(doc.array[0].find("ns_per_op")->number, 1234.5);
  EXPECT_EQ(doc.array[0].find("bytes")->number, 128.0);
  EXPECT_DOUBLE_EQ(doc.array[1].find("ns_per_op")->number, 0.4);
}

TEST(JsonReport, EmptyReportIsValidEmptyArray) {
  const testjson::Value doc = testjson::parse(JsonReport("empty").to_json());
  ASSERT_TRUE(doc.is_array());
  EXPECT_TRUE(doc.array.empty());
}

TEST(JsonReport, NanAndInfTimingsBecomeNull) {
  // A zero-iteration bench row divides by zero; "%.1f" of the result prints
  // "nan"/"inf"/"-inf", none of which is a JSON token. The report must emit
  // null so strict consumers keep parsing.
  JsonReport report("nonfinite");
  report.add("nan_row", 1, std::nan(""), 0);
  report.add("inf_row", 2, std::numeric_limits<double>::infinity(), 0);
  report.add("neg_inf_row", 3, -std::numeric_limits<double>::infinity(), 4);
  report.add("ok_row", 4, 7.5, 8);
  const std::string json = report.to_json();
  testjson::Value doc;
  ASSERT_NO_THROW(doc = testjson::parse(json)) << json;
  ASSERT_EQ(doc.array.size(), 4u);
  EXPECT_TRUE(doc.array[0].find("ns_per_op")->is_null());
  EXPECT_TRUE(doc.array[1].find("ns_per_op")->is_null());
  EXPECT_TRUE(doc.array[2].find("ns_per_op")->is_null());
  EXPECT_DOUBLE_EQ(doc.array[3].find("ns_per_op")->number, 7.5);
  // Non-timing fields of a null row are intact.
  EXPECT_EQ(doc.array[0].find("size")->number, 1.0);
  EXPECT_EQ(doc.array[2].find("bytes")->number, 4.0);
}

TEST(JsonReport, OpNamesWithMetacharactersAreEscaped) {
  JsonReport report("escape");
  report.add("mul \"wide\"", 1, 1.0, 0);
  report.add("path\\kernel", 2, 2.0, 0);
  const std::string json = report.to_json();
  testjson::Value doc;
  ASSERT_NO_THROW(doc = testjson::parse(json)) << json;
  EXPECT_EQ(doc.array[0].find("op")->string, "mul \"wide\"");
  EXPECT_EQ(doc.array[1].find("op")->string, "path\\kernel");
}

TEST(JsonReport, WriteProducesParsableFileAtomically) {
  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("SPFE_BENCH_JSON_DIR", dir.c_str(), 1), 0);
  JsonReport report("write_test");
  report.add("op_a", 10, 3.25, 16);
  report.add("nan_op", 20, std::nan(""), 0);
  EXPECT_TRUE(report.write());
  unsetenv("SPFE_BENCH_JSON_DIR");
  const std::string path = dir + "/BENCH_write_test.json";
  const std::string content = read_file(path);
  // Atomic: no temp file survives a successful write.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
  testjson::Value doc;
  ASSERT_NO_THROW(doc = testjson::parse(content)) << content;
  ASSERT_EQ(doc.array.size(), 2u);
  EXPECT_EQ(doc.array[0].find("op")->string, "op_a");
  EXPECT_TRUE(doc.array[1].find("ns_per_op")->is_null());
}

TEST(JsonReport, WriteToUnwritableDirFailsCleanly) {
  ASSERT_EQ(setenv("SPFE_BENCH_JSON_DIR", "/nonexistent-bench-dir", 1), 0);
  JsonReport report("unwritable");
  report.add("op", 1, 1.0, 0);
  EXPECT_FALSE(report.write());
  unsetenv("SPFE_BENCH_JSON_DIR");
}

}  // namespace
}  // namespace spfe::bench
