// Virtual-time network layer: clock/latency/deadline semantics, the PR 6
// metering invariants re-asserted under the clocked path, the timed robust
// driver's policy helpers, and the session health tracker.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/prg.h"
#include "field/fp64.h"
#include "net/fault.h"
#include "net/health.h"
#include "net/robust.h"
#include "net/sim.h"
#include "spfe/multiserver.h"

namespace {

using spfe::Bytes;
using spfe::ServerUnavailable;
using spfe::crypto::Prg;
using spfe::field::Fp64;
using namespace spfe::net;

Prg::Seed seed_of(const std::string& label) { return Prg(label).fork_seed("seed"); }

// ---------------------------------------------------------------------------
// Clock + latency model.

TEST(SimClockTest, OnlyMovesForward) {
  SimClock clock;
  EXPECT_EQ(clock.now_us(), 0u);
  clock.advance_to(100);
  EXPECT_EQ(clock.now_us(), 100u);
  clock.advance_to(40);  // past: no-op
  EXPECT_EQ(clock.now_us(), 100u);
  clock.advance_by(10);
  EXPECT_EQ(clock.now_us(), 110u);
}

TEST(LatencyModelTest, ZeroProfileIsZeroLatency) {
  const LatencyModel model(SimConfig::uniform(3, ServerProfile{}, seed_of("lm-zero")));
  for (std::uint64_t ord = 0; ord < 4; ++ord) {
    EXPECT_EQ(model.sample_us(Direction::kClientToServer, 1, ord), 0u);
  }
}

TEST(LatencyModelTest, SamplesAreKeyedNotSequenced) {
  const SimConfig cfg = SimConfig::uniform(4, ServerProfile::typical(), seed_of("lm-keyed"));
  const LatencyModel a(cfg), b(cfg);
  // Query b in a scrambled order: samples must match a's, key by key.
  const std::uint64_t b_32 = b.sample_us(Direction::kServerToClient, 3, 2);
  const std::uint64_t b_00 = b.sample_us(Direction::kClientToServer, 0, 0);
  EXPECT_EQ(a.sample_us(Direction::kClientToServer, 0, 0), b_00);
  EXPECT_EQ(a.sample_us(Direction::kServerToClient, 3, 2), b_32);
  // Within the profile's range.
  const ServerProfile p = ServerProfile::typical();
  EXPECT_GE(b_00, p.base_us);
  EXPECT_LE(b_00, p.base_us + p.jitter_us);
  // Distinct keys give distinct streams (overwhelmingly).
  bool any_diff = false;
  for (std::uint64_t ord = 0; ord < 8; ++ord) {
    if (a.sample_us(Direction::kClientToServer, 1, ord) !=
        a.sample_us(Direction::kClientToServer, 2, ord)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(LatencyModelTest, StragglersMultiplyLatency) {
  ServerProfile p;
  p.base_us = 100;
  p.straggle_permille = 1000;  // always
  p.straggle_factor = 30;
  const LatencyModel model(SimConfig::uniform(1, p, seed_of("lm-straggle")));
  EXPECT_EQ(model.sample_us(Direction::kServerToClient, 0, 0), 3000u);
}

TEST(LatencyModelTest, QuantileBracketsTheDistribution) {
  const LatencyModel model(
      SimConfig::uniform(2, ServerProfile::typical(), seed_of("lm-quantile")));
  const ServerProfile p = ServerProfile::typical();
  const std::uint64_t q50 = model.quantile_us(0, 0.5);
  const std::uint64_t q99 = model.quantile_us(0, 0.99);
  EXPECT_GE(q50, p.base_us);
  EXPECT_LE(q99, p.base_us + p.jitter_us);
  EXPECT_LE(q50, q99);
  // Deterministic.
  EXPECT_EQ(q99, model.quantile_us(0, 0.99));
}

TEST(LatencyModelTest, RejectsInvertedOutage) {
  SimConfig cfg = SimConfig::uniform(1, ServerProfile{}, seed_of("lm-bad-outage"));
  cfg.outages = {{{50, 10}}};
  EXPECT_THROW(LatencyModel{cfg}, spfe::InvalidArgument);
}

// ---------------------------------------------------------------------------
// SimStarNetwork timeline semantics.

TEST(SimStarNetworkTest, LatencyAdvancesClockOnDelivery) {
  ServerProfile p;
  p.base_us = 250;
  SimStarNetwork net(2, SimConfig::uniform(2, p, seed_of("sim-lat")));
  net.client_send(0, Bytes{1});
  const Bytes q = net.server_receive(0);
  EXPECT_EQ(q, Bytes{1});
  EXPECT_EQ(net.clock().now_us(), 0u);  // server work never moves the client clock
  net.server_send(0, Bytes{2});
  const Bytes a = net.client_receive(0);
  EXPECT_EQ(a, Bytes{2});
  // c2s (250) departs at 0, lands at 250; answer departs at 250, lands 500.
  EXPECT_EQ(net.clock().now_us(), 500u);
  EXPECT_EQ(net.last_delivery_us(), 500u);
}

TEST(SimStarNetworkTest, ServersRunConcurrently) {
  std::vector<ServerProfile> profiles(2);
  profiles[0].base_us = 1000;
  profiles[1].base_us = 10;
  SimConfig cfg;
  cfg.seed = seed_of("sim-conc");
  cfg.profiles = profiles;
  SimStarNetwork net(2, cfg);
  for (std::size_t s = 0; s < 2; ++s) {
    net.client_send(s, Bytes{static_cast<std::uint8_t>(s)});
    net.server_receive(s);
    net.server_send(s, Bytes{7});
  }
  // Collect the slow server first, the fast one after: the fast answer was
  // ready long before the clock reached 2000, so the clock stays put.
  net.client_receive(0);
  EXPECT_EQ(net.clock().now_us(), 2000u);
  net.client_receive(1);
  EXPECT_EQ(net.clock().now_us(), 2000u);
  EXPECT_EQ(net.last_delivery_us(), 20u);  // the fast answer's own ready time
}

TEST(SimStarNetworkTest, DeadlineMissLeavesMessageInFlight) {
  ServerProfile p;
  p.base_us = 300;
  SimStarNetwork net(1, SimConfig::uniform(1, p, seed_of("sim-deadline")));
  net.client_send(0, Bytes{1});
  net.server_receive(0);
  net.server_send(0, Bytes{2});  // ready at the client at 600us

  net.set_deadline(500);
  EXPECT_THROW(net.client_receive(0), ServerUnavailable);
  EXPECT_EQ(net.clock().now_us(), 500u);  // the client waited out its deadline
  EXPECT_TRUE(net.client_has_message(0));  // still in flight, not lost

  net.set_deadline(SimStarNetwork::kNoDeadline);
  EXPECT_EQ(net.client_receive(0), Bytes{2});  // a longer wait still gets it
  EXPECT_EQ(net.clock().now_us(), 600u);
}

TEST(SimStarNetworkTest, DeadlineMissOnEmptyChannelWaitsOutTheDeadline) {
  SimStarNetwork net(1, SimConfig::uniform(1, ServerProfile{}, seed_of("sim-empty")));
  net.set_deadline(750);
  EXPECT_THROW(net.client_receive(0), ServerUnavailable);
  EXPECT_EQ(net.clock().now_us(), 750u);
}

TEST(SimStarNetworkTest, OutageDropsButMeters) {
  SimConfig cfg = SimConfig::uniform(1, ServerProfile{}, seed_of("sim-outage"));
  cfg.outages = {{{0, 100}}};  // link down at t=0
  SimStarNetwork net(1, cfg);
  net.client_send(0, Bytes{1, 2, 3});
  EXPECT_EQ(net.stats().client_to_server_bytes, 3u);  // sender pays
  EXPECT_EQ(net.stats().client_to_server_messages, 1u);
  EXPECT_FALSE(net.server_has_message(0));  // the wire ate it
  // After the window the link works again.
  net.clock().advance_to(100);
  net.client_send(0, Bytes{4});
  EXPECT_TRUE(net.server_has_message(0));
}

TEST(SimStarNetworkTest, DelayFaultBecomesConcreteLatency) {
  FaultPlan plan;
  plan.add(Direction::kServerToClient, 0, 0, Fault{FaultKind::kDelayHalfRound, 0, 0x01, 0});
  SimConfig cfg = SimConfig::uniform(1, ServerProfile{}, seed_of("sim-delayfault"));
  cfg.delay_fault_penalty_us = 5000;
  SimStarNetwork net(1, cfg, plan);
  net.client_send(0, Bytes{1});
  net.server_receive(0);
  net.server_send(0, Bytes{2});
  net.set_deadline(4999);
  EXPECT_THROW(net.client_receive(0), ServerUnavailable);  // delayed past it
  net.set_deadline(SimStarNetwork::kNoDeadline);
  EXPECT_EQ(net.client_receive(0), Bytes{2});
  EXPECT_EQ(net.clock().now_us(), 5000u);
}

TEST(SimStarNetworkTest, DiscardInFlightClearsWithoutAdvancingClock) {
  ServerProfile p;
  p.base_us = 40;
  SimStarNetwork net(2, SimConfig::uniform(2, p, seed_of("sim-discard")));
  net.client_send(0, Bytes{1});
  net.client_send(1, Bytes{1});
  net.server_receive(1);
  net.server_send(1, Bytes{2});
  net.discard_in_flight();
  EXPECT_EQ(net.clock().now_us(), 0u);
  EXPECT_TRUE(net.idle());
}

TEST(SimStarNetworkTest, EarliestClientReadyPicksArrivalOrder) {
  SimConfig cfg;
  cfg.seed = seed_of("sim-select");
  cfg.profiles = {{900, 0, 0, 20}, {100, 0, 0, 20}, {500, 0, 0, 20}};
  SimStarNetwork net(3, cfg);
  EXPECT_FALSE(net.earliest_client_ready({0, 1, 2}).has_value());
  for (std::size_t s = 0; s < 3; ++s) {
    net.client_send(s, Bytes{1});
    net.server_receive(s);
    net.server_send(s, Bytes{static_cast<uint8_t>(s)});
  }
  // Answers become ready at 2*base: server 1 first, then 2, then 0 — and the
  // peek itself never moves the clock.
  EXPECT_EQ(net.earliest_client_ready({0, 1, 2}).value(), 1u);
  EXPECT_EQ(net.earliest_client_ready({0, 2}).value(), 1u);
  EXPECT_EQ(net.clock().now_us(), 0u);
  EXPECT_EQ(net.client_receive(1), Bytes{1});
  EXPECT_EQ(net.earliest_client_ready({0, 1, 2}).value(), 2u);
}

// ---------------------------------------------------------------------------
// PR 6 metering invariants, re-asserted under the clocked path.

TEST(SimMeteringTest, ZeroByteMessagesAreMeteredAsMessages) {
  SimStarNetwork net(1, SimConfig::uniform(1, ServerProfile{}, seed_of("sim-zero")));
  net.client_send(0, Bytes{});
  EXPECT_EQ(net.stats().client_to_server_messages, 1u);
  EXPECT_EQ(net.stats().client_to_server_bytes, 0u);
  EXPECT_EQ(net.stats().half_rounds, 1u);
  EXPECT_EQ(net.server_receive(0), Bytes{});
}

TEST(SimMeteringTest, DuplicatesAreDeliveredTwiceButMeteredOnce) {
  FaultPlan plan;
  plan.add(Direction::kClientToServer, 0, 0, Fault{FaultKind::kDuplicate, 0, 0x01, 0});
  SimStarNetwork net(1, SimConfig::uniform(1, ServerProfile{}, seed_of("sim-dup")), plan);
  net.client_send(0, Bytes{9, 9});
  EXPECT_EQ(net.stats().client_to_server_messages, 1u);  // sender paid once
  EXPECT_EQ(net.stats().client_to_server_bytes, 2u);
  EXPECT_EQ(net.server_receive(0), (Bytes{9, 9}));
  EXPECT_EQ(net.server_receive(0), (Bytes{9, 9}));  // the free copy
  EXPECT_FALSE(net.server_has_message(0));
}

TEST(SimMeteringTest, CrashedServerTransmitsNothing) {
  FaultPlan plan;
  plan.crash_after(0, 1);  // dies after receiving the query
  SimStarNetwork net(1, SimConfig::uniform(1, ServerProfile{}, seed_of("sim-crash")), plan);
  net.client_send(0, Bytes{1});
  EXPECT_FALSE(net.server_crashed(0));
  net.server_receive(0);
  EXPECT_TRUE(net.server_crashed(0));
  net.server_send(0, Bytes{2, 2, 2});  // dead: silently dropped, unmetered
  EXPECT_EQ(net.stats().server_to_client_messages, 0u);
  EXPECT_EQ(net.stats().server_to_client_bytes, 0u);
  EXPECT_FALSE(net.client_has_message(0));
}

TEST(SimMeteringTest, ZeroLatencySimMatchesPlainNetworkStats) {
  // The same exchange over a plain StarNetwork and a zero-latency sim must
  // meter identically (and the sim's clock must not move).
  StarNetwork plain(2);
  SimStarNetwork sim(2, SimConfig::uniform(2, ServerProfile{}, seed_of("sim-parity")));
  for (StarNetwork* net : {&plain, static_cast<StarNetwork*>(&sim)}) {
    for (std::size_t s = 0; s < 2; ++s) {
      net->client_send(s, Bytes{1, 2, 3});
      net->server_receive(s);
      net->server_send(s, Bytes{4, 5});
      net->client_receive(s);
    }
  }
  EXPECT_EQ(plain.stats().client_to_server_bytes, sim.stats().client_to_server_bytes);
  EXPECT_EQ(plain.stats().server_to_client_bytes, sim.stats().server_to_client_bytes);
  EXPECT_EQ(plain.stats().client_to_server_messages, sim.stats().client_to_server_messages);
  EXPECT_EQ(plain.stats().server_to_client_messages, sim.stats().server_to_client_messages);
  EXPECT_EQ(plain.stats().half_rounds, sim.stats().half_rounds);
  EXPECT_EQ(sim.clock().now_us(), 0u);
  EXPECT_TRUE(plain.idle());
  EXPECT_TRUE(sim.idle());
}

// ---------------------------------------------------------------------------
// Timed-policy helpers.

TEST(TimingPolicyTest, ProvisioningHelper) {
  // degree d needs d+1 points; a silent lie costs 2, a crash 1, spares ride
  // on top.
  EXPECT_EQ(provisioned_servers(6, 0, 0), 7u);
  EXPECT_EQ(provisioned_servers(6, 1, 2), 11u);
  EXPECT_EQ(provisioned_servers(6, 1, 1, 3), 13u);
}

TEST(TimingPolicyTest, BackoffIsExponentialCappedAndJittered) {
  TimingPolicy tp;
  tp.backoff_base_us = 1000;
  tp.backoff_max_us = 8000;
  tp.backoff_jitter_permille = 500;
  tp.backoff_seed = seed_of("backoff");
  const std::uint64_t w1 = detail::backoff_wait_us(tp, 1);
  const std::uint64_t w2 = detail::backoff_wait_us(tp, 2);
  const std::uint64_t w5 = detail::backoff_wait_us(tp, 5);
  EXPECT_GE(w1, 1000u);
  EXPECT_LE(w1, 1500u);  // base + <=50% jitter
  EXPECT_GE(w2, 2000u);
  EXPECT_LE(w2, 3000u);
  EXPECT_GE(w5, 8000u);  // capped at max
  EXPECT_LE(w5, 12000u);
  // Deterministic in the seed.
  EXPECT_EQ(w2, detail::backoff_wait_us(tp, 2));
  tp.backoff_jitter_permille = 0;
  EXPECT_EQ(detail::backoff_wait_us(tp, 2), 2000u);
}

TEST(TimingPolicyTest, SendOrderValidation) {
  TimingPolicy tp;
  EXPECT_EQ(detail::resolve_send_order(tp, 3), (std::vector<std::size_t>{0, 1, 2}));
  tp.send_order = {2, 0, 1};
  EXPECT_EQ(detail::resolve_send_order(tp, 3), (std::vector<std::size_t>{2, 0, 1}));
  tp.send_order = {0, 1};
  EXPECT_THROW(detail::resolve_send_order(tp, 3), spfe::InvalidArgument);
  tp.send_order = {0, 0, 1};
  EXPECT_THROW(detail::resolve_send_order(tp, 3), spfe::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Timed robust exchange over the sum SPFE (small smoke; the chaos sweep
// exercises the full schedule space).

TEST(TimedRobustTest, DeadlinesTurnStragglersIntoErasures) {
  const Fp64 field(Fp64::kMersenne61);
  std::vector<std::uint64_t> db(64);
  for (std::size_t i = 0; i < db.size(); ++i) db[i] = i * i + 3;
  const std::vector<std::size_t> indices = {5, 41};
  const std::size_t k = provisioned_servers(6, 0, 1);  // one erasure budgeted
  const spfe::protocols::MultiServerSumSpfe proto(field, 64, 2, k, 1);

  // Server 2 always straggles 30x; everyone else is fast and tight.
  ServerProfile fast;
  fast.base_us = 100;
  std::vector<ServerProfile> profiles(k, fast);
  profiles[2].base_us = 100;
  profiles[2].straggle_permille = 1000;
  profiles[2].straggle_factor = 30;
  SimConfig cfg;
  cfg.seed = seed_of("timed-straggler");
  cfg.profiles = profiles;
  SimStarNetwork net(k, cfg);

  RobustConfig rc;
  rc.timing.enabled = true;
  rc.timing.attempt_timeout_us = 1000;  // straggler needs 3100+
  Prg prg("timed-robust");
  const auto seed = prg.fork_seed("spir");
  const RobustResult res = proto.run_robust(net, db, indices, seed, prg, rc);
  EXPECT_EQ(res.value, field.add(db[5], db[41]));
  EXPECT_TRUE(res.report.success);
  EXPECT_EQ(res.report.attempts, 1u);
  EXPECT_EQ(res.report.erasures, 1u);
  EXPECT_EQ(res.report.verdicts[2].fate, ServerFate::kUnavailable);
  EXPECT_GT(res.report.completion_us, 0u);
  ASSERT_EQ(res.report.history.size(), 1u);
  EXPECT_EQ(res.report.history[0].verdicts[2].fate, ServerFate::kUnavailable);
  EXPECT_TRUE(net.idle());
}

TEST(TimedRobustTest, HedgeSparesRescueStragglers) {
  const Fp64 field(Fp64::kMersenne61);
  std::vector<std::uint64_t> db(64);
  for (std::size_t i = 0; i < db.size(); ++i) db[i] = i * 3 + 1;
  const std::vector<std::size_t> indices = {9, 30};
  const std::size_t spares = 2;
  const std::size_t k = provisioned_servers(6, 0, 0, spares);
  const spfe::protocols::MultiServerSumSpfe proto(field, 64, 2, k, 1);

  // Primaries 0 and 3 straggle past any sane deadline; the spares are fast.
  ServerProfile fast;
  fast.base_us = 100;
  std::vector<ServerProfile> profiles(k, fast);
  for (const std::size_t s : {std::size_t{0}, std::size_t{3}}) {
    profiles[s].straggle_permille = 1000;
    profiles[s].straggle_factor = 1000;  // 100ms: beyond the attempt deadline
  }
  SimConfig cfg;
  cfg.seed = seed_of("timed-hedge");
  cfg.profiles = profiles;
  SimStarNetwork net(k, cfg);

  RobustConfig rc;
  rc.timing.enabled = true;
  rc.timing.attempt_timeout_us = 20'000;
  rc.timing.hedge_timeout_us = 500;
  rc.timing.hedge_spares = spares;
  Prg prg("timed-hedge");
  const auto seed = prg.fork_seed("spir");
  const RobustResult res = proto.run_robust(net, db, indices, seed, prg, rc);
  EXPECT_EQ(res.value, field.add(db[9], db[30]));
  EXPECT_TRUE(res.report.success);
  EXPECT_EQ(res.report.attempts, 1u);
  // Both stragglers abandoned, both spares dispatched and used.
  EXPECT_EQ(res.report.verdicts[0].fate, ServerFate::kUnavailable);
  EXPECT_EQ(res.report.verdicts[3].fate, ServerFate::kUnavailable);
  EXPECT_EQ(res.report.verdicts[k - 1].fate, ServerFate::kOk);
  EXPECT_EQ(res.report.verdicts[k - 2].fate, ServerFate::kOk);
  // Hedging wins long before the stragglers' 100ms.
  EXPECT_LT(res.report.completion_us, 5'000u);
  EXPECT_TRUE(net.idle());
}

TEST(TimedRobustTest, UnusedSparesAreReportedAsSpares) {
  const Fp64 field(Fp64::kMersenne61);
  std::vector<std::uint64_t> db(64);
  for (std::size_t i = 0; i < db.size(); ++i) db[i] = i + 1;
  const std::vector<std::size_t> indices = {1, 2};
  const std::size_t k = provisioned_servers(6, 0, 0, 2);
  const spfe::protocols::MultiServerSumSpfe proto(field, 64, 2, k, 1);

  ServerProfile fast;
  fast.base_us = 50;
  SimStarNetwork net(k, SimConfig::uniform(k, fast, seed_of("timed-spare")));
  RobustConfig rc;
  rc.timing.enabled = true;
  rc.timing.attempt_timeout_us = 10'000;
  rc.timing.hedge_timeout_us = 500;
  rc.timing.hedge_spares = 2;
  Prg prg("timed-spare");
  const auto seed = prg.fork_seed("spir");
  const RobustResult res = proto.run_robust(net, db, indices, seed, prg, rc);
  EXPECT_EQ(res.value, field.add(db[1], db[2]));
  EXPECT_EQ(res.report.verdicts[k - 1].fate, ServerFate::kSpare);
  EXPECT_EQ(res.report.verdicts[k - 2].fate, ServerFate::kSpare);
  // Spares never queried: erasures count only queried servers.
  EXPECT_EQ(res.report.erasures, 0u);
}

// Regression: a Byzantine lie among the first answers must not survive an
// early decode. At the bare degree+1 quorum Berlekamp–Welch has zero
// correction margin, so any d+1 points (lie included) decode to a
// consistent wrong polynomial; byzantine_budget makes the driver wait for
// degree + 1 + 2e usable answers, where e lies are corrected.
TEST(TimedRobustTest, ByzantineLieCannotSurviveEarlyDecode) {
  const Fp64 field(Fp64::kMersenne61);
  std::vector<std::uint64_t> db(64);
  for (std::size_t i = 0; i < db.size(); ++i) db[i] = i * 11 + 2;
  const std::vector<std::size_t> indices = {7, 12};
  const std::size_t spares = 2;
  const std::size_t k = provisioned_servers(6, 1, 0, spares);  // 11

  // Server 0 lies (corrupted answer); server 3 straggles past the hedge
  // deadline. Without the budget, pass 1 would decode from exactly d+1 = 7
  // points including the lie.
  FaultPlan plan;
  plan.add(Direction::kServerToClient, 0, 0, Fault{FaultKind::kCorruptByte, 2, 0x5a, 0});
  ServerProfile fast;
  fast.base_us = 100;
  std::vector<ServerProfile> profiles(k, fast);
  profiles[3].straggle_permille = 1000;
  profiles[3].straggle_factor = 1000;
  SimConfig cfg;
  cfg.seed = seed_of("timed-lie");
  cfg.profiles = profiles;
  SimStarNetwork net(k, cfg, plan);

  RobustConfig rc;
  rc.timing.enabled = true;
  rc.timing.attempt_timeout_us = 20'000;
  rc.timing.hedge_timeout_us = 500;
  rc.timing.hedge_spares = spares;
  rc.timing.byzantine_budget = 1;  // provisioned e
  const spfe::protocols::MultiServerSumSpfe proto(field, 64, 2, k, 1);
  Prg prg("timed-lie");
  const auto seed = prg.fork_seed("spir");
  const RobustResult res = proto.run_robust(net, db, indices, seed, prg, rc);
  EXPECT_EQ(res.value, field.add(db[7], db[12]));
  EXPECT_EQ(res.report.attempts, 1u);
  EXPECT_EQ(res.report.errors_corrected, 1u);
  EXPECT_EQ(res.report.verdicts[0].fate, ServerFate::kCorrected);
  EXPECT_EQ(res.report.verdicts[3].fate, ServerFate::kUnavailable);
  EXPECT_TRUE(net.idle());
}

TEST(TimedRobustTest, RetriesBackOffInVirtualTime) {
  const Fp64 field(Fp64::kMersenne61);
  std::vector<std::uint64_t> db(64, 7);
  const std::vector<std::size_t> indices = {0, 1};
  const std::size_t k = provisioned_servers(6, 0, 0);
  const spfe::protocols::MultiServerSumSpfe proto(field, 64, 2, k, 1);

  // Zero redundancy and one server's answers always dropped: every attempt
  // fails, each after waiting out its deadline plus the backoff.
  FaultPlan plan;
  for (std::size_t r = 0; r < 8; ++r) {
    plan.add(Direction::kServerToClient, 0, r, Fault{FaultKind::kDrop, 0, 0x01, 0});
  }
  ServerProfile fast;
  fast.base_us = 10;
  SimStarNetwork net(k, SimConfig::uniform(k, fast, seed_of("timed-retry")), plan);
  RobustConfig rc;
  rc.max_attempts = 3;
  rc.timing.enabled = true;
  rc.timing.attempt_timeout_us = 1'000;
  rc.timing.backoff_base_us = 2'000;
  rc.timing.backoff_max_us = 16'000;
  rc.timing.backoff_jitter_permille = 0;
  Prg prg("timed-retry");
  const auto seed = prg.fork_seed("spir");
  try {
    proto.run_robust(net, db, indices, seed, prg, rc);
    FAIL() << "undecodable run must throw";
  } catch (const RobustProtocolError& err) {
    const RobustnessReport& rep = err.report();
    EXPECT_EQ(rep.attempts, 3u);
    ASSERT_EQ(rep.history.size(), 3u);
    // Attempt i starts after attempt i-1's deadline plus the backoff.
    EXPECT_EQ(rep.history[0].started_us, 0u);
    EXPECT_EQ(rep.history[0].ended_us, 1'000u);
    EXPECT_EQ(rep.history[1].started_us, 3'000u);   // + 2ms backoff
    EXPECT_EQ(rep.history[2].started_us, 8'000u);   // + 4ms backoff
    // The terminal message carries the full per-attempt history.
    const std::string what = err.what();
    EXPECT_NE(what.find("attempt 0"), std::string::npos);
    EXPECT_NE(what.find("attempt 1"), std::string::npos);
  }
  EXPECT_TRUE(net.idle());
}

// ---------------------------------------------------------------------------
// Session health tracker.

TEST(ServerHealthTrackerTest, DemeritsRankAndRecover) {
  ServerHealthTracker health(3);
  RobustnessReport rep;
  rep.verdicts.assign(3, ServerReport{});
  rep.verdicts[1].fate = ServerFate::kUnavailable;
  rep.verdicts[2].fate = ServerFate::kCorrected;
  health.observe(rep);
  EXPECT_EQ(health.demerits(0), 0u);
  EXPECT_EQ(health.demerits(1), ServerHealthTracker::kUnavailableDemerit);
  EXPECT_EQ(health.demerits(2), ServerHealthTracker::kCorrectedDemerit);
  EXPECT_TRUE(health.demoted(2));  // a lie demotes immediately at threshold 8
  EXPECT_EQ(health.ranked_order(), (std::vector<std::size_t>{0, 1, 2}));

  // Clean rounds halve demerits: the flaky server works its way back.
  rep.verdicts.assign(3, ServerReport{});
  health.observe(rep);
  health.observe(rep);
  EXPECT_EQ(health.demerits(1), 1u);
  EXPECT_EQ(health.demerits(2), 2u);
  EXPECT_FALSE(health.demoted(2));
  EXPECT_EQ(health.queries_observed(), 3u);
}

TEST(ServerHealthTrackerTest, SpareVerdictsAreNeutral) {
  ServerHealthTracker health(2);
  RobustnessReport rep;
  rep.verdicts.assign(2, ServerReport{});
  rep.verdicts[1].fate = ServerFate::kSpare;
  health.observe(rep);
  EXPECT_EQ(health.demerits(1), 0u);
}

TEST(ServerHealthTrackerTest, LatencyQuantileTracksObservations) {
  ServerHealthTracker health(2);
  EXPECT_EQ(health.latency_quantile_us(0.95, 1234), 1234u);  // fallback
  RobustnessReport rep;
  rep.verdicts.assign(2, ServerReport{});
  for (std::uint64_t us = 1; us <= 100; ++us) {
    rep.verdicts[0].answer_us = us;
    rep.verdicts[1].answer_us = us;
    health.observe(rep);
  }
  const std::uint64_t q50 = health.latency_quantile_us(0.5, 0);
  const std::uint64_t q95 = health.latency_quantile_us(0.95, 0);
  EXPECT_GE(q50, 45u);
  EXPECT_LE(q50, 55u);
  EXPECT_GE(q95, 90u);
  EXPECT_LE(q95, 100u);
  EXPECT_THROW(health.latency_quantile_us(1.5, 0), spfe::InvalidArgument);
  RobustnessReport wrong;
  wrong.verdicts.assign(3, ServerReport{});
  EXPECT_THROW(health.observe(wrong), spfe::InvalidArgument);
}

}  // namespace
