#include <gtest/gtest.h>

#include <cstdint>

#include "bignum/bigint.h"
#include "bignum/modarith.h"
#include "bignum/primes.h"
#include "bignum/serialize.h"
#include "common/error.h"
#include "crypto/prg.h"

namespace spfe::bignum {
namespace {

TEST(BigInt, ConstructionAndToString) {
  EXPECT_EQ(BigInt().to_string(), "0");
  EXPECT_EQ(BigInt(42).to_string(), "42");
  EXPECT_EQ(BigInt(-42).to_string(), "-42");
  EXPECT_EQ(BigInt(std::int64_t{INT64_MIN}).to_string(), "-9223372036854775808");
  EXPECT_EQ(BigInt(~std::uint64_t(0)).to_string(), "18446744073709551615");
}

TEST(BigInt, FromStringRoundTrip) {
  const char* cases[] = {"0",
                         "1",
                         "-1",
                         "123456789",
                         "340282366920938463463374607431768211456",  // 2^128
                         "-99999999999999999999999999999999999999"};
  for (const char* s : cases) {
    EXPECT_EQ(BigInt::from_string(s).to_string(), s);
  }
}

TEST(BigInt, HexRoundTrip) {
  EXPECT_EQ(BigInt::from_hex("deadbeef").to_hex(), "deadbeef");
  EXPECT_EQ(BigInt::from_string("0xDEADBEEF").to_u64(), 0xdeadbeefu);
  EXPECT_EQ(BigInt().to_hex(), "0");
  const BigInt big = BigInt::from_hex("123456789abcdef0123456789abcdef0123456789");
  EXPECT_EQ(big.to_hex(), "123456789abcdef0123456789abcdef0123456789");
}

TEST(BigInt, FromStringRejectsGarbage) {
  EXPECT_THROW(BigInt::from_string(""), InvalidArgument);
  EXPECT_THROW(BigInt::from_string("12a4"), InvalidArgument);
  EXPECT_THROW(BigInt::from_string("-"), InvalidArgument);
}

TEST(BigInt, AdditionSubtraction) {
  const BigInt a = BigInt::from_string("123456789012345678901234567890");
  const BigInt b = BigInt::from_string("987654321098765432109876543210");
  EXPECT_EQ((a + b).to_string(), "1111111110111111111011111111100");
  EXPECT_EQ((b - a).to_string(), "864197532086419753208641975320");
  EXPECT_EQ((a - b).to_string(), "-864197532086419753208641975320");
  EXPECT_EQ((a - a).to_string(), "0");
  EXPECT_EQ((a + (-a)).to_string(), "0");
}

TEST(BigInt, MixedSignArithmetic) {
  const BigInt a(100), b(-30);
  EXPECT_EQ((a + b).to_u64(), 70u);
  EXPECT_EQ((b + a).to_u64(), 70u);
  EXPECT_EQ((a * b).to_string(), "-3000");
  EXPECT_EQ((b * b).to_string(), "900");
}

TEST(BigInt, MultiplicationKnownValue) {
  const BigInt a = BigInt::from_string("123456789012345678901234567890");
  EXPECT_EQ((a * a).to_string(),
            "15241578753238836750495351562536198787501905199875019052100");
}

TEST(BigInt, KaratsubaMatchesSchoolbook) {
  // Values above the Karatsuba threshold (32 limbs = 2048 bits).
  crypto::Prg prg("karatsuba");
  for (int trial = 0; trial < 10; ++trial) {
    const BigInt a = BigInt::random_bits(prg, 3000 + 64 * trial);
    const BigInt b = BigInt::random_bits(prg, 2500);
    const BigInt prod = a * b;
    // Cross-check via divmod: prod / a == b and prod % a == 0.
    EXPECT_EQ(prod / a, b);
    EXPECT_TRUE((prod % a).is_zero());
  }
}

TEST(BigInt, DivisionTruncatedSemantics) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).to_string(), "3");
  EXPECT_EQ((BigInt(-7) / BigInt(2)).to_string(), "-3");
  EXPECT_EQ((BigInt(7) / BigInt(-2)).to_string(), "-3");
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).to_string(), "3");
  EXPECT_EQ((BigInt(7) % BigInt(2)).to_string(), "1");
  EXPECT_EQ((BigInt(-7) % BigInt(2)).to_string(), "-1");
  EXPECT_EQ((BigInt(7) % BigInt(-2)).to_string(), "1");
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt(0), InvalidArgument);
  EXPECT_THROW(BigInt(1) % BigInt(0), InvalidArgument);
}

TEST(BigInt, DivModPropertyRandom) {
  crypto::Prg prg("divmod");
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t abits = 1 + prg.uniform(700);
    const std::size_t bbits = 1 + prg.uniform(400);
    const BigInt a = BigInt::random_bits(prg, abits);
    const BigInt b = BigInt::random_bits(prg, bbits);
    BigInt q, r;
    BigInt::divmod(a, b, q, r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.abs(), b.abs());
  }
}

TEST(BigInt, ModFloorAlwaysNonNegative) {
  const BigInt m(13);
  EXPECT_EQ(BigInt(-1).mod_floor(m).to_u64(), 12u);
  EXPECT_EQ(BigInt(-13).mod_floor(m).to_u64(), 0u);
  EXPECT_EQ(BigInt(27).mod_floor(m).to_u64(), 1u);
  EXPECT_THROW(BigInt(5).mod_floor(BigInt(-3)), InvalidArgument);
}

TEST(BigInt, Shifts) {
  const BigInt one(1);
  EXPECT_EQ((one << 200).to_hex(),
            "100000000000000000000000000000000000000000000000000");
  EXPECT_EQ(((one << 200) >> 200), one);
  EXPECT_EQ((BigInt(0xff) << 4).to_u64(), 0xff0u);
  EXPECT_EQ((BigInt(0xff0) >> 4).to_u64(), 0xffu);
  EXPECT_TRUE((BigInt(3) >> 10).is_zero());
}

TEST(BigInt, BitLengthAndBit) {
  EXPECT_EQ(BigInt().bit_length(), 0u);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ(BigInt(256).bit_length(), 9u);
  EXPECT_EQ((BigInt(1) << 1000).bit_length(), 1001u);
  const BigInt v(0b1011);
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.bit(64));
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_GT(BigInt(5), BigInt(3));
  EXPECT_EQ(BigInt(5), BigInt(5));
  EXPECT_LT(BigInt(5), BigInt::from_string("123456789123456789123456789"));
}

TEST(BigInt, BytesRoundTrip) {
  const BigInt v = BigInt::from_hex("0102030405060708090a0b0c0d0e0f");
  const Bytes be = v.to_bytes_be();
  EXPECT_EQ(be.size(), 15u);
  EXPECT_EQ(BigInt::from_bytes_be(be), v);
  EXPECT_TRUE(BigInt().to_bytes_be().empty());

  const Bytes padded = v.to_bytes_be_padded(20);
  EXPECT_EQ(padded.size(), 20u);
  EXPECT_EQ(BigInt::from_bytes_be(padded), v);
  EXPECT_THROW(v.to_bytes_be_padded(3), InvalidArgument);
}

TEST(BigInt, SerializeRoundTrip) {
  const BigInt cases[] = {BigInt(), BigInt(1), BigInt(-1),
                          BigInt::from_string("123456789012345678901234567890"),
                          -BigInt::from_string("99999999999999999999")};
  Writer w;
  for (const auto& v : cases) write_bigint(w, v);
  Reader r(w.data());
  for (const auto& v : cases) EXPECT_EQ(read_bigint(r), v);
  r.expect_done();
}

TEST(BigInt, RandomBelowInRange) {
  crypto::Prg prg("rb");
  const BigInt bound = BigInt::from_string("1000000000000000000000000");
  for (int i = 0; i < 100; ++i) {
    const BigInt v = BigInt::random_below(prg, bound);
    EXPECT_LT(v, bound);
    EXPECT_FALSE(v.is_negative());
  }
}

TEST(BigInt, RandomBitsExactWidth) {
  crypto::Prg prg("rbits");
  for (std::size_t bits : {1u, 2u, 63u, 64u, 65u, 129u, 1000u}) {
    EXPECT_EQ(BigInt::random_bits(prg, bits).bit_length(), bits);
  }
}

TEST(ModArith, GcdAndExtGcd) {
  EXPECT_EQ(gcd(BigInt(12), BigInt(18)).to_u64(), 6u);
  EXPECT_EQ(gcd(BigInt(0), BigInt(5)).to_u64(), 5u);
  EXPECT_EQ(gcd(BigInt(-12), BigInt(18)).to_u64(), 6u);

  const BigInt a(240), b(46);
  const auto e = ext_gcd(a, b);
  EXPECT_EQ(e.g.to_u64(), 2u);
  EXPECT_EQ(a * e.x + b * e.y, e.g);
}

TEST(ModArith, ModInverse) {
  const BigInt m(101);
  for (std::uint64_t a = 1; a < 101; ++a) {
    const BigInt inv = mod_inverse(BigInt(a), m);
    EXPECT_EQ(mod_mul(BigInt(a), inv, m).to_u64(), 1u);
  }
  EXPECT_THROW(mod_inverse(BigInt(6), BigInt(9)), CryptoError);
}

TEST(ModArith, ModPowSmall) {
  EXPECT_EQ(mod_pow(BigInt(2), BigInt(10), BigInt(1000)).to_u64(), 24u);
  EXPECT_EQ(mod_pow(BigInt(3), BigInt(0), BigInt(7)).to_u64(), 1u);
  EXPECT_EQ(mod_pow(BigInt(0), BigInt(5), BigInt(7)).to_u64(), 0u);
  // Fermat: a^(p-1) = 1 mod p.
  const BigInt p(1000003);
  for (std::uint64_t a : {2ull, 3ull, 999999ull}) {
    EXPECT_EQ(mod_pow(BigInt(a), p - BigInt(1), p).to_u64(), 1u);
  }
}

TEST(ModArith, ModPowEvenModulus) {
  EXPECT_EQ(mod_pow(BigInt(3), BigInt(4), BigInt(100)).to_u64(), 81u % 100);
  EXPECT_EQ(mod_pow(BigInt(7), BigInt(13), BigInt(64)).to_u64(), 39u);  // 7^13 mod 64
}

TEST(ModArith, MontgomeryMatchesPlainPow) {
  crypto::Prg prg("mont");
  for (int trial = 0; trial < 20; ++trial) {
    BigInt m = BigInt::random_bits(prg, 256);
    if (!m.is_odd()) m += BigInt(1);
    const MontgomeryContext ctx(m);
    const BigInt base = BigInt::random_below(prg, m);
    const BigInt exp = BigInt::random_bits(prg, 64);
    // Reference: naive square-and-multiply with divmod reduction.
    BigInt expect(1);
    for (std::size_t i = exp.bit_length(); i-- > 0;) {
      expect = mod_mul(expect, expect, m);
      if (exp.bit(i)) expect = mod_mul(expect, base, m);
    }
    EXPECT_EQ(ctx.pow(base, exp), expect);
  }
}

TEST(ModArith, MontgomeryRejectsEvenModulus) {
  EXPECT_THROW(MontgomeryContext(BigInt(100)), InvalidArgument);
  EXPECT_THROW(MontgomeryContext(BigInt(1)), InvalidArgument);
}

TEST(ModArith, Jacobi) {
  // (a/7): QRs mod 7 are {1, 2, 4}.
  EXPECT_EQ(jacobi(BigInt(1), BigInt(7)), 1);
  EXPECT_EQ(jacobi(BigInt(2), BigInt(7)), 1);
  EXPECT_EQ(jacobi(BigInt(3), BigInt(7)), -1);
  EXPECT_EQ(jacobi(BigInt(4), BigInt(7)), 1);
  EXPECT_EQ(jacobi(BigInt(5), BigInt(7)), -1);
  EXPECT_EQ(jacobi(BigInt(6), BigInt(7)), -1);
  EXPECT_EQ(jacobi(BigInt(7), BigInt(7)), 0);
  EXPECT_EQ(jacobi(BigInt(0), BigInt(9)), 0);
  EXPECT_THROW(jacobi(BigInt(3), BigInt(8)), InvalidArgument);
}

TEST(ModArith, JacobiMatchesEulerForPrimes) {
  crypto::Prg prg("jacobi");
  const BigInt p(10007);  // prime
  const BigInt exponent = (p - BigInt(1)) >> 1;
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::random_below(prg, p - BigInt(1)) + BigInt(1);
    const BigInt euler = mod_pow(a, exponent, p);
    const int expect = euler.is_one() ? 1 : -1;
    EXPECT_EQ(jacobi(a, p), expect);
  }
}

TEST(ModArith, CrtCombine) {
  // x = 2 mod 3, x = 3 mod 5 -> x = 8 mod 15.
  EXPECT_EQ(crt_combine(BigInt(2), BigInt(3), BigInt(3), BigInt(5)).to_u64(), 8u);
  crypto::Prg prg("crt");
  const BigInt m1(10007), m2(10009);
  for (int i = 0; i < 20; ++i) {
    const BigInt x = BigInt::random_below(prg, m1 * m2);
    EXPECT_EQ(crt_combine(x % m1, m1, x % m2, m2), x);
  }
}

TEST(Primes, SmallValues) {
  crypto::Prg prg("primes");
  EXPECT_FALSE(is_probable_prime(BigInt(0), prg));
  EXPECT_FALSE(is_probable_prime(BigInt(1), prg));
  EXPECT_TRUE(is_probable_prime(BigInt(2), prg));
  EXPECT_TRUE(is_probable_prime(BigInt(3), prg));
  EXPECT_FALSE(is_probable_prime(BigInt(4), prg));
  EXPECT_TRUE(is_probable_prime(BigInt(97), prg));
  EXPECT_FALSE(is_probable_prime(BigInt(91), prg));  // 7*13
  EXPECT_TRUE(is_probable_prime(BigInt(10007), prg));
}

TEST(Primes, KnownLargePrimeAndComposite) {
  crypto::Prg prg("primes2");
  // 2^127 - 1 is a Mersenne prime.
  const BigInt m127 = (BigInt(1) << 127) - BigInt(1);
  EXPECT_TRUE(is_probable_prime(m127, prg));
  // 2^128 + 1 is composite (= 59649589127497217 * ...).
  EXPECT_FALSE(is_probable_prime((BigInt(1) << 128) + BigInt(1), prg));
  // Carmichael number 561 must be rejected.
  EXPECT_FALSE(is_probable_prime(BigInt(561), prg));
}

TEST(Primes, RandomPrimeHasRequestedSize) {
  crypto::Prg prg("gen");
  for (std::size_t bits : {32u, 64u, 128u}) {
    const BigInt p = random_prime(prg, bits, 16);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(is_probable_prime(p, prg, 16));
  }
}

TEST(Primes, NextPrime) {
  crypto::Prg prg("np");
  EXPECT_EQ(next_prime(BigInt(90), prg).to_u64(), 97u);
  EXPECT_EQ(next_prime(BigInt(97), prg).to_u64(), 97u);
  EXPECT_EQ(next_prime(BigInt(0), prg).to_u64(), 2u);
}

TEST(Primes, SafePrime) {
  crypto::Prg prg("sp");
  const BigInt p = random_safe_prime(prg, 48, 16);
  EXPECT_EQ(p.bit_length(), 48u);
  EXPECT_TRUE(is_probable_prime(p, prg, 16));
  EXPECT_TRUE(is_probable_prime((p - BigInt(1)) >> 1, prg, 16));
}

// Aliasing and limb-boundary cases for the branchless cmp_mag/sub_mag
// rewrite: self-subtraction, borrows that ripple across whole limbs, and
// compares decided only by the most-significant limb.

TEST(BigIntBoundary, SelfSubtractionAliases) {
  const BigInt wide = (BigInt(1) << 320) - BigInt(7);
  BigInt a = wide;
  a -= a;  // rhs aliases lhs
  EXPECT_TRUE(a.is_zero());
  EXPECT_EQ(a.bit_length(), 0u);
  EXPECT_FALSE(a.is_negative());  // normalized zero is non-negative
  BigInt b = wide;
  EXPECT_TRUE((b - b).is_zero());
  BigInt neg = -wide;
  neg -= neg;
  EXPECT_TRUE(neg.is_zero());
  EXPECT_FALSE(neg.is_negative());
}

TEST(BigIntBoundary, BorrowRipplesAcrossLimbs) {
  // (2^256) - 1 borrows through four full limbs of zeros.
  const BigInt r = (BigInt(1) << 256) - BigInt(1);
  EXPECT_EQ(r.bit_length(), 256u);
  EXPECT_EQ(r.to_hex(), std::string(64, 'f'));
  // (2^192 + 2^64) - (2^64 + 1): borrow starts below a zero middle limb.
  const BigInt s = ((BigInt(1) << 192) + (BigInt(1) << 64)) - ((BigInt(1) << 64) + BigInt(1));
  EXPECT_EQ(s, (BigInt(1) << 192) - BigInt(1));
  // Subtracting 1 from an exact limb boundary drops the top limb entirely.
  const BigInt t = (BigInt(1) << 128) - BigInt(1);
  EXPECT_EQ(t.bit_length(), 128u);
  EXPECT_EQ(t + BigInt(1), BigInt(1) << 128);
}

TEST(BigIntBoundary, CompareEqualPrefixOperands) {
  // Magnitudes agree on every limb except the most significant one, so the
  // compare is decided only at the top — a prefix-equality early exit would
  // get every lower limb "for free".
  const BigInt low = (BigInt(1) << 64) - BigInt(1);
  const BigInt a = (BigInt(5) << 192) + low;
  const BigInt b = (BigInt(6) << 192) + low;
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LT(-b, -a);
  // Differ only in the LEAST significant limb: decided at the bottom.
  const BigInt c = (BigInt(9) << 192) + BigInt(1);
  const BigInt d = (BigInt(9) << 192) + BigInt(2);
  EXPECT_LT(c, d);
  // Exactly equal multi-limb magnitudes.
  EXPECT_EQ(a, (BigInt(5) << 192) + low);
  EXPECT_FALSE(a < (BigInt(5) << 192) + low);
  EXPECT_FALSE(a > (BigInt(5) << 192) + low);
  // Shorter-vs-longer magnitude with identical shared limbs.
  EXPECT_LT(low, a);
  EXPECT_GT(a, low);
}

TEST(BigIntBoundary, ZeroLimbNormalization) {
  // Subtraction whose result fits in fewer limbs must shed the zero top
  // limbs: bit_length, serialization, and compares all depend on it.
  const BigInt a = (BigInt(1) << 128) + BigInt(5);
  const BigInt b = BigInt(1) << 128;
  const BigInt diff = a - b;
  EXPECT_EQ(diff, BigInt(5));
  EXPECT_EQ(diff.bit_length(), 3u);
  EXPECT_EQ(diff.to_bytes_be().size(), 1u);
  EXPECT_EQ(diff.low_u64(), 5u);
  // Result exactly one limb shorter, top limb all ones.
  const BigInt e = ((BigInt(1) << 192) + ((BigInt(1) << 128) - BigInt(1))) - (BigInt(1) << 192);
  EXPECT_EQ(e.bit_length(), 128u);
  // Zero produced by cancelling large magnitudes serializes as empty.
  EXPECT_TRUE((a - a).to_bytes_be().empty());
  EXPECT_EQ((a - a), BigInt(0));
}

}  // namespace
}  // namespace spfe::bignum
