// Seeded fault-schedule fuzz sweep over the robust multi-server protocols
// (ctest label: fault-fuzz).
//
// For every (e, c) budget in {0,1,2}^2 the client is provisioned with
// k = d + 1 + 2e + c servers and run against many random `FaultPlan`s with
// <= e Byzantine and <= c unavailable servers: the result must equal the
// honest output exactly and the network must drain back to idle. Plans
// beyond the budget must yield either the exact honest output (when enough
// corruptions happen to be *detected*, which makes them cheap erasures) or a
// typed RobustProtocolError — never a wrong value, never a foreign
// exception, never a hang. A zero-fault plan must be byte-identical to the
// plain `run()` transcript.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "circuits/formula.h"
#include "crypto/prg.h"
#include "field/fp64.h"
#include "net/fault.h"
#include "net/robust.h"
#include "pir/itpir.h"
#include "spfe/multiserver.h"

namespace {

using spfe::Bytes;
using spfe::crypto::Prg;
using spfe::field::Fp64;
using namespace spfe::net;

// One protocol family at a fixed degree d; `run` builds a k-server instance
// and drives it robustly over `net`.
struct ProtocolCase {
  std::string name;
  std::size_t degree;
  std::function<RobustResult(std::size_t k, StarNetwork& net, Prg& prg)> run;
  std::uint64_t expected;
};

std::vector<std::uint64_t> test_database(std::size_t n, bool bits) {
  std::vector<std::uint64_t> db(n);
  for (std::size_t i = 0; i < n; ++i) db[i] = bits ? (i * 7 + 1) % 2 : i * i + 3;
  return db;
}

std::vector<ProtocolCase> protocol_cases() {
  const Fp64 field(Fp64::kMersenne61);
  std::vector<ProtocolCase> cases;

  {
    // Sum SPFE: n = 64 (l = 6), t = 1, d = l*t = 6.
    const auto db = test_database(64, /*bits=*/false);
    const std::vector<std::size_t> indices = {5, 41};
    const std::uint64_t expected = field.add(db[5], db[41]);
    cases.push_back({"sum-spfe", 6,
                     [field, db, indices](std::size_t k, StarNetwork& net, Prg& prg) {
                       const spfe::protocols::MultiServerSumSpfe proto(field, 64, 2, k, 1);
                       const auto seed = prg.fork_seed("spir");
                       return proto.run_robust(net, db, indices, seed, prg);
                     },
                     expected});
  }
  {
    // Formula SPFE: phi = x0 & x1, n = 16 (l = 4), t = 1, d = 2*l = 8.
    const auto db = test_database(16, /*bits=*/true);
    const std::vector<std::size_t> indices = {3, 8};
    const std::uint64_t expected = db[3] & db[8];
    cases.push_back({"formula-spfe", 8,
                     [field, db, indices](std::size_t k, StarNetwork& net, Prg& prg) {
                       const spfe::protocols::MultiServerFormulaSpfe proto(
                           field, spfe::circuits::Formula::parse("x0 & x1"), 16, k, 1);
                       const auto seed = prg.fork_seed("spir");
                       return proto.run_robust(net, db, indices, seed, prg);
                     },
                     expected});
  }
  {
    // Polynomial itPIR/SPIR: n = 64 (l = 6), t = 1, d = 6.
    const auto db = test_database(64, /*bits=*/false);
    const std::size_t index = 23;
    cases.push_back({"poly-itpir", 6,
                     [field, db, index](std::size_t k, StarNetwork& net, Prg& prg) {
                       const spfe::pir::PolyItPir proto(field, 64, k, 1);
                       const auto seed = prg.fork_seed("spir");
                       return proto.run_robust(net, db, index, seed, prg);
                     },
                     db[index]});
  }
  return cases;
}

class FaultFuzzTest : public ::testing::TestWithParam<const char*> {};

// Every plan within the provisioned e/c budget must decode to the exact
// honest value and leave the network drained.
TEST_P(FaultFuzzTest, WithinBudgetAlwaysExact) {
  Prg meta(std::string("within-") + GetParam());
  for (const ProtocolCase& pc : protocol_cases()) {
    for (std::size_t e = 0; e <= 2; ++e) {
      for (std::size_t c = 0; c <= 2; ++c) {
        const std::size_t k = pc.degree + 1 + 2 * e + c;
        for (std::size_t rep = 0; rep < 12; ++rep) {
          const std::string label = pc.name + "-" + std::to_string(e) + "-" + std::to_string(c) +
                                    "-" + std::to_string(rep);
          Prg plan_prg = meta.fork("plan-" + label);
          const FaultPlan plan = FaultPlan::random(plan_prg, k, e, c);
          FaultyStarNetwork net(k, plan);
          Prg proto_prg = meta.fork("proto-" + label);
          RobustResult res;
          try {
            res = pc.run(k, net, proto_prg);
          } catch (const spfe::Error& err) {
            FAIL() << label << ": within-budget plan failed: " << err.what();
          }
          EXPECT_EQ(res.value, pc.expected) << label;
          EXPECT_TRUE(res.report.success) << label;
          EXPECT_EQ(res.report.servers, k) << label;
          EXPECT_TRUE(net.idle()) << label;
        }
      }
    }
  }
}

// Plans beyond the budget: either the faults happened to be detectable
// enough to still decode (then the value must be the exact honest one), or
// the run ends in RobustProtocolError. Never a silently wrong value, never
// a non-spfe exception, never a hang.
TEST_P(FaultFuzzTest, BeyondBudgetNeverWrong) {
  Prg meta(std::string("beyond-") + GetParam());
  struct Overload {
    std::size_t prov_e, prov_c;  // provisioned budget
    std::size_t inj_b, inj_u;    // injected byzantine / unavailable servers
  };
  // Crash overloads are deterministic failures. Byzantine overloads are
  // chosen so that no erasure/silent-lie split leaves exactly d+1 survivors
  // with a liar among them: d+1 points are always consistent, so such a lie
  // is undetectable by ANY decoder (coding-theory bound, see DESIGN.md) —
  // it is excluded here by keeping inj_b + inj_u <= k - d - 1 while
  // 2*inj_b + inj_u still blows the unit budget.
  const std::vector<Overload> overloads = {
      {0, 0, 0, 1},  // crash with zero redundancy
      {0, 1, 0, 2},  // more crashes than provisioned
      {1, 0, 2, 0},  // more liars than provisioned
      {1, 1, 2, 1},  // both fault types, beyond the unit budget
  };
  for (const ProtocolCase& pc : protocol_cases()) {
    for (const Overload& ov : overloads) {
      const std::size_t k = pc.degree + 1 + 2 * ov.prov_e + ov.prov_c;
      for (std::size_t rep = 0; rep < 6; ++rep) {
        const std::string label = pc.name + "-ov" + std::to_string(ov.inj_b) +
                                  std::to_string(ov.inj_u) + "-" + std::to_string(rep);
        Prg plan_prg = meta.fork("plan-" + label);
        const FaultPlan plan = FaultPlan::random(plan_prg, k, ov.inj_b, ov.inj_u);
        FaultyStarNetwork net(k, plan);
        Prg proto_prg = meta.fork("proto-" + label);
        try {
          const RobustResult res = pc.run(k, net, proto_prg);
          EXPECT_EQ(res.value, pc.expected) << label << ": decoded a wrong value";
        } catch (const RobustProtocolError& err) {
          EXPECT_FALSE(err.report().success) << label;
          EXPECT_GE(err.report().attempts, 1u) << label;
          EXPECT_FALSE(err.report().failure_reason.empty()) << label;
        }
        // Anything else (foreign exception type) propagates and fails.
        EXPECT_TRUE(net.idle()) << label;
      }
    }
  }
}

// Handcrafted overwhelm: every server crashes before answering. The run
// must fail with a full diagnostic after exactly max_attempts tries.
TEST_P(FaultFuzzTest, TotalCrashGivesDiagnosticReport) {
  for (const ProtocolCase& pc : protocol_cases()) {
    const std::size_t k = pc.degree + 1 + 2 + 1;  // e = 1, c = 1
    FaultPlan plan;
    for (std::size_t s = 0; s < k; ++s) plan.crash_after(s, 1);  // die after the query
    FaultyStarNetwork net(k, plan);
    Prg prg(std::string("overwhelm-") + GetParam());
    try {
      pc.run(k, net, prg);
      FAIL() << pc.name << ": total crash must not decode";
    } catch (const RobustProtocolError& err) {
      const RobustnessReport& rep = err.report();
      EXPECT_FALSE(rep.success);
      EXPECT_EQ(rep.attempts, RobustConfig{}.max_attempts);
      EXPECT_EQ(rep.servers, k);
      EXPECT_EQ(rep.verdicts.size(), k);
      for (const ServerReport& v : rep.verdicts) {
        EXPECT_EQ(v.fate, ServerFate::kUnavailable) << pc.name;
      }
      EXPECT_NE(std::string(err.what()).find("unavailable"), std::string::npos);
    }
    EXPECT_TRUE(net.idle()) << pc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzzTest,
                         ::testing::Values("fuzz-seed-1", "fuzz-seed-2", "fuzz-seed-3"));

// ---------------------------------------------------------------------------
// Zero-fault transcript equivalence: run_robust over an empty FaultPlan must
// be byte-identical to the plain run() — same values, same metering, same
// per-channel message bytes in the same order.

template <typename Base>
class RecordingNet : public Base {
 public:
  template <typename... Args>
  explicit RecordingNet(Args&&... args) : Base(std::forward<Args>(args)...) {}

  void client_send(std::size_t s, Bytes message) override {
    log.emplace_back(s, message);
    Base::client_send(s, std::move(message));
  }
  void server_send(std::size_t s, Bytes message) override {
    log.emplace_back(this->num_servers() + s, message);
    Base::server_send(s, std::move(message));
  }

  std::vector<std::pair<std::size_t, Bytes>> log;
};

TEST(ZeroFaultTranscriptTest, RobustRunMatchesPlainRunByteForByte) {
  const Fp64 field(Fp64::kMersenne61);
  const auto db = test_database(64, /*bits=*/false);
  const std::vector<std::size_t> indices = {5, 41};
  const spfe::protocols::MultiServerSumSpfe proto(field, 64, 2, /*num_servers=*/7, 1);

  RecordingNet<StarNetwork> plain_net(proto.num_servers());
  Prg plain_prg("zero-fault-transcript");
  const auto plain_seed = plain_prg.fork_seed("spir");
  const std::uint64_t plain_value = proto.run(plain_net, db, indices, plain_seed, plain_prg);

  RecordingNet<FaultyStarNetwork> robust_net(proto.num_servers(), FaultPlan{});
  Prg robust_prg("zero-fault-transcript");
  const auto robust_seed = robust_prg.fork_seed("spir");
  const RobustResult res = proto.run_robust(robust_net, db, indices, robust_seed, robust_prg);

  EXPECT_EQ(res.value, plain_value);
  EXPECT_TRUE(res.report.success);
  EXPECT_EQ(res.report.attempts, 1u);
  EXPECT_EQ(res.report.erasures, 0u);
  EXPECT_EQ(res.report.errors_corrected, 0u);

  // Metering identical.
  EXPECT_EQ(plain_net.stats().client_to_server_bytes, robust_net.stats().client_to_server_bytes);
  EXPECT_EQ(plain_net.stats().server_to_client_bytes, robust_net.stats().server_to_client_bytes);
  EXPECT_EQ(plain_net.stats().client_to_server_messages,
            robust_net.stats().client_to_server_messages);
  EXPECT_EQ(plain_net.stats().server_to_client_messages,
            robust_net.stats().server_to_client_messages);
  EXPECT_EQ(plain_net.stats().half_rounds, robust_net.stats().half_rounds);

  // Transcript identical, message by message.
  EXPECT_EQ(plain_net.log, robust_net.log);
}

TEST(ZeroFaultTranscriptTest, ItPirRobustRunMatchesPlainRun) {
  const Fp64 field(Fp64::kMersenne61);
  const auto db = test_database(64, /*bits=*/false);
  const spfe::pir::PolyItPir proto(field, 64, 7, 1);

  RecordingNet<StarNetwork> plain_net(7);
  Prg plain_prg("itpir-zero-fault");
  const auto plain_seed = plain_prg.fork_seed("spir");
  const std::uint64_t plain_value = proto.run(plain_net, db, 23, plain_seed, plain_prg);
  EXPECT_EQ(plain_value, db[23]);

  RecordingNet<FaultyStarNetwork> robust_net(7, FaultPlan{});
  Prg robust_prg("itpir-zero-fault");
  const auto robust_seed = robust_prg.fork_seed("spir");
  const RobustResult res = proto.run_robust(robust_net, db, 23, robust_seed, robust_prg);

  EXPECT_EQ(res.value, plain_value);
  EXPECT_EQ(plain_net.log, robust_net.log);
  EXPECT_EQ(plain_net.stats().half_rounds, robust_net.stats().half_rounds);
  EXPECT_EQ(plain_net.stats().total_bytes(), robust_net.stats().total_bytes());
}

}  // namespace
