// Dudect-style timing-distinguisher smoke checks for the constant-time
// kernels (the dynamic layer of the secret-taint discipline; see DESIGN.md
// "Constant-time policy" and tools/ct-lint for the static layer).
//
// Method (Reparaz–Balasch–Verbauwhede, "dude, is my code constant time?"):
// time the operation under two input classes — a FIXED secret and a fresh
// RANDOM secret per sample — with the class order randomly interleaved and
// all input generation kept OUTSIDE the timed section, crop the upper tail
// of each class (scheduler noise), and compare the class means with
// Welch's t-test. A constant-time kernel gives |t| far below any honest
// threshold; a secret-dependent early exit or zero-limb skip gives |t| in
// the tens to hundreds.
//
// These are SMOKE checks, not a precision leak oracle: the threshold is
// deliberately generous so shared CI runners don't flake, and a pass is
// evidence of "no gross leak", nothing stronger. The harness validates its
// own sensitivity with a deliberately leaky early-exit comparison that
// must be flagged.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/modarith.h"
#include "common/secret.h"
#include "crypto/prg.h"
#include "he/paillier.h"
#include "he/precomp.h"

namespace spfe {
namespace {

using bignum::BigInt;

// Generous smoke threshold: dudect flags leaks at |t| > 4.5 on quiet
// hardware; we only claim to catch gross leaks (zero-limb skips, early
// exits), which show up far above this.
constexpr double kSmokeThreshold = 30.0;
// The sensitivity control must clear the classic dudect detection bar.
constexpr double kControlThreshold = 4.5;

constexpr std::size_t kSamplesPerClass = 300;

struct WelchResult {
  double t;
  double mean_fixed;
  double mean_random;
};

// Crops the slowest 15% of each class (interrupt/scheduler tail), then
// computes Welch's unequal-variance t statistic between the class means.
WelchResult welch_t(std::vector<double> fixed, std::vector<double> random) {
  auto crop = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    v.resize(std::max<std::size_t>(2, (v.size() * 85) / 100));
  };
  crop(fixed);
  crop(random);
  auto mean_var = [](const std::vector<double>& v, double& mean, double& var) {
    mean = 0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    var = 0;
    for (double x : v) var += (x - mean) * (x - mean);
    var /= static_cast<double>(v.size() - 1);
  };
  double m0, v0, m1, v1;
  mean_var(fixed, m0, v0);
  mean_var(random, m1, v1);
  const double denom = std::sqrt(v0 / static_cast<double>(fixed.size()) +
                                 v1 / static_cast<double>(random.size()));
  const double t = denom > 0 ? (m0 - m1) / denom : 0.0;
  return {t, m0, m1};
}

// Runs the two-class experiment. `prepare(cls)` stages one sample's input
// for class `cls` (0 = fixed secret, 1 = fresh random secret) and is NOT
// timed; `run()` executes one batch of the operation on the staged input
// and returns a checksum so the work cannot be optimized away. Classes are
// interleaved in PRG-random order so environmental drift hits both
// equally.
WelchResult run_experiment(crypto::Prg& prg, const std::function<void(int)>& prepare,
                           const std::function<std::uint64_t()>& run) {
  std::vector<double> fixed, random;
  fixed.reserve(kSamplesPerClass);
  random.reserve(kSamplesPerClass);
  volatile std::uint64_t sink = 0;
  // Warm-up: touch both paths before measuring.
  prepare(0);
  sink = sink + run();
  prepare(1);
  sink = sink + run();
  while (fixed.size() < kSamplesPerClass || random.size() < kSamplesPerClass) {
    int cls = static_cast<int>(prg.u64() & 1);
    if (fixed.size() >= kSamplesPerClass) cls = 1;
    if (random.size() >= kSamplesPerClass) cls = 0;
    prepare(cls);
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t c = run();
    const auto t1 = std::chrono::steady_clock::now();
    sink = sink + c;
    const double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    (cls == 0 ? fixed : random).push_back(ns);
  }
  (void)sink;
  return welch_t(std::move(fixed), std::move(random));
}

BigInt random_bigint_below(crypto::Prg& prg, const BigInt& bound) {
  const std::size_t bytes = (bound.bit_length() + 7) / 8;
  std::vector<std::uint8_t> buf(bytes);
  prg.fill(buf.data(), buf.size());
  return BigInt::from_bytes_be({buf.data(), buf.size()}).mod_floor(bound);
}

// 256-bit odd modulus shared by the Montgomery experiments.
BigInt make_modulus(crypto::Prg& prg) {
  std::vector<std::uint8_t> buf(32);
  prg.fill(buf.data(), buf.size());
  buf[0] |= 0x80;   // full width
  buf[31] |= 0x01;  // odd
  return BigInt::from_bytes_be({buf.data(), buf.size()});
}

// k-limb operand with the given value in the low limb: the input class a
// zero-limb-skipping multiplier would race through.
std::vector<std::uint64_t> sparse_operand(std::size_t k, std::uint64_t low) {
  std::vector<std::uint64_t> v(k, 0);
  v[0] = low;
  return v;
}

std::vector<std::uint64_t> dense_operand(crypto::Prg& prg, const BigInt& n, std::size_t k) {
  std::vector<std::uint64_t> v = random_bigint_below(prg, n).limbs();
  v.resize(k, 0);
  return v;
}

TEST(CtHarness, MontMulFixedVsRandom) {
  crypto::Prg prg("ct-harness-mont-mul");
  const BigInt n = make_modulus(prg);
  const bignum::MontgomeryContext ctx(n);
  const std::size_t k = n.limbs().size();
  constexpr int kReps = 64;
  std::vector<std::uint64_t> a;
  const auto result = run_experiment(
      prg,
      [&](int cls) { a = cls == 0 ? sparse_operand(k, 3) : dense_operand(prg, n, k); },
      [&] {
        std::uint64_t acc = 0;
        for (int r = 0; r < kReps; ++r) {
          const std::vector<std::uint64_t> out = ctx.mont_mul(a, a);
          acc ^= out[0];
        }
        return acc;
      });
  EXPECT_LT(std::abs(result.t), kSmokeThreshold)
      << "mont_mul timing distinguishes sparse vs random operands: t=" << result.t
      << " fixed=" << result.mean_fixed << "ns random=" << result.mean_random << "ns";
}

TEST(CtHarness, MontSqrFixedVsRandom) {
  crypto::Prg prg("ct-harness-mont-sqr");
  const BigInt n = make_modulus(prg);
  const bignum::MontgomeryContext ctx(n);
  const std::size_t k = n.limbs().size();
  constexpr int kReps = 64;
  std::vector<std::uint64_t> a;
  const auto result = run_experiment(
      prg,
      [&](int cls) { a = cls == 0 ? sparse_operand(k, 2) : dense_operand(prg, n, k); },
      [&] {
        std::uint64_t acc = 0;
        for (int r = 0; r < kReps; ++r) {
          const std::vector<std::uint64_t> out = ctx.mont_sqr(a);
          acc ^= out[0];
        }
        return acc;
      });
  EXPECT_LT(std::abs(result.t), kSmokeThreshold)
      << "mont_sqr timing distinguishes sparse vs random operands: t=" << result.t
      << " fixed=" << result.mean_fixed << "ns random=" << result.mean_random << "ns";
}

TEST(CtHarness, CtEqBytesEqualVsRandom) {
  crypto::Prg prg("ct-harness-ct-eq");
  constexpr std::size_t kLen = 64;
  std::vector<std::uint8_t> ref(kLen);
  prg.fill(ref.data(), ref.size());
  constexpr int kReps = 512;
  std::vector<std::uint8_t> probe;
  const auto result = run_experiment(
      prg,
      [&](int cls) {
        // Fixed class: equal buffers (an early-exit memcmp would scan to
        // the end). Random class: differs in byte 0 with prob. 255/256.
        probe = ref;
        if (cls == 1) prg.fill(probe.data(), probe.size());
      },
      [&] {
        std::uint64_t acc = 0;
        for (int r = 0; r < kReps; ++r) {
          acc ^= common::ct_eq_bytes(ref.data(), probe.data(), kLen);
        }
        return acc;
      });
  EXPECT_LT(std::abs(result.t), kSmokeThreshold)
      << "ct_eq_bytes timing distinguishes equal vs random buffers: t=" << result.t
      << " fixed=" << result.mean_fixed << "ns random=" << result.mean_random << "ns";
}

TEST(CtHarness, PaillierCrtDecryptFixedVsRandom) {
  crypto::Prg prg("ct-harness-paillier");
  const he::PaillierPrivateKey sk = he::paillier_keygen(prg, 256);
  const he::PaillierPublicKey& pk = sk.public_key();
  const BigInt fixed_ct = pk.encrypt(BigInt(0), prg);
  constexpr int kReps = 4;
  BigInt c;
  const auto result = run_experiment(
      prg,
      [&](int cls) {
        c = cls == 0 ? fixed_ct : pk.encrypt(random_bigint_below(prg, pk.n()), prg);
      },
      [&] {
        std::uint64_t acc = 0;
        for (int r = 0; r < kReps; ++r) acc ^= sk.decrypt(c).low_u64();
        return acc;
      });
  EXPECT_LT(std::abs(result.t), kSmokeThreshold)
      << "CRT decrypt timing distinguishes fixed vs random ciphertexts: t=" << result.t
      << " fixed=" << result.mean_fixed << "ns random=" << result.mean_random << "ns";
}

// The comb-table exponentiation behind the offline/online split: every
// window does a masked full-table scan plus an unconditional mont_mul, so
// a fixed exponent and a fresh random one of the same (policy-public) bit
// length must be indistinguishable. A zero-digit skip or an unmasked
// table index would separate the classes here.
TEST(CtHarness, FixedBaseTablePowFixedVsRandom) {
  crypto::Prg prg("ct-harness-fb-pow");
  const BigInt n = make_modulus(prg);
  constexpr std::size_t kExpBits = 256;
  const he::CtFixedBaseTable table(n, BigInt(5), kExpBits);
  // Both classes use full-width exponents: the bit length is public by
  // policy, so the experiment must not vary it between classes.
  const auto full_width_exp = [&] {
    std::vector<std::uint8_t> buf(kExpBits / 8);
    prg.fill(buf.data(), buf.size());
    buf[0] |= 0x80;
    return BigInt::from_bytes_be({buf.data(), buf.size()});
  };
  const BigInt fixed_exp = full_width_exp();
  constexpr int kReps = 4;
  BigInt e;
  const auto result = run_experiment(
      prg, [&](int cls) { e = cls == 0 ? fixed_exp : full_width_exp(); },
      [&] {
        std::uint64_t acc = 0;
        for (int r = 0; r < kReps; ++r) acc ^= table.pow(e).low_u64();
        return acc;
      });
  EXPECT_LT(std::abs(result.t), kSmokeThreshold)
      << "CtFixedBaseTable::pow timing distinguishes fixed vs random exponents: t=" << result.t
      << " fixed=" << result.mean_fixed << "ns random=" << result.mean_random << "ns";
}

// Sensitivity control: a deliberately leaky early-exit comparison must be
// detected, or the harness itself is vacuous. Equal buffers scan all 4 KiB;
// random buffers exit on byte 0 almost surely — the gap dwarfs any noise.
TEST(CtHarness, DetectsDeliberateEarlyExitLeak) {
  crypto::Prg prg("ct-harness-control");
  constexpr std::size_t kLen = 4096;
  std::vector<std::uint8_t> ref(kLen);
  prg.fill(ref.data(), ref.size());
  constexpr int kReps = 64;
  std::vector<std::uint8_t> probe;
  const auto result = run_experiment(
      prg,
      [&](int cls) {
        probe = ref;
        if (cls == 1) prg.fill(probe.data(), probe.size());
      },
      [&] {
        std::uint64_t acc = 0;
        for (int r = 0; r < kReps; ++r) {
          // Intentional early exit (the anti-pattern ct_eq_bytes replaces).
          std::size_t i = 0;
          while (i < kLen && ref[i] == probe[i]) ++i;
          acc += i + (probe[i % kLen] ^= 1);
        }
        return acc;
      });
  EXPECT_GT(std::abs(result.t), kControlThreshold)
      << "harness failed to detect a deliberate early-exit leak: t=" << result.t
      << " fixed=" << result.mean_fixed << "ns random=" << result.mean_random << "ns";
}

}  // namespace
}  // namespace spfe
