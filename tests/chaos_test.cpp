// Chaos sweep over the virtual-time robust stack (ctest label: chaos).
//
// Thousands of seeded schedules — per-server latency profiles with jitter
// and stragglers, link outages, Byzantine/crash fault plans, hedged and
// unhedged timing policies — are replayed over the timed robust sum SPFE.
// Invariants, schedule by schedule:
//   * the run either decodes the exact honest value or throws the typed
//     RobustProtocolError — never a wrong value, never a hang;
//   * the network drains back to idle either way;
//   * the same schedule label replays to a byte-identical transcript (and
//     report) at every SPFE_THREADS setting;
//   * with timing disabled, a zero-latency SimStarNetwork is byte-identical
//     to the PR 4 FaultyStarNetwork robust path, and a slack timed run is
//     byte-identical to the untimed transcript;
//   * hedging beats head-of-line-blocking stragglers by >= 2x in virtual
//     completion time (the bench_robust exit-code gate, asserted here on a
//     deterministic schedule);
//   * a RobustStatsSession stays exact under the same weather while its
//     health tracker demotes the chronic straggler to hedge-spare duty.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "crypto/prg.h"
#include "field/fp64.h"
#include "net/adversary.h"
#include "net/fault.h"
#include "net/robust.h"
#include "net/sim.h"
#include "obs/obs.h"
#include "spfe/multiserver.h"
#include "spfe/stats.h"

namespace {

using spfe::Bytes;
using spfe::common::ThreadPool;
using spfe::crypto::Prg;
using spfe::field::Fp64;
using namespace spfe::net;
namespace obs = spfe::obs;

std::vector<std::uint64_t> test_database(std::size_t n) {
  std::vector<std::uint64_t> db(n);
  for (std::size_t i = 0; i < n; ++i) db[i] = i * i + 3;
  return db;
}

// Send-transcript recorder (same channel numbering as fault_fuzz_test).
template <typename Base>
class RecordingNet : public Base {
 public:
  template <typename... Args>
  explicit RecordingNet(Args&&... args) : Base(std::forward<Args>(args)...) {}

  void client_send(std::size_t s, Bytes message) override {
    log.emplace_back(s, message);
    Base::client_send(s, std::move(message));
  }
  void server_send(std::size_t s, Bytes message) override {
    log.emplace_back(this->num_servers() + s, message);
    Base::server_send(s, std::move(message));
  }

  std::vector<std::pair<std::size_t, Bytes>> log;
};

struct Outcome {
  bool ok = false;
  std::uint64_t value = 0;
  std::string summary;
  std::vector<std::pair<std::size_t, Bytes>> log;
  CommStats stats;
};

// One complete timed robust run under the schedule derived from `label`:
// the label seeds the fault budget, the latency profiles, the outages, the
// fault plan, the timing policy, and the protocol randomness, so a label IS
// a schedule.
Outcome run_schedule(const std::string& label) {
  const Fp64 field(Fp64::kMersenne61);
  const auto db = test_database(64);
  const std::vector<std::size_t> indices = {5, 41};

  Prg meta(label);
  const std::size_t e = meta.uniform(2);
  const std::size_t c = meta.uniform(2);
  const std::size_t spares = meta.uniform(3);
  const std::size_t k = provisioned_servers(6, e, c, spares);

  SimConfig cfg;
  cfg.seed = meta.fork_seed("latency");
  cfg.profiles.resize(k);
  for (auto& p : cfg.profiles) {
    p.base_us = 50 + meta.uniform(200);
    p.jitter_us = meta.uniform(150);
    p.straggle_permille = meta.uniform(200);
    p.straggle_factor = 5 + meta.uniform(30);
  }
  cfg.outages.resize(k);
  for (auto& windows : cfg.outages) {
    if (meta.uniform(4) == 0) {
      const std::uint64_t begin = meta.uniform(500);
      windows.push_back({begin, begin + 1 + meta.uniform(1000)});
    }
  }
  Prg plan_prg = meta.fork("plan");
  const FaultPlan plan = FaultPlan::random(plan_prg, k, e, c);

  RobustConfig rc;
  rc.max_attempts = 3;
  rc.timing.enabled = true;
  rc.timing.attempt_timeout_us = 30'000;
  rc.timing.byzantine_budget = e;  // trust no decode a lie could survive
  rc.timing.hedge_spares = spares;
  rc.timing.hedge_timeout_us = spares == 0 ? 0 : 300 + meta.uniform(700);
  rc.timing.backoff_seed = meta.fork_seed("backoff");

  // Adaptive adversary riding the same fault budget: content-aware lying
  // strategies may only drive servers the plan already charges as byzantine
  // (a forged answer costs the same two points as a wire-corrupted one);
  // silent/slow strategies may additionally drive the unavailable set (a
  // strategic drop or straggle is never worse than the crash already
  // budgeted for that server). Schedules with no faulty servers run clean.
  const auto adv_kind = static_cast<StrategyKind>(meta.uniform(kNumStrategyKinds));
  std::vector<std::size_t> adv_pool = plan.byzantine_servers();
  if (!strategy_lies(adv_kind)) {
    adv_pool.insert(adv_pool.end(), plan.unavailable_servers().begin(),
                    plan.unavailable_servers().end());
  }
  Prg strat_prg = meta.fork("strategy");
  std::optional<AdversaryEngine> engine;
  if (!adv_pool.empty()) {
    engine.emplace(make_strategy(adv_kind, field.modulus(), strat_prg), adv_pool);
  }

  const spfe::protocols::MultiServerSumSpfe proto(field, 64, 2, k, 1);
  RecordingNet<SimStarNetwork> net(k, cfg, plan);
  if (engine.has_value()) net.set_adversary(&*engine);
  Prg proto_prg = meta.fork("proto");
  const auto seed = proto_prg.fork_seed("spir");

  Outcome out;
  try {
    const RobustResult res = proto.run_robust(net, db, indices, seed, proto_prg, rc);
    out.ok = true;
    out.value = res.value;
    out.summary = res.report.summary();
    EXPECT_TRUE(res.report.success) << label;
  } catch (const RobustProtocolError& err) {
    out.summary = err.report().summary();
    EXPECT_FALSE(err.report().success) << label;
    EXPECT_FALSE(err.report().failure_reason.empty()) << label;
  }
  EXPECT_TRUE(net.idle()) << label;
  out.log = std::move(net.log);
  out.stats = net.stats();
  return out;
}

// ---------------------------------------------------------------------------

TEST(ChaosSweepTest, ThousandsOfSchedulesNeverWrongNeverHang) {
  const Fp64 field(Fp64::kMersenne61);
  const auto db = test_database(64);
  const std::uint64_t expected = field.add(db[5], db[41]);
  constexpr std::size_t kSchedules = 2000;
  std::size_t successes = 0;
  for (std::size_t i = 0; i < kSchedules; ++i) {
    const std::string label = "chaos-" + std::to_string(i);
    const Outcome out = run_schedule(label);
    if (out.ok) {
      EXPECT_EQ(out.value, expected) << label << "\n" << out.summary;
      ++successes;
    }
  }
  // Deterministic count: most schedules stay inside the provisioned fault
  // budget and must decode despite the weather.
  EXPECT_GT(successes, kSchedules / 2)
      << "only " << successes << " of " << kSchedules << " schedules decoded";
}

// Same label => byte-identical transcript, stats, and report at any thread
// count: all schedule randomness is keyed, never sequenced through shared
// state, and spans/counters live off the transcript path.
TEST(ChaosSweepTest, TranscriptsAreThreadCountInvariant) {
  for (const char* label : {"chaos-7", "chaos-41", "chaos-113", "chaos-999"}) {
    ThreadPool::set_global_threads(1);
    const Outcome base = run_schedule(label);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      ThreadPool::set_global_threads(threads);
      const Outcome other = run_schedule(label);
      EXPECT_EQ(base.ok, other.ok) << label << " threads=" << threads;
      EXPECT_EQ(base.value, other.value) << label << " threads=" << threads;
      EXPECT_EQ(base.summary, other.summary) << label << " threads=" << threads;
      EXPECT_EQ(base.log, other.log) << label << " threads=" << threads;
      EXPECT_EQ(base.stats.client_to_server_bytes, other.stats.client_to_server_bytes);
      EXPECT_EQ(base.stats.server_to_client_bytes, other.stats.server_to_client_bytes);
      EXPECT_EQ(base.stats.half_rounds, other.stats.half_rounds);
    }
  }
  ThreadPool::set_global_threads(0);  // back to the SPFE_THREADS default
}

// ---------------------------------------------------------------------------
// Parity with the PR 4 untimed robust path.

// Timing disabled: a zero-latency SimStarNetwork must be byte-identical to
// the FaultyStarNetwork under the same fault plan. Plans are byzantine-only:
// corruption, truncation, and duplication have identical semantics on both
// networks, while kDelayHalfRound deliberately differs (one-attempt mark vs
// a concrete latency penalty).
TEST(ChaosParityTest, UntimedSimMatchesFaultyNetworkByteForByte) {
  const Fp64 field(Fp64::kMersenne61);
  const auto db = test_database(64);
  const std::vector<std::size_t> indices = {5, 41};
  const std::size_t k = provisioned_servers(6, 1, 0);
  const spfe::protocols::MultiServerSumSpfe proto(field, 64, 2, k, 1);

  for (std::size_t rep = 0; rep < 8; ++rep) {
    const std::string label = "parity-" + std::to_string(rep);
    Prg plan_prg_a(label);
    Prg plan_prg_b(label);
    const FaultPlan plan_a = FaultPlan::random(plan_prg_a, k, 1, 0);
    const FaultPlan plan_b = FaultPlan::random(plan_prg_b, k, 1, 0);

    RecordingNet<FaultyStarNetwork> faulty(k, plan_a);
    Prg prg_a("proto-" + label);
    const auto seed_a = prg_a.fork_seed("spir");
    const RobustResult res_a = proto.run_robust(faulty, db, indices, seed_a, prg_a);

    RecordingNet<SimStarNetwork> sim(k, SimConfig{}, plan_b);
    Prg prg_b("proto-" + label);
    const auto seed_b = prg_b.fork_seed("spir");
    const RobustResult res_b = proto.run_robust(sim, db, indices, seed_b, prg_b);

    EXPECT_EQ(res_a.value, res_b.value) << label;
    EXPECT_EQ(res_a.report.summary(), res_b.report.summary()) << label;
    EXPECT_EQ(faulty.log, sim.log) << label;
    EXPECT_EQ(faulty.stats().client_to_server_bytes, sim.stats().client_to_server_bytes);
    EXPECT_EQ(faulty.stats().server_to_client_bytes, sim.stats().server_to_client_bytes);
    EXPECT_EQ(faulty.stats().client_to_server_messages, sim.stats().client_to_server_messages);
    EXPECT_EQ(faulty.stats().server_to_client_messages, sim.stats().server_to_client_messages);
    EXPECT_EQ(faulty.stats().half_rounds, sim.stats().half_rounds);
    EXPECT_EQ(sim.clock().now_us(), 0u) << label;  // zero latency: time stands still
    EXPECT_TRUE(faulty.idle());
    EXPECT_TRUE(sim.idle());
  }
}

// Timing enabled but slack (no faults, zero latency, hedging off, generous
// deadline): the timed driver must reproduce the untimed transcript exactly.
TEST(ChaosParityTest, SlackTimedPathMatchesUntimedTranscript) {
  const Fp64 field(Fp64::kMersenne61);
  const auto db = test_database(64);
  const std::vector<std::size_t> indices = {5, 41};
  const std::size_t k = provisioned_servers(6, 1, 1);
  const spfe::protocols::MultiServerSumSpfe proto(field, 64, 2, k, 1);

  RecordingNet<FaultyStarNetwork> untimed(k, FaultPlan{});
  Prg prg_a("slack-timed");
  const auto seed_a = prg_a.fork_seed("spir");
  const RobustResult res_a = proto.run_robust(untimed, db, indices, seed_a, prg_a);

  RecordingNet<SimStarNetwork> timed(k, SimConfig{});
  RobustConfig rc;
  rc.timing.enabled = true;
  rc.timing.attempt_timeout_us = 1'000'000;
  Prg prg_b("slack-timed");
  const auto seed_b = prg_b.fork_seed("spir");
  const RobustResult res_b = proto.run_robust(timed, db, indices, seed_b, prg_b, rc);

  EXPECT_EQ(res_a.value, res_b.value);
  EXPECT_EQ(res_a.report.summary(), res_b.report.summary());
  EXPECT_EQ(untimed.log, timed.log);
  EXPECT_EQ(untimed.stats().half_rounds, timed.stats().half_rounds);
  EXPECT_EQ(untimed.stats().total_bytes(), timed.stats().total_bytes());
}

// ---------------------------------------------------------------------------
// Hedging vs head-of-line blocking (the bench_robust gate, deterministic).

TEST(ChaosHedgeTest, HedgingBeatsStragglersByTwoX) {
  const Fp64 field(Fp64::kMersenne61);
  const auto db = test_database(64);
  const std::vector<std::size_t> indices = {5, 41};
  const std::size_t spares = 2;
  const std::size_t k = provisioned_servers(6, 0, 0, spares);
  const spfe::protocols::MultiServerSumSpfe proto(field, 64, 2, k, 1);

  // Two chronic stragglers among the primaries; everyone else is fast.
  SimConfig cfg;
  cfg.seed = Prg("hedge-gate").fork_seed("latency");
  cfg.profiles.assign(k, ServerProfile{100, 0, 0, 20});
  for (const std::size_t s : {std::size_t{1}, std::size_t{4}}) {
    cfg.profiles[s].straggle_permille = 1000;
    cfg.profiles[s].straggle_factor = 500;  // 50ms per hop
  }

  const auto run_once = [&](std::uint64_t hedge_timeout_us) {
    SimStarNetwork net(k, cfg);
    RobustConfig rc;
    rc.timing.enabled = true;
    rc.timing.attempt_timeout_us = 300'000;
    rc.timing.hedge_timeout_us = hedge_timeout_us;
    rc.timing.hedge_spares = hedge_timeout_us == 0 ? 0 : spares;
    Prg prg("hedge-gate-run");
    const auto seed = prg.fork_seed("spir");
    const RobustResult res = proto.run_robust(net, db, indices, seed, prg, rc);
    EXPECT_EQ(res.value, field.add(db[5], db[41]));
    EXPECT_TRUE(net.idle());
    return res.report;
  };

  obs::Tracer::global().set_enabled(true);
  obs::Tracer::global().reset();
  const RobustnessReport unhedged = run_once(0);
  const obs::OpCounts after_unhedged = obs::Tracer::global().totals();
  const RobustnessReport hedged = run_once(500);
  const obs::OpCounts after_hedged = obs::Tracer::global().totals();
  obs::Tracer::global().set_enabled(false);

  // Unhedged: the client has no spares, so it waits out both stragglers.
  EXPECT_GE(unhedged.completion_us, 100'000u);
  EXPECT_EQ(unhedged.erasures, 0u);
  // Hedged: spares answer within ~2 hedge windows.
  EXPECT_EQ(hedged.erasures, 2u);
  EXPECT_EQ(hedged.verdicts[1].fate, ServerFate::kUnavailable);
  EXPECT_EQ(hedged.verdicts[4].fate, ServerFate::kUnavailable);
  // The gate bench_robust enforces by exit code, here exactly:
  EXPECT_LE(hedged.completion_us * 2, unhedged.completion_us)
      << "hedged " << hedged.completion_us << "us vs unhedged " << unhedged.completion_us
      << "us";

  const auto delta = [&](obs::Op op) {
    const std::size_t i = static_cast<std::size_t>(op);
    return after_hedged[i] - after_unhedged[i];
  };
  EXPECT_EQ(delta(obs::Op::kHedgeSent), 2u);
  EXPECT_EQ(delta(obs::Op::kHedgeWon), 2u);
  EXPECT_GE(delta(obs::Op::kDeadlineMiss), 2u);  // the stragglers' hedge misses
  EXPECT_EQ(after_unhedged[static_cast<std::size_t>(obs::Op::kHedgeSent)], 0u);
}

// ---------------------------------------------------------------------------
// Session-level workload: exactness under weather + health-driven demotion.

TEST(ChaosStatsSessionTest, MeanVarianceStaysExactAndStragglerIsDemoted) {
  const Fp64 field(Fp64::kMersenne61);
  std::vector<std::uint64_t> db(64);
  for (std::size_t i = 0; i < db.size(); ++i) db[i] = i + 1;  // p > m * max(x)^2
  const std::size_t spares = 1;
  const std::size_t k = provisioned_servers(6, 0, 0, spares);

  // Server 2 deterministically straggles 200x; the rest are fast and tight.
  SimConfig cfg;
  cfg.seed = Prg("stats-session").fork_seed("latency");
  cfg.profiles.assign(k, ServerProfile{100, 0, 0, 20});
  cfg.profiles[2].straggle_permille = 1000;
  cfg.profiles[2].straggle_factor = 200;
  SimStarNetwork net(k, cfg);

  spfe::protocols::RobustStatsConfig sc;
  sc.hedge_spares = spares;
  spfe::protocols::RobustStatsSession session(field, 64, 2, k, 1,
                                              Prg("stats-session").fork_seed("session"), sc);
  Prg seeder("stats-session-spir");

  for (std::size_t q = 0; q < 4; ++q) {
    const std::vector<std::size_t> indices = {(q * 3) % 64, (q * 5 + 7) % 64};
    RobustnessReport sum_report, squares_report;
    const auto res = session.mean_variance(net, db, indices,
                                           seeder.fork_seed("q" + std::to_string(q)),
                                           &sum_report, &squares_report);
    const std::uint64_t a = db[indices[0]], b = db[indices[1]];
    EXPECT_EQ(res.sum, a + b) << "query " << q;
    EXPECT_EQ(res.sum_of_squares, a * a + b * b) << "query " << q;
    const double mean = static_cast<double>(a + b) / 2.0;
    EXPECT_DOUBLE_EQ(res.mean, mean) << "query " << q;
    EXPECT_DOUBLE_EQ(res.variance, static_cast<double>(a * a + b * b) / 2.0 - mean * mean)
        << "query " << q;
    EXPECT_TRUE(sum_report.success);
    EXPECT_TRUE(squares_report.success);
    if (q == 0) {
      // First query: the straggler was still a primary; the spare rescued it.
      EXPECT_EQ(sum_report.verdicts[2].fate, ServerFate::kUnavailable);
    } else {
      // Demoted: the tracker moved server 2 to the tail, where it is the
      // hedge spare and is never queried while the healthy servers answer.
      EXPECT_EQ(sum_report.verdicts[2].fate, ServerFate::kSpare) << "query " << q;
      EXPECT_EQ(squares_report.verdicts[2].fate, ServerFate::kSpare) << "query " << q;
    }
  }

  EXPECT_EQ(session.queries_issued(), 8u);  // two robust sums per package
  EXPECT_GT(session.health().demerits(2), 0u);
  EXPECT_EQ(session.health().ranked_order().back(), 2u);
  EXPECT_TRUE(net.idle());
}

}  // namespace
