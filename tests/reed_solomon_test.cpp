#include <gtest/gtest.h>

#include "common/error.h"
#include "field/fp64.h"
#include "common/serialize.h"
#include "field/reed_solomon.h"
#include "net/network.h"
#include "spfe/multiserver.h"

namespace spfe::field {
namespace {

TEST(LinearSolver, SolvesSquareSystem) {
  const Fp64 f(101);
  // 2x + 3y = 8, x + y = 3 -> x = 1? Solve over F101: x=1? 2+3y=8 -> check
  // x=1,y=2: 2+6=8 ok, 1+2=3 ok.
  const auto sol = solve_linear_system(
      f, {{2, 3}, {1, 1}}, std::vector<std::uint64_t>{8, 3});
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ((*sol)[0], 1u);
  EXPECT_EQ((*sol)[1], 2u);
}

TEST(LinearSolver, DetectsInconsistency) {
  const Fp64 f(101);
  const auto sol = solve_linear_system(
      f, {{1, 1}, {2, 2}}, std::vector<std::uint64_t>{3, 7});
  EXPECT_FALSE(sol.has_value());
}

TEST(LinearSolver, UnderdeterminedPicksASolution) {
  const Fp64 f(101);
  const auto sol = solve_linear_system(f, {{1, 1}}, std::vector<std::uint64_t>{5});
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(f.add((*sol)[0], (*sol)[1]), 5u);
}

class BerlekampWelchTest : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(BerlekampWelchTest, CorrectsUpToEErrors) {
  const auto [d, e] = GetParam();
  const Fp64 f(Fp64::kMersenne61);
  crypto::Prg prg("bw");
  const auto poly = Polynomial<Fp64>::random(f, d, prg);
  const std::size_t k = d + 1 + 2 * e;
  std::vector<std::uint64_t> xs(k), ys(k);
  for (std::size_t i = 0; i < k; ++i) {
    xs[i] = i + 1;
    ys[i] = poly.eval(xs[i]);
  }
  // Corrupt e distinct positions.
  for (std::size_t c = 0; c < e; ++c) {
    ys[c * 2] = f.add(ys[c * 2], 1 + prg.uniform(1000));
  }
  const auto got = berlekamp_welch(f, xs, ys, d, e, f.zero());
  ASSERT_TRUE(got.has_value()) << "d=" << d << " e=" << e;
  EXPECT_EQ(*got, poly.eval(0));
}

INSTANTIATE_TEST_SUITE_P(Sweep, BerlekampWelchTest,
                         ::testing::Values(std::tuple{1u, 1u}, std::tuple{3u, 1u},
                                           std::tuple{3u, 2u}, std::tuple{5u, 3u},
                                           std::tuple{10u, 2u}, std::tuple{4u, 0u}));

TEST(BerlekampWelch, NoErrorsFastPath) {
  const Fp64 f(1009);
  crypto::Prg prg("bw0");
  const auto poly = Polynomial<Fp64>::random(f, 3, prg);
  std::vector<std::uint64_t> xs, ys;
  for (std::uint64_t x = 1; x <= 6; ++x) {
    xs.push_back(x);
    ys.push_back(poly.eval(x));
  }
  EXPECT_EQ(berlekamp_welch(f, xs, ys, 3, 1, f.zero()), poly.eval(0));
}

TEST(BerlekampWelch, FailsBeyondBudget) {
  const Fp64 f(Fp64::kMersenne61);
  crypto::Prg prg("bw-fail");
  const std::size_t d = 2, e = 1;
  const auto poly = Polynomial<Fp64>::random(f, d, prg);
  const std::size_t k = d + 1 + 2 * e;
  std::vector<std::uint64_t> xs(k), ys(k);
  for (std::size_t i = 0; i < k; ++i) {
    xs[i] = i + 1;
    ys[i] = poly.eval(xs[i]);
  }
  // Corrupt e+1 positions: decoding must not silently return a wrong value
  // (either nullopt or — impossible here — the right value).
  ys[0] = f.add(ys[0], 17);
  ys[1] = f.add(ys[1], 23);
  const auto got = berlekamp_welch(f, xs, ys, d, e, f.zero());
  if (got.has_value()) {
    EXPECT_NE(*got, poly.eval(0)) << "would be a silent miracle";
  }
  SUCCEED();
}

TEST(BerlekampWelch, InsufficientPointsThrow) {
  const Fp64 f(1009);
  std::vector<std::uint64_t> xs = {1, 2, 3}, ys = {1, 2, 3};
  EXPECT_THROW(berlekamp_welch(f, xs, ys, 2, 1, f.zero()), InvalidArgument);
}

// --- edge cases around the exact correction bound ---------------------------

TEST(LinearSolver, InconsistentOverdeterminedSystem) {
  const Fp64 f(101);
  // Three equations in two unknowns with no common solution: the eliminated
  // zero row has a nonzero rhs, exercising the std::nullopt path.
  const auto sol = solve_linear_system(f, {{1, 0}, {0, 1}, {1, 1}},
                                       std::vector<std::uint64_t>{1, 2, 50});
  EXPECT_FALSE(sol.has_value());
}

TEST(BerlekampWelch, ZeroBudgetDetectsInconsistentPoints) {
  // max_errors = 0 must not blindly interpolate: a corrupted point set has
  // to come back nullopt, not a garbage value.
  const Fp64 f(Fp64::kMersenne61);
  crypto::Prg prg("bw-zero");
  const std::size_t d = 3;
  const auto poly = Polynomial<Fp64>::random(f, d, prg);
  std::vector<std::uint64_t> xs, ys;
  for (std::uint64_t x = 1; x <= d + 2; ++x) {
    xs.push_back(x);
    ys.push_back(poly.eval(x));
  }
  EXPECT_EQ(berlekamp_welch(f, xs, ys, d, 0, f.zero()), poly.eval(0));
  ys[2] = f.add(ys[2], 99);
  EXPECT_FALSE(berlekamp_welch(f, xs, ys, d, 0, f.zero()).has_value());
}

TEST(BerlekampWelch, ExactBoundOneBeyondFails) {
  // k = d + 1 + 2e points: e corruptions decode, e+1 must not decode to a
  // wrong value (nullopt, or — vanishingly unlikely — the honest value).
  const Fp64 f(Fp64::kMersenne61);
  crypto::Prg prg("bw-bound");
  const std::size_t d = 4, e = 2;
  const auto poly = Polynomial<Fp64>::random(f, d, prg);
  const std::size_t k = d + 1 + 2 * e;
  std::vector<std::uint64_t> xs(k), ys(k);
  for (std::size_t i = 0; i < k; ++i) {
    xs[i] = i + 1;
    ys[i] = poly.eval(xs[i]);
  }
  for (std::size_t c = 0; c < e; ++c) ys[c] = f.add(ys[c], 7 + c);
  EXPECT_EQ(berlekamp_welch(f, xs, ys, d, e, f.zero()), poly.eval(0));
  ys[e] = f.add(ys[e], 31);  // one corruption too many
  const auto got = berlekamp_welch(f, xs, ys, d, e, f.zero());
  if (got.has_value()) EXPECT_EQ(*got, poly.eval(0));
}

TEST(BerlekampWelchDecode, ReportsErrorPositions) {
  const Fp64 f(Fp64::kMersenne61);
  crypto::Prg prg("bw-positions");
  const std::size_t d = 3, e = 2;
  const auto poly = Polynomial<Fp64>::random(f, d, prg);
  const std::size_t k = d + 1 + 2 * e;
  std::vector<std::uint64_t> xs(k), ys(k);
  for (std::size_t i = 0; i < k; ++i) {
    xs[i] = i + 1;
    ys[i] = poly.eval(xs[i]);
  }
  ys[1] = f.add(ys[1], 5);
  ys[6] = f.add(ys[6], 9);
  const auto dec = berlekamp_welch_decode(f, xs, ys, d, e);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->num_errors(), 2u);
  EXPECT_FALSE(dec->agrees[1]);
  EXPECT_FALSE(dec->agrees[6]);
  for (const std::size_t i : {0u, 2u, 3u, 4u, 5u, 7u}) EXPECT_TRUE(dec->agrees[i]) << i;
  EXPECT_EQ(dec->eval(f, f.zero()), poly.eval(0));
  EXPECT_EQ(dec->eval(f, xs[1]), poly.eval(xs[1]));  // corrected point
}

TEST(DecodeWithErasures, ErasureAndErrorMixes) {
  // Provision k = d + 1 + 2e + c, then erase c points and corrupt e of the
  // survivors: every mix within the unit budget must decode exactly.
  const Fp64 f(Fp64::kMersenne61);
  crypto::Prg prg("erasure-mix");
  const std::size_t d = 4;
  for (std::size_t e = 0; e <= 2; ++e) {
    for (std::size_t c = 0; c <= 3; ++c) {
      const std::size_t k = d + 1 + 2 * e + c;
      const auto poly = Polynomial<Fp64>::random(f, d, prg);
      // Erase the first c points (survivors are the rest), corrupt e.
      std::vector<std::uint64_t> xs, ys;
      for (std::size_t i = c; i < k; ++i) {
        xs.push_back(i + 1);
        ys.push_back(poly.eval(i + 1));
      }
      for (std::size_t j = 0; j < e; ++j) ys[2 * j] = f.add(ys[2 * j], 11 + j);
      const auto dec = decode_with_erasures(f, xs, ys, d);
      ASSERT_TRUE(dec.has_value()) << "e=" << e << " c=" << c;
      EXPECT_EQ(dec->eval(f, f.zero()), poly.eval(0)) << "e=" << e << " c=" << c;
      EXPECT_EQ(dec->num_errors(), e) << "e=" << e << " c=" << c;
    }
  }
}

TEST(DecodeWithErasures, ExactMinimumSurvivors) {
  // s = d + 1 survivors, zero error slack: decodes iff all are honest.
  const Fp64 f(Fp64::kMersenne61);
  crypto::Prg prg("erasure-min");
  const std::size_t d = 5;
  const auto poly = Polynomial<Fp64>::random(f, d, prg);
  std::vector<std::uint64_t> xs, ys;
  for (std::size_t i = 0; i < d + 1; ++i) {
    xs.push_back(i + 3);
    ys.push_back(poly.eval(i + 3));
  }
  const auto dec = decode_with_erasures(f, xs, ys, d);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->eval(f, f.zero()), poly.eval(0));
  // One survivor fewer: information-theoretically impossible.
  xs.pop_back();
  ys.pop_back();
  EXPECT_FALSE(decode_with_erasures(f, xs, ys, d).has_value());
}

TEST(DecodeWithErasures, BeyondBudgetReturnsNullopt) {
  // s = d + 2 survivors (error capacity 0) with one silent lie: the single
  // point of slack exposes the inconsistency.
  const Fp64 f(Fp64::kMersenne61);
  crypto::Prg prg("erasure-beyond");
  const std::size_t d = 3;
  const auto poly = Polynomial<Fp64>::random(f, d, prg);
  std::vector<std::uint64_t> xs, ys;
  for (std::size_t i = 0; i < d + 2; ++i) {
    xs.push_back(i + 1);
    ys.push_back(poly.eval(i + 1));
  }
  ys[0] = f.add(ys[0], 1);
  EXPECT_FALSE(decode_with_erasures(f, xs, ys, d).has_value());
}

// --- consistent-lie tightness boundaries ------------------------------------
//
// The adversary engine's ConsistentLieStrategy (net/adversary.h) corrupts
// points with one shared offset delta, so every lie sits on the *same*
// degree-d polynomial P + delta — the attack class no per-point check can
// see. These tests pin the exact decode boundaries the robust drivers rely
// on: e such lies at d+1+2e are corrected, e+1 fail closed (never a wrong
// value), and at the bare d+1 interpolation quorum a single lie decodes
// silently wrong — the reason TimingPolicy::byzantine_budget raises the
// early-decode quorum (tests/adversary_test.cpp witnesses it end-to-end).

TEST(ConsistentLieTightness, ExactlyEConsistentLiesAreCorrected) {
  const Fp64 f(Fp64::kMersenne61);
  crypto::Prg prg("lie-exact");
  const std::uint64_t delta = 123456789;
  for (std::size_t d = 2; d <= 6; ++d) {
    for (std::size_t e = 1; e <= 2; ++e) {
      const std::size_t k = d + 1 + 2 * e;
      const auto poly = Polynomial<Fp64>::random(f, d, prg);
      std::vector<std::uint64_t> xs(k), ys(k);
      for (std::size_t i = 0; i < k; ++i) {
        xs[i] = i + 1;
        ys[i] = poly.eval(xs[i]);
      }
      for (std::size_t j = 0; j < e; ++j) ys[j] = f.add(ys[j], delta);
      const auto dec = berlekamp_welch_decode(f, xs, ys, d, e);
      ASSERT_TRUE(dec.has_value()) << "d=" << d << " e=" << e;
      EXPECT_EQ(dec->eval(f, f.zero()), poly.eval(0)) << "d=" << d << " e=" << e;
      EXPECT_EQ(dec->num_errors(), e) << "d=" << d << " e=" << e;
      for (std::size_t j = 0; j < e; ++j) EXPECT_FALSE(dec->agrees[j]) << "d=" << d;
    }
  }
}

TEST(ConsistentLieTightness, EPlusOneConsistentLiesFailClosedNeverWrong) {
  // At k = d+1+2e, e+1 colluders on one delta put the points at distance
  // e+1 from P and distance d+e from P+delta — both beyond the e budget, so
  // the decode must return nullopt rather than either polynomial.
  const Fp64 f(Fp64::kMersenne61);
  crypto::Prg prg("lie-overbudget");
  const std::uint64_t delta = 987654321;
  for (std::size_t d = 2; d <= 6; ++d) {
    for (std::size_t e = 1; e <= 2; ++e) {
      const std::size_t k = d + 1 + 2 * e;
      const auto poly = Polynomial<Fp64>::random(f, d, prg);
      std::vector<std::uint64_t> xs(k), ys(k);
      for (std::size_t i = 0; i < k; ++i) {
        xs[i] = i + 1;
        ys[i] = poly.eval(xs[i]);
      }
      for (std::size_t j = 0; j < e + 1; ++j) ys[j] = f.add(ys[j], delta);
      EXPECT_FALSE(berlekamp_welch_decode(f, xs, ys, d, e).has_value())
          << "d=" << d << " e=" << e;
      EXPECT_FALSE(decode_with_erasures(f, xs, ys, d).has_value())
          << "d=" << d << " e=" << e;
    }
  }
}

TEST(ConsistentLieTightness, BareInterpolationQuorumDecodesSilentlyWrong) {
  // s = d+1 points with zero error capacity: interpolation fits ANY d+1
  // points, so one consistent lie yields a "successful" decode of the wrong
  // polynomial with a clean agrees vector — the silent failure mode the
  // byzantine-budget quorum guard exists to forbid. One more point (s =
  // d+2) is already enough slack to expose the lie wherever it sits.
  const Fp64 f(Fp64::kMersenne61);
  crypto::Prg prg("lie-bare-quorum");
  const std::size_t d = 4;
  const std::uint64_t delta = 5555;
  const auto poly = Polynomial<Fp64>::random(f, d, prg);
  std::vector<std::uint64_t> xs(d + 1), ys(d + 1);
  for (std::size_t i = 0; i <= d; ++i) {
    xs[i] = i + 1;
    ys[i] = poly.eval(xs[i]);
  }
  ys[2] = f.add(ys[2], delta);

  const auto dec = decode_with_erasures(f, xs, ys, d);
  ASSERT_TRUE(dec.has_value()) << "bare-quorum interpolation cannot reject anything";
  EXPECT_EQ(dec->num_errors(), 0u) << "the lie is invisible to the agrees vector";
  EXPECT_NE(dec->eval(f, f.zero()), poly.eval(0)) << "and the decoded value is wrong";

  // d+2 points, same single lie, at every lie position: detected-or-error.
  for (std::size_t liar = 0; liar < d + 2; ++liar) {
    std::vector<std::uint64_t> xs2(d + 2), ys2(d + 2);
    for (std::size_t i = 0; i < d + 2; ++i) {
      xs2[i] = i + 1;
      ys2[i] = poly.eval(xs2[i]);
    }
    ys2[liar] = f.add(ys2[liar], delta);
    EXPECT_FALSE(decode_with_erasures(f, xs2, ys2, d).has_value()) << "liar=" << liar;
  }
}

TEST(ConsistentLieTightness, ErasurePlusLieMixAtTheExactUnitBudgetBoundary) {
  // Provision k = d+1+2e+c; erase c points and plant e consistent lies:
  // s = d+1+2e survivors decode exactly. One additional erasure drops the
  // error capacity to e-1 and the same lies must fail closed.
  const Fp64 f(Fp64::kMersenne61);
  crypto::Prg prg("lie-erasure-boundary");
  const std::size_t d = 3, e = 2, c = 2;
  const std::uint64_t delta = 424242;
  const std::size_t k = d + 1 + 2 * e + c;
  const auto poly = Polynomial<Fp64>::random(f, d, prg);

  std::vector<std::uint64_t> xs, ys;
  for (std::size_t i = c; i < k; ++i) {  // the first c points are erased
    xs.push_back(i + 1);
    ys.push_back(poly.eval(i + 1));
  }
  for (std::size_t j = 0; j < e; ++j) ys[2 * j] = f.add(ys[2 * j], delta);

  const auto dec = decode_with_erasures(f, xs, ys, d);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->eval(f, f.zero()), poly.eval(0));
  EXPECT_EQ(dec->num_errors(), e);

  // c+1 erasures: s = d+2e, capacity e-1 < e lies -> fail closed.
  xs.erase(xs.begin() + 1);  // drop an honest survivor, keeping both lies
  ys.erase(ys.begin() + 1);
  EXPECT_FALSE(decode_with_erasures(f, xs, ys, d).has_value());
}

// --- end-to-end: §3.1 with malicious servers --------------------------------

TEST(MultiServerFaultTolerance, SumSurvivesCorruptAnswers) {
  const Fp64 f(Fp64::kMersenne61);
  constexpr std::size_t kN = 64, kM = 3, kT = 1, kErrors = 2;
  // Provision 2*kErrors extra servers beyond the interpolation minimum.
  const std::size_t k =
      protocols::MultiServerSumSpfe::min_servers(kN, kT) + 2 * kErrors;
  const protocols::MultiServerSumSpfe proto(f, kN, kM, k, kT);
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = 100 + i;
  const std::vector<std::size_t> indices = {3, 30, 60};
  std::uint64_t expect = 0;
  for (const std::size_t i : indices) expect += db[i];

  crypto::Prg prg("ft");
  protocols::MultiServerSumSpfe::ClientState state;
  const auto queries = proto.make_queries(indices, state, prg);
  std::vector<Bytes> answers;
  for (std::size_t h = 0; h < k; ++h) {
    answers.push_back(proto.answer(h, db, queries[h], nullptr));
  }
  // Two servers lie.
  {
    spfe::Writer w1, w2;
    w1.u64(123456789);
    w2.u64(987654321);
    answers[1] = w1.take();
    answers[4] = w2.take();
  }
  // Plain interpolation is now wrong...
  EXPECT_NE(proto.decode(answers, state), expect);
  // ...but error-correcting decoding recovers.
  EXPECT_EQ(proto.decode_with_errors(answers, state, kErrors), expect);
}

TEST(MultiServerFaultTolerance, FormulaSurvivesOneCorruptAnswer) {
  const Fp64 f(Fp64::kMersenne61);
  const auto formula = circuits::Formula::parse("x0 & x1");
  constexpr std::size_t kN = 16, kT = 1, kErrors = 1;
  const std::size_t k =
      protocols::MultiServerFormulaSpfe::min_servers(formula, kN, kT) + 2 * kErrors;
  const protocols::MultiServerFormulaSpfe proto(f, formula, kN, k, kT);
  std::vector<std::uint64_t> db(kN, 1);
  crypto::Prg prg("ft2");
  protocols::MultiServerFormulaSpfe::ClientState state;
  const auto queries = proto.make_queries({2, 9}, state, prg);
  std::vector<Bytes> answers;
  for (std::size_t h = 0; h < k; ++h) {
    answers.push_back(proto.answer(h, db, queries[h], nullptr));
  }
  spfe::Writer bad;
  bad.u64(42424242);
  answers[0] = bad.take();
  EXPECT_EQ(proto.decode_with_errors(answers, state, kErrors), 1u);
}

TEST(MultiServerFaultTolerance, TooManyErrorsThrow) {
  const Fp64 f(Fp64::kMersenne61);
  constexpr std::size_t kN = 16, kM = 2, kT = 1;
  const std::size_t k = protocols::MultiServerSumSpfe::min_servers(kN, kT) + 2;
  const protocols::MultiServerSumSpfe proto(f, kN, kM, k, kT);
  std::vector<std::uint64_t> db(kN, 5);
  crypto::Prg prg("ft3");
  protocols::MultiServerSumSpfe::ClientState state;
  const auto queries = proto.make_queries({1, 2}, state, prg);
  std::vector<Bytes> answers;
  for (std::size_t h = 0; h < k; ++h) {
    answers.push_back(proto.answer(h, db, queries[h], nullptr));
  }
  // Corrupt 3 answers with an error budget of 1: must throw, not lie.
  for (const std::size_t h : {0u, 1u, 2u}) {
    spfe::Writer w;
    w.u64(h + 777777);
    answers[h] = w.take();
  }
  EXPECT_THROW(proto.decode_with_errors(answers, state, 1), ProtocolError);
}

}  // namespace
}  // namespace spfe::field
