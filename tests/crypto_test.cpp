#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/bytes.h"
#include "common/error.h"
#include "crypto/chacha20.h"
#include "crypto/kdf.h"
#include "crypto/prg.h"
#include "crypto/sha256.h"

namespace spfe::crypto {
namespace {

Bytes ascii(const std::string& s) { return Bytes(s.begin(), s.end()); }

// FIPS 180-4 test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_encode(Sha256::hash_bytes({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_encode(Sha256::hash_bytes(ascii("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_encode(Sha256::hash_bytes(
                ascii("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto d = h.finish();
  EXPECT_EQ(hex_encode(Bytes(d.begin(), d.end())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = ascii("the quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(BytesView(msg.data(), split));
    h.update(BytesView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.finish(), Sha256::hash(msg)) << "split=" << split;
  }
}

// RFC 8439 section 2.3.2 test vector.
TEST(ChaCha20, Rfc8439BlockVector) {
  std::array<std::uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  const std::array<std::uint8_t, 12> nonce = {0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  ChaCha20 c(key, nonce);
  std::uint8_t block[64];
  c.block(1, block);
  EXPECT_EQ(hex_encode(BytesView(block, 64)),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 section 2.4.2 encryption vector.
TEST(ChaCha20, Rfc8439EncryptVector) {
  std::array<std::uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  const std::array<std::uint8_t, 12> nonce = {0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  ChaCha20 c(key, nonce, 1);
  const Bytes pt = ascii(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  const Bytes ct = c.process(pt);
  EXPECT_EQ(hex_encode(BytesView(ct.data(), 16)), "6e2e359a2568f98041ba0728dd0d6981");
  // Decrypt round-trips.
  ChaCha20 c2(key, nonce, 1);
  EXPECT_EQ(c2.process(ct), pt);
}

TEST(ChaCha20, StreamMatchesBlocks) {
  std::array<std::uint8_t, 32> key{};
  key[0] = 7;
  const std::array<std::uint8_t, 12> nonce{};
  ChaCha20 a(key, nonce);
  Bytes stream(200);
  a.keystream(stream.data(), 13);
  a.keystream(stream.data() + 13, 187);

  ChaCha20 b(key, nonce);
  Bytes expect(200);
  b.keystream(expect.data(), 200);
  EXPECT_EQ(stream, expect);
}

TEST(Prg, Deterministic) {
  Prg a("seed-label");
  Prg b("seed-label");
  EXPECT_EQ(a.bytes(64), b.bytes(64));
  EXPECT_EQ(a.u64(), b.u64());
}

TEST(Prg, DifferentSeedsDiffer) {
  Prg a("label-a");
  Prg b("label-b");
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Prg, ForkIndependence) {
  Prg parent("parent");
  Prg c1 = parent.fork("child1");
  Prg c2 = parent.fork("child2");
  EXPECT_NE(c1.bytes(32), c2.bytes(32));
  // Forking is independent of parent stream position.
  Prg parent2("parent");
  parent2.bytes(100);
  Prg c1_again = parent2.fork("child1");
  EXPECT_EQ(Prg("parent").fork("child1").bytes(16), c1_again.bytes(16));
}

TEST(Prg, UniformBoundRespected) {
  Prg prg("uniform");
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(prg.uniform(17), 17u);
    EXPECT_LT(prg.uniform(1u << 20), 1u << 20);
    EXPECT_EQ(prg.uniform(1), 0u);
  }
}

TEST(Prg, UniformCoversRange) {
  Prg prg("coverage");
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 6000; ++i) counts[prg.uniform(6)]++;
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, 800) << "value " << v << " undersampled";
    EXPECT_LT(c, 1200) << "value " << v << " oversampled";
  }
}

TEST(Prg, UniformRejectsZeroBound) {
  Prg prg("zero");
  EXPECT_THROW(prg.uniform(0), InvalidArgument);
}

TEST(Kdf, DeterministicAndContextSeparated) {
  const Bytes key = ascii("key material");
  const Bytes a = kdf_expand(key, "ctx-a", 48);
  EXPECT_EQ(a, kdf_expand(key, "ctx-a", 48));
  EXPECT_NE(a, kdf_expand(key, "ctx-b", 48));
  EXPECT_EQ(a.size(), 48u);
}

TEST(Kdf, PrefixConsistency) {
  const Bytes key = ascii("key");
  const Bytes longer = kdf_expand(key, "ctx", 64);
  const Bytes shorter = kdf_expand(key, "ctx", 32);
  EXPECT_TRUE(std::equal(shorter.begin(), shorter.end(), longer.begin()));
}

}  // namespace
}  // namespace spfe::crypto
