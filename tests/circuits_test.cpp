#include <gtest/gtest.h>

#include <cstdint>

#include "circuits/arith_circuit.h"
#include "circuits/boolean_circuit.h"
#include "circuits/formula.h"
#include "common/error.h"
#include "field/fp64.h"

namespace spfe::circuits {
namespace {

using field::Fp64;

std::vector<bool> to_bits(std::uint64_t v, std::size_t width) {
  std::vector<bool> bits(width);
  for (std::size_t i = 0; i < width; ++i) bits[i] = ((v >> i) & 1) != 0;
  return bits;
}

std::uint64_t from_bits(const std::vector<bool>& bits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) v |= std::uint64_t(1) << i;
  }
  return v;
}

// ---- Formula ----------------------------------------------------------------

TEST(Formula, BasicEval) {
  const Formula f = Formula::f_or(Formula::f_and(Formula::leaf(0), Formula::leaf(1)),
                                  Formula::f_not(Formula::leaf(2)));
  EXPECT_TRUE(f.eval({true, true, true}));
  EXPECT_FALSE(f.eval({false, true, true}));
  EXPECT_TRUE(f.eval({false, false, false}));
  EXPECT_EQ(f.size(), 3u);
  EXPECT_EQ(f.arity(), 3u);
}

TEST(Formula, ParseMatchesManualConstruction) {
  const Formula f = Formula::parse("(x0 & x1) | ~x2");
  for (int mask = 0; mask < 8; ++mask) {
    const std::vector<bool> args = to_bits(static_cast<std::uint64_t>(mask), 3);
    const bool expect = (args[0] && args[1]) || !args[2];
    EXPECT_EQ(f.eval(args), expect) << "mask=" << mask;
  }
}

TEST(Formula, ParsePrecedence) {
  // ~ > & > ^ > |
  const Formula f = Formula::parse("x0 | x1 ^ x2 & ~x3");
  for (int mask = 0; mask < 16; ++mask) {
    const auto args = to_bits(static_cast<std::uint64_t>(mask), 4);
    const bool expect = args[0] || (args[1] != (args[2] && !args[3]));
    EXPECT_EQ(f.eval(args), expect) << "mask=" << mask;
  }
}

TEST(Formula, ParseErrors) {
  EXPECT_THROW(Formula::parse(""), InvalidArgument);
  EXPECT_THROW(Formula::parse("x"), InvalidArgument);
  EXPECT_THROW(Formula::parse("(x0"), InvalidArgument);
  EXPECT_THROW(Formula::parse("x0 x1"), InvalidArgument);
  EXPECT_THROW(Formula::parse("y0"), InvalidArgument);
}

TEST(Formula, Trees) {
  const Formula a = Formula::and_tree(5);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_TRUE(a.eval({true, true, true, true, true}));
  EXPECT_FALSE(a.eval({true, true, false, true, true}));

  const Formula p = Formula::parity(4);
  EXPECT_FALSE(p.eval({false, false, false, false}));
  EXPECT_TRUE(p.eval({true, false, false, false}));
  EXPECT_FALSE(p.eval({true, true, false, false}));
}

TEST(Formula, ArithmetizedAgreesOnBooleanInputs) {
  const Fp64 f(1009);
  const Formula formulas[] = {
      Formula::parse("x0 & x1"), Formula::parse("x0 | x1"), Formula::parse("x0 ^ x1"),
      Formula::parse("~x0"), Formula::parse("((x0 & x1) | ~x2) ^ (x1 & ~x3)")};
  for (const Formula& formula : formulas) {
    const std::size_t arity = formula.arity();
    for (std::uint64_t mask = 0; mask < (std::uint64_t(1) << arity); ++mask) {
      const auto args = to_bits(mask, arity);
      std::vector<std::uint64_t> leaf_values(arity);
      for (std::size_t i = 0; i < arity; ++i) leaf_values[i] = args[i] ? 1 : 0;
      const std::uint64_t got = formula.eval_arithmetized(f, leaf_values);
      EXPECT_EQ(got, formula.eval(args) ? 1u : 0u)
          << formula.to_string() << " mask=" << mask;
    }
  }
}

TEST(Formula, ArithDegree) {
  EXPECT_EQ(Formula::leaf(0).arith_degree(10), 10u);
  EXPECT_EQ(Formula::parse("x0 & x1").arith_degree(10), 20u);
  EXPECT_EQ(Formula::parse("~x0").arith_degree(10), 10u);
  EXPECT_EQ(Formula::parse("(x0 & x1) ^ x2").arith_degree(10), 30u);
  EXPECT_EQ(Formula::constant(true).arith_degree(10), 0u);
}

// ---- BooleanCircuit ---------------------------------------------------------

TEST(BooleanCircuit, GateEval) {
  BooleanCircuit c(2);
  const WireId x = c.input(0), y = c.input(1);
  c.add_output(c.xor_gate(x, y));
  c.add_output(c.and_gate(x, y));
  c.add_output(c.or_gate(x, y));
  c.add_output(c.not_gate(x));
  c.add_output(c.const_wire(true));
  for (int mask = 0; mask < 4; ++mask) {
    const bool a = mask & 1, b = mask & 2;
    const auto out = c.eval({a, b});
    EXPECT_EQ(out[0], a != b);
    EXPECT_EQ(out[1], a && b);
    EXPECT_EQ(out[2], a || b);
    EXPECT_EQ(out[3], !a);
    EXPECT_TRUE(out[4]);
  }
}

TEST(BooleanCircuit, WireValidation) {
  BooleanCircuit c(1);
  EXPECT_THROW(c.input(1), InvalidArgument);
  EXPECT_THROW(c.xor_gate(0, 99), InvalidArgument);
  EXPECT_THROW(c.add_output(99), InvalidArgument);
  EXPECT_THROW(c.eval({true, false}), InvalidArgument);
}

TEST(BooleanCircuit, AddModExhaustive) {
  constexpr std::size_t kW = 4;
  BooleanCircuit c(2 * kW);
  WireBundle a, b;
  for (std::size_t i = 0; i < kW; ++i) a.push_back(c.input(i));
  for (std::size_t i = 0; i < kW; ++i) b.push_back(c.input(kW + i));
  c.add_outputs(build_add_mod(c, a, b));
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      std::vector<bool> in = to_bits(x, kW);
      const auto yb = to_bits(y, kW);
      in.insert(in.end(), yb.begin(), yb.end());
      EXPECT_EQ(from_bits(c.eval(in)), (x + y) % 16) << x << "+" << y;
    }
  }
}

TEST(BooleanCircuit, AddFullWidth) {
  constexpr std::size_t kW = 5;
  BooleanCircuit c(2 * kW);
  WireBundle a, b;
  for (std::size_t i = 0; i < kW; ++i) a.push_back(c.input(i));
  for (std::size_t i = 0; i < kW; ++i) b.push_back(c.input(kW + i));
  c.add_outputs(build_add(c, a, b));
  for (std::uint64_t x : {0ull, 1ull, 15ull, 31ull}) {
    for (std::uint64_t y : {0ull, 1ull, 16ull, 31ull}) {
      std::vector<bool> in = to_bits(x, kW);
      const auto yb = to_bits(y, kW);
      in.insert(in.end(), yb.begin(), yb.end());
      EXPECT_EQ(from_bits(c.eval(in)), x + y);
    }
  }
}

TEST(BooleanCircuit, EqConst) {
  constexpr std::size_t kW = 6;
  BooleanCircuit c(kW);
  WireBundle a;
  for (std::size_t i = 0; i < kW; ++i) a.push_back(c.input(i));
  c.add_output(build_eq_const(c, a, 37));
  for (std::uint64_t x = 0; x < 64; ++x) {
    EXPECT_EQ(c.eval(to_bits(x, kW))[0], x == 37) << x;
  }
  EXPECT_THROW(build_eq_const(c, a, 64), InvalidArgument);
}

TEST(BooleanCircuit, EqAndLessThan) {
  constexpr std::size_t kW = 4;
  BooleanCircuit c(2 * kW);
  WireBundle a, b;
  for (std::size_t i = 0; i < kW; ++i) a.push_back(c.input(i));
  for (std::size_t i = 0; i < kW; ++i) b.push_back(c.input(kW + i));
  c.add_output(build_eq(c, a, b));
  c.add_output(build_less_than(c, a, b));
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      std::vector<bool> in = to_bits(x, kW);
      const auto yb = to_bits(y, kW);
      in.insert(in.end(), yb.begin(), yb.end());
      const auto out = c.eval(in);
      EXPECT_EQ(out[0], x == y) << x << " vs " << y;
      EXPECT_EQ(out[1], x < y) << x << " vs " << y;
    }
  }
}

TEST(BooleanCircuit, Popcount) {
  constexpr std::size_t kN = 9;
  BooleanCircuit c(kN);
  std::vector<WireId> bits;
  for (std::size_t i = 0; i < kN; ++i) bits.push_back(c.input(i));
  c.add_outputs(build_popcount(c, bits));
  for (std::uint64_t mask = 0; mask < (1u << kN); ++mask) {
    const auto in = to_bits(mask, kN);
    EXPECT_EQ(from_bits(c.eval(in)), static_cast<std::uint64_t>(std::popcount(mask)));
  }
}

TEST(BooleanCircuit, Mux) {
  BooleanCircuit c(5);
  const WireBundle a = {c.input(0), c.input(1)};
  const WireBundle b = {c.input(2), c.input(3)};
  c.add_outputs(build_mux(c, c.input(4), a, b));
  // sel=1 -> a, sel=0 -> b.
  EXPECT_EQ(from_bits(c.eval({true, false, false, true, true})), 1u);
  EXPECT_EQ(from_bits(c.eval({true, false, false, true, false})), 2u);
}

TEST(BooleanCircuit, NonfreeGateCount) {
  BooleanCircuit c(2);
  c.xor_gate(0, 1);
  c.and_gate(0, 1);
  c.or_gate(0, 1);
  c.not_gate(0);
  EXPECT_EQ(c.nonfree_gate_count(), 2u);
  EXPECT_EQ(c.size(), 4u);
}

// ---- ArithCircuit -----------------------------------------------------------

TEST(ArithCircuit, GateEval) {
  ArithCircuit c(2, 97);
  const auto x = c.input(0), y = c.input(1);
  c.add_output(c.add(x, y));
  c.add_output(c.sub(x, y));
  c.add_output(c.mul(x, y));
  c.add_output(c.mul_const(x, 10));
  c.add_output(c.constant(42));
  const auto out = c.eval({50, 60});
  EXPECT_EQ(out[0], 13u);  // 110 mod 97
  EXPECT_EQ(out[1], (50 + 97 - 60) % 97);
  EXPECT_EQ(out[2], 50 * 60 % 97);
  EXPECT_EQ(out[3], 500 % 97);
  EXPECT_EQ(out[4], 42u);
}

TEST(ArithCircuit, LargeModulus) {
  const std::uint64_t u = (std::uint64_t(1) << 62) + 1;
  ArithCircuit c(2, u);
  c.add_output(c.mul(c.input(0), c.input(1)));
  const std::uint64_t a = u - 2, b = u - 3;
  // (u-2)(u-3) mod u = 6
  EXPECT_EQ(c.eval({a, b})[0], 6u);
}

TEST(ArithCircuit, SumBuilder) {
  const auto c = ArithCircuit::sum(4, 1000);
  EXPECT_EQ(c.eval({1, 2, 3, 4})[0], 10u);
  EXPECT_EQ(c.eval({999, 1, 0, 0})[0], 0u);
  EXPECT_EQ(c.mul_gate_count(), 0u);
  EXPECT_EQ(c.mult_depth(), 0u);
}

TEST(ArithCircuit, WeightedSumBuilder) {
  const auto c = ArithCircuit::weighted_sum({2, 3, 5}, 1000);
  EXPECT_EQ(c.eval({1, 1, 1})[0], 10u);
  EXPECT_EQ(c.eval({10, 0, 100})[0], 520u);
  EXPECT_EQ(c.mult_depth(), 0u);  // constant mults are free
}

TEST(ArithCircuit, SumAndSumOfSquares) {
  const auto c = ArithCircuit::sum_and_sum_of_squares(3, 100000);
  const auto out = c.eval({3, 4, 5});
  EXPECT_EQ(out[0], 12u);
  EXPECT_EQ(out[1], 9u + 16 + 25);
  EXPECT_EQ(c.mult_depth(), 1u);
  EXPECT_EQ(c.mul_gate_count(), 3u);
}

TEST(ArithCircuit, InnerProduct) {
  const auto c = ArithCircuit::inner_product(3, 100000);
  EXPECT_EQ(c.eval({1, 2, 3, 4, 5, 6})[0], 4u + 10 + 18);
}

TEST(ArithCircuit, SumSquaredDeviation) {
  const auto c = ArithCircuit::sum_squared_deviation(3, 10, 100000);
  EXPECT_EQ(c.eval({10, 12, 7})[0], 0u + 4 + 9);
}

TEST(ArithCircuit, Validation) {
  EXPECT_THROW(ArithCircuit(1, 1), InvalidArgument);
  ArithCircuit c(1, 10);
  EXPECT_THROW(c.input(1), InvalidArgument);
  EXPECT_THROW(c.add(0, 5), InvalidArgument);
  EXPECT_THROW(c.eval({1, 2}), InvalidArgument);
}

}  // namespace
}  // namespace spfe::circuits
