// Adaptive Byzantine adversary engine (ctest label: adversary).
//
// Three pillars:
//   1. Strategy/engine semantics — coalitions share views and scratch
//      state, every shipped strategy deviates exactly when documented, and
//      the network interposition honors the metering contract (a forged
//      answer is a metered transmission, byzantine silence is unmetered,
//      a delayed answer arrives late).
//   2. Soundness tightness — a within-budget adversary never extracts a
//      wrong value: every strategy across thousands of seeded schedules
//      yields the exact output or the typed RobustProtocolError. The
//      boundary is witnessed in both directions: with the byzantine-budget
//      quorum guard ablated (budget 0 against a live liar) a single
//      consistent lie at the bare d+1 interpolation quorum produces a
//      *silent wrong decode* the report cannot see, and an (e+1)-liar
//      coalition at the d+1+2e provisioning forces the typed error but
//      never a wrong value.
//   3. Selective-failure privacy — the kill decisions of a content-aware
//      drop adversary are statistically independent of the client's secret
//      index, because every attempt re-randomizes the query curve; a
//      deliberately leaky (un-rerandomized) strawman protocol is flagged by
//      the same harness, and the harness transcript is SPFE_THREADS
//      invariant.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/serialize.h"
#include "crypto/prg.h"
#include "field/fp64.h"
#include "net/adversary.h"
#include "net/fault.h"
#include "net/health.h"
#include "net/robust.h"
#include "net/sim.h"
#include "obs/obs.h"
#include "pir/itpir.h"
#include "spfe/multiserver.h"
#include "spfe/stats.h"

namespace {

using spfe::Bytes;
using spfe::BytesView;
using spfe::Reader;
using spfe::Writer;
using spfe::DeadlineMiss;
using spfe::ServerUnavailable;
using spfe::common::ThreadPool;
using spfe::crypto::Prg;
using spfe::field::Fp64;
using namespace spfe::net;
namespace obs = spfe::obs;

std::vector<std::uint64_t> test_database(std::size_t n) {
  std::vector<std::uint64_t> db(n);
  for (std::size_t i = 0; i < n; ++i) db[i] = i * i + 3;
  return db;
}

Bytes field_answer(std::uint64_t value) {
  Writer w;
  w.u64(value);
  return std::move(w).take();
}

std::uint64_t read_field_answer(const Bytes& answer) {
  Reader r(answer);
  const std::uint64_t v = r.u64();
  r.expect_done();
  return v;
}

// ---------------------------------------------------------------------------
// Strategy/engine unit semantics.

TEST(AdversaryEngineTest, ForgeFieldAnswerAddsDeltaModP) {
  const std::uint64_t p = Fp64::kMersenne61;
  const auto forged = forge_field_answer(field_answer(10), p, 7);
  ASSERT_TRUE(forged.has_value());
  EXPECT_EQ(read_field_answer(*forged), 17u);

  // Wraparound stays inside the field.
  const auto wrapped = forge_field_answer(field_answer(p - 1), p, 2);
  ASSERT_TRUE(wrapped.has_value());
  EXPECT_EQ(read_field_answer(*wrapped), 1u);

  // Trailing bytes survive the forgery untouched.
  Bytes long_answer = field_answer(5);
  long_answer.push_back(0xAB);
  long_answer.push_back(0xCD);
  const auto forged_long = forge_field_answer(long_answer, p, 1);
  ASSERT_TRUE(forged_long.has_value());
  EXPECT_EQ(forged_long->size(), long_answer.size());
  EXPECT_EQ((*forged_long)[8], 0xAB);
  EXPECT_EQ((*forged_long)[9], 0xCD);

  // Too short to carry a field element: unforgeable.
  EXPECT_FALSE(forge_field_answer(Bytes{1, 2, 3}, p, 1).has_value());
}

TEST(AdversaryEngineTest, EngineRecordsViewsOrdinalsAndStats) {
  const std::uint64_t p = Fp64::kMersenne61;
  AdversaryEngine engine(std::make_shared<ConsistentLieStrategy>(p, 5),
                         {2, 0, 2});  // duplicates and order normalize away

  ASSERT_EQ(engine.coalition().members(), (std::vector<std::size_t>{0, 2}));
  EXPECT_TRUE(engine.controls(0));
  EXPECT_FALSE(engine.controls(1));
  EXPECT_THROW((void)engine.view(1), spfe::InvalidArgument);

  engine.observe_query(0, Bytes{9, 9}, 100);
  engine.observe_query(0, Bytes{8}, 250);
  const AdversaryAction act = engine.intercept_answer(0, field_answer(4), 300);
  EXPECT_EQ(act.kind, AdversaryAction::Kind::kReplace);
  EXPECT_EQ(read_field_answer(act.replacement), 9u);

  const LinkView& view = engine.view(0);
  ASSERT_EQ(view.events.size(), 3u);
  EXPECT_EQ(view.events[0].dir, LinkEvent::Dir::kQueryIn);
  EXPECT_EQ(view.events[0].ordinal, 0u);
  EXPECT_EQ(view.events[1].ordinal, 1u);
  EXPECT_EQ(view.events[1].at_us, 250u);
  EXPECT_EQ(view.events[2].dir, LinkEvent::Dir::kAnswerOut);
  EXPECT_EQ(view.events[2].ordinal, 0u);
  ASSERT_NE(view.last_query(), nullptr);
  EXPECT_EQ(view.last_query()->payload, Bytes{8});

  EXPECT_EQ(engine.stats(0).queries_observed, 2u);
  EXPECT_EQ(engine.stats(0).answers_forged, 1u);
  EXPECT_EQ(engine.stats(2).queries_observed, 0u);
  EXPECT_EQ(engine.total_stats().answers_forged, 1u);
}

TEST(AdversaryEngineTest, CrashAtWorstTimeCrashesCoalitionInLockstep) {
  AdversaryEngine engine(std::make_shared<CrashAtWorstTimeStrategy>(1), {0, 1});

  // Attempt 0: both members honest.
  engine.observe_query(0, Bytes{1}, 0);
  engine.observe_query(1, Bytes{1}, 0);
  EXPECT_EQ(engine.intercept_answer(0, field_answer(1), 0).kind,
            AdversaryAction::Kind::kSendHonest);
  EXPECT_EQ(engine.intercept_answer(1, field_answer(1), 0).kind,
            AdversaryAction::Kind::kSendHonest);

  // Attempt 1 reaches only server 0 (server 1 was held back as a spare), yet
  // the coalition-wide trigger silences both.
  engine.observe_query(0, Bytes{2}, 0);
  EXPECT_EQ(engine.intercept_answer(0, field_answer(2), 0).kind,
            AdversaryAction::Kind::kDrop);
  EXPECT_EQ(engine.intercept_answer(1, field_answer(2), 0).kind,
            AdversaryAction::Kind::kDrop);
}

TEST(AdversaryEngineTest, EquivocateIsHonestFirstThenForges) {
  const std::uint64_t p = Fp64::kMersenne61;
  AdversaryEngine engine(std::make_shared<EquivocateAcrossRetriesStrategy>(p, 3), {0});

  engine.observe_query(0, Bytes{1}, 0);
  EXPECT_EQ(engine.intercept_answer(0, field_answer(10), 0).kind,
            AdversaryAction::Kind::kSendHonest);

  engine.observe_query(0, Bytes{2}, 0);
  const AdversaryAction retry = engine.intercept_answer(0, field_answer(10), 0);
  EXPECT_EQ(retry.kind, AdversaryAction::Kind::kReplace);
  EXPECT_EQ(read_field_answer(retry.replacement), 13u);
}

TEST(AdversaryEngineTest, TargetedStraggleDelaysOnlyHedgeDispatches) {
  AdversaryEngine engine(std::make_shared<TargetedStraggleStrategy>(500, 9000), {0, 1});

  // Server 0 is a primary (earliest query); server 1's query lands 800us
  // later — past the 500us gap, so it is recognized as a hedge dispatch.
  engine.observe_query(0, Bytes{1}, 1000);
  engine.observe_query(1, Bytes{1}, 1800);
  EXPECT_EQ(engine.intercept_answer(0, field_answer(1), 1000).kind,
            AdversaryAction::Kind::kSendHonest);
  const AdversaryAction hedge = engine.intercept_answer(1, field_answer(1), 1800);
  EXPECT_EQ(hedge.kind, AdversaryAction::Kind::kDelay);
  EXPECT_EQ(hedge.delay_us, 9000u);

  // Untimed networks stamp everything 0: no gap, no deviation ever.
  AdversaryEngine untimed(std::make_shared<TargetedStraggleStrategy>(500, 9000), {0, 1});
  untimed.observe_query(0, Bytes{1}, 0);
  untimed.observe_query(1, Bytes{1}, 0);
  EXPECT_EQ(untimed.intercept_answer(1, field_answer(1), 0).kind,
            AdversaryAction::Kind::kSendHonest);
}

TEST(AdversaryEngineTest, SelectiveFailureCountsMatchesAndMisses) {
  auto strategy = std::make_shared<SelectiveFailureStrategy>(
      SelectiveFailureStrategy::byte_mask(0, 0x01), AdversaryAction::drop());
  AdversaryEngine engine(strategy, {0});

  engine.observe_query(0, Bytes{0x01}, 0);  // low bit set: kill
  EXPECT_EQ(engine.intercept_answer(0, field_answer(1), 0).kind,
            AdversaryAction::Kind::kDrop);
  engine.observe_query(0, Bytes{0x02}, 0);  // low bit clear: honest
  EXPECT_EQ(engine.intercept_answer(0, field_answer(1), 0).kind,
            AdversaryAction::Kind::kSendHonest);

  EXPECT_EQ(strategy->matches(), 1u);
  EXPECT_EQ(strategy->misses(), 1u);
}

TEST(AdversaryEngineTest, MakeStrategyIsDeterministicPerSeed) {
  const std::uint64_t p = Fp64::kMersenne61;
  for (std::size_t i = 0; i < kNumStrategyKinds; ++i) {
    const auto kind = static_cast<StrategyKind>(i);
    Prg a("strategy-seed"), b("strategy-seed");
    const auto sa = make_strategy(kind, p, a);
    const auto sb = make_strategy(kind, p, b);
    ASSERT_NE(sa, nullptr);
    EXPECT_STREQ(sa->name(), strategy_kind_name(kind));

    // Same seed => identical decisions on an identical view.
    AdversaryEngine ea(sa, {0});
    AdversaryEngine eb(sb, {0});
    for (std::size_t q = 0; q < 3; ++q) {
      const Bytes query{static_cast<std::uint8_t>(0x35 + q)};
      ea.observe_query(0, query, 100 * q);
      eb.observe_query(0, query, 100 * q);
      const AdversaryAction aa = ea.intercept_answer(0, field_answer(77), 100 * q);
      const AdversaryAction ab = eb.intercept_answer(0, field_answer(77), 100 * q);
      EXPECT_EQ(aa.kind, ab.kind) << strategy_kind_name(kind) << " q=" << q;
      EXPECT_EQ(aa.replacement, ab.replacement);
      EXPECT_EQ(aa.delay_us, ab.delay_us);
    }
  }
}

TEST(AdversaryEngineTest, DeprioritizeBlamedSendsLiarsToTheBack) {
  std::vector<ServerReport> verdicts(5);
  verdicts[0].blame = Blame::kByzantine;
  verdicts[1].blame = Blame::kNone;
  verdicts[2].blame = Blame::kCrashed;
  verdicts[3].blame = Blame::kStraggler;
  verdicts[4].blame = Blame::kNone;

  const auto order = detail::deprioritize_blamed({0, 1, 2, 3, 4}, verdicts);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 4, 3, 2, 0}));

  // Stable within a blame class: the incoming healthy-first order survives.
  const auto rotated = detail::deprioritize_blamed({4, 3, 2, 1, 0}, verdicts);
  EXPECT_EQ(rotated, (std::vector<std::size_t>{4, 1, 3, 2, 0}));
}

// ---------------------------------------------------------------------------
// Network interposition and the metering contract.

TEST(AdversaryInterpositionTest, SimNetworkHonorsTheMeteringContract) {
  const std::uint64_t p = Fp64::kMersenne61;

  obs::Tracer::global().set_enabled(true);
  obs::Tracer::global().reset();

  // Forged answer: a real transmission, metered at the replacement's size.
  {
    AdversaryEngine engine(std::make_shared<ConsistentLieStrategy>(p, 5), {0});
    SimStarNetwork net(1, SimConfig{});
    net.set_adversary(&engine);
    net.client_send(0, Bytes{1, 2, 3});
    (void)net.server_receive(0);
    net.server_send(0, field_answer(40));
    EXPECT_EQ(read_field_answer(net.client_receive(0)), 45u);
    EXPECT_EQ(net.stats().server_to_client_bytes, 8u);
    EXPECT_EQ(engine.view(0).queries_seen, 1u);
  }

  // Dropped answer: byzantine silence — nothing transmitted, nothing
  // metered, and the client's receive times out like a crash.
  {
    auto strategy = std::make_shared<SelectiveFailureStrategy>(
        [](BytesView) { return true; }, AdversaryAction::drop());
    AdversaryEngine engine(strategy, {0});
    SimStarNetwork net(1, SimConfig{});
    net.set_adversary(&engine);
    net.client_send(0, Bytes{7});
    (void)net.server_receive(0);
    net.server_send(0, field_answer(40));
    EXPECT_EQ(net.stats().server_to_client_bytes, 0u);
    EXPECT_EQ(net.stats().server_to_client_messages, 0u);
    EXPECT_THROW((void)net.client_receive(0), ServerUnavailable);
    EXPECT_EQ(strategy->matches(), 1u);
  }

  // Delayed answer: metered normally, ready `delay_us` late — a tight
  // deadline misses it (DeadlineMiss, not a crash), a patient one lands it.
  {
    AdversaryEngine engine(std::make_shared<TargetedStraggleStrategy>(0, 5000), {0, 1});
    SimStarNetwork net(2, SimConfig{});
    net.set_adversary(&engine);
    // Server 1's query at t=0 primes the coalition's earliest-query clock;
    // server 0's query at t=100 then reads as a late (hedge) dispatch.
    net.client_send(1, Bytes{6});
    (void)net.server_receive(1);
    net.clock().advance_by(100);
    net.client_send(0, Bytes{7});
    (void)net.server_receive(0);
    net.server_send(0, field_answer(40));
    EXPECT_EQ(net.stats().server_to_client_bytes, 8u);
    net.set_deadline(net.clock().now_us() + 1000);
    EXPECT_THROW((void)net.client_receive(0), DeadlineMiss);
    net.set_deadline(SimStarNetwork::kNoDeadline);
    EXPECT_EQ(read_field_answer(net.client_receive(0)), 40u);
    EXPECT_GE(net.clock().now_us(), 5100u);
  }

  const obs::OpCounts totals = obs::Tracer::global().totals();
  obs::Tracer::global().set_enabled(false);
  EXPECT_EQ(totals[static_cast<std::size_t>(obs::Op::kAdvForgedAnswer)], 1u);
  EXPECT_EQ(totals[static_cast<std::size_t>(obs::Op::kAdvDroppedAnswer)], 1u);
  EXPECT_EQ(totals[static_cast<std::size_t>(obs::Op::kAdvDelayedAnswer)], 1u);
}

TEST(AdversaryInterpositionTest, FaultyNetworkDropsAndDelayMarks) {
  // Drop: the client sees a plain timeout (crash-indistinguishable).
  {
    auto strategy = std::make_shared<SelectiveFailureStrategy>(
        [](BytesView) { return true; }, AdversaryAction::drop());
    AdversaryEngine engine(strategy, {0});
    FaultyStarNetwork net(1, FaultPlan{});
    net.set_adversary(&engine);
    net.client_send(0, Bytes{7});
    (void)net.server_receive(0);
    net.server_send(0, field_answer(9));
    EXPECT_EQ(net.stats().server_to_client_bytes, 0u);
    EXPECT_THROW((void)net.client_receive(0), ServerUnavailable);
    EXPECT_TRUE(net.idle());
  }

  // Delay degrades to the untimed one-attempt mark: first receive throws
  // DeadlineMiss, the retry gets the answer.
  {
    auto strategy = std::make_shared<SelectiveFailureStrategy>(
        [](BytesView) { return true; }, AdversaryAction::delay(9000));
    AdversaryEngine engine(strategy, {0});
    FaultyStarNetwork net(1, FaultPlan{});
    net.set_adversary(&engine);
    net.client_send(0, Bytes{7});
    (void)net.server_receive(0);
    net.server_send(0, field_answer(9));
    EXPECT_EQ(net.stats().server_to_client_bytes, 8u);
    EXPECT_THROW((void)net.client_receive(0), DeadlineMiss);
    EXPECT_EQ(read_field_answer(net.client_receive(0)), 9u);
  }
}

// ---------------------------------------------------------------------------
// Soundness tightness: the byzantine-budget quorum guard is exactly what
// stands between a consistent lie and a silent wrong decode.

TEST(AdversarySoundnessTest, AblatedQuorumGuardAdmitsASilentWrongDecode) {
  const Fp64 field(Fp64::kMersenne61);
  const auto db = test_database(64);
  const std::vector<std::size_t> indices = {5, 41};
  const std::uint64_t expected = field.add(db[5], db[41]);

  // k = 9 for the degree-6 sum polynomial: d+1+2e+spares with e = 1 lie and
  // 2 hedge spares. Server 0 lies consistently; servers 5 and 6 are slow
  // enough to miss the hedge window, so the hedged client tops its quorum
  // back up from the two fast spares.
  const std::size_t k = 9;
  const spfe::protocols::MultiServerSumSpfe proto(field, 64, 2, k, 1);
  SimConfig cfg;
  cfg.seed = Prg("ablation-witness").fork_seed("latency");
  cfg.profiles.assign(k, ServerProfile{100, 0, 0, 20});
  cfg.profiles[5] = ServerProfile{50'000, 0, 0, 20};
  cfg.profiles[6] = ServerProfile{50'000, 0, 0, 20};

  const auto run_with_budget = [&](std::size_t byzantine_budget) {
    AdversaryEngine engine(
        std::make_shared<ConsistentLieStrategy>(field.modulus(), 12345), {0});
    SimStarNetwork net(k, cfg);
    net.set_adversary(&engine);
    RobustConfig rc;
    rc.max_attempts = 2;
    rc.timing.enabled = true;
    rc.timing.attempt_timeout_us = 300'000;
    rc.timing.hedge_timeout_us = 2'000;
    rc.timing.hedge_spares = 2;
    rc.timing.byzantine_budget = byzantine_budget;
    Prg prg("ablation-witness-proto");
    const auto seed = prg.fork_seed("spir");
    const RobustResult res = proto.run_robust(net, db, indices, seed, prg, rc);
    EXPECT_TRUE(net.idle());
    return res;
  };

  // Budget 0 (guard ablated): the early decode fires at the bare d+1 = 7
  // quorum, where Berlekamp-Welch has zero error capacity and interpolation
  // fits ANY seven points — including the liar's. The run "succeeds", the
  // report sees nothing wrong, and the value is silently incorrect: the
  // within-budget adversary extracted a wrong decode from an under-guarded
  // client.
  const RobustResult ablated = run_with_budget(0);
  EXPECT_TRUE(ablated.report.success);
  EXPECT_NE(ablated.value, expected) << "a consistent lie at the bare interpolation quorum "
                                        "must decode to a wrong-but-consistent polynomial";
  EXPECT_EQ(ablated.report.errors_corrected, 0u);
  EXPECT_EQ(ablated.report.verdicts[0].fate, ServerFate::kOk)
      << "the silent wrong decode leaves no evidence against the liar";

  // Budget 1 (guard on): the quorum rises to d+1+2 = 9, hedging is disabled
  // (no server can be spared), the client waits for all nine answers, and
  // Berlekamp-Welch corrects the lie exactly.
  const RobustResult guarded = run_with_budget(1);
  EXPECT_TRUE(guarded.report.success);
  EXPECT_EQ(guarded.value, expected);
  EXPECT_EQ(guarded.report.errors_corrected, 1u);
  EXPECT_EQ(guarded.report.verdicts[0].fate, ServerFate::kCorrected);
  EXPECT_EQ(guarded.report.verdicts[0].blame, Blame::kByzantine);
}

TEST(AdversarySoundnessTest, OverBudgetLiarCoalitionForcesTypedErrorNeverWrong) {
  const Fp64 field(Fp64::kMersenne61);
  const auto db = test_database(64);
  const std::vector<std::size_t> indices = {5, 41};
  const std::uint64_t expected = field.add(db[5], db[41]);

  // Provisioned for e = 1 lie (k = d+1+2 = 9) but facing an (e+1)-liar
  // coalition sharing one delta: the corrupted points lie on a consistent
  // wrong polynomial, yet with s = 9 survivors neither P (distance 2) nor
  // P + delta (distance 7) is within the e_cap = 1 budget — every attempt
  // must fail closed into the typed error. The tightness is two-sided: the
  // same provisioning with exactly e liars corrects them (checked below).
  const std::size_t k = 9;
  const spfe::protocols::MultiServerSumSpfe proto(field, 64, 2, k, 1);

  {
    AdversaryEngine engine(
        std::make_shared<ConsistentLieStrategy>(field.modulus(), 987654321), {0, 1});
    FaultyStarNetwork net(k, FaultPlan{});
    net.set_adversary(&engine);
    RobustConfig rc;
    rc.max_attempts = 3;
    Prg prg("two-liars");
    const auto seed = prg.fork_seed("spir");
    try {
      const RobustResult res = proto.run_robust(net, db, indices, seed, prg, rc);
      FAIL() << "an over-budget coalition must never produce a value, got " << res.value;
    } catch (const RobustProtocolError& err) {
      EXPECT_FALSE(err.report().success);
      EXPECT_EQ(err.report().attempts, 3u);
      EXPECT_FALSE(err.report().failure_reason.empty());
    }
    EXPECT_TRUE(net.idle());
    EXPECT_EQ(engine.total_stats().answers_forged, 2u * 3u);
  }

  // Exactly e liars at the same provisioning: corrected, exact, blamed.
  {
    AdversaryEngine engine(
        std::make_shared<ConsistentLieStrategy>(field.modulus(), 987654321), {0});
    FaultyStarNetwork net(k, FaultPlan{});
    net.set_adversary(&engine);
    Prg prg("one-liar");
    const auto seed = prg.fork_seed("spir");
    const RobustResult res = proto.run_robust(net, db, indices, seed, prg);
    EXPECT_EQ(res.value, expected);
    EXPECT_EQ(res.report.errors_corrected, 1u);
    EXPECT_EQ(res.report.verdicts[0].fate, ServerFate::kCorrected);
    EXPECT_EQ(res.report.verdicts[0].blame, Blame::kByzantine);
    EXPECT_TRUE(net.idle());
  }
}

// ---------------------------------------------------------------------------
// Soundness sweep: any within-budget strategy, thousands of schedules.

struct AdversaryOutcome {
  bool ok = false;
  std::uint64_t value = 0;
  std::string summary;
  StrategyKind kind = StrategyKind::kConsistentLie;
};

// One timed robust run against a seeded adversary: the label draws the
// strategy kind and parameters, the coalition, the weather, and the timing
// policy — always provisioning k so the coalition stays within budget
// (lying strategies consume the byzantine budget e, silent/slow ones the
// crash budget c).
AdversaryOutcome run_adversary_schedule(const std::string& label) {
  const Fp64 field(Fp64::kMersenne61);
  const auto db = test_database(64);
  const std::vector<std::size_t> indices = {5, 41};

  Prg meta(label);
  const auto kind = static_cast<StrategyKind>(meta.uniform(kNumStrategyKinds));
  const std::size_t coalition_size = 1 + meta.uniform(2);
  const bool lies = strategy_lies(kind);
  const std::size_t e = lies ? coalition_size : 0;
  const std::size_t c = lies ? 0 : coalition_size;
  const std::size_t spares = meta.uniform(3);
  const std::size_t k = provisioned_servers(6, e, c, spares);

  // Coalition membership: a uniform subset, not always the low indices.
  std::vector<std::size_t> ids(k);
  for (std::size_t i = 0; i < k; ++i) ids[i] = i;
  for (std::size_t i = k; i > 1; --i) std::swap(ids[i - 1], ids[meta.uniform(i)]);
  const std::vector<std::size_t> controlled(
      ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(coalition_size));

  SimConfig cfg;
  cfg.seed = meta.fork_seed("latency");
  cfg.profiles.resize(k);
  for (auto& p : cfg.profiles) {
    p.base_us = 50 + meta.uniform(200);
    p.jitter_us = meta.uniform(150);
    p.straggle_permille = meta.uniform(100);
    p.straggle_factor = 5 + meta.uniform(20);
  }

  Prg strat_prg = meta.fork("strategy");
  AdversaryEngine engine(make_strategy(kind, field.modulus(), strat_prg), controlled);

  RobustConfig rc;
  rc.max_attempts = 4;
  rc.timing.enabled = true;
  rc.timing.attempt_timeout_us = 30'000;
  rc.timing.byzantine_budget = e;
  rc.timing.hedge_spares = spares;
  rc.timing.hedge_timeout_us = spares == 0 ? 0 : 300 + meta.uniform(700);
  rc.timing.backoff_seed = meta.fork_seed("backoff");

  const spfe::protocols::MultiServerSumSpfe proto(field, 64, 2, k, 1);
  SimStarNetwork net(k, cfg);
  net.set_adversary(&engine);
  Prg proto_prg = meta.fork("proto");
  const auto seed = proto_prg.fork_seed("spir");

  AdversaryOutcome out;
  out.kind = kind;
  const auto check_byzantine_blame = [&](const RobustnessReport& report) {
    // Blame soundness: with no wire faults in play, only coalition members
    // can ever be caught byzantine — on every attempt, not just the last.
    for (const AttemptRecord& rec : report.history) {
      for (std::size_t s = 0; s < rec.verdicts.size(); ++s) {
        if (rec.verdicts[s].blame == Blame::kByzantine) {
          EXPECT_TRUE(engine.controls(s))
              << label << ": honest server " << s << " blamed byzantine\n"
              << report.summary();
        }
      }
    }
  };
  try {
    const RobustResult res = proto.run_robust(net, db, indices, seed, proto_prg, rc);
    out.ok = true;
    out.value = res.value;
    out.summary = res.report.summary();
    check_byzantine_blame(res.report);
  } catch (const RobustProtocolError& err) {
    out.summary = err.report().summary();
    EXPECT_FALSE(err.report().success) << label;
    EXPECT_FALSE(err.report().failure_reason.empty()) << label;
    check_byzantine_blame(err.report());
  }
  EXPECT_TRUE(net.idle()) << label;
  return out;
}

TEST(AdversarySoundnessTest, ThousandsOfAdversarialSchedulesNeverYieldAWrongValue) {
  const Fp64 field(Fp64::kMersenne61);
  const auto db = test_database(64);
  const std::uint64_t expected = field.add(db[5], db[41]);
  constexpr std::size_t kSchedules = 2000;
  std::size_t successes = 0;
  std::vector<std::size_t> per_kind(kNumStrategyKinds, 0);
  for (std::size_t i = 0; i < kSchedules; ++i) {
    const std::string label = "adversary-" + std::to_string(i);
    const AdversaryOutcome out = run_adversary_schedule(label);
    per_kind[static_cast<std::size_t>(out.kind)]++;
    if (out.ok) {
      ASSERT_EQ(out.value, expected) << label << "\n" << out.summary;
      ++successes;
    }
  }
  // Every strategy kind must actually have been exercised.
  for (std::size_t i = 0; i < kNumStrategyKinds; ++i) {
    EXPECT_GT(per_kind[i], kSchedules / 20)
        << strategy_kind_name(static_cast<StrategyKind>(i)) << " undersampled";
  }
  // The adversary stays within the provisioned budget, so the overwhelming
  // majority of schedules must decode despite it (the rest fail closed).
  EXPECT_GT(successes, (3 * kSchedules) / 4)
      << "only " << successes << " of " << kSchedules << " schedules decoded";
}

// ---------------------------------------------------------------------------
// Selective-failure privacy harness.

struct KillTally {
  std::uint64_t matches = 0;  // attempts the adversary chose to kill
  std::uint64_t misses = 0;   // attempts it let through

  double kill_rate() const {
    const double total = static_cast<double>(matches + misses);
    return total == 0.0 ? 0.0 : static_cast<double>(matches) / total;
  }
};

// Runs `trials` robust PIR retrievals of `index` against a selective-failure
// adversary on server 0 that drops the answer whenever the observed query's
// first byte has its low bit set. Every kill forces a re-randomized retry
// (k = d+1 exactly, so one erasure is fatal to the attempt), handing the
// adversary a fresh observation — the classic amplification loop. Returns
// the adversary's complete decision tally.
KillTally selective_failure_tally(std::size_t index, std::size_t trials) {
  const Fp64 field(Fp64::kMersenne61);
  const spfe::pir::PolyItPir pir(field, 64, 7, 1);
  const auto db = test_database(64);
  KillTally tally;
  for (std::size_t t = 0; t < trials; ++t) {
    auto strategy = std::make_shared<SelectiveFailureStrategy>(
        SelectiveFailureStrategy::byte_mask(0, 0x01), AdversaryAction::drop());
    AdversaryEngine engine(strategy, {0});
    FaultyStarNetwork net(7, FaultPlan{});
    net.set_adversary(&engine);
    RobustConfig rc;
    rc.max_attempts = 10;
    // Same per-trial seed for every index arm: any kill-rate difference is
    // attributable to the secret alone, not the randomness stream.
    Prg prg("sf-harness-" + std::to_string(t));
    try {
      const RobustResult res = pir.run_robust(net, db, index, std::nullopt, prg, rc);
      EXPECT_EQ(res.value, db[index]);
    } catch (const RobustProtocolError&) {
      // All attempts killed: fail-closed, acceptable (and rare).
    }
    tally.matches += strategy->matches();
    tally.misses += strategy->misses();
  }
  return tally;
}

TEST(SelectiveFailurePrivacyTest, KillDecisionsAreIndependentOfTheSecretIndex) {
  constexpr std::size_t kTrials = 300;
  // Indices chosen adversarially far apart in encoding: all-zero bits vs
  // all-ones bits of the 6-bit index space, plus the two chaos defaults.
  const KillTally t0 = selective_failure_tally(0, kTrials);
  const KillTally t63 = selective_failure_tally(63, kTrials);
  const KillTally t5 = selective_failure_tally(5, kTrials);
  const KillTally t41 = selective_failure_tally(41, kTrials);

  // The adversary did get to express its predicate in both directions.
  for (const KillTally* t : {&t0, &t63, &t5, &t41}) {
    EXPECT_GT(t->matches, 0u);
    EXPECT_GT(t->misses, 0u);
  }

  // Because every attempt's query curve is freshly randomized, the query
  // byte the predicate reads is uniform whatever the secret index is: all
  // kill rates sit near 1/2 and none is distinguishable from another.
  // (Deterministic seeds: these are exact replays, not flaky statistics.)
  const std::vector<double> rates = {t0.kill_rate(), t63.kill_rate(), t5.kill_rate(),
                                     t41.kill_rate()};
  for (double r : rates) {
    EXPECT_GT(r, 0.38) << "kill rate drifted from uniform";
    EXPECT_LT(r, 0.62) << "kill rate drifted from uniform";
  }
  for (double a : rates) {
    for (double b : rates) {
      EXPECT_LT(std::abs(a - b), 0.10)
          << "kill rates depend on the secret index: " << a << " vs " << b;
    }
  }
}

// Deliberately leaky strawman: the "query" carries the secret's low bit
// verbatim and retries never re-randomize. The same harness metric that
// clears the real protocol must flag this one loudly.
double leaky_protocol_kill_rate(std::uint64_t secret_bit, std::size_t trials) {
  const Fp64 field(Fp64::kMersenne61);
  KillTally tally;
  for (std::size_t t = 0; t < trials; ++t) {
    auto strategy = std::make_shared<SelectiveFailureStrategy>(
        SelectiveFailureStrategy::byte_mask(0, 0x01), AdversaryAction::drop());
    AdversaryEngine engine(strategy, {0});
    FaultyStarNetwork net(2, FaultPlan{});
    net.set_adversary(&engine);
    RobustConfig rc;
    const auto make_queries = [&](std::size_t, std::vector<std::uint64_t>& abscissae) {
      abscissae = {1, 2};
      const Bytes leak{static_cast<std::uint8_t>(secret_bit)};
      return std::vector<Bytes>{leak, leak};
    };
    const auto server_eval = [&](std::size_t, std::size_t, Bytes) {
      return field_answer(42);
    };
    const auto parse = [&](const Bytes& a) { return read_field_answer(a); };
    const auto [value, report] =
        run_robust_star(field, net, /*degree=*/0, rc, make_queries, server_eval, parse);
    EXPECT_EQ(value, 42u);
    EXPECT_TRUE(report.success);
    tally.matches += strategy->matches();
    tally.misses += strategy->misses();
  }
  return tally.kill_rate();
}

TEST(SelectiveFailurePrivacyTest, LeakyProtocolIsFlaggedByTheSameHarness) {
  const double rate0 = leaky_protocol_kill_rate(0, 16);
  const double rate1 = leaky_protocol_kill_rate(1, 16);
  // The un-rerandomized query hands the adversary the secret bit: the kill
  // pattern separates the two secrets completely — far beyond the 0.10
  // independence threshold the real protocol satisfies above.
  EXPECT_DOUBLE_EQ(rate0, 0.0);
  EXPECT_DOUBLE_EQ(rate1, 1.0);
  EXPECT_GT(std::abs(rate1 - rate0), 0.10);
}

TEST(SelectiveFailurePrivacyTest, HarnessTalliesAreThreadCountInvariant) {
  constexpr std::size_t kTrials = 40;
  ThreadPool::set_global_threads(1);
  const KillTally base = selective_failure_tally(41, kTrials);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    ThreadPool::set_global_threads(threads);
    const KillTally other = selective_failure_tally(41, kTrials);
    EXPECT_EQ(base.matches, other.matches) << "threads=" << threads;
    EXPECT_EQ(base.misses, other.misses) << "threads=" << threads;
  }
  ThreadPool::set_global_threads(0);  // back to the SPFE_THREADS default
}

// ---------------------------------------------------------------------------
// Session-level blame plumbing: RsDecoding::agrees -> Blame -> blame_tally.

TEST(AdversarySessionTest, SessionBlameTallyPinsTheLiar) {
  const Fp64 field(Fp64::kMersenne61);
  std::vector<std::uint64_t> db(64);
  for (std::size_t i = 0; i < db.size(); ++i) db[i] = i + 1;
  const std::size_t k = provisioned_servers(6, 1, 0);  // 9: room for one lie

  AdversaryEngine engine(std::make_shared<ConsistentLieStrategy>(field.modulus(), 77), {3});
  FaultyStarNetwork net(k, FaultPlan{});
  net.set_adversary(&engine);

  spfe::protocols::RobustStatsSession session(field, 64, 2, k, 1,
                                              Prg("blame-session").fork_seed("session"));
  Prg seeder("blame-session-spir");
  for (std::size_t q = 0; q < 3; ++q) {
    const std::vector<std::size_t> indices = {(q * 3) % 64, (q * 5 + 7) % 64};
    const auto res =
        session.sum(net, db, indices, seeder.fork_seed("q" + std::to_string(q)));
    EXPECT_EQ(res.value, db[indices[0]] + db[indices[1]]) << "query " << q;
    EXPECT_EQ(res.report.verdicts[3].fate, ServerFate::kCorrected) << "query " << q;
  }

  // Every query caught server 3 lying; nobody else drew byzantine blame.
  const auto& tally = session.blame_tally();
  ASSERT_EQ(tally.size(), k);
  EXPECT_EQ(tally[3].byzantine, 3u);
  EXPECT_EQ(tally[3].total(), 3u);
  for (std::size_t s = 0; s < k; ++s) {
    if (s != 3) {
      EXPECT_EQ(tally[s].total(), 0u) << "server " << s;
    }
  }
  // And the health tracker turned the blame into demotion pressure.
  EXPECT_EQ(session.health().ranked_order().back(), 3u);
  EXPECT_GE(session.health().demerits(3), ServerHealthTracker::kCorrectedDemerit);
  EXPECT_TRUE(net.idle());
}

}  // namespace
