#include <gtest/gtest.h>

#include "bignum/primes.h"
#include "common/error.h"
#include "ot/base_ot.h"
#include "ot/group.h"
#include "ot/ot_extension.h"

namespace spfe::ot {
namespace {

using bignum::BigInt;

TEST(SchnorrGroup, EmbeddedParamsAreSafePrimes) {
  crypto::Prg prg("group-check");
  for (const SchnorrGroup& g : {SchnorrGroup::rfc_like_512(), SchnorrGroup::rfc_like_1024()}) {
    EXPECT_TRUE(bignum::is_probable_prime(g.p(), prg, 24));
    EXPECT_TRUE(bignum::is_probable_prime(g.q(), prg, 24));
    EXPECT_EQ(g.q() * BigInt(2) + BigInt(1), g.p());
    EXPECT_TRUE(g.is_element(g.g()));
  }
}

TEST(SchnorrGroup, GeneratorHasOrderQ) {
  const SchnorrGroup g = SchnorrGroup::rfc_like_512();
  EXPECT_EQ(g.exp_g(g.q()), BigInt(1));
  EXPECT_NE(g.exp_g(BigInt(1)), BigInt(1));
}

TEST(SchnorrGroup, ExpAndInverse) {
  const SchnorrGroup g = SchnorrGroup::rfc_like_512();
  crypto::Prg prg("group-exp");
  const BigInt a = g.random_exponent(prg);
  const BigInt b = g.random_exponent(prg);
  // g^a * g^b = g^(a+b)
  EXPECT_EQ(g.mul(g.exp_g(a), g.exp_g(b)), g.exp_g((a + b).mod_floor(g.q())));
  const BigInt x = g.exp_g(a);
  EXPECT_EQ(g.mul(x, g.inv(x)), BigInt(1));
}

TEST(SchnorrGroup, HashToGroupLandsInSubgroup) {
  const SchnorrGroup g = SchnorrGroup::rfc_like_512();
  const BigInt h1 = g.hash_to_group("label-1");
  const BigInt h2 = g.hash_to_group("label-2");
  EXPECT_TRUE(g.is_element(h1));
  EXPECT_TRUE(g.is_element(h2));
  EXPECT_NE(h1, h2);
  EXPECT_EQ(h1, g.hash_to_group("label-1"));  // deterministic
}

TEST(BaseOt, TransfersChosenMessage) {
  const BaseOt ot(SchnorrGroup::rfc_like_512());
  crypto::Prg prg("base-ot");
  const std::vector<bool> choices = {false, true, true, false, true};
  std::vector<std::pair<Bytes, Bytes>> messages;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    messages.push_back({prg.bytes(16), prg.bytes(16)});
  }
  std::vector<OtReceiverState> states;
  const Bytes query = ot.make_query(choices, states, prg);
  const Bytes answer = ot.answer(query, messages, prg);
  const std::vector<Bytes> got = ot.decode(answer, states);
  ASSERT_EQ(got.size(), choices.size());
  for (std::size_t i = 0; i < choices.size(); ++i) {
    const Bytes& expect = choices[i] ? messages[i].second : messages[i].first;
    const Bytes& other = choices[i] ? messages[i].first : messages[i].second;
    EXPECT_EQ(got[i], expect) << "instance " << i;
    EXPECT_NE(got[i], other) << "instance " << i;
  }
}

TEST(BaseOt, VariableLengthMessages) {
  const BaseOt ot(SchnorrGroup::rfc_like_512());
  crypto::Prg prg("base-ot-len");
  const std::vector<bool> choices = {true, false};
  std::vector<std::pair<Bytes, Bytes>> messages = {{prg.bytes(5), prg.bytes(5)},
                                                   {prg.bytes(100), prg.bytes(100)}};
  std::vector<OtReceiverState> states;
  const Bytes answer = ot.answer(ot.make_query(choices, states, prg), messages, prg);
  const auto got = ot.decode(answer, states);
  EXPECT_EQ(got[0], messages[0].second);
  EXPECT_EQ(got[1], messages[1].first);
}

TEST(BaseOt, MismatchedCountsThrow) {
  const BaseOt ot(SchnorrGroup::rfc_like_512());
  crypto::Prg prg("base-ot-bad");
  std::vector<OtReceiverState> states;
  const Bytes query = ot.make_query({true}, states, prg);
  std::vector<std::pair<Bytes, Bytes>> two = {{Bytes{1}, Bytes{2}}, {Bytes{3}, Bytes{4}}};
  EXPECT_THROW(ot.answer(query, two, prg), ProtocolError);
  std::vector<std::pair<Bytes, Bytes>> uneven = {{Bytes{1}, Bytes{2, 3}}};
  EXPECT_THROW(ot.answer(query, uneven, prg), InvalidArgument);
}

TEST(OtExtension, TransfersManyMessages) {
  const SchnorrGroup group = SchnorrGroup::rfc_like_512();
  crypto::Prg sender_prg("ext-sender");
  crypto::Prg receiver_prg("ext-receiver");
  crypto::Prg data_prg("ext-data");

  constexpr std::size_t kN = 300;
  std::vector<bool> choices(kN);
  std::vector<std::pair<Bytes, Bytes>> messages(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    choices[i] = data_prg.coin();
    messages[i] = {data_prg.bytes(16), data_prg.bytes(16)};
  }

  OtExtensionSender sender(group);
  OtExtensionReceiver receiver(group, choices);
  const Bytes m1 = sender.start(sender_prg);
  const Bytes m2 = receiver.respond(m1, receiver_prg);
  const Bytes m3 = sender.answer(m2, messages);
  const std::vector<Bytes> got = receiver.finish(m3);

  ASSERT_EQ(got.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(got[i], choices[i] ? messages[i].second : messages[i].first) << i;
  }
}

TEST(OtExtension, OddBatchSizesAndLongerMessages) {
  const SchnorrGroup group = SchnorrGroup::rfc_like_512();
  crypto::Prg sprg("s"), rprg("r"), dprg("d");
  for (const std::size_t n : {1u, 7u, 65u}) {
    std::vector<bool> choices(n);
    std::vector<std::pair<Bytes, Bytes>> messages(n);
    for (std::size_t i = 0; i < n; ++i) {
      choices[i] = dprg.coin();
      messages[i] = {dprg.bytes(33), dprg.bytes(33)};
    }
    OtExtensionSender sender(group);
    OtExtensionReceiver receiver(group, choices);
    const Bytes m3 = sender.answer(receiver.respond(sender.start(sprg), rprg), messages);
    const auto got = receiver.finish(m3);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], choices[i] ? messages[i].second : messages[i].first);
    }
  }
}

TEST(OtExtension, ValidatesState) {
  const SchnorrGroup group = SchnorrGroup::rfc_like_512();
  OtExtensionSender sender(group);
  std::vector<std::pair<Bytes, Bytes>> one = {{Bytes{1}, Bytes{2}}};
  EXPECT_THROW(sender.answer(Bytes{}, one), ProtocolError);
  EXPECT_THROW(OtExtensionReceiver(group, {}), InvalidArgument);
}

}  // namespace
}  // namespace spfe::ot
