#include <gtest/gtest.h>

#include "common/error.h"
#include "spfe/multiserver.h"

namespace spfe::protocols {
namespace {

using circuits::Formula;
using field::Fp64;

std::vector<std::uint64_t> bit_db(std::size_t n, std::uint64_t pattern) {
  std::vector<std::uint64_t> db(n);
  for (std::size_t i = 0; i < n; ++i) db[i] = (pattern >> (i % 64)) & 1;
  return db;
}

class MultiServerFormulaTest : public ::testing::Test {
 protected:
  MultiServerFormulaTest() : field_(Fp64::kMersenne61), prg_("ms-formula") {}

  std::uint64_t run_formula(const Formula& f, std::size_t n,
                            const std::vector<std::uint64_t>& db,
                            const std::vector<std::size_t>& indices, std::size_t t,
                            bool spir) {
    const std::size_t k = MultiServerFormulaSpfe::min_servers(f, n, t);
    const MultiServerFormulaSpfe proto(field_, f, n, k, t);
    net::StarNetwork net(k);
    std::optional<crypto::Prg::Seed> seed;
    if (spir) seed = crypto::Prg::random_seed();
    return proto.run(net, db, indices, seed, prg_);
  }

  Fp64 field_;
  crypto::Prg prg_;
};

TEST_F(MultiServerFormulaTest, AndOfTwoBits) {
  const Formula f = Formula::parse("x0 & x1");
  constexpr std::size_t kN = 16;
  const auto db = bit_db(kN, 0xF0F0);
  for (const auto& [i0, i1] : std::vector<std::pair<std::size_t, std::size_t>>{
           {0, 1}, {4, 5}, {3, 12}, {15, 14}}) {
    const bool expect = db[i0] && db[i1];
    EXPECT_EQ(run_formula(f, kN, db, {i0, i1}, 1, false), expect ? 1u : 0u)
        << i0 << "," << i1;
  }
}

TEST_F(MultiServerFormulaTest, ComplexFormulaMatchesPlainEval) {
  const Formula f = Formula::parse("((x0 & x1) | ~x2) ^ x3");
  constexpr std::size_t kN = 32;
  const auto db = bit_db(kN, 0xdeadbeef);
  const std::vector<std::size_t> indices = {3, 17, 8, 30};
  std::vector<bool> args;
  for (const std::size_t i : indices) args.push_back(db[i] != 0);
  EXPECT_EQ(run_formula(f, kN, db, indices, 1, false), f.eval(args) ? 1u : 0u);
}

TEST_F(MultiServerFormulaTest, HigherThreshold) {
  const Formula f = Formula::parse("x0 ^ x1");
  constexpr std::size_t kN = 8;
  const auto db = bit_db(kN, 0b10110100);
  EXPECT_EQ(run_formula(f, kN, db, {2, 5}, 2, false), (db[2] ^ db[5]));
  EXPECT_EQ(run_formula(f, kN, db, {2, 5}, 3, true), (db[2] ^ db[5]));
}

TEST_F(MultiServerFormulaTest, SpirMaskingPreservesResult) {
  const Formula f = Formula::parse("x0 | x1 | x2");
  constexpr std::size_t kN = 64;
  const auto db = bit_db(kN, 1);  // only x_0 is set
  EXPECT_EQ(run_formula(f, kN, db, {0, 10, 20}, 1, true), 1u);
  EXPECT_EQ(run_formula(f, kN, db, {30, 10, 20}, 1, true), 0u);
}

TEST_F(MultiServerFormulaTest, ServerCountFormula) {
  // Theorem 2: k = t * s * ceil(log2 n) + 1 for a formula of size s.
  const Formula f = Formula::parse("(x0 & x1) | x2");  // s = 3
  EXPECT_EQ(MultiServerFormulaSpfe::min_servers(f, 1024, 1), 3 * 10 + 1u);
  EXPECT_EQ(MultiServerFormulaSpfe::min_servers(f, 1024, 2), 2 * 3 * 10 + 1u);
  // Sum (s = 1 leaf): degree = log n.
  EXPECT_EQ(MultiServerSumSpfe::min_servers(1024, 1), 11u);
}

TEST_F(MultiServerFormulaTest, RejectsNonBitDatabase) {
  const Formula f = Formula::parse("x0 & x1");
  const std::size_t k = MultiServerFormulaSpfe::min_servers(f, 8, 1);
  const MultiServerFormulaSpfe proto(field_, f, 8, k, 1);
  net::StarNetwork net(k);
  std::vector<std::uint64_t> db(8, 5);  // not bits
  EXPECT_THROW(proto.run(net, db, {0, 1}, std::nullopt, prg_), InvalidArgument);
}

TEST_F(MultiServerFormulaTest, RejectsTooFewServers) {
  const Formula f = Formula::parse("x0 & x1");
  EXPECT_THROW(MultiServerFormulaSpfe(field_, f, 1024, 10, 1), InvalidArgument);
}

TEST_F(MultiServerFormulaTest, OneRoundExchange) {
  const Formula f = Formula::parse("x0 & x1");
  constexpr std::size_t kN = 16;
  const std::size_t k = MultiServerFormulaSpfe::min_servers(f, kN, 1);
  const MultiServerFormulaSpfe proto(field_, f, kN, k, 1);
  net::StarNetwork net(k);
  const auto db = bit_db(kN, 0xffff);
  proto.run(net, db, {1, 2}, std::nullopt, prg_);
  EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.0);
  EXPECT_TRUE(net.idle());
}

class MultiServerSumTest : public ::testing::Test {
 protected:
  MultiServerSumTest() : field_(Fp64::kMersenne61), prg_("ms-sum") {}

  Fp64 field_;
  crypto::Prg prg_;
};

TEST_F(MultiServerSumTest, SumsSelectedItems) {
  constexpr std::size_t kN = 100, kM = 5, kT = 1;
  const std::size_t k = MultiServerSumSpfe::min_servers(kN, kT);
  const MultiServerSumSpfe proto(field_, kN, kM, k, kT);
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = i * i;
  net::StarNetwork net(k);
  const std::vector<std::size_t> indices = {1, 10, 50, 99, 3};
  std::uint64_t expect = 0;
  for (const std::size_t i : indices) expect += db[i];
  EXPECT_EQ(proto.run(net, db, indices, std::nullopt, prg_), expect);
}

TEST_F(MultiServerSumTest, RepeatedIndicesAllowed) {
  constexpr std::size_t kN = 16, kM = 3, kT = 1;
  const std::size_t k = MultiServerSumSpfe::min_servers(kN, kT);
  const MultiServerSumSpfe proto(field_, kN, kM, k, kT);
  std::vector<std::uint64_t> db(kN, 7);
  net::StarNetwork net(k);
  EXPECT_EQ(proto.run(net, db, {5, 5, 5}, std::nullopt, prg_), 21u);
}

TEST_F(MultiServerSumTest, WithSymmetricPrivacyMask) {
  constexpr std::size_t kN = 64, kM = 4, kT = 2;
  const std::size_t k = MultiServerSumSpfe::min_servers(kN, kT);
  const MultiServerSumSpfe proto(field_, kN, kM, k, kT);
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = 1000 + i;
  net::StarNetwork net(k);
  const std::vector<std::size_t> indices = {0, 21, 42, 63};
  std::uint64_t expect = 0;
  for (const std::size_t i : indices) expect += db[i];
  const auto seed = crypto::Prg::random_seed();
  EXPECT_EQ(proto.run(net, db, indices, seed, prg_), expect);
}

TEST_F(MultiServerSumTest, CommunicationScalesWithServers) {
  // Comm ~ k * (m * log n + 1) field elements (Theorem 2).
  constexpr std::size_t kN = 256, kM = 4, kT = 1;
  const std::size_t k = MultiServerSumSpfe::min_servers(kN, kT);
  const MultiServerSumSpfe proto(field_, kN, kM, k, kT);
  std::vector<std::uint64_t> db(kN, 1);
  net::StarNetwork net(k);
  proto.run(net, db, {0, 1, 2, 3}, std::nullopt, prg_);
  const std::size_t l = 8;  // log2 256
  EXPECT_EQ(net.stats().client_to_server_bytes, k * kM * l * 8);
  EXPECT_EQ(net.stats().server_to_client_bytes, k * 8);
}

}  // namespace
}  // namespace spfe::protocols
