// Unit tests for the fault-injection layer (net/fault.h): fault application
// semantics, crash/timeout behaviour, and exact CommStats metering under
// every fault kind.
#include <gtest/gtest.h>

#include "crypto/prg.h"
#include "net/fault.h"
#include "net/robust.h"

namespace {

using spfe::Bytes;
using spfe::ProtocolError;
using spfe::ServerUnavailable;
using namespace spfe::net;

Bytes msg(std::initializer_list<std::uint8_t> bytes) { return Bytes(bytes); }

TEST(FaultPlanTest, EmptyPlanFindsNothing) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.find(Direction::kClientToServer, 0, 0), nullptr);
  EXPECT_FALSE(plan.crash_point(0).has_value());
}

TEST(FaultPlanTest, LookupIsPerDirectionServerOrdinal) {
  FaultPlan plan;
  plan.add(Direction::kClientToServer, 2, 1, Fault{FaultKind::kDrop, 0, 0x01, 0});
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.num_faults(), 1u);
  ASSERT_NE(plan.find(Direction::kClientToServer, 2, 1), nullptr);
  EXPECT_EQ(plan.find(Direction::kClientToServer, 2, 1)->kind, FaultKind::kDrop);
  EXPECT_EQ(plan.find(Direction::kServerToClient, 2, 1), nullptr);
  EXPECT_EQ(plan.find(Direction::kClientToServer, 1, 1), nullptr);
  EXPECT_EQ(plan.find(Direction::kClientToServer, 2, 0), nullptr);
}

TEST(FaultPlanTest, RejectsNoneDirectionAndZeroMask) {
  FaultPlan plan;
  EXPECT_THROW(plan.add(Direction::kNone, 0, 0, Fault{}), spfe::InvalidArgument);
  Fault zero_mask{FaultKind::kCorruptByte, 0, 0x00, 0};
  EXPECT_THROW(plan.add(Direction::kClientToServer, 0, 0, zero_mask), spfe::InvalidArgument);
}

TEST(FaultPlanTest, RandomPlanDisjointSetsAndDeterministic) {
  spfe::crypto::Prg prg1("fault-plan-seed");
  spfe::crypto::Prg prg2("fault-plan-seed");
  const FaultPlan a = FaultPlan::random(prg1, 10, 2, 3);
  const FaultPlan b = FaultPlan::random(prg2, 10, 2, 3);
  EXPECT_EQ(a.byzantine_servers().size(), 2u);
  EXPECT_EQ(a.unavailable_servers().size(), 3u);
  EXPECT_EQ(a.byzantine_servers(), b.byzantine_servers());
  EXPECT_EQ(a.unavailable_servers(), b.unavailable_servers());
  EXPECT_EQ(a.num_faults(), b.num_faults());
  for (std::size_t bz : a.byzantine_servers()) {
    for (std::size_t un : a.unavailable_servers()) EXPECT_NE(bz, un);
  }
  spfe::crypto::Prg prg3("fault-plan-seed");
  EXPECT_THROW(FaultPlan::random(prg3, 3, 2, 2), spfe::InvalidArgument);
}

TEST(FaultyStarNetworkTest, EmptyPlanBehavesLikePerfectNetwork) {
  StarNetwork perfect(3);
  FaultyStarNetwork faulty(3, FaultPlan{});
  for (std::size_t s = 0; s < 3; ++s) {
    perfect.client_send(s, msg({1, 2, 3}));
    faulty.client_send(s, msg({1, 2, 3}));
  }
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(perfect.server_receive(s), faulty.server_receive(s));
    perfect.server_send(s, msg({9}));
    faulty.server_send(s, msg({9}));
  }
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(perfect.client_receive(s), faulty.client_receive(s));
  }
  EXPECT_EQ(perfect.stats().total_bytes(), faulty.stats().total_bytes());
  EXPECT_EQ(perfect.stats().half_rounds, faulty.stats().half_rounds);
  EXPECT_TRUE(faulty.idle());
}

TEST(FaultyStarNetworkTest, EmptyReceiveThrowsServerUnavailable) {
  FaultyStarNetwork net(2, FaultPlan{});
  EXPECT_THROW(net.server_receive(0), ServerUnavailable);
  EXPECT_THROW(net.client_receive(1), ServerUnavailable);
}

TEST(FaultyStarNetworkTest, DropIsMeteredButNotDelivered) {
  FaultPlan plan;
  plan.add(Direction::kClientToServer, 0, 0, Fault{FaultKind::kDrop, 0, 0x01, 0});
  FaultyStarNetwork net(1, plan);
  net.client_send(0, msg({1, 2, 3, 4}));
  EXPECT_EQ(net.stats().client_to_server_bytes, 4u);
  EXPECT_EQ(net.stats().client_to_server_messages, 1u);
  EXPECT_FALSE(net.server_has_message(0));
  EXPECT_THROW(net.server_receive(0), ServerUnavailable);
  // Only the scheduled ordinal is affected.
  net.client_send(0, msg({5}));
  EXPECT_EQ(net.server_receive(0), msg({5}));
}

TEST(FaultyStarNetworkTest, CorruptByteFlipsExactlyOneByte) {
  FaultPlan plan;
  plan.add(Direction::kServerToClient, 0, 0, Fault{FaultKind::kCorruptByte, 6, 0xFF, 0});
  FaultyStarNetwork net(1, plan);
  net.server_send(0, msg({10, 11, 12, 13}));
  // byte_index is reduced mod the message size: 6 % 4 = 2.
  EXPECT_EQ(net.client_receive(0), msg({10, 11, static_cast<std::uint8_t>(12 ^ 0xFF), 13}));
  EXPECT_EQ(net.stats().server_to_client_bytes, 4u);
}

TEST(FaultyStarNetworkTest, TruncateDeliversPrefixButMetersFull) {
  FaultPlan plan;
  plan.add(Direction::kServerToClient, 0, 0, Fault{FaultKind::kTruncate, 0, 0x01, 2});
  FaultyStarNetwork net(1, plan);
  net.server_send(0, msg({1, 2, 3, 4, 5}));
  EXPECT_EQ(net.client_receive(0), msg({1, 2}));
  EXPECT_EQ(net.stats().server_to_client_bytes, 5u);
}

TEST(FaultyStarNetworkTest, DuplicateDeliversTwiceMetersOnce) {
  FaultPlan plan;
  plan.add(Direction::kClientToServer, 0, 0, Fault{FaultKind::kDuplicate, 0, 0x01, 0});
  FaultyStarNetwork net(1, plan);
  net.client_send(0, msg({7, 8}));
  EXPECT_EQ(net.stats().client_to_server_messages, 1u);
  EXPECT_EQ(net.stats().client_to_server_bytes, 2u);
  EXPECT_EQ(net.server_receive(0), msg({7, 8}));
  EXPECT_EQ(net.server_receive(0), msg({7, 8}));
  EXPECT_FALSE(net.server_has_message(0));
}

TEST(FaultyStarNetworkTest, DelayTimesOutOnceThenDelivers) {
  FaultPlan plan;
  plan.add(Direction::kServerToClient, 0, 0, Fault{FaultKind::kDelayHalfRound, 0, 0x01, 0});
  FaultyStarNetwork net(1, plan);
  net.server_send(0, msg({42}));
  EXPECT_TRUE(net.client_has_message(0));
  EXPECT_THROW(net.client_receive(0), ServerUnavailable);
  EXPECT_EQ(net.client_receive(0), msg({42}));
}

TEST(FaultyStarNetworkTest, CrashAfterZeroIsDeadOnArrival) {
  FaultPlan plan;
  plan.crash_after(1, 0);
  FaultyStarNetwork net(2, plan);
  EXPECT_TRUE(net.server_crashed(1));
  EXPECT_FALSE(net.server_crashed(0));
  // Client pays for the send; the dead server never sees it.
  net.client_send(1, msg({1, 2}));
  EXPECT_EQ(net.stats().client_to_server_bytes, 2u);
  EXPECT_THROW(net.server_receive(1), ServerUnavailable);
  // A dead server's sends vanish unmetered.
  net.server_send(1, msg({3, 4, 5}));
  EXPECT_EQ(net.stats().server_to_client_bytes, 0u);
  EXPECT_FALSE(net.client_has_message(1));
  EXPECT_TRUE(net.idle());
}

TEST(FaultyStarNetworkTest, CrashAfterOpsCountsReceivesAndSends) {
  FaultPlan plan;
  plan.crash_after(0, 2);  // survives receive + send, then dies
  FaultyStarNetwork net(1, plan);
  net.client_send(0, msg({1}));
  EXPECT_EQ(net.server_receive(0), msg({1}));  // op 1
  net.server_send(0, msg({2}));                // op 2 -> crashes after
  EXPECT_EQ(net.client_receive(0), msg({2}));
  EXPECT_TRUE(net.server_crashed(0));
  net.client_send(0, msg({3}));
  EXPECT_THROW(net.server_receive(0), ServerUnavailable);
}

TEST(FaultyStarNetworkTest, CrashedReceiveClearsBacklog) {
  FaultPlan plan;
  plan.crash_after(0, 1);
  FaultyStarNetwork net(1, plan);
  net.client_send(0, msg({1}));
  net.client_send(0, msg({2}));
  EXPECT_EQ(net.server_receive(0), msg({1}));  // op 1 -> now dead
  EXPECT_THROW(net.server_receive(0), ServerUnavailable);
  EXPECT_FALSE(net.server_has_message(0));  // backlog discarded
  EXPECT_TRUE(net.idle());
}

TEST(FaultyStarNetworkTest, DroppedMessageStillAdvancesHalfRounds) {
  // A dropped message was transmitted: it must participate in half-round
  // direction accounting exactly like a delivered one, otherwise round
  // counts silently depend on the fault plan.
  FaultPlan plan;
  plan.add(Direction::kClientToServer, 0, 0, Fault{FaultKind::kDrop, 0, 0x01, 0});
  FaultyStarNetwork net(1, plan);
  net.client_send(0, msg({1, 2}));  // dropped, but metered
  EXPECT_EQ(net.stats().half_rounds, 1u);
  net.server_send(0, msg({3}));
  EXPECT_EQ(net.stats().half_rounds, 2u);
  StarNetwork perfect(1);
  perfect.client_send(0, msg({1, 2}));
  perfect.server_send(0, msg({3}));
  EXPECT_EQ(net.stats().half_rounds, perfect.stats().half_rounds);
}

TEST(FaultyStarNetworkTest, DuplicateDoesNotDoubleCountHalfRounds) {
  // The duplicate is injected at the queue, not re-transmitted: bytes,
  // messages, AND half-rounds reflect a single send.
  FaultPlan plan;
  plan.add(Direction::kServerToClient, 0, 0, Fault{FaultKind::kDuplicate, 0, 0x01, 0});
  FaultyStarNetwork net(1, plan);
  net.client_send(0, msg({1}));
  net.server_send(0, msg({2, 3}));
  EXPECT_EQ(net.stats().half_rounds, 2u);
  EXPECT_EQ(net.stats().server_to_client_messages, 1u);
  EXPECT_EQ(net.stats().server_to_client_bytes, 2u);
  EXPECT_EQ(net.client_receive(0), msg({2, 3}));
  EXPECT_EQ(net.client_receive(0), msg({2, 3}));
  // Draining the duplicate changed nothing meter-side.
  EXPECT_EQ(net.stats().server_to_client_messages, 1u);
  EXPECT_EQ(net.stats().half_rounds, 2u);
}

TEST(FaultyStarNetworkTest, DelayedReceiveThrowDoesNotPerturbStats) {
  // The timeout thrown by a delayed message and the eventual successful
  // receive are both receive-side events: stats stay byte-for-byte identical
  // through the throw and the retry.
  FaultPlan plan;
  plan.add(Direction::kServerToClient, 0, 0, Fault{FaultKind::kDelayHalfRound, 0, 0x01, 0});
  FaultyStarNetwork net(1, plan);
  net.server_send(0, msg({9, 9}));
  const CommStats before = net.stats();
  EXPECT_THROW(net.client_receive(0), ServerUnavailable);
  EXPECT_EQ(net.stats().server_to_client_bytes, before.server_to_client_bytes);
  EXPECT_EQ(net.stats().server_to_client_messages, before.server_to_client_messages);
  EXPECT_EQ(net.stats().half_rounds, before.half_rounds);
  EXPECT_EQ(net.client_receive(0), msg({9, 9}));
  EXPECT_EQ(net.stats().server_to_client_messages, before.server_to_client_messages);
}

TEST(FaultyStarNetworkTest, ZeroByteMessageSurvivesFaultMetering) {
  // Zero-byte messages through the fault layer: metered as one message and
  // a half-round; a corrupt fault on an empty payload must not crash (there
  // is no byte to flip) and still delivers the empty message.
  FaultPlan plan;
  plan.add(Direction::kClientToServer, 0, 0, Fault{FaultKind::kCorruptByte, 3, 0xFF, 0});
  FaultyStarNetwork net(1, plan);
  net.client_send(0, msg({}));
  EXPECT_EQ(net.stats().client_to_server_messages, 1u);
  EXPECT_EQ(net.stats().client_to_server_bytes, 0u);
  EXPECT_EQ(net.stats().half_rounds, 1u);
  EXPECT_EQ(net.server_receive(0), msg({}));
}

TEST(FaultyStarNetworkTest, ErrorMessagesNameServerAndState) {
  FaultyStarNetwork net(3, FaultPlan{});
  try {
    net.client_receive(2);
    FAIL() << "expected ServerUnavailable";
  } catch (const ServerUnavailable& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("server 2"), std::string::npos) << what;
    EXPECT_NE(what.find("queue depth"), std::string::npos) << what;
    EXPECT_NE(what.find("direction"), std::string::npos) << what;
  }
}

TEST(FaultyStarNetworkTest, DrainRestoresIdleUnderDelaysAndCrashes) {
  FaultPlan plan;
  plan.add(Direction::kServerToClient, 0, 0, Fault{FaultKind::kDelayHalfRound, 0, 0x01, 0});
  plan.add(Direction::kClientToServer, 1, 0, Fault{FaultKind::kDuplicate, 0, 0x01, 0});
  plan.crash_after(2, 1);
  FaultyStarNetwork net(3, plan);
  net.server_send(0, msg({1}));
  net.client_send(1, msg({2}));
  net.client_send(2, msg({3}));
  net.client_send(2, msg({4}));
  EXPECT_EQ(net.server_receive(2), msg({3}));  // crashes after this op
  EXPECT_FALSE(net.idle());
  drain_star_network(net);
  EXPECT_TRUE(net.idle());
}

// Base-class StarNetwork error messages carry the same diagnostics
// (satellite: server index + queue depth + direction state).
TEST(StarNetworkDiagnosticsTest, ReceiveErrorNamesServerAndState) {
  StarNetwork net(4);
  net.client_send(1, msg({1}));
  try {
    net.server_receive(3);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("server 3"), std::string::npos) << what;
    EXPECT_NE(what.find("to-server queue depth 0"), std::string::npos) << what;
    EXPECT_NE(what.find("client->server"), std::string::npos) << what;
  }
}

}  // namespace
