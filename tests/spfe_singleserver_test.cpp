#include <gtest/gtest.h>

#include "circuits/arith_circuit.h"
#include "common/error.h"
#include "spfe/input_selection.h"
#include "spfe/psm_spfe.h"
#include "spfe/two_phase.h"

namespace spfe::protocols {
namespace {

using circuits::ArithCircuit;
using field::Fp64;

// Shared fixture: 256-bit keys keep the suite quick; bench targets use
// production sizes.
class SingleServerSpfeTest : public ::testing::Test {
 protected:
  SingleServerSpfeTest()
      : client_prg_("ss-client"),
        server_prg_("ss-server"),
        client_sk_(he::paillier_keygen(client_prg_, 512)),
        server_sk_(he::paillier_keygen(server_prg_, 512)) {}

  static std::vector<std::uint64_t> make_db(std::size_t n, std::uint64_t modulus) {
    std::vector<std::uint64_t> db(n);
    for (std::size_t i = 0; i < n; ++i) db[i] = (i * 37 + 11) % modulus;
    return db;
  }

  crypto::Prg client_prg_, server_prg_;
  he::PaillierPrivateKey client_sk_;
  he::PaillierPrivateKey server_sk_;
};

// ---- PSM-based SPFE (§3.2) --------------------------------------------------

TEST_F(SingleServerSpfeTest, PsmSumSpfe) {
  constexpr std::size_t kN = 40, kM = 3;
  constexpr std::uint64_t kU = 1000;
  const auto db = make_db(kN, kU);
  const PsmSumSpfeSingleServer proto(client_sk_.public_key(), kN, kM, kU, 1);
  net::StarNetwork net(1);
  const std::vector<std::size_t> indices = {5, 17, 39};
  std::uint64_t expect = 0;
  for (const std::size_t i : indices) expect = (expect + db[i]) % kU;
  EXPECT_EQ(proto.run(net, db, indices, client_sk_, client_prg_, server_prg_), expect);
  EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.0);  // Theorem 3: one round
  EXPECT_TRUE(net.idle());
}

TEST_F(SingleServerSpfeTest, PsmSumSpfeDepth2Pir) {
  constexpr std::size_t kN = 60, kM = 2;
  constexpr std::uint64_t kU = 1 << 16;
  const auto db = make_db(kN, kU);
  const PsmSumSpfeSingleServer proto(client_sk_.public_key(), kN, kM, kU, 2);
  net::StarNetwork net(1);
  EXPECT_EQ(proto.run(net, db, {0, 59}, client_sk_, client_prg_, server_prg_),
            (db[0] + db[59]) % kU);
}

TEST_F(SingleServerSpfeTest, PsmYaoSpfeThresholdFunction) {
  // f = (x_a + x_b >= 16)? Using a 4-bit adder and checking the carry bit.
  constexpr std::size_t kN = 25, kM = 2, kBits = 4;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = i % 16;

  circuits::BooleanCircuit circuit(kM * kBits);
  circuits::WireBundle a, b;
  for (std::size_t i = 0; i < kBits; ++i) a.push_back(circuit.input(i));
  for (std::size_t i = 0; i < kBits; ++i) b.push_back(circuit.input(kBits + i));
  const auto sum = circuits::build_add(circuit, a, b);
  circuit.add_output(sum.back());  // carry = (x_a + x_b >= 16)

  const PsmYaoSpfeSingleServer proto(client_sk_.public_key(), circuit, kN, kM, kBits, 1);
  for (const auto& [i0, i1] : std::vector<std::pair<std::size_t, std::size_t>>{
           {3, 5}, {15, 15}, {9, 8}, {24, 20}}) {
    net::StarNetwork net(1);
    const auto out =
        proto.run(net, db, {i0, i1}, client_sk_, client_prg_, server_prg_);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], db[i0] + db[i1] >= 16) << i0 << "," << i1;
    EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.0);
  }
}

TEST_F(SingleServerSpfeTest, PsmSpfeMultiServer) {
  constexpr std::size_t kN = 32, kM = 3, kT = 1;
  constexpr std::uint64_t kU = 5000;
  const Fp64 field(Fp64::kMersenne61);
  const std::size_t k = pir::PolyItPir::min_servers(kN, kT);
  const PsmSumSpfeMultiServer proto(field, kN, kM, kU, k, kT);
  const auto db = make_db(kN, kU);
  net::StarNetwork net(k);
  const std::vector<std::size_t> indices = {0, 15, 31};
  std::uint64_t expect = 0;
  for (const std::size_t i : indices) expect = (expect + db[i]) % kU;
  EXPECT_EQ(proto.run(net, db, indices, client_prg_, server_prg_), expect);
  EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.0);
}

TEST_F(SingleServerSpfeTest, PsmBpSpfeKeywordMatch) {
  // f = (x_{i0} == 13): a branching-program PSM with perfect PSM privacy.
  constexpr std::size_t kN = 30, kBits = 5;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = i % 32;
  const PsmBpSpfeSingleServer proto(client_sk_.public_key(),
                                    circuits::BranchingProgram::equals_constant(kBits, 13),
                                    kN, 1);
  for (const std::size_t idx : {13u, 14u, 29u}) {
    net::StarNetwork net(1);
    EXPECT_EQ(proto.run(net, db, {idx}, client_sk_, client_prg_, server_prg_), db[idx] == 13)
        << idx;
    EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.0);
  }
}

TEST_F(SingleServerSpfeTest, PsmBpSpfeTwoArgFormula) {
  // f(x_{i0}, x_{i1}) = bit0(x_{i0}) OR bit0(x_{i1}) on a bit database.
  constexpr std::size_t kN = 16;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = i & 1;
  const auto bp =
      circuits::BranchingProgram::from_formula(circuits::Formula::parse("x0 | x1"));
  const PsmBpSpfeSingleServer proto(client_sk_.public_key(), bp, kN, 1);
  for (const auto& [a, b] : std::vector<std::pair<std::size_t, std::size_t>>{
           {0, 2}, {1, 2}, {0, 3}, {5, 7}}) {
    net::StarNetwork net(1);
    EXPECT_EQ(proto.run(net, db, {a, b}, client_sk_, client_prg_, server_prg_),
              (db[a] | db[b]) != 0)
        << a << "," << b;
  }
}

TEST_F(SingleServerSpfeTest, PsmBpSpfeMultiServerFullyIt) {
  // Perfect PSM + IT SPIR: unconditional security on both sides.
  constexpr std::size_t kN = 32, kBits = 4, kT = 1;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = (i * 3) % 16;
  const field::Fp64 field(field::Fp64::kMersenne61);
  const std::size_t k = pir::PolyItPir::min_servers(kN, kT);
  const PsmBpSpfeMultiServer proto(
      field, circuits::BranchingProgram::equals_constant(kBits, 9), kN, k, kT);
  for (const std::size_t idx : {3u, 17u, 31u}) {
    net::StarNetwork net(k);
    EXPECT_EQ(proto.run(net, db, {idx}, client_prg_, server_prg_), db[idx] == 9) << idx;
    EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.0);
  }
}

// ---- Input selection (§3.3.1–§3.3.3) ---------------------------------------

class InputSelectionTest : public SingleServerSpfeTest,
                           public ::testing::WithParamInterface<SelectionMethod> {};

TEST_P(InputSelectionTest, SharesReconstructSelectedItems) {
  constexpr std::size_t kN = 64, kM = 4;
  const std::uint64_t modulus = field::smallest_prime_above(std::max<std::uint64_t>(kN, 1000));
  const auto db = make_db(kN, 1000);
  net::StarNetwork net(1);
  const std::vector<std::size_t> indices = {0, 13, 37, 63};
  const SelectedShares shares =
      run_input_selection(net, 0, db, indices, modulus, GetParam(), client_sk_, server_sk_, 1,
                          client_prg_, server_prg_);
  ASSERT_EQ(shares.client_shares.size(), kM);
  ASSERT_EQ(shares.server_shares.size(), kM);
  for (std::size_t j = 0; j < kM; ++j) {
    const std::uint64_t sum =
        (shares.client_shares[j] + shares.server_shares[j]) % shares.modulus;
    EXPECT_EQ(sum, db[indices[j]]) << selection_method_name(GetParam()) << " slot " << j;
  }
  EXPECT_TRUE(net.idle());
}

TEST_P(InputSelectionTest, SharesAreNontrivial) {
  // The client share alone must not equal the item (the mask is active).
  constexpr std::size_t kN = 32, kM = 8;
  const std::uint64_t modulus = field::smallest_prime_above(100000);
  const auto db = make_db(kN, 1000);
  net::StarNetwork net(1);
  const std::vector<std::size_t> indices = {1, 2, 3, 4, 5, 6, 7, 8};
  const SelectedShares shares =
      run_input_selection(net, 0, db, indices, modulus, GetParam(), client_sk_, server_sk_, 1,
                          client_prg_, server_prg_);
  std::size_t trivial = 0;
  for (std::size_t j = 0; j < kM; ++j) {
    if (shares.client_shares[j] == db[indices[j]]) ++trivial;
  }
  EXPECT_LT(trivial, kM);  // all-trivial would mean no masking at all
}

INSTANTIATE_TEST_SUITE_P(AllMethods, InputSelectionTest,
                         ::testing::Values(SelectionMethod::kPerItem,
                                           SelectionMethod::kPolyMaskClientKey,
                                           SelectionMethod::kPolyMaskServerKey,
                                           SelectionMethod::kEncryptedDb),
                         [](const auto& inst) {
                           switch (inst.param) {
                             case SelectionMethod::kPerItem:
                               return "PerItem";
                             case SelectionMethod::kPolyMaskClientKey:
                               return "PolyMaskClientKey";
                             case SelectionMethod::kPolyMaskServerKey:
                               return "PolyMaskServerKey";
                             case SelectionMethod::kEncryptedDb:
                               return "EncryptedDb";
                           }
                           return "Unknown";
                         });

TEST_F(SingleServerSpfeTest, InputSelectionRoundCounts) {
  constexpr std::size_t kN = 32;
  const std::uint64_t p = field::smallest_prime_above(1000);
  const auto db = make_db(kN, 1000);
  const std::vector<std::size_t> indices = {3, 7};

  {  // §3.3.1 and §3.3.2v1 are one-round selections.
    net::StarNetwork net(1);
    run_input_selection(net, 0, db, indices, p, SelectionMethod::kPerItem, client_sk_,
                        server_sk_, 1, client_prg_, server_prg_);
    EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.0);
  }
  {
    net::StarNetwork net(1);
    run_input_selection(net, 0, db, indices, p, SelectionMethod::kPolyMaskClientKey, client_sk_,
                        server_sk_, 1, client_prg_, server_prg_);
    EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.0);
  }
  {  // §3.3.2v2: server speaks first -> 1.5 rounds.
    net::StarNetwork net(1);
    run_input_selection(net, 0, db, indices, p, SelectionMethod::kPolyMaskServerKey, client_sk_,
                        server_sk_, 1, client_prg_, server_prg_);
    EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.5);
  }
  {  // §3.3.3: query, answer, blinded return -> 1.5 rounds.
    net::StarNetwork net(1);
    run_input_selection(net, 0, db, indices, p, SelectionMethod::kEncryptedDb, client_sk_,
                        server_sk_, 1, client_prg_, server_prg_);
    EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.5);
  }
}

// ---- Two-phase SPFE (§3.3 + §3.3.4 / Yao) -----------------------------------

TEST_F(SingleServerSpfeTest, TwoPhaseArithSumOfSquares) {
  constexpr std::size_t kN = 48, kM = 3;
  const std::uint64_t p = field::smallest_prime_above(1u << 21);
  const auto db = make_db(kN, 1000);
  const auto circuit = ArithCircuit::sum_and_sum_of_squares(kM, p);
  const std::vector<std::size_t> indices = {2, 21, 40};

  net::StarNetwork net(1);
  const auto out =
      run_two_phase_arith(net, 0, db, indices, circuit, SelectionMethod::kPolyMaskClientKey,
                          client_sk_, server_sk_, 1, client_prg_, server_prg_);
  std::vector<std::uint64_t> xs;
  for (const std::size_t i : indices) xs.push_back(db[i]);
  EXPECT_EQ(out, circuit.eval(xs));
}

TEST_F(SingleServerSpfeTest, TwoPhaseArithAllSelectionMethods) {
  constexpr std::size_t kN = 32;
  const std::uint64_t p = field::smallest_prime_above(1u << 20);
  const auto db = make_db(kN, 500);
  const auto circuit = ArithCircuit::inner_product(1, p);  // x*y of the two items
  const std::vector<std::size_t> indices = {4, 28};
  const std::uint64_t expect = db[4] * db[28] % p;

  for (const SelectionMethod method :
       {SelectionMethod::kPerItem, SelectionMethod::kPolyMaskClientKey,
        SelectionMethod::kPolyMaskServerKey, SelectionMethod::kEncryptedDb}) {
    net::StarNetwork net(1);
    const auto out = run_two_phase_arith(net, 0, db, indices, circuit, method, client_sk_,
                                         server_sk_, 1, client_prg_, server_prg_);
    EXPECT_EQ(out[0], expect) << selection_method_name(method);
  }
}

TEST_F(SingleServerSpfeTest, TwoPhaseBooleanEqualityCount) {
  // f = number of selected items equal to 7 (a frequency-style circuit).
  constexpr std::size_t kN = 32, kBits = 6;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = i % 10;
  const std::vector<std::size_t> indices = {7, 17, 27, 5};  // values 7, 7, 7, 5

  const auto body = [](circuits::BooleanCircuit& c,
                       const std::vector<circuits::WireBundle>& items) {
    std::vector<circuits::WireId> matches;
    for (const auto& item : items) {
      matches.push_back(circuits::build_eq_const(c, item, 7));
    }
    c.add_outputs(circuits::build_popcount(c, matches));
  };

  const ot::SchnorrGroup group = ot::SchnorrGroup::rfc_like_512();
  for (const SelectionMethod method :
       {SelectionMethod::kPerItem, SelectionMethod::kPolyMaskClientKey,
        SelectionMethod::kEncryptedDb}) {
    net::StarNetwork net(1);
    const auto out = run_two_phase_boolean(net, 0, db, indices, kBits, method, body, client_sk_,
                                           server_sk_, group, 1, client_prg_, server_prg_);
    std::uint64_t count = 0;
    for (std::size_t b = 0; b < out.size(); ++b) {
      if (out[b]) count |= std::uint64_t(1) << b;
    }
    EXPECT_EQ(count, 3u) << selection_method_name(method);
  }
}

TEST_F(SingleServerSpfeTest, GmXorInputSelection) {
  constexpr std::size_t kN = 40, kM = 3, kBits = 10;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = (i * 91 + 5) % (1u << kBits);
  crypto::Prg gm_prg("gm-keys");
  const he::GmPrivateKey gm_sk = he::gm_keygen(gm_prg, 512);
  net::StarNetwork net(1);
  const std::vector<std::size_t> indices = {0, 20, 39};
  const SelectedXorShares shares = input_selection_encrypted_db_gm(
      net, 0, db, indices, kBits, gm_sk, client_sk_, 2, client_prg_, server_prg_);
  for (std::size_t j = 0; j < kM; ++j) {
    EXPECT_EQ(shares.client_shares[j] ^ shares.server_shares[j], db[indices[j]]) << j;
  }
  EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.5);
  EXPECT_TRUE(net.idle());
}

TEST_F(SingleServerSpfeTest, GmXorSharesAreMasked) {
  constexpr std::size_t kN = 16, kBits = 8;
  std::vector<std::uint64_t> db(kN, 0xA5);
  crypto::Prg gm_prg("gm-mask");
  const he::GmPrivateKey gm_sk = he::gm_keygen(gm_prg, 512);
  net::StarNetwork net(1);
  const SelectedXorShares shares = input_selection_encrypted_db_gm(
      net, 0, db, {1, 2, 3, 4, 5, 6, 7, 8}, kBits, gm_sk, client_sk_, 1, client_prg_,
      server_prg_);
  // With 8 slots of 8 random mask bits each, all-trivial masks are 2^-64.
  std::size_t trivial = 0;
  for (const std::uint64_t b : shares.client_shares) {
    if (b == 0) ++trivial;
  }
  EXPECT_LT(trivial, 8u);
}

TEST_F(SingleServerSpfeTest, TwoPhaseBooleanGmFreeXorReconstruction) {
  // Same equality-count function as the additive path, via GM XOR shares.
  constexpr std::size_t kN = 32, kBits = 6;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = i % 10;
  const std::vector<std::size_t> indices = {7, 17, 27, 5};  // values 7,7,7,5

  const auto body = [](circuits::BooleanCircuit& c,
                       const std::vector<circuits::WireBundle>& items) {
    std::vector<circuits::WireId> matches;
    for (const auto& item : items) {
      matches.push_back(circuits::build_eq_const(c, item, 7));
    }
    c.add_outputs(circuits::build_popcount(c, matches));
  };

  crypto::Prg gm_prg("gm-two-phase");
  const he::GmPrivateKey gm_sk = he::gm_keygen(gm_prg, 512);
  const ot::SchnorrGroup group = ot::SchnorrGroup::rfc_like_512();
  net::StarNetwork net(1);
  const auto out = run_two_phase_boolean_gm(net, 0, db, indices, kBits, body, gm_sk,
                                            client_sk_, group, 1, client_prg_, server_prg_);
  std::uint64_t count = 0;
  for (std::size_t b = 0; b < out.size(); ++b) {
    if (out[b]) count |= std::uint64_t(1) << b;
  }
  EXPECT_EQ(count, 3u);
}

TEST_F(SingleServerSpfeTest, GmSelectionValidation) {
  crypto::Prg gm_prg("gm-validate");
  const he::GmPrivateKey gm_sk = he::gm_keygen(gm_prg, 256);
  std::vector<std::uint64_t> db(8, 1);
  net::StarNetwork net(1);
  EXPECT_THROW(input_selection_encrypted_db_gm(net, 0, db, {1}, 0, gm_sk, client_sk_, 1,
                                               client_prg_, server_prg_),
               InvalidArgument);
  EXPECT_THROW(input_selection_encrypted_db_gm(net, 0, db, {9}, 4, gm_sk, client_sk_, 1,
                                               client_prg_, server_prg_),
               InvalidArgument);
}

TEST_F(SingleServerSpfeTest, PrivateParameterKeywordCount) {
  // The keyword being counted is itself hidden from the server: it enters
  // the circuit as client-private Yao inputs.
  constexpr std::size_t kN = 32, kBits = 6, kParamBits = 6;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = i % 10;
  const std::vector<std::size_t> indices = {7, 17, 27, 5};  // values 7,7,7,5

  const auto body = [](circuits::BooleanCircuit& c,
                       const std::vector<circuits::WireBundle>& items,
                       const circuits::WireBundle& param) {
    std::vector<circuits::WireId> matches;
    for (const auto& item : items) {
      matches.push_back(circuits::build_eq(c, item, param));
    }
    c.add_outputs(circuits::build_popcount(c, matches));
  };

  const ot::SchnorrGroup group = ot::SchnorrGroup::rfc_like_512();
  for (const std::uint64_t keyword : {7ull, 5ull, 9ull}) {
    net::StarNetwork net(1);
    const auto out = run_two_phase_boolean_private_param(
        net, 0, db, indices, kBits, SelectionMethod::kPerItem, keyword, kParamBits, body,
        client_sk_, server_sk_, group, 1, client_prg_, server_prg_);
    std::uint64_t count = 0;
    for (std::size_t b = 0; b < out.size(); ++b) {
      if (out[b]) count |= std::uint64_t(1) << b;
    }
    std::uint64_t expect = 0;
    for (const std::size_t i : indices) expect += db[i] == keyword ? 1 : 0;
    EXPECT_EQ(count, expect) << "keyword=" << keyword;
  }
}

TEST_F(SingleServerSpfeTest, PrivateParameterThreshold) {
  // Private threshold: count items strictly above a client-secret bound.
  constexpr std::size_t kN = 24, kBits = 8, kParamBits = 8;
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = i * 10;
  const std::vector<std::size_t> indices = {1, 5, 10, 20};

  const auto body = [](circuits::BooleanCircuit& c,
                       const std::vector<circuits::WireBundle>& items,
                       const circuits::WireBundle& param) {
    std::vector<circuits::WireId> above;
    for (const auto& item : items) {
      above.push_back(circuits::build_less_than(c, param, item));
    }
    c.add_outputs(circuits::build_popcount(c, above));
  };

  const ot::SchnorrGroup group = ot::SchnorrGroup::rfc_like_512();
  net::StarNetwork net(1);
  constexpr std::uint64_t kThreshold = 95;
  const auto out = run_two_phase_boolean_private_param(
      net, 0, db, indices, kBits, SelectionMethod::kPolyMaskClientKey, kThreshold, kParamBits,
      body, client_sk_, server_sk_, group, 1, client_prg_, server_prg_);
  std::uint64_t count = 0;
  for (std::size_t b = 0; b < out.size(); ++b) {
    if (out[b]) count |= std::uint64_t(1) << b;
  }
  std::uint64_t expect = 0;
  for (const std::size_t i : indices) expect += db[i] > kThreshold ? 1 : 0;
  EXPECT_EQ(count, expect);
}

TEST_F(SingleServerSpfeTest, TwoPhaseValidation) {
  const auto db = make_db(16, 100);
  const auto circuit = ArithCircuit::sum(3, 101);
  net::StarNetwork net(1);
  EXPECT_THROW(run_two_phase_arith(net, 0, db, {1, 2}, circuit,
                                   SelectionMethod::kPerItem, client_sk_, server_sk_, 1,
                                   client_prg_, server_prg_),
               InvalidArgument);
}

}  // namespace
}  // namespace spfe::protocols
