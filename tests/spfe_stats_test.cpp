#include <gtest/gtest.h>

#include "common/error.h"
#include "dbgen/census.h"
#include "spfe/stats.h"

namespace spfe::protocols {
namespace {

using field::Fp64;

class StatsTest : public ::testing::Test {
 protected:
  StatsTest()
      : client_prg_("stats-client"),
        server_prg_("stats-server"),
        client_sk_(he::paillier_keygen(client_prg_, 512)),
        server_sk_(he::paillier_keygen(server_prg_, 512)) {}

  static std::vector<std::uint64_t> make_db(std::size_t n, std::uint64_t cap) {
    std::vector<std::uint64_t> db(n);
    for (std::size_t i = 0; i < n; ++i) db[i] = (i * 97 + 13) % cap;
    return db;
  }

  crypto::Prg client_prg_, server_prg_;
  he::PaillierPrivateKey client_sk_;
  he::PaillierPrivateKey server_sk_;
};

TEST_F(StatsTest, WeightedSumMatchesPlainComputation) {
  constexpr std::size_t kN = 64, kM = 4;
  const Fp64 field(field::smallest_prime_above(1u << 24));
  const auto db = make_db(kN, 10000);
  const WeightedSumProtocol proto(field, kN, kM, 1);
  const std::vector<std::size_t> indices = {3, 9, 33, 63};
  const std::vector<std::uint64_t> weights = {1, 2, 3, 4};
  net::StarNetwork net(1);
  const std::uint64_t got =
      proto.run(net, 0, db, indices, weights, client_sk_, client_prg_, server_prg_);
  std::uint64_t expect = 0;
  for (std::size_t j = 0; j < kM; ++j) expect += weights[j] * db[indices[j]];
  EXPECT_EQ(got, expect);
}

TEST_F(StatsTest, WeightedSumIsOneRound) {
  constexpr std::size_t kN = 32, kM = 2;
  const Fp64 field(field::smallest_prime_above(1u << 20));
  const auto db = make_db(kN, 1000);
  const WeightedSumProtocol proto(field, kN, kM, 1);
  net::StarNetwork net(1);
  proto.run(net, 0, db, {1, 2}, {1, 1}, client_sk_, client_prg_, server_prg_);
  EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.0);
  EXPECT_TRUE(net.idle());
}

TEST_F(StatsTest, PlainSumViaUnitWeights) {
  constexpr std::size_t kN = 50, kM = 5;
  const Fp64 field(field::smallest_prime_above(1u << 22));
  const auto db = make_db(kN, 5000);
  const WeightedSumProtocol proto(field, kN, kM, 1);
  const std::vector<std::size_t> indices = {0, 10, 20, 30, 49};
  net::StarNetwork net(1);
  const std::uint64_t got = proto.run(net, 0, db, indices,
                                      std::vector<std::uint64_t>(kM, 1), client_sk_,
                                      client_prg_, server_prg_);
  std::uint64_t expect = 0;
  for (const std::size_t i : indices) expect += db[i];
  EXPECT_EQ(got, expect);
}

TEST_F(StatsTest, MeanVariancePackage) {
  constexpr std::size_t kN = 40, kM = 4;
  const Fp64 field(field::smallest_prime_above(1ull << 30));
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = 100 + i;
  const MeanVariancePackage proto(field, kN, kM, 1);
  const std::vector<std::size_t> indices = {0, 10, 20, 30};  // values 100,110,120,130
  net::StarNetwork net(1);
  const MeanVarianceResult res =
      proto.run(net, 0, db, indices, client_sk_, client_prg_, server_prg_);
  EXPECT_EQ(res.sum, 100u + 110 + 120 + 130);
  EXPECT_EQ(res.sum_of_squares, 100u * 100 + 110 * 110 + 120 * 120 + 130 * 130);
  EXPECT_DOUBLE_EQ(res.mean, 115.0);
  EXPECT_DOUBLE_EQ(res.variance, 125.0);  // population variance of {100,110,120,130}
  EXPECT_DOUBLE_EQ(net.stats().rounds(), 1.0);  // still one round (§4 package)
}

TEST_F(StatsTest, FrequencyCountsKeyword) {
  constexpr std::size_t kN = 30, kM = 6;
  const Fp64 field(field::smallest_prime_above(1u << 16));
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = i % 5;
  const FrequencyProtocol proto(field, kN, kM, SelectionMethod::kPolyMaskClientKey, 1);
  // indices with values {2, 2, 0, 3, 2, 4}: keyword 2 appears 3 times.
  const std::vector<std::size_t> indices = {2, 7, 10, 13, 22, 29};
  net::StarNetwork net(1);
  EXPECT_EQ(proto.run(net, 0, db, indices, 2, client_sk_, server_sk_, client_prg_, server_prg_),
            3u);
  EXPECT_EQ(net.stats().half_rounds, 4u);  // selection round + one extra round
}

TEST_F(StatsTest, FrequencyZeroAndAllMatches) {
  constexpr std::size_t kN = 16, kM = 3;
  const Fp64 field(field::smallest_prime_above(1u << 16));
  std::vector<std::uint64_t> db(kN, 42);
  const FrequencyProtocol proto(field, kN, kM, SelectionMethod::kEncryptedDb, 1);
  net::StarNetwork net(1);
  EXPECT_EQ(proto.run(net, 0, db, {0, 5, 15}, 42, client_sk_, server_sk_, client_prg_,
                      server_prg_),
            3u);
  net::StarNetwork net2(1);
  EXPECT_EQ(proto.run(net2, 0, db, {0, 5, 15}, 7, client_sk_, server_sk_, client_prg_,
                      server_prg_),
            0u);
}

TEST_F(StatsTest, CensusWorkloadEndToEnd) {
  // The motivating scenario: average salary of a public-attribute cohort.
  crypto::Prg data_prg("census");
  dbgen::CensusOptions options;
  options.num_records = 128;
  options.num_zip_codes = 4;
  const dbgen::CensusDatabase census = dbgen::generate_census(options, data_prg);
  const auto salaries = census.private_column();

  constexpr std::size_t kM = 8;
  const auto indices = census.select_sample(
      [](const dbgen::CensusRecord& r) { return r.zip_code == 2; }, kM);

  const Fp64 field(field::smallest_prime_above(kM * 200'000ull * 200'000ull));
  const MeanVariancePackage proto(field, salaries.size(), kM, 1);
  net::StarNetwork net(1);
  const auto res = proto.run(net, 0, salaries, indices, client_sk_, client_prg_, server_prg_);

  std::uint64_t expect_sum = 0;
  for (const std::size_t i : indices) expect_sum += salaries[i];
  EXPECT_EQ(res.sum, expect_sum);
  EXPECT_GT(res.mean, 0.0);
  EXPECT_GE(res.variance, 0.0);
}

TEST_F(StatsTest, Validation) {
  const Fp64 field(1009);
  EXPECT_THROW(WeightedSumProtocol(field, 2000, 4, 1), InvalidArgument);  // field <= n
  const Fp64 ok(field::smallest_prime_above(1u << 16));
  const WeightedSumProtocol proto(ok, 16, 2, 1);
  const auto db = std::vector<std::uint64_t>(16, 1);
  net::StarNetwork net(1);
  EXPECT_THROW(proto.run(net, 0, db, {1}, {1, 1}, client_sk_, client_prg_, server_prg_),
               InvalidArgument);
  EXPECT_THROW(
      proto.run(net, 0, db, {1, 2}, {1}, client_sk_, client_prg_, server_prg_),
      InvalidArgument);
}

TEST(CensusGen, GeneratesValidRecords) {
  crypto::Prg prg("gen-test");
  dbgen::CensusOptions options;
  options.num_records = 200;
  options.num_zip_codes = 10;
  const auto db = dbgen::generate_census(options, prg);
  ASSERT_EQ(db.size(), 200u);
  for (const auto& r : db.records) {
    EXPECT_LT(r.zip_code, 10u);
    EXPECT_LT(r.age_bracket, 8);
    EXPECT_LE(r.salary, options.max_salary);
  }
  // The select helpers agree.
  const auto all = db.select([](const auto& r) { return r.zip_code == 3; });
  EXPECT_FALSE(all.empty());
  const auto sample = db.select_sample([](const auto& r) { return r.zip_code == 3; }, 2);
  EXPECT_EQ(sample.size(), 2u);
  EXPECT_EQ(sample[0], all[0]);
  EXPECT_THROW(db.select_sample([](const auto&) { return false; }, 1), InvalidArgument);
}

}  // namespace
}  // namespace spfe::protocols
