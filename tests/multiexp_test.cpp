#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/modarith.h"
#include "bignum/multiexp.h"
#include "common/error.h"
#include "crypto/prg.h"

namespace spfe::bignum {
namespace {

// Odd modulus (Montgomery requires it) of roughly `bits` bits.
BigInt random_odd_modulus(crypto::Prg& prg, std::size_t bits) {
  BigInt m = BigInt::random_bits(prg, bits);
  if (!m.is_odd()) m = m + BigInt(1);
  if (m <= BigInt(3)) m = BigInt(5);
  return m;
}

// Reference: plain product of independent mod_pow calls.
BigInt naive_multi_pow(std::span<const BigInt> bases, std::span<const BigInt> exps,
                       const BigInt& m) {
  BigInt acc = BigInt(1).mod_floor(m);
  for (std::size_t i = 0; i < bases.size(); ++i) {
    acc = mod_mul(acc, mod_pow(bases[i], exps[i], m), m);
  }
  return acc;
}

// ---- BigInt::sqr ------------------------------------------------------------

TEST(BigIntSqr, MatchesMulAcrossSizes) {
  crypto::Prg prg("sqr-sizes");
  // Sweep across the schoolbook/Karatsuba threshold (32 limbs = 2048 bits).
  for (const std::size_t bits : {1u, 63u, 64u, 65u, 640u, 2047u, 2048u, 2049u, 4096u, 6400u}) {
    const BigInt a = BigInt::random_bits(prg, bits);
    const BigInt b = a;  // distinct object so operator* takes the general path
    EXPECT_EQ(a.sqr(), a * b) << "bits=" << bits;
  }
}

TEST(BigIntSqr, NegativeAndZero) {
  crypto::Prg prg("sqr-neg");
  const BigInt a = BigInt::random_bits(prg, 700);
  EXPECT_EQ((-a).sqr(), a.sqr());
  EXPECT_FALSE((-a).sqr().is_negative());
  EXPECT_EQ(BigInt().sqr(), BigInt());
  EXPECT_EQ(BigInt(-3).sqr(), BigInt(9));
}

TEST(BigIntSqr, SelfMultiplicationUsesSquarePath) {
  crypto::Prg prg("sqr-self");
  const BigInt a = BigInt::random_bits(prg, 3000);
  EXPECT_EQ(a * a, a.sqr());
}

// ---- MontgomeryContext::mont_sqr -------------------------------------------

TEST(MontSqr, MatchesMontMul) {
  crypto::Prg prg("mont-sqr");
  for (const std::size_t bits : {64u, 128u, 512u, 1024u, 2050u}) {
    const BigInt m = random_odd_modulus(prg, bits);
    const MontgomeryContext ctx(m);
    for (int it = 0; it < 8; ++it) {
      const BigInt a = BigInt::random_below(prg, m);
      const auto am = ctx.to_mont(a);
      EXPECT_EQ(ctx.mont_sqr(am), ctx.mont_mul(am, am)) << "bits=" << bits;
      EXPECT_EQ(ctx.from_mont(ctx.mont_sqr(am)), mod_mul(a, a, m)) << "bits=" << bits;
    }
  }
}

TEST(MontSqr, EdgeValues) {
  const BigInt m = BigInt::from_string("1000000000000000000000000000057");
  const MontgomeryContext ctx(m);
  for (const BigInt& a : {BigInt(0), BigInt(1), m - BigInt(1)}) {
    EXPECT_EQ(ctx.from_mont(ctx.mont_sqr(ctx.to_mont(a))), mod_mul(a, a, m));
  }
}

// ---- multi_pow --------------------------------------------------------------

TEST(MultiPow, MatchesNaiveProductRandomized) {
  crypto::Prg prg("multipow");
  for (int it = 0; it < 12; ++it) {
    const std::size_t bits = 64 + (it % 4) * 160;
    const BigInt m = random_odd_modulus(prg, bits);
    const std::size_t count = 1 + static_cast<std::size_t>(it) % 9;
    std::vector<BigInt> bases(count), exps(count);
    for (std::size_t i = 0; i < count; ++i) {
      bases[i] = BigInt::random_below(prg, m);
      exps[i] = BigInt::random_bits(prg, 1 + (i * 97) % bits);
    }
    EXPECT_EQ(multi_pow(MontgomeryContext(m), bases, exps), naive_multi_pow(bases, exps, m))
        << "it=" << it;
  }
}

TEST(MultiPow, ExponentEdgeCases) {
  crypto::Prg prg("multipow-edge");
  const BigInt m = random_odd_modulus(prg, 512);
  const MontgomeryContext ctx(m);
  std::vector<BigInt> bases(4);
  for (auto& b : bases) b = BigInt::random_below(prg, m);
  // Mix of 0, 1, and modulus-sized exponents (engine must not reduce them).
  const std::vector<BigInt> exps = {BigInt(0), BigInt(1), m + BigInt(7),
                                    BigInt::random_bits(prg, 512)};
  EXPECT_EQ(multi_pow(ctx, bases, exps), naive_multi_pow(bases, exps, m));
  // All-zero exponents: identity.
  const std::vector<BigInt> zeros(4, BigInt(0));
  EXPECT_EQ(multi_pow(ctx, bases, zeros), BigInt(1));
  // Empty input: identity.
  EXPECT_EQ(multi_pow(ctx, {}, {}), BigInt(1));
  // Single base degenerates to pow.
  EXPECT_EQ(multi_pow(ctx, std::span(bases.data(), 1), std::span(exps.data() + 3, 1)),
            ctx.pow(bases[0], exps[3]));
}

TEST(MultiPow, RejectsBadInput) {
  const BigInt m(1009);
  const MontgomeryContext ctx(m);
  const std::vector<BigInt> bases = {BigInt(2), BigInt(3)};
  const std::vector<BigInt> one = {BigInt(1)};
  EXPECT_THROW(multi_pow(ctx, bases, one), InvalidArgument);
  const std::vector<BigInt> neg = {BigInt(1), BigInt(-1)};
  EXPECT_THROW(multi_pow(ctx, bases, neg), InvalidArgument);
}

// ---- multi_pow_matrix -------------------------------------------------------

TEST(MultiPowMatrix, MatchesNaivePerColumn) {
  crypto::Prg prg("matrix");
  // Shapes chosen to land on each kernel: (few bases, few cols) -> Straus,
  // (many bases, small exps) -> Pippenger, (few bases, many cols) -> fixed.
  struct Shape {
    std::size_t count, columns, exp_bits;
  };
  for (const Shape s : {Shape{3, 2, 512}, Shape{48, 6, 12}, Shape{3, 40, 256}}) {
    const BigInt m = random_odd_modulus(prg, 384);
    const MontgomeryContext ctx(m);
    std::vector<BigInt> bases(s.count);
    for (auto& b : bases) b = BigInt::random_below(prg, m);
    std::vector<std::vector<BigInt>> exps(s.count, std::vector<BigInt>(s.columns));
    for (auto& row : exps) {
      for (auto& e : row) e = BigInt::random_bits(prg, 1 + prg.uniform(s.exp_bits));
    }
    // Sprinkle structural zeros, including one all-zero row.
    for (auto& e : exps[0]) e = BigInt(0);
    exps[s.count - 1][0] = BigInt(0);
    const std::vector<BigInt> out = multi_pow_matrix(ctx, bases, exps);
    ASSERT_EQ(out.size(), s.columns);
    for (std::size_t c = 0; c < s.columns; ++c) {
      std::vector<BigInt> col(s.count);
      for (std::size_t i = 0; i < s.count; ++i) col[i] = exps[i][c];
      EXPECT_EQ(out[c], naive_multi_pow(bases, col, m)) << "col=" << c;
    }
  }
}

TEST(MultiPowMatrix, RejectsRaggedRows) {
  const MontgomeryContext ctx(BigInt(1009));
  const std::vector<BigInt> bases = {BigInt(2), BigInt(3)};
  const std::vector<std::vector<BigInt>> ragged = {{BigInt(1), BigInt(2)}, {BigInt(1)}};
  EXPECT_THROW(multi_pow_matrix(ctx, bases, ragged), InvalidArgument);
}

// ---- FixedBasePowTable ------------------------------------------------------

TEST(FixedBasePowTable, MatchesPow) {
  crypto::Prg prg("fixed-base");
  const BigInt m = random_odd_modulus(prg, 512);
  const MontgomeryContext ctx(m);
  const BigInt base = BigInt::random_below(prg, m);
  const FixedBasePowTable table(ctx, base, 512);
  EXPECT_GE(table.max_exp_bits(), 512u);
  EXPECT_EQ(table.pow(BigInt(0)), BigInt(1));
  EXPECT_EQ(table.pow(BigInt(1)), base.mod_floor(m));
  for (int it = 0; it < 10; ++it) {
    const BigInt e = BigInt::random_bits(prg, 1 + prg.uniform(512));
    EXPECT_EQ(table.pow(e), ctx.pow(base, e)) << "it=" << it;
  }
  // Full-capacity exponent (every comb digit populated).
  const BigInt full = (BigInt(1) << table.max_exp_bits()) - BigInt(1);
  EXPECT_EQ(table.pow(full), ctx.pow(base, full));
}

TEST(FixedBasePowTable, RejectsOverCapacityAndNegative) {
  const MontgomeryContext ctx(BigInt(1009));
  const FixedBasePowTable table(ctx, BigInt(7), 32);
  EXPECT_THROW(table.pow(BigInt(1) << (table.max_exp_bits() + 1)), InvalidArgument);
  EXPECT_THROW(table.pow(BigInt(-1)), InvalidArgument);
}

// ---- Planner ----------------------------------------------------------------

TEST(MultiExpPlan, PicksExpectedKernelForCanonicalShapes) {
  using detail::MultiExpKind;
  // Two 512-bit cross terms (arith_protocol): shared chain, Straus.
  EXPECT_EQ(detail::plan_multi_exp(2, 1, 512).kind, MultiExpKind::kStraus);
  // Depth-1 cPIR fold: thousands of bases, tiny exponents, one column.
  EXPECT_EQ(detail::plan_multi_exp(4096, 1, 16).kind, MultiExpKind::kPippenger);
  // Few bases amortized over many columns: fixed-base comb.
  EXPECT_EQ(detail::plan_multi_exp(2, 1000, 512).kind, MultiExpKind::kFixedBase);
  const detail::MultiExpPlan p = detail::plan_multi_exp(64, 64, 496);
  EXPECT_GE(p.window, 1u);
  EXPECT_LE(p.window, 10u);
}

TEST(MultiExpPlan, FixedBaseWindowGrowsWithExponentSize) {
  EXPECT_GE(detail::plan_fixed_base_window(4096), detail::plan_fixed_base_window(64));
  for (const std::size_t bits : {1u, 64u, 512u, 4096u}) {
    const unsigned w = detail::plan_fixed_base_window(bits);
    EXPECT_GE(w, 1u);
    EXPECT_LE(w, 8u);
  }
}

}  // namespace
}  // namespace spfe::bignum
