// Unit tests for the observability layer (src/obs): counter semantics,
// span nesting and counter snapshots, the root-vs-global consistency
// invariant, and strict validity of the chrome://tracing export.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "json_check.h"
#include "obs/obs.h"

namespace spfe::obs {
namespace {

// Every test runs with a clean, disabled tracer and leaves it that way:
// tracing state is process-global, and leaking an enabled tracer would
// perturb every later test in the binary.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().set_enabled(false);
    Tracer::global().reset();
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().reset();
  }
};

TEST_F(ObsTest, DisabledByDefaultNothingRecorded) {
  EXPECT_FALSE(enabled());
  count(Op::kModExp, 100);
  {
    SPFE_OBS_SPAN("should-not-record");
  }
  const OpCounts totals = Tracer::global().totals();
  for (const std::uint64_t c : totals) EXPECT_EQ(c, 0u);
  EXPECT_TRUE(Tracer::global().spans().empty());
}

TEST_F(ObsTest, CountersAccumulateAndReset) {
  Tracer::global().set_enabled(true);
  count(Op::kModExp);
  count(Op::kModExp, 4);
  count(Op::kPaillierDecrypt, 2);
  OpCounts totals = Tracer::global().totals();
  EXPECT_EQ(totals[static_cast<std::size_t>(Op::kModExp)], 5u);
  EXPECT_EQ(totals[static_cast<std::size_t>(Op::kPaillierDecrypt)], 2u);
  EXPECT_EQ(totals[static_cast<std::size_t>(Op::kGarbledGates)], 0u);
  Tracer::global().reset();
  totals = Tracer::global().totals();
  for (const std::uint64_t c : totals) EXPECT_EQ(c, 0u);
}

TEST_F(ObsTest, SpansNestAndSnapshotCounters) {
  Tracer::global().set_enabled(true);
  {
    Span outer("outer");
    count(Op::kModExp, 10);
    {
      Span inner("inner");
      inner.note("phase=fold");
      count(Op::kModExp, 7);
      count(Op::kBwDecode, 1);
    }
    count(Op::kModExp, 3);
  }
  const auto spans = Tracer::global().spans();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& outer = spans[0];
  const SpanRecord& inner = spans[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent, SpanRecord::kNoParent);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(inner.note, "phase=fold");
  EXPECT_FALSE(outer.open());
  EXPECT_FALSE(inner.open());
  // The outer delta includes the inner span's ops; the inner only its own.
  EXPECT_EQ(outer.delta()[static_cast<std::size_t>(Op::kModExp)], 20u);
  EXPECT_EQ(inner.delta()[static_cast<std::size_t>(Op::kModExp)], 7u);
  EXPECT_EQ(inner.delta()[static_cast<std::size_t>(Op::kBwDecode)], 1u);
  // Closed spans always report a nonzero duration.
  EXPECT_GT(outer.duration_ns(), 0u);
  EXPECT_GT(inner.duration_ns(), 0u);
}

TEST_F(ObsTest, NotesJoinWithSemicolons) {
  Tracer::global().set_enabled(true);
  {
    Span s("annotated");
    s.note("a=1");
    s.note("b=2");
  }
  const auto spans = Tracer::global().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].note, "a=1;b=2");
}

TEST_F(ObsTest, RootTotalsMatchGlobalWhenAllOpsAreSpanned) {
  Tracer::global().set_enabled(true);
  {
    Span root1("r1");
    count(Op::kPaillierEncrypt, 8);
  }
  {
    Span root2("r2");
    count(Op::kPaillierEncrypt, 2);
    count(Op::kOtBase, 5);
  }
  const OpCounts roots = Tracer::global().root_totals();
  const OpCounts totals = Tracer::global().totals();
  for (std::size_t i = 0; i < kNumOps; ++i) EXPECT_EQ(roots[i], totals[i]) << i;
}

TEST_F(ObsTest, RootTotalsExposeOpsOutsideAnySpan) {
  // An op counted outside every span makes root_totals() < totals() — the
  // inconsistency bench_table1's summary reports (and its exit code gates).
  Tracer::global().set_enabled(true);
  {
    Span root("r");
    count(Op::kModExp, 3);
  }
  count(Op::kModExp, 2);  // unspanned
  const std::size_t op = static_cast<std::size_t>(Op::kModExp);
  EXPECT_EQ(Tracer::global().root_totals()[op], 3u);
  EXPECT_EQ(Tracer::global().totals()[op], 5u);
}

TEST_F(ObsTest, SummaryAggregatesByNameInFirstSeenOrder) {
  Tracer::global().set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    Span s("repeat");
    count(Op::kGmEncrypt, 2);
  }
  {
    Span s("once");
    count(Op::kGmDecrypt, 1);
  }
  const auto rows = Tracer::global().summary();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "repeat");
  EXPECT_EQ(rows[0].calls, 3u);
  EXPECT_EQ(rows[0].ops[static_cast<std::size_t>(Op::kGmEncrypt)], 6u);
  EXPECT_GT(rows[0].total_ns, 0u);
  EXPECT_EQ(rows[1].name, "once");
  EXPECT_EQ(rows[1].calls, 1u);
}

TEST_F(ObsTest, OpNamesAreUniqueAndKnown) {
  for (std::size_t i = 0; i < kNumOps; ++i) {
    const std::string name = op_name(static_cast<Op>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown") << i;
    for (std::size_t j = i + 1; j < kNumOps; ++j) {
      EXPECT_NE(name, op_name(static_cast<Op>(j))) << i << " vs " << j;
    }
  }
}

TEST_F(ObsTest, ChromeTraceJsonIsStrictlyValid) {
  Tracer::global().set_enabled(true);
  {
    Span root("phase \"quoted\"\n");  // hostile name: must be escaped
    root.note("k=v; path=C:\\tmp");
    count(Op::kModExp, 2);
    {
      Span child("child");
      count(Op::kOtExtended, 4);
    }
  }
  const std::string json = Tracer::global().chrome_trace_json();
  testjson::Value doc;
  ASSERT_NO_THROW(doc = testjson::parse(json)) << json;
  ASSERT_TRUE(doc.is_object());
  const testjson::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  for (const testjson::Value& ev : events->array) {
    ASSERT_TRUE(ev.is_object());
    ASSERT_NE(ev.find("name"), nullptr);
    ASSERT_NE(ev.find("ts"), nullptr);
    ASSERT_NE(ev.find("dur"), nullptr);
    const testjson::Value* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->string, "X");
    ASSERT_NE(ev.find("args"), nullptr);
    ASSERT_NE(ev.find("args")->find("ops"), nullptr);
  }
  // Hostile characters survived the round trip.
  EXPECT_EQ(events->array[0].find("name")->string, "phase \"quoted\"\n");
  EXPECT_EQ(events->array[0].find("args")->find("note")->string, "k=v; path=C:\\tmp");
  // Per-event ops carry the recorded counts.
  const testjson::Value* root_ops = events->array[0].find("args")->find("ops");
  ASSERT_NE(root_ops->find("modexp"), nullptr);
  EXPECT_EQ(root_ops->find("modexp")->number, 2.0);
  EXPECT_EQ(root_ops->find("ot_extended")->number, 4.0);
}

TEST_F(ObsTest, OpenSpansAreExcludedFromExportAndSummary) {
  Tracer::global().set_enabled(true);
  Span still_open("unfinished");
  count(Op::kModExp, 1);
  const std::string json = Tracer::global().chrome_trace_json();
  const testjson::Value doc = testjson::parse(json);
  EXPECT_TRUE(doc.find("traceEvents")->array.empty());
  EXPECT_TRUE(Tracer::global().summary().empty());
  // spans() still exposes it, flagged open, for debugging.
  const auto spans = Tracer::global().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].open());
}

TEST_F(ObsTest, WriteChromeTraceIsAtomicAndReportsFailure) {
  Tracer::global().set_enabled(true);
  {
    Span s("persisted");
    count(Op::kGarbledGates, 9);
  }
  const std::string path = ::testing::TempDir() + "obs_test_trace.json";
  ASSERT_TRUE(Tracer::global().write_chrome_trace(path));
  // No temp file left behind; the final file parses strictly.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, got);
  std::fclose(f);
  std::remove(path.c_str());
  const testjson::Value doc = testjson::parse(content);
  EXPECT_EQ(doc.find("traceEvents")->array.size(), 1u);
  // Unwritable destination: clean failure, no throw.
  EXPECT_FALSE(Tracer::global().write_chrome_trace("/nonexistent-dir/trace.json"));
}

TEST_F(ObsTest, ResetClearsSpansAndEpoch) {
  Tracer::global().set_enabled(true);
  {
    Span s("before-reset");
    count(Op::kModExp, 1);
  }
  Tracer::global().reset();
  EXPECT_TRUE(Tracer::global().spans().empty());
  for (const std::uint64_t c : Tracer::global().totals()) EXPECT_EQ(c, 0u);
  {
    Span s("after-reset");
  }
  const auto spans = Tracer::global().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "after-reset");
  EXPECT_EQ(spans[0].parent, SpanRecord::kNoParent);
}

}  // namespace
}  // namespace spfe::obs
