// Property-based and differential tests across the protocol stack:
//   - random arithmetic circuits: §3.3.4 MPC output == plaintext evaluation;
//   - random Boolean circuits: garbled evaluation == plain evaluation;
//   - end-to-end SPFE differential sweep vs plaintext references;
//   - metadata-privacy: message *sizes* must not depend on the client's
//     secret indices (a size channel would break client privacy regardless
//     of the cryptography).
#include <gtest/gtest.h>

#include "circuits/arith_circuit.h"
#include "circuits/boolean_circuit.h"
#include "he/paillier.h"
#include "mpc/arith_protocol.h"
#include "mpc/yao.h"
#include "spfe/input_selection.h"
#include "spfe/multiserver.h"
#include "spfe/stats.h"
#include "spfe/two_phase.h"

namespace spfe {
namespace {

using circuits::ArithCircuit;
using circuits::BooleanCircuit;

// Uniformly random arithmetic circuit with the given number of gates.
ArithCircuit random_arith_circuit(std::size_t num_inputs, std::uint64_t modulus,
                                  std::size_t gates, std::size_t max_mults, crypto::Prg& prg) {
  ArithCircuit c(num_inputs, modulus);
  std::vector<std::uint32_t> nodes;
  for (std::size_t i = 0; i < num_inputs; ++i) nodes.push_back(c.input(i));
  std::size_t mults = 0;
  for (std::size_t g = 0; g < gates; ++g) {
    const std::uint32_t a = nodes[prg.uniform(nodes.size())];
    const std::uint32_t b = nodes[prg.uniform(nodes.size())];
    switch (prg.uniform(5)) {
      case 0:
        nodes.push_back(c.add(a, b));
        break;
      case 1:
        nodes.push_back(c.sub(a, b));
        break;
      case 2:
        nodes.push_back(c.mul_const(a, prg.uniform(modulus)));
        break;
      case 3:
        nodes.push_back(c.constant(prg.uniform(modulus)));
        break;
      default:
        if (mults < max_mults) {
          nodes.push_back(c.mul(a, b));
          ++mults;
        } else {
          nodes.push_back(c.add(a, b));
        }
        break;
    }
  }
  c.add_output(nodes.back());
  c.add_output(nodes[prg.uniform(nodes.size())]);
  return c;
}

TEST(PropertyArithMpc, RandomCircuitsMatchPlainEvaluation) {
  crypto::Prg key_prg("prop-arith-key");
  const he::PaillierPrivateKey sk = he::paillier_keygen(key_prg, 512);
  crypto::Prg prg("prop-arith");
  constexpr std::uint64_t kU = 65537;
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t m = 2 + prg.uniform(3);
    const ArithCircuit circuit = random_arith_circuit(m, kU, 8 + prg.uniform(8), 3, prg);
    std::vector<std::uint64_t> xs(m), cs(m), ss(m);
    for (std::size_t j = 0; j < m; ++j) {
      xs[j] = prg.uniform(kU);
      ss[j] = prg.uniform(kU);
      cs[j] = (xs[j] + kU - ss[j]) % kU;
    }
    net::StarNetwork net(1);
    crypto::Prg cprg("c" + std::to_string(trial)), sprg("s" + std::to_string(trial));
    const auto got = mpc::run_arith_mpc_shared(net, 0, circuit, sk, cs, ss, cprg, sprg);
    EXPECT_EQ(got, circuit.eval(xs)) << "trial " << trial;
    EXPECT_TRUE(net.idle());
  }
}

// Random Boolean circuit over layered random gates.
BooleanCircuit random_boolean_circuit(std::size_t num_inputs, std::size_t gates,
                                      crypto::Prg& prg) {
  BooleanCircuit c(num_inputs);
  std::vector<circuits::WireId> wires;
  for (std::size_t i = 0; i < num_inputs; ++i) wires.push_back(c.input(i));
  for (std::size_t g = 0; g < gates; ++g) {
    const circuits::WireId a = wires[prg.uniform(wires.size())];
    const circuits::WireId b = wires[prg.uniform(wires.size())];
    switch (prg.uniform(5)) {
      case 0:
        wires.push_back(c.xor_gate(a, b));
        break;
      case 1:
        wires.push_back(c.and_gate(a, b));
        break;
      case 2:
        wires.push_back(c.or_gate(a, b));
        break;
      case 3:
        wires.push_back(c.not_gate(a));
        break;
      default:
        wires.push_back(c.const_wire(prg.coin()));
        break;
    }
  }
  for (int o = 0; o < 3; ++o) c.add_output(wires[wires.size() - 1 - static_cast<std::size_t>(o)]);
  return c;
}

TEST(PropertyYao, RandomCircuitsGarbleCorrectly) {
  crypto::Prg prg("prop-yao");
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t inputs = 2 + prg.uniform(6);
    const BooleanCircuit c = random_boolean_circuit(inputs, 10 + prg.uniform(30), prg);
    const mpc::GarblingResult g = mpc::garble(c, prg);
    for (int iv = 0; iv < 4; ++iv) {
      std::vector<bool> in(inputs);
      std::vector<mpc::Label> active(inputs);
      for (std::size_t i = 0; i < inputs; ++i) {
        in[i] = prg.coin();
        active[i] = g.input_labels[i].get(in[i]);
      }
      EXPECT_EQ(mpc::evaluate(c, g.garbled, active), c.eval(in))
          << "trial " << trial << " iv " << iv;
    }
  }
}

TEST(PropertySpfe, WeightedSumDifferentialSweep) {
  crypto::Prg key_prg("prop-ws-key");
  const he::PaillierPrivateKey sk = he::paillier_keygen(key_prg, 512);
  crypto::Prg prg("prop-ws");
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t n = 16 + prg.uniform(100);
    const std::size_t m = 1 + prg.uniform(6);
    const std::uint64_t cap = 1 + prg.uniform(10000);
    const field::Fp64 field(
        field::smallest_prime_above(std::max<std::uint64_t>(n + 1, m * cap + 1)));
    std::vector<std::uint64_t> db(n);
    for (auto& v : db) v = prg.uniform(cap);
    std::vector<std::size_t> indices(m);
    std::vector<std::uint64_t> weights(m);
    for (std::size_t j = 0; j < m; ++j) {
      indices[j] = prg.uniform(n);
      weights[j] = prg.uniform(10);
    }
    const protocols::WeightedSumProtocol proto(field, n, m, 1 + prg.uniform(2));
    net::StarNetwork net(1);
    crypto::Prg cprg("wc" + std::to_string(trial)), sprg("ws" + std::to_string(trial));
    const std::uint64_t got = proto.run(net, 0, db, indices, weights, sk, cprg, sprg);
    std::uint64_t expect = 0;
    for (std::size_t j = 0; j < m; ++j) {
      expect = (expect + weights[j] % field.modulus() * (db[indices[j]] % field.modulus())) %
               field.modulus();
    }
    EXPECT_EQ(got, expect) << "trial " << trial << " n=" << n << " m=" << m;
  }
}

TEST(PropertySpfe, MultiServerSumDifferentialSweep) {
  const field::Fp64 field(field::Fp64::kMersenne61);
  crypto::Prg prg("prop-ms");
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 2 + prg.uniform(500);
    const std::size_t m = 1 + prg.uniform(8);
    const std::size_t t = 1 + prg.uniform(2);
    const std::size_t k = protocols::MultiServerSumSpfe::min_servers(n, t);
    const protocols::MultiServerSumSpfe proto(field, n, m, k, t);
    std::vector<std::uint64_t> db(n);
    for (auto& v : db) v = prg.uniform(1u << 20);
    std::vector<std::size_t> indices(m);
    for (auto& i : indices) i = prg.uniform(n);
    std::uint64_t expect = 0;
    for (const std::size_t i : indices) expect += db[i];
    net::StarNetwork net(k);
    EXPECT_EQ(proto.run(net, db, indices, std::nullopt, prg), expect)
        << "trial " << trial << " n=" << n << " m=" << m << " t=" << t;
  }
}

// Message sizes must be a function of public parameters only, never of the
// selected indices — otherwise the size itself leaks the query.
TEST(PropertyPrivacy, QuerySizesIndependentOfIndices) {
  crypto::Prg key_prg("prop-size-key");
  const he::PaillierPrivateKey client_sk = he::paillier_keygen(key_prg, 512);
  const he::PaillierPrivateKey server_sk = he::paillier_keygen(key_prg, 512);
  constexpr std::size_t kN = 64;
  const std::uint64_t p = field::smallest_prime_above(1000);
  std::vector<std::uint64_t> db(kN);
  for (std::size_t i = 0; i < kN; ++i) db[i] = i % 1000;

  for (const auto method :
       {protocols::SelectionMethod::kPerItem, protocols::SelectionMethod::kPolyMaskClientKey,
        protocols::SelectionMethod::kPolyMaskServerKey,
        protocols::SelectionMethod::kEncryptedDb}) {
    std::vector<net::CommStats> stats;
    for (const std::vector<std::size_t>& indices :
         {std::vector<std::size_t>{0, 1, 2}, std::vector<std::size_t>{61, 7, 33}}) {
      net::StarNetwork net(1);
      crypto::Prg cprg("pc"), sprg("ps");
      (void)protocols::run_input_selection(net, 0, db, indices, p, method, client_sk,
                                           server_sk, 1, cprg, sprg);
      stats.push_back(net.stats());
    }
    EXPECT_EQ(stats[0].client_to_server_bytes, stats[1].client_to_server_bytes)
        << protocols::selection_method_name(method);
    EXPECT_EQ(stats[0].server_to_client_bytes, stats[1].server_to_client_bytes)
        << protocols::selection_method_name(method);
    EXPECT_EQ(stats[0].client_to_server_messages, stats[1].client_to_server_messages)
        << protocols::selection_method_name(method);
  }
}

TEST(PropertyPrivacy, MultiServerQuerySizesIndependentOfIndices) {
  const field::Fp64 field(field::Fp64::kMersenne61);
  constexpr std::size_t kN = 128, kM = 3, kT = 1;
  const std::size_t k = protocols::MultiServerSumSpfe::min_servers(kN, kT);
  const protocols::MultiServerSumSpfe proto(field, kN, kM, k, kT);
  crypto::Prg prg("prop-ms-size");
  std::vector<std::size_t> sizes;
  for (const std::vector<std::size_t>& indices :
       {std::vector<std::size_t>{0, 0, 0}, std::vector<std::size_t>{127, 64, 1}}) {
    protocols::MultiServerSumSpfe::ClientState state;
    const auto queries = proto.make_queries(indices, state, prg);
    std::size_t total = 0;
    for (const Bytes& q : queries) total += q.size();
    sizes.push_back(total);
  }
  EXPECT_EQ(sizes[0], sizes[1]);
}

}  // namespace
}  // namespace spfe
