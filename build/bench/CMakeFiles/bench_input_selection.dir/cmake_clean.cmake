file(REMOVE_RECURSE
  "CMakeFiles/bench_input_selection.dir/bench_input_selection.cpp.o"
  "CMakeFiles/bench_input_selection.dir/bench_input_selection.cpp.o.d"
  "bench_input_selection"
  "bench_input_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_input_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
