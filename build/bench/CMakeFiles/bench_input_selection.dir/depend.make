# Empty dependencies file for bench_input_selection.
# This may be replaced when dependencies are built.
