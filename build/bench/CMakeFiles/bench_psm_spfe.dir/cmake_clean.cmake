file(REMOVE_RECURSE
  "CMakeFiles/bench_psm_spfe.dir/bench_psm_spfe.cpp.o"
  "CMakeFiles/bench_psm_spfe.dir/bench_psm_spfe.cpp.o.d"
  "bench_psm_spfe"
  "bench_psm_spfe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_psm_spfe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
