# Empty compiler generated dependencies file for bench_psm_spfe.
# This may be replaced when dependencies are built.
