
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_primitives.cpp" "bench/CMakeFiles/bench_primitives.dir/bench_primitives.cpp.o" "gcc" "bench/CMakeFiles/bench_primitives.dir/bench_primitives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spfe/CMakeFiles/spfe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pir/CMakeFiles/spfe_pir.dir/DependInfo.cmake"
  "/root/repo/build/src/psm/CMakeFiles/spfe_psm.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/spfe_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/spfe_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/spfe_field.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spfe_net.dir/DependInfo.cmake"
  "/root/repo/build/src/he/CMakeFiles/spfe_he.dir/DependInfo.cmake"
  "/root/repo/build/src/ot/CMakeFiles/spfe_ot.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/spfe_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/spfe_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spfe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
