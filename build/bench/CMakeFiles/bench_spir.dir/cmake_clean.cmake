file(REMOVE_RECURSE
  "CMakeFiles/bench_spir.dir/bench_spir.cpp.o"
  "CMakeFiles/bench_spir.dir/bench_spir.cpp.o.d"
  "bench_spir"
  "bench_spir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
