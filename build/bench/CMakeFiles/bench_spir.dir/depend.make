# Empty dependencies file for bench_spir.
# This may be replaced when dependencies are built.
