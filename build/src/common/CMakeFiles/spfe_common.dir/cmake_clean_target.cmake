file(REMOVE_RECURSE
  "libspfe_common.a"
)
