# Empty dependencies file for spfe_common.
# This may be replaced when dependencies are built.
