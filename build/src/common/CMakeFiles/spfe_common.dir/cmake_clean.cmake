file(REMOVE_RECURSE
  "CMakeFiles/spfe_common.dir/bytes.cpp.o"
  "CMakeFiles/spfe_common.dir/bytes.cpp.o.d"
  "CMakeFiles/spfe_common.dir/serialize.cpp.o"
  "CMakeFiles/spfe_common.dir/serialize.cpp.o.d"
  "libspfe_common.a"
  "libspfe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
