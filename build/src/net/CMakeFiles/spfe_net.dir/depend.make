# Empty dependencies file for spfe_net.
# This may be replaced when dependencies are built.
