file(REMOVE_RECURSE
  "CMakeFiles/spfe_net.dir/network.cpp.o"
  "CMakeFiles/spfe_net.dir/network.cpp.o.d"
  "libspfe_net.a"
  "libspfe_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfe_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
