file(REMOVE_RECURSE
  "libspfe_net.a"
)
