file(REMOVE_RECURSE
  "libspfe_circuits.a"
)
