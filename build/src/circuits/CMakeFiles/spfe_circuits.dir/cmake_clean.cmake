file(REMOVE_RECURSE
  "CMakeFiles/spfe_circuits.dir/arith_circuit.cpp.o"
  "CMakeFiles/spfe_circuits.dir/arith_circuit.cpp.o.d"
  "CMakeFiles/spfe_circuits.dir/boolean_circuit.cpp.o"
  "CMakeFiles/spfe_circuits.dir/boolean_circuit.cpp.o.d"
  "CMakeFiles/spfe_circuits.dir/branching_program.cpp.o"
  "CMakeFiles/spfe_circuits.dir/branching_program.cpp.o.d"
  "CMakeFiles/spfe_circuits.dir/formula.cpp.o"
  "CMakeFiles/spfe_circuits.dir/formula.cpp.o.d"
  "libspfe_circuits.a"
  "libspfe_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfe_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
