# Empty dependencies file for spfe_circuits.
# This may be replaced when dependencies are built.
