file(REMOVE_RECURSE
  "CMakeFiles/spfe_he.dir/goldwasser_micali.cpp.o"
  "CMakeFiles/spfe_he.dir/goldwasser_micali.cpp.o.d"
  "CMakeFiles/spfe_he.dir/paillier.cpp.o"
  "CMakeFiles/spfe_he.dir/paillier.cpp.o.d"
  "libspfe_he.a"
  "libspfe_he.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfe_he.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
