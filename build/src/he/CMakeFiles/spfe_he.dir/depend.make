# Empty dependencies file for spfe_he.
# This may be replaced when dependencies are built.
