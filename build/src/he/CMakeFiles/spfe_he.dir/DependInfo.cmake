
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/he/goldwasser_micali.cpp" "src/he/CMakeFiles/spfe_he.dir/goldwasser_micali.cpp.o" "gcc" "src/he/CMakeFiles/spfe_he.dir/goldwasser_micali.cpp.o.d"
  "/root/repo/src/he/paillier.cpp" "src/he/CMakeFiles/spfe_he.dir/paillier.cpp.o" "gcc" "src/he/CMakeFiles/spfe_he.dir/paillier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spfe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/spfe_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/spfe_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
