file(REMOVE_RECURSE
  "libspfe_he.a"
)
