file(REMOVE_RECURSE
  "CMakeFiles/spfe_psm.dir/psm.cpp.o"
  "CMakeFiles/spfe_psm.dir/psm.cpp.o.d"
  "CMakeFiles/spfe_psm.dir/psm_bp.cpp.o"
  "CMakeFiles/spfe_psm.dir/psm_bp.cpp.o.d"
  "libspfe_psm.a"
  "libspfe_psm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfe_psm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
