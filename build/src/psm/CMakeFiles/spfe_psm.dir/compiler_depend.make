# Empty compiler generated dependencies file for spfe_psm.
# This may be replaced when dependencies are built.
