file(REMOVE_RECURSE
  "libspfe_psm.a"
)
