# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("bignum")
subdirs("field")
subdirs("sharing")
subdirs("net")
subdirs("circuits")
subdirs("he")
subdirs("ot")
subdirs("mpc")
subdirs("pir")
subdirs("psm")
subdirs("spfe")
subdirs("dbgen")
