file(REMOVE_RECURSE
  "CMakeFiles/spfe_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/spfe_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/spfe_crypto.dir/kdf.cpp.o"
  "CMakeFiles/spfe_crypto.dir/kdf.cpp.o.d"
  "CMakeFiles/spfe_crypto.dir/prg.cpp.o"
  "CMakeFiles/spfe_crypto.dir/prg.cpp.o.d"
  "CMakeFiles/spfe_crypto.dir/sha256.cpp.o"
  "CMakeFiles/spfe_crypto.dir/sha256.cpp.o.d"
  "libspfe_crypto.a"
  "libspfe_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfe_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
