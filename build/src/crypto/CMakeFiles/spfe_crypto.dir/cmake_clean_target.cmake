file(REMOVE_RECURSE
  "libspfe_crypto.a"
)
