# Empty compiler generated dependencies file for spfe_crypto.
# This may be replaced when dependencies are built.
