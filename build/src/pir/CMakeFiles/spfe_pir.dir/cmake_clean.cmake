file(REMOVE_RECURSE
  "CMakeFiles/spfe_pir.dir/batch_pir.cpp.o"
  "CMakeFiles/spfe_pir.dir/batch_pir.cpp.o.d"
  "CMakeFiles/spfe_pir.dir/cpir.cpp.o"
  "CMakeFiles/spfe_pir.dir/cpir.cpp.o.d"
  "CMakeFiles/spfe_pir.dir/itpir.cpp.o"
  "CMakeFiles/spfe_pir.dir/itpir.cpp.o.d"
  "libspfe_pir.a"
  "libspfe_pir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfe_pir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
