# Empty compiler generated dependencies file for spfe_pir.
# This may be replaced when dependencies are built.
