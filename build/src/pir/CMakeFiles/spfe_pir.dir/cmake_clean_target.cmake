file(REMOVE_RECURSE
  "libspfe_pir.a"
)
