file(REMOVE_RECURSE
  "libspfe_sharing.a"
)
