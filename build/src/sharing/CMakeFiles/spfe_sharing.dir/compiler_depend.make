# Empty compiler generated dependencies file for spfe_sharing.
# This may be replaced when dependencies are built.
