file(REMOVE_RECURSE
  "CMakeFiles/spfe_sharing.dir/additive.cpp.o"
  "CMakeFiles/spfe_sharing.dir/additive.cpp.o.d"
  "libspfe_sharing.a"
  "libspfe_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfe_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
