file(REMOVE_RECURSE
  "libspfe_bignum.a"
)
