file(REMOVE_RECURSE
  "CMakeFiles/spfe_bignum.dir/bigint.cpp.o"
  "CMakeFiles/spfe_bignum.dir/bigint.cpp.o.d"
  "CMakeFiles/spfe_bignum.dir/modarith.cpp.o"
  "CMakeFiles/spfe_bignum.dir/modarith.cpp.o.d"
  "CMakeFiles/spfe_bignum.dir/primes.cpp.o"
  "CMakeFiles/spfe_bignum.dir/primes.cpp.o.d"
  "CMakeFiles/spfe_bignum.dir/serialize.cpp.o"
  "CMakeFiles/spfe_bignum.dir/serialize.cpp.o.d"
  "libspfe_bignum.a"
  "libspfe_bignum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfe_bignum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
