# Empty compiler generated dependencies file for spfe_bignum.
# This may be replaced when dependencies are built.
