
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bignum/bigint.cpp" "src/bignum/CMakeFiles/spfe_bignum.dir/bigint.cpp.o" "gcc" "src/bignum/CMakeFiles/spfe_bignum.dir/bigint.cpp.o.d"
  "/root/repo/src/bignum/modarith.cpp" "src/bignum/CMakeFiles/spfe_bignum.dir/modarith.cpp.o" "gcc" "src/bignum/CMakeFiles/spfe_bignum.dir/modarith.cpp.o.d"
  "/root/repo/src/bignum/primes.cpp" "src/bignum/CMakeFiles/spfe_bignum.dir/primes.cpp.o" "gcc" "src/bignum/CMakeFiles/spfe_bignum.dir/primes.cpp.o.d"
  "/root/repo/src/bignum/serialize.cpp" "src/bignum/CMakeFiles/spfe_bignum.dir/serialize.cpp.o" "gcc" "src/bignum/CMakeFiles/spfe_bignum.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spfe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/spfe_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
