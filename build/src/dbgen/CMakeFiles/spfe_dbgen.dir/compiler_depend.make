# Empty compiler generated dependencies file for spfe_dbgen.
# This may be replaced when dependencies are built.
