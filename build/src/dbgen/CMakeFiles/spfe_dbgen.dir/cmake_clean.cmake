file(REMOVE_RECURSE
  "CMakeFiles/spfe_dbgen.dir/census.cpp.o"
  "CMakeFiles/spfe_dbgen.dir/census.cpp.o.d"
  "libspfe_dbgen.a"
  "libspfe_dbgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfe_dbgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
