file(REMOVE_RECURSE
  "libspfe_dbgen.a"
)
