file(REMOVE_RECURSE
  "libspfe_field.a"
)
