# Empty compiler generated dependencies file for spfe_field.
# This may be replaced when dependencies are built.
