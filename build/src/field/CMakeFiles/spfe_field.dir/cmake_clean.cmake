file(REMOVE_RECURSE
  "CMakeFiles/spfe_field.dir/fp64.cpp.o"
  "CMakeFiles/spfe_field.dir/fp64.cpp.o.d"
  "CMakeFiles/spfe_field.dir/gf2.cpp.o"
  "CMakeFiles/spfe_field.dir/gf2.cpp.o.d"
  "CMakeFiles/spfe_field.dir/zp.cpp.o"
  "CMakeFiles/spfe_field.dir/zp.cpp.o.d"
  "libspfe_field.a"
  "libspfe_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfe_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
