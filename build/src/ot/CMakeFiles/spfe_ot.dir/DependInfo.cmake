
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ot/base_ot.cpp" "src/ot/CMakeFiles/spfe_ot.dir/base_ot.cpp.o" "gcc" "src/ot/CMakeFiles/spfe_ot.dir/base_ot.cpp.o.d"
  "/root/repo/src/ot/group.cpp" "src/ot/CMakeFiles/spfe_ot.dir/group.cpp.o" "gcc" "src/ot/CMakeFiles/spfe_ot.dir/group.cpp.o.d"
  "/root/repo/src/ot/ot_extension.cpp" "src/ot/CMakeFiles/spfe_ot.dir/ot_extension.cpp.o" "gcc" "src/ot/CMakeFiles/spfe_ot.dir/ot_extension.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spfe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/spfe_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/spfe_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
