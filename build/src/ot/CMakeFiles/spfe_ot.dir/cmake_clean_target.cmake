file(REMOVE_RECURSE
  "libspfe_ot.a"
)
