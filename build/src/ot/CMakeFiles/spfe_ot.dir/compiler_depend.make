# Empty compiler generated dependencies file for spfe_ot.
# This may be replaced when dependencies are built.
