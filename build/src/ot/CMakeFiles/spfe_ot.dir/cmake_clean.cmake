file(REMOVE_RECURSE
  "CMakeFiles/spfe_ot.dir/base_ot.cpp.o"
  "CMakeFiles/spfe_ot.dir/base_ot.cpp.o.d"
  "CMakeFiles/spfe_ot.dir/group.cpp.o"
  "CMakeFiles/spfe_ot.dir/group.cpp.o.d"
  "CMakeFiles/spfe_ot.dir/ot_extension.cpp.o"
  "CMakeFiles/spfe_ot.dir/ot_extension.cpp.o.d"
  "libspfe_ot.a"
  "libspfe_ot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfe_ot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
