file(REMOVE_RECURSE
  "libspfe_mpc.a"
)
