file(REMOVE_RECURSE
  "CMakeFiles/spfe_mpc.dir/arith_protocol.cpp.o"
  "CMakeFiles/spfe_mpc.dir/arith_protocol.cpp.o.d"
  "CMakeFiles/spfe_mpc.dir/yao.cpp.o"
  "CMakeFiles/spfe_mpc.dir/yao.cpp.o.d"
  "CMakeFiles/spfe_mpc.dir/yao_protocol.cpp.o"
  "CMakeFiles/spfe_mpc.dir/yao_protocol.cpp.o.d"
  "libspfe_mpc.a"
  "libspfe_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfe_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
