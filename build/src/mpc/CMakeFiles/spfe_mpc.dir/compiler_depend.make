# Empty compiler generated dependencies file for spfe_mpc.
# This may be replaced when dependencies are built.
