file(REMOVE_RECURSE
  "CMakeFiles/spfe_core.dir/input_selection.cpp.o"
  "CMakeFiles/spfe_core.dir/input_selection.cpp.o.d"
  "CMakeFiles/spfe_core.dir/multiserver.cpp.o"
  "CMakeFiles/spfe_core.dir/multiserver.cpp.o.d"
  "CMakeFiles/spfe_core.dir/psm_spfe.cpp.o"
  "CMakeFiles/spfe_core.dir/psm_spfe.cpp.o.d"
  "CMakeFiles/spfe_core.dir/stats.cpp.o"
  "CMakeFiles/spfe_core.dir/stats.cpp.o.d"
  "CMakeFiles/spfe_core.dir/two_phase.cpp.o"
  "CMakeFiles/spfe_core.dir/two_phase.cpp.o.d"
  "libspfe_core.a"
  "libspfe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
