# Empty dependencies file for spfe_core.
# This may be replaced when dependencies are built.
