file(REMOVE_RECURSE
  "libspfe_core.a"
)
