file(REMOVE_RECURSE
  "CMakeFiles/spfe_singleserver_test.dir/spfe_singleserver_test.cpp.o"
  "CMakeFiles/spfe_singleserver_test.dir/spfe_singleserver_test.cpp.o.d"
  "spfe_singleserver_test"
  "spfe_singleserver_test.pdb"
  "spfe_singleserver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfe_singleserver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
