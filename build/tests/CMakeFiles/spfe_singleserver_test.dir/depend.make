# Empty dependencies file for spfe_singleserver_test.
# This may be replaced when dependencies are built.
