# Empty dependencies file for psm_bp_test.
# This may be replaced when dependencies are built.
