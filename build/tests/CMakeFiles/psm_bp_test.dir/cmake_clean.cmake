file(REMOVE_RECURSE
  "CMakeFiles/psm_bp_test.dir/psm_bp_test.cpp.o"
  "CMakeFiles/psm_bp_test.dir/psm_bp_test.cpp.o.d"
  "psm_bp_test"
  "psm_bp_test.pdb"
  "psm_bp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psm_bp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
