# Empty dependencies file for spfe_stats_test.
# This may be replaced when dependencies are built.
