file(REMOVE_RECURSE
  "CMakeFiles/spfe_stats_test.dir/spfe_stats_test.cpp.o"
  "CMakeFiles/spfe_stats_test.dir/spfe_stats_test.cpp.o.d"
  "spfe_stats_test"
  "spfe_stats_test.pdb"
  "spfe_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfe_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
