# Empty compiler generated dependencies file for bignum_stress_test.
# This may be replaced when dependencies are built.
