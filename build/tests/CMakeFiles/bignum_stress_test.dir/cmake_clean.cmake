file(REMOVE_RECURSE
  "CMakeFiles/bignum_stress_test.dir/bignum_stress_test.cpp.o"
  "CMakeFiles/bignum_stress_test.dir/bignum_stress_test.cpp.o.d"
  "bignum_stress_test"
  "bignum_stress_test.pdb"
  "bignum_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bignum_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
