file(REMOVE_RECURSE
  "CMakeFiles/ot_test.dir/ot_test.cpp.o"
  "CMakeFiles/ot_test.dir/ot_test.cpp.o.d"
  "ot_test"
  "ot_test.pdb"
  "ot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
