# Empty dependencies file for spfe_multiserver_test.
# This may be replaced when dependencies are built.
