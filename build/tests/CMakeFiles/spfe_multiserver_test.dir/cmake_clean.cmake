file(REMOVE_RECURSE
  "CMakeFiles/spfe_multiserver_test.dir/spfe_multiserver_test.cpp.o"
  "CMakeFiles/spfe_multiserver_test.dir/spfe_multiserver_test.cpp.o.d"
  "spfe_multiserver_test"
  "spfe_multiserver_test.pdb"
  "spfe_multiserver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spfe_multiserver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
