# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/bignum_test[1]_include.cmake")
include("/root/repo/build/tests/field_test[1]_include.cmake")
include("/root/repo/build/tests/sharing_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/circuits_test[1]_include.cmake")
include("/root/repo/build/tests/he_test[1]_include.cmake")
include("/root/repo/build/tests/ot_test[1]_include.cmake")
include("/root/repo/build/tests/mpc_test[1]_include.cmake")
include("/root/repo/build/tests/pir_test[1]_include.cmake")
include("/root/repo/build/tests/psm_test[1]_include.cmake")
include("/root/repo/build/tests/spfe_multiserver_test[1]_include.cmake")
include("/root/repo/build/tests/spfe_singleserver_test[1]_include.cmake")
include("/root/repo/build/tests/spfe_stats_test[1]_include.cmake")
include("/root/repo/build/tests/reed_solomon_test[1]_include.cmake")
include("/root/repo/build/tests/psm_bp_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/bignum_stress_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
