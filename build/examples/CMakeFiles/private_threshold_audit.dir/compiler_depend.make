# Empty compiler generated dependencies file for private_threshold_audit.
# This may be replaced when dependencies are built.
