file(REMOVE_RECURSE
  "CMakeFiles/private_threshold_audit.dir/private_threshold_audit.cpp.o"
  "CMakeFiles/private_threshold_audit.dir/private_threshold_audit.cpp.o.d"
  "private_threshold_audit"
  "private_threshold_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_threshold_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
