# Empty compiler generated dependencies file for perfect_privacy_match.
# This may be replaced when dependencies are built.
