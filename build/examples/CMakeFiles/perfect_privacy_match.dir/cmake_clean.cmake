file(REMOVE_RECURSE
  "CMakeFiles/perfect_privacy_match.dir/perfect_privacy_match.cpp.o"
  "CMakeFiles/perfect_privacy_match.dir/perfect_privacy_match.cpp.o.d"
  "perfect_privacy_match"
  "perfect_privacy_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfect_privacy_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
