# Empty compiler generated dependencies file for private_salary_survey.
# This may be replaced when dependencies are built.
