file(REMOVE_RECURSE
  "CMakeFiles/private_salary_survey.dir/private_salary_survey.cpp.o"
  "CMakeFiles/private_salary_survey.dir/private_salary_survey.cpp.o.d"
  "private_salary_survey"
  "private_salary_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_salary_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
