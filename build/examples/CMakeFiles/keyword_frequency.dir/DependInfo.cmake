
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/keyword_frequency.cpp" "examples/CMakeFiles/keyword_frequency.dir/keyword_frequency.cpp.o" "gcc" "examples/CMakeFiles/keyword_frequency.dir/keyword_frequency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spfe/CMakeFiles/spfe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dbgen/CMakeFiles/spfe_dbgen.dir/DependInfo.cmake"
  "/root/repo/build/src/pir/CMakeFiles/spfe_pir.dir/DependInfo.cmake"
  "/root/repo/build/src/psm/CMakeFiles/spfe_psm.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/spfe_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/spfe_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/spfe_field.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spfe_net.dir/DependInfo.cmake"
  "/root/repo/build/src/he/CMakeFiles/spfe_he.dir/DependInfo.cmake"
  "/root/repo/build/src/ot/CMakeFiles/spfe_ot.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/spfe_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/spfe_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spfe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
