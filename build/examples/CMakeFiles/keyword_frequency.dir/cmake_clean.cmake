file(REMOVE_RECURSE
  "CMakeFiles/keyword_frequency.dir/keyword_frequency.cpp.o"
  "CMakeFiles/keyword_frequency.dir/keyword_frequency.cpp.o.d"
  "keyword_frequency"
  "keyword_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyword_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
