# Empty compiler generated dependencies file for keyword_frequency.
# This may be replaced when dependencies are built.
