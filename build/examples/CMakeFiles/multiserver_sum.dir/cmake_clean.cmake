file(REMOVE_RECURSE
  "CMakeFiles/multiserver_sum.dir/multiserver_sum.cpp.o"
  "CMakeFiles/multiserver_sum.dir/multiserver_sum.cpp.o.d"
  "multiserver_sum"
  "multiserver_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiserver_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
