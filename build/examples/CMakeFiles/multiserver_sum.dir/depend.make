# Empty dependencies file for multiserver_sum.
# This may be replaced when dependencies are built.
