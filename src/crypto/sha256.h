// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used as the hash behind garbled-circuit row encryption, OT key derivation,
// and commitment-style checks in tests. Supports incremental hashing.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace spfe::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;

  Sha256();

  void update(BytesView data);
  // Finalizes and returns the digest; the object must not be reused after.
  std::array<std::uint8_t, kDigestSize> finish();

  // One-shot convenience.
  static std::array<std::uint8_t, kDigestSize> hash(BytesView data);
  static Bytes hash_bytes(BytesView data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace spfe::crypto
