// Seeded pseudorandom generator used for all protocol randomness.
//
// Every protocol object takes a `Prg&` rather than touching global entropy,
// which makes runs reproducible in tests and lets two parties derive common
// randomness from a shared seed (needed by the multi-server SPIR masking and
// the PSM common random input).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "crypto/chacha20.h"

namespace spfe::crypto {

class Prg {
 public:
  static constexpr std::size_t kSeedSize = 32;
  using Seed = std::array<std::uint8_t, kSeedSize>;

  explicit Prg(const Seed& seed);
  // Seed from a label (hashed); convenient for tests.
  explicit Prg(const std::string& label);

  // Fresh seed from the OS entropy source.
  static Seed random_seed();
  static Prg from_entropy();

  void fill(std::uint8_t* out, std::size_t len);
  Bytes bytes(std::size_t len);
  std::uint64_t u64();
  // Uniform value in [0, bound); bound must be > 0. Rejection-sampled.
  std::uint64_t uniform(std::uint64_t bound);
  bool coin();

  // Derives an independent child PRG; children with distinct labels are
  // computationally independent of each other and of the parent's stream.
  Prg fork(const std::string& label) const;
  Seed fork_seed(const std::string& label) const;

 private:
  Seed seed_;
  ChaCha20 stream_;
};

}  // namespace spfe::crypto
