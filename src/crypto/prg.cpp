#include "crypto/prg.h"

#include <random>

#include "common/error.h"
#include "crypto/sha256.h"

namespace spfe::crypto {
namespace {

constexpr std::array<std::uint8_t, ChaCha20::kNonceSize> kPrgNonce = {'s', 'p', 'f', 'e', '-',
                                                                      'p', 'r', 'g', 0,   0,
                                                                      0,   0};

Prg::Seed seed_from_label(const std::string& label) {
  const auto digest = Sha256::hash(
      BytesView(reinterpret_cast<const std::uint8_t*>(label.data()), label.size()));
  Prg::Seed s;
  std::copy(digest.begin(), digest.end(), s.begin());
  return s;
}

}  // namespace

Prg::Prg(const Seed& seed) : seed_(seed), stream_(seed, kPrgNonce) {}

Prg::Prg(const std::string& label) : Prg(seed_from_label(label)) {}

Prg::Seed Prg::random_seed() {
  std::random_device rd;
  Seed s;
  for (std::size_t i = 0; i < s.size(); i += 4) {
    const std::uint32_t v = rd();
    s[i] = static_cast<std::uint8_t>(v);
    s[i + 1] = static_cast<std::uint8_t>(v >> 8);
    s[i + 2] = static_cast<std::uint8_t>(v >> 16);
    s[i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  return s;
}

Prg Prg::from_entropy() { return Prg(random_seed()); }

void Prg::fill(std::uint8_t* out, std::size_t len) { stream_.keystream(out, len); }

Bytes Prg::bytes(std::size_t len) {
  Bytes out(len);
  fill(out.data(), len);
  return out;
}

std::uint64_t Prg::u64() {
  std::uint8_t b[8];
  fill(b, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t Prg::uniform(std::uint64_t bound) {
  if (bound == 0) throw InvalidArgument("Prg::uniform: bound must be positive");
  if ((bound & (bound - 1)) == 0) return u64() & (bound - 1);
  // Rejection sampling over the largest multiple of bound below 2^64.
  const std::uint64_t limit = std::uint64_t(0) - (std::uint64_t(0) - bound) % bound;
  for (;;) {
    const std::uint64_t v = u64();
    if (limit == 0 || v < limit) return v % bound;
  }
}

bool Prg::coin() {
  std::uint8_t b;
  fill(&b, 1);
  return (b & 1) != 0;
}

Prg::Seed Prg::fork_seed(const std::string& label) const {
  Sha256 h;
  h.update(BytesView(seed_.data(), seed_.size()));
  static constexpr std::uint8_t kSep = 0xff;
  h.update(BytesView(&kSep, 1));
  h.update(BytesView(reinterpret_cast<const std::uint8_t*>(label.data()), label.size()));
  const auto digest = h.finish();
  Seed s;
  std::copy(digest.begin(), digest.end(), s.begin());
  return s;
}

Prg Prg::fork(const std::string& label) const { return Prg(fork_seed(label)); }

}  // namespace spfe::crypto
