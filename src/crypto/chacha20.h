// ChaCha20 stream cipher (RFC 8439 block function), used as the PRG core.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace spfe::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;

  ChaCha20(const std::array<std::uint8_t, kKeySize>& key,
           const std::array<std::uint8_t, kNonceSize>& nonce, std::uint32_t initial_counter = 0);

  // Produces the keystream block for `counter` into `out`.
  void block(std::uint32_t counter, std::uint8_t out[kBlockSize]) const;

  // Fills `out` with keystream, advancing the internal counter.
  void keystream(std::uint8_t* out, std::size_t len);

  // XORs `data` with keystream (encrypt == decrypt).
  Bytes process(BytesView data);

 private:
  std::array<std::uint32_t, 16> state_;
  std::uint32_t counter_;
  std::array<std::uint8_t, kBlockSize> partial_;
  std::size_t partial_used_ = kBlockSize;  // no buffered keystream initially
};

}  // namespace spfe::crypto
