// SHA-256 based key derivation (counter-mode expand, HKDF-expand style).
//
// Used to derive wire-label encryption pads in Yao garbling and message
// masks in oblivious transfer, where the output length depends on payload
// size rather than being a fixed digest.
#pragma once

#include <string>

#include "common/bytes.h"

namespace spfe::crypto {

// Derives `out_len` pseudorandom bytes from `key_material` and `context`.
// Different contexts yield independent outputs for the same key material.
Bytes kdf_expand(BytesView key_material, const std::string& context, std::size_t out_len);

}  // namespace spfe::crypto
