#include "crypto/chacha20.h"

#include <cstring>

namespace spfe::crypto {
namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c, std::uint32_t& d) {
  a += b;
  d = rotl(d ^ a, 16);
  c += d;
  b = rotl(b ^ c, 12);
  a += b;
  d = rotl(d ^ a, 8);
  c += d;
  b = rotl(b ^ c, 7);
}

inline std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

ChaCha20::ChaCha20(const std::array<std::uint8_t, kKeySize>& key,
                   const std::array<std::uint8_t, kNonceSize>& nonce,
                   std::uint32_t initial_counter)
    : counter_(initial_counter) {
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load32(key.data() + 4 * i);
  state_[12] = 0;  // counter slot, filled per block
  for (int i = 0; i < 3; ++i) state_[13 + i] = load32(nonce.data() + 4 * i);
}

void ChaCha20::block(std::uint32_t counter, std::uint8_t out[kBlockSize]) const {
  std::array<std::uint32_t, 16> x = state_;
  x[12] = counter;
  std::array<std::uint32_t, 16> w = x;
  for (int round = 0; round < 10; ++round) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = w[i] + x[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

void ChaCha20::keystream(std::uint8_t* out, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    if (partial_used_ == kBlockSize) {
      block(counter_++, partial_.data());
      partial_used_ = 0;
    }
    const std::size_t take = std::min(len - off, kBlockSize - partial_used_);
    std::memcpy(out + off, partial_.data() + partial_used_, take);
    partial_used_ += take;
    off += take;
  }
}

Bytes ChaCha20::process(BytesView data) {
  Bytes out(data.size());
  keystream(out.data(), out.size());
  for (std::size_t i = 0; i < data.size(); ++i) out[i] ^= data[i];
  return out;
}

}  // namespace spfe::crypto
