#include "crypto/kdf.h"

#include "crypto/sha256.h"

namespace spfe::crypto {

Bytes kdf_expand(BytesView key_material, const std::string& context, std::size_t out_len) {
  Bytes out;
  out.reserve(out_len);
  std::uint32_t counter = 0;
  while (out.size() < out_len) {
    Sha256 h;
    h.update(key_material);
    const std::uint8_t ctr[4] = {static_cast<std::uint8_t>(counter),
                                 static_cast<std::uint8_t>(counter >> 8),
                                 static_cast<std::uint8_t>(counter >> 16),
                                 static_cast<std::uint8_t>(counter >> 24)};
    h.update(BytesView(ctr, 4));
    h.update(BytesView(reinterpret_cast<const std::uint8_t*>(context.data()), context.size()));
    const auto digest = h.finish();
    const std::size_t take = std::min(digest.size(), out_len - out.size());
    out.insert(out.end(), digest.begin(), digest.begin() + static_cast<std::ptrdiff_t>(take));
    ++counter;
  }
  return out;
}

}  // namespace spfe::crypto
