// Field abstraction shared by the protocol layers.
//
// Two concrete fields implement the `FieldLike` concept:
//   - Fp64: prime field with a word-sized modulus (the workhorse for the
//     multi-server instance-hiding protocol of §3.1, where |F| only needs to
//     exceed the server count and the data range);
//   - Zp: prime field over BigInt (used when field elements must match a
//     homomorphic-encryption plaintext space, §3.3.2 and §4).
// Generic code (polynomials, Shamir sharing, the §3.1 engine) is templated
// on the field so both instantiations share one implementation.
#pragma once

#include <concepts>
#include <cstdint>

#include "crypto/prg.h"

namespace spfe::field {

template <typename F>
concept FieldLike = requires(const F f, const typename F::value_type a,
                             const typename F::value_type b, crypto::Prg& prg,
                             std::uint64_t u) {
  typename F::value_type;
  { f.zero() } -> std::convertible_to<typename F::value_type>;
  { f.one() } -> std::convertible_to<typename F::value_type>;
  { f.add(a, b) } -> std::convertible_to<typename F::value_type>;
  { f.sub(a, b) } -> std::convertible_to<typename F::value_type>;
  { f.mul(a, b) } -> std::convertible_to<typename F::value_type>;
  { f.neg(a) } -> std::convertible_to<typename F::value_type>;
  { f.inv(a) } -> std::convertible_to<typename F::value_type>;
  { f.from_u64(u) } -> std::convertible_to<typename F::value_type>;
  { f.random(prg) } -> std::convertible_to<typename F::value_type>;
  { f.eq(a, b) } -> std::convertible_to<bool>;
};

}  // namespace spfe::field
