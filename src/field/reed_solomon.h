// Reed–Solomon decoding (Berlekamp–Welch) over a FieldLike field.
//
// Implements the §3.1 fault-tolerance remark: "t' malicious servers can be
// tolerated by adding 2t' additional servers". The servers' answers lie on a
// degree-d polynomial; with k >= d + 1 + 2e points of which at most e are
// corrupted, `berlekamp_welch` recovers the polynomial's value at any point.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/error.h"
#include "field/field.h"
#include "field/polynomial.h"

namespace spfe::field {

// Solves a linear system A z = b over the field by Gaussian elimination.
// Returns std::nullopt if the system is inconsistent; free variables are
// fixed to zero (any solution works for Berlekamp–Welch).
template <FieldLike F>
std::optional<std::vector<typename F::value_type>> solve_linear_system(
    const F& field, std::vector<std::vector<typename F::value_type>> a,
    std::vector<typename F::value_type> b) {
  const std::size_t rows = a.size();
  if (rows == 0 || b.size() != rows) throw InvalidArgument("solve_linear_system: bad shape");
  const std::size_t cols = a[0].size();
  std::vector<std::size_t> pivot_col;
  std::size_t r = 0;
  for (std::size_t c = 0; c < cols && r < rows; ++c) {
    // Find pivot.
    std::size_t pivot = r;
    while (pivot < rows && field.eq(a[pivot][c], field.zero())) ++pivot;
    if (pivot == rows) continue;
    std::swap(a[pivot], a[r]);
    std::swap(b[pivot], b[r]);
    const auto inv = field.inv(a[r][c]);
    for (std::size_t j = c; j < cols; ++j) a[r][j] = field.mul(a[r][j], inv);
    b[r] = field.mul(b[r], inv);
    for (std::size_t i = 0; i < rows; ++i) {
      if (i == r || field.eq(a[i][c], field.zero())) continue;
      const auto factor = a[i][c];
      for (std::size_t j = c; j < cols; ++j) {
        a[i][j] = field.sub(a[i][j], field.mul(factor, a[r][j]));
      }
      b[i] = field.sub(b[i], field.mul(factor, b[r]));
    }
    pivot_col.push_back(c);
    ++r;
  }
  // Inconsistency check: zero row with nonzero rhs.
  for (std::size_t i = r; i < rows; ++i) {
    if (!field.eq(b[i], field.zero())) return std::nullopt;
  }
  std::vector<typename F::value_type> z(cols, field.zero());
  for (std::size_t i = 0; i < pivot_col.size(); ++i) z[pivot_col[i]] = b[i];
  return z;
}

// Decodes (xs[i], ys[i]) as a degree <= d polynomial with at most
// `max_errors` corrupted points, and evaluates it at `at`. Requires
// xs.size() >= d + 1 + 2*max_errors and distinct xs. Returns nullopt when
// decoding fails (more errors than the budget).
template <FieldLike F>
std::optional<typename F::value_type> berlekamp_welch(
    const F& field, const std::vector<typename F::value_type>& xs,
    const std::vector<typename F::value_type>& ys, std::size_t d, std::size_t max_errors,
    const typename F::value_type& at) {
  const std::size_t k = xs.size();
  if (ys.size() != k) throw InvalidArgument("berlekamp_welch: point size mismatch");
  if (k < d + 1 + 2 * max_errors) {
    throw InvalidArgument("berlekamp_welch: not enough points for the error budget");
  }
  if (max_errors == 0) return interpolate_at(field, xs, ys, at);

  // Find N (deg <= d + e) and monic E (deg = e) with N(x_i) = y_i * E(x_i).
  // Unknowns: N's d+e+1 coefficients, E's e lower coefficients (leading = 1).
  const std::size_t e = max_errors;
  const std::size_t n_coeffs = d + e + 1;
  const std::size_t cols = n_coeffs + e;
  std::vector<std::vector<typename F::value_type>> a(
      k, std::vector<typename F::value_type>(cols, field.zero()));
  std::vector<typename F::value_type> b(k, field.zero());
  for (std::size_t i = 0; i < k; ++i) {
    // N coefficients: + x^j
    typename F::value_type pw = field.one();
    for (std::size_t j = 0; j < n_coeffs; ++j) {
      a[i][j] = pw;
      pw = field.mul(pw, xs[i]);
    }
    // E lower coefficients: - y_i * x^j
    pw = field.one();
    for (std::size_t j = 0; j < e; ++j) {
      a[i][n_coeffs + j] = field.neg(field.mul(ys[i], pw));
      pw = field.mul(pw, xs[i]);
    }
    // rhs: y_i * x^e  (from the monic leading term of E)
    typename F::value_type xe = field.one();
    for (std::size_t j = 0; j < e; ++j) xe = field.mul(xe, xs[i]);
    b[i] = field.mul(ys[i], xe);
  }
  const auto sol = solve_linear_system(field, std::move(a), std::move(b));
  if (!sol.has_value()) return std::nullopt;

  std::vector<typename F::value_type> n_coeff(sol->begin(),
                                              sol->begin() + static_cast<std::ptrdiff_t>(n_coeffs));
  std::vector<typename F::value_type> e_coeff(sol->begin() + static_cast<std::ptrdiff_t>(n_coeffs),
                                              sol->end());
  e_coeff.push_back(field.one());  // monic leading term
  const Polynomial<F> numerator(field, std::move(n_coeff));
  const Polynomial<F> error_locator(field, std::move(e_coeff));

  // Verify the decoding: Q = N / E must be a degree <= d polynomial agreeing
  // with all but <= e points. Recover Q by interpolation over non-error
  // points, then check.
  std::vector<typename F::value_type> good_xs, good_ys;
  for (std::size_t i = 0; i < k; ++i) {
    if (!field.eq(error_locator.eval(xs[i]), field.zero())) {
      const auto ev = field.mul(ys[i], error_locator.eval(xs[i]));
      if (field.eq(numerator.eval(xs[i]), ev)) {
        good_xs.push_back(xs[i]);
        good_ys.push_back(ys[i]);
      }
    }
  }
  if (good_xs.size() < d + 1 || good_xs.size() + e < k) {
    if (good_xs.size() < d + 1) return std::nullopt;
  }
  // Interpolate Q through the first d+1 good points and verify against all
  // good points.
  std::vector<typename F::value_type> qx(good_xs.begin(),
                                         good_xs.begin() + static_cast<std::ptrdiff_t>(d + 1));
  std::vector<typename F::value_type> qy(good_ys.begin(),
                                         good_ys.begin() + static_cast<std::ptrdiff_t>(d + 1));
  std::size_t agree = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (field.eq(interpolate_at(field, qx, qy, xs[i]), ys[i])) ++agree;
  }
  if (agree + e < k) return std::nullopt;
  return interpolate_at(field, qx, qy, at);
}

}  // namespace spfe::field
