// Reed–Solomon decoding (Berlekamp–Welch) over a FieldLike field.
//
// Implements the §3.1 fault-tolerance remark: "t' malicious servers can be
// tolerated by adding 2t' additional servers". The servers' answers lie on a
// degree-d polynomial; with k >= d + 1 + 2e points of which at most e are
// corrupted, `berlekamp_welch` recovers the polynomial's value at any point.
//
// The robust protocol clients additionally face *erasures* — servers that
// crashed or whose answers failed to parse. An erasure costs one point, a
// silent error costs two: from s surviving points a degree-d polynomial is
// decodable as long as 2*errors <= s - d - 1 (`decode_with_erasures`).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/error.h"
#include "field/field.h"
#include "field/polynomial.h"
#include "obs/obs.h"

namespace spfe::field {

// Solves a linear system A z = b over the field by Gaussian elimination.
// Returns std::nullopt if the system is inconsistent; free variables are
// fixed to zero (any solution works for Berlekamp–Welch).
template <FieldLike F>
std::optional<std::vector<typename F::value_type>> solve_linear_system(
    const F& field, std::vector<std::vector<typename F::value_type>> a,
    std::vector<typename F::value_type> b) {
  const std::size_t rows = a.size();
  if (rows == 0 || b.size() != rows) throw InvalidArgument("solve_linear_system: bad shape");
  const std::size_t cols = a[0].size();
  std::vector<std::size_t> pivot_col;
  std::size_t r = 0;
  for (std::size_t c = 0; c < cols && r < rows; ++c) {
    // Find pivot.
    std::size_t pivot = r;
    while (pivot < rows && field.eq(a[pivot][c], field.zero())) ++pivot;
    if (pivot == rows) continue;
    std::swap(a[pivot], a[r]);
    std::swap(b[pivot], b[r]);
    const auto inv = field.inv(a[r][c]);
    for (std::size_t j = c; j < cols; ++j) a[r][j] = field.mul(a[r][j], inv);
    b[r] = field.mul(b[r], inv);
    for (std::size_t i = 0; i < rows; ++i) {
      if (i == r || field.eq(a[i][c], field.zero())) continue;
      const auto factor = a[i][c];
      for (std::size_t j = c; j < cols; ++j) {
        a[i][j] = field.sub(a[i][j], field.mul(factor, a[r][j]));
      }
      b[i] = field.sub(b[i], field.mul(factor, b[r]));
    }
    pivot_col.push_back(c);
    ++r;
  }
  // Inconsistency check: zero row with nonzero rhs.
  for (std::size_t i = r; i < rows; ++i) {
    if (!field.eq(b[i], field.zero())) return std::nullopt;
  }
  std::vector<typename F::value_type> z(cols, field.zero());
  for (std::size_t i = 0; i < pivot_col.size(); ++i) z[pivot_col[i]] = b[i];
  return z;
}

// A successful decoding: `support_xs`/`support_ys` are d+1 points of the
// recovered polynomial (evaluate it anywhere via `eval`), and `agrees[i]`
// says whether input point i lies on it — a false entry is a corrected
// error. The robust clients use `agrees` to attribute blame per server.
template <FieldLike F>
struct RsDecoding {
  std::vector<typename F::value_type> support_xs;
  std::vector<typename F::value_type> support_ys;
  std::vector<bool> agrees;

  typename F::value_type eval(const F& field, const typename F::value_type& at) const {
    return interpolate_at(field, support_xs, support_ys, at);
  }

  std::size_t num_errors() const {
    std::size_t n = 0;
    for (bool ok : agrees) {
      if (!ok) ++n;
    }
    return n;
  }

  // Indices (into the decoder's input point list) whose y did not lie on
  // the decoded polynomial — the per-point Byzantine blame a robust caller
  // maps back to server identities (net/robust.h).
  std::vector<std::size_t> error_positions() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < agrees.size(); ++i) {
      if (!agrees[i]) out.push_back(i);
    }
    return out;
  }
};

// Decodes (xs[i], ys[i]) as a degree <= d polynomial with at most
// `max_errors` corrupted points. Requires xs.size() >= d + 1 + 2*max_errors
// and distinct xs. Returns nullopt when the points are not within
// `max_errors` of any degree-d polynomial.
template <FieldLike F>
std::optional<RsDecoding<F>> berlekamp_welch_decode(
    const F& field, const std::vector<typename F::value_type>& xs,
    const std::vector<typename F::value_type>& ys, std::size_t d, std::size_t max_errors) {
  const std::size_t k = xs.size();
  obs::count(obs::Op::kBwDecode);
  if (ys.size() != k) throw InvalidArgument("berlekamp_welch: point size mismatch");
  if (k < d + 1 + 2 * max_errors) {
    throw InvalidArgument("berlekamp_welch: not enough points for the error budget");
  }

  std::vector<typename F::value_type> good_xs, good_ys;
  if (max_errors == 0) {
    // No error budget: every point must already lie on one polynomial.
    good_xs.assign(xs.begin(), xs.end());
    good_ys.assign(ys.begin(), ys.end());
  } else {
    // Find N (deg <= d + e) and monic E (deg = e) with N(x_i) = y_i * E(x_i).
    // Unknowns: N's d+e+1 coefficients, E's e lower coefficients (leading = 1).
    const std::size_t e = max_errors;
    const std::size_t n_coeffs = d + e + 1;
    const std::size_t cols = n_coeffs + e;
    std::vector<std::vector<typename F::value_type>> a(
        k, std::vector<typename F::value_type>(cols, field.zero()));
    std::vector<typename F::value_type> b(k, field.zero());
    for (std::size_t i = 0; i < k; ++i) {
      // N coefficients: + x^j
      typename F::value_type pw = field.one();
      for (std::size_t j = 0; j < n_coeffs; ++j) {
        a[i][j] = pw;
        pw = field.mul(pw, xs[i]);
      }
      // E lower coefficients: - y_i * x^j
      pw = field.one();
      for (std::size_t j = 0; j < e; ++j) {
        a[i][n_coeffs + j] = field.neg(field.mul(ys[i], pw));
        pw = field.mul(pw, xs[i]);
      }
      // rhs: y_i * x^e  (from the monic leading term of E)
      typename F::value_type xe = field.one();
      for (std::size_t j = 0; j < e; ++j) xe = field.mul(xe, xs[i]);
      b[i] = field.mul(ys[i], xe);
    }
    const auto sol = solve_linear_system(field, std::move(a), std::move(b));
    if (!sol.has_value()) return std::nullopt;

    std::vector<typename F::value_type> n_coeff(
        sol->begin(), sol->begin() + static_cast<std::ptrdiff_t>(n_coeffs));
    std::vector<typename F::value_type> e_coeff(
        sol->begin() + static_cast<std::ptrdiff_t>(n_coeffs), sol->end());
    e_coeff.push_back(field.one());  // monic leading term
    const Polynomial<F> numerator(field, std::move(n_coeff));
    const Polynomial<F> error_locator(field, std::move(e_coeff));

    // Candidate non-error points: E(x_i) != 0 and N(x_i) = y_i E(x_i).
    for (std::size_t i = 0; i < k; ++i) {
      const auto ev = error_locator.eval(xs[i]);
      if (!field.eq(ev, field.zero()) && field.eq(numerator.eval(xs[i]), field.mul(ys[i], ev))) {
        good_xs.push_back(xs[i]);
        good_ys.push_back(ys[i]);
      }
    }
    if (good_xs.size() < d + 1) return std::nullopt;
  }

  // Verify: interpolate Q through the first d+1 good points; all but at most
  // `max_errors` input points must agree with it.
  RsDecoding<F> decoding;
  decoding.support_xs.assign(good_xs.begin(),
                             good_xs.begin() + static_cast<std::ptrdiff_t>(d + 1));
  decoding.support_ys.assign(good_ys.begin(),
                             good_ys.begin() + static_cast<std::ptrdiff_t>(d + 1));
  decoding.agrees.resize(k);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const bool ok =
        field.eq(interpolate_at(field, decoding.support_xs, decoding.support_ys, xs[i]), ys[i]);
    decoding.agrees[i] = ok;
    if (ok) ++agree;
  }
  if (agree + max_errors < k) return std::nullopt;
  return decoding;
}

// Decodes surviving points (erasures already removed) as a degree <= d
// polynomial, spending the leftover redundancy on silent errors: from s
// points, up to floor((s - d - 1) / 2) corruptions are correctable. Returns
// nullopt if s < d + 1 or the points are beyond that budget.
template <FieldLike F>
std::optional<RsDecoding<F>> decode_with_erasures(const F& field,
                                                  const std::vector<typename F::value_type>& xs,
                                                  const std::vector<typename F::value_type>& ys,
                                                  std::size_t d) {
  const std::size_t s = xs.size();
  if (ys.size() != s) throw InvalidArgument("decode_with_erasures: point size mismatch");
  if (s < d + 1) return std::nullopt;
  const std::size_t e_cap = (s - d - 1) / 2;
  return berlekamp_welch_decode(field, xs, ys, d, e_cap);
}

// Decodes and evaluates at `at`; nullopt when decoding fails (more errors
// than the budget).
template <FieldLike F>
std::optional<typename F::value_type> berlekamp_welch(
    const F& field, const std::vector<typename F::value_type>& xs,
    const std::vector<typename F::value_type>& ys, std::size_t d, std::size_t max_errors,
    const typename F::value_type& at) {
  const auto decoding = berlekamp_welch_decode(field, xs, ys, d, max_errors);
  if (!decoding.has_value()) return std::nullopt;
  return decoding->eval(field, at);
}

}  // namespace spfe::field
