#include "field/zp.h"

#include "common/error.h"

namespace spfe::field {

Zp::Zp(bignum::BigInt modulus) {
  if (modulus <= bignum::BigInt(2) || !modulus.is_odd()) {
    throw InvalidArgument("Zp: modulus must be an odd prime > 2");
  }
  p_ = std::make_shared<const bignum::BigInt>(std::move(modulus));
  mont_ = std::make_shared<const bignum::MontgomeryContext>(*p_);
}

}  // namespace spfe::field
