// Prime field with a modulus below 2^63 (so sums of two elements never
// overflow a u64). Multiplication reduces via unsigned __int128.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/prg.h"

namespace spfe::field {

class Fp64 {
 public:
  using value_type = std::uint64_t;

  // `modulus` must be prime (inv() relies on Fermat) and < 2^63.
  explicit Fp64(std::uint64_t modulus);

  std::uint64_t modulus() const { return p_; }

  value_type zero() const { return 0; }
  value_type one() const { return 1 % p_; }
  value_type from_u64(std::uint64_t v) const { return v % p_; }
  // Embeds a signed value (negatives map to p - |v|).
  value_type from_i64(std::int64_t v) const;

  value_type add(value_type a, value_type b) const {
    const std::uint64_t s = a + b;
    return s >= p_ ? s - p_ : s;
  }
  value_type sub(value_type a, value_type b) const { return a >= b ? a - b : a + p_ - b; }
  value_type neg(value_type a) const { return a == 0 ? 0 : p_ - a; }
  value_type mul(value_type a, value_type b) const {
    return static_cast<std::uint64_t>(static_cast<unsigned __int128>(a) * b % p_);
  }
  value_type pow(value_type base, std::uint64_t exp) const;
  // Throws CryptoError on zero.
  value_type inv(value_type a) const;

  value_type random(crypto::Prg& prg) const { return prg.uniform(p_); }
  // Uniform nonzero element.
  value_type random_nonzero(crypto::Prg& prg) const { return 1 + prg.uniform(p_ - 1); }

  bool eq(value_type a, value_type b) const { return a == b; }

  bool operator==(const Fp64&) const = default;

  // Commonly used prime moduli:
  // 2^61 - 1 (Mersenne): plenty of headroom for statistics over 32-bit data.
  static constexpr std::uint64_t kMersenne61 = (std::uint64_t(1) << 61) - 1;

 private:
  std::uint64_t p_;
};

// Smallest prime > n that fits the Fp64 constraints; deterministic
// (no PRG needed — uses trial division by deterministic Miller-Rabin bases).
std::uint64_t smallest_prime_above(std::uint64_t n);

}  // namespace spfe::field
