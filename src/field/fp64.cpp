#include "field/fp64.h"

#include <array>

#include "common/error.h"

namespace spfe::field {
namespace {

using u128 = unsigned __int128;

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(static_cast<u128>(a) * b % m);
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp != 0) {
    if (exp & 1) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

// Deterministic Miller-Rabin for 64-bit inputs (bases cover all u64).
bool is_prime_u64(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull,
                          31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull,
                          31ull, 37ull}) {
    std::uint64_t x = powmod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool witness = true;
    for (int i = 1; i < r; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

}  // namespace

Fp64::Fp64(std::uint64_t modulus) : p_(modulus) {
  if (modulus < 2 || modulus >= (std::uint64_t(1) << 63)) {
    throw InvalidArgument("Fp64: modulus must be in [2, 2^63)");
  }
  if (!is_prime_u64(modulus)) {
    throw InvalidArgument("Fp64: modulus must be prime");
  }
}

Fp64::value_type Fp64::from_i64(std::int64_t v) const {
  if (v >= 0) return static_cast<std::uint64_t>(v) % p_;
  const std::uint64_t mag = (~static_cast<std::uint64_t>(v) + 1) % p_;
  return neg(mag);
}

Fp64::value_type Fp64::pow(value_type base, std::uint64_t exp) const {
  return powmod(base, exp, p_);
}

Fp64::value_type Fp64::inv(value_type a) const {
  if (a == 0) throw CryptoError("Fp64::inv: zero has no inverse");
  return pow(a, p_ - 2);
}

std::uint64_t smallest_prime_above(std::uint64_t n) {
  if (n >= (std::uint64_t(1) << 62)) {
    throw InvalidArgument("smallest_prime_above: out of Fp64 range");
  }
  std::uint64_t candidate = n + 1;
  if (candidate <= 2) return 2;
  if ((candidate & 1) == 0) ++candidate;
  while (!is_prime_u64(candidate)) candidate += 2;
  return candidate;
}

}  // namespace spfe::field
