// Dense GF(2) matrices (bit-packed rows, dimension <= 64), supporting the
// branching-program randomized encoding: multiplication, determinant, and
// sampling of unit upper-triangular matrices.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "crypto/prg.h"

namespace spfe::field {

class Gf2Matrix {
 public:
  explicit Gf2Matrix(std::size_t dim);

  std::size_t dim() const { return rows_.size(); }

  bool get(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, bool v);
  void flip(std::size_t r, std::size_t c);

  static Gf2Matrix identity(std::size_t dim);
  // Uniform among unit upper-triangular matrices (1s on the diagonal,
  // random above, 0 below).
  static Gf2Matrix random_unit_upper(std::size_t dim, crypto::Prg& prg);
  static Gf2Matrix random(std::size_t dim, crypto::Prg& prg);

  Gf2Matrix operator*(const Gf2Matrix& o) const;
  Gf2Matrix operator+(const Gf2Matrix& o) const;  // XOR
  Gf2Matrix& operator+=(const Gf2Matrix& o);

  bool determinant() const;

  bool operator==(const Gf2Matrix& o) const = default;

  // Packed row-major bit serialization (ceil(dim^2 / 8) bytes).
  Bytes to_bytes() const;
  static Gf2Matrix from_bytes(std::size_t dim, BytesView data);
  static std::size_t byte_size(std::size_t dim) { return (dim * dim + 7) / 8; }

 private:
  std::vector<std::uint64_t> rows_;  // row r = bitmask of columns
};

}  // namespace spfe::field
