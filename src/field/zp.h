// Prime field over BigInt, for protocols whose field must align with a
// homomorphic-encryption plaintext space (§3.3.2, §4 weighted sum).
#pragma once

#include <memory>

#include "bignum/bigint.h"
#include "bignum/modarith.h"
#include "crypto/prg.h"

namespace spfe::field {

class Zp {
 public:
  using value_type = bignum::BigInt;

  // `modulus` must be an odd prime (oddness required by the Montgomery
  // exponentiation context; all cryptographically relevant primes are odd).
  explicit Zp(bignum::BigInt modulus);

  const bignum::BigInt& modulus() const { return *p_; }

  value_type zero() const { return bignum::BigInt(); }
  value_type one() const { return bignum::BigInt(1); }
  value_type from_u64(std::uint64_t v) const { return bignum::BigInt(v).mod_floor(*p_); }
  value_type from_bigint(const bignum::BigInt& v) const { return v.mod_floor(*p_); }

  value_type add(const value_type& a, const value_type& b) const {
    return bignum::mod_add(a, b, *p_);
  }
  value_type sub(const value_type& a, const value_type& b) const {
    return bignum::mod_sub(a, b, *p_);
  }
  value_type mul(const value_type& a, const value_type& b) const {
    return bignum::mod_mul(a, b, *p_);
  }
  value_type neg(const value_type& a) const { return (-a).mod_floor(*p_); }
  value_type inv(const value_type& a) const { return bignum::mod_inverse(a, *p_); }
  value_type pow(const value_type& base, const bignum::BigInt& exp) const {
    return mont_->pow(base, exp);
  }

  value_type random(crypto::Prg& prg) const { return bignum::BigInt::random_below(prg, *p_); }
  value_type random_nonzero(crypto::Prg& prg) const {
    return bignum::BigInt::random_below(prg, *p_ - bignum::BigInt(1)) + bignum::BigInt(1);
  }

  bool eq(const value_type& a, const value_type& b) const { return a == b; }

  bool operator==(const Zp& o) const { return *p_ == *o.p_; }

 private:
  // Shared so Zp copies (stored inside polynomials, shares, protocol state)
  // stay cheap.
  std::shared_ptr<const bignum::BigInt> p_;
  std::shared_ptr<const bignum::MontgomeryContext> mont_;
};

}  // namespace spfe::field
