// Univariate polynomials over any FieldLike field.
//
// Three protocol jobs live here:
//   - instance hiding (§3.1): random curves through a secret point and
//     Lagrange interpolation of the servers' replies back at w = 0;
//   - m-wise independent masking (§3.3.2, §4): a random degree-(m-1)
//     polynomial P_s evaluated at database indices;
//   - Shamir secret sharing (src/sharing) reuses the same primitives.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.h"
#include "field/field.h"

namespace spfe::field {

template <FieldLike F>
class Polynomial {
 public:
  using value_type = typename F::value_type;

  // Zero polynomial.
  explicit Polynomial(F field) : field_(std::move(field)) {}
  // Coefficients in ascending order: coeffs[i] multiplies x^i.
  Polynomial(F field, std::vector<value_type> coeffs)
      : field_(std::move(field)), coeffs_(std::move(coeffs)) {
    trim();
  }

  // Uniform polynomial of degree <= degree (exactly `degree+1` coefficients
  // drawn uniformly, so the degree may be lower with small probability —
  // this is the distribution the protocols require).
  static Polynomial random(F field, std::size_t degree, crypto::Prg& prg) {
    std::vector<value_type> c(degree + 1);
    for (auto& v : c) v = field.random(prg);
    return Polynomial(std::move(field), std::move(c));
  }

  // Uniform among polynomials of degree <= degree with P(0) = constant.
  static Polynomial random_with_constant(F field, std::size_t degree, value_type constant,
                                         crypto::Prg& prg) {
    std::vector<value_type> c(degree + 1);
    c[0] = std::move(constant);
    for (std::size_t i = 1; i < c.size(); ++i) c[i] = field.random(prg);
    return Polynomial(std::move(field), std::move(c));
  }

  const F& field() const { return field_; }
  const std::vector<value_type>& coefficients() const { return coeffs_; }
  bool is_zero() const { return coeffs_.empty(); }
  // Degree of the zero polynomial is reported as 0.
  std::size_t degree() const { return coeffs_.empty() ? 0 : coeffs_.size() - 1; }

  value_type eval(const value_type& x) const {
    value_type acc = field_.zero();
    for (std::size_t i = coeffs_.size(); i-- > 0;) {
      acc = field_.add(field_.mul(acc, x), coeffs_[i]);
    }
    return acc;
  }

  Polynomial operator+(const Polynomial& o) const {
    check_same_field(o);
    std::vector<value_type> c(std::max(coeffs_.size(), o.coeffs_.size()), field_.zero());
    for (std::size_t i = 0; i < coeffs_.size(); ++i) c[i] = coeffs_[i];
    for (std::size_t i = 0; i < o.coeffs_.size(); ++i) c[i] = field_.add(c[i], o.coeffs_[i]);
    return Polynomial(field_, std::move(c));
  }

  Polynomial operator*(const Polynomial& o) const {
    check_same_field(o);
    if (is_zero() || o.is_zero()) return Polynomial(field_);
    std::vector<value_type> c(coeffs_.size() + o.coeffs_.size() - 1, field_.zero());
    for (std::size_t i = 0; i < coeffs_.size(); ++i) {
      for (std::size_t j = 0; j < o.coeffs_.size(); ++j) {
        c[i + j] = field_.add(c[i + j], field_.mul(coeffs_[i], o.coeffs_[j]));
      }
    }
    return Polynomial(field_, std::move(c));
  }

  Polynomial scale(const value_type& s) const {
    std::vector<value_type> c = coeffs_;
    for (auto& v : c) v = field_.mul(v, s);
    return Polynomial(field_, std::move(c));
  }

  bool operator==(const Polynomial& o) const {
    if (coeffs_.size() != o.coeffs_.size()) return false;
    for (std::size_t i = 0; i < coeffs_.size(); ++i) {
      if (!field_.eq(coeffs_[i], o.coeffs_[i])) return false;
    }
    return true;
  }

 private:
  void trim() {
    while (!coeffs_.empty() && field_.eq(coeffs_.back(), field_.zero())) coeffs_.pop_back();
  }
  void check_same_field(const Polynomial& o) const {
    if (!(field_ == o.field_)) throw InvalidArgument("Polynomial: field mismatch");
  }

  F field_;
  std::vector<value_type> coeffs_;
};

// Evaluates at `x` the unique degree-(k-1) polynomial through the k points
// (xs[i], ys[i]) (Lagrange, O(k^2) field operations). The xs must be
// pairwise distinct; throws InvalidArgument otherwise or on size mismatch.
template <FieldLike F>
typename F::value_type interpolate_at(const F& field,
                                      const std::vector<typename F::value_type>& xs,
                                      const std::vector<typename F::value_type>& ys,
                                      const typename F::value_type& x) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw InvalidArgument("interpolate_at: need equal, nonempty point vectors");
  }
  typename F::value_type acc = field.zero();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    // L_i(x) = prod_{j != i} (x - xs[j]) / (xs[i] - xs[j])
    typename F::value_type num = field.one();
    typename F::value_type den = field.one();
    for (std::size_t j = 0; j < xs.size(); ++j) {
      if (j == i) continue;
      num = field.mul(num, field.sub(x, xs[j]));
      const auto diff = field.sub(xs[i], xs[j]);
      if (field.eq(diff, field.zero())) {
        throw InvalidArgument("interpolate_at: duplicate x coordinate");
      }
      den = field.mul(den, diff);
    }
    acc = field.add(acc, field.mul(ys[i], field.mul(num, field.inv(den))));
  }
  return acc;
}

// Interpolation weights for evaluating at x = 0 with fixed abscissae; useful
// when the same server points are reused across many reconstructions.
template <FieldLike F>
std::vector<typename F::value_type> lagrange_weights_at_zero(
    const F& field, const std::vector<typename F::value_type>& xs) {
  std::vector<typename F::value_type> w(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    typename F::value_type num = field.one();
    typename F::value_type den = field.one();
    for (std::size_t j = 0; j < xs.size(); ++j) {
      if (j == i) continue;
      num = field.mul(num, field.sub(field.zero(), xs[j]));
      const auto diff = field.sub(xs[i], xs[j]);
      if (field.eq(diff, field.zero())) {
        throw InvalidArgument("lagrange_weights_at_zero: duplicate x coordinate");
      }
      den = field.mul(den, diff);
    }
    w[i] = field.mul(num, field.inv(den));
  }
  return w;
}

}  // namespace spfe::field
