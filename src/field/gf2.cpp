#include <bit>

#include "field/gf2.h"

namespace spfe::field {

Gf2Matrix::Gf2Matrix(std::size_t dim) : rows_(dim, 0) {
  if (dim == 0 || dim > 64) throw InvalidArgument("Gf2Matrix: dim must be in [1, 64]");
}

bool Gf2Matrix::get(std::size_t r, std::size_t c) const {
  if (r >= dim() || c >= dim()) throw InvalidArgument("Gf2Matrix: index out of range");
  return ((rows_[r] >> c) & 1) != 0;
}

void Gf2Matrix::set(std::size_t r, std::size_t c, bool v) {
  if (r >= dim() || c >= dim()) throw InvalidArgument("Gf2Matrix: index out of range");
  if (v) {
    rows_[r] |= std::uint64_t(1) << c;
  } else {
    rows_[r] &= ~(std::uint64_t(1) << c);
  }
}

void Gf2Matrix::flip(std::size_t r, std::size_t c) {
  if (r >= dim() || c >= dim()) throw InvalidArgument("Gf2Matrix: index out of range");
  rows_[r] ^= std::uint64_t(1) << c;
}

Gf2Matrix Gf2Matrix::identity(std::size_t dim) {
  Gf2Matrix m(dim);
  for (std::size_t i = 0; i < dim; ++i) m.rows_[i] = std::uint64_t(1) << i;
  return m;
}

Gf2Matrix Gf2Matrix::random_unit_upper(std::size_t dim, crypto::Prg& prg) {
  Gf2Matrix m(dim);
  for (std::size_t r = 0; r < dim; ++r) {
    std::uint64_t row = prg.u64();
    // Keep only the strictly-upper part, then set the diagonal.
    if (r + 1 < 64) {
      row &= ~((std::uint64_t(1) << (r + 1)) - 1);
    } else {
      row = 0;
    }
    if (dim < 64) row &= (std::uint64_t(1) << dim) - 1;
    m.rows_[r] = row | (std::uint64_t(1) << r);
  }
  return m;
}

Gf2Matrix Gf2Matrix::random(std::size_t dim, crypto::Prg& prg) {
  Gf2Matrix m(dim);
  for (std::size_t r = 0; r < dim; ++r) {
    std::uint64_t row = prg.u64();
    if (dim < 64) row &= (std::uint64_t(1) << dim) - 1;
    m.rows_[r] = row;
  }
  return m;
}

Gf2Matrix Gf2Matrix::operator*(const Gf2Matrix& o) const {
  if (dim() != o.dim()) throw InvalidArgument("Gf2Matrix: dimension mismatch");
  Gf2Matrix out(dim());
  for (std::size_t r = 0; r < dim(); ++r) {
    std::uint64_t acc = 0;
    std::uint64_t row = rows_[r];
    while (row != 0) {
      const int k = std::countr_zero(row);
      acc ^= o.rows_[static_cast<std::size_t>(k)];
      row &= row - 1;
    }
    out.rows_[r] = acc;
  }
  return out;
}

Gf2Matrix Gf2Matrix::operator+(const Gf2Matrix& o) const {
  Gf2Matrix out = *this;
  out += o;
  return out;
}

Gf2Matrix& Gf2Matrix::operator+=(const Gf2Matrix& o) {
  if (dim() != o.dim()) throw InvalidArgument("Gf2Matrix: dimension mismatch");
  for (std::size_t r = 0; r < dim(); ++r) rows_[r] ^= o.rows_[r];
  return *this;
}

bool Gf2Matrix::determinant() const {
  std::vector<std::uint64_t> a = rows_;
  const std::size_t n = dim();
  for (std::size_t c = 0; c < n; ++c) {
    // Find a pivot row at or below c with bit c set.
    std::size_t pivot = c;
    while (pivot < n && ((a[pivot] >> c) & 1) == 0) ++pivot;
    if (pivot == n) return false;  // singular
    std::swap(a[c], a[pivot]);
    for (std::size_t r = c + 1; r < n; ++r) {
      if ((a[r] >> c) & 1) a[r] ^= a[c];
    }
  }
  return true;  // full rank <=> det = 1 over GF(2)
}

Bytes Gf2Matrix::to_bytes() const {
  const std::size_t n = dim();
  Bytes out(byte_size(n), 0);
  std::size_t bit = 0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c, ++bit) {
      if ((rows_[r] >> c) & 1) out[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
    }
  }
  return out;
}

Gf2Matrix Gf2Matrix::from_bytes(std::size_t dim, BytesView data) {
  if (data.size() != byte_size(dim)) throw SerializationError("Gf2Matrix: bad byte size");
  Gf2Matrix m(dim);
  std::size_t bit = 0;
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c, ++bit) {
      if ((data[bit / 8] >> (bit % 8)) & 1) m.rows_[r] |= std::uint64_t(1) << c;
    }
  }
  return m;
}

}  // namespace spfe::field
