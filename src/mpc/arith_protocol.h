// The paper's §3.3.4 light-weight secure MPC protocol for arithmetic
// circuits over Z_u, built on Paillier encryption under the *client's* key.
//
// The server walks the circuit holding E(value) for every node:
//   - addition / subtraction / multiplication-by-constant: local homomorphic
//     operations (one ciphertext multiplication or exponentiation);
//   - multiplication: one interaction — server sends statistically blinded
//     E(v1 + r1), E(v2 + r2); client decrypts, returns E((d1 mod u)(d2 mod u));
//     server strips the cross terms homomorphically.
// Multiplications at the same multiplicative depth are batched into one
// round, so round complexity is proportional to the circuit's mult-depth,
// exactly as stated in §3.3.4.
//
// Plaintexts live in Z_N but represent values of Z_u (u << N). Every node
// carries a bound B with plaintext < B and plaintext = value (mod u); all
// operations keep plaintexts positive (no mod-N wraparound, which would
// break the mod-u congruence since u does not divide N). Blinding uses a
// 2^-40 statistical-hiding margin; the protocol throws CryptoError if the
// key is too small for the circuit's depth.
//
// Security: weak against a malicious client (a deviating client can only
// shift the inputs / substitute a same-output-size function, per §3.3);
// the client learns only statistically blinded values plus the output.
#pragma once

#include <cstdint>
#include <vector>

#include "bignum/bigint.h"
#include "circuits/arith_circuit.h"
#include "crypto/prg.h"
#include "he/paillier.h"
#include "net/network.h"

namespace spfe::mpc {

inline constexpr std::size_t kStatSecurityBits = 40;

struct ArithMpcOptions {
  std::size_t stat_security_bits = kStatSecurityBits;
};

// Runs §3.3.4 where the server already holds ciphertexts of the circuit
// inputs under the client's key (plaintexts < `input_bound`, congruent to
// the true inputs mod circuit.modulus()). The client holds `sk` and ends
// with the outputs reduced mod u. Rounds: 1 per mult-depth level + 1 for
// output disclosure.
std::vector<std::uint64_t> run_arith_mpc_on_ciphertexts(
    net::StarNetwork& net, std::size_t server_id, const circuits::ArithCircuit& circuit,
    const he::PaillierPrivateKey& sk, const std::vector<bignum::BigInt>& input_ciphertexts,
    const bignum::BigInt& input_bound, crypto::Prg& client_prg, crypto::Prg& server_prg,
    const ArithMpcOptions& options = {});

// Shares entry point: client and server hold additive shares of each input
// mod u (the output format of the §3.3 input-selection protocols). The
// client first sends its public key and encrypted shares (one extra
// half-round folded into the first round of the mult phase).
std::vector<std::uint64_t> run_arith_mpc_shared(
    net::StarNetwork& net, std::size_t server_id, const circuits::ArithCircuit& circuit,
    const he::PaillierPrivateKey& sk, const std::vector<std::uint64_t>& client_shares,
    const std::vector<std::uint64_t>& server_shares, crypto::Prg& client_prg,
    crypto::Prg& server_prg, const ArithMpcOptions& options = {});

}  // namespace spfe::mpc
