// Yao garbled circuits ([46] in the paper) — garbling and evaluation.
//
// Implementation notes:
//   - 128-bit wire labels; free-XOR (labels differ by a global offset R) so
//     XOR/NOT/constant gates cost no table rows and no crypto;
//   - point-and-permute: the low bit of each label is its permute bit
//     (lsb(R) = 1 keeps the two labels of a wire distinguishable), so the
//     evaluator decrypts exactly one of the four rows of an AND/OR table;
//   - row encryption is KDF(La || Lb || gate-id) XOR label.
// The garbled-circuit size is 4 * 16 bytes per nonfree gate — the concrete
// O(kappa * C_f) term of Table 1.
//
// This module is pure (no networking): mpc/yao_protocol.h drives it over a
// StarNetwork with OT, and psm/psm_yao.h reuses it with *shared* randomness
// to build the computational PSM protocol of §3.2.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "circuits/boolean_circuit.h"
#include "common/bytes.h"
#include "common/secret.h"
#include "common/serialize.h"
#include "crypto/prg.h"

namespace spfe::mpc {

inline constexpr std::size_t kLabelBytes = 16;
using Label = std::array<std::uint8_t, kLabelBytes>;

Label xor_labels(const Label& a, const Label& b);
bool label_lsb(const Label& l);

// One wire's label pair; `l1 = l0 XOR R` under free-XOR.
struct LabelPair {
  Label l0;
  Label l1;
  // Reference select for PUBLIC truth values only (garbling enumerates all
  // four rows of a table, so `v` there is a loop constant). For a party's
  // private input bit, use ct_get.
  const Label& get(bool v) const { return v ? l1 : l0; }
  // Branch-free select for secret truth values: reads both labels and mixes
  // them with a full-width mask, so neither the branch predictor nor the
  // data cache learns which label became active.
  Label ct_get(bool /*secret*/ v) const {
    const std::uint8_t m =
        static_cast<std::uint8_t>(common::ct_mask_from_bit(static_cast<std::uint64_t>(v)));
    Label out;
    // SPFE_CT_BEGIN(label_ct_get)
    for (std::size_t i = 0; i < kLabelBytes; ++i) {
      out[i] = static_cast<std::uint8_t>(l0[i] ^ (m & (l0[i] ^ l1[i])));
    }
    // SPFE_CT_END
    return out;
  }
};

// Everything the evaluator needs except its own input labels.
struct GarbledCircuit {
  // 4 rows per nonfree (AND/OR) gate, in gate order.
  std::vector<std::array<Label, 4>> tables;
  // Active labels for constant wires, in constant-gate order.
  std::vector<Label> const_labels;
  // Per output wire: permute bit of the false label (output bit =
  // lsb(active label) XOR decode bit).
  std::vector<bool> output_decode;

  Bytes serialize() const;
  static GarbledCircuit deserialize(BytesView data);
  std::size_t wire_size_bytes() const;
};

struct GarblingResult {
  GarbledCircuit garbled;
  std::vector<LabelPair> input_labels;  // one per circuit input wire
};

// Garbles `circuit` with randomness from `prg`. Garbling is deterministic
// given the PRG stream — the property the PSM construction exploits.
GarblingResult garble(const circuits::BooleanCircuit& circuit, crypto::Prg& prg);

// Evaluates with one active label per input wire; returns the output bits.
std::vector<bool> evaluate(const circuits::BooleanCircuit& circuit, const GarbledCircuit& gc,
                           const std::vector<Label>& active_inputs);

Bytes label_to_bytes(const Label& l);
Label label_from_bytes(BytesView b);

}  // namespace spfe::mpc
