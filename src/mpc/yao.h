// Yao garbled circuits ([46] in the paper) — garbling and evaluation.
//
// Implementation notes:
//   - 128-bit wire labels; free-XOR (labels differ by a global offset R) so
//     XOR/NOT/constant gates cost no table rows and no crypto;
//   - point-and-permute: the low bit of each label is its permute bit
//     (lsb(R) = 1 keeps the two labels of a wire distinguishable), so the
//     evaluator decrypts exactly one of the four rows of an AND/OR table;
//   - row encryption is KDF(La || Lb || gate-id) XOR label.
// The garbled-circuit size is 4 * 16 bytes per nonfree gate — the concrete
// O(kappa * C_f) term of Table 1.
//
// This module is pure (no networking): mpc/yao_protocol.h drives it over a
// StarNetwork with OT, and psm/psm_yao.h reuses it with *shared* randomness
// to build the computational PSM protocol of §3.2.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "circuits/boolean_circuit.h"
#include "common/bytes.h"
#include "common/serialize.h"
#include "crypto/prg.h"

namespace spfe::mpc {

inline constexpr std::size_t kLabelBytes = 16;
using Label = std::array<std::uint8_t, kLabelBytes>;

Label xor_labels(const Label& a, const Label& b);
bool label_lsb(const Label& l);

// One wire's label pair; `l1 = l0 XOR R` under free-XOR.
struct LabelPair {
  Label l0;
  Label l1;
  const Label& get(bool v) const { return v ? l1 : l0; }
};

// Everything the evaluator needs except its own input labels.
struct GarbledCircuit {
  // 4 rows per nonfree (AND/OR) gate, in gate order.
  std::vector<std::array<Label, 4>> tables;
  // Active labels for constant wires, in constant-gate order.
  std::vector<Label> const_labels;
  // Per output wire: permute bit of the false label (output bit =
  // lsb(active label) XOR decode bit).
  std::vector<bool> output_decode;

  Bytes serialize() const;
  static GarbledCircuit deserialize(BytesView data);
  std::size_t wire_size_bytes() const;
};

struct GarblingResult {
  GarbledCircuit garbled;
  std::vector<LabelPair> input_labels;  // one per circuit input wire
};

// Garbles `circuit` with randomness from `prg`. Garbling is deterministic
// given the PRG stream — the property the PSM construction exploits.
GarblingResult garble(const circuits::BooleanCircuit& circuit, crypto::Prg& prg);

// Evaluates with one active label per input wire; returns the output bits.
std::vector<bool> evaluate(const circuits::BooleanCircuit& circuit, const GarbledCircuit& gc,
                           const std::vector<Label>& active_inputs);

Bytes label_to_bytes(const Label& l);
Label label_from_bytes(BytesView b);

}  // namespace spfe::mpc
