#include "mpc/yao_protocol.h"

#include "common/error.h"
#include "common/serialize.h"
#include "mpc/yao.h"
#include "obs/obs.h"
#include "ot/ot_extension.h"

namespace spfe::mpc {
namespace {

void check_split(const circuits::BooleanCircuit& circuit, std::size_t client_bits,
                 std::size_t server_bits) {
  if (client_bits + server_bits != circuit.num_inputs()) {
    throw InvalidArgument("yao protocol: input split does not cover circuit inputs");
  }
}

// Serializes the garbled circuit plus the server's active input labels.
Bytes pack_server_payload(const GarblingResult& garbling,
                          const std::vector<bool>& server_bits, std::size_t client_count) {
  Writer w;
  w.bytes(garbling.garbled.serialize());
  w.varint(server_bits.size());
  for (std::size_t i = 0; i < server_bits.size(); ++i) {
    const LabelPair& pair = garbling.input_labels[client_count + i];
    // ct_get: server_bits is the server's private input — selecting the
    // active label must not branch or index on it.
    w.raw(label_to_bytes(pair.ct_get(server_bits[i])));
  }
  return w.take();
}

struct ServerPayload {
  GarbledCircuit gc;
  std::vector<Label> server_labels;
};

ServerPayload unpack_server_payload(Reader& r) {
  ServerPayload p;
  p.gc = GarbledCircuit::deserialize(r.bytes());
  const std::uint64_t n = r.varint_count(kLabelBytes);
  p.server_labels.resize(n);
  for (auto& l : p.server_labels) l = label_from_bytes(r.raw(kLabelBytes));
  return p;
}

std::vector<Label> assemble_inputs(std::vector<Bytes> client_label_bytes,
                                   const std::vector<Label>& server_labels) {
  std::vector<Label> active;
  active.reserve(client_label_bytes.size() + server_labels.size());
  for (const Bytes& b : client_label_bytes) active.push_back(label_from_bytes(b));
  active.insert(active.end(), server_labels.begin(), server_labels.end());
  return active;
}

std::vector<std::pair<Bytes, Bytes>> client_label_pairs(const GarblingResult& garbling,
                                                        std::size_t client_count) {
  std::vector<std::pair<Bytes, Bytes>> pairs;
  pairs.reserve(client_count);
  for (std::size_t i = 0; i < client_count; ++i) {
    pairs.push_back({label_to_bytes(garbling.input_labels[i].l0),
                     label_to_bytes(garbling.input_labels[i].l1)});
  }
  return pairs;
}

}  // namespace

YaoEvaluatorClient::YaoEvaluatorClient(const circuits::BooleanCircuit& circuit,
                                       std::vector<bool> client_bits,
                                       const ot::SchnorrGroup& group)
    : circuit_(circuit), client_bits_(std::move(client_bits)), ot_(group) {}

Bytes YaoEvaluatorClient::query(crypto::Prg& prg) {
  return ot_.make_query(client_bits_, ot_states_, prg);
}

std::vector<bool> YaoEvaluatorClient::decode(BytesView response) {
  Reader r(response);
  const Bytes ot_answer = r.bytes();
  const ServerPayload payload = unpack_server_payload(r);
  r.expect_done();
  std::vector<Bytes> my_labels = ot_.decode(ot_answer, ot_states_);
  return evaluate(circuit_, payload.gc,
                  assemble_inputs(std::move(my_labels), payload.server_labels));
}

YaoGarblerServer::YaoGarblerServer(const circuits::BooleanCircuit& circuit,
                                   std::vector<bool> server_bits, const ot::SchnorrGroup& group)
    : circuit_(circuit), server_bits_(std::move(server_bits)), ot_(group) {}

Bytes YaoGarblerServer::respond(BytesView client_query, crypto::Prg& prg) {
  const std::size_t client_count = circuit_.num_inputs() - server_bits_.size();
  check_split(circuit_, client_count, server_bits_.size());
  const GarblingResult garbling = garble(circuit_, prg);
  const Bytes ot_answer = ot_.answer(client_query, client_label_pairs(garbling, client_count), prg);
  Writer w;
  w.bytes(ot_answer);
  w.raw(pack_server_payload(garbling, server_bits_, client_count));
  return w.take();
}

std::vector<bool> run_yao(net::StarNetwork& net, std::size_t server_id,
                          const circuits::BooleanCircuit& circuit,
                          const std::vector<bool>& client_bits,
                          const std::vector<bool>& server_bits, const ot::SchnorrGroup& group,
                          crypto::Prg& client_prg, crypto::Prg& server_prg) {
  SPFE_OBS_SPAN("yao.run");
  check_split(circuit, client_bits.size(), server_bits.size());
  YaoEvaluatorClient client(circuit, client_bits, group);
  YaoGarblerServer server(circuit, server_bits, group);

  net.client_send(server_id, client.query(client_prg));
  net.server_send(server_id, server.respond(net.server_receive(server_id), server_prg));
  return client.decode(net.client_receive(server_id));
}

std::vector<bool> run_yao_with_extension(net::StarNetwork& net, std::size_t server_id,
                                         const circuits::BooleanCircuit& circuit,
                                         const std::vector<bool>& client_bits,
                                         const std::vector<bool>& server_bits,
                                         const ot::SchnorrGroup& group, crypto::Prg& client_prg,
                                         crypto::Prg& server_prg) {
  SPFE_OBS_SPAN("yao.run_with_extension");
  check_split(circuit, client_bits.size(), server_bits.size());
  const std::size_t client_count = client_bits.size();

  // Server initiates OT extension (it is the OT sender of the label pairs).
  ot::OtExtensionSender ext_sender(group);
  ot::OtExtensionReceiver ext_receiver(group, client_bits);
  net.server_send(server_id, ext_sender.start(server_prg));
  net.client_send(server_id, ext_receiver.respond(net.client_receive(server_id), client_prg));

  const GarblingResult garbling = garble(circuit, server_prg);
  const Bytes ext_final =
      ext_sender.answer(net.server_receive(server_id), client_label_pairs(garbling, client_count));
  Writer w;
  w.bytes(ext_final);
  w.raw(pack_server_payload(garbling, server_bits, client_count));
  net.server_send(server_id, w.take());

  Reader r(net.client_receive(server_id));
  const Bytes ext_msg = r.bytes();
  const ServerPayload payload = unpack_server_payload(r);
  r.expect_done();
  std::vector<Bytes> my_labels = ext_receiver.finish(ext_msg);
  return evaluate(circuit, payload.gc,
                  assemble_inputs(std::move(my_labels), payload.server_labels));
}

}  // namespace spfe::mpc
