// Two-party secure function evaluation from Yao garbled circuits.
//
// Roles follow the paper: the *server* garbles (it holds the database-derived
// shares), the *client* evaluates and learns the output. Client input labels
// travel via 1-of-2 OT — the m x SPIR(2,1,kappa) term of Table 1.
//
// Input-wire convention: circuit wires [0, #client bits) belong to the
// client, the following [#client, #client + #server) to the server. This is
// a 1-round protocol (client query -> server response), matching the paper's
// relaxed secure-MPC definition (no correctness guarantee against a
// malicious server, weak security against a malicious client).
//
// An alternative flow over IKNP OT extension (`run_yao_with_extension`)
// trades half a round for symmetric-key OTs; bench_primitives quantifies it.
#pragma once

#include <vector>

#include "circuits/boolean_circuit.h"
#include "common/bytes.h"
#include "crypto/prg.h"
#include "net/network.h"
#include "ot/base_ot.h"

namespace spfe::mpc {

class YaoEvaluatorClient {
 public:
  YaoEvaluatorClient(const circuits::BooleanCircuit& circuit, std::vector<bool> client_bits,
                     const ot::SchnorrGroup& group);

  // Round 1 message: OT query for the client's input labels.
  Bytes query(crypto::Prg& prg);
  // Consumes the server response, evaluates, returns output bits.
  std::vector<bool> decode(BytesView response);

 private:
  const circuits::BooleanCircuit& circuit_;
  std::vector<bool> client_bits_;
  ot::BaseOt ot_;
  std::vector<ot::OtReceiverState> ot_states_;
};

class YaoGarblerServer {
 public:
  YaoGarblerServer(const circuits::BooleanCircuit& circuit, std::vector<bool> server_bits,
                   const ot::SchnorrGroup& group);

  // Garbles and answers the client's OT query in one message.
  Bytes respond(BytesView client_query, crypto::Prg& prg);

 private:
  const circuits::BooleanCircuit& circuit_;
  std::vector<bool> server_bits_;
  ot::BaseOt ot_;
};

// Drives a full exchange over `net` (client <-> server `server_id`).
std::vector<bool> run_yao(net::StarNetwork& net, std::size_t server_id,
                          const circuits::BooleanCircuit& circuit,
                          const std::vector<bool>& client_bits,
                          const std::vector<bool>& server_bits, const ot::SchnorrGroup& group,
                          crypto::Prg& client_prg, crypto::Prg& server_prg);

// Same functionality over IKNP OT extension (server speaks first; 1.5 rounds).
std::vector<bool> run_yao_with_extension(net::StarNetwork& net, std::size_t server_id,
                                         const circuits::BooleanCircuit& circuit,
                                         const std::vector<bool>& client_bits,
                                         const std::vector<bool>& server_bits,
                                         const ot::SchnorrGroup& group, crypto::Prg& client_prg,
                                         crypto::Prg& server_prg);

}  // namespace spfe::mpc
