#include "mpc/arith_protocol.h"

#include <array>
#include <optional>

#include "bignum/serialize.h"
#include "common/error.h"
#include "common/serialize.h"

namespace spfe::mpc {
namespace {

using bignum::BigInt;
using circuits::ArithCircuit;
using circuits::ArithGate;
using circuits::ArithOp;

struct NodeState {
  std::optional<BigInt> ct;  // ciphertext under the client's key
  BigInt bound;              // plaintext < bound
};

// Guard: blinding with margin 2^sigma must stay far below N.
void check_headroom(const BigInt& bound, const he::PaillierPublicKey& pk, std::size_t sigma) {
  if ((bound << (sigma + 2)) >= pk.n()) {
    throw CryptoError(
        "arith MPC: circuit too deep for the Paillier modulus (blinded plaintext "
        "would wrap mod N)");
  }
}

}  // namespace

std::vector<std::uint64_t> run_arith_mpc_on_ciphertexts(
    net::StarNetwork& net, std::size_t server_id, const ArithCircuit& circuit,
    const he::PaillierPrivateKey& sk, const std::vector<BigInt>& input_ciphertexts,
    const BigInt& input_bound, crypto::Prg& client_prg, crypto::Prg& server_prg,
    const ArithMpcOptions& options) {
  if (input_ciphertexts.size() != circuit.num_inputs()) {
    throw InvalidArgument("arith MPC: wrong number of input ciphertexts");
  }
  const he::PaillierPublicKey& pk = sk.public_key();
  const BigInt u(circuit.modulus());
  const std::size_t sigma = options.stat_security_bits;

  const std::size_t total_nodes = circuit.num_inputs() + circuit.gates().size();
  std::vector<NodeState> nodes(total_nodes);
  for (std::size_t i = 0; i < circuit.num_inputs(); ++i) {
    nodes[i] = {input_ciphertexts[i], input_bound};
  }

  // Sweeps: local gates resolve eagerly; ready mult gates batch into one
  // interaction per sweep. Number of sweeps = multiplicative depth.
  std::size_t resolved_gates = 0;
  std::vector<bool> done(circuit.gates().size(), false);
  while (resolved_gates < circuit.gates().size()) {
    std::vector<std::size_t> ready_mults;
    for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
      if (done[g]) continue;
      const ArithGate& gate = circuit.gates()[g];
      const std::size_t out = circuit.num_inputs() + g;
      auto have = [&](std::uint32_t n) { return nodes[n].ct.has_value(); };
      switch (gate.op) {
        case ArithOp::kInput:
          throw InvalidArgument("arith MPC: stray input gate");
        case ArithOp::kConst:
          nodes[out] = {pk.encrypt(BigInt(gate.constant), server_prg), u};
          done[g] = true;
          ++resolved_gates;
          break;
        case ArithOp::kAdd:
          if (have(gate.a) && have(gate.b)) {
            nodes[out] = {pk.add(*nodes[gate.a].ct, *nodes[gate.b].ct),
                          nodes[gate.a].bound + nodes[gate.b].bound};
            check_headroom(nodes[out].bound, pk, sigma);
            done[g] = true;
            ++resolved_gates;
          }
          break;
        case ArithOp::kSub:
          if (have(gate.a) && have(gate.b)) {
            // a - b + k*u with k*u >= bound(b), keeping the plaintext
            // positive while preserving the value mod u.
            const BigInt k_u = ((nodes[gate.b].bound / u) + BigInt(1)) * u;
            BigInt ct = pk.add(*nodes[gate.a].ct, pk.negate(*nodes[gate.b].ct));
            ct = pk.add(ct, pk.encrypt(k_u, server_prg));
            nodes[out] = {ct, nodes[gate.a].bound + k_u};
            check_headroom(nodes[out].bound, pk, sigma);
            done[g] = true;
            ++resolved_gates;
          }
          break;
        case ArithOp::kMulConst:
          if (have(gate.a)) {
            const BigInt c(gate.constant);
            nodes[out] = {pk.mul_scalar(*nodes[gate.a].ct, c),
                          nodes[gate.a].bound * (c.is_zero() ? BigInt(1) : c)};
            check_headroom(nodes[out].bound, pk, sigma);
            done[g] = true;
            ++resolved_gates;
          }
          break;
        case ArithOp::kMul:
          if (have(gate.a) && have(gate.b)) ready_mults.push_back(g);
          break;
      }
    }
    if (ready_mults.empty()) {
      if (resolved_gates < circuit.gates().size()) {
        throw InvalidArgument("arith MPC: circuit is not topologically ordered");
      }
      break;
    }

    // --- One interaction for this batch of mult gates ----------------------
    // Server -> client: blinded operand pairs.
    Writer blinded;
    blinded.varint(ready_mults.size());
    std::vector<std::pair<BigInt, BigInt>> blinds;  // (r1, r2) per gate
    blinds.reserve(ready_mults.size());
    for (const std::size_t g : ready_mults) {
      const ArithGate& gate = circuit.gates()[g];
      const NodeState& na = nodes[gate.a];
      const NodeState& nb = nodes[gate.b];
      check_headroom(na.bound, pk, sigma);
      check_headroom(nb.bound, pk, sigma);
      const BigInt r1 = BigInt::random_below(server_prg, na.bound << sigma);
      const BigInt r2 = BigInt::random_below(server_prg, nb.bound << sigma);
      bignum::write_bigint(blinded, pk.add(*na.ct, pk.encrypt(r1, server_prg)));
      bignum::write_bigint(blinded, pk.add(*nb.ct, pk.encrypt(r2, server_prg)));
      blinds.push_back({r1, r2});
    }
    net.server_send(server_id, blinded.take());

    // Client: decrypt, reduce mod u, return encrypted products.
    {
      Reader r(net.client_receive(server_id));
      // Two ciphertexts per entry, each at least a 1-byte length prefix.
      const std::uint64_t count = r.varint_count(2);
      Writer products;
      products.varint(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        const BigInt d1 = sk.decrypt(bignum::read_bigint(r)).mod_floor(u);
        const BigInt d2 = sk.decrypt(bignum::read_bigint(r)).mod_floor(u);
        bignum::write_bigint(products, pk.encrypt(d1 * d2, client_prg));
      }
      r.expect_done();
      net.client_send(server_id, products.take());
    }

    // Server: strip cross terms. d1'd2' = v1v2 + v1 r2 + v2 r1 + r1 r2 (mod u),
    // so out = e + v1*(u - r2 mod u) + v2*(u - r1 mod u) + ((-r1 r2) mod u),
    // all additions positive.
    {
      Reader r(net.server_receive(server_id));
      if (r.varint() != ready_mults.size()) {
        throw ProtocolError("arith MPC: product count mismatch");
      }
      for (std::size_t idx = 0; idx < ready_mults.size(); ++idx) {
        const std::size_t g = ready_mults[idx];
        const ArithGate& gate = circuit.gates()[g];
        const std::size_t out = circuit.num_inputs() + g;
        const BigInt e = bignum::read_bigint(r);
        const auto& [r1, r2] = blinds[idx];
        const BigInt c2 = (u - r2.mod_floor(u)).mod_floor(u);
        const BigInt c1 = (u - r1.mod_floor(u)).mod_floor(u);
        const BigInt c3 = (u - (r1 * r2).mod_floor(u)).mod_floor(u);
        // Both cross terms in one simultaneous multi-exp (shared squaring
        // chain) rather than two independent modexps.
        const std::array<BigInt, 2> mx_bases = {*nodes[gate.a].ct, *nodes[gate.b].ct};
        const std::array<BigInt, 2> mx_exps = {c2, c1};
        BigInt ct = pk.add(e, pk.mul_scalar_sum(mx_bases, mx_exps));
        ct = pk.add(ct, pk.encrypt(c3, server_prg));
        const BigInt bound =
            u * u + nodes[gate.a].bound * u + nodes[gate.b].bound * u + u;
        nodes[out] = {ct, bound};
        check_headroom(bound, pk, sigma);
        done[g] = true;
        ++resolved_gates;
      }
      r.expect_done();
    }
  }

  // --- Output disclosure ----------------------------------------------------
  // Server re-blinds each output with a random multiple of u so the client
  // learns nothing beyond the value mod u.
  Writer out_msg;
  out_msg.varint(circuit.outputs().size());
  for (const std::uint32_t node : circuit.outputs()) {
    const NodeState& ns = nodes[node];
    if (!ns.ct.has_value()) throw InvalidArgument("arith MPC: unresolved output node");
    check_headroom(ns.bound, pk, sigma);
    const BigInt rho = BigInt::random_below(server_prg, (ns.bound << sigma) / u + BigInt(1));
    const BigInt ct = pk.add(*ns.ct, pk.encrypt(rho * u, server_prg));
    bignum::write_bigint(out_msg, pk.rerandomize(ct, server_prg));
  }
  net.server_send(server_id, out_msg.take());

  Reader r(net.client_receive(server_id));
  const std::uint64_t n_out = r.varint_count(1);
  std::vector<std::uint64_t> outputs;
  outputs.reserve(n_out);
  for (std::uint64_t i = 0; i < n_out; ++i) {
    outputs.push_back(sk.decrypt(bignum::read_bigint(r)).mod_floor(u).to_u64());
  }
  r.expect_done();
  return outputs;
}

std::vector<std::uint64_t> run_arith_mpc_shared(
    net::StarNetwork& net, std::size_t server_id, const ArithCircuit& circuit,
    const he::PaillierPrivateKey& sk, const std::vector<std::uint64_t>& client_shares,
    const std::vector<std::uint64_t>& server_shares, crypto::Prg& client_prg,
    crypto::Prg& server_prg, const ArithMpcOptions& options) {
  if (client_shares.size() != circuit.num_inputs() ||
      server_shares.size() != circuit.num_inputs()) {
    throw InvalidArgument("arith MPC: share count mismatch");
  }
  const he::PaillierPublicKey& pk = sk.public_key();
  const BigInt u(circuit.modulus());

  // Client -> server: public key + encrypted client shares.
  Writer w;
  pk.serialize(w);
  w.varint(client_shares.size());
  for (const std::uint64_t b : client_shares) {
    bignum::write_bigint(w, pk.encrypt(BigInt(b % circuit.modulus()), client_prg));
  }
  net.client_send(server_id, w.take());

  // Server: E(x_j) = E(b_j) + a_j; plaintext < 2u.
  Reader r(net.server_receive(server_id));
  const he::PaillierPublicKey server_pk = he::PaillierPublicKey::deserialize(r);
  const std::uint64_t count = r.varint();
  if (count != server_shares.size()) throw ProtocolError("arith MPC: share count mismatch");
  std::vector<BigInt> input_cts;
  input_cts.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    const BigInt eb = bignum::read_bigint(r);
    input_cts.push_back(
        server_pk.add(eb, server_pk.encrypt(BigInt(server_shares[j] % circuit.modulus()),
                                            server_prg)));
  }
  r.expect_done();

  return run_arith_mpc_on_ciphertexts(net, server_id, circuit, sk, input_cts, u + u, client_prg,
                                      server_prg, options);
}

}  // namespace spfe::mpc
