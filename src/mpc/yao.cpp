#include "mpc/yao.h"

#include "common/error.h"
#include "crypto/kdf.h"
#include "obs/obs.h"

namespace spfe::mpc {
namespace {

using circuits::BooleanCircuit;
using circuits::Gate;
using circuits::GateKind;

Label random_label(crypto::Prg& prg) {
  Label l;
  prg.fill(l.data(), l.size());
  return l;
}

// Row pad for gate `gate_id` keyed by the two active labels.
Label row_pad(const Label& la, const Label& lb, std::uint64_t gate_id) {
  Writer key;
  key.raw(BytesView(la.data(), la.size()));
  key.raw(BytesView(lb.data(), lb.size()));
  key.u64(gate_id);
  const Bytes pad = crypto::kdf_expand(key.data(), "spfe-yao-row", kLabelBytes);
  Label out{};
  std::copy(pad.begin(), pad.end(), out.begin());
  return out;
}

// Bitwise (not short-circuit) combination: garbling enumerates all four
// truth-table rows, but the operands trace back to secret permute bits, so
// the evaluation must not branch on them.
bool gate_fn(GateKind kind, bool a, bool b) {
  switch (kind) {
    case GateKind::kAnd:
      return a & b;
    case GateKind::kOr:
      return a | b;
    default:
      throw InvalidArgument("gate_fn: not a table gate");
  }
}

}  // namespace

Label xor_labels(const Label& a, const Label& b) {
  Label out;
  for (std::size_t i = 0; i < kLabelBytes; ++i) out[i] = a[i] ^ b[i];
  return out;
}

bool label_lsb(const Label& l) { return (l[kLabelBytes - 1] & 1) != 0; }

Bytes label_to_bytes(const Label& l) { return Bytes(l.begin(), l.end()); }

Label label_from_bytes(BytesView b) {
  if (b.size() != kLabelBytes) throw SerializationError("label_from_bytes: bad size");
  Label l;
  std::copy(b.begin(), b.end(), l.begin());
  return l;
}

GarblingResult garble(const BooleanCircuit& circuit, crypto::Prg& prg) {
  // Global free-XOR offset with permute bit forced on.
  Label offset = random_label(prg);
  offset[kLabelBytes - 1] |= 1;

  const auto fresh_pair = [&]() {
    LabelPair p;
    p.l0 = random_label(prg);
    p.l1 = xor_labels(p.l0, offset);
    return p;
  };

  std::vector<LabelPair> wires(circuit.num_wires());
  GarblingResult result;
  result.input_labels.resize(circuit.num_inputs());
  for (std::size_t i = 0; i < circuit.num_inputs(); ++i) {
    wires[i] = fresh_pair();
    result.input_labels[i] = wires[i];
  }

  GarbledCircuit& gc = result.garbled;
  const auto& gates = circuit.gates();
  for (std::size_t g = 0; g < gates.size(); ++g) {
    const Gate& gate = gates[g];
    const std::size_t out = circuit.num_inputs() + g;
    switch (gate.kind) {
      case GateKind::kXor:
        // Free-XOR: l0_out = l0_a ^ l0_b (offsets cancel pairwise).
        wires[out].l0 = xor_labels(wires[gate.a].l0, wires[gate.b].l0);
        wires[out].l1 = xor_labels(wires[out].l0, offset);
        break;
      case GateKind::kNot:
        // Swap semantics: false label of the output is the true label of
        // the input; the evaluator passes the active label through.
        wires[out].l0 = wires[gate.a].l1;
        wires[out].l1 = wires[gate.a].l0;
        break;
      case GateKind::kConstZero:
      case GateKind::kConstOne: {
        wires[out] = fresh_pair();
        const bool v = gate.kind == GateKind::kConstOne;
        gc.const_labels.push_back(wires[out].get(v));
        break;
      }
      case GateKind::kAnd:
      case GateKind::kOr: {
        wires[out] = fresh_pair();
        // The row index is built from the labels' permute bits, which are
        // secret — a direct `table[row] = ...` store would leak them through
        // the garbler's write pattern. Instead each encrypted row is
        // OR-scattered into all four slots under an equality mask; the four
        // (va, vb) combinations hit distinct rows, so the accumulation is
        // byte-identical to the direct store.
        std::array<Label, 4> table{};
        for (int va = 0; va <= 1; ++va) {
          for (int vb = 0; vb <= 1; ++vb) {
            const Label& la = wires[gate.a].get(va != 0);
            const Label& lb = wires[gate.b].get(vb != 0);
            const bool vo = gate_fn(gate.kind, va != 0, vb != 0);
            const Label enc = xor_labels(row_pad(la, lb, g), wires[out].get(vo));
            const std::uint64_t /*secret*/ row =
                (static_cast<std::uint64_t>(la[kLabelBytes - 1] & 1) << 1) |
                static_cast<std::uint64_t>(lb[kLabelBytes - 1] & 1);
            // SPFE_CT_BEGIN(yao_garble_scatter)
            for (std::size_t r = 0; r < 4; ++r) {
              const std::uint8_t m =
                  static_cast<std::uint8_t>(common::ct_eq_u64(r, row));
              for (std::size_t i = 0; i < kLabelBytes; ++i) {
                table[r][i] |= static_cast<std::uint8_t>(m & enc[i]);
              }
            }
            // SPFE_CT_END
          }
        }
        gc.tables.push_back(table);
        obs::count(obs::Op::kGarbledGates);
        break;
      }
    }
  }

  for (const circuits::WireId w : circuit.outputs()) {
    gc.output_decode.push_back(label_lsb(wires[w].l0));
  }
  return result;
}

std::vector<bool> evaluate(const BooleanCircuit& circuit, const GarbledCircuit& gc,
                           const std::vector<Label>& active_inputs) {
  if (active_inputs.size() != circuit.num_inputs()) {
    throw InvalidArgument("yao evaluate: wrong number of input labels");
  }
  std::vector<Label> active(circuit.num_wires());
  for (std::size_t i = 0; i < circuit.num_inputs(); ++i) active[i] = active_inputs[i];

  std::size_t table_idx = 0;
  std::size_t const_idx = 0;
  const auto& gates = circuit.gates();
  for (std::size_t g = 0; g < gates.size(); ++g) {
    const Gate& gate = gates[g];
    const std::size_t out = circuit.num_inputs() + g;
    switch (gate.kind) {
      case GateKind::kXor:
        active[out] = xor_labels(active[gate.a], active[gate.b]);
        break;
      case GateKind::kNot:
        active[out] = active[gate.a];
        break;
      case GateKind::kConstZero:
      case GateKind::kConstOne:
        if (const_idx >= gc.const_labels.size()) {
          throw ProtocolError("yao evaluate: missing constant label");
        }
        active[out] = gc.const_labels[const_idx++];
        break;
      case GateKind::kAnd:
      case GateKind::kOr: {
        if (table_idx >= gc.tables.size()) {
          throw ProtocolError("yao evaluate: missing garbled table");
        }
        const auto& table = gc.tables[table_idx++];
        const Label& la = active[gate.a];
        const Label& lb = active[gate.b];
        const std::size_t row = (static_cast<std::size_t>(label_lsb(la)) << 1) |
                                static_cast<std::size_t>(label_lsb(lb));
        active[out] = xor_labels(table[row], row_pad(la, lb, g));
        break;
      }
    }
  }

  if (gc.output_decode.size() != circuit.outputs().size()) {
    throw ProtocolError("yao evaluate: output decode size mismatch");
  }
  std::vector<bool> out;
  out.reserve(circuit.outputs().size());
  for (std::size_t i = 0; i < circuit.outputs().size(); ++i) {
    out.push_back(label_lsb(active[circuit.outputs()[i]]) != gc.output_decode[i]);
  }
  return out;
}

Bytes GarbledCircuit::serialize() const {
  Writer w;
  w.varint(tables.size());
  for (const auto& t : tables) {
    for (const Label& row : t) w.raw(BytesView(row.data(), row.size()));
  }
  w.varint(const_labels.size());
  for (const Label& l : const_labels) w.raw(BytesView(l.data(), l.size()));
  w.varint(output_decode.size());
  for (const bool b : output_decode) w.u8(b ? 1 : 0);
  return w.take();
}

GarbledCircuit GarbledCircuit::deserialize(BytesView data) {
  Reader r(data);
  GarbledCircuit gc;
  const std::uint64_t n_tables = r.varint_count(4 * kLabelBytes);
  gc.tables.resize(n_tables);
  for (auto& t : gc.tables) {
    for (Label& row : t) row = label_from_bytes(r.raw(kLabelBytes));
  }
  const std::uint64_t n_consts = r.varint_count(kLabelBytes);
  gc.const_labels.resize(n_consts);
  for (Label& l : gc.const_labels) l = label_from_bytes(r.raw(kLabelBytes));
  const std::uint64_t n_out = r.varint_count(1);
  gc.output_decode.resize(n_out);
  for (std::uint64_t i = 0; i < n_out; ++i) gc.output_decode[i] = r.u8() != 0;
  r.expect_done();
  return gc;
}

std::size_t GarbledCircuit::wire_size_bytes() const { return serialize().size(); }

}  // namespace spfe::mpc
