#include "sharing/additive.h"

namespace spfe::sharing {
namespace {

std::uint64_t add_mod(std::uint64_t a, std::uint64_t b, std::uint64_t u) {
  // a, b < u < 2^64; use __int128 to avoid overflow for large u.
  return static_cast<std::uint64_t>((static_cast<unsigned __int128>(a) + b) % u);
}

void check_modulus(std::uint64_t u) {
  if (u < 2) throw InvalidArgument("additive sharing: modulus must be >= 2");
}

}  // namespace

AdditivePair additive_split(std::uint64_t secret, std::uint64_t modulus, crypto::Prg& prg) {
  check_modulus(modulus);
  AdditivePair p;
  p.server_share = prg.uniform(modulus);
  const std::uint64_t s = secret % modulus;
  p.client_share = add_mod(s, modulus - p.server_share, modulus);
  return p;
}

std::uint64_t additive_combine(std::uint64_t a, std::uint64_t b, std::uint64_t modulus) {
  check_modulus(modulus);
  return add_mod(a % modulus, b % modulus, modulus);
}

std::vector<std::uint64_t> additive_split_k(std::uint64_t secret, std::uint64_t modulus,
                                            std::size_t k, crypto::Prg& prg) {
  check_modulus(modulus);
  if (k == 0) throw InvalidArgument("additive_split_k: need at least one share");
  std::vector<std::uint64_t> shares(k);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i + 1 < k; ++i) {
    shares[i] = prg.uniform(modulus);
    sum = add_mod(sum, shares[i], modulus);
  }
  shares[k - 1] = add_mod(secret % modulus, modulus - sum, modulus);
  return shares;
}

std::uint64_t additive_combine_k(const std::vector<std::uint64_t>& shares,
                                 std::uint64_t modulus) {
  check_modulus(modulus);
  std::uint64_t sum = 0;
  for (const std::uint64_t s : shares) sum = add_mod(sum, s % modulus, modulus);
  return sum;
}

}  // namespace spfe::sharing
