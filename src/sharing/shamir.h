// Shamir secret sharing over any FieldLike field.
//
// Shares live at fixed public abscissae alpha_h (h = 1..k); reconstruction
// interpolates at 0. The §3.1 multi-server protocol uses the same math
// through field::Polynomial directly (it shares *vectors* along a curve);
// this module packages the single-secret case for the IT-PIR servers and
// fault-tolerance extensions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.h"
#include "field/field.h"
#include "field/polynomial.h"
#include "field/reed_solomon.h"

namespace spfe::sharing {

template <field::FieldLike F>
struct ShamirShare {
  typename F::value_type x;  // abscissa (public)
  typename F::value_type y;  // share value
};

// Splits `secret` into k shares with threshold t: any t shares reveal
// nothing; any t+1 reconstruct. Requires k > t and field order > k.
template <field::FieldLike F>
std::vector<ShamirShare<F>> shamir_split(const F& field, const typename F::value_type& secret,
                                         std::size_t k, std::size_t t, crypto::Prg& prg) {
  if (k <= t) throw InvalidArgument("shamir_split: need more shares than threshold");
  const auto poly = field::Polynomial<F>::random_with_constant(field, t, secret, prg);
  std::vector<ShamirShare<F>> shares;
  shares.reserve(k);
  for (std::size_t h = 1; h <= k; ++h) {
    const auto x = field.from_u64(h);
    shares.push_back({x, poly.eval(x)});
  }
  return shares;
}

// Reconstructs the secret from >= t+1 shares (any subset works as long as
// it determines the degree-t polynomial; passing fewer shares than were
// required yields an incorrect value, not an error — threshold bookkeeping
// is the caller's job).
template <field::FieldLike F>
typename F::value_type shamir_reconstruct(const F& field,
                                          const std::vector<ShamirShare<F>>& shares) {
  std::vector<typename F::value_type> xs, ys;
  xs.reserve(shares.size());
  ys.reserve(shares.size());
  for (const auto& s : shares) {
    xs.push_back(s.x);
    ys.push_back(s.y);
  }
  return field::interpolate_at(field, xs, ys, field.zero());
}

// Reconstructs from shares of which some may be corrupted: with s shares of
// a threshold-t sharing, up to floor((s - t - 1) / 2) wrong share values are
// corrected via Berlekamp–Welch. Crashed parties are handled by simply
// omitting their shares (an erasure costs one share, a lie costs two).
// Throws ProtocolError when the shares are beyond that budget.
template <field::FieldLike F>
typename F::value_type shamir_reconstruct_robust(const F& field,
                                                 const std::vector<ShamirShare<F>>& shares,
                                                 std::size_t t) {
  std::vector<typename F::value_type> xs, ys;
  xs.reserve(shares.size());
  ys.reserve(shares.size());
  for (const auto& s : shares) {
    xs.push_back(s.x);
    ys.push_back(s.y);
  }
  const auto decoding = field::decode_with_erasures(field, xs, ys, t);
  if (!decoding.has_value()) {
    throw ProtocolError("shamir_reconstruct_robust: shares are not within the correctable budget (" +
                        std::to_string(shares.size()) + " shares, threshold " + std::to_string(t) +
                        ")");
  }
  return decoding->eval(field, field.zero());
}

}  // namespace spfe::sharing
