// Additive secret sharing over Z_u (the sharing format produced by all three
// input-selection protocols of §3.3 and consumed by the MPC phase).
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "crypto/prg.h"

namespace spfe::sharing {

// A 2-party additive share pair: server_share + client_share = secret (mod u).
struct AdditivePair {
  std::uint64_t server_share = 0;
  std::uint64_t client_share = 0;
};

// Splits `secret` (reduced mod u) into a uniform pair.
AdditivePair additive_split(std::uint64_t secret, std::uint64_t modulus, crypto::Prg& prg);

// Recombines a pair.
std::uint64_t additive_combine(std::uint64_t a, std::uint64_t b, std::uint64_t modulus);

// k-party split: returns k uniform shares summing to secret mod u.
std::vector<std::uint64_t> additive_split_k(std::uint64_t secret, std::uint64_t modulus,
                                            std::size_t k, crypto::Prg& prg);
std::uint64_t additive_combine_k(const std::vector<std::uint64_t>& shares, std::uint64_t modulus);

}  // namespace spfe::sharing
