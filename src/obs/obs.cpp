#include "obs/obs.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace spfe::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
std::array<std::atomic<std::uint64_t>, kNumOps> g_counters{};
}  // namespace detail

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

OpCounts snapshot_counters() {
  OpCounts out{};
  for (std::size_t i = 0; i < kNumOps; ++i) {
    out[i] = detail::g_counters[i].load(std::memory_order_relaxed);
  }
  return out;
}

// Stack of open span indices for the current thread. Spans are only opened
// on protocol-driving threads, but a thread_local stack keeps nesting
// correct even if several driving threads trace concurrently (e.g. tests).
thread_local std::vector<std::size_t> t_span_stack;

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_ops_json(std::string& out, const OpCounts& ops) {
  out += '{';
  bool first = true;
  for (std::size_t i = 0; i < kNumOps; ++i) {
    if (ops[i] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += op_name(static_cast<Op>(i));
    out += "\":";
    out += std::to_string(ops[i]);
  }
  out += '}';
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kModExp: return "modexp";
    case Op::kPaillierEncrypt: return "paillier_encrypt";
    case Op::kPaillierDecrypt: return "paillier_decrypt";
    case Op::kPaillierRerandomize: return "paillier_rerandomize";
    case Op::kGmEncrypt: return "gm_encrypt";
    case Op::kGmDecrypt: return "gm_decrypt";
    case Op::kGarbledGates: return "garbled_gates";
    case Op::kOtBase: return "ot_base";
    case Op::kOtExtended: return "ot_extended";
    case Op::kBwDecode: return "bw_decode";
    case Op::kRobustRetry: return "robust_retry";
    case Op::kMultiexpStraus: return "multiexp_straus";
    case Op::kMultiexpPippenger: return "multiexp_pippenger";
    case Op::kMultiexpFixedBase: return "multiexp_fixed_base";
    case Op::kPoolHit: return "pool_hit";
    case Op::kPoolMiss: return "pool_miss";
    case Op::kPoolRefill: return "pool_refill";
    case Op::kFbTableBuild: return "fbtable_build";
    case Op::kFbTableHit: return "fbtable_hit";
    case Op::kDeadlineMiss: return "deadline_miss";
    case Op::kHedgeSent: return "hedge_sent";
    case Op::kHedgeWon: return "hedge_won";
    case Op::kBackoffWait: return "backoff_wait";
    case Op::kAdvForgedAnswer: return "adv_forged_answer";
    case Op::kAdvDroppedAnswer: return "adv_dropped_answer";
    case Op::kAdvDelayedAnswer: return "adv_delayed_answer";
  }
  return "unknown";
}

OpCounts SpanRecord::delta() const {
  OpCounts out{};
  for (std::size_t i = 0; i < kNumOps; ++i) {
    out[i] = end[i] >= begin[i] ? end[i] - begin[i] : 0;
  }
  return out;
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
  if (on) {
    std::lock_guard<std::mutex> lock(mu_);
    if (epoch_ns_ == 0) epoch_ns_ = steady_now_ns();
  }
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  epoch_ns_ = steady_now_ns();
  for (std::size_t i = 0; i < kNumOps; ++i) {
    detail::g_counters[i].store(0, std::memory_order_relaxed);
  }
  t_span_stack.clear();
}

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

OpCounts Tracer::totals() const { return snapshot_counters(); }

OpCounts Tracer::root_totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  OpCounts out{};
  for (const SpanRecord& rec : records_) {
    if (rec.parent != SpanRecord::kNoParent || rec.open()) continue;
    const OpCounts d = rec.delta();
    for (std::size_t i = 0; i < kNumOps; ++i) out[i] += d[i];
  }
  return out;
}

std::vector<SpanSummary> Tracer::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanSummary> out;
  for (const SpanRecord& rec : records_) {
    if (rec.open()) continue;
    SpanSummary* row = nullptr;
    for (SpanSummary& s : out) {
      if (s.name == rec.name) { row = &s; break; }
    }
    if (row == nullptr) {
      out.push_back(SpanSummary{});
      row = &out.back();
      row->name = rec.name;
    }
    row->calls += 1;
    row->total_ns += rec.duration_ns();
    const OpCounts d = rec.delta();
    for (std::size_t i = 0; i < kNumOps; ++i) row->ops[i] += d[i];
  }
  return out;
}

std::string Tracer::chrome_trace_json() const {
  std::vector<SpanRecord> recs = spans();
  std::string out;
  out.reserve(256 + recs.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& rec : recs) {
    if (rec.open()) continue;  // unclosed spans would have bogus durations
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    json_escape_into(out, rec.name);
    // Complete ("X") events; chrome expects microsecond timestamps.
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":";
    out += std::to_string(rec.start_ns / 1000);
    out += ",\"dur\":";
    out += std::to_string(rec.duration_ns() / 1000);
    out += ",\"args\":{\"span_id\":";
    out += std::to_string(rec.id);
    out += ",\"parent\":";
    out += rec.parent == SpanRecord::kNoParent ? std::string("-1")
                                               : std::to_string(rec.parent);
    if (!rec.note.empty()) {
      out += ",\"note\":\"";
      json_escape_into(out, rec.note);
      out += '"';
    }
    out += ",\"ops\":";
    append_ops_json(out, rec.delta());
    out += "}}";
  }
  out += "]}";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  const std::string json = chrome_trace_json();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "spfe-obs: cannot open %s: %s\n", tmp.c_str(),
                 std::strerror(errno));
    return false;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool write_ok = written == json.size();
  const bool close_ok = std::fclose(f) == 0;
  if (!write_ok || !close_ok) {
    std::fprintf(stderr, "spfe-obs: short write to %s\n", tmp.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "spfe-obs: rename %s -> %s failed: %s\n", tmp.c_str(),
                 path.c_str(), std::strerror(errno));
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::size_t Tracer::open_span(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t idx = records_.size();
  SpanRecord rec;
  rec.id = idx;
  if (!t_span_stack.empty()) {
    rec.parent = t_span_stack.back();
    rec.depth = records_[rec.parent].depth + 1;
  }
  rec.name = name;
  const std::uint64_t now = steady_now_ns();
  rec.start_ns = now >= epoch_ns_ ? now - epoch_ns_ : 0;
  rec.begin = snapshot_counters();
  records_.push_back(std::move(rec));
  t_span_stack.push_back(idx);
  return idx;
}

void Tracer::close_span(std::size_t idx) {
  std::lock_guard<std::mutex> lock(mu_);
  if (idx >= records_.size()) return;
  SpanRecord& rec = records_[idx];
  const std::uint64_t now = steady_now_ns();
  rec.end_ns = now >= epoch_ns_ ? now - epoch_ns_ : 0;
  if (rec.end_ns <= rec.start_ns) rec.end_ns = rec.start_ns + 1;
  rec.end = snapshot_counters();
  // Pop this span (and, defensively, anything opened above it that leaked).
  while (!t_span_stack.empty() && t_span_stack.back() >= idx) {
    t_span_stack.pop_back();
  }
}

void Tracer::annotate_span(std::size_t idx, const std::string& note) {
  std::lock_guard<std::mutex> lock(mu_);
  if (idx >= records_.size()) return;
  SpanRecord& rec = records_[idx];
  if (!rec.note.empty()) rec.note += ';';
  rec.note += note;
}

Span::Span(const char* name) {
  if (!enabled()) return;
  idx_ = Tracer::global().open_span(name);
}

Span::~Span() {
  if (idx_ == kInactive) return;
  Tracer::global().close_span(idx_);
}

void Span::note(const std::string& text) {
  if (idx_ == kInactive) return;
  Tracer::global().annotate_span(idx_, text);
}

// ---------------------------------------------------------------------------
// SPFE_TRACE env gate: when set, enable tracing for the whole process and
// export a chrome trace at exit. Lives in this TU, which every binary links
// because count()/enabled() reference the globals defined above.
namespace {

void write_env_trace_at_exit() {
  Tracer& t = Tracer::global();
  if (t.env_trace_path().empty()) return;
  t.write_chrome_trace(t.env_trace_path());
}

}  // namespace

struct EnvInit {
  EnvInit() {
    const char* path = std::getenv("SPFE_TRACE");
    if (path == nullptr || path[0] == '\0') return;
    Tracer& t = Tracer::global();
    t.env_path_ = path;
    t.set_enabled(true);
    std::atexit(&write_env_trace_at_exit);
  }
};

namespace {
const EnvInit g_env_init;
}  // namespace

}  // namespace spfe::obs
