// Protocol observability: span-based tracing plus named crypto-op counters.
//
// The paper's tables decompose cost per phase (SPIR vs MPC vs input
// selection); `CommStats` meters communication exactly, but says nothing
// about where wall time and compute go *inside* a run. This module adds
// that capability with two primitives:
//
//   * Op counters — thread-safe (relaxed-atomic) named totals for every
//     expensive operation the protocols reduce to: modexps, Paillier
//     enc/dec/rerandomize, GM bit ops, garbled gates, OT transfers,
//     Berlekamp–Welch decode attempts, robust retries, and which multi-exp
//     kernel the cost-model planner selected. Increments may come from any
//     worker thread; because `parallel_for` is fork-join, the totals at any
//     span boundary are identical at every SPFE_THREADS setting.
//   * Spans — RAII scopes (`SPFE_OBS_SPAN("name")`) with steady-clock
//     timing and a counter snapshot at open and close, nested via a
//     thread-local parent stack. A span therefore reports both its wall
//     time and exactly the crypto ops consumed while it was open
//     (including work fanned out to the pool, which joins before the span
//     closes). Spans must be opened on the protocol-driving thread — never
//     inside a `parallel_for` body — so the span tree is deterministic.
//
// Everything is disabled by default: the only cost compiled into the hot
// paths is one inlined relaxed atomic load and a predictable branch (the
// primitives bench pins this at well under 2% on the cheapest counted op).
// Enable programmatically via `Tracer::global().set_enabled(true)`, or for
// any binary by setting `SPFE_TRACE=/path/out.json` in the environment —
// that also registers an atexit hook exporting the whole run as a
// chrome://tracing-loadable JSON file.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace spfe::obs {

// One enumerator per metered operation. Keep op_name() in sync.
enum class Op : std::uint8_t {
  kModExp = 0,          // mod_pow / MontgomeryContext::pow invocations
  kPaillierEncrypt,     // Paillier E(m, r) (one modexp + cheap mults)
  kPaillierDecrypt,     // Paillier CRT (or reference) decryptions
  kPaillierRerandomize, // Paillier rerandomizations
  kGmEncrypt,           // Goldwasser–Micali bit encryptions
  kGmDecrypt,           // Goldwasser–Micali bit decryptions
  kGarbledGates,        // nonfree (AND/OR) gates garbled
  kOtBase,              // base-OT transfers prepared (public-key OTs)
  kOtExtended,          // IKNP-extended transfers prepared (symmetric only)
  kBwDecode,            // Berlekamp–Welch decode attempts
  kRobustRetry,         // robust-star attempts beyond the first
  kMultiexpStraus,      // multi-exp planner picked the Straus kernel
  kMultiexpPippenger,   // multi-exp planner picked the Pippenger kernel
  kMultiexpFixedBase,   // multi-exp planner picked the fixed-base comb
  kPoolHit,             // randomness pool draw served from stock
  kPoolMiss,            // pool draw computed synchronously (pool empty)
  kPoolRefill,          // offline pool refill batches completed
  kFbTableBuild,        // fixed-base table cache: tables built
  kFbTableHit,          // fixed-base table cache: lookups served from cache
  kDeadlineMiss,        // in-flight answers that missed a receive deadline
  kHedgeSent,           // hedge queries dispatched to spare servers
  kHedgeWon,            // hedge answers that arrived and were used
  kBackoffWait,         // retry backoff waits (virtual-time sleeps)
  kAdvForgedAnswer,     // answers replaced by an adversary strategy
  kAdvDroppedAnswer,    // answers suppressed (byzantine silence)
  kAdvDelayedAnswer,    // answers deliberately straggled
};
inline constexpr std::size_t kNumOps = 26;

const char* op_name(Op op);

// Per-span / global counter snapshot, indexed by Op.
using OpCounts = std::array<std::uint64_t, kNumOps>;

namespace detail {
// Defined in obs.cpp. Exposed only so count()/enabled() inline fully into
// the hot paths; do not touch these directly.
extern std::atomic<bool> g_enabled;
extern std::array<std::atomic<std::uint64_t>, kNumOps> g_counters;
}  // namespace detail

// True when metering is on. Inlined single relaxed load — this is the whole
// disabled-mode cost of every instrumentation site.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

// Adds `n` to the named counter; no-op (one load + branch) when disabled.
inline void count(Op op, std::uint64_t n = 1) {
  if (!enabled()) return;
  detail::g_counters[static_cast<std::size_t>(op)].fetch_add(n, std::memory_order_relaxed);
}

// A completed (or still-open) span as recorded by the tracer.
struct SpanRecord {
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  std::size_t id = 0;
  std::size_t parent = kNoParent;
  std::size_t depth = 0;
  std::string name;
  std::string note;             // free-form annotation, ';'-joined
  std::uint64_t start_ns = 0;   // steady-clock, relative to the trace epoch
  std::uint64_t end_ns = 0;     // 0 while the span is still open
  OpCounts begin{};             // global counters at open
  OpCounts end{};               // global counters at close

  // Ops consumed while the span was open (includes child spans).
  OpCounts delta() const;
  std::uint64_t duration_ns() const { return end_ns >= start_ns ? end_ns - start_ns : 0; }
  bool open() const { return end_ns == 0 && start_ns != 0; }
};

// Aggregation of every span sharing one name (for summary tables).
struct SpanSummary {
  std::string name;
  std::size_t calls = 0;
  std::uint64_t total_ns = 0;
  OpCounts ops{};
};

class Span;

// Process-global trace collector. Span open/close serializes on one mutex;
// spans sit on structural protocol paths (a handful per run), so this is
// never on a hot path. When disabled, nothing is recorded at all.
class Tracer {
 public:
  static Tracer& global();

  bool is_enabled() const { return enabled(); }
  // Turns metering + recording on/off (process-wide).
  void set_enabled(bool on);

  // Clears spans, zeroes every counter, restarts the trace epoch. Must not
  // be called while spans are open.
  void reset();

  // Copies of the recorded spans, in open order (== deterministic program
  // order when spans obey the driving-thread rule).
  std::vector<SpanRecord> spans() const;

  // Global counter totals since the last reset.
  OpCounts totals() const;

  // Sum of root-span deltas. When every counted op runs inside some span,
  // this equals totals() — the consistency invariant bench_table1 prints.
  OpCounts root_totals() const;

  // Per-name aggregation in first-seen order.
  std::vector<SpanSummary> summary() const;

  // Serializes the trace in chrome://tracing "traceEvents" format
  // (load via chrome://tracing or https://ui.perfetto.dev).
  std::string chrome_trace_json() const;
  // Atomically writes chrome_trace_json() to `path` (temp file + rename).
  // Returns false (with a note on stderr) on any I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  // Path from $SPFE_TRACE at startup (empty when unset). The atexit hook
  // registered by the env initializer writes there.
  const std::string& env_trace_path() const { return env_path_; }

 private:
  friend class Span;
  friend struct EnvInit;

  std::size_t open_span(const char* name);
  void close_span(std::size_t idx);
  void annotate_span(std::size_t idx, const std::string& note);

  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
  std::uint64_t epoch_ns_ = 0;  // steady-clock origin of the current trace
  std::string env_path_;
};

// RAII span handle. Constructing is a no-op when tracing is disabled.
// Open/close must happen on the same thread (the protocol-driving thread).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Appends a short annotation (shown in the trace's args). No-op when the
  // span was created with tracing disabled.
  void note(const std::string& text);

 private:
  static constexpr std::size_t kInactive = static_cast<std::size_t>(-1);
  std::size_t idx_ = kInactive;
};

}  // namespace spfe::obs

// Convenience macro so call sites stay one line.
#define SPFE_OBS_SPAN_CONCAT2(a, b) a##b
#define SPFE_OBS_SPAN_CONCAT(a, b) SPFE_OBS_SPAN_CONCAT2(a, b)
#define SPFE_OBS_SPAN(name) \
  ::spfe::obs::Span SPFE_OBS_SPAN_CONCAT(spfe_obs_span_, __LINE__)(name)
