// Simultaneous multi-exponentiation on top of MontgomeryContext — the
// batched kernel under every homomorphic hot path (the cPIR server fold,
// Paillier weighted sums in the §4 statistics protocols, and the
// arithmetic-circuit SPFE cross-term elimination).
//
// Three evaluation strategies, selected per call by a cost model (costs in
// Montgomery multiplications, squarings weighted cheaper via mont_sqr):
//   * Straus interleaving — one shared squaring chain for all bases, a
//     2^w-entry window table per base. Tables are shared across all columns
//     of a matrix call. Best for a moderate base count with large exponents.
//   * Pippenger bucketing — no per-base tables; each window accumulates
//     bases into 2^w-1 buckets combined with the running-product trick.
//     Takes over above a base-count threshold (and for small exponents,
//     where Straus tables would dominate).
//   * Fixed-base comb (FixedBasePowTable) — per-base tables of b^(2^(w*j)),
//     no squarings at evaluation time. Wins for a matrix with few bases and
//     many columns, where the table cost amortizes across the columns.
//
// Every strategy returns the canonical representative in [0, modulus), so
// results are byte-identical to the naive product of mod_pow calls — the
// engine changes evaluation order only, never transcripts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/modarith.h"

namespace spfe::bignum {

// prod_i bases[i]^exps[i] mod ctx.modulus(). Exponents must be >= 0; zero
// exponents contribute the identity and cost nothing. Throws InvalidArgument
// on size mismatch or a negative exponent.
BigInt multi_pow(const MontgomeryContext& ctx, std::span<const BigInt> bases,
                 std::span<const BigInt> exps);

// Column-wise multi-exp over a base-major exponent matrix:
//   out[c] = prod_i bases[i]^{exps[i][c]}  for c in [0, columns).
// All rows must have the same length. Window tables (Straus) or comb tables
// (fixed-base) are built once and shared across columns; columns are fanned
// out across the global thread pool (outputs are per-column, so the result
// is bit-identical at every SPFE_THREADS setting).
std::vector<BigInt> multi_pow_matrix(const MontgomeryContext& ctx, std::span<const BigInt> bases,
                                     const std::vector<std::vector<BigInt>>& exps);

// Fixed-base windowing: precomputes base^(2^(w*j)) for all comb positions so
// each pow() costs ~bits/w multiplies and no squarings. The context must
// outlive the table. Exponents above max_exp_bits throw InvalidArgument.
class FixedBasePowTable {
 public:
  FixedBasePowTable(const MontgomeryContext& ctx, const BigInt& base, std::size_t max_exp_bits);

  BigInt pow(const BigInt& exp) const;
  // Montgomery-domain result, for callers that keep accumulating products.
  std::vector<std::uint64_t> pow_mont(const BigInt& exp) const;

  std::size_t max_exp_bits() const { return digits_ * window_; }
  unsigned window() const { return window_; }

 private:
  const MontgomeryContext* ctx_;
  unsigned window_;
  std::size_t digits_;
  std::vector<std::vector<std::uint64_t>> powers_;  // base^(2^(window_*j)), Montgomery form
};

namespace detail {

// Strategy planning, exposed so tests (and DESIGN.md's crossover table) can
// pin which kernel a given shape selects.
enum class MultiExpKind { kStraus, kPippenger, kFixedBase };
struct MultiExpPlan {
  MultiExpKind kind;
  unsigned window;  // w in [1, 10]
};
// `count` bases, `columns` independent exponent columns, exponents of at
// most `max_bits` bits.
MultiExpPlan plan_multi_exp(std::size_t count, std::size_t columns, std::size_t max_bits);

// Window size minimizing the per-exponentiation cost of a fixed-base comb.
unsigned plan_fixed_base_window(std::size_t max_bits);

}  // namespace detail

}  // namespace spfe::bignum
