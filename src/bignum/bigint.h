// Arbitrary-precision signed integers, implemented from scratch.
//
// Sign-magnitude representation over 64-bit limbs (little-endian, always
// normalized: no trailing zero limbs, zero is non-negative). Multiplication
// switches to Karatsuba above a limb threshold; division is Knuth's
// Algorithm D. This is the substrate for the homomorphic encryption (Paillier,
// Goldwasser–Micali), the Naor–Pinkas OT group, and the bignum prime field.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace spfe::crypto {
class Prg;
}

namespace spfe::bignum {

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t v);   // NOLINT(google-explicit-constructor): numeric literal convenience
  BigInt(std::uint64_t v);  // NOLINT(google-explicit-constructor)
  BigInt(int v) : BigInt(static_cast<std::int64_t>(v)) {}  // NOLINT

  // Parses decimal (default) or hex with "0x" prefix; optional leading '-'.
  static BigInt from_string(const std::string& s);
  static BigInt from_hex(const std::string& hex);
  // Big-endian unsigned bytes.
  static BigInt from_bytes_be(BytesView data);

  std::string to_string() const;  // decimal
  std::string to_hex() const;     // lowercase, no 0x prefix, "0" for zero
  // Minimal-length big-endian magnitude (sign is not encoded; see serialize.h
  // in this directory for signed wire encoding). Zero encodes as empty.
  Bytes to_bytes_be() const;
  // Fixed-width big-endian magnitude, left-padded with zeros; throws
  // InvalidArgument if the value does not fit.
  Bytes to_bytes_be_padded(std::size_t width) const;

  bool is_zero() const { return mag_.empty(); }
  bool is_negative() const { return negative_; }
  bool is_odd() const { return !mag_.empty() && (mag_[0] & 1) != 0; }
  bool is_one() const { return !negative_ && mag_.size() == 1 && mag_[0] == 1; }

  // Number of significant bits of the magnitude (0 for zero).
  std::size_t bit_length() const;
  // i-th bit of the magnitude (LSB = 0).
  bool bit(std::size_t i) const;
  // Value as uint64; throws InvalidArgument if negative or too large.
  std::uint64_t to_u64() const;
  // Low 64 bits of the magnitude (0 for zero).
  std::uint64_t low_u64() const { return mag_.empty() ? 0 : mag_[0]; }

  BigInt operator-() const;
  BigInt abs() const;

  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  // this * this, computing each cross product once (~2x fewer limb
  // multiplies than operator*); result is always non-negative.
  BigInt sqr() const;
  // Truncated division (C++ semantics): quotient rounds toward zero.
  BigInt operator/(const BigInt& o) const;
  // Remainder with the sign of the dividend (C++ semantics).
  BigInt operator%(const BigInt& o) const;
  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }

  // Quotient and remainder in one pass (truncated semantics).
  static void divmod(const BigInt& a, const BigInt& b, BigInt& q, BigInt& r);

  // Non-negative remainder for positive modulus m: result in [0, m).
  BigInt mod_floor(const BigInt& m) const;

  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  std::strong_ordering operator<=>(const BigInt& o) const;
  bool operator==(const BigInt& o) const = default;

  // Uniform value in [0, bound); bound must be positive.
  static BigInt random_below(crypto::Prg& prg, const BigInt& bound);
  // Uniform value with exactly `bits` bits (MSB set); bits >= 1.
  static BigInt random_bits(crypto::Prg& prg, std::size_t bits);

  // Limb access for algorithms layered on top (Montgomery, field ops).
  const std::vector<std::uint64_t>& limbs() const { return mag_; }

 private:
  static BigInt from_limbs(std::vector<std::uint64_t> limbs, bool negative);
  void normalize();
  // Magnitude comparison helpers ignore sign.
  static int cmp_mag(const BigInt& a, const BigInt& b);
  static std::vector<std::uint64_t> add_mag(const std::vector<std::uint64_t>& a,
                                            const std::vector<std::uint64_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint64_t> sub_mag(const std::vector<std::uint64_t>& a,
                                            const std::vector<std::uint64_t>& b);
  static std::vector<std::uint64_t> mul_mag(const std::vector<std::uint64_t>& a,
                                            const std::vector<std::uint64_t>& b);
  static std::vector<std::uint64_t> mul_schoolbook(const std::vector<std::uint64_t>& a,
                                                   const std::vector<std::uint64_t>& b);
  static std::vector<std::uint64_t> mul_karatsuba(const std::vector<std::uint64_t>& a,
                                                  const std::vector<std::uint64_t>& b);
  static std::vector<std::uint64_t> sqr_mag(const std::vector<std::uint64_t>& a);
  static std::vector<std::uint64_t> sqr_schoolbook(const std::vector<std::uint64_t>& a);
  // result = z0 + (z1 << 64*half) + (z2 << 128*half); shared by the
  // Karatsuba multiply and square recombination steps.
  static std::vector<std::uint64_t> karatsuba_combine(const std::vector<std::uint64_t>& z0,
                                                      const std::vector<std::uint64_t>& z1,
                                                      const std::vector<std::uint64_t>& z2,
                                                      std::size_t half);
  static void divmod_mag(const BigInt& a, const BigInt& b, BigInt& q, BigInt& r);

  std::vector<std::uint64_t> mag_;
  bool negative_ = false;
};

}  // namespace spfe::bignum
