// Modular arithmetic over BigInt: gcd, inverses, Jacobi symbol, and
// Montgomery-accelerated modular exponentiation.
//
// `MontgomeryContext` caches per-modulus constants so repeated modexps with
// the same modulus (the hot path in Paillier and OT) avoid per-call setup.
#pragma once

#include <cstdint>
#include <vector>

#include "bignum/bigint.h"

namespace spfe::bignum {

BigInt gcd(const BigInt& a, const BigInt& b);

// Returns (g, x, y) with a*x + b*y = g = gcd(a, b).
struct ExtGcdResult {
  BigInt g;
  BigInt x;
  BigInt y;
};
ExtGcdResult ext_gcd(const BigInt& a, const BigInt& b);

// Inverse of a modulo m (m > 1); throws CryptoError if gcd(a, m) != 1.
BigInt mod_inverse(const BigInt& a, const BigInt& m);

// (a + b) mod m, (a - b) mod m, (a * b) mod m with results in [0, m).
BigInt mod_add(const BigInt& a, const BigInt& b, const BigInt& m);
BigInt mod_sub(const BigInt& a, const BigInt& b, const BigInt& m);
BigInt mod_mul(const BigInt& a, const BigInt& b, const BigInt& m);

// base^exp mod m for exp >= 0, m > 0. Uses Montgomery for odd m, plain
// square-and-multiply otherwise.
BigInt mod_pow(const BigInt& base, const BigInt& exp, const BigInt& m);

// Jacobi symbol (a/n) for odd positive n; returns -1, 0, or 1.
int jacobi(const BigInt& a, const BigInt& n);

// Solves x = r1 (mod m1), x = r2 (mod m2) for coprime m1, m2;
// returns x in [0, m1*m2).
BigInt crt_combine(const BigInt& r1, const BigInt& m1, const BigInt& r2, const BigInt& m2);
// Same, with m1^{-1} mod m2 precomputed — for hot paths (CRT Paillier
// decryption) that combine under fixed moduli and shouldn't pay an
// extended-gcd per call.
BigInt crt_combine(const BigInt& r1, const BigInt& m1, const BigInt& r2, const BigInt& m2,
                   const BigInt& m1_inv_mod_m2);

// Montgomery multiplication context for a fixed odd modulus.
class MontgomeryContext {
 public:
  explicit MontgomeryContext(const BigInt& modulus);

  const BigInt& modulus() const { return modulus_; }

  // base^exp mod modulus via 4-bit fixed-window exponentiation.
  BigInt pow(const BigInt& base, const BigInt& exp) const;

  // Montgomery-domain primitives (exposed for the multi-exponentiation
  // engine in multiexp.h and for benchmarking the ablation against
  // divmod-based reduction).
  std::vector<std::uint64_t> to_mont(const BigInt& a) const;
  BigInt from_mont(const std::vector<std::uint64_t>& a) const;
  std::vector<std::uint64_t> mont_mul(const std::vector<std::uint64_t>& a,
                                      const std::vector<std::uint64_t>& b) const;
  // REDC(a * a): squares with symmetric cross terms (~2x fewer limb
  // multiplies than mont_mul(a, a)), then runs a separate reduction pass.
  std::vector<std::uint64_t> mont_sqr(const std::vector<std::uint64_t>& a) const;
  // Montgomery form of 1 — the multiplicative identity for mont_mul.
  const std::vector<std::uint64_t>& mont_one() const { return one_; }
  std::size_t limbs() const { return n_.size(); }

 private:
  // Montgomery reduction of a double-width (2k-limb) product into [0, n).
  std::vector<std::uint64_t> mont_reduce(std::vector<std::uint64_t> t) const;

  BigInt modulus_;
  std::vector<std::uint64_t> n_;       // modulus limbs
  std::uint64_t n0_inv_;               // -n^{-1} mod 2^64
  std::vector<std::uint64_t> r2_;      // R^2 mod n (Montgomery form of R)
  std::vector<std::uint64_t> one_;     // Montgomery form of 1 (R mod n)
};

}  // namespace spfe::bignum
