#include "bignum/modarith.h"

#include <array>

#include "common/error.h"

namespace spfe::bignum {
namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

}  // namespace

BigInt gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.abs();
  BigInt y = b.abs();
  while (!y.is_zero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

ExtGcdResult ext_gcd(const BigInt& a, const BigInt& b) {
  BigInt old_r = a, r = b;
  BigInt old_x = 1, x = 0;
  BigInt old_y = 0, y = 1;
  while (!r.is_zero()) {
    BigInt q, rem;
    BigInt::divmod(old_r, r, q, rem);
    old_r = std::move(r);
    r = std::move(rem);
    BigInt nx = old_x - q * x;
    old_x = std::move(x);
    x = std::move(nx);
    BigInt ny = old_y - q * y;
    old_y = std::move(y);
    y = std::move(ny);
  }
  if (old_r.is_negative()) {
    old_r = -old_r;
    old_x = -old_x;
    old_y = -old_y;
  }
  return {std::move(old_r), std::move(old_x), std::move(old_y)};
}

BigInt mod_inverse(const BigInt& a, const BigInt& m) {
  if (m <= BigInt(1)) throw InvalidArgument("mod_inverse: modulus must exceed 1");
  const ExtGcdResult e = ext_gcd(a.mod_floor(m), m);
  if (!e.g.is_one()) throw CryptoError("mod_inverse: value not invertible");
  return e.x.mod_floor(m);
}

BigInt mod_add(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a + b).mod_floor(m);
}

BigInt mod_sub(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a - b).mod_floor(m);
}

BigInt mod_mul(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a * b).mod_floor(m);
}

BigInt mod_pow(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (m.is_zero() || m.is_negative()) throw InvalidArgument("mod_pow: modulus must be positive");
  if (exp.is_negative()) throw InvalidArgument("mod_pow: negative exponent");
  if (m.is_one()) return BigInt();
  if (m.is_odd()) return MontgomeryContext(m).pow(base, exp);
  // Even modulus: plain left-to-right square-and-multiply.
  BigInt result(1);
  BigInt b = base.mod_floor(m);
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    result = mod_mul(result, result, m);
    if (exp.bit(i)) result = mod_mul(result, b, m);
  }
  return result;
}

int jacobi(const BigInt& a_in, const BigInt& n_in) {
  if (n_in.is_negative() || !n_in.is_odd()) {
    throw InvalidArgument("jacobi: n must be odd and positive");
  }
  BigInt a = a_in.mod_floor(n_in);
  BigInt n = n_in;
  int result = 1;
  while (!a.is_zero()) {
    while (!a.is_odd()) {
      a = a >> 1;
      const u64 n_mod_8 = n.low_u64() & 7;
      if (n_mod_8 == 3 || n_mod_8 == 5) result = -result;
    }
    std::swap(a, n);
    if ((a.low_u64() & 3) == 3 && (n.low_u64() & 3) == 3) result = -result;
    a = a.mod_floor(n);
  }
  return n.is_one() ? result : 0;
}

BigInt crt_combine(const BigInt& r1, const BigInt& m1, const BigInt& r2, const BigInt& m2) {
  return crt_combine(r1, m1, r2, m2, mod_inverse(m1, m2));
}

BigInt crt_combine(const BigInt& r1, const BigInt& m1, const BigInt& r2, const BigInt& m2,
                   const BigInt& m1_inv_mod_m2) {
  // x = r1 + m1 * ((r2 - r1) * m1^{-1} mod m2); with r1 reduced into
  // [0, m1) first, x lands in [0, m1*m2) directly — no wide final division.
  const BigInt r1r = r1.mod_floor(m1);
  const BigInt t = mod_mul(mod_sub(r2, r1r, m2), m1_inv_mod_m2, m2);
  return r1r + m1 * t;
}

MontgomeryContext::MontgomeryContext(const BigInt& modulus) : modulus_(modulus) {
  if (!modulus.is_odd() || modulus.is_negative() || modulus.is_one() || modulus.is_zero()) {
    throw InvalidArgument("MontgomeryContext: modulus must be odd and > 1");
  }
  n_ = modulus.limbs();
  // n0_inv = -n^{-1} mod 2^64 via Newton iteration (works for odd n).
  const u64 n0 = n_[0];
  u64 inv = n0;  // 3-bit correct start
  for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;
  n0_inv_ = ~inv + 1;  // negate mod 2^64

  const std::size_t k = n_.size();
  // R^2 mod n where R = 2^(64k).
  const BigInt r2 = (BigInt(1) << (128 * k)).mod_floor(modulus);
  r2_ = r2.limbs();
  r2_.resize(k, 0);
  const BigInt one_m = (BigInt(1) << (64 * k)).mod_floor(modulus);
  one_ = one_m.limbs();
  one_.resize(k, 0);
}

// CIOS Montgomery multiplication: returns REDC(a * b) with a, b of size k.
std::vector<u64> MontgomeryContext::mont_mul(const std::vector<u64>& a,
                                             const std::vector<u64>& b) const {
  const std::size_t k = n_.size();
  std::vector<u64> t(k + 2, 0);
  for (std::size_t i = 0; i < k; ++i) {
    // t += a[i] * b
    u64 carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const u128 s = static_cast<u128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
    }
    u128 s = static_cast<u128>(t[k]) + carry;
    t[k] = static_cast<u64>(s);
    t[k + 1] = static_cast<u64>(s >> 64);

    // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
    const u64 m = t[0] * n0_inv_;
    carry = 0;
    {
      const u128 s0 = static_cast<u128>(m) * n_[0] + t[0];
      carry = static_cast<u64>(s0 >> 64);
    }
    for (std::size_t j = 1; j < k; ++j) {
      const u128 sj = static_cast<u128>(m) * n_[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(sj);
      carry = static_cast<u64>(sj >> 64);
    }
    s = static_cast<u128>(t[k]) + carry;
    t[k - 1] = static_cast<u64>(s);
    t[k] = t[k + 1] + static_cast<u64>(s >> 64);
    t[k + 1] = 0;
  }
  t.resize(k + 1);
  // Conditional subtraction of n.
  bool ge = t[k] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k; i-- > 0;) {
      if (t[i] != n_[i]) {
        ge = t[i] > n_[i];
        break;
      }
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const u128 d = static_cast<u128>(t[i]) - n_[i] - borrow;
      t[i] = static_cast<u64>(d);
      borrow = (d >> 64) != 0 ? 1 : 0;
    }
  }
  t.resize(k);
  return t;
}

// SOS Montgomery reduction: t is the 2k-limb product; k rounds each zero the
// lowest remaining limb by adding m * n, then the top k limbs are the result.
std::vector<u64> MontgomeryContext::mont_reduce(std::vector<u64> t) const {
  const std::size_t k = n_.size();
  t.resize(2 * k + 1, 0);  // slack limb for the propagated carries
  for (std::size_t i = 0; i < k; ++i) {
    const u64 m = t[i] * n0_inv_;
    u64 carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const u128 s = static_cast<u128>(m) * n_[j] + t[i + j] + carry;
      t[i + j] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
    }
    for (std::size_t idx = i + k; carry != 0; ++idx) {
      const u128 s = static_cast<u128>(t[idx]) + carry;
      t[idx] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
    }
  }
  std::vector<u64> out(t.begin() + static_cast<std::ptrdiff_t>(k),
                       t.begin() + static_cast<std::ptrdiff_t>(2 * k + 1));
  // out has k+1 limbs and is < 2n; conditionally subtract n.
  bool ge = out[k] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k; i-- > 0;) {
      if (out[i] != n_[i]) {
        ge = out[i] > n_[i];
        break;
      }
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const u128 d = static_cast<u128>(out[i]) - n_[i] - borrow;
      out[i] = static_cast<u64>(d);
      borrow = (d >> 64) != 0 ? 1 : 0;
    }
  }
  out.resize(k);
  return out;
}

std::vector<u64> MontgomeryContext::mont_sqr(const std::vector<u64>& a) const {
  const std::size_t k = n_.size();
  // Square with each cross product computed once and doubled.
  std::vector<u64> t(2 * k, 0);
  for (std::size_t i = 0; i < k; ++i) {
    const u64 ai = a[i];
    if (ai == 0) continue;
    u64 carry = 0;
    for (std::size_t j = i + 1; j < k; ++j) {
      const u128 s = static_cast<u128>(ai) * a[j] + t[i + j] + carry;
      t[i + j] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
    }
    t[i + k] = carry;
  }
  u64 carry = 0;
  for (std::size_t i = 0; i < 2 * k; ++i) {
    const u64 v = t[i];
    t[i] = (v << 1) | carry;
    carry = v >> 63;
  }
  carry = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const u128 sq = static_cast<u128>(a[i]) * a[i];
    u128 s = static_cast<u128>(t[2 * i]) + static_cast<u64>(sq) + carry;
    t[2 * i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
    s = static_cast<u128>(t[2 * i + 1]) + static_cast<u64>(sq >> 64) + carry;
    t[2 * i + 1] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  return mont_reduce(std::move(t));
}

std::vector<u64> MontgomeryContext::to_mont(const BigInt& a) const {
  std::vector<u64> al = a.mod_floor(modulus_).limbs();
  al.resize(n_.size(), 0);
  return mont_mul(al, r2_);
}

BigInt MontgomeryContext::from_mont(const std::vector<u64>& a) const {
  std::vector<u64> one(n_.size(), 0);
  one[0] = 1;
  const std::vector<u64> res = mont_mul(a, one);
  BigInt out;
  // Reconstruct via bytes to reuse normalization.
  Bytes be(res.size() * 8);
  for (std::size_t i = 0; i < res.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      be[be.size() - 1 - (8 * i + b)] = static_cast<std::uint8_t>(res[i] >> (8 * b));
    }
  }
  return BigInt::from_bytes_be(be);
}

BigInt MontgomeryContext::pow(const BigInt& base, const BigInt& exp) const {
  if (exp.is_negative()) throw InvalidArgument("MontgomeryContext::pow: negative exponent");
  if (exp.is_zero()) return BigInt(1).mod_floor(modulus_);

  const std::vector<u64> b = to_mont(base);
  // 4-bit fixed window: precompute b^0..b^15 in Montgomery form (even
  // entries by squaring, odd ones by a multiply).
  std::array<std::vector<u64>, 16> table;
  table[0] = one_;
  table[1] = b;
  for (int i = 2; i < 16; ++i) {
    table[i] = (i % 2 == 0) ? mont_sqr(table[i / 2]) : mont_mul(table[i - 1], b);
  }

  const std::size_t bits = exp.bit_length();
  const std::size_t windows = (bits + 3) / 4;
  std::vector<u64> acc = one_;
  bool started = false;
  for (std::size_t w = windows; w-- > 0;) {
    unsigned digit = 0;
    for (int i = 3; i >= 0; --i) {
      digit = (digit << 1) | (exp.bit(4 * w + static_cast<std::size_t>(i)) ? 1u : 0u);
    }
    if (started) {
      acc = mont_sqr(acc);
      acc = mont_sqr(acc);
      acc = mont_sqr(acc);
      acc = mont_sqr(acc);
    }
    if (digit != 0) {
      acc = started ? mont_mul(acc, table[digit]) : table[digit];
      started = true;
    } else if (!started) {
      continue;  // skip leading zero windows
    }
  }
  return from_mont(acc);
}

}  // namespace spfe::bignum
