#include "bignum/modarith.h"

#include <array>

#include "common/error.h"
#include "common/secret.h"
#include "obs/obs.h"

namespace spfe::bignum {
namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// Canonicalizing step shared by mont_mul and mont_reduce: t holds k+1 limbs
// (t[k] is the overflow limb) with value < 2n; subtract n iff t >= n. The
// decision comes from a full trial subtraction (no early exit) and the
// subtraction itself applies the mask-selected modulus, so neither the
// comparison nor the reduction branches on the secret residue.
// SPFE_CT_BEGIN(mont_cond_sub_modulus)
void ct_cond_sub_modulus(u64* /*secret*/ t, const u64* n, std::size_t k) {
  u64 borrow = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const u128 d = static_cast<u128>(t[i]) - n[i] - borrow;
    borrow = static_cast<u64>(d >> 64) & 1;
  }
  const u64 ge = common::ct_is_nonzero_u64(t[k]) | common::ct_is_zero_u64(borrow);
  borrow = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const u128 d = static_cast<u128>(t[i]) - (ge & n[i]) - borrow;
    t[i] = static_cast<u64>(d);
    borrow = static_cast<u64>(d >> 64) & 1;
  }
}
// SPFE_CT_END

// Masked 4-bit window lookup: scans all 16 table entries and accumulates the
// one matching `digit` under an equality mask, so the memory access pattern
// is independent of the secret exponent digit.
// SPFE_CT_BEGIN(mont_table_lookup)
void ct_lookup_window(const std::array<std::vector<u64>, 16>& table, u64 /*secret*/ digit,
                      std::vector<u64>& out) {
  const std::size_t k = out.size();
  for (std::size_t i = 0; i < k; ++i) out[i] = 0;
  for (std::size_t e = 0; e < 16; ++e) {
    const u64 m = common::ct_eq_u64(e, digit);
    const std::vector<u64>& entry = table[e];
    for (std::size_t i = 0; i < k; ++i) out[i] |= m & entry[i];
  }
}
// SPFE_CT_END

}  // namespace

BigInt gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.abs();
  BigInt y = b.abs();
  while (!y.is_zero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

ExtGcdResult ext_gcd(const BigInt& a, const BigInt& b) {
  BigInt old_r = a, r = b;
  BigInt old_x = 1, x = 0;
  BigInt old_y = 0, y = 1;
  while (!r.is_zero()) {
    BigInt q, rem;
    BigInt::divmod(old_r, r, q, rem);
    old_r = std::move(r);
    r = std::move(rem);
    BigInt nx = old_x - q * x;
    old_x = std::move(x);
    x = std::move(nx);
    BigInt ny = old_y - q * y;
    old_y = std::move(y);
    y = std::move(ny);
  }
  if (old_r.is_negative()) {
    old_r = -old_r;
    old_x = -old_x;
    old_y = -old_y;
  }
  return {std::move(old_r), std::move(old_x), std::move(old_y)};
}

BigInt mod_inverse(const BigInt& a, const BigInt& m) {
  if (m <= BigInt(1)) throw InvalidArgument("mod_inverse: modulus must exceed 1");
  const ExtGcdResult e = ext_gcd(a.mod_floor(m), m);
  if (!e.g.is_one()) throw CryptoError("mod_inverse: value not invertible");
  return e.x.mod_floor(m);
}

BigInt mod_add(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a + b).mod_floor(m);
}

BigInt mod_sub(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a - b).mod_floor(m);
}

BigInt mod_mul(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a * b).mod_floor(m);
}

BigInt mod_pow(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (m.is_zero() || m.is_negative()) throw InvalidArgument("mod_pow: modulus must be positive");
  if (exp.is_negative()) throw InvalidArgument("mod_pow: negative exponent");
  if (m.is_one()) return BigInt();
  if (m.is_odd()) return MontgomeryContext(m).pow(base, exp);
  // Even modulus: plain left-to-right square-and-multiply. (The odd-modulus
  // path is counted inside MontgomeryContext::pow.)
  obs::count(obs::Op::kModExp);
  BigInt result(1);
  BigInt b = base.mod_floor(m);
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    result = mod_mul(result, result, m);
    if (exp.bit(i)) result = mod_mul(result, b, m);
  }
  return result;
}

int jacobi(const BigInt& a_in, const BigInt& n_in) {
  if (n_in.is_negative() || !n_in.is_odd()) {
    throw InvalidArgument("jacobi: n must be odd and positive");
  }
  BigInt a = a_in.mod_floor(n_in);
  BigInt n = n_in;
  int result = 1;
  while (!a.is_zero()) {
    while (!a.is_odd()) {
      a = a >> 1;
      const u64 n_mod_8 = n.low_u64() & 7;
      if (n_mod_8 == 3 || n_mod_8 == 5) result = -result;
    }
    std::swap(a, n);
    if ((a.low_u64() & 3) == 3 && (n.low_u64() & 3) == 3) result = -result;
    a = a.mod_floor(n);
  }
  return n.is_one() ? result : 0;
}

BigInt crt_combine(const BigInt& r1, const BigInt& m1, const BigInt& r2, const BigInt& m2) {
  return crt_combine(r1, m1, r2, m2, mod_inverse(m1, m2));
}

BigInt crt_combine(const BigInt& r1, const BigInt& m1, const BigInt& r2, const BigInt& m2,
                   const BigInt& m1_inv_mod_m2) {
  // x = r1 + m1 * ((r2 - r1) * m1^{-1} mod m2); with r1 reduced into
  // [0, m1) first, x lands in [0, m1*m2) directly — no wide final division.
  const BigInt r1r = r1.mod_floor(m1);
  const BigInt t = mod_mul(mod_sub(r2, r1r, m2), m1_inv_mod_m2, m2);
  return r1r + m1 * t;
}

MontgomeryContext::MontgomeryContext(const BigInt& modulus) : modulus_(modulus) {
  if (!modulus.is_odd() || modulus.is_negative() || modulus.is_one() || modulus.is_zero()) {
    throw InvalidArgument("MontgomeryContext: modulus must be odd and > 1");
  }
  n_ = modulus.limbs();
  // n0_inv = -n^{-1} mod 2^64 via Newton iteration (works for odd n).
  const u64 n0 = n_[0];
  u64 inv = n0;  // 3-bit correct start
  for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;
  n0_inv_ = ~inv + 1;  // negate mod 2^64

  const std::size_t k = n_.size();
  // R^2 mod n where R = 2^(64k).
  const BigInt r2 = (BigInt(1) << (128 * k)).mod_floor(modulus);
  r2_ = r2.limbs();
  r2_.resize(k, 0);
  const BigInt one_m = (BigInt(1) << (64 * k)).mod_floor(modulus);
  one_ = one_m.limbs();
  one_.resize(k, 0);
}

// CIOS Montgomery multiplication: returns REDC(a * b) with a, b of size k.
// Branch-free over the operand values: carries and borrows are extracted
// arithmetically and the final canonicalization is mask-selected.
std::vector<u64> MontgomeryContext::mont_mul(const std::vector<u64>& /*secret*/ a,
                                             const std::vector<u64>& /*secret*/ b) const {
  const std::size_t k = n_.size();
  std::vector<u64> t(k + 2, 0);
  // SPFE_CT_BEGIN(mont_mul)
  for (std::size_t i = 0; i < k; ++i) {
    // t += a[i] * b
    u64 carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const u128 s = static_cast<u128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
    }
    u128 s = static_cast<u128>(t[k]) + carry;
    t[k] = static_cast<u64>(s);
    t[k + 1] = static_cast<u64>(s >> 64);

    // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
    const u64 m = t[0] * n0_inv_;
    carry = 0;
    {
      const u128 s0 = static_cast<u128>(m) * n_[0] + t[0];
      carry = static_cast<u64>(s0 >> 64);
    }
    for (std::size_t j = 1; j < k; ++j) {
      const u128 sj = static_cast<u128>(m) * n_[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(sj);
      carry = static_cast<u64>(sj >> 64);
    }
    s = static_cast<u128>(t[k]) + carry;
    t[k - 1] = static_cast<u64>(s);
    t[k] = t[k + 1] + static_cast<u64>(s >> 64);
    t[k + 1] = 0;
  }
  ct_cond_sub_modulus(t.data(), n_.data(), k);
  // SPFE_CT_END
  t.resize(k);
  return t;
}

// SOS Montgomery reduction: t is the 2k-limb product; k rounds each zero the
// lowest remaining limb by adding m * n, then the top k limbs are the result.
// The per-round carry is always propagated to the top of the buffer (adding
// zero where it has died out), so the round cost never depends on how far a
// secret-value-dependent carry happens to travel.
std::vector<u64> MontgomeryContext::mont_reduce(std::vector<u64> /*secret*/ t) const {
  const std::size_t k = n_.size();
  t.resize(2 * k + 1, 0);  // slack limb for the propagated carries
  // SPFE_CT_BEGIN(mont_reduce)
  for (std::size_t i = 0; i < k; ++i) {
    const u64 m = t[i] * n0_inv_;
    u64 carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const u128 s = static_cast<u128>(m) * n_[j] + t[i + j] + carry;
      t[i + j] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
    }
    for (std::size_t idx = i + k; idx < 2 * k + 1; ++idx) {
      const u128 s = static_cast<u128>(t[idx]) + carry;
      t[idx] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
    }
  }
  std::vector<u64> out(t.begin() + static_cast<std::ptrdiff_t>(k),
                       t.begin() + static_cast<std::ptrdiff_t>(2 * k + 1));
  ct_cond_sub_modulus(out.data(), n_.data(), k);
  // SPFE_CT_END
  out.resize(k);
  return out;
}

std::vector<u64> MontgomeryContext::mont_sqr(const std::vector<u64>& /*secret*/ a) const {
  const std::size_t k = n_.size();
  // Square with each cross product computed once and doubled. Zero limbs are
  // NOT skipped: the row cost must not depend on the secret operand value.
  std::vector<u64> t(2 * k, 0);
  // SPFE_CT_BEGIN(mont_sqr)
  for (std::size_t i = 0; i < k; ++i) {
    const u64 ai = a[i];
    u64 carry = 0;
    for (std::size_t j = i + 1; j < k; ++j) {
      const u128 s = static_cast<u128>(ai) * a[j] + t[i + j] + carry;
      t[i + j] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
    }
    t[i + k] = carry;
  }
  u64 carry = 0;
  for (std::size_t i = 0; i < 2 * k; ++i) {
    const u64 v = t[i];
    t[i] = (v << 1) | carry;
    carry = v >> 63;
  }
  carry = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const u128 sq = static_cast<u128>(a[i]) * a[i];
    u128 s = static_cast<u128>(t[2 * i]) + static_cast<u64>(sq) + carry;
    t[2 * i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
    s = static_cast<u128>(t[2 * i + 1]) + static_cast<u64>(sq >> 64) + carry;
    t[2 * i + 1] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  const std::vector<u64> red = mont_reduce(std::move(t));
  // SPFE_CT_END
  return red;
}

std::vector<u64> MontgomeryContext::to_mont(const BigInt& a) const {
  std::vector<u64> al = a.mod_floor(modulus_).limbs();
  al.resize(n_.size(), 0);
  return mont_mul(al, r2_);
}

BigInt MontgomeryContext::from_mont(const std::vector<u64>& a) const {
  std::vector<u64> one(n_.size(), 0);
  one[0] = 1;
  const std::vector<u64> res = mont_mul(a, one);
  BigInt out;
  // Reconstruct via bytes to reuse normalization.
  Bytes be(res.size() * 8);
  for (std::size_t i = 0; i < res.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      be[be.size() - 1 - (8 * i + b)] = static_cast<std::uint8_t>(res[i] >> (8 * b));
    }
  }
  return BigInt::from_bytes_be(be);
}

// base^exp via a 4-bit fixed window. Constant time in the exponent *value*:
// every window pays four squarings plus one multiplication (zero digits
// multiply by the Montgomery identity), and the table entry is fetched with
// a masked full-table scan. The exponent's bit length is public by policy
// (it is a key/modulus size, fixed per context — see DESIGN.md), so the
// window count may depend on it.
BigInt MontgomeryContext::pow(const BigInt& base, const BigInt& /*secret*/ exp) const {
  if (exp.is_negative()) throw InvalidArgument("MontgomeryContext::pow: negative exponent");
  obs::count(obs::Op::kModExp);
  if (exp.is_zero()) return BigInt(1).mod_floor(modulus_);

  const std::vector<u64> b = to_mont(base);
  // Precompute b^0..b^15 in Montgomery form (even entries by squaring, odd
  // ones by a multiply); b itself is not secret (ciphertexts, generators).
  std::array<std::vector<u64>, 16> table;
  table[0] = one_;
  table[1] = b;
  for (int i = 2; i < 16; ++i) {
    table[i] = (i % 2 == 0) ? mont_sqr(table[i / 2]) : mont_mul(table[i - 1], b);
  }

  const std::size_t bits = exp.bit_length();
  const std::size_t windows = (bits + 3) / 4;
  const std::vector<u64>& el = exp.limbs();
  std::vector<u64> acc = one_;
  std::vector<u64> entry(n_.size());
  // SPFE_CT_BEGIN(mont_pow)
  for (std::size_t w = windows; w-- > 0;) {
    if (w + 1 != windows) {  // window position is public, not the digit
      acc = mont_sqr(acc);
      acc = mont_sqr(acc);
      acc = mont_sqr(acc);
      acc = mont_sqr(acc);
    }
    // 4-bit windows never straddle a 64-bit limb; the limb index depends
    // only on the public window position.
    const u64 digit = (el[(4 * w) / 64] >> ((4 * w) % 64)) & 0xf;
    ct_lookup_window(table, digit, entry);
    acc = mont_mul(acc, entry);
  }
  // SPFE_CT_END
  return from_mont(acc);
}

}  // namespace spfe::bignum
