// Probabilistic primality testing and prime generation.
//
// Miller–Rabin with PRG-supplied bases (plus fixed small-prime trial
// division). Key generation for Paillier / Goldwasser–Micali uses
// `random_prime`; the OT group uses a fixed published safe prime instead of
// generating one (see ot/group.h), since safe-prime generation is expensive.
#pragma once

#include <cstddef>

#include "bignum/bigint.h"
#include "crypto/prg.h"

namespace spfe::bignum {

// Miller–Rabin with `rounds` random bases (error <= 4^-rounds).
bool is_probable_prime(const BigInt& n, crypto::Prg& prg, int rounds = 32);

// Uniform prime with exactly `bits` bits (MSB and LSB set before testing).
BigInt random_prime(crypto::Prg& prg, std::size_t bits, int rounds = 32);

// Smallest probable prime >= n.
BigInt next_prime(const BigInt& n, crypto::Prg& prg, int rounds = 32);

// Safe prime p = 2q + 1 with q prime; exponential-time search, intended for
// small test parameters only (<= ~128 bits).
BigInt random_safe_prime(crypto::Prg& prg, std::size_t bits, int rounds = 20);

}  // namespace spfe::bignum
