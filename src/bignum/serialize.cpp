#include "bignum/serialize.h"

#include "common/error.h"

namespace spfe::bignum {

void write_bigint(Writer& w, const BigInt& v) {
  w.u8(v.is_negative() ? 1 : 0);
  w.bytes(v.to_bytes_be());
}

BigInt read_bigint(Reader& r) {
  const std::uint8_t sign = r.u8();
  if (sign > 1) throw SerializationError("read_bigint: bad sign byte");
  BigInt v = BigInt::from_bytes_be(r.bytes());
  if (sign == 1) {
    if (v.is_zero()) throw SerializationError("read_bigint: negative zero");
    v = -v;
  }
  return v;
}

}  // namespace spfe::bignum
