#include "bignum/bigint.h"

#include <algorithm>
#include <bit>
#include <compare>

#include "common/error.h"
#include "common/secret.h"
#include "crypto/prg.h"

namespace spfe::bignum {
namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr std::size_t kKaratsubaThreshold = 32;  // limbs

}  // namespace

BigInt::BigInt(std::int64_t v) {
  if (v == 0) return;
  negative_ = v < 0;
  // Careful with INT64_MIN: negate in unsigned domain.
  const u64 mag = negative_ ? (~static_cast<u64>(v) + 1) : static_cast<u64>(v);
  mag_.push_back(mag);
}

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) mag_.push_back(v);
}

BigInt BigInt::from_limbs(std::vector<std::uint64_t> limbs, bool negative) {
  BigInt r;
  r.mag_ = std::move(limbs);
  r.negative_ = negative;
  r.normalize();
  return r;
}

void BigInt::normalize() {
  while (!mag_.empty() && mag_.back() == 0) mag_.pop_back();
  if (mag_.empty()) negative_ = false;
}

// Limb counts are public by policy (normalized representation), so unequal
// sizes are decided directly. Equal-size magnitudes are compared without an
// early exit: every limb is visited and the verdict accumulates in masks, so
// the scan time does not reveal where the operands first differ.
int BigInt::cmp_mag(const BigInt& /*secret*/ a, const BigInt& /*secret*/ b) {
  if (a.mag_.size() != b.mag_.size()) return a.mag_.size() < b.mag_.size() ? -1 : 1;
  // SPFE_CT_BEGIN(cmp_mag)
  common::SecretBool lt;
  common::SecretBool gt;
  for (std::size_t i = a.mag_.size(); i-- > 0;) {
    const common::SecretBool limb_lt =
        common::SecretBool::from_mask(common::ct_lt_u64(a.mag_[i], b.mag_[i]));
    const common::SecretBool limb_gt =
        common::SecretBool::from_mask(common::ct_lt_u64(b.mag_[i], a.mag_[i]));
    const common::SecretBool undecided = ~(lt | gt);
    lt = lt | (undecided & limb_lt);
    gt = gt | (undecided & limb_gt);
  }
  const std::uint64_t verdict = common::ct_select_u64(
      gt.mask(), 1, common::ct_select_u64(lt.mask(), static_cast<u64>(-1), 0));
  // SPFE_CT_END
  // The ordering itself is declassified: callers (sign logic, divmod) branch
  // on it, which is the documented public-by-policy exit of this region.
  return static_cast<int>(static_cast<std::int64_t>(verdict));
}

std::strong_ordering BigInt::operator<=>(const BigInt& o) const {
  if (negative_ != o.negative_) {
    return negative_ ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  const int c = cmp_mag(*this, o);
  const int signed_c = negative_ ? -c : c;
  if (signed_c < 0) return std::strong_ordering::less;
  if (signed_c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::vector<u64> BigInt::add_mag(const std::vector<u64>& a, const std::vector<u64>& b) {
  const auto& big = a.size() >= b.size() ? a : b;
  const auto& small = a.size() >= b.size() ? b : a;
  std::vector<u64> out(big.size() + 1, 0);
  u64 carry = 0;
  std::size_t i = 0;
  for (; i < small.size(); ++i) {
    const u128 s = static_cast<u128>(big[i]) + small[i] + carry;
    out[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  for (; i < big.size(); ++i) {
    const u128 s = static_cast<u128>(big[i]) + carry;
    out[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  out[big.size()] = carry;
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<u64> BigInt::sub_mag(const std::vector<u64>& /*secret*/ a,
                                 const std::vector<u64>& /*secret*/ b) {
  std::vector<u64> out(a.size(), 0);
  // SPFE_CT_BEGIN(sub_mag)
  // Borrow chain over secret limb values: the borrow bit is extracted
  // arithmetically from the wide difference (the high half of `d` is all
  // ones exactly when the subtraction wrapped), never via a branch.
  u64 borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const u64 bi = i < b.size() ? b[i] : 0;  // index vs size: public shape
    const u128 d = static_cast<u128>(a[i]) - bi - borrow;
    out[i] = static_cast<u64>(d);
    borrow = static_cast<u64>(d >> 64) & 1;
  }
  // SPFE_CT_END
  // Normalization (public-by-policy limb count) happens outside the region.
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

BigInt BigInt::operator-() const {
  BigInt r = *this;
  if (!r.is_zero()) r.negative_ = !r.negative_;
  return r;
}

BigInt BigInt::abs() const {
  BigInt r = *this;
  r.negative_ = false;
  return r;
}

BigInt BigInt::operator+(const BigInt& o) const {
  if (negative_ == o.negative_) {
    return from_limbs(add_mag(mag_, o.mag_), negative_);
  }
  const int c = cmp_mag(*this, o);
  if (c == 0) return BigInt();
  if (c > 0) return from_limbs(sub_mag(mag_, o.mag_), negative_);
  return from_limbs(sub_mag(o.mag_, mag_), o.negative_);
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

std::vector<u64> BigInt::mul_schoolbook(const std::vector<u64>& a, const std::vector<u64>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<u64> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    u64 carry = 0;
    const u64 ai = a[i];
    if (ai == 0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      const u128 t = static_cast<u128>(ai) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<u64>(t);
      carry = static_cast<u64>(t >> 64);
    }
    out[i + b.size()] = carry;
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<u64> BigInt::karatsuba_combine(const std::vector<u64>& z0, const std::vector<u64>& z1,
                                           const std::vector<u64>& z2, std::size_t half) {
  std::vector<u64> out(std::max({z0.size(), z1.size() + half, z2.size() + 2 * half}) + 1, 0);
  std::copy(z0.begin(), z0.end(), out.begin());
  auto add_shifted = [&](const std::vector<u64>& v, std::size_t shift) {
    u64 carry = 0;
    std::size_t i = 0;
    for (; i < v.size(); ++i) {
      const u128 s = static_cast<u128>(out[shift + i]) + v[i] + carry;
      out[shift + i] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
    }
    while (carry != 0) {
      const u128 s = static_cast<u128>(out[shift + i]) + carry;
      out[shift + i] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
      ++i;
    }
  };
  add_shifted(z1, half);
  add_shifted(z2, 2 * half);
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<u64> BigInt::mul_karatsuba(const std::vector<u64>& a, const std::vector<u64>& b) {
  const std::size_t half = (std::max(a.size(), b.size()) + 1) / 2;
  auto low = [&](const std::vector<u64>& v) {
    return std::vector<u64>(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(
                                                       std::min(half, v.size())));
  };
  auto high = [&](const std::vector<u64>& v) {
    if (v.size() <= half) return std::vector<u64>{};
    return std::vector<u64>(v.begin() + static_cast<std::ptrdiff_t>(half), v.end());
  };
  const std::vector<u64> a0 = low(a), a1 = high(a), b0 = low(b), b1 = high(b);

  std::vector<u64> z0 = mul_mag(a0, b0);
  std::vector<u64> z2 = mul_mag(a1, b1);
  std::vector<u64> sa = add_mag(a0, a1);
  std::vector<u64> sb = add_mag(b0, b1);
  std::vector<u64> z1 = mul_mag(sa, sb);           // (a0+a1)(b0+b1)
  z1 = sub_mag(z1, add_mag(z0, z2));               // z1 = middle term

  return karatsuba_combine(z0, z1, z2, half);
}

// Schoolbook squaring: each cross product a[i]*a[j] (i < j) is computed once
// and doubled, so the inner loop does ~k^2/2 limb multiplies instead of k^2.
std::vector<u64> BigInt::sqr_schoolbook(const std::vector<u64>& a) {
  const std::size_t k = a.size();
  std::vector<u64> out(2 * k, 0);
  for (std::size_t i = 0; i < k; ++i) {
    const u64 ai = a[i];
    if (ai == 0) continue;
    u64 carry = 0;
    for (std::size_t j = i + 1; j < k; ++j) {
      const u128 t = static_cast<u128>(ai) * a[j] + out[i + j] + carry;
      out[i + j] = static_cast<u64>(t);
      carry = static_cast<u64>(t >> 64);
    }
    out[i + k] = carry;  // rows only ever wrote indices < i + k
  }
  // Double the cross terms, then add the diagonal squares.
  u64 carry = 0;
  for (std::size_t i = 0; i < 2 * k; ++i) {
    const u64 v = out[i];
    out[i] = (v << 1) | carry;
    carry = v >> 63;
  }
  carry = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const u128 sq = static_cast<u128>(a[i]) * a[i];
    u128 s = static_cast<u128>(out[2 * i]) + static_cast<u64>(sq) + carry;
    out[2 * i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
    s = static_cast<u128>(out[2 * i + 1]) + static_cast<u64>(sq >> 64) + carry;
    out[2 * i + 1] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<u64> BigInt::sqr_mag(const std::vector<u64>& a) {
  if (a.empty()) return {};
  if (a.size() < kKaratsubaThreshold) return sqr_schoolbook(a);
  // Karatsuba on squares: (a1*B + a0)^2 = a1^2 B^2 + ((a0+a1)^2 - a0^2 - a1^2) B + a0^2.
  const std::size_t half = (a.size() + 1) / 2;
  const std::vector<u64> a0(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(half));
  const std::vector<u64> a1(a.begin() + static_cast<std::ptrdiff_t>(half), a.end());
  std::vector<u64> z0 = sqr_mag(a0);
  std::vector<u64> z2 = sqr_mag(a1);
  std::vector<u64> z1 = sqr_mag(add_mag(a0, a1));
  z1 = sub_mag(z1, add_mag(z0, z2));
  return karatsuba_combine(z0, z1, z2, half);
}

std::vector<u64> BigInt::mul_mag(const std::vector<u64>& a, const std::vector<u64>& b) {
  if (a.empty() || b.empty()) return {};
  if (std::min(a.size(), b.size()) < kKaratsubaThreshold) return mul_schoolbook(a, b);
  return mul_karatsuba(a, b);
}

BigInt BigInt::operator*(const BigInt& o) const {
  if (is_zero() || o.is_zero()) return BigInt();
  if (this == &o) return sqr();
  return from_limbs(mul_mag(mag_, o.mag_), negative_ != o.negative_);
}

BigInt BigInt::sqr() const { return from_limbs(sqr_mag(mag_), false); }

// Knuth Algorithm D on 64-bit limbs (magnitudes only).
void BigInt::divmod_mag(const BigInt& a, const BigInt& b, BigInt& q, BigInt& r) {
  if (b.is_zero()) throw InvalidArgument("BigInt: division by zero");
  if (cmp_mag(a, b) < 0) {
    q = BigInt();
    r = a.abs();
    return;
  }
  if (b.mag_.size() == 1) {
    // Single-limb fast path.
    const u64 d = b.mag_[0];
    std::vector<u64> qm(a.mag_.size(), 0);
    u64 rem = 0;
    for (std::size_t i = a.mag_.size(); i-- > 0;) {
      const u128 cur = (static_cast<u128>(rem) << 64) | a.mag_[i];
      qm[i] = static_cast<u64>(cur / d);
      rem = static_cast<u64>(cur % d);
    }
    q = from_limbs(std::move(qm), false);
    r = BigInt(rem);
    return;
  }

  // Normalize so the divisor's top limb has its MSB set.
  const int shift = std::countl_zero(b.mag_.back());
  const BigInt u = a.abs() << static_cast<std::size_t>(shift);
  const BigInt v = b.abs() << static_cast<std::size_t>(shift);
  const std::size_t n = v.mag_.size();
  const std::size_t m = u.mag_.size() - n;

  std::vector<u64> un = u.mag_;
  un.push_back(0);  // extra high limb
  const std::vector<u64>& vn = v.mag_;
  std::vector<u64> qm(m + 1, 0);

  const u64 v_hi = vn[n - 1];
  const u64 v_lo = vn[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    const u128 num = (static_cast<u128>(un[j + n]) << 64) | un[j + n - 1];
    u128 qhat = num / v_hi;
    u128 rhat = num % v_hi;
    if (qhat > ~u64(0)) {
      qhat = ~u64(0);
      rhat = num - qhat * v_hi;
    }
    while (rhat <= ~u64(0) &&
           qhat * v_lo > ((rhat << 64) | un[j + n - 2])) {
      --qhat;
      rhat += v_hi;
    }
    // Multiply-subtract qhat * v from un[j .. j+n].
    u64 borrow = 0;
    u64 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u128 p = static_cast<u128>(static_cast<u64>(qhat)) * vn[i] + carry;
      carry = static_cast<u64>(p >> 64);
      const u128 d = static_cast<u128>(un[j + i]) - static_cast<u64>(p) - borrow;
      un[j + i] = static_cast<u64>(d);
      borrow = (d >> 64) != 0 ? 1 : 0;
    }
    const u128 d = static_cast<u128>(un[j + n]) - carry - borrow;
    un[j + n] = static_cast<u64>(d);
    if ((d >> 64) != 0) {
      // qhat was one too large: add back.
      --qhat;
      u64 c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const u128 s = static_cast<u128>(un[j + i]) + vn[i] + c;
        un[j + i] = static_cast<u64>(s);
        c = static_cast<u64>(s >> 64);
      }
      un[j + n] += c;
    }
    qm[j] = static_cast<u64>(qhat);
  }

  un.resize(n);
  q = from_limbs(std::move(qm), false);
  r = from_limbs(std::move(un), false) >> static_cast<std::size_t>(shift);
}

void BigInt::divmod(const BigInt& a, const BigInt& b, BigInt& q, BigInt& r) {
  divmod_mag(a, b, q, r);
  // Truncated semantics: quotient sign = sign(a)*sign(b), remainder sign = sign(a).
  if (!q.is_zero()) q.negative_ = a.negative_ != b.negative_;
  if (!r.is_zero()) r.negative_ = a.negative_;
}

BigInt BigInt::operator/(const BigInt& o) const {
  BigInt q, r;
  divmod(*this, o, q, r);
  return q;
}

BigInt BigInt::operator%(const BigInt& o) const {
  BigInt q, r;
  divmod(*this, o, q, r);
  return r;
}

BigInt BigInt::mod_floor(const BigInt& m) const {
  if (m.is_zero() || m.is_negative()) {
    throw InvalidArgument("BigInt::mod_floor: modulus must be positive");
  }
  BigInt r = *this % m;
  if (r.is_negative()) r += m;
  return r;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  std::vector<u64> out(mag_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < mag_.size(); ++i) {
    out[i + limb_shift] |= bit_shift == 0 ? mag_[i] : (mag_[i] << bit_shift);
    if (bit_shift != 0) out[i + limb_shift + 1] |= mag_[i] >> (64 - bit_shift);
  }
  return from_limbs(std::move(out), negative_);
}

BigInt BigInt::operator>>(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= mag_.size()) return BigInt();
  const std::size_t bit_shift = bits % 64;
  std::vector<u64> out(mag_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = bit_shift == 0 ? mag_[i + limb_shift] : (mag_[i + limb_shift] >> bit_shift);
    if (bit_shift != 0 && i + limb_shift + 1 < mag_.size()) {
      out[i] |= mag_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  return from_limbs(std::move(out), negative_);
}

std::size_t BigInt::bit_length() const {
  if (mag_.empty()) return 0;
  return 64 * (mag_.size() - 1) + (64 - static_cast<std::size_t>(std::countl_zero(mag_.back())));
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= mag_.size()) return false;
  return ((mag_[limb] >> (i % 64)) & 1) != 0;
}

std::uint64_t BigInt::to_u64() const {
  if (negative_) throw InvalidArgument("BigInt::to_u64: negative value");
  if (mag_.size() > 1) throw InvalidArgument("BigInt::to_u64: value exceeds 64 bits");
  return mag_.empty() ? 0 : mag_[0];
}

BigInt BigInt::from_string(const std::string& s) {
  if (s.empty()) throw InvalidArgument("BigInt::from_string: empty string");
  std::size_t pos = 0;
  bool neg = false;
  if (s[pos] == '-') {
    neg = true;
    ++pos;
  }
  if (s.size() >= pos + 2 && s[pos] == '0' && (s[pos + 1] == 'x' || s[pos + 1] == 'X')) {
    BigInt r = from_hex(s.substr(pos + 2));
    if (neg && !r.is_zero()) r.negative_ = true;
    return r;
  }
  if (pos == s.size()) throw InvalidArgument("BigInt::from_string: no digits");
  BigInt r;
  for (; pos < s.size(); ++pos) {
    const char c = s[pos];
    if (c < '0' || c > '9') throw InvalidArgument("BigInt::from_string: bad digit");
    r = r * BigInt(std::uint64_t(10)) + BigInt(std::uint64_t(c - '0'));
  }
  if (neg && !r.is_zero()) r.negative_ = true;
  return r;
}

BigInt BigInt::from_hex(const std::string& hex) {
  if (hex.empty()) throw InvalidArgument("BigInt::from_hex: empty string");
  BigInt r;
  std::vector<u64> limbs((hex.size() + 15) / 16, 0);
  for (std::size_t i = 0; i < hex.size(); ++i) {
    const char c = hex[hex.size() - 1 - i];
    u64 d;
    if (c >= '0' && c <= '9') {
      d = static_cast<u64>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<u64>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      d = static_cast<u64>(c - 'A' + 10);
    } else {
      throw InvalidArgument("BigInt::from_hex: bad digit");
    }
    limbs[i / 16] |= d << (4 * (i % 16));
  }
  return from_limbs(std::move(limbs), false);
}

BigInt BigInt::from_bytes_be(BytesView data) {
  std::vector<u64> limbs((data.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::size_t bit_pos = 8 * (data.size() - 1 - i);
    limbs[bit_pos / 64] |= static_cast<u64>(data[i]) << (bit_pos % 64);
  }
  return from_limbs(std::move(limbs), false);
}

Bytes BigInt::to_bytes_be() const {
  if (is_zero()) return {};
  const std::size_t nbytes = (bit_length() + 7) / 8;
  return to_bytes_be_padded(nbytes);
}

Bytes BigInt::to_bytes_be_padded(std::size_t width) const {
  const std::size_t nbytes = is_zero() ? 0 : (bit_length() + 7) / 8;
  if (nbytes > width) throw InvalidArgument("BigInt::to_bytes_be_padded: value too wide");
  Bytes out(width, 0);
  for (std::size_t i = 0; i < nbytes; ++i) {
    const std::size_t bit_pos = 8 * i;
    out[width - 1 - i] = static_cast<std::uint8_t>(mag_[bit_pos / 64] >> (bit_pos % 64));
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = mag_.size(); i-- > 0;) {
    for (int nib = 15; nib >= 0; --nib) {
      const unsigned d = static_cast<unsigned>((mag_[i] >> (4 * nib)) & 0xf);
      if (out.empty() && d == 0) continue;
      out.push_back(kDigits[d]);
    }
  }
  return out;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  // Repeated division by 10^19 (largest power of 10 in a u64).
  constexpr u64 kChunk = 10'000'000'000'000'000'000ULL;
  BigInt v = abs();
  std::vector<u64> chunks;
  const BigInt chunk_div(kChunk);
  while (!v.is_zero()) {
    BigInt q, r;
    divmod(v, chunk_div, q, r);
    chunks.push_back(r.low_u64());
    v = std::move(q);
  }
  std::string out = negative_ ? "-" : "";
  out += std::to_string(chunks.back());
  for (std::size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out += std::string(19 - part.size(), '0') + part;
  }
  return out;
}

BigInt BigInt::random_below(crypto::Prg& prg, const BigInt& bound) {
  if (bound.is_zero() || bound.is_negative()) {
    throw InvalidArgument("BigInt::random_below: bound must be positive");
  }
  const std::size_t bits = bound.bit_length();
  const std::size_t nbytes = (bits + 7) / 8;
  const unsigned top_mask =
      bits % 8 == 0 ? 0xff : static_cast<unsigned>((1u << (bits % 8)) - 1);
  for (;;) {
    Bytes raw = prg.bytes(nbytes);
    raw[0] &= static_cast<std::uint8_t>(top_mask);
    BigInt candidate = from_bytes_be(raw);
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::random_bits(crypto::Prg& prg, std::size_t bits) {
  if (bits == 0) throw InvalidArgument("BigInt::random_bits: bits must be >= 1");
  const std::size_t nbytes = (bits + 7) / 8;
  Bytes raw = prg.bytes(nbytes);
  const unsigned top_bit = (bits - 1) % 8;
  raw[0] &= static_cast<std::uint8_t>((1u << (top_bit + 1)) - 1);
  raw[0] |= static_cast<std::uint8_t>(1u << top_bit);
  return from_bytes_be(raw);
}

}  // namespace spfe::bignum
