// Wire encoding for BigInt values: varint length + sign byte + magnitude.
#pragma once

#include "bignum/bigint.h"
#include "common/serialize.h"

namespace spfe::bignum {

void write_bigint(Writer& w, const BigInt& v);
BigInt read_bigint(Reader& r);

}  // namespace spfe::bignum
