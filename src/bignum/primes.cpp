#include "bignum/primes.h"

#include <array>

#include "bignum/modarith.h"
#include "common/error.h"

namespace spfe::bignum {
namespace {

constexpr std::array<std::uint64_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,  59,  61,
    67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151,
    157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

bool passes_trial_division(const BigInt& n) {
  for (const std::uint64_t p : kSmallPrimes) {
    const BigInt bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }
  return true;
}

// One Miller-Rabin round with the given base; n odd, > 3.
bool miller_rabin_round(const BigInt& n, const BigInt& base, const MontgomeryContext& mont,
                        const BigInt& n_minus_1, const BigInt& d, std::size_t r) {
  BigInt x = mont.pow(base, d);
  if (x.is_one() || x == n_minus_1) return true;
  for (std::size_t i = 1; i < r; ++i) {
    x = mod_mul(x, x, n);
    if (x == n_minus_1) return true;
    if (x.is_one()) return false;  // nontrivial sqrt of 1
  }
  return false;
}

}  // namespace

bool is_probable_prime(const BigInt& n, crypto::Prg& prg, int rounds) {
  if (n < BigInt(2)) return false;
  if (!n.is_odd()) return n == BigInt(2);
  if (!passes_trial_division(n)) return false;
  if (n <= BigInt(kSmallPrimes.back())) return true;

  // Write n - 1 = d * 2^r with d odd.
  const BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }

  const MontgomeryContext mont(n);
  const BigInt two(2);
  const BigInt base_bound = n - BigInt(3);  // bases in [2, n-2]
  for (int i = 0; i < rounds; ++i) {
    const BigInt base = BigInt::random_below(prg, base_bound) + two;
    if (!miller_rabin_round(n, base, mont, n_minus_1, d, r)) return false;
  }
  return true;
}

BigInt random_prime(crypto::Prg& prg, std::size_t bits, int rounds) {
  if (bits < 2) throw InvalidArgument("random_prime: need at least 2 bits");
  for (;;) {
    BigInt candidate = BigInt::random_bits(prg, bits);
    if (!candidate.is_odd()) candidate += BigInt(1);
    // Ensure the increment did not overflow the bit width.
    if (candidate.bit_length() != bits) continue;
    if (is_probable_prime(candidate, prg, rounds)) return candidate;
  }
}

BigInt next_prime(const BigInt& n, crypto::Prg& prg, int rounds) {
  BigInt candidate = n < BigInt(2) ? BigInt(2) : n;
  if (candidate == BigInt(2)) return candidate;
  if (!candidate.is_odd()) candidate += BigInt(1);
  while (!is_probable_prime(candidate, prg, rounds)) candidate += BigInt(2);
  return candidate;
}

BigInt random_safe_prime(crypto::Prg& prg, std::size_t bits, int rounds) {
  if (bits < 4) throw InvalidArgument("random_safe_prime: need at least 4 bits");
  for (;;) {
    const BigInt q = random_prime(prg, bits - 1, rounds);
    const BigInt p = q * BigInt(2) + BigInt(1);
    if (p.bit_length() == bits && is_probable_prime(p, prg, rounds)) return p;
  }
}

}  // namespace spfe::bignum
