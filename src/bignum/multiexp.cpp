#include "bignum/multiexp.h"

#include <algorithm>
#include <memory>

#include "common/error.h"
#include "common/parallel.h"
#include "obs/obs.h"

namespace spfe::bignum {
namespace {

using u64 = std::uint64_t;
using MontVec = std::vector<u64>;

// Relative cost of a Montgomery squaring vs a full multiplication: mont_sqr
// computes each cross product once and reduces in a separate pass.
constexpr double kSqrCost = 0.7;

// w-bit digit of e at comb/window position `window_index` (LSB digit = 0).
// Bits are gathered arithmetically from the limb array — no per-bit branch
// on the exponent value. (The zero-digit skips in the evaluation strategies
// below deliberately remain: multi-exp exponents are server-side public
// data — PIR database chunks, protocol weights. Secret exponents must go
// through MontgomeryContext::pow; see DESIGN.md "Constant-time policy".)
// SPFE_CT_BEGIN(multiexp_digit_at)
unsigned digit_at(const BigInt& /*secret*/ e, std::size_t window_index, unsigned w) {
  const std::vector<u64>& limbs = e.limbs();
  u64 d = 0;
  const std::size_t base_bit = window_index * w;
  for (unsigned b = 0; b < w; ++b) {
    const std::size_t bit_index = base_bit + b;
    const std::size_t limb = bit_index / 64;  // public window position
    const u64 v = limb < limbs.size() ? limbs[limb] : 0;  // public shape test
    d |= ((v >> (bit_index % 64)) & 1) << b;
  }
  return static_cast<unsigned>(d);
}
// SPFE_CT_END

// Window table for one base: table[d - 1] = base^d for d in [1, 2^w).
// Even entries come from mont_sqr, odd ones from one mont_mul.
std::vector<MontVec> build_window_table(const MontgomeryContext& ctx, const MontVec& base,
                                        unsigned w) {
  std::vector<MontVec> table((std::size_t(1) << w) - 1);
  table[0] = base;
  for (std::size_t d = 2; d <= table.size(); ++d) {
    table[d - 1] = (d % 2 == 0) ? ctx.mont_sqr(table[d / 2 - 1])
                                : ctx.mont_mul(table[d - 2], base);
  }
  return table;
}

// One column of Straus interleaving over the base range [i0, i1): a single
// squaring chain shared by the range's bases, window lookups from the
// (column-shared) per-base tables. An empty accumulator stands for the
// identity so leading zero windows are free. Ranges let a wide-count,
// narrow-column fold (the depth >= 2 cPIR levels) split one column across
// several partitions; partition products combine exactly because modular
// multiplication is associative.
MontVec straus_column(const MontgomeryContext& ctx, const std::vector<std::vector<MontVec>>& tables,
                      std::span<const BigInt> bases_exps_col, std::size_t windows, unsigned w,
                      std::size_t i0, std::size_t i1) {
  MontVec acc;
  for (std::size_t j = windows; j-- > 0;) {
    if (!acc.empty()) {
      for (unsigned s = 0; s < w; ++s) acc = ctx.mont_sqr(acc);
    }
    for (std::size_t i = i0; i < i1; ++i) {
      if (tables[i].empty()) continue;  // base unused (all-zero exponent row)
      const unsigned d = digit_at(bases_exps_col[i], j, w);
      if (d == 0) continue;
      acc = acc.empty() ? tables[i][d - 1] : ctx.mont_mul(acc, tables[i][d - 1]);
    }
  }
  return acc;
}

// One column of Pippenger bucketing: per window, bases fall into 2^w - 1
// buckets by digit; sum_d d * bucket[d] (in the exponent) is evaluated with
// the running-product trick in at most 2 * (2^w - 1) multiplications.
MontVec pippenger_column(const MontgomeryContext& ctx, const std::vector<MontVec>& mont_bases,
                         std::span<const BigInt> bases_exps_col, std::size_t windows, unsigned w,
                         std::size_t i0, std::size_t i1) {
  MontVec acc;
  std::vector<MontVec> bucket(std::size_t(1) << w);
  for (std::size_t j = windows; j-- > 0;) {
    if (!acc.empty()) {
      for (unsigned s = 0; s < w; ++s) acc = ctx.mont_sqr(acc);
    }
    for (auto& b : bucket) b.clear();
    for (std::size_t i = i0; i < i1; ++i) {
      if (mont_bases[i].empty()) continue;
      const unsigned d = digit_at(bases_exps_col[i], j, w);
      if (d == 0) continue;
      bucket[d] = bucket[d].empty() ? mont_bases[i] : ctx.mont_mul(bucket[d], mont_bases[i]);
    }
    // running = prod_{e >= d} bucket[e]; multiplying it into the window sum
    // once per d yields prod_d bucket[d]^d.
    MontVec running, wsum;
    for (std::size_t d = bucket.size(); d-- > 1;) {
      if (!bucket[d].empty()) {
        running = running.empty() ? bucket[d] : ctx.mont_mul(running, bucket[d]);
      }
      if (!running.empty()) wsum = wsum.empty() ? running : ctx.mont_mul(wsum, running);
    }
    if (!wsum.empty()) acc = acc.empty() ? std::move(wsum) : ctx.mont_mul(acc, wsum);
  }
  return acc;
}

// Partition count for the column fan-out. A depth >= 2 cPIR fold collapses
// to a handful of columns at the upper levels (e.g. 3 columns at n = 4096,
// depth 2), which used to cap the parallelism at `columns` however many
// workers the pool has. Splitting each column's base range into `parts`
// keeps every worker busy; the per-partition products recombine exactly
// (modular multiplication is associative), so the output bytes and the op
// counters are identical at every partition count.
std::size_t column_partitions(std::size_t count, std::size_t columns) {
  const std::size_t threads = common::ThreadPool::global().thread_count();
  if (columns == 0 || count == 0 || columns >= threads) return 1;
  return std::min(count, (threads + columns - 1) / columns);
}

// Folds each column's partition products (Montgomery form; empty = identity)
// in ascending partition order.
void combine_partials(const MontgomeryContext& ctx, std::vector<MontVec>& partials,
                      std::size_t columns, std::size_t parts, std::vector<BigInt>& out) {
  common::parallel_for(columns, [&](std::size_t c) {
    MontVec acc;
    for (std::size_t p = 0; p < parts; ++p) {
      MontVec& part = partials[c * parts + p];
      if (part.empty()) continue;
      acc = acc.empty() ? std::move(part) : ctx.mont_mul(acc, part);
    }
    if (!acc.empty()) out[c] = ctx.from_mont(acc);
  });
}

}  // namespace

namespace detail {

MultiExpPlan plan_multi_exp(std::size_t count, std::size_t columns, std::size_t max_bits) {
  const double n = static_cast<double>(count);
  const double cols = static_cast<double>(std::max<std::size_t>(columns, 1));
  const double bits = static_cast<double>(std::max<std::size_t>(max_bits, 1));
  MultiExpPlan best{MultiExpKind::kStraus, 1};
  double best_cost = -1;
  for (unsigned w = 1; w <= 10; ++w) {
    const double table = static_cast<double>((std::size_t(1) << w) - 2);
    const double buckets = static_cast<double>(2 * ((std::size_t(1) << w) - 1));
    const double windows = (bits + w - 1) / w;
    const double chain = kSqrCost * bits;  // shared squaring chain per column
    // Straus: per-base tables built once, shared by every column.
    const double straus = n * table + cols * (chain + n * windows);
    // Pippenger: no tables, but the bucket combine is paid per window.
    const double pip = cols * (chain + windows * (n + buckets));
    // Fixed-base comb: per-base table of `windows` squaring steps built
    // once; evaluation pays the Yao combine per (base, column) but shares
    // no squaring chain (there are no evaluation-time squarings at all).
    const double fixed = n * chain + cols * n * (windows + buckets);
    struct {
      MultiExpKind kind;
      double cost;
    } cand[3] = {{MultiExpKind::kStraus, straus},
                 {MultiExpKind::kPippenger, pip},
                 {MultiExpKind::kFixedBase, fixed}};
    for (const auto& c : cand) {
      if (best_cost < 0 || c.cost < best_cost) {
        best_cost = c.cost;
        best = {c.kind, w};
      }
    }
  }
  return best;
}

unsigned plan_fixed_base_window(std::size_t max_bits) {
  const double bits = static_cast<double>(std::max<std::size_t>(max_bits, 1));
  unsigned best_w = 1;
  double best_cost = -1;
  for (unsigned w = 1; w <= 8; ++w) {
    const double cost =
        (bits + w - 1) / w + static_cast<double>(2 * ((std::size_t(1) << w) - 1));
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      best_w = w;
    }
  }
  return best_w;
}

}  // namespace detail

std::vector<BigInt> multi_pow_matrix(const MontgomeryContext& ctx, std::span<const BigInt> bases,
                                     const std::vector<std::vector<BigInt>>& exps) {
  const std::size_t count = bases.size();
  if (exps.size() != count) throw InvalidArgument("multi_pow_matrix: row count mismatch");
  const std::size_t columns = count == 0 ? 0 : exps[0].size();
  std::size_t max_bits = 0;
  std::vector<char> used(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    if (exps[i].size() != columns) throw InvalidArgument("multi_pow_matrix: ragged exponent rows");
    for (const BigInt& e : exps[i]) {
      if (e.is_negative()) throw InvalidArgument("multi_pow_matrix: negative exponent");
      const std::size_t b = e.bit_length();
      if (b > 0) used[i] = 1;
      max_bits = std::max(max_bits, b);
    }
  }
  std::vector<BigInt> out(columns, BigInt(1).mod_floor(ctx.modulus()));
  if (count == 0 || columns == 0 || max_bits == 0) return out;

  const detail::MultiExpPlan plan = detail::plan_multi_exp(count, columns, max_bits);
  obs::count(plan.kind == detail::MultiExpKind::kFixedBase ? obs::Op::kMultiexpFixedBase
             : plan.kind == detail::MultiExpKind::kStraus  ? obs::Op::kMultiexpStraus
                                                           : obs::Op::kMultiexpPippenger);
  const unsigned w = plan.window;
  const std::size_t windows = (max_bits + w - 1) / w;
  const std::size_t parts = column_partitions(count, columns);
  std::vector<MontVec> partials(columns * parts);
  const auto cell_range = [&](std::size_t cell, std::size_t& c, std::size_t& i0,
                              std::size_t& i1) {
    c = cell / parts;
    const std::size_t p = cell % parts;
    i0 = p * count / parts;
    i1 = (p + 1) * count / parts;
  };

  if (plan.kind == detail::MultiExpKind::kFixedBase) {
    // Comb tables per base, shared read-only across the column fan-out.
    std::vector<std::unique_ptr<FixedBasePowTable>> tables(count);
    common::parallel_for(count, [&](std::size_t i) {
      if (used[i]) tables[i] = std::make_unique<FixedBasePowTable>(ctx, bases[i], max_bits);
    });
    common::parallel_for(columns * parts, [&](std::size_t cell) {
      std::size_t c, i0, i1;
      cell_range(cell, c, i0, i1);
      MontVec acc;
      for (std::size_t i = i0; i < i1; ++i) {
        if (!used[i] || exps[i][c].is_zero()) continue;
        MontVec p = tables[i]->pow_mont(exps[i][c]);
        acc = acc.empty() ? std::move(p) : ctx.mont_mul(acc, p);
      }
      partials[cell] = std::move(acc);
    });
    combine_partials(ctx, partials, columns, parts, out);
    return out;
  }

  std::vector<MontVec> mont_bases(count);
  common::parallel_for(count, [&](std::size_t i) {
    if (used[i]) mont_bases[i] = ctx.to_mont(bases[i]);
  });

  if (plan.kind == detail::MultiExpKind::kStraus) {
    std::vector<std::vector<MontVec>> tables(count);
    common::parallel_for(count, [&](std::size_t i) {
      if (used[i]) tables[i] = build_window_table(ctx, mont_bases[i], w);
    });
    common::parallel_for(columns * parts, [&](std::size_t cell) {
      std::size_t c, i0, i1;
      cell_range(cell, c, i0, i1);
      std::vector<BigInt> col(count);
      for (std::size_t i = i0; i < i1; ++i) col[i] = exps[i][c];
      partials[cell] = straus_column(ctx, tables, col, windows, w, i0, i1);
    });
    combine_partials(ctx, partials, columns, parts, out);
    return out;
  }

  common::parallel_for(columns * parts, [&](std::size_t cell) {
    std::size_t c, i0, i1;
    cell_range(cell, c, i0, i1);
    std::vector<BigInt> col(count);
    for (std::size_t i = i0; i < i1; ++i) col[i] = exps[i][c];
    partials[cell] = pippenger_column(ctx, mont_bases, col, windows, w, i0, i1);
  });
  combine_partials(ctx, partials, columns, parts, out);
  return out;
}

BigInt multi_pow(const MontgomeryContext& ctx, std::span<const BigInt> bases,
                 std::span<const BigInt> exps) {
  if (bases.size() != exps.size()) throw InvalidArgument("multi_pow: size mismatch");
  if (bases.empty()) return BigInt(1).mod_floor(ctx.modulus());
  std::vector<std::vector<BigInt>> m(bases.size());
  for (std::size_t i = 0; i < bases.size(); ++i) m[i] = {exps[i]};
  return multi_pow_matrix(ctx, bases, m)[0];
}

FixedBasePowTable::FixedBasePowTable(const MontgomeryContext& ctx, const BigInt& base,
                                     std::size_t max_exp_bits)
    : ctx_(&ctx), window_(detail::plan_fixed_base_window(max_exp_bits)) {
  const std::size_t bits = std::max<std::size_t>(max_exp_bits, 1);
  digits_ = (bits + window_ - 1) / window_;
  powers_.resize(digits_);
  powers_[0] = ctx.to_mont(base);
  for (std::size_t j = 1; j < digits_; ++j) {
    MontVec p = powers_[j - 1];
    for (unsigned s = 0; s < window_; ++s) p = ctx.mont_sqr(p);
    powers_[j] = std::move(p);
  }
}

std::vector<std::uint64_t> FixedBasePowTable::pow_mont(const BigInt& exp) const {
  if (exp.is_negative()) throw InvalidArgument("FixedBasePowTable: negative exponent");
  if (exp.bit_length() > digits_ * window_) {
    throw InvalidArgument("FixedBasePowTable: exponent exceeds table capacity");
  }
  // Yao's method: group comb positions by digit value, then evaluate
  // prod_d (prod_{j : digit_j = d} powers_[j])^d with running products.
  std::vector<MontVec> bucket(std::size_t(1) << window_);
  for (std::size_t j = 0; j < digits_; ++j) {
    const unsigned d = digit_at(exp, j, window_);
    if (d == 0) continue;
    bucket[d] = bucket[d].empty() ? powers_[j] : ctx_->mont_mul(bucket[d], powers_[j]);
  }
  MontVec running, acc;
  for (std::size_t d = bucket.size(); d-- > 1;) {
    if (!bucket[d].empty()) {
      running = running.empty() ? bucket[d] : ctx_->mont_mul(running, bucket[d]);
    }
    if (!running.empty()) acc = acc.empty() ? running : ctx_->mont_mul(acc, running);
  }
  return acc.empty() ? ctx_->mont_one() : acc;
}

BigInt FixedBasePowTable::pow(const BigInt& exp) const { return ctx_->from_mont(pow_mont(exp)); }

}  // namespace spfe::bignum
