// §3.2 — one-round SPFE from PSM protocols + SPIR over virtual databases
// (Theorem 3 / Corollary 4).
//
// The servers simulate the m+1 PSM players: for each argument slot j, a
// server materializes the virtual database V_j[i] = (player j's PSM message
// on input x_i) and the client retrieves V_j[i_j] with SPIR; the extra
// message p0 travels in the clear. The client reconstructs f from the m+1
// PSM messages. Communication: m * SPIR(n, 1, alpha) + beta — the first row
// of Table 1.
//
// Strong security against a malicious client follows from the PSM privacy
// plus the SPIR guarantee: the client obtains one message per player, hence
// exactly one evaluation of f.
//
// Instantiations:
//   - PsmSumSpfeSingleServer  : sum PSM + Paillier SPIR     (Corollary 4(1))
//   - PsmYaoSpfeSingleServer  : Yao PSM + Paillier SPIR     (Corollary 4(1))
//   - PsmSumSpfeMultiServer   : sum PSM + t-private IT SPIR (Corollary 4(2))
#pragma once

#include <cstdint>
#include <vector>

#include "circuits/boolean_circuit.h"
#include "common/bytes.h"
#include "crypto/prg.h"
#include "field/fp64.h"
#include "he/paillier.h"
#include "net/network.h"
#include "pir/cpir.h"
#include "pir/itpir.h"
#include "circuits/branching_program.h"
#include "psm/psm.h"
#include "psm/psm_bp.h"

namespace spfe::protocols {

class PsmSumSpfeSingleServer {
 public:
  // Sum of m selected items mod `modulus`; SPIR = PaillierPir at `pir_depth`.
  PsmSumSpfeSingleServer(he::PaillierPublicKey pk, std::size_t n, std::size_t m,
                         std::uint64_t modulus, std::size_t pir_depth);

  // One-round exchange over `net` (server 0 holds the database).
  std::uint64_t run(net::StarNetwork& net, std::span<const std::uint64_t> database,
                    const std::vector<std::size_t>& indices, const he::PaillierPrivateKey& sk,
                    crypto::Prg& client_prg, crypto::Prg& server_prg) const;

 private:
  he::PaillierPublicKey pk_;
  std::size_t n_;
  std::size_t m_;
  psm::SumPsm psm_;
  std::size_t pir_depth_;
};

class PsmYaoSpfeSingleServer {
 public:
  // f given as a Boolean circuit over m items of `bits_per_item` bits; the
  // circuit input layout matches psm::YaoPsm.
  PsmYaoSpfeSingleServer(he::PaillierPublicKey pk, const circuits::BooleanCircuit& circuit,
                         std::size_t n, std::size_t m, std::size_t bits_per_item,
                         std::size_t pir_depth);

  std::vector<bool> run(net::StarNetwork& net, std::span<const std::uint64_t> database,
                        const std::vector<std::size_t>& indices,
                        const he::PaillierPrivateKey& sk, crypto::Prg& client_prg,
                        crypto::Prg& server_prg) const;

 private:
  he::PaillierPublicKey pk_;
  std::size_t n_;
  std::size_t m_;
  psm::YaoPsm psm_;
  std::size_t pir_depth_;
};

class PsmBpSpfeSingleServer {
 public:
  // f given as a mod-2 branching program whose argument j is the j-th
  // selected item (item values must fit the BP's literal bit indices).
  // Computational SPIR, *perfectly* secure PSM layer.
  PsmBpSpfeSingleServer(he::PaillierPublicKey pk, circuits::BranchingProgram bp, std::size_t n,
                        std::size_t pir_depth);

  bool run(net::StarNetwork& net, std::span<const std::uint64_t> database,
           const std::vector<std::size_t>& indices, const he::PaillierPrivateKey& sk,
           crypto::Prg& client_prg, crypto::Prg& server_prg) const;

 private:
  he::PaillierPublicKey pk_;
  std::size_t n_;
  psm::BpPsm psm_;
  std::size_t pir_depth_;
};

class PsmBpSpfeMultiServer {
 public:
  // The fully information-theoretic instantiation of Corollary 4(2):
  // perfectly secure BP-PSM + t-private IT SPIR (message bytes retrieved as
  // 7-byte field chunks). Both client privacy and database secrecy are
  // unconditional.
  PsmBpSpfeMultiServer(field::Fp64 field, circuits::BranchingProgram bp, std::size_t n,
                       std::size_t num_servers, std::size_t threshold);

  std::size_t num_servers() const { return k_; }

  bool run(net::StarNetwork& net, std::span<const std::uint64_t> database,
           const std::vector<std::size_t>& indices, crypto::Prg& client_prg,
           crypto::Prg& server_prg) const;

 private:
  field::Fp64 field_;
  std::size_t n_;
  psm::BpPsm psm_;
  std::size_t k_;
  std::size_t t_;
};

class PsmSumSpfeMultiServer {
 public:
  // t-private k-server variant with information-theoretic SPIR; requires
  // modulus <= field order and k > t * ceil(log2 n).
  PsmSumSpfeMultiServer(field::Fp64 field, std::size_t n, std::size_t m, std::uint64_t modulus,
                        std::size_t num_servers, std::size_t threshold);

  std::size_t num_servers() const { return k_; }

  std::uint64_t run(net::StarNetwork& net, std::span<const std::uint64_t> database,
                    const std::vector<std::size_t>& indices, crypto::Prg& client_prg,
                    crypto::Prg& server_prg) const;

 private:
  field::Fp64 field_;
  std::size_t n_;
  std::size_t m_;
  psm::SumPsm psm_;
  std::size_t k_;
  std::size_t t_;
};

}  // namespace spfe::protocols
