// §3.1 — one-round multi-server SPFE from multivariate polynomial
// evaluation (instance hiding, Lemma 1 / Theorem 2).
//
// The function is a Boolean formula phi over the m selected data items.
// Encoding: each selected index contributes l = ceil(log2 n) field-element
// coordinates (its bits); the polynomial P is phi's arithmetization with
// leaf j replaced by the selection polynomial P0 applied to coordinate
// block j, so deg(P) <= l * s for formula size s (leaf count).
//
// Protocol (client + k servers, privacy threshold t, k > deg(P) * t):
//   - client draws a uniform degree-t curve gamma with gamma(0) = encoded
//     indices and sends gamma(alpha_h) to server h (alpha_h = h);
//   - server h evaluates P at its point gate-by-gate (never expanding the
//     exponential monomial form) and replies with one field element, plus
//     the shared-randomness SPIR mask R(alpha_h) (R(0) = 0) for symmetric
//     privacy;
//   - the client interpolates the degree-(deg(P)*t) polynomial P(gamma(w))
//     at w = 0.
// Client privacy is information-theoretic against any t (possibly
// malicious) servers; database secrecy holds against a semi-honest client.
//
// MultiServerSumSpfe specializes to f = sum (the paper's s = 1 case):
// deg(P) = l, so k = t*l + 1 servers suffice and the data may be arbitrary
// field elements rather than bits.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "circuits/formula.h"
#include "common/bytes.h"
#include "crypto/prg.h"
#include "field/fp64.h"
#include "net/network.h"
#include "net/robust.h"

namespace spfe::protocols {

class MultiServerFormulaSpfe {
 public:
  // Database entries must be bits (0/1 as field elements).
  MultiServerFormulaSpfe(field::Fp64 field, circuits::Formula formula, std::size_t n,
                         std::size_t num_servers, std::size_t threshold);

  static std::size_t min_servers(const circuits::Formula& formula, std::size_t n,
                                 std::size_t threshold);

  std::size_t num_servers() const { return k_; }
  std::size_t index_bits() const { return l_; }
  std::size_t polynomial_degree() const { return degree_; }
  const circuits::Formula& formula() const { return formula_; }

  struct ClientState {
    std::vector<std::uint64_t> abscissae;
  };

  // Client: one message (m*l field elements) per server.
  std::vector<Bytes> make_queries(const std::vector<std::size_t>& indices, ClientState& state,
                                  crypto::Prg& prg) const;

  // Server: one field element. With `spir_seed`, adds the shared mask
  // (symmetric privacy — the client learns only f, not P's other values).
  Bytes answer(std::size_t server_id, std::span<const std::uint64_t> database, BytesView query,
               const crypto::Prg::Seed* spir_seed) const;

  // Client: interpolated f value (0 or 1 for a Boolean formula).
  std::uint64_t decode(const std::vector<Bytes>& answers, const ClientState& state) const;

  // Fault-tolerant decode (the §3.1 remark): recovers f even if up to
  // `max_errors` servers answered incorrectly, provided the instance was
  // provisioned with k >= deg(P)*t + 1 + 2*max_errors servers. Throws
  // ProtocolError when more answers are corrupt than the budget allows.
  std::uint64_t decode_with_errors(const std::vector<Bytes>& answers, const ClientState& state,
                                   std::size_t max_errors) const;

  // Full exchange over a k-server network (client drives all roles).
  std::uint64_t run(net::StarNetwork& net, std::span<const std::uint64_t> database,
                    const std::vector<std::size_t>& indices,
                    const std::optional<crypto::Prg::Seed>& spir_seed, crypto::Prg& prg) const;

  // Fault-tolerant exchange: with k >= deg(P)*t + 1 + 2e + c servers the
  // client survives any mix of <= e Byzantine and <= c crashed servers,
  // retrying with fresh randomness before throwing net::RobustProtocolError
  // (see net/robust.h).
  net::RobustResult run_robust(net::StarNetwork& net, std::span<const std::uint64_t> database,
                               const std::vector<std::size_t>& indices,
                               const std::optional<crypto::Prg::Seed>& spir_seed,
                               crypto::Prg& prg, const net::RobustConfig& cfg = {}) const;

 private:
  std::vector<std::uint64_t> encode_indices(const std::vector<std::size_t>& indices) const;

  field::Fp64 field_;
  circuits::Formula formula_;
  std::size_t n_;
  std::size_t m_;  // formula arity
  std::size_t k_;
  std::size_t t_;
  std::size_t l_;
  std::size_t degree_;
};

class MultiServerSumSpfe {
 public:
  // f = sum of the m selected items over the field. Data: any field values.
  MultiServerSumSpfe(field::Fp64 field, std::size_t n, std::size_t m, std::size_t num_servers,
                     std::size_t threshold);

  static std::size_t min_servers(std::size_t n, std::size_t threshold);

  std::size_t num_servers() const { return k_; }

  struct ClientState {
    std::vector<std::uint64_t> abscissae;
  };

  std::vector<Bytes> make_queries(const std::vector<std::size_t>& indices, ClientState& state,
                                  crypto::Prg& prg) const;
  Bytes answer(std::size_t server_id, std::span<const std::uint64_t> database, BytesView query,
               const crypto::Prg::Seed* spir_seed) const;
  std::uint64_t decode(const std::vector<Bytes>& answers, const ClientState& state) const;
  // See MultiServerFormulaSpfe::decode_with_errors.
  std::uint64_t decode_with_errors(const std::vector<Bytes>& answers, const ClientState& state,
                                   std::size_t max_errors) const;

  std::uint64_t run(net::StarNetwork& net, std::span<const std::uint64_t> database,
                    const std::vector<std::size_t>& indices,
                    const std::optional<crypto::Prg::Seed>& spir_seed, crypto::Prg& prg) const;

  // See MultiServerFormulaSpfe::run_robust.
  net::RobustResult run_robust(net::StarNetwork& net, std::span<const std::uint64_t> database,
                               const std::vector<std::size_t>& indices,
                               const std::optional<crypto::Prg::Seed>& spir_seed,
                               crypto::Prg& prg, const net::RobustConfig& cfg = {}) const;

 private:
  field::Fp64 field_;
  std::size_t n_;
  std::size_t m_;
  std::size_t k_;
  std::size_t t_;
  std::size_t l_;
};

}  // namespace spfe::protocols
