// §3.3 — input-selection protocols: client and server end with additive
// shares of the m selected items, revealing nothing to either side.
//
// Three constructions (Table 1 rows 2-4; see DESIGN.md for the map):
//
//   §3.3.1 input_selection_per_item:
//     m independent SPIR(n,1,D) retrievals from masked virtual databases
//     V_j = (x_1 - a_j, ..., x_n - a_j). Provably weak-secure; server
//     computation Omega(mn).
//
//   §3.3.2 input_selection_poly_mask_client_key (variant 1):
//     one SPIR(n,m,F) over x'_i = x_i + P_s(i) for a random degree-(m-1)
//     polynomial P_s, plus a secure evaluation of P_s(I) via homomorphic
//     encryption under the *client's* key: the client ships E(i_j^k) (m^2
//     ciphertexts — the kappa*m^2 term), the server returns blinded
//     E(P_s(i_j) + r_j). One round; weak security.
//
//   §3.3.2 input_selection_poly_mask_server_key (variant 2):
//     dual matrix-vector orientation: the *server* ships E(s_0..s_{m-1})
//     (m ciphertexts) first and the client evaluates the linear map.
//     1.5 rounds; kappa*m communication; only semi-honest-provable
//     ("None*" in Table 1).
//
//   §3.3.3 input_selection_encrypted_db:
//     the server keeps E_srv(x_i) for the whole database; the client
//     retrieves m ciphertexts with one SPIR(n,m,kappa) over byte items,
//     re-blinds them homomorphically, and returns them for decryption.
//     Linear-in-m communication, cheapest computation; "None*" security.
//
// All shares are over Z_u for a caller-chosen modulus u (a prime field for
// §3.3.2, any u >= 2 otherwise), ready for the §3.3.4 / Yao MPC phase.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "crypto/prg.h"
#include "field/fp64.h"
#include "he/goldwasser_micali.h"
#include "he/paillier.h"
#include "he/precomp.h"
#include "net/network.h"

namespace spfe::protocols {

// Every client entry point takes an optional `precomp` bundle
// (he/precomp.h). Pools are used only for the encryption sites whose key
// matches the pool's key — sites encrypting under the *server's* key (the
// §3.3.2 variant-2 evaluation, the §3.3.3 re-blinding) silently fall back
// to the online PRG when the pool is keyed for the client. A pooled run is
// deterministic in the seeds and independent of pool warmth; it matches the
// unpooled transcript byte-for-byte whenever the protocol's only use of the
// client PRG is encryption randomness (§3.3.1 per-item selection).

struct SelectedShares {
  std::vector<std::uint64_t> client_shares;
  std::vector<std::uint64_t> server_shares;
  std::uint64_t modulus = 0;
};

// §3.3.1. Shares over Z_u (any u >= 2). `sk` is the client's Paillier key
// (used for the SPIR instances). Database values must be < u.
SelectedShares input_selection_per_item(net::StarNetwork& net, std::size_t server_id,
                                        std::span<const std::uint64_t> database,
                                        const std::vector<std::size_t>& indices,
                                        std::uint64_t modulus,
                                        const he::PaillierPrivateKey& client_sk,
                                        std::size_t pir_depth, crypto::Prg& client_prg,
                                        crypto::Prg& server_prg,
                                        const he::ClientPrecomp& precomp = {});

// §3.3.2 variant 1. Shares over the prime field (u = field.modulus());
// database values must be < u. One round.
SelectedShares input_selection_poly_mask_client_key(
    net::StarNetwork& net, std::size_t server_id, std::span<const std::uint64_t> database,
    const std::vector<std::size_t>& indices, const field::Fp64& field,
    const he::PaillierPrivateKey& client_sk, std::size_t pir_depth, crypto::Prg& client_prg,
    crypto::Prg& server_prg, const he::ClientPrecomp& precomp = {});

// §3.3.2 variant 2. Server-side homomorphic key (`server_sk`) for the
// coefficient encryptions; client key for the SPIR. 1.5 rounds.
SelectedShares input_selection_poly_mask_server_key(
    net::StarNetwork& net, std::size_t server_id, std::span<const std::uint64_t> database,
    const std::vector<std::size_t>& indices, const field::Fp64& field,
    const he::PaillierPrivateKey& server_sk, const he::PaillierPrivateKey& client_sk,
    std::size_t pir_depth, crypto::Prg& client_prg, crypto::Prg& server_prg,
    const he::ClientPrecomp& precomp = {});

// §3.3.3. Shares over Z_u; SPIR retrieves server-side ciphertexts (byte
// items) under the client's PIR key. 1.5 rounds for the selection phase.
SelectedShares input_selection_encrypted_db(net::StarNetwork& net, std::size_t server_id,
                                            std::span<const std::uint64_t> database,
                                            const std::vector<std::size_t>& indices,
                                            std::uint64_t modulus,
                                            const he::PaillierPrivateKey& server_sk,
                                            const he::PaillierPrivateKey& client_sk,
                                            std::size_t pir_depth, crypto::Prg& client_prg,
                                            crypto::Prg& server_prg,
                                            const he::ClientPrecomp& precomp = {});

// XOR-share pair: client ^ server = item, bit-wise over `item_bits` bits.
struct SelectedXorShares {
  std::vector<std::uint64_t> client_shares;
  std::vector<std::uint64_t> server_shares;
  std::size_t item_bits = 0;
};

// §3.3.3, Boolean-data specialization with Goldwasser–Micali ([29], the
// paper's default homomorphic scheme for the Boolean domain): the server
// holds E_GM(bit) per data bit; the client retrieves the item's bit
// ciphertexts via SPIR, XOR-blinds them (E(b) * E(r) = E(b ^ r)), and the
// server decrypts its XOR share. XOR shares reconstruct for free inside a
// garbled circuit (free-XOR), eliminating the §3.3.2 "Boolean case" adder
// overhead. 1.5 rounds.
SelectedXorShares input_selection_encrypted_db_gm(
    net::StarNetwork& net, std::size_t server_id, std::span<const std::uint64_t> database,
    const std::vector<std::size_t>& indices, std::size_t item_bits,
    const he::GmPrivateKey& server_sk, const he::PaillierPrivateKey& client_sk,
    std::size_t pir_depth, crypto::Prg& client_prg, crypto::Prg& server_prg,
    const he::ClientPrecomp& precomp = {});

}  // namespace spfe::protocols
