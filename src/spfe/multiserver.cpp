#include "spfe/multiserver.h"

#include "common/error.h"
#include "common/parallel.h"
#include "common/serialize.h"
#include "obs/obs.h"
#include "field/polynomial.h"
#include "field/reed_solomon.h"
#include "pir/itpir.h"

namespace spfe::protocols {
namespace {

std::size_t index_bits_for(std::size_t n) {
  std::size_t l = 0;
  while ((std::size_t(1) << l) < n) ++l;
  return std::max<std::size_t>(l, 1);
}

// Encodes `indices` as m*l field elements, block j = bits of indices[j],
// leftmost (most significant) bit first — the paper's j(k) convention.
std::vector<std::uint64_t> encode_index_bits(const std::vector<std::size_t>& indices,
                                             std::size_t l) {
  std::vector<std::uint64_t> out;
  out.reserve(indices.size() * l);
  for (const std::size_t i : indices) {
    for (std::size_t k = 0; k < l; ++k) out.push_back((i >> (l - 1 - k)) & 1);
  }
  return out;
}

// Client query generation shared by both protocol variants: a uniform
// degree-t curve through the encoded point, evaluated at alpha_h = h+1.
std::vector<Bytes> curve_queries(const field::Fp64& field,
                                 const std::vector<std::uint64_t>& point, std::size_t k,
                                 std::size_t t, std::vector<std::uint64_t>& abscissae,
                                 crypto::Prg& prg) {
  std::vector<field::Polynomial<field::Fp64>> curve;
  curve.reserve(point.size());
  for (const std::uint64_t coord : point) {
    curve.push_back(
        field::Polynomial<field::Fp64>::random_with_constant(field, t, coord, prg));
  }
  abscissae.resize(k);
  std::vector<Bytes> msgs;
  msgs.reserve(k);
  for (std::size_t h = 0; h < k; ++h) {
    const std::uint64_t alpha = field.from_u64(h + 1);
    abscissae[h] = alpha;
    Writer w;
    for (const auto& c : curve) w.u64(c.eval(alpha));
    msgs.push_back(w.take());
  }
  return msgs;
}

std::vector<std::uint64_t> parse_point(const field::Fp64& field, BytesView query,
                                       std::size_t expected) {
  Reader r(query);
  std::vector<std::uint64_t> point(expected);
  for (auto& p : point) {
    p = r.u64();
    if (p >= field.modulus()) throw ProtocolError("multi-server SPFE: point out of field");
  }
  r.expect_done();
  return point;
}

std::uint64_t spir_mask(const field::Fp64& field, std::size_t degree, std::size_t server_id,
                        const crypto::Prg::Seed& seed) {
  crypto::Prg shared(seed);
  const auto mask = field::Polynomial<field::Fp64>::random_with_constant(
      field, degree, field.zero(), shared);
  return mask.eval(field.from_u64(server_id + 1));
}

std::vector<std::uint64_t> parse_answers(const field::Fp64& field,
                                         const std::vector<std::uint64_t>& abscissae,
                                         const std::vector<Bytes>& answers) {
  if (answers.size() != abscissae.size()) {
    throw InvalidArgument("multi-server SPFE: answer count mismatch");
  }
  std::vector<std::uint64_t> ys(answers.size());
  for (std::size_t h = 0; h < answers.size(); ++h) {
    Reader r(answers[h]);
    ys[h] = r.u64();
    r.expect_done();
    if (ys[h] >= field.modulus()) throw ProtocolError("multi-server SPFE: answer out of field");
  }
  return ys;
}

std::uint64_t interpolate_answers(const field::Fp64& field,
                                  const std::vector<std::uint64_t>& abscissae,
                                  const std::vector<Bytes>& answers) {
  const auto ys = parse_answers(field, abscissae, answers);
  return field::interpolate_at(field, abscissae, ys, field.zero());
}

std::uint64_t decode_answers_with_errors(const field::Fp64& field,
                                         const std::vector<std::uint64_t>& abscissae,
                                         const std::vector<Bytes>& answers, std::size_t degree,
                                         std::size_t max_errors) {
  const auto ys = parse_answers(field, abscissae, answers);
  const auto result =
      field::berlekamp_welch(field, abscissae, ys, degree, max_errors, field.zero());
  if (!result.has_value()) {
    throw ProtocolError("multi-server SPFE: more corrupted answers than the error budget");
  }
  return *result;
}

void check_common(const field::Fp64& field, std::size_t n, std::size_t k, std::size_t t,
                  std::size_t degree) {
  if (n == 0) throw InvalidArgument("multi-server SPFE: empty database");
  if (t == 0) throw InvalidArgument("multi-server SPFE: threshold must be >= 1");
  if (k <= degree * t) {
    throw InvalidArgument("multi-server SPFE: need more than deg(P)*t servers");
  }
  if (field.modulus() <= k) {
    throw InvalidArgument("multi-server SPFE: field must exceed the server count");
  }
}

template <typename Protocol>
std::uint64_t run_star(const Protocol& proto, net::StarNetwork& net,
                       std::span<const std::uint64_t> database,
                       const std::vector<std::size_t>& indices,
                       const std::optional<crypto::Prg::Seed>& spir_seed, crypto::Prg& prg) {
  SPFE_OBS_SPAN("multiserver.run");
  typename Protocol::ClientState state;
  std::vector<Bytes> received;
  {
    SPFE_OBS_SPAN("multiserver.queries");
    const auto queries = proto.make_queries(indices, state, prg);
    for (std::size_t h = 0; h < queries.size(); ++h) net.client_send(h, queries[h]);
    received.resize(queries.size());
    for (std::size_t h = 0; h < queries.size(); ++h) received[h] = net.server_receive(h);
  }
  // The k servers evaluate concurrently (each answer() is pure in shared
  // state), then enqueue sequentially in server order so CommStats metering
  // and round detection stay byte-identical to a serial run.
  const crypto::Prg::Seed* seed = spir_seed ? &*spir_seed : nullptr;
  std::vector<Bytes> answers;
  {
    SPFE_OBS_SPAN("multiserver.answers");
    std::vector<Bytes> computed(received.size());
    common::parallel_for(received.size(), [&](std::size_t h) {
      computed[h] = proto.answer(h, database, received[h], seed);
    });
    for (std::size_t h = 0; h < computed.size(); ++h) net.server_send(h, std::move(computed[h]));
    answers.reserve(received.size());
    for (std::size_t h = 0; h < received.size(); ++h) answers.push_back(net.client_receive(h));
  }
  SPFE_OBS_SPAN("multiserver.decode");
  return proto.decode(answers, state);
}

// Robust exchange shared by both variants; `degree` is the answer
// polynomial's degree deg(P)*t (also the SPIR mask degree).
template <typename Protocol>
net::RobustResult run_robust_protocol(const Protocol& proto, const field::Fp64& field,
                                      std::size_t degree, net::StarNetwork& net,
                                      std::span<const std::uint64_t> database,
                                      const std::vector<std::size_t>& indices,
                                      const std::optional<crypto::Prg::Seed>& spir_seed,
                                      crypto::Prg& prg, const net::RobustConfig& cfg) {
  if (net.num_servers() != proto.num_servers()) {
    throw InvalidArgument("multi-server SPFE: network has wrong server count");
  }
  SPFE_OBS_SPAN("multiserver.run_robust");
  auto [value, report] = net::run_robust_star(
      field, net, degree, cfg,
      [&](std::size_t /*attempt*/, std::vector<std::uint64_t>& abscissae) {
        // Fresh curve from `prg` every attempt: query points are never
        // reused, so retries leak nothing about the selected indices.
        typename Protocol::ClientState state;
        auto queries = proto.make_queries(indices, state, prg);
        abscissae = std::move(state.abscissae);
        return queries;
      },
      [&](std::size_t s, std::size_t attempt, Bytes query) {
        // All servers of one attempt must share the mask seed; retries use a
        // fresh one so masks are never reused across query curves.
        crypto::Prg::Seed derived;
        const crypto::Prg::Seed* seed = nullptr;
        if (spir_seed.has_value()) {
          if (attempt == 0) {
            seed = &*spir_seed;
          } else {
            derived = crypto::Prg(*spir_seed).fork_seed("robust-retry-" +
                                                        std::to_string(attempt));
            seed = &derived;
          }
        }
        return proto.answer(s, database, query, seed);
      },
      [&](const Bytes& ans) {
        Reader r(ans);
        const std::uint64_t y = r.u64();
        r.expect_done();
        if (y >= field.modulus()) {
          throw ProtocolError("multi-server SPFE: answer out of field");
        }
        return y;
      });
  return net::RobustResult{value, std::move(report)};
}

}  // namespace

MultiServerFormulaSpfe::MultiServerFormulaSpfe(field::Fp64 field, circuits::Formula formula,
                                               std::size_t n, std::size_t num_servers,
                                               std::size_t threshold)
    : field_(field),
      formula_(std::move(formula)),
      n_(n),
      m_(formula_.arity()),
      k_(num_servers),
      t_(threshold),
      l_(index_bits_for(n)),
      degree_(formula_.arith_degree(l_)) {
  if (m_ == 0) throw InvalidArgument("MultiServerFormulaSpfe: formula has no inputs");
  check_common(field_, n, k_, t_, degree_);
}

std::size_t MultiServerFormulaSpfe::min_servers(const circuits::Formula& formula, std::size_t n,
                                                std::size_t threshold) {
  return formula.arith_degree(index_bits_for(n)) * threshold + 1;
}

std::vector<std::uint64_t> MultiServerFormulaSpfe::encode_indices(
    const std::vector<std::size_t>& indices) const {
  if (indices.size() != m_) throw InvalidArgument("MultiServerFormulaSpfe: need m indices");
  for (const std::size_t i : indices) {
    if (i >= n_) throw InvalidArgument("MultiServerFormulaSpfe: index out of range");
  }
  return encode_index_bits(indices, l_);
}

std::vector<Bytes> MultiServerFormulaSpfe::make_queries(const std::vector<std::size_t>& indices,
                                                        ClientState& state,
                                                        crypto::Prg& prg) const {
  return curve_queries(field_, encode_indices(indices), k_, t_, state.abscissae, prg);
}

Bytes MultiServerFormulaSpfe::answer(std::size_t server_id,
                                     std::span<const std::uint64_t> database, BytesView query,
                                     const crypto::Prg::Seed* spir_seed) const {
  if (database.size() != n_) throw InvalidArgument("MultiServerFormulaSpfe: database size");
  if (server_id >= k_) throw InvalidArgument("MultiServerFormulaSpfe: server id");
  for (const std::uint64_t x : database) {
    if (x > 1) throw InvalidArgument("MultiServerFormulaSpfe: database entries must be bits");
  }
  const auto point = parse_point(field_, query, m_ * l_);
  // Leaf value j = P0 evaluated on coordinate block j.
  std::vector<std::uint64_t> leaf_values(m_);
  for (std::size_t j = 0; j < m_; ++j) {
    leaf_values[j] = pir::eval_selection_polynomial(
        field_, database, std::span<const std::uint64_t>(point.data() + j * l_, l_));
  }
  std::uint64_t value = formula_.eval_arithmetized(field_, leaf_values);
  if (spir_seed != nullptr) {
    value = field_.add(value, spir_mask(field_, degree_ * t_, server_id, *spir_seed));
  }
  Writer w;
  w.u64(value);
  return w.take();
}

std::uint64_t MultiServerFormulaSpfe::decode(const std::vector<Bytes>& answers,
                                             const ClientState& state) const {
  return interpolate_answers(field_, state.abscissae, answers);
}

std::uint64_t MultiServerFormulaSpfe::decode_with_errors(const std::vector<Bytes>& answers,
                                                         const ClientState& state,
                                                         std::size_t max_errors) const {
  return decode_answers_with_errors(field_, state.abscissae, answers, degree_ * t_, max_errors);
}

std::uint64_t MultiServerFormulaSpfe::run(net::StarNetwork& net,
                                          std::span<const std::uint64_t> database,
                                          const std::vector<std::size_t>& indices,
                                          const std::optional<crypto::Prg::Seed>& spir_seed,
                                          crypto::Prg& prg) const {
  return run_star(*this, net, database, indices, spir_seed, prg);
}

net::RobustResult MultiServerFormulaSpfe::run_robust(
    net::StarNetwork& net, std::span<const std::uint64_t> database,
    const std::vector<std::size_t>& indices, const std::optional<crypto::Prg::Seed>& spir_seed,
    crypto::Prg& prg, const net::RobustConfig& cfg) const {
  return run_robust_protocol(*this, field_, degree_ * t_, net, database, indices, spir_seed, prg,
                             cfg);
}

MultiServerSumSpfe::MultiServerSumSpfe(field::Fp64 field, std::size_t n, std::size_t m,
                                       std::size_t num_servers, std::size_t threshold)
    : field_(field), n_(n), m_(m), k_(num_servers), t_(threshold), l_(index_bits_for(n)) {
  if (m == 0) throw InvalidArgument("MultiServerSumSpfe: m must be positive");
  check_common(field_, n, k_, t_, l_);
}

std::size_t MultiServerSumSpfe::min_servers(std::size_t n, std::size_t threshold) {
  return index_bits_for(n) * threshold + 1;
}

std::vector<Bytes> MultiServerSumSpfe::make_queries(const std::vector<std::size_t>& indices,
                                                    ClientState& state, crypto::Prg& prg) const {
  if (indices.size() != m_) throw InvalidArgument("MultiServerSumSpfe: need m indices");
  for (const std::size_t i : indices) {
    if (i >= n_) throw InvalidArgument("MultiServerSumSpfe: index out of range");
  }
  return curve_queries(field_, encode_index_bits(indices, l_), k_, t_, state.abscissae, prg);
}

Bytes MultiServerSumSpfe::answer(std::size_t server_id, std::span<const std::uint64_t> database,
                                 BytesView query, const crypto::Prg::Seed* spir_seed) const {
  if (database.size() != n_) throw InvalidArgument("MultiServerSumSpfe: database size");
  if (server_id >= k_) throw InvalidArgument("MultiServerSumSpfe: server id");
  const auto point = parse_point(field_, query, m_ * l_);
  std::uint64_t value = field_.zero();
  for (std::size_t j = 0; j < m_; ++j) {
    value = field_.add(value, pir::eval_selection_polynomial(
                                  field_, database,
                                  std::span<const std::uint64_t>(point.data() + j * l_, l_)));
  }
  if (spir_seed != nullptr) {
    value = field_.add(value, spir_mask(field_, l_ * t_, server_id, *spir_seed));
  }
  Writer w;
  w.u64(value);
  return w.take();
}

std::uint64_t MultiServerSumSpfe::decode(const std::vector<Bytes>& answers,
                                         const ClientState& state) const {
  return interpolate_answers(field_, state.abscissae, answers);
}

std::uint64_t MultiServerSumSpfe::decode_with_errors(const std::vector<Bytes>& answers,
                                                     const ClientState& state,
                                                     std::size_t max_errors) const {
  return decode_answers_with_errors(field_, state.abscissae, answers, l_ * t_, max_errors);
}

std::uint64_t MultiServerSumSpfe::run(net::StarNetwork& net,
                                      std::span<const std::uint64_t> database,
                                      const std::vector<std::size_t>& indices,
                                      const std::optional<crypto::Prg::Seed>& spir_seed,
                                      crypto::Prg& prg) const {
  return run_star(*this, net, database, indices, spir_seed, prg);
}

net::RobustResult MultiServerSumSpfe::run_robust(net::StarNetwork& net,
                                                 std::span<const std::uint64_t> database,
                                                 const std::vector<std::size_t>& indices,
                                                 const std::optional<crypto::Prg::Seed>& spir_seed,
                                                 crypto::Prg& prg,
                                                 const net::RobustConfig& cfg) const {
  return run_robust_protocol(*this, field_, l_ * t_, net, database, indices, spir_seed, prg, cfg);
}

}  // namespace spfe::protocols
