#include "spfe/input_selection.h"

#include "bignum/serialize.h"
#include "common/error.h"
#include "common/serialize.h"
#include "obs/obs.h"
#include "pir/batch_pir.h"
#include "pir/cpir.h"

namespace spfe::protocols {
namespace {

using bignum::BigInt;

constexpr std::size_t kStatBits = 40;

void check_inputs(std::span<const std::uint64_t> database,
                  const std::vector<std::size_t>& indices, std::uint64_t modulus) {
  if (database.empty()) throw InvalidArgument("input selection: empty database");
  if (indices.empty()) throw InvalidArgument("input selection: empty index list");
  if (modulus < 2) throw InvalidArgument("input selection: modulus must be >= 2");
  for (const std::size_t i : indices) {
    if (i >= database.size()) throw InvalidArgument("input selection: index out of range");
  }
  for (const std::uint64_t x : database) {
    if (x >= modulus) {
      throw InvalidArgument("input selection: database value exceeds share modulus");
    }
  }
}

std::uint64_t add_mod(std::uint64_t a, std::uint64_t b, std::uint64_t u) {
  return static_cast<std::uint64_t>((static_cast<unsigned __int128>(a) + b) % u);
}

std::uint64_t sub_mod(std::uint64_t a, std::uint64_t b, std::uint64_t u) {
  return add_mod(a % u, u - b % u, u);
}

// i^k mod p via repeated multiplication (k <= m is small).
std::uint64_t pow_mod_u64(std::uint64_t base, std::uint64_t exp, std::uint64_t p) {
  std::uint64_t result = 1 % p;
  base %= p;
  while (exp != 0) {
    if (exp & 1) {
      result = static_cast<std::uint64_t>(static_cast<unsigned __int128>(result) * base % p);
    }
    base = static_cast<std::uint64_t>(static_cast<unsigned __int128>(base) * base % p);
    exp >>= 1;
  }
  return result;
}

// Ensures the statistically blinded plaintexts fit below N.
void check_blinding_headroom(const he::PaillierPublicKey& pk, const BigInt& bound) {
  if ((bound << (kStatBits + 2)) >= pk.n()) {
    throw CryptoError("input selection: Paillier modulus too small for blinding headroom");
  }
}

// Fixed-width ciphertext framing (the receiver knows the key size).
void write_ct(Writer& w, const he::PaillierPublicKey& pk, const BigInt& ct) {
  w.raw(ct.to_bytes_be_padded(pk.ciphertext_bytes()));
}

BigInt read_ct(Reader& r, const he::PaillierPublicKey& pk) {
  return BigInt::from_bytes_be(r.raw(pk.ciphertext_bytes()));
}

// The pool usable for encrypting under `pk`, or null (meaning: draw from
// the online PRG). A pool keyed differently — e.g. a client-key pool at a
// site that encrypts under the server's deserialized key — never serves.
he::PaillierRandomnessPool* pool_for(const he::ClientPrecomp& precomp,
                                     const he::PaillierPublicKey& pk) {
  return (precomp.paillier != nullptr && precomp.paillier->public_key() == pk)
             ? precomp.paillier
             : nullptr;
}

he::GmRandomnessPool* gm_pool_for(const he::ClientPrecomp& precomp, const he::GmPublicKey& pk) {
  return (precomp.gm != nullptr && precomp.gm->public_key() == pk) ? precomp.gm : nullptr;
}

}  // namespace

SelectedShares input_selection_per_item(net::StarNetwork& net, std::size_t server_id,
                                        std::span<const std::uint64_t> database,
                                        const std::vector<std::size_t>& indices,
                                        std::uint64_t modulus,
                                        const he::PaillierPrivateKey& client_sk,
                                        std::size_t pir_depth, crypto::Prg& client_prg,
                                        crypto::Prg& server_prg,
                                        const he::ClientPrecomp& precomp) {
  SPFE_OBS_SPAN("input_selection.per_item");
  check_inputs(database, indices, modulus);
  const std::size_t m = indices.size();
  const std::size_t n = database.size();
  const pir::PaillierPir spir(client_sk.public_key(), n, pir_depth);
  he::PaillierRandomnessPool* pool = pool_for(precomp, client_sk.public_key());

  // Client: m independent SPIR queries in one message. The client PRG's
  // only role here is encryption randomness, so the pooled path is
  // byte-identical to the unpooled one at the same seed.
  std::vector<pir::PaillierPir::ClientState> states(m);
  {
    Writer w;
    for (std::size_t j = 0; j < m; ++j) {
      w.bytes(pool != nullptr ? spir.make_query(indices[j], states[j], *pool)
                              : spir.make_query(indices[j], states[j], client_prg));
    }
    net.client_send(server_id, w.take());
  }

  // Server: per slot j, mask the whole database with a fresh a_j and answer.
  SelectedShares shares;
  shares.modulus = modulus;
  shares.server_shares.resize(m);
  {
    Reader r(net.server_receive(server_id));
    Writer w;
    std::vector<std::uint64_t> masked(n);
    for (std::size_t j = 0; j < m; ++j) {
      const Bytes query = r.bytes();
      const std::uint64_t a_j = server_prg.uniform(modulus);
      shares.server_shares[j] = a_j;
      for (std::size_t i = 0; i < n; ++i) masked[i] = sub_mod(database[i], a_j, modulus);
      w.bytes(spir.answer_u64(masked, query, server_prg));
    }
    r.expect_done();
    net.server_send(server_id, w.take());
  }

  // Client: b_j = x_{i_j} - a_j.
  shares.client_shares.resize(m);
  Reader r(net.client_receive(server_id));
  for (std::size_t j = 0; j < m; ++j) {
    shares.client_shares[j] = spir.decode_u64(client_sk, r.bytes()) % modulus;
  }
  r.expect_done();
  return shares;
}

SelectedShares input_selection_poly_mask_client_key(
    net::StarNetwork& net, std::size_t server_id, std::span<const std::uint64_t> database,
    const std::vector<std::size_t>& indices, const field::Fp64& field,
    const he::PaillierPrivateKey& client_sk, std::size_t pir_depth, crypto::Prg& client_prg,
    crypto::Prg& server_prg, const he::ClientPrecomp& precomp) {
  SPFE_OBS_SPAN("input_selection.poly_mask_client_key");
  const std::uint64_t p = field.modulus();
  check_inputs(database, indices, p);
  const std::size_t m = indices.size();
  const std::size_t n = database.size();
  const he::PaillierPublicKey& pk = client_sk.public_key();
  check_blinding_headroom(pk, BigInt(m) * BigInt(p) * BigInt(p));
  const pir::CuckooBatchPir spir(pk, n, m, pir_depth);
  he::PaillierRandomnessPool* pool = pool_for(precomp, pk);

  // Client: E(i_j^k) for all j, k plus one batched SPIR query.
  pir::CuckooBatchPir::ClientState pir_state;
  {
    Writer w;
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t k = 0; k < m; ++k) {
        const BigInt power(pow_mod_u64(indices[j] + 1, k, p));
        write_ct(w, pk,
                 pool != nullptr ? pool->encrypt(power) : pk.encrypt(power, client_prg));
      }
    }
    w.bytes(spir.make_query(indices, pir_state, client_prg, pool));
    net.client_send(server_id, w.take());
  }

  // Server: random P_s, masked database, blinded E(P_s(i_j) + r_j).
  SelectedShares shares;
  shares.modulus = p;
  shares.server_shares.resize(m);
  {
    Reader r(net.server_receive(server_id));
    std::vector<std::vector<BigInt>> powers(m, std::vector<BigInt>(m));
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t k = 0; k < m; ++k) powers[j][k] = read_ct(r, pk);
    }
    const Bytes pir_query = r.bytes();
    r.expect_done();

    // s_0..s_{m-1} and the masked database x'_i = x_i + P_s(i+1) mod p.
    std::vector<std::uint64_t> s(m);
    for (auto& c : s) c = server_prg.uniform(p);
    std::vector<std::uint64_t> masked(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Horner at point (i+1); the +1 keeps evaluation points nonzero.
      std::uint64_t acc = 0;
      for (std::size_t k = m; k-- > 0;) {
        acc = add_mod(
            static_cast<std::uint64_t>(static_cast<unsigned __int128>(acc) * ((i + 1) % p) % p),
            s[k], p);
      }
      masked[i] = add_mod(database[i], acc, p);
    }

    Writer w;
    w.bytes(spir.answer_u64(masked, pir_query, server_prg));
    const BigInt blind_bound = (BigInt(m) * BigInt(p) * BigInt(p)) << kStatBits;
    std::vector<BigInt> s_big(m);
    for (std::size_t k = 0; k < m; ++k) s_big[k] = BigInt(s[k]);
    for (std::size_t j = 0; j < m; ++j) {
      // E(sum_k s_k * i_j^k + r_j); all plaintext terms positive. The m
      // scalar products collapse into one simultaneous multi-exp.
      BigInt acc = pk.add(pk.encrypt(BigInt(0), server_prg), pk.mul_scalar_sum(powers[j], s_big));
      const BigInt r_j = BigInt::random_below(server_prg, blind_bound);
      shares.server_shares[j] = r_j.mod_floor(BigInt(p)).to_u64();
      acc = pk.add(acc, pk.encrypt(r_j, server_prg));
      write_ct(w, pk, acc);
    }
    net.server_send(server_id, w.take());
  }

  // Client: x'_{i_j} from SPIR, d_j = D_j mod p, b_j = x' - d_j.
  shares.client_shares.resize(m);
  Reader r(net.client_receive(server_id));
  const std::vector<std::uint64_t> masked_items =
      spir.decode_u64(client_sk, r.bytes(), pir_state);
  for (std::size_t j = 0; j < m; ++j) {
    const std::uint64_t d_j = client_sk.decrypt(read_ct(r, pk)).mod_floor(BigInt(p)).to_u64();
    shares.client_shares[j] = sub_mod(masked_items[j], d_j, p);
  }
  r.expect_done();
  return shares;
}

SelectedShares input_selection_poly_mask_server_key(
    net::StarNetwork& net, std::size_t server_id, std::span<const std::uint64_t> database,
    const std::vector<std::size_t>& indices, const field::Fp64& field,
    const he::PaillierPrivateKey& server_sk, const he::PaillierPrivateKey& client_sk,
    std::size_t pir_depth, crypto::Prg& client_prg, crypto::Prg& server_prg,
    const he::ClientPrecomp& precomp) {
  SPFE_OBS_SPAN("input_selection.poly_mask_server_key");
  const std::uint64_t p = field.modulus();
  check_inputs(database, indices, p);
  const std::size_t m = indices.size();
  const std::size_t n = database.size();
  const he::PaillierPublicKey& server_pk = server_sk.public_key();
  check_blinding_headroom(server_pk, BigInt(m) * BigInt(p) * BigInt(p));
  const pir::CuckooBatchPir spir(client_sk.public_key(), n, m, pir_depth);

  // Server speaks first: E_srv(s_0..s_{m-1}). The masked database is fixed
  // by the same coefficients.
  std::vector<std::uint64_t> s(m);
  {
    Writer w;
    server_pk.serialize(w);
    for (std::size_t k = 0; k < m; ++k) {
      s[k] = server_prg.uniform(p);
      write_ct(w, server_pk, server_pk.encrypt(BigInt(s[k]), server_prg));
    }
    net.server_send(server_id, w.take());
  }

  // Client: homomorphically evaluate E_srv(P_s(i_j) + rho_j), plus SPIR query.
  pir::CuckooBatchPir::ClientState pir_state;
  std::vector<std::uint64_t> rho_mod_p(m);
  {
    Reader r(net.client_receive(server_id));
    const he::PaillierPublicKey pk2 = he::PaillierPublicKey::deserialize(r);
    std::vector<BigInt> coeff_cts(m);
    for (auto& c : coeff_cts) c = read_ct(r, pk2);
    r.expect_done();

    const BigInt blind_bound = (BigInt(m) * BigInt(p) * BigInt(p)) << kStatBits;
    // The coefficient ciphertexts are fixed across j, so all m evaluations
    // form one base-major matrix multi-exp (comb tables shared across j).
    // The sums consume no PRG, so drawing them up front leaves the per-j
    // E(0)/rho/E(rho) draw order untouched.
    std::vector<std::vector<BigInt>> exps(m, std::vector<BigInt>(m));
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t k = 0; k < m; ++k) {
        exps[k][j] = BigInt(pow_mod_u64(indices[j] + 1, k, p));
      }
    }
    const std::vector<BigInt> sums = pk2.mul_scalar_sum_matrix(coeff_cts, exps);
    // These encryptions are under the *server's* key pk2: a client-key pool
    // never serves them (pool_for returns null on the key mismatch).
    he::PaillierRandomnessPool* pool2 = pool_for(precomp, pk2);
    Writer w;
    for (std::size_t j = 0; j < m; ++j) {
      BigInt acc = pk2.add(
          pool2 != nullptr ? pool2->encrypt(BigInt(0)) : pk2.encrypt(BigInt(0), client_prg),
          sums[j]);
      const BigInt rho = BigInt::random_below(client_prg, blind_bound);
      rho_mod_p[j] = rho.mod_floor(BigInt(p)).to_u64();
      acc = pk2.add(acc, pool2 != nullptr ? pool2->encrypt(rho) : pk2.encrypt(rho, client_prg));
      write_ct(w, pk2, acc);
    }
    w.bytes(spir.make_query(indices, pir_state, client_prg, pool_for(precomp, client_sk.public_key())));
    net.client_send(server_id, w.take());
  }

  // Server: decrypt the blinded evaluations, answer SPIR over x'.
  SelectedShares shares;
  shares.modulus = p;
  shares.server_shares.resize(m);
  {
    Reader r(net.server_receive(server_id));
    for (std::size_t j = 0; j < m; ++j) {
      const std::uint64_t e_j =
          server_sk.decrypt(read_ct(r, server_pk)).mod_floor(BigInt(p)).to_u64();
      shares.server_shares[j] = (p - e_j) % p;
    }
    const Bytes pir_query = r.bytes();
    r.expect_done();

    std::vector<std::uint64_t> masked(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t acc = 0;
      for (std::size_t k = m; k-- > 0;) {
        acc = add_mod(
            static_cast<std::uint64_t>(static_cast<unsigned __int128>(acc) * ((i + 1) % p) % p),
            s[k], p);
      }
      masked[i] = add_mod(database[i], acc, p);
    }
    net.server_send(server_id, spir.answer_u64(masked, pir_query, server_prg));
  }

  // Client: b_j = x'_{i_j} + rho_j.
  shares.client_shares.resize(m);
  const std::vector<std::uint64_t> masked_items =
      spir.decode_u64(client_sk, net.client_receive(server_id), pir_state);
  for (std::size_t j = 0; j < m; ++j) {
    shares.client_shares[j] = add_mod(masked_items[j], rho_mod_p[j], p);
  }
  return shares;
}

SelectedShares input_selection_encrypted_db(net::StarNetwork& net, std::size_t server_id,
                                            std::span<const std::uint64_t> database,
                                            const std::vector<std::size_t>& indices,
                                            std::uint64_t modulus,
                                            const he::PaillierPrivateKey& server_sk,
                                            const he::PaillierPrivateKey& client_sk,
                                            std::size_t pir_depth, crypto::Prg& client_prg,
                                            crypto::Prg& server_prg,
                                            const he::ClientPrecomp& precomp) {
  SPFE_OBS_SPAN("input_selection.encrypted_db");
  check_inputs(database, indices, modulus);
  const std::size_t m = indices.size();
  const std::size_t n = database.size();
  const he::PaillierPublicKey& server_pk = server_sk.public_key();
  check_blinding_headroom(server_pk, BigInt(modulus));
  const std::size_t item_bytes = server_pk.ciphertext_bytes();
  // A *single* SPIR(n, m, kappa) invocation over the encrypted database --
  // exactly the paper's 3.3.3 structure ("the client uses SPIR(n,m,D) to
  // retrieve E(x_i1),...,E(x_im)"); cuckoo batching gives the almost-linear
  // server computation of [8].
  const pir::CuckooBatchPir spir(client_sk.public_key(), n, m, pir_depth);

  pir::CuckooBatchPir::ClientState pir_state;
  net.client_send(server_id,
                  spir.make_query(indices, pir_state, client_prg,
                                  pool_for(precomp, client_sk.public_key())));

  // Server: encrypted database (prepared once), one batched SPIR answer.
  {
    const Bytes query = net.server_receive(server_id);
    std::vector<Bytes> enc_db(n);
    for (std::size_t i = 0; i < n; ++i) {
      enc_db[i] = server_pk.encrypt(BigInt(database[i]), server_prg)
                      .to_bytes_be_padded(item_bytes);
    }
    Writer w;
    server_pk.serialize(w);
    w.bytes(spir.answer_bytes(enc_db, item_bytes, query, server_prg));
    net.server_send(server_id, w.take());
  }

  // Client: recover E_srv(x_{i_j}), re-blind, send back.
  SelectedShares shares;
  shares.modulus = modulus;
  shares.client_shares.resize(m);
  {
    Reader r(net.client_receive(server_id));
    const he::PaillierPublicKey pk2 = he::PaillierPublicKey::deserialize(r);
    const std::vector<Bytes> items =
        spir.decode_bytes(client_sk, pk2.ciphertext_bytes(), r.bytes(), pir_state);
    r.expect_done();
    // The re-blind encrypts under the server's key pk2 — a client-key pool
    // is silently bypassed here by the key check.
    he::PaillierRandomnessPool* pool2 = pool_for(precomp, pk2);
    Writer w;
    const BigInt u(modulus);
    for (std::size_t j = 0; j < m; ++j) {
      const BigInt ct = BigInt::from_bytes_be(items[j]);
      const std::uint64_t r_j = client_prg.uniform(modulus);
      shares.client_shares[j] = r_j;
      // plaintext: x + u*rho + (u - r_j); mod u this is x - r_j, and the
      // rho term statistically hides the carry.
      const BigInt rho = BigInt::random_below(client_prg, BigInt(1) << kStatBits);
      const BigInt blind = u * rho + (u - BigInt(r_j));
      write_ct(w, pk2,
               pk2.add(ct, pool2 != nullptr ? pool2->encrypt(blind)
                                            : pk2.encrypt(blind, client_prg)));
    }
    net.client_send(server_id, w.take());
  }

  // Server: decrypt and reduce.
  shares.server_shares.resize(m);
  Reader r(net.server_receive(server_id));
  for (std::size_t j = 0; j < m; ++j) {
    shares.server_shares[j] =
        server_sk.decrypt(read_ct(r, server_pk)).mod_floor(BigInt(modulus)).to_u64();
  }
  r.expect_done();
  return shares;
}


SelectedXorShares input_selection_encrypted_db_gm(
    net::StarNetwork& net, std::size_t server_id, std::span<const std::uint64_t> database,
    const std::vector<std::size_t>& indices, std::size_t item_bits,
    const he::GmPrivateKey& server_sk, const he::PaillierPrivateKey& client_sk,
    std::size_t pir_depth, crypto::Prg& client_prg, crypto::Prg& server_prg,
    const he::ClientPrecomp& precomp) {
  SPFE_OBS_SPAN("input_selection.encrypted_db_gm");
  if (item_bits == 0 || item_bits > 63) {
    throw InvalidArgument("GM input selection: item_bits must be in [1, 63]");
  }
  check_inputs(database, indices, std::uint64_t(1) << item_bits);
  const std::size_t m = indices.size();
  const std::size_t n = database.size();
  const he::GmPublicKey& gm_pk = server_sk.public_key();
  const std::size_t ct_bytes = gm_pk.ciphertext_bytes();
  const std::size_t item_bytes = item_bits * ct_bytes;  // one GM ct per bit
  const pir::PaillierPir spir(client_sk.public_key(), n, pir_depth);

  // Client: one SPIR query per selected item.
  he::PaillierRandomnessPool* pool = pool_for(precomp, client_sk.public_key());
  std::vector<pir::PaillierPir::ClientState> states(m);
  {
    Writer w;
    for (std::size_t j = 0; j < m; ++j) {
      w.bytes(pool != nullptr ? spir.make_query(indices[j], states[j], *pool)
                              : spir.make_query(indices[j], states[j], client_prg));
    }
    net.client_send(server_id, w.take());
  }

  // Server: bit-encrypted database (GM ciphertext per bit), SPIR answers.
  {
    Reader r(net.server_receive(server_id));
    std::vector<Bytes> enc_db(n);
    for (std::size_t i = 0; i < n; ++i) {
      Writer item;
      for (std::size_t b = 0; b < item_bits; ++b) {
        const bool bit = ((database[i] >> b) & 1) != 0;
        item.raw(gm_pk.encrypt(bit, server_prg).to_bytes_be_padded(ct_bytes));
      }
      enc_db[i] = item.take();
    }
    Writer w;
    gm_pk.serialize(w);
    for (std::size_t j = 0; j < m; ++j) {
      w.bytes(spir.answer_bytes(enc_db, item_bytes, r.bytes(), server_prg));
    }
    r.expect_done();
    net.server_send(server_id, w.take());
  }

  // Client: recover the GM bit ciphertexts, XOR-blind, send back.
  SelectedXorShares shares;
  shares.item_bits = item_bits;
  shares.client_shares.resize(m);
  {
    Reader r(net.client_receive(server_id));
    const he::GmPublicKey pk2 = he::GmPublicKey::deserialize(r);
    // GM blinding runs under the server's GM key — only a pool built for
    // that key serves (the caller learns pk2 from a prior run or key cache).
    he::GmRandomnessPool* gm_pool = gm_pool_for(precomp, pk2);
    Writer w;
    for (std::size_t j = 0; j < m; ++j) {
      const Bytes item = spir.decode_bytes(client_sk, item_bytes, r.bytes());
      Reader ir(item);
      std::uint64_t r_j = 0;
      for (std::size_t b = 0; b < item_bits; ++b) {
        const BigInt ct = BigInt::from_bytes_be(ir.raw(pk2.ciphertext_bytes()));
        const bool blind = client_prg.coin();
        if (blind) r_j |= std::uint64_t(1) << b;
        // E(x_bit) * E(blind) = E(x_bit ^ blind); rerandomize so the server
        // cannot link the returned ciphertext to a database position.
        const BigInt blinded =
            gm_pool != nullptr
                ? gm_pool->rerandomize(pk2.xor_ct(ct, gm_pool->encrypt(blind)))
                : pk2.rerandomize(pk2.xor_ct(ct, pk2.encrypt(blind, client_prg)), client_prg);
        w.raw(blinded.to_bytes_be_padded(pk2.ciphertext_bytes()));
      }
      shares.client_shares[j] = r_j;
    }
    r.expect_done();
    net.client_send(server_id, w.take());
  }

  // Server: decrypt bitwise XOR shares.
  shares.server_shares.resize(m);
  Reader r(net.server_receive(server_id));
  for (std::size_t j = 0; j < m; ++j) {
    std::uint64_t a_j = 0;
    for (std::size_t b = 0; b < item_bits; ++b) {
      const BigInt ct = BigInt::from_bytes_be(r.raw(ct_bytes));
      if (server_sk.decrypt(ct)) a_j |= std::uint64_t(1) << b;
    }
    shares.server_shares[j] = a_j;
  }
  r.expect_done();
  return shares;
}
}  // namespace spfe::protocols
