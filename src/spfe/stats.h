// §4 — protocols tailored to private statistics.
//
// WeightedSumProtocol (the paper's "efficient solution for the weighted sum
// function", one round):
//   - server masks the database with a random degree-(m-1) polynomial P_s
//     and answers one SPIR(n, m, F) query over x'_i = x_i + P_s(i);
//   - in parallel the client sends E(c_0..c_{m-1}) under its own key, where
//     c_k = sum_j w_j i_j^k, and the server replies with
//     E(sum_k s_k c_k) = E(sum_j w_j P_s(i_j)) (blinded into the positive
//     range);
//   - the client outputs sum_j w_j x'_{i_j} - sum_j w_j P_s(i_j).
//   By the paper's counting argument, even a malicious client learns only
//   *some* linear combination of m items (weak security).
//
// MeanVariancePackage: the §4 "package" — the server holds the squares
// database x''_i = x_i^2 alongside x and answers the same selection twice
// (independent mask polynomials), yielding sum and sum-of-squares, from
// which the client derives mean and variance. Still one round.
//
// FrequencyProtocol: counts occurrences of a keyword w among the selected
// items. After any input-selection phase (shares a_j + b_j = x_{i_j} mod p),
// one extra round: the client sends E(b_j - w + p), the server returns a
// random permutation of E(rho_j * (x_{i_j} - w) + p * sigma_j); the client
// counts decryptions divisible by p. A malicious client can only substitute
// a different keyword per item (the paper's closing remark).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/prg.h"
#include "field/fp64.h"
#include "he/paillier.h"
#include "net/health.h"
#include "net/network.h"
#include "net/robust.h"
#include "spfe/input_selection.h"
#include "spfe/multiserver.h"
#include "spfe/two_phase.h"

namespace spfe::protocols {

class WeightedSumProtocol {
 public:
  // Field modulus must exceed n and the maximum weighted sum; database
  // values and weights are field elements.
  WeightedSumProtocol(field::Fp64 field, std::size_t n, std::size_t m, std::size_t pir_depth);

  // One-round run; returns sum_j weights[j] * x_{indices[j]} mod p. The
  // optional `precomp` pools serve the client-side encryptions when keyed
  // for the client (see input_selection.h for the contract).
  std::uint64_t run(net::StarNetwork& net, std::size_t server_id,
                    std::span<const std::uint64_t> database,
                    const std::vector<std::size_t>& indices,
                    const std::vector<std::uint64_t>& weights,
                    const he::PaillierPrivateKey& client_sk, crypto::Prg& client_prg,
                    crypto::Prg& server_prg, const he::ClientPrecomp& precomp = {}) const;

 private:
  field::Fp64 field_;
  std::size_t n_;
  std::size_t m_;
  std::size_t pir_depth_;
};

struct MeanVarianceResult {
  std::uint64_t sum = 0;
  std::uint64_t sum_of_squares = 0;
  double mean = 0.0;
  double variance = 0.0;  // population variance of the selected items
};

class MeanVariancePackage {
 public:
  // Field must exceed n and m * max(x)^2.
  MeanVariancePackage(field::Fp64 field, std::size_t n, std::size_t m, std::size_t pir_depth);

  MeanVarianceResult run(net::StarNetwork& net, std::size_t server_id,
                         std::span<const std::uint64_t> database,
                         const std::vector<std::size_t>& indices,
                         const he::PaillierPrivateKey& client_sk, crypto::Prg& client_prg,
                         crypto::Prg& server_prg, const he::ClientPrecomp& precomp = {}) const;

 private:
  field::Fp64 field_;
  std::size_t n_;
  std::size_t m_;
  std::size_t pir_depth_;
};

// Availability policy of a long-running statistics session (see
// net/robust.h TimingPolicy for the per-query mechanics).
struct RobustStatsConfig {
  std::size_t max_attempts = 3;
  std::uint64_t attempt_timeout_us = 50'000;
  // The e used when provisioning num_servers: in-attempt decodes wait for
  // degree + 1 + 2e usable answers (see net::TimingPolicy::byzantine_budget).
  std::size_t byzantine_budget = 0;
  // Hedge spares held back per query; 0 disables hedging. The hedge
  // deadline adapts to observed latency: max(hedge_floor_us, the
  // hedge_quantile of past answer latencies), with hedge_fallback_us
  // standing in before any answer has been observed.
  std::size_t hedge_spares = 0;
  double hedge_quantile = 0.95;
  std::uint64_t hedge_floor_us = 50;
  std::uint64_t hedge_fallback_us = 2'000;
  std::uint64_t backoff_base_us = 1'000;
  std::uint64_t backoff_max_us = 32'000;
};

// Per-server culpability counters accumulated across every attempt of every
// query in a session (the session-level view of net::Blame): how often the
// server was caught lying, observed crashed, or seen straggling. Operators
// read this to decide who gets replaced vs who just has a bad link.
struct ServerBlameTally {
  std::uint64_t byzantine = 0;
  std::uint64_t crashed = 0;
  std::uint64_t straggler = 0;

  std::uint64_t total() const { return byzantine + crashed + straggler; }
};

// Session-level driver for §4 statistics workloads over a k-server
// deployment: wraps the robust multi-server sum (§3.1, f = sum) with a
// ServerHealthTracker so that a client issuing many queries against the
// same servers (1) sends to healthy servers first and demotes repeat
// offenders to hedge-spare duty, and (2) sets its hedge deadline from the
// latency the deployment actually delivers rather than a static guess.
// Everything is driven by the session seed — a session replays
// deterministically over a seeded SimStarNetwork.
class RobustStatsSession {
 public:
  // `num_servers` should come from net::provisioned_servers(t*ceil(log2 n),
  // e, c, hedge_spares) for the fault budget the deployment must survive.
  RobustStatsSession(field::Fp64 field, std::size_t n, std::size_t m,
                     std::size_t num_servers, std::size_t threshold,
                     const crypto::Prg::Seed& session_seed, RobustStatsConfig config = {});

  std::size_t num_servers() const { return proto_.num_servers(); }
  const net::ServerHealthTracker& health() const { return health_; }
  std::size_t queries_issued() const { return query_no_; }

  // One tally per server, folded from every attempt (success or terminal
  // failure) the session has driven.
  const std::vector<ServerBlameTally>& blame_tally() const { return blame_; }

  // Robust sum of the selected items. Feeds the outcome (success or
  // terminal failure) into the health tracker, then returns or rethrows.
  net::RobustResult sum(net::StarNetwork& net, std::span<const std::uint64_t> database,
                        const std::vector<std::size_t>& indices,
                        const std::optional<crypto::Prg::Seed>& spir_seed);

  // §4 mean/variance package over the robust path: one robust sum over x
  // and one over the server-side squares view x''_i = x_i^2 (independent
  // query curves). Requires p > m * max(x)^2 for the aggregates to be
  // integer-exact. Optional out-params expose the per-query reports.
  MeanVarianceResult mean_variance(net::StarNetwork& net,
                                   std::span<const std::uint64_t> database,
                                   const std::vector<std::size_t>& indices,
                                   const std::optional<crypto::Prg::Seed>& spir_seed,
                                   net::RobustnessReport* sum_report = nullptr,
                                   net::RobustnessReport* squares_report = nullptr);

 private:
  // Per-query robust config: fresh backoff seed, health-ranked send order,
  // latency-adaptive hedge deadline.
  net::RobustConfig next_query_config();
  net::RobustResult run_one(net::StarNetwork& net, std::span<const std::uint64_t> database,
                            const std::vector<std::size_t>& indices,
                            const std::optional<crypto::Prg::Seed>& spir_seed);
  void tally_blame(const net::RobustnessReport& report);

  field::Fp64 field_;
  MultiServerSumSpfe proto_;
  RobustStatsConfig config_;
  crypto::Prg prg_;
  net::ServerHealthTracker health_;
  std::vector<ServerBlameTally> blame_;
  std::size_t query_no_ = 0;
};

class FrequencyProtocol {
 public:
  // Keyword domain embedded in the prime field; `method` chooses the
  // input-selection phase.
  FrequencyProtocol(field::Fp64 field, std::size_t n, std::size_t m, SelectionMethod method,
                    std::size_t pir_depth);

  // Returns |{j : x_{indices[j]} == keyword}|.
  std::size_t run(net::StarNetwork& net, std::size_t server_id,
                  std::span<const std::uint64_t> database,
                  const std::vector<std::size_t>& indices, std::uint64_t keyword,
                  const he::PaillierPrivateKey& client_sk,
                  const he::PaillierPrivateKey& server_sk, crypto::Prg& client_prg,
                  crypto::Prg& server_prg, const he::ClientPrecomp& precomp = {}) const;

 private:
  field::Fp64 field_;
  std::size_t n_;
  std::size_t m_;
  SelectionMethod method_;
  std::size_t pir_depth_;
};

}  // namespace spfe::protocols
