// §4 — protocols tailored to private statistics.
//
// WeightedSumProtocol (the paper's "efficient solution for the weighted sum
// function", one round):
//   - server masks the database with a random degree-(m-1) polynomial P_s
//     and answers one SPIR(n, m, F) query over x'_i = x_i + P_s(i);
//   - in parallel the client sends E(c_0..c_{m-1}) under its own key, where
//     c_k = sum_j w_j i_j^k, and the server replies with
//     E(sum_k s_k c_k) = E(sum_j w_j P_s(i_j)) (blinded into the positive
//     range);
//   - the client outputs sum_j w_j x'_{i_j} - sum_j w_j P_s(i_j).
//   By the paper's counting argument, even a malicious client learns only
//   *some* linear combination of m items (weak security).
//
// MeanVariancePackage: the §4 "package" — the server holds the squares
// database x''_i = x_i^2 alongside x and answers the same selection twice
// (independent mask polynomials), yielding sum and sum-of-squares, from
// which the client derives mean and variance. Still one round.
//
// FrequencyProtocol: counts occurrences of a keyword w among the selected
// items. After any input-selection phase (shares a_j + b_j = x_{i_j} mod p),
// one extra round: the client sends E(b_j - w + p), the server returns a
// random permutation of E(rho_j * (x_{i_j} - w) + p * sigma_j); the client
// counts decryptions divisible by p. A malicious client can only substitute
// a different keyword per item (the paper's closing remark).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/prg.h"
#include "field/fp64.h"
#include "he/paillier.h"
#include "net/network.h"
#include "spfe/input_selection.h"
#include "spfe/two_phase.h"

namespace spfe::protocols {

class WeightedSumProtocol {
 public:
  // Field modulus must exceed n and the maximum weighted sum; database
  // values and weights are field elements.
  WeightedSumProtocol(field::Fp64 field, std::size_t n, std::size_t m, std::size_t pir_depth);

  // One-round run; returns sum_j weights[j] * x_{indices[j]} mod p. The
  // optional `precomp` pools serve the client-side encryptions when keyed
  // for the client (see input_selection.h for the contract).
  std::uint64_t run(net::StarNetwork& net, std::size_t server_id,
                    std::span<const std::uint64_t> database,
                    const std::vector<std::size_t>& indices,
                    const std::vector<std::uint64_t>& weights,
                    const he::PaillierPrivateKey& client_sk, crypto::Prg& client_prg,
                    crypto::Prg& server_prg, const he::ClientPrecomp& precomp = {}) const;

 private:
  field::Fp64 field_;
  std::size_t n_;
  std::size_t m_;
  std::size_t pir_depth_;
};

struct MeanVarianceResult {
  std::uint64_t sum = 0;
  std::uint64_t sum_of_squares = 0;
  double mean = 0.0;
  double variance = 0.0;  // population variance of the selected items
};

class MeanVariancePackage {
 public:
  // Field must exceed n and m * max(x)^2.
  MeanVariancePackage(field::Fp64 field, std::size_t n, std::size_t m, std::size_t pir_depth);

  MeanVarianceResult run(net::StarNetwork& net, std::size_t server_id,
                         std::span<const std::uint64_t> database,
                         const std::vector<std::size_t>& indices,
                         const he::PaillierPrivateKey& client_sk, crypto::Prg& client_prg,
                         crypto::Prg& server_prg, const he::ClientPrecomp& precomp = {}) const;

 private:
  field::Fp64 field_;
  std::size_t n_;
  std::size_t m_;
  std::size_t pir_depth_;
};

class FrequencyProtocol {
 public:
  // Keyword domain embedded in the prime field; `method` chooses the
  // input-selection phase.
  FrequencyProtocol(field::Fp64 field, std::size_t n, std::size_t m, SelectionMethod method,
                    std::size_t pir_depth);

  // Returns |{j : x_{indices[j]} == keyword}|.
  std::size_t run(net::StarNetwork& net, std::size_t server_id,
                  std::span<const std::uint64_t> database,
                  const std::vector<std::size_t>& indices, std::uint64_t keyword,
                  const he::PaillierPrivateKey& client_sk,
                  const he::PaillierPrivateKey& server_sk, crypto::Prg& client_prg,
                  crypto::Prg& server_prg, const he::ClientPrecomp& precomp = {}) const;

 private:
  field::Fp64 field_;
  std::size_t n_;
  std::size_t m_;
  SelectionMethod method_;
  std::size_t pir_depth_;
};

}  // namespace spfe::protocols
