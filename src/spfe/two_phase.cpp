#include "spfe/two_phase.h"

#include "common/error.h"
#include "field/fp64.h"
#include "mpc/arith_protocol.h"
#include "mpc/yao_protocol.h"
#include "obs/obs.h"

namespace spfe::protocols {
namespace {

bool is_power_of_two(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::vector<bool> share_bits(std::uint64_t value, std::size_t bits) {
  std::vector<bool> out(bits);
  for (std::size_t i = 0; i < bits; ++i) out[i] = ((value >> i) & 1) != 0;
  return out;
}

}  // namespace

const char* selection_method_name(SelectionMethod m) {
  switch (m) {
    case SelectionMethod::kPerItem:
      return "per-item (3.3.1)";
    case SelectionMethod::kPolyMaskClientKey:
      return "poly-mask/client-key (3.3.2v1)";
    case SelectionMethod::kPolyMaskServerKey:
      return "poly-mask/server-key (3.3.2v2)";
    case SelectionMethod::kEncryptedDb:
      return "encrypted-db (3.3.3)";
  }
  return "?";
}

SelectedShares run_input_selection(net::StarNetwork& net, std::size_t server_id,
                                   std::span<const std::uint64_t> database,
                                   const std::vector<std::size_t>& indices,
                                   std::uint64_t modulus, SelectionMethod method,
                                   const he::PaillierPrivateKey& client_sk,
                                   const he::PaillierPrivateKey& server_sk,
                                   std::size_t pir_depth, crypto::Prg& client_prg,
                                   crypto::Prg& server_prg, const he::ClientPrecomp& precomp) {
  obs::Span span("spfe.input_selection");
  span.note(selection_method_name(method));
  switch (method) {
    case SelectionMethod::kPerItem:
      return input_selection_per_item(net, server_id, database, indices, modulus, client_sk,
                                      pir_depth, client_prg, server_prg, precomp);
    case SelectionMethod::kPolyMaskClientKey:
      return input_selection_poly_mask_client_key(net, server_id, database, indices,
                                                  field::Fp64(modulus), client_sk, pir_depth,
                                                  client_prg, server_prg, precomp);
    case SelectionMethod::kPolyMaskServerKey:
      return input_selection_poly_mask_server_key(net, server_id, database, indices,
                                                  field::Fp64(modulus), server_sk, client_sk,
                                                  pir_depth, client_prg, server_prg, precomp);
    case SelectionMethod::kEncryptedDb:
      return input_selection_encrypted_db(net, server_id, database, indices, modulus, server_sk,
                                          client_sk, pir_depth, client_prg, server_prg, precomp);
  }
  throw InvalidArgument("run_input_selection: bad method");
}

std::vector<std::uint64_t> run_two_phase_arith(
    net::StarNetwork& net, std::size_t server_id, std::span<const std::uint64_t> database,
    const std::vector<std::size_t>& indices, const circuits::ArithCircuit& circuit,
    SelectionMethod method, const he::PaillierPrivateKey& client_sk,
    const he::PaillierPrivateKey& server_sk, std::size_t pir_depth, crypto::Prg& client_prg,
    crypto::Prg& server_prg) {
  if (circuit.num_inputs() != indices.size()) {
    throw InvalidArgument("run_two_phase_arith: circuit arity != m");
  }
  SPFE_OBS_SPAN("spfe.two_phase_arith");
  const SelectedShares shares =
      run_input_selection(net, server_id, database, indices, circuit.modulus(), method,
                          client_sk, server_sk, pir_depth, client_prg, server_prg);
  SPFE_OBS_SPAN("spfe.mpc_arith");
  return mpc::run_arith_mpc_shared(net, server_id, circuit, client_sk, shares.client_shares,
                                   shares.server_shares, client_prg, server_prg);
}

circuits::BooleanCircuit build_shared_input_circuit(
    std::size_t m, std::size_t item_bits, std::uint64_t share_modulus,
    const std::function<void(circuits::BooleanCircuit&,
                             const std::vector<circuits::WireBundle>&)>& body) {
  // Shares may need more bits than the items (prime modulus > 2^item_bits).
  std::size_t share_bits_count = 0;
  while ((std::uint64_t(1) << share_bits_count) < share_modulus) ++share_bits_count;
  circuits::BooleanCircuit circuit(2 * m * share_bits_count);

  std::vector<circuits::WireBundle> items;
  items.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    circuits::WireBundle client, server;
    for (std::size_t b = 0; b < share_bits_count; ++b) {
      client.push_back(circuit.input(j * share_bits_count + b));
    }
    for (std::size_t b = 0; b < share_bits_count; ++b) {
      server.push_back(circuit.input((m + j) * share_bits_count + b));
    }
    circuits::WireBundle item =
        is_power_of_two(share_modulus)
            ? circuits::build_add_mod(circuit, client, server)
            : circuits::build_add_mod_const(circuit, client, server, share_modulus);
    item.resize(item_bits);  // data values fit in item_bits
    items.push_back(std::move(item));
  }
  body(circuit, items);
  if (circuit.outputs().empty()) {
    throw InvalidArgument("build_shared_input_circuit: body registered no outputs");
  }
  return circuit;
}

std::vector<bool> run_two_phase_boolean_private_param(
    net::StarNetwork& net, std::size_t server_id, std::span<const std::uint64_t> database,
    const std::vector<std::size_t>& indices, std::size_t item_bits, SelectionMethod method,
    std::uint64_t private_param, std::size_t param_bits,
    const std::function<void(circuits::BooleanCircuit&,
                             const std::vector<circuits::WireBundle>& items,
                             const circuits::WireBundle& param)>& body,
    const he::PaillierPrivateKey& client_sk, const he::PaillierPrivateKey& server_sk,
    const ot::SchnorrGroup& ot_group, std::size_t pir_depth, crypto::Prg& client_prg,
    crypto::Prg& server_prg) {
  SPFE_OBS_SPAN("spfe.two_phase_boolean_private_param");
  if (param_bits == 0 || param_bits > 63) {
    throw InvalidArgument("run_two_phase_boolean_private_param: param_bits in [1, 63]");
  }
  if (item_bits == 0 || item_bits >= 63) {
    throw InvalidArgument("run_two_phase_boolean_private_param: item_bits in [1, 62]");
  }
  const bool needs_prime = method == SelectionMethod::kPolyMaskClientKey ||
                           method == SelectionMethod::kPolyMaskServerKey;
  std::uint64_t share_modulus = std::uint64_t(1) << item_bits;
  if (needs_prime) {
    share_modulus = field::smallest_prime_above(
        std::max<std::uint64_t>(share_modulus, database.size() + 1));
  }

  const SelectedShares shares =
      run_input_selection(net, server_id, database, indices, share_modulus, method, client_sk,
                          server_sk, pir_depth, client_prg, server_prg);

  const std::size_t m = indices.size();
  std::size_t share_bits_count = 0;
  while ((std::uint64_t(1) << share_bits_count) < share_modulus) ++share_bits_count;

  // Client wires: m share bundles then the private parameter; server wires
  // follow. (Yao's input-wire convention: client block first.)
  circuits::BooleanCircuit circuit(2 * m * share_bits_count + param_bits);
  const std::size_t server_base = m * share_bits_count + param_bits;
  std::vector<circuits::WireBundle> items;
  items.reserve(m);
  const bool pow2 = (share_modulus & (share_modulus - 1)) == 0;
  for (std::size_t j = 0; j < m; ++j) {
    circuits::WireBundle client, server;
    for (std::size_t b = 0; b < share_bits_count; ++b) {
      client.push_back(circuit.input(j * share_bits_count + b));
      server.push_back(circuit.input(server_base + j * share_bits_count + b));
    }
    circuits::WireBundle item =
        pow2 ? circuits::build_add_mod(circuit, client, server)
             : circuits::build_add_mod_const(circuit, client, server, share_modulus);
    item.resize(item_bits);
    items.push_back(std::move(item));
  }
  circuits::WireBundle param;
  for (std::size_t b = 0; b < param_bits; ++b) {
    param.push_back(circuit.input(m * share_bits_count + b));
  }
  body(circuit, items, param);
  if (circuit.outputs().empty()) {
    throw InvalidArgument("run_two_phase_boolean_private_param: body registered no outputs");
  }

  std::vector<bool> client_bits, server_bits;
  for (const std::uint64_t b : shares.client_shares) {
    const auto bits = share_bits(b, share_bits_count);
    client_bits.insert(client_bits.end(), bits.begin(), bits.end());
  }
  for (std::size_t b = 0; b < param_bits; ++b) {
    client_bits.push_back(((private_param >> b) & 1) != 0);
  }
  for (const std::uint64_t a : shares.server_shares) {
    const auto bits = share_bits(a, share_bits_count);
    server_bits.insert(server_bits.end(), bits.begin(), bits.end());
  }
  return mpc::run_yao(net, server_id, circuit, client_bits, server_bits, ot_group, client_prg,
                      server_prg);
}

std::vector<bool> run_two_phase_boolean_gm(
    net::StarNetwork& net, std::size_t server_id, std::span<const std::uint64_t> database,
    const std::vector<std::size_t>& indices, std::size_t item_bits,
    const std::function<void(circuits::BooleanCircuit&,
                             const std::vector<circuits::WireBundle>&)>& body,
    const he::GmPrivateKey& server_gm_sk, const he::PaillierPrivateKey& client_sk,
    const ot::SchnorrGroup& ot_group, std::size_t pir_depth, crypto::Prg& client_prg,
    crypto::Prg& server_prg) {
  SPFE_OBS_SPAN("spfe.two_phase_boolean_gm");
  const SelectedXorShares shares =
      input_selection_encrypted_db_gm(net, server_id, database, indices, item_bits,
                                      server_gm_sk, client_sk, pir_depth, client_prg,
                                      server_prg);
  const std::size_t m = indices.size();

  // Reconstruction is bitwise XOR — free gates only.
  circuits::BooleanCircuit circuit(2 * m * item_bits);
  std::vector<circuits::WireBundle> items;
  items.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    circuits::WireBundle item;
    for (std::size_t b = 0; b < item_bits; ++b) {
      item.push_back(circuit.xor_gate(circuit.input(j * item_bits + b),
                                      circuit.input((m + j) * item_bits + b)));
    }
    items.push_back(std::move(item));
  }
  body(circuit, items);
  if (circuit.outputs().empty()) {
    throw InvalidArgument("run_two_phase_boolean_gm: body registered no outputs");
  }

  std::vector<bool> client_bits, server_bits;
  for (const std::uint64_t b : shares.client_shares) {
    const auto bits = share_bits(b, item_bits);
    client_bits.insert(client_bits.end(), bits.begin(), bits.end());
  }
  for (const std::uint64_t a : shares.server_shares) {
    const auto bits = share_bits(a, item_bits);
    server_bits.insert(server_bits.end(), bits.begin(), bits.end());
  }
  return mpc::run_yao(net, server_id, circuit, client_bits, server_bits, ot_group, client_prg,
                      server_prg);
}

std::vector<bool> run_two_phase_boolean(
    net::StarNetwork& net, std::size_t server_id, std::span<const std::uint64_t> database,
    const std::vector<std::size_t>& indices, std::size_t item_bits, SelectionMethod method,
    const std::function<void(circuits::BooleanCircuit&,
                             const std::vector<circuits::WireBundle>&)>& body,
    const he::PaillierPrivateKey& client_sk, const he::PaillierPrivateKey& server_sk,
    const ot::SchnorrGroup& ot_group, std::size_t pir_depth, crypto::Prg& client_prg,
    crypto::Prg& server_prg) {
  SPFE_OBS_SPAN("spfe.two_phase_boolean");
  if (item_bits == 0 || item_bits >= 63) {
    throw InvalidArgument("run_two_phase_boolean: item_bits must be in [1, 62]");
  }
  // Poly-mask selections need a prime share modulus covering the data range;
  // the others use 2^item_bits (XOR-cheap reconstruction).
  const bool needs_prime = method == SelectionMethod::kPolyMaskClientKey ||
                           method == SelectionMethod::kPolyMaskServerKey;
  std::uint64_t share_modulus = std::uint64_t(1) << item_bits;
  if (needs_prime) {
    // Also must exceed the database size: the mask polynomial is evaluated
    // on index points.
    share_modulus = field::smallest_prime_above(
        std::max<std::uint64_t>(share_modulus, database.size() + 1));
  }

  const SelectedShares shares =
      run_input_selection(net, server_id, database, indices, share_modulus, method, client_sk,
                          server_sk, pir_depth, client_prg, server_prg);

  const circuits::BooleanCircuit circuit =
      build_shared_input_circuit(indices.size(), item_bits, share_modulus, body);

  std::size_t share_bits_count = 0;
  while ((std::uint64_t(1) << share_bits_count) < share_modulus) ++share_bits_count;
  std::vector<bool> client_bits, server_bits;
  for (const std::uint64_t b : shares.client_shares) {
    const auto bits = share_bits(b, share_bits_count);
    client_bits.insert(client_bits.end(), bits.begin(), bits.end());
  }
  for (const std::uint64_t a : shares.server_shares) {
    const auto bits = share_bits(a, share_bits_count);
    server_bits.insert(server_bits.end(), bits.begin(), bits.end());
  }
  return mpc::run_yao(net, server_id, circuit, client_bits, server_bits, ot_group, client_prg,
                      server_prg);
}

}  // namespace spfe::protocols
