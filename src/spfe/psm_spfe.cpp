#include "spfe/psm_spfe.h"

#include "common/error.h"
#include "common/serialize.h"
#include "obs/obs.h"

namespace spfe::protocols {
namespace {

void check_indices(const std::vector<std::size_t>& indices, std::size_t m, std::size_t n) {
  if (indices.size() != m) throw InvalidArgument("PSM SPFE: need exactly m indices");
  for (const std::size_t i : indices) {
    if (i >= n) throw InvalidArgument("PSM SPFE: index out of range");
  }
}

}  // namespace

PsmSumSpfeSingleServer::PsmSumSpfeSingleServer(he::PaillierPublicKey pk, std::size_t n,
                                               std::size_t m, std::uint64_t modulus,
                                               std::size_t pir_depth)
    : pk_(std::move(pk)), n_(n), m_(m), psm_(m, modulus), pir_depth_(pir_depth) {
  if (n == 0) throw InvalidArgument("PsmSumSpfeSingleServer: empty database");
}

std::uint64_t PsmSumSpfeSingleServer::run(net::StarNetwork& net,
                                          std::span<const std::uint64_t> database,
                                          const std::vector<std::size_t>& indices,
                                          const he::PaillierPrivateKey& sk,
                                          crypto::Prg& client_prg,
                                          crypto::Prg& server_prg) const {
  SPFE_OBS_SPAN("psm.sum_single_server");
  check_indices(indices, m_, n_);
  if (database.size() != n_) throw InvalidArgument("PsmSumSpfeSingleServer: database size");
  const pir::PaillierPir spir(pk_, n_, pir_depth_);
  const std::size_t alpha = psm_.message_bytes();

  // Client round-1 message: m independent SPIR queries.
  std::vector<pir::PaillierPir::ClientState> states(m_);
  {
    Writer w;
    for (std::size_t j = 0; j < m_; ++j) w.bytes(spir.make_query(indices[j], states[j], client_prg));
    net.client_send(0, w.take());
  }

  // Server: virtual databases of player messages, one SPIR answer each,
  // plus p0 in the clear.
  {
    Reader r(net.server_receive(0));
    const crypto::Prg::Seed psm_seed = [&] {
      crypto::Prg::Seed s;
      const Bytes raw = server_prg.bytes(s.size());
      std::copy(raw.begin(), raw.end(), s.begin());
      return s;
    }();
    Writer w;
    for (std::size_t j = 0; j < m_; ++j) {
      const Bytes query = r.bytes();
      const std::vector<Bytes> virtual_db = psm_.player_messages(j, database, psm_seed);
      w.bytes(spir.answer_bytes(virtual_db, alpha, query, server_prg));
    }
    r.expect_done();
    w.bytes(psm_.referee_extra(psm_seed));
    net.server_send(0, w.take());
  }

  // Client: decode the m PSM messages and reconstruct.
  Reader r(net.client_receive(0));
  std::vector<Bytes> messages(m_);
  for (std::size_t j = 0; j < m_; ++j) {
    messages[j] = spir.decode_bytes(sk, alpha, r.bytes());
  }
  const Bytes extra = r.bytes();
  r.expect_done();
  return psm_.reconstruct(messages, extra);
}

PsmYaoSpfeSingleServer::PsmYaoSpfeSingleServer(he::PaillierPublicKey pk,
                                               const circuits::BooleanCircuit& circuit,
                                               std::size_t n, std::size_t m,
                                               std::size_t bits_per_item, std::size_t pir_depth)
    : pk_(std::move(pk)), n_(n), m_(m), psm_(circuit, m, bits_per_item), pir_depth_(pir_depth) {
  if (n == 0) throw InvalidArgument("PsmYaoSpfeSingleServer: empty database");
}

std::vector<bool> PsmYaoSpfeSingleServer::run(net::StarNetwork& net,
                                              std::span<const std::uint64_t> database,
                                              const std::vector<std::size_t>& indices,
                                              const he::PaillierPrivateKey& sk,
                                              crypto::Prg& client_prg,
                                              crypto::Prg& server_prg) const {
  SPFE_OBS_SPAN("psm.yao_single_server");
  check_indices(indices, m_, n_);
  if (database.size() != n_) throw InvalidArgument("PsmYaoSpfeSingleServer: database size");
  const pir::PaillierPir spir(pk_, n_, pir_depth_);
  const std::size_t alpha = psm_.message_bytes();

  std::vector<pir::PaillierPir::ClientState> states(m_);
  {
    Writer w;
    for (std::size_t j = 0; j < m_; ++j) w.bytes(spir.make_query(indices[j], states[j], client_prg));
    net.client_send(0, w.take());
  }

  {
    Reader r(net.server_receive(0));
    crypto::Prg::Seed psm_seed;
    const Bytes raw = server_prg.bytes(psm_seed.size());
    std::copy(raw.begin(), raw.end(), psm_seed.begin());
    Writer w;
    for (std::size_t j = 0; j < m_; ++j) {
      const Bytes query = r.bytes();
      const std::vector<Bytes> virtual_db = psm_.player_messages(j, database, psm_seed);
      w.bytes(spir.answer_bytes(virtual_db, alpha, query, server_prg));
    }
    r.expect_done();
    w.bytes(psm_.referee_extra(psm_seed));
    net.server_send(0, w.take());
  }

  Reader r(net.client_receive(0));
  std::vector<Bytes> messages(m_);
  for (std::size_t j = 0; j < m_; ++j) {
    messages[j] = spir.decode_bytes(sk, alpha, r.bytes());
  }
  const Bytes extra = r.bytes();
  r.expect_done();
  return psm_.reconstruct(messages, extra);
}

PsmSumSpfeMultiServer::PsmSumSpfeMultiServer(field::Fp64 field, std::size_t n, std::size_t m,
                                             std::uint64_t modulus, std::size_t num_servers,
                                             std::size_t threshold)
    : field_(field), n_(n), m_(m), psm_(m, modulus), k_(num_servers), t_(threshold) {
  if (modulus > field.modulus()) {
    throw InvalidArgument("PsmSumSpfeMultiServer: modulus must fit in the field");
  }
}

std::uint64_t PsmSumSpfeMultiServer::run(net::StarNetwork& net,
                                         std::span<const std::uint64_t> database,
                                         const std::vector<std::size_t>& indices,
                                         crypto::Prg& client_prg,
                                         crypto::Prg& server_prg) const {
  SPFE_OBS_SPAN("psm.sum_multi_server");
  check_indices(indices, m_, n_);
  if (database.size() != n_) throw InvalidArgument("PsmSumSpfeMultiServer: database size");
  if (net.num_servers() != k_) throw InvalidArgument("PsmSumSpfeMultiServer: server count");
  const pir::PolyItPir spir(field_, n_, k_, t_);

  // Servers' common randomness: PSM seed + per-slot SPIR masking seeds.
  // (Derived here once; in deployment this is the replicated servers'
  // shared random input.)
  crypto::Prg::Seed common;
  {
    const Bytes raw = server_prg.bytes(common.size());
    std::copy(raw.begin(), raw.end(), common.begin());
  }
  const crypto::Prg common_prg(common);
  const crypto::Prg::Seed psm_seed = common_prg.fork_seed("psm");

  // Client: m IT-SPIR queries, one bundle per server.
  std::vector<pir::PolyItPir::ClientState> states(m_);
  std::vector<Writer> per_server(k_);
  for (std::size_t j = 0; j < m_; ++j) {
    const auto queries = spir.make_queries(indices[j], states[j], client_prg);
    for (std::size_t h = 0; h < k_; ++h) per_server[h].bytes(queries[h]);
  }
  for (std::size_t h = 0; h < k_; ++h) net.client_send(h, per_server[h].take());

  // Each server: answer all m slots over its virtual databases.
  for (std::size_t h = 0; h < k_; ++h) {
    Reader r(net.server_receive(h));
    Writer w;
    for (std::size_t j = 0; j < m_; ++j) {
      const Bytes query = r.bytes();
      const std::vector<Bytes> raw_msgs = psm_.player_messages(j, database, psm_seed);
      std::vector<std::uint64_t> virtual_db(n_);
      for (std::size_t i = 0; i < n_; ++i) {
        Reader mr(raw_msgs[i]);
        virtual_db[i] = mr.u64();
      }
      const crypto::Prg::Seed slot_seed =
          common_prg.fork_seed("spir-slot-" + std::to_string(j));
      w.bytes(spir.answer(h, virtual_db, query, &slot_seed));
    }
    r.expect_done();
    if (h == 0) w.bytes(psm_.referee_extra(psm_seed));
    net.server_send(h, w.take());
  }

  // Client: decode each slot and reconstruct the sum.
  std::vector<std::vector<Bytes>> answers(m_, std::vector<Bytes>(k_));
  Bytes extra;
  for (std::size_t h = 0; h < k_; ++h) {
    Reader r(net.client_receive(h));
    for (std::size_t j = 0; j < m_; ++j) answers[j][h] = r.bytes();
    if (h == 0) extra = r.bytes();
    r.expect_done();
  }
  std::vector<Bytes> messages(m_);
  for (std::size_t j = 0; j < m_; ++j) {
    Writer w;
    w.u64(spir.decode(answers[j], states[j]));
    messages[j] = w.take();
  }
  return psm_.reconstruct(messages, extra);
}


PsmBpSpfeSingleServer::PsmBpSpfeSingleServer(he::PaillierPublicKey pk,
                                             circuits::BranchingProgram bp, std::size_t n,
                                             std::size_t pir_depth)
    : pk_(std::move(pk)), n_(n), psm_(std::move(bp)), pir_depth_(pir_depth) {
  if (n == 0) throw InvalidArgument("PsmBpSpfeSingleServer: empty database");
}

bool PsmBpSpfeSingleServer::run(net::StarNetwork& net, std::span<const std::uint64_t> database,
                                const std::vector<std::size_t>& indices,
                                const he::PaillierPrivateKey& sk, crypto::Prg& client_prg,
                                crypto::Prg& server_prg) const {
  const std::size_t m = psm_.num_players();
  check_indices(indices, m, n_);
  if (database.size() != n_) throw InvalidArgument("PsmBpSpfeSingleServer: database size");
  const pir::PaillierPir spir(pk_, n_, pir_depth_);
  const std::size_t alpha = psm_.message_bytes();

  std::vector<pir::PaillierPir::ClientState> states(m);
  {
    Writer w;
    for (std::size_t j = 0; j < m; ++j) {
      w.bytes(spir.make_query(indices[j], states[j], client_prg));
    }
    net.client_send(0, w.take());
  }

  {
    Reader r(net.server_receive(0));
    crypto::Prg::Seed psm_seed;
    const Bytes raw = server_prg.bytes(psm_seed.size());
    std::copy(raw.begin(), raw.end(), psm_seed.begin());
    Writer w;
    for (std::size_t j = 0; j < m; ++j) {
      const Bytes query = r.bytes();
      const std::vector<Bytes> virtual_db = psm_.player_messages(j, database, psm_seed);
      w.bytes(spir.answer_bytes(virtual_db, alpha, query, server_prg));
    }
    r.expect_done();
    w.bytes(psm_.referee_extra(psm_seed));
    net.server_send(0, w.take());
  }

  Reader r(net.client_receive(0));
  std::vector<Bytes> messages(m);
  for (std::size_t j = 0; j < m; ++j) {
    messages[j] = spir.decode_bytes(sk, alpha, r.bytes());
  }
  const Bytes extra = r.bytes();
  r.expect_done();
  return psm_.reconstruct(messages, extra);
}

namespace {

// Number of 7-byte field chunks needed for a message of `bytes` bytes
// (7 bytes < 2^56 fits any Fp64 field used here).
constexpr std::size_t kItChunkBytes = 7;

std::size_t it_chunks(std::size_t bytes) { return (bytes + kItChunkBytes - 1) / kItChunkBytes; }

std::vector<std::uint64_t> chunk_column(const std::vector<Bytes>& items, std::size_t chunk,
                                        std::size_t item_bytes) {
  std::vector<std::uint64_t> col(items.size(), 0);
  const std::size_t begin = chunk * kItChunkBytes;
  const std::size_t end = std::min(begin + kItChunkBytes, item_bytes);
  for (std::size_t i = 0; i < items.size(); ++i) {
    std::uint64_t v = 0;
    for (std::size_t b = begin; b < end; ++b) v = (v << 8) | items[i][b];
    col[i] = v;
  }
  return col;
}

void unchunk_into(Bytes& out, std::size_t chunk, std::uint64_t value, std::size_t item_bytes) {
  const std::size_t begin = chunk * kItChunkBytes;
  const std::size_t end = std::min(begin + kItChunkBytes, item_bytes);
  for (std::size_t b = end; b-- > begin;) {
    out[b] = static_cast<std::uint8_t>(value);
    value >>= 8;
  }
}

}  // namespace

PsmBpSpfeMultiServer::PsmBpSpfeMultiServer(field::Fp64 field, circuits::BranchingProgram bp,
                                           std::size_t n, std::size_t num_servers,
                                           std::size_t threshold)
    : field_(field), n_(n), psm_(std::move(bp)), k_(num_servers), t_(threshold) {
  if (field.modulus() < (std::uint64_t(1) << (8 * kItChunkBytes))) {
    throw InvalidArgument("PsmBpSpfeMultiServer: field too small for 7-byte chunks");
  }
}

bool PsmBpSpfeMultiServer::run(net::StarNetwork& net, std::span<const std::uint64_t> database,
                               const std::vector<std::size_t>& indices, crypto::Prg& client_prg,
                               crypto::Prg& server_prg) const {
  const std::size_t m = psm_.num_players();
  check_indices(indices, m, n_);
  if (database.size() != n_) throw InvalidArgument("PsmBpSpfeMultiServer: database size");
  if (net.num_servers() != k_) throw InvalidArgument("PsmBpSpfeMultiServer: server count");
  const pir::PolyItPir spir(field_, n_, k_, t_);
  const std::size_t alpha = psm_.message_bytes();
  const std::size_t chunks = it_chunks(alpha);

  // Servers' common randomness.
  crypto::Prg::Seed common;
  {
    const Bytes raw = server_prg.bytes(common.size());
    std::copy(raw.begin(), raw.end(), common.begin());
  }
  const crypto::Prg common_prg(common);
  const crypto::Prg::Seed psm_seed = common_prg.fork_seed("bp-psm");

  // Client: one IT-SPIR query per (argument slot, chunk).
  std::vector<std::vector<pir::PolyItPir::ClientState>> states(
      m, std::vector<pir::PolyItPir::ClientState>(chunks));
  std::vector<Writer> per_server(k_);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto queries = spir.make_queries(indices[j], states[j][c], client_prg);
      for (std::size_t h = 0; h < k_; ++h) per_server[h].bytes(queries[h]);
    }
  }
  for (std::size_t h = 0; h < k_; ++h) net.client_send(h, per_server[h].take());

  // Servers: chunked virtual databases, one masked answer per query.
  for (std::size_t h = 0; h < k_; ++h) {
    Reader r(net.server_receive(h));
    Writer w;
    for (std::size_t j = 0; j < m; ++j) {
      const std::vector<Bytes> virtual_db = psm_.player_messages(j, database, psm_seed);
      for (std::size_t c = 0; c < chunks; ++c) {
        const Bytes query = r.bytes();
        const std::vector<std::uint64_t> col = chunk_column(virtual_db, c, alpha);
        const crypto::Prg::Seed slot_seed = common_prg.fork_seed(
            "bp-spir-" + std::to_string(j) + "-" + std::to_string(c));
        w.bytes(spir.answer(h, col, query, &slot_seed));
      }
    }
    r.expect_done();
    if (h == 0) w.bytes(psm_.referee_extra(psm_seed));
    net.server_send(h, w.take());
  }

  // Client: reassemble messages chunk-wise and reconstruct.
  std::vector<std::vector<std::vector<Bytes>>> answers(
      m, std::vector<std::vector<Bytes>>(chunks, std::vector<Bytes>(k_)));
  Bytes extra;
  for (std::size_t h = 0; h < k_; ++h) {
    Reader r(net.client_receive(h));
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t c = 0; c < chunks; ++c) answers[j][c][h] = r.bytes();
    }
    if (h == 0) extra = r.bytes();
    r.expect_done();
  }
  std::vector<Bytes> messages(m, Bytes(alpha, 0));
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t c = 0; c < chunks; ++c) {
      unchunk_into(messages[j], c, spir.decode(answers[j][c], states[j][c]), alpha);
    }
  }
  return psm_.reconstruct(messages, extra);
}

}  // namespace spfe::protocols
