// §3.3 — two-phase SPFE: input selection, then generic secure MPC on the
// shares ("function evaluation" phase).
//
// Arithmetic path: the function is an ArithCircuit over the share modulus
// and the MPC phase is the §3.3.4 homomorphic protocol — this is the
// "efficient scalability to arithmetic circuits" column of Table 1.
//
// Boolean path: the function is a Boolean circuit over the m selected
// items; the MPC phase is Yao. Share reconstruction (x_j = a_j + b_j mod u)
// is folded into the garbled circuit: mod-2^l shares cost one adder per
// item, prime-field shares one adder + compare + conditional subtract (the
// O(m log n) reconstruction overhead discussed in §3.3.2's "Boolean case").
//
// Security (Table 1): per-item and poly-mask-v1 selections give weak
// security against a malicious client; poly-mask-v2 and encrypted-db are
// provable only for semi-honest clients.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "circuits/arith_circuit.h"
#include "circuits/boolean_circuit.h"
#include "ot/group.h"
#include "spfe/input_selection.h"

namespace spfe::protocols {

enum class SelectionMethod {
  kPerItem,            // §3.3.1
  kPolyMaskClientKey,  // §3.3.2 variant 1
  kPolyMaskServerKey,  // §3.3.2 variant 2
  kEncryptedDb,        // §3.3.3
};

const char* selection_method_name(SelectionMethod m);

// Runs the chosen input selection. Poly-mask methods require `modulus` to
// be prime (they work over the field Z_modulus). `precomp` optionally
// supplies offline-precomputed randomness pools for the client-side
// encryptions (see input_selection.h).
SelectedShares run_input_selection(net::StarNetwork& net, std::size_t server_id,
                                   std::span<const std::uint64_t> database,
                                   const std::vector<std::size_t>& indices,
                                   std::uint64_t modulus, SelectionMethod method,
                                   const he::PaillierPrivateKey& client_sk,
                                   const he::PaillierPrivateKey& server_sk,
                                   std::size_t pir_depth, crypto::Prg& client_prg,
                                   crypto::Prg& server_prg,
                                   const he::ClientPrecomp& precomp = {});

// Arithmetic two-phase SPFE. `circuit` has m inputs (the selected items)
// over Z_u where u = circuit.modulus(); returns the circuit outputs.
std::vector<std::uint64_t> run_two_phase_arith(
    net::StarNetwork& net, std::size_t server_id, std::span<const std::uint64_t> database,
    const std::vector<std::size_t>& indices, const circuits::ArithCircuit& circuit,
    SelectionMethod method, const he::PaillierPrivateKey& client_sk,
    const he::PaillierPrivateKey& server_sk, std::size_t pir_depth, crypto::Prg& client_prg,
    crypto::Prg& server_prg);

// Builds the Yao circuit for the Boolean path: reconstruction of m items
// from share bundles followed by the caller-provided function body.
// `body` receives the circuit and the m reconstructed item bundles and must
// register the outputs.
circuits::BooleanCircuit build_shared_input_circuit(
    std::size_t m, std::size_t item_bits, std::uint64_t share_modulus,
    const std::function<void(circuits::BooleanCircuit&,
                             const std::vector<circuits::WireBundle>&)>& body);

// Boolean two-phase SPFE with a *private function parameter*: the paper
// notes (§1, §4) that the client's function — or a parameter of it, like
// the keyword being counted — can itself be hidden by feeding it as an
// additional private input. `param_bits` extra client-private wires are
// appended to the Yao circuit; `body` receives them after the m item
// bundles. The server learns only the shape of the circuit, not the
// parameter (and a malicious client can at worst substitute a different
// same-shape parameter — the paper's closing weak-security remark).
std::vector<bool> run_two_phase_boolean_private_param(
    net::StarNetwork& net, std::size_t server_id, std::span<const std::uint64_t> database,
    const std::vector<std::size_t>& indices, std::size_t item_bits, SelectionMethod method,
    std::uint64_t private_param, std::size_t param_bits,
    const std::function<void(circuits::BooleanCircuit&,
                             const std::vector<circuits::WireBundle>& items,
                             const circuits::WireBundle& param)>& body,
    const he::PaillierPrivateKey& client_sk, const he::PaillierPrivateKey& server_sk,
    const ot::SchnorrGroup& ot_group, std::size_t pir_depth, crypto::Prg& client_prg,
    crypto::Prg& server_prg);

// Boolean two-phase SPFE over *XOR* shares from the Goldwasser–Micali
// §3.3.3 variant: share reconstruction is pure XOR, hence free under
// free-XOR garbling — the optimization the paper alludes to in §3.3.2's
// "Boolean case" paragraph. Ablated against the additive path in
// bench_table1/bench_stats.
std::vector<bool> run_two_phase_boolean_gm(
    net::StarNetwork& net, std::size_t server_id, std::span<const std::uint64_t> database,
    const std::vector<std::size_t>& indices, std::size_t item_bits,
    const std::function<void(circuits::BooleanCircuit&,
                             const std::vector<circuits::WireBundle>&)>& body,
    const he::GmPrivateKey& server_gm_sk, const he::PaillierPrivateKey& client_sk,
    const ot::SchnorrGroup& ot_group, std::size_t pir_depth, crypto::Prg& client_prg,
    crypto::Prg& server_prg);

// Boolean two-phase SPFE: selection produces shares mod `share_modulus`
// (2^item_bits, or a prime for the poly-mask methods), Yao evaluates.
std::vector<bool> run_two_phase_boolean(
    net::StarNetwork& net, std::size_t server_id, std::span<const std::uint64_t> database,
    const std::vector<std::size_t>& indices, std::size_t item_bits, SelectionMethod method,
    const std::function<void(circuits::BooleanCircuit&,
                             const std::vector<circuits::WireBundle>&)>& body,
    const he::PaillierPrivateKey& client_sk, const he::PaillierPrivateKey& server_sk,
    const ot::SchnorrGroup& ot_group, std::size_t pir_depth, crypto::Prg& client_prg,
    crypto::Prg& server_prg);

}  // namespace spfe::protocols
