#include "spfe/stats.h"

#include <algorithm>

#include "common/error.h"
#include "common/serialize.h"
#include "obs/obs.h"
#include "pir/batch_pir.h"

namespace spfe::protocols {
namespace {

using bignum::BigInt;

constexpr std::size_t kStatBits = 40;

std::uint64_t add_mod(std::uint64_t a, std::uint64_t b, std::uint64_t u) {
  return static_cast<std::uint64_t>((static_cast<unsigned __int128>(a) + b) % u);
}

std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b, std::uint64_t u) {
  return static_cast<std::uint64_t>(static_cast<unsigned __int128>(a) * b % u);
}

void write_ct(Writer& w, const he::PaillierPublicKey& pk, const BigInt& ct) {
  w.raw(ct.to_bytes_be_padded(pk.ciphertext_bytes()));
}

BigInt read_ct(Reader& r, const he::PaillierPublicKey& pk) {
  return BigInt::from_bytes_be(r.raw(pk.ciphertext_bytes()));
}

// Masked database x'_i = x_i + P_s(i+1) mod p for coefficients s.
std::vector<std::uint64_t> mask_database(std::span<const std::uint64_t> database,
                                         const std::vector<std::uint64_t>& s, std::uint64_t p) {
  std::vector<std::uint64_t> masked(database.size());
  for (std::size_t i = 0; i < database.size(); ++i) {
    std::uint64_t acc = 0;
    for (std::size_t k = s.size(); k-- > 0;) {
      acc = add_mod(mul_mod(acc, (i + 1) % p, p), s[k], p);
    }
    masked[i] = add_mod(database[i] % p, acc, p);
  }
  return masked;
}

// The client-key pool, or null when absent/keyed differently.
he::PaillierRandomnessPool* pool_for(const he::ClientPrecomp& precomp,
                                     const he::PaillierPublicKey& pk) {
  return (precomp.paillier != nullptr && precomp.paillier->public_key() == pk)
             ? precomp.paillier
             : nullptr;
}

void check_stat_inputs(std::span<const std::uint64_t> database,
                       const std::vector<std::size_t>& indices, std::size_t n, std::size_t m,
                       std::uint64_t p) {
  if (database.size() != n) throw InvalidArgument("statistics: database size mismatch");
  if (indices.size() != m) throw InvalidArgument("statistics: need exactly m indices");
  for (const std::size_t i : indices) {
    if (i >= n) throw InvalidArgument("statistics: index out of range");
  }
  for (const std::uint64_t x : database) {
    if (x >= p) throw InvalidArgument("statistics: database value exceeds field");
  }
}

}  // namespace

WeightedSumProtocol::WeightedSumProtocol(field::Fp64 field, std::size_t n, std::size_t m,
                                         std::size_t pir_depth)
    : field_(field), n_(n), m_(m), pir_depth_(pir_depth) {
  if (field.modulus() <= n) {
    throw InvalidArgument("WeightedSumProtocol: field must exceed the database size");
  }
  if (m == 0 || n == 0) throw InvalidArgument("WeightedSumProtocol: empty selection");
}

std::uint64_t WeightedSumProtocol::run(net::StarNetwork& net, std::size_t server_id,
                                       std::span<const std::uint64_t> database,
                                       const std::vector<std::size_t>& indices,
                                       const std::vector<std::uint64_t>& weights,
                                       const he::PaillierPrivateKey& client_sk,
                                       crypto::Prg& client_prg, crypto::Prg& server_prg,
                                       const he::ClientPrecomp& precomp) const {
  SPFE_OBS_SPAN("stats.weighted_sum");
  const std::uint64_t p = field_.modulus();
  check_stat_inputs(database, indices, n_, m_, p);
  if (weights.size() != m_) throw InvalidArgument("WeightedSumProtocol: need m weights");
  const he::PaillierPublicKey& pk = client_sk.public_key();
  if ((BigInt(m_) * BigInt(p) * BigInt(p)) << (kStatBits + 2) >= pk.n()) {
    throw CryptoError("WeightedSumProtocol: Paillier modulus too small");
  }
  const pir::CuckooBatchPir spir(pk, n_, m_, pir_depth_);

  // Client round-1: SPIR query + E(c_0..c_{m-1}), c_k = sum_j w_j i_j^k.
  he::PaillierRandomnessPool* pool = pool_for(precomp, pk);
  pir::CuckooBatchPir::ClientState pir_state;
  {
    Writer w;
    w.bytes(spir.make_query(indices, pir_state, client_prg, pool));
    for (std::size_t k = 0; k < m_; ++k) {
      std::uint64_t c_k = 0;
      for (std::size_t j = 0; j < m_; ++j) {
        // Powers of (i_j + 1) — matching the server's mask evaluation points.
        std::uint64_t power = 1 % p;
        for (std::size_t e = 0; e < k; ++e) power = mul_mod(power, (indices[j] + 1) % p, p);
        c_k = add_mod(c_k, mul_mod(weights[j] % p, power, p), p);
      }
      write_ct(w, pk,
               pool != nullptr ? pool->encrypt(BigInt(c_k)) : pk.encrypt(BigInt(c_k), client_prg));
    }
    net.client_send(server_id, w.take());
  }

  // Server: masked database answer + E(sum_k s_k c_k + blind).
  {
    Reader r(net.server_receive(server_id));
    const Bytes pir_query = r.bytes();
    std::vector<BigInt> c_cts(m_);
    for (auto& c : c_cts) c = read_ct(r, pk);
    r.expect_done();

    std::vector<std::uint64_t> s(m_);
    for (auto& coeff : s) coeff = server_prg.uniform(p);
    const std::vector<std::uint64_t> masked = mask_database(database, s, p);

    Writer w;
    w.bytes(spir.answer_u64(masked, pir_query, server_prg));
    std::vector<BigInt> s_big(m_);
    for (std::size_t k = 0; k < m_; ++k) s_big[k] = BigInt(s[k]);
    BigInt acc = pk.add(pk.encrypt(BigInt(0), server_prg), pk.mul_scalar_sum(c_cts, s_big));
    // Blind with a multiple of p: the client learns the value only mod p.
    const BigInt rho = BigInt::random_below(server_prg, (BigInt(m_) * BigInt(p)) << kStatBits);
    acc = pk.add(acc, pk.encrypt(rho * BigInt(p), server_prg));
    write_ct(w, pk, acc);
    net.server_send(server_id, w.take());
  }

  // Client: sum_j w_j x'_{i_j} - sum_j w_j P_s(i_j).
  Reader r(net.client_receive(server_id));
  const std::vector<std::uint64_t> masked_items =
      spir.decode_u64(client_sk, r.bytes(), pir_state);
  const std::uint64_t mask_sum =
      client_sk.decrypt(read_ct(r, pk)).mod_floor(BigInt(p)).to_u64();
  r.expect_done();
  std::uint64_t weighted = 0;
  for (std::size_t j = 0; j < m_; ++j) {
    weighted = add_mod(weighted, mul_mod(weights[j] % p, masked_items[j], p), p);
  }
  return add_mod(weighted, p - mask_sum, p);
}

MeanVariancePackage::MeanVariancePackage(field::Fp64 field, std::size_t n, std::size_t m,
                                         std::size_t pir_depth)
    : field_(field), n_(n), m_(m), pir_depth_(pir_depth) {
  if (field.modulus() <= n) {
    throw InvalidArgument("MeanVariancePackage: field must exceed the database size");
  }
}

MeanVarianceResult MeanVariancePackage::run(net::StarNetwork& net, std::size_t server_id,
                                            std::span<const std::uint64_t> database,
                                            const std::vector<std::size_t>& indices,
                                            const he::PaillierPrivateKey& client_sk,
                                            crypto::Prg& client_prg, crypto::Prg& server_prg,
                                            const he::ClientPrecomp& precomp) const {
  const std::uint64_t p = field_.modulus();
  check_stat_inputs(database, indices, n_, m_, p);
  const he::PaillierPublicKey& pk = client_sk.public_key();
  if ((BigInt(m_) * BigInt(p) * BigInt(p)) << (kStatBits + 2) >= pk.n()) {
    throw CryptoError("MeanVariancePackage: Paillier modulus too small");
  }
  const pir::CuckooBatchPir spir(pk, n_, m_, pir_depth_);

  // Client round-1: one SPIR query (reused for both databases) + E(c_k)
  // with unit weights.
  he::PaillierRandomnessPool* pool = pool_for(precomp, pk);
  pir::CuckooBatchPir::ClientState pir_state;
  {
    Writer w;
    w.bytes(spir.make_query(indices, pir_state, client_prg, pool));
    for (std::size_t k = 0; k < m_; ++k) {
      std::uint64_t c_k = 0;
      for (std::size_t j = 0; j < m_; ++j) {
        std::uint64_t power = 1 % p;
        for (std::size_t e = 0; e < k; ++e) power = mul_mod(power, (indices[j] + 1) % p, p);
        c_k = add_mod(c_k, power, p);
      }
      write_ct(w, pk,
               pool != nullptr ? pool->encrypt(BigInt(c_k)) : pk.encrypt(BigInt(c_k), client_prg));
    }
    net.client_send(server_id, w.take());
  }

  // Server: answers the same selection over x and over x^2, with
  // independent mask polynomials ("it replies twice", §4).
  {
    Reader r(net.server_receive(server_id));
    const Bytes pir_query = r.bytes();
    std::vector<BigInt> c_cts(m_);
    for (auto& c : c_cts) c = read_ct(r, pk);
    r.expect_done();

    std::vector<std::uint64_t> squares(n_);
    for (std::size_t i = 0; i < n_; ++i) squares[i] = mul_mod(database[i], database[i], p);

    const std::span<const std::uint64_t> views[2] = {database, squares};
    Writer w;
    for (const std::span<const std::uint64_t> data : views) {
      std::vector<std::uint64_t> s(m_);
      for (auto& coeff : s) coeff = server_prg.uniform(p);
      w.bytes(spir.answer_u64(mask_database(data, s, p), pir_query, server_prg));
      std::vector<BigInt> s_big(m_);
      for (std::size_t k = 0; k < m_; ++k) s_big[k] = BigInt(s[k]);
      BigInt acc = pk.add(pk.encrypt(BigInt(0), server_prg), pk.mul_scalar_sum(c_cts, s_big));
      const BigInt rho =
          BigInt::random_below(server_prg, (BigInt(m_) * BigInt(p)) << kStatBits);
      acc = pk.add(acc, pk.encrypt(rho * BigInt(p), server_prg));
      write_ct(w, pk, acc);
    }
    net.server_send(server_id, w.take());
  }

  // Client: recover both aggregates.
  MeanVarianceResult result;
  Reader r(net.client_receive(server_id));
  std::uint64_t aggregates[2];
  for (int round = 0; round < 2; ++round) {
    const std::vector<std::uint64_t> masked_items =
        spir.decode_u64(client_sk, r.bytes(), pir_state);
    const std::uint64_t mask_sum =
        client_sk.decrypt(read_ct(r, pk)).mod_floor(BigInt(p)).to_u64();
    std::uint64_t total = 0;
    for (const std::uint64_t v : masked_items) total = add_mod(total, v, p);
    aggregates[round] = add_mod(total, p - mask_sum, p);
  }
  r.expect_done();
  result.sum = aggregates[0];
  result.sum_of_squares = aggregates[1];
  const double md = static_cast<double>(m_);
  result.mean = static_cast<double>(result.sum) / md;
  result.variance =
      static_cast<double>(result.sum_of_squares) / md - result.mean * result.mean;
  return result;
}

RobustStatsSession::RobustStatsSession(field::Fp64 field, std::size_t n, std::size_t m,
                                       std::size_t num_servers, std::size_t threshold,
                                       const crypto::Prg::Seed& session_seed,
                                       RobustStatsConfig config)
    : field_(field),
      proto_(field, n, m, num_servers, threshold),
      config_(config),
      prg_(session_seed),
      health_(num_servers),
      blame_(num_servers) {
  if (config_.max_attempts == 0) {
    throw InvalidArgument("RobustStatsSession: max_attempts must be >= 1");
  }
  if (config_.hedge_quantile <= 0.0 || config_.hedge_quantile > 1.0) {
    throw InvalidArgument("RobustStatsSession: hedge_quantile must be in (0, 1]");
  }
}

net::RobustConfig RobustStatsSession::next_query_config() {
  net::RobustConfig cfg;
  cfg.max_attempts = config_.max_attempts;
  cfg.timing.enabled = true;  // ignored over untimed networks
  cfg.timing.attempt_timeout_us = config_.attempt_timeout_us;
  cfg.timing.byzantine_budget = config_.byzantine_budget;
  cfg.timing.hedge_spares = config_.hedge_spares;
  if (config_.hedge_spares > 0) {
    cfg.timing.hedge_timeout_us =
        std::max(config_.hedge_floor_us,
                 health_.latency_quantile_us(config_.hedge_quantile, config_.hedge_fallback_us));
  }
  cfg.timing.backoff_base_us = config_.backoff_base_us;
  cfg.timing.backoff_max_us = config_.backoff_max_us;
  cfg.timing.backoff_seed =
      prg_.fork_seed("backoff-" + std::to_string(query_no_));
  // Healthy servers first; the demoted tail serves as hedge spares.
  cfg.timing.send_order = health_.ranked_order();
  return cfg;
}

net::RobustResult RobustStatsSession::run_one(net::StarNetwork& net,
                                              std::span<const std::uint64_t> database,
                                              const std::vector<std::size_t>& indices,
                                              const std::optional<crypto::Prg::Seed>& spir_seed) {
  const net::RobustConfig cfg = next_query_config();
  crypto::Prg qprg = prg_.fork("query-" + std::to_string(query_no_));
  ++query_no_;
  try {
    net::RobustResult result = proto_.run_robust(net, database, indices, spir_seed, qprg, cfg);
    health_.observe(result.report);
    tally_blame(result.report);
    return result;
  } catch (const net::RobustProtocolError& e) {
    // A terminal failure is still evidence about who misbehaved.
    health_.observe(e.report());
    tally_blame(e.report());
    throw;
  }
}

void RobustStatsSession::tally_blame(const net::RobustnessReport& report) {
  // Every attempt counts: a liar exposed on attempt 0 stays in the tally
  // when the retry succeeds. Reports without history (untimed single-shot
  // paths) contribute their final verdicts once.
  std::vector<const std::vector<net::ServerReport>*> attempts;
  if (report.history.empty()) {
    attempts.push_back(&report.verdicts);
  } else {
    for (const net::AttemptRecord& rec : report.history) attempts.push_back(&rec.verdicts);
  }
  for (const auto* verdicts : attempts) {
    for (std::size_t s = 0; s < verdicts->size() && s < blame_.size(); ++s) {
      switch ((*verdicts)[s].blame) {
        case net::Blame::kNone:
          break;
        case net::Blame::kByzantine:
          ++blame_[s].byzantine;
          break;
        case net::Blame::kCrashed:
          ++blame_[s].crashed;
          break;
        case net::Blame::kStraggler:
          ++blame_[s].straggler;
          break;
      }
    }
  }
}

net::RobustResult RobustStatsSession::sum(net::StarNetwork& net,
                                          std::span<const std::uint64_t> database,
                                          const std::vector<std::size_t>& indices,
                                          const std::optional<crypto::Prg::Seed>& spir_seed) {
  SPFE_OBS_SPAN("stats.robust_sum");
  return run_one(net, database, indices, spir_seed);
}

MeanVarianceResult RobustStatsSession::mean_variance(
    net::StarNetwork& net, std::span<const std::uint64_t> database,
    const std::vector<std::size_t>& indices, const std::optional<crypto::Prg::Seed>& spir_seed,
    net::RobustnessReport* sum_report, net::RobustnessReport* squares_report) {
  SPFE_OBS_SPAN("stats.robust_mean_variance");
  const std::uint64_t p = field_.modulus();
  net::RobustResult sum_res = run_one(net, database, indices, spir_seed);
  if (sum_report != nullptr) *sum_report = sum_res.report;

  // The §4 package's second database: the servers answer the same selection
  // over x''_i = x_i^2 with an independent query curve.
  std::vector<std::uint64_t> squares(database.size());
  for (std::size_t i = 0; i < database.size(); ++i) {
    squares[i] = mul_mod(database[i] % p, database[i] % p, p);
  }
  net::RobustResult sq_res = run_one(net, squares, indices, spir_seed);
  if (squares_report != nullptr) *squares_report = sq_res.report;

  MeanVarianceResult result;
  result.sum = sum_res.value;
  result.sum_of_squares = sq_res.value;
  const double md = static_cast<double>(indices.size());
  result.mean = static_cast<double>(result.sum) / md;
  result.variance =
      static_cast<double>(result.sum_of_squares) / md - result.mean * result.mean;
  return result;
}

FrequencyProtocol::FrequencyProtocol(field::Fp64 field, std::size_t n, std::size_t m,
                                     SelectionMethod method, std::size_t pir_depth)
    : field_(field), n_(n), m_(m), method_(method), pir_depth_(pir_depth) {}

std::size_t FrequencyProtocol::run(net::StarNetwork& net, std::size_t server_id,
                                   std::span<const std::uint64_t> database,
                                   const std::vector<std::size_t>& indices,
                                   std::uint64_t keyword,
                                   const he::PaillierPrivateKey& client_sk,
                                   const he::PaillierPrivateKey& server_sk,
                                   crypto::Prg& client_prg, crypto::Prg& server_prg,
                                   const he::ClientPrecomp& precomp) const {
  SPFE_OBS_SPAN("stats.frequency");
  const std::uint64_t p = field_.modulus();
  check_stat_inputs(database, indices, n_, m_, p);
  if (keyword >= p) throw InvalidArgument("FrequencyProtocol: keyword outside field");
  const he::PaillierPublicKey& pk = client_sk.public_key();
  if ((BigInt(p) * BigInt(p) * BigInt(4)) << kStatBits >= pk.n()) {
    throw CryptoError("FrequencyProtocol: Paillier modulus too small");
  }

  // Phase 1: additive shares a_j + b_j = x_{i_j} mod p.
  const SelectedShares shares =
      run_input_selection(net, server_id, database, indices, p, method_, client_sk, server_sk,
                          pir_depth_, client_prg, server_prg, precomp);

  // Phase 2, client: E(b_j - keyword + p) (positive representative).
  {
    he::PaillierRandomnessPool* pool = pool_for(precomp, pk);
    Writer w;
    for (std::size_t j = 0; j < m_; ++j) {
      const std::uint64_t t = add_mod(shares.client_shares[j], p - keyword % p, p);
      write_ct(w, pk, pool != nullptr ? pool->encrypt(BigInt(t)) : pk.encrypt(BigInt(t), client_prg));
    }
    net.client_send(server_id, w.take());
  }

  // Phase 2, server: E(rho_j * (x - w) + p * sigma_j), randomly permuted.
  {
    Reader r(net.server_receive(server_id));
    std::vector<BigInt> cts(m_);
    for (std::size_t j = 0; j < m_; ++j) {
      BigInt ct = read_ct(r, pk);
      // plaintext: (b_j - w mod p) + a_j  ==  x - w (mod p), value < 2p.
      ct = pk.add(ct, pk.encrypt(BigInt(shares.server_shares[j]), server_prg));
      const std::uint64_t rho = 1 + server_prg.uniform(p - 1);  // nonzero
      ct = pk.mul_scalar(ct, BigInt(rho));
      const BigInt sigma =
          BigInt::random_below(server_prg, (BigInt(2) * BigInt(p)) << kStatBits);
      ct = pk.add(ct, pk.encrypt(sigma * BigInt(p), server_prg));
      cts[j] = pk.rerandomize(ct, server_prg);
    }
    r.expect_done();
    // Random permutation (Fisher-Yates) hides which positions matched.
    for (std::size_t j = m_; j > 1; --j) {
      std::swap(cts[j - 1], cts[server_prg.uniform(j)]);
    }
    Writer w;
    for (const BigInt& ct : cts) write_ct(w, pk, ct);
    net.server_send(server_id, w.take());
  }

  // Client: count values divisible by p.
  Reader r(net.client_receive(server_id));
  std::size_t count = 0;
  for (std::size_t j = 0; j < m_; ++j) {
    const BigInt v = client_sk.decrypt(read_ct(r, pk));
    if (v.mod_floor(BigInt(p)).is_zero()) ++count;
  }
  r.expect_done();
  return count;
}

}  // namespace spfe::protocols
