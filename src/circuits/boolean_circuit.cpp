#include "circuits/boolean_circuit.h"

#include <algorithm>

namespace spfe::circuits {

BooleanCircuit::BooleanCircuit(std::size_t num_inputs) : num_inputs_(num_inputs) {}

WireId BooleanCircuit::input(std::size_t i) const {
  if (i >= num_inputs_) throw InvalidArgument("BooleanCircuit: input index out of range");
  return static_cast<WireId>(i);
}

void BooleanCircuit::check_wire(WireId w) const {
  if (w >= num_wires()) throw InvalidArgument("BooleanCircuit: wire does not exist yet");
}

WireId BooleanCircuit::append(GateKind kind, WireId a, WireId b) {
  gates_.push_back({kind, a, b});
  return static_cast<WireId>(num_wires() - 1);
}

WireId BooleanCircuit::xor_gate(WireId a, WireId b) {
  check_wire(a);
  check_wire(b);
  return append(GateKind::kXor, a, b);
}

WireId BooleanCircuit::and_gate(WireId a, WireId b) {
  check_wire(a);
  check_wire(b);
  return append(GateKind::kAnd, a, b);
}

WireId BooleanCircuit::or_gate(WireId a, WireId b) {
  check_wire(a);
  check_wire(b);
  return append(GateKind::kOr, a, b);
}

WireId BooleanCircuit::not_gate(WireId a) {
  check_wire(a);
  return append(GateKind::kNot, a, 0);
}

WireId BooleanCircuit::const_wire(bool value) {
  return append(value ? GateKind::kConstOne : GateKind::kConstZero, 0, 0);
}

void BooleanCircuit::add_output(WireId w) {
  check_wire(w);
  outputs_.push_back(w);
}

void BooleanCircuit::add_outputs(const WireBundle& ws) {
  for (const WireId w : ws) add_output(w);
}

std::size_t BooleanCircuit::nonfree_gate_count() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) {
    if (g.kind == GateKind::kAnd || g.kind == GateKind::kOr) ++n;
  }
  return n;
}

std::vector<bool> BooleanCircuit::eval(const std::vector<bool>& inputs) const {
  if (inputs.size() != num_inputs_) {
    throw InvalidArgument("BooleanCircuit::eval: wrong input count");
  }
  std::vector<bool> values(num_wires());
  for (std::size_t i = 0; i < num_inputs_; ++i) values[i] = inputs[i];
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    const Gate& gate = gates_[g];
    const std::size_t out = num_inputs_ + g;
    switch (gate.kind) {
      case GateKind::kXor:
        values[out] = values[gate.a] != values[gate.b];
        break;
      case GateKind::kAnd:
        values[out] = values[gate.a] && values[gate.b];
        break;
      case GateKind::kOr:
        values[out] = values[gate.a] || values[gate.b];
        break;
      case GateKind::kNot:
        values[out] = !values[gate.a];
        break;
      case GateKind::kConstZero:
        values[out] = false;
        break;
      case GateKind::kConstOne:
        values[out] = true;
        break;
    }
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (const WireId w : outputs_) out.push_back(values[w]);
  return out;
}

// --- Builders ---------------------------------------------------------------

namespace {

// Full adder: returns (sum, carry_out). Uses the XOR-heavy decomposition
// carry = (a ^ cin)(b ^ cin) ^ cin, which costs one AND per bit.
std::pair<WireId, WireId> full_adder(BooleanCircuit& c, WireId a, WireId b, WireId cin) {
  const WireId axc = c.xor_gate(a, cin);
  const WireId bxc = c.xor_gate(b, cin);
  const WireId sum = c.xor_gate(a, bxc);
  const WireId carry = c.xor_gate(c.and_gate(axc, bxc), cin);
  return {sum, carry};
}

}  // namespace

WireBundle build_add_mod(BooleanCircuit& c, const WireBundle& a, const WireBundle& b) {
  if (a.size() != b.size() || a.empty()) {
    throw InvalidArgument("build_add_mod: bundles must be nonempty and equal width");
  }
  WireBundle out;
  out.reserve(a.size());
  WireId carry = c.const_wire(false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i + 1 == a.size()) {
      // Top bit: carry out is discarded, so skip the AND.
      out.push_back(c.xor_gate(a[i], c.xor_gate(b[i], carry)));
    } else {
      auto [sum, cout] = full_adder(c, a[i], b[i], carry);
      out.push_back(sum);
      carry = cout;
    }
  }
  return out;
}

WireBundle build_add(BooleanCircuit& c, const WireBundle& a, const WireBundle& b) {
  if (a.empty() || b.empty()) throw InvalidArgument("build_add: empty bundle");
  const std::size_t width = std::max(a.size(), b.size());
  const WireBundle ax = zero_extend(c, a, width);
  const WireBundle bx = zero_extend(c, b, width);
  WireBundle out;
  out.reserve(width + 1);
  WireId carry = c.const_wire(false);
  for (std::size_t i = 0; i < width; ++i) {
    auto [sum, cout] = full_adder(c, ax[i], bx[i], carry);
    out.push_back(sum);
    carry = cout;
  }
  out.push_back(carry);
  return out;
}

WireBundle build_sub_mod(BooleanCircuit& c, const WireBundle& a, const WireBundle& b) {
  if (a.size() != b.size() || a.empty()) {
    throw InvalidArgument("build_sub_mod: bundles must be nonempty and equal width");
  }
  // a - b = a + ~b + 1 (two's complement), dropping the final carry.
  WireBundle not_b;
  not_b.reserve(b.size());
  for (const WireId w : b) not_b.push_back(c.not_gate(w));
  WireBundle out;
  out.reserve(a.size());
  WireId carry = c.const_wire(true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i + 1 == a.size()) {
      out.push_back(c.xor_gate(a[i], c.xor_gate(not_b[i], carry)));
    } else {
      const WireId axc = c.xor_gate(a[i], carry);
      const WireId bxc = c.xor_gate(not_b[i], carry);
      out.push_back(c.xor_gate(a[i], bxc));
      carry = c.xor_gate(c.and_gate(axc, bxc), carry);
    }
  }
  return out;
}

WireBundle build_add_mod_const(BooleanCircuit& c, const WireBundle& a, const WireBundle& b,
                               std::uint64_t modulus) {
  if (modulus < 2) throw InvalidArgument("build_add_mod_const: modulus must be >= 2");
  // Full-width sum (width+1 bits), compare against the modulus constant,
  // conditionally subtract.
  WireBundle sum = build_add(c, a, b);
  // Constant bundle for the modulus at sum width.
  WireBundle mod_bundle;
  mod_bundle.reserve(sum.size());
  for (std::size_t i = 0; i < sum.size(); ++i) {
    mod_bundle.push_back(c.const_wire(i < 64 && ((modulus >> i) & 1) != 0));
  }
  const WireId lt = build_less_than(c, sum, mod_bundle);
  const WireBundle reduced = build_sub_mod(c, sum, mod_bundle);
  WireBundle out = build_mux(c, lt, sum, reduced);
  // Result < modulus fits in the original width.
  out.resize(a.size());
  return out;
}

WireId build_eq_const(BooleanCircuit& c, const WireBundle& a, std::uint64_t value) {
  if (a.empty()) throw InvalidArgument("build_eq_const: empty bundle");
  if (a.size() < 64 && (value >> a.size()) != 0) {
    throw InvalidArgument("build_eq_const: constant wider than bundle");
  }
  // AND over per-bit match: bit if constant bit is 1, else NOT bit.
  WireId acc = 0;
  bool have_acc = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool bit = i < 64 && ((value >> i) & 1) != 0;
    const WireId match = bit ? a[i] : c.not_gate(a[i]);
    acc = have_acc ? c.and_gate(acc, match) : match;
    have_acc = true;
  }
  return acc;
}

WireId build_eq(BooleanCircuit& c, const WireBundle& a, const WireBundle& b) {
  if (a.size() != b.size() || a.empty()) {
    throw InvalidArgument("build_eq: bundles must be nonempty and equal width");
  }
  WireId acc = 0;
  bool have_acc = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const WireId match = c.not_gate(c.xor_gate(a[i], b[i]));
    acc = have_acc ? c.and_gate(acc, match) : match;
    have_acc = true;
  }
  return acc;
}

WireId build_less_than(BooleanCircuit& c, const WireBundle& a, const WireBundle& b) {
  if (a.size() != b.size() || a.empty()) {
    throw InvalidArgument("build_less_than: bundles must be nonempty and equal width");
  }
  // Scan LSB to MSB; at each position, a differing bit overrides the verdict
  // so far: lt = (a_i != b_i) ? b_i : lt, i.e. lt ^= diff & (b_i ^ lt).
  WireId lt = c.const_wire(false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const WireId diff = c.xor_gate(a[i], b[i]);
    lt = c.xor_gate(c.and_gate(diff, c.xor_gate(b[i], lt)), lt);
  }
  return lt;
}

WireBundle zero_extend(BooleanCircuit& c, const WireBundle& a, std::size_t width) {
  if (a.size() > width) throw InvalidArgument("zero_extend: bundle already wider");
  WireBundle out = a;
  while (out.size() < width) out.push_back(c.const_wire(false));
  return out;
}

WireBundle build_popcount(BooleanCircuit& c, const std::vector<WireId>& bits) {
  if (bits.empty()) throw InvalidArgument("build_popcount: no bits");
  // Pairwise adder tree over 1-bit bundles.
  std::vector<WireBundle> layer;
  layer.reserve(bits.size());
  for (const WireId b : bits) layer.push_back(WireBundle{b});
  return build_sum_tree(c, layer);
}

WireBundle build_sum_tree(BooleanCircuit& c, const std::vector<WireBundle>& items) {
  if (items.empty()) throw InvalidArgument("build_sum_tree: no items");
  std::vector<WireBundle> layer = items;
  while (layer.size() > 1) {
    std::vector<WireBundle> next;
    next.reserve((layer.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(build_add(c, layer[i], layer[i + 1]));
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  return layer[0];
}

WireBundle build_mux(BooleanCircuit& c, WireId sel, const WireBundle& a, const WireBundle& b) {
  if (a.size() != b.size() || a.empty()) {
    throw InvalidArgument("build_mux: bundles must be nonempty and equal width");
  }
  WireBundle out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // sel ? a : b  ==  b ^ (sel & (a ^ b))
    out.push_back(c.xor_gate(b[i], c.and_gate(sel, c.xor_gate(a[i], b[i]))));
  }
  return out;
}

}  // namespace spfe::circuits
