// Boolean formulas over binary gates — the function representation used by
// the §3.1 multi-server protocol.
//
// A formula's *size* s is its number of leaves (as in the paper), and the
// §3.1 construction turns it into a multivariate polynomial of total degree
// <= s * ceil(log2 n). Servers never expand that polynomial; they evaluate it
// gate-by-gate via `eval_arithmetized`, which maps each Boolean gate to its
// natural degree-2 polynomial:
//   AND(a,b) = a*b      OR(a,b) = a + b - a*b
//   XOR(a,b) = a + b - 2ab      NOT(a) = 1 - a
// On 0/1 inputs these agree with the Boolean semantics; on field inputs they
// define the polynomial P_g of the paper.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "field/field.h"

namespace spfe::circuits {

enum class FormulaOp : std::uint8_t { kLeaf, kConst, kNot, kAnd, kOr, kXor };

class Formula {
 public:
  // Leaf referencing the j-th function argument (0-based).
  static Formula leaf(std::size_t arg_index);
  static Formula constant(bool value);
  static Formula f_not(Formula a);
  static Formula f_and(Formula a, Formula b);
  static Formula f_or(Formula a, Formula b);
  static Formula f_xor(Formula a, Formula b);

  // Balanced trees over args [0, arity).
  static Formula and_tree(std::size_t arity);
  static Formula or_tree(std::size_t arity);
  static Formula parity(std::size_t arity);

  // Parses expressions like "(x0 & x1) | ~x2 ^ 1" with precedence
  // ~ > & > ^ > |. Variables are x<digits>; constants 0/1.
  static Formula parse(const std::string& expr);

  FormulaOp op() const { return op_; }
  std::size_t arg_index() const { return arg_index_; }
  bool const_value() const { return const_value_; }
  const Formula& left() const { return *left_; }
  const Formula& right() const { return *right_; }

  // Number of leaves (the paper's formula size s). Constants do not count.
  std::size_t size() const;
  // 1 + max argument index referenced; 0 for constant formulas.
  std::size_t arity() const;
  bool eval(const std::vector<bool>& args) const;

  // Degree of the §3.1 polynomial when each leaf is replaced by a selection
  // polynomial of degree `leaf_degree`. (Gate polynomials add the degrees of
  // their children; NOT and constants are degree-preserving.)
  std::size_t arith_degree(std::size_t leaf_degree) const;

  // Evaluates the gate polynomials over a field, with the leaf j replaced by
  // leaf_values[j] (a field element, typically P_0 evaluated on the client's
  // encoded index block).
  template <field::FieldLike F>
  typename F::value_type eval_arithmetized(
      const F& field, const std::vector<typename F::value_type>& leaf_values) const {
    switch (op_) {
      case FormulaOp::kLeaf:
        if (arg_index_ >= leaf_values.size()) {
          throw InvalidArgument("Formula: leaf index out of range");
        }
        return leaf_values[arg_index_];
      case FormulaOp::kConst:
        return const_value_ ? field.one() : field.zero();
      case FormulaOp::kNot:
        return field.sub(field.one(), left_->eval_arithmetized(field, leaf_values));
      case FormulaOp::kAnd: {
        const auto a = left_->eval_arithmetized(field, leaf_values);
        const auto b = right_->eval_arithmetized(field, leaf_values);
        return field.mul(a, b);
      }
      case FormulaOp::kOr: {
        const auto a = left_->eval_arithmetized(field, leaf_values);
        const auto b = right_->eval_arithmetized(field, leaf_values);
        return field.sub(field.add(a, b), field.mul(a, b));
      }
      case FormulaOp::kXor: {
        const auto a = left_->eval_arithmetized(field, leaf_values);
        const auto b = right_->eval_arithmetized(field, leaf_values);
        const auto ab = field.mul(a, b);
        return field.sub(field.add(a, b), field.add(ab, ab));
      }
    }
    throw InvalidArgument("Formula: corrupt op");
  }

  std::string to_string() const;

 private:
  Formula() = default;

  FormulaOp op_ = FormulaOp::kConst;
  std::size_t arg_index_ = 0;
  bool const_value_ = false;
  std::shared_ptr<const Formula> left_;
  std::shared_ptr<const Formula> right_;
};

}  // namespace spfe::circuits
