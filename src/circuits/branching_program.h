// Mod-2 branching programs — the function representation behind the
// perfectly secure PSM protocol ([30] in the paper; see psm/psm_bp.h).
//
// A BP is a DAG on vertices 0..V-1 (topologically ordered, source 0, sink
// V-1) whose edges carry guards: constant-true or a literal of one
// function argument's bit. It computes
//     f(x) = #{source->sink paths with all guards true} mod 2.
// Formulas compile to BPs of linear size via series/parallel composition:
// AND = series, XOR = parallel, NOT a = parallel(true-edge, a),
// OR(a,b) = NOT(AND(NOT a, NOT b)).
//
// The algebraic view used by the PSM: let A(x) be the adjacency matrix over
// GF(2) and M(x) = (A - I) with the first column and last row deleted. Then
// M has 1s on the subdiagonal, 0s below, and det(M(x)) = f(x). M is affine
// in the input bits with every entry depending on at most one argument —
// the exact decomposition the PSM randomized encoding needs.
#pragma once

#include <cstdint>
#include <vector>

#include "circuits/formula.h"
#include "common/error.h"

namespace spfe::circuits {

struct BpGuard {
  // Constant-true guard when `is_const` is set; otherwise the literal
  // (argument arg_index's bit bit_index, possibly negated).
  bool is_const = true;
  std::size_t arg_index = 0;
  std::size_t bit_index = 0;
  bool negated = false;

  static BpGuard always() { return {}; }
  static BpGuard literal(std::size_t arg, std::size_t bit, bool negated_ = false) {
    return {false, arg, bit, negated_};
  }

  bool eval(const std::vector<std::uint64_t>& args) const;
};

struct BpEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  BpGuard guard;
};

class BranchingProgram {
 public:
  // `num_vertices` >= 2; source is 0 and sink is num_vertices-1.
  explicit BranchingProgram(std::size_t num_vertices);

  std::size_t num_vertices() const { return v_; }
  const std::vector<BpEdge>& edges() const { return edges_; }
  // Dimension of the path matrix M (= num_vertices - 1).
  std::size_t matrix_dim() const { return v_ - 1; }
  // 1 + max argument index referenced (0 if none).
  std::size_t arity() const;

  void add_edge(std::uint32_t from, std::uint32_t to, BpGuard guard);

  // f(x): path count mod 2 with arguments given as packed bit integers.
  bool eval(const std::vector<std::uint64_t>& args) const;

  // Compiles a Boolean formula (arguments = single bits, arg j = bit 0 of
  // args[j]) into an equivalent mod-2 BP of size O(formula size).
  static BranchingProgram from_formula(const Formula& formula);

  // BP for "argument 0 (a `bits`-bit value) == constant": a series chain of
  // literal guards — the keyword-match kernel of §4.
  static BranchingProgram equals_constant(std::size_t bits, std::uint64_t constant);

 private:
  std::size_t v_;
  std::vector<BpEdge> edges_;
};

}  // namespace spfe::circuits
