#include "circuits/arith_circuit.h"

#include <algorithm>

namespace spfe::circuits {
namespace {

std::uint64_t mod_reduce(unsigned __int128 v, std::uint64_t u) {
  return static_cast<std::uint64_t>(v % u);
}

}  // namespace

ArithCircuit::ArithCircuit(std::size_t num_inputs, std::uint64_t modulus)
    : num_inputs_(num_inputs), modulus_(modulus) {
  if (modulus < 2) throw InvalidArgument("ArithCircuit: modulus must be >= 2");
}

std::uint32_t ArithCircuit::input(std::size_t i) const {
  if (i >= num_inputs_) throw InvalidArgument("ArithCircuit: input index out of range");
  return static_cast<std::uint32_t>(i);
}

void ArithCircuit::check_node(std::uint32_t n) const {
  if (n >= num_inputs_ + gates_.size()) {
    throw InvalidArgument("ArithCircuit: node does not exist yet");
  }
}

std::uint32_t ArithCircuit::append(ArithGate g) {
  gates_.push_back(g);
  return static_cast<std::uint32_t>(num_inputs_ + gates_.size() - 1);
}

std::uint32_t ArithCircuit::constant(std::uint64_t value) {
  return append({ArithOp::kConst, 0, 0, value % modulus_});
}

std::uint32_t ArithCircuit::add(std::uint32_t a, std::uint32_t b) {
  check_node(a);
  check_node(b);
  return append({ArithOp::kAdd, a, b, 0});
}

std::uint32_t ArithCircuit::sub(std::uint32_t a, std::uint32_t b) {
  check_node(a);
  check_node(b);
  return append({ArithOp::kSub, a, b, 0});
}

std::uint32_t ArithCircuit::mul(std::uint32_t a, std::uint32_t b) {
  check_node(a);
  check_node(b);
  return append({ArithOp::kMul, a, b, 0});
}

std::uint32_t ArithCircuit::mul_const(std::uint32_t a, std::uint64_t c) {
  check_node(a);
  return append({ArithOp::kMulConst, a, 0, c % modulus_});
}

void ArithCircuit::add_output(std::uint32_t node) {
  check_node(node);
  outputs_.push_back(node);
}

std::size_t ArithCircuit::mul_gate_count() const {
  std::size_t n = 0;
  for (const auto& g : gates_) {
    if (g.op == ArithOp::kMul) ++n;
  }
  return n;
}

std::size_t ArithCircuit::mult_depth() const {
  std::vector<std::size_t> depth(num_inputs_ + gates_.size(), 0);
  std::size_t max_depth = 0;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const auto& g = gates_[i];
    const std::size_t id = num_inputs_ + i;
    switch (g.op) {
      case ArithOp::kInput:
      case ArithOp::kConst:
        depth[id] = 0;
        break;
      case ArithOp::kAdd:
      case ArithOp::kSub:
        depth[id] = std::max(depth[g.a], depth[g.b]);
        break;
      case ArithOp::kMulConst:
        depth[id] = depth[g.a];
        break;
      case ArithOp::kMul:
        depth[id] = std::max(depth[g.a], depth[g.b]) + 1;
        break;
    }
    max_depth = std::max(max_depth, depth[id]);
  }
  return max_depth;
}

std::vector<std::uint64_t> ArithCircuit::eval(const std::vector<std::uint64_t>& inputs) const {
  if (inputs.size() != num_inputs_) throw InvalidArgument("ArithCircuit::eval: wrong input count");
  std::vector<std::uint64_t> values(num_inputs_ + gates_.size());
  for (std::size_t i = 0; i < num_inputs_; ++i) values[i] = inputs[i] % modulus_;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const auto& g = gates_[i];
    const std::size_t id = num_inputs_ + i;
    switch (g.op) {
      case ArithOp::kInput:
        throw InvalidArgument("ArithCircuit::eval: stray input gate");
      case ArithOp::kConst:
        values[id] = g.constant;
        break;
      case ArithOp::kAdd:
        values[id] = mod_reduce(static_cast<unsigned __int128>(values[g.a]) + values[g.b],
                                modulus_);
        break;
      case ArithOp::kSub:
        values[id] = mod_reduce(
            static_cast<unsigned __int128>(values[g.a]) + modulus_ - values[g.b], modulus_);
        break;
      case ArithOp::kMul:
        values[id] = mod_reduce(static_cast<unsigned __int128>(values[g.a]) * values[g.b],
                                modulus_);
        break;
      case ArithOp::kMulConst:
        values[id] = mod_reduce(static_cast<unsigned __int128>(values[g.a]) * g.constant,
                                modulus_);
        break;
    }
  }
  std::vector<std::uint64_t> out;
  out.reserve(outputs_.size());
  for (const std::uint32_t o : outputs_) out.push_back(values[o]);
  return out;
}

ArithCircuit ArithCircuit::sum(std::size_t m, std::uint64_t modulus) {
  if (m == 0) throw InvalidArgument("ArithCircuit::sum: m must be positive");
  ArithCircuit c(m, modulus);
  std::uint32_t acc = c.input(0);
  for (std::size_t j = 1; j < m; ++j) acc = c.add(acc, c.input(j));
  c.add_output(acc);
  return c;
}

ArithCircuit ArithCircuit::weighted_sum(const std::vector<std::uint64_t>& weights,
                                        std::uint64_t modulus) {
  if (weights.empty()) throw InvalidArgument("ArithCircuit::weighted_sum: need weights");
  ArithCircuit c(weights.size(), modulus);
  std::uint32_t acc = c.mul_const(c.input(0), weights[0]);
  for (std::size_t j = 1; j < weights.size(); ++j) {
    acc = c.add(acc, c.mul_const(c.input(j), weights[j]));
  }
  c.add_output(acc);
  return c;
}

ArithCircuit ArithCircuit::sum_and_sum_of_squares(std::size_t m, std::uint64_t modulus) {
  if (m == 0) throw InvalidArgument("ArithCircuit::sum_and_sum_of_squares: m must be positive");
  ArithCircuit c(m, modulus);
  std::uint32_t sum = c.input(0);
  std::uint32_t sq = c.mul(c.input(0), c.input(0));
  for (std::size_t j = 1; j < m; ++j) {
    sum = c.add(sum, c.input(j));
    sq = c.add(sq, c.mul(c.input(j), c.input(j)));
  }
  c.add_output(sum);
  c.add_output(sq);
  return c;
}

ArithCircuit ArithCircuit::inner_product(std::size_t m, std::uint64_t modulus) {
  if (m == 0) throw InvalidArgument("ArithCircuit::inner_product: m must be positive");
  ArithCircuit c(2 * m, modulus);
  std::uint32_t acc = c.mul(c.input(0), c.input(m));
  for (std::size_t j = 1; j < m; ++j) {
    acc = c.add(acc, c.mul(c.input(j), c.input(m + j)));
  }
  c.add_output(acc);
  return c;
}

ArithCircuit ArithCircuit::sum_squared_deviation(std::size_t m, std::uint64_t keyword,
                                                 std::uint64_t modulus) {
  if (m == 0) throw InvalidArgument("ArithCircuit::sum_squared_deviation: m must be positive");
  ArithCircuit c(m, modulus);
  const std::uint32_t w = c.constant(keyword);
  std::uint32_t acc = 0;
  bool have_acc = false;
  for (std::size_t j = 0; j < m; ++j) {
    const std::uint32_t d = c.sub(c.input(j), w);
    const std::uint32_t sq = c.mul(d, d);
    acc = have_acc ? c.add(acc, sq) : sq;
    have_acc = true;
  }
  c.add_output(acc);
  return c;
}

}  // namespace spfe::circuits
