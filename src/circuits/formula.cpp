#include "circuits/formula.h"

#include <algorithm>

namespace spfe::circuits {

Formula Formula::leaf(std::size_t arg_index) {
  Formula f;
  f.op_ = FormulaOp::kLeaf;
  f.arg_index_ = arg_index;
  return f;
}

Formula Formula::constant(bool value) {
  Formula f;
  f.op_ = FormulaOp::kConst;
  f.const_value_ = value;
  return f;
}

Formula Formula::f_not(Formula a) {
  Formula f;
  f.op_ = FormulaOp::kNot;
  f.left_ = std::make_shared<const Formula>(std::move(a));
  return f;
}

Formula Formula::f_and(Formula a, Formula b) {
  Formula f;
  f.op_ = FormulaOp::kAnd;
  f.left_ = std::make_shared<const Formula>(std::move(a));
  f.right_ = std::make_shared<const Formula>(std::move(b));
  return f;
}

Formula Formula::f_or(Formula a, Formula b) {
  Formula f;
  f.op_ = FormulaOp::kOr;
  f.left_ = std::make_shared<const Formula>(std::move(a));
  f.right_ = std::make_shared<const Formula>(std::move(b));
  return f;
}

Formula Formula::f_xor(Formula a, Formula b) {
  Formula f;
  f.op_ = FormulaOp::kXor;
  f.left_ = std::make_shared<const Formula>(std::move(a));
  f.right_ = std::make_shared<const Formula>(std::move(b));
  return f;
}

namespace {

Formula balanced_tree(FormulaOp op, std::size_t lo, std::size_t hi) {
  if (hi - lo == 1) return Formula::leaf(lo);
  const std::size_t mid = lo + (hi - lo) / 2;
  Formula l = balanced_tree(op, lo, mid);
  Formula r = balanced_tree(op, mid, hi);
  switch (op) {
    case FormulaOp::kAnd:
      return Formula::f_and(std::move(l), std::move(r));
    case FormulaOp::kOr:
      return Formula::f_or(std::move(l), std::move(r));
    case FormulaOp::kXor:
      return Formula::f_xor(std::move(l), std::move(r));
    default:
      throw InvalidArgument("balanced_tree: not a binary op");
  }
}

}  // namespace

Formula Formula::and_tree(std::size_t arity) {
  if (arity == 0) throw InvalidArgument("and_tree: arity must be positive");
  return balanced_tree(FormulaOp::kAnd, 0, arity);
}

Formula Formula::or_tree(std::size_t arity) {
  if (arity == 0) throw InvalidArgument("or_tree: arity must be positive");
  return balanced_tree(FormulaOp::kOr, 0, arity);
}

Formula Formula::parity(std::size_t arity) {
  if (arity == 0) throw InvalidArgument("parity: arity must be positive");
  return balanced_tree(FormulaOp::kXor, 0, arity);
}

std::size_t Formula::size() const {
  switch (op_) {
    case FormulaOp::kLeaf:
      return 1;
    case FormulaOp::kConst:
      return 0;
    case FormulaOp::kNot:
      return left_->size();
    default:
      return left_->size() + right_->size();
  }
}

std::size_t Formula::arity() const {
  switch (op_) {
    case FormulaOp::kLeaf:
      return arg_index_ + 1;
    case FormulaOp::kConst:
      return 0;
    case FormulaOp::kNot:
      return left_->arity();
    default:
      return std::max(left_->arity(), right_->arity());
  }
}

bool Formula::eval(const std::vector<bool>& args) const {
  switch (op_) {
    case FormulaOp::kLeaf:
      if (arg_index_ >= args.size()) throw InvalidArgument("Formula::eval: missing argument");
      return args[arg_index_];
    case FormulaOp::kConst:
      return const_value_;
    case FormulaOp::kNot:
      return !left_->eval(args);
    case FormulaOp::kAnd:
      return left_->eval(args) && right_->eval(args);
    case FormulaOp::kOr:
      return left_->eval(args) || right_->eval(args);
    case FormulaOp::kXor:
      return left_->eval(args) != right_->eval(args);
  }
  throw InvalidArgument("Formula::eval: corrupt op");
}

std::size_t Formula::arith_degree(std::size_t leaf_degree) const {
  switch (op_) {
    case FormulaOp::kLeaf:
      return leaf_degree;
    case FormulaOp::kConst:
      return 0;
    case FormulaOp::kNot:
      return left_->arith_degree(leaf_degree);
    default:
      return left_->arith_degree(leaf_degree) + right_->arith_degree(leaf_degree);
  }
}

std::string Formula::to_string() const {
  switch (op_) {
    case FormulaOp::kLeaf:
      return "x" + std::to_string(arg_index_);
    case FormulaOp::kConst:
      return const_value_ ? "1" : "0";
    case FormulaOp::kNot:
      return "~" + left_->to_string();
    case FormulaOp::kAnd:
      return "(" + left_->to_string() + " & " + right_->to_string() + ")";
    case FormulaOp::kOr:
      return "(" + left_->to_string() + " | " + right_->to_string() + ")";
    case FormulaOp::kXor:
      return "(" + left_->to_string() + " ^ " + right_->to_string() + ")";
  }
  return "?";
}

// --- Parser: precedence ~ > & > ^ > | -------------------------------------
namespace {

class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  Formula parse() {
    Formula f = parse_or();
    skip_ws();
    if (pos_ != s_.size()) throw InvalidArgument("Formula::parse: trailing characters");
    return f;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Formula parse_or() {
    Formula f = parse_xor();
    while (consume('|')) f = Formula::f_or(std::move(f), parse_xor());
    return f;
  }

  Formula parse_xor() {
    Formula f = parse_and();
    while (consume('^')) f = Formula::f_xor(std::move(f), parse_and());
    return f;
  }

  Formula parse_and() {
    Formula f = parse_unary();
    while (consume('&')) f = Formula::f_and(std::move(f), parse_unary());
    return f;
  }

  Formula parse_unary() {
    if (consume('~')) return Formula::f_not(parse_unary());
    return parse_atom();
  }

  Formula parse_atom() {
    skip_ws();
    if (pos_ >= s_.size()) throw InvalidArgument("Formula::parse: unexpected end");
    if (consume('(')) {
      Formula f = parse_or();
      if (!consume(')')) throw InvalidArgument("Formula::parse: missing ')'");
      return f;
    }
    const char c = s_[pos_];
    if (c == '0' || c == '1') {
      ++pos_;
      return Formula::constant(c == '1');
    }
    if (c == 'x') {
      ++pos_;
      std::size_t idx = 0;
      bool any = false;
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
        idx = idx * 10 + static_cast<std::size_t>(s_[pos_] - '0');
        ++pos_;
        any = true;
      }
      if (!any) throw InvalidArgument("Formula::parse: variable needs an index");
      return Formula::leaf(idx);
    }
    throw InvalidArgument("Formula::parse: unexpected character");
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Formula Formula::parse(const std::string& expr) { return Parser(expr).parse(); }

}  // namespace spfe::circuits
