// Arithmetic circuits over Z_u — the representation the paper's §3.3.4
// light-weight MPC protocol evaluates gate-by-gate on Paillier ciphertexts.
//
// Gate set matches §3.3.4 exactly: addition, multiplication by a constant
// known to the server, and full multiplication (the only interactive gate).
// `mult_depth()` gives the round complexity of the §3.3.4 protocol.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"

namespace spfe::circuits {

enum class ArithOp : std::uint8_t { kInput, kConst, kAdd, kSub, kMul, kMulConst };

struct ArithGate {
  ArithOp op;
  std::uint32_t a = 0;        // gate/input index (for kInput: input slot)
  std::uint32_t b = 0;        // second operand where applicable
  std::uint64_t constant = 0; // for kConst / kMulConst
};

class ArithCircuit {
 public:
  // `modulus` is u, the ring Z_u the circuit computes over (u >= 2).
  ArithCircuit(std::size_t num_inputs, std::uint64_t modulus);

  std::uint64_t modulus() const { return modulus_; }
  std::size_t num_inputs() const { return num_inputs_; }
  const std::vector<ArithGate>& gates() const { return gates_; }
  const std::vector<std::uint32_t>& outputs() const { return outputs_; }

  // Node ids: 0..num_inputs-1 are inputs, then one id per gate.
  std::uint32_t input(std::size_t i) const;
  std::uint32_t constant(std::uint64_t value);
  std::uint32_t add(std::uint32_t a, std::uint32_t b);
  std::uint32_t sub(std::uint32_t a, std::uint32_t b);
  std::uint32_t mul(std::uint32_t a, std::uint32_t b);
  std::uint32_t mul_const(std::uint32_t a, std::uint64_t c);

  void add_output(std::uint32_t node);

  std::size_t size() const { return gates_.size(); }
  std::size_t mul_gate_count() const;
  // Multiplicative depth: rounds of the §3.3.4 protocol.
  std::size_t mult_depth() const;

  std::vector<std::uint64_t> eval(const std::vector<std::uint64_t>& inputs) const;

  // --- Builders for the §4 statistics ---------------------------------------
  // All take the number of selected items m and return a circuit whose m
  // inputs are the selected data items.
  static ArithCircuit sum(std::size_t m, std::uint64_t modulus);
  static ArithCircuit weighted_sum(const std::vector<std::uint64_t>& weights,
                                   std::uint64_t modulus);
  // Outputs (sum, sum of squares): the §4 "package" from which the client
  // derives average and variance.
  static ArithCircuit sum_and_sum_of_squares(std::size_t m, std::uint64_t modulus);
  static ArithCircuit inner_product(std::size_t m, std::uint64_t modulus);  // 2m inputs
  // Evaluates sum_j (x_j - w)^2 for keyword w known at build time; used as a
  // "distance to keyword" statistic.
  static ArithCircuit sum_squared_deviation(std::size_t m, std::uint64_t keyword,
                                            std::uint64_t modulus);

 private:
  std::uint32_t append(ArithGate g);
  void check_node(std::uint32_t n) const;

  std::size_t num_inputs_;
  std::uint64_t modulus_;
  std::vector<ArithGate> gates_;
  std::vector<std::uint32_t> outputs_;
};

}  // namespace spfe::circuits
