// Boolean circuits (DAGs) — the function representation consumed by Yao's
// garbled-circuit protocol (src/mpc/yao) and by the computational PSM.
//
// Wire 0..num_inputs-1 are input wires; gates append new wires. XOR and NOT
// are free under the free-XOR garbling optimization, so builders prefer
// XOR-heavy decompositions; `and_gate_count()` is the cost metric that
// matches the paper's O(kappa * C_f) communication term.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace spfe::circuits {

using WireId = std::uint32_t;

enum class GateKind : std::uint8_t { kXor, kAnd, kOr, kNot, kConstZero, kConstOne };

struct Gate {
  GateKind kind;
  WireId a = 0;  // unused for constants
  WireId b = 0;  // unused for NOT and constants
};

// A contiguous little-endian bundle of wires representing an integer.
using WireBundle = std::vector<WireId>;

class BooleanCircuit {
 public:
  explicit BooleanCircuit(std::size_t num_inputs);

  std::size_t num_inputs() const { return num_inputs_; }
  std::size_t num_wires() const { return num_inputs_ + gates_.size(); }
  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<WireId>& outputs() const { return outputs_; }

  WireId input(std::size_t i) const;
  WireId xor_gate(WireId a, WireId b);
  WireId and_gate(WireId a, WireId b);
  WireId or_gate(WireId a, WireId b);
  WireId not_gate(WireId a);
  WireId const_wire(bool value);

  void add_output(WireId w);
  void add_outputs(const WireBundle& ws);

  // Gate-count metrics: total size and the garbling-relevant AND/OR count.
  std::size_t size() const { return gates_.size(); }
  std::size_t nonfree_gate_count() const;

  std::vector<bool> eval(const std::vector<bool>& inputs) const;

 private:
  WireId append(GateKind kind, WireId a, WireId b);
  void check_wire(WireId w) const;

  std::size_t num_inputs_;
  std::vector<Gate> gates_;
  std::vector<WireId> outputs_;
};

// --- Builders used by the SPFE function-evaluation phase -------------------

// a + b over `width` bits, result truncated to `width` bits (addition in
// Z_{2^width}; exactly the share-reconstruction step of §3.3).
WireBundle build_add_mod(BooleanCircuit& c, const WireBundle& a, const WireBundle& b);

// a + b with full carry: result has max(|a|,|b|) + 1 bits.
WireBundle build_add(BooleanCircuit& c, const WireBundle& a, const WireBundle& b);

// a - b over equal widths, wrapping mod 2^width (two's complement).
WireBundle build_sub_mod(BooleanCircuit& c, const WireBundle& a, const WireBundle& b);

// (a + b) mod `modulus` where a, b < modulus: one adder, one comparison
// against the constant, one conditional subtract. Used to reconstruct
// prime-field additive shares inside Yao circuits.
WireBundle build_add_mod_const(BooleanCircuit& c, const WireBundle& a, const WireBundle& b,
                               std::uint64_t modulus);

// Single wire: 1 iff bundle equals the given constant.
WireId build_eq_const(BooleanCircuit& c, const WireBundle& a, std::uint64_t value);

// Single wire: 1 iff a == b (bundles of equal width).
WireId build_eq(BooleanCircuit& c, const WireBundle& a, const WireBundle& b);

// Single wire: 1 iff a < b as unsigned integers (equal widths).
WireId build_less_than(BooleanCircuit& c, const WireBundle& a, const WireBundle& b);

// Sum of single bits as a binary counter (width = ceil(log2(bits+1))).
WireBundle build_popcount(BooleanCircuit& c, const std::vector<WireId>& bits);

// Adder tree summing equal-width bundles; result width grows by log2(count).
WireBundle build_sum_tree(BooleanCircuit& c, const std::vector<WireBundle>& items);

// sel ? a : b, bundle-wise (equal widths).
WireBundle build_mux(BooleanCircuit& c, WireId sel, const WireBundle& a, const WireBundle& b);

// Zero-extends a bundle to `width` wires.
WireBundle zero_extend(BooleanCircuit& c, const WireBundle& a, std::size_t width);

}  // namespace spfe::circuits
