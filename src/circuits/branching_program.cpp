#include "circuits/branching_program.h"

#include <algorithm>

namespace spfe::circuits {

bool BpGuard::eval(const std::vector<std::uint64_t>& args) const {
  if (is_const) return true;
  if (arg_index >= args.size()) throw InvalidArgument("BpGuard: missing argument");
  const bool bit = ((args[arg_index] >> bit_index) & 1) != 0;
  return negated ? !bit : bit;
}

BranchingProgram::BranchingProgram(std::size_t num_vertices) : v_(num_vertices) {
  if (num_vertices < 2) throw InvalidArgument("BranchingProgram: need at least 2 vertices");
}

void BranchingProgram::add_edge(std::uint32_t from, std::uint32_t to, BpGuard guard) {
  if (from >= to) throw InvalidArgument("BranchingProgram: edges must go forward");
  if (to >= v_) throw InvalidArgument("BranchingProgram: vertex out of range");
  edges_.push_back({from, to, guard});
}

std::size_t BranchingProgram::arity() const {
  std::size_t a = 0;
  for (const BpEdge& e : edges_) {
    if (!e.guard.is_const) a = std::max(a, e.guard.arg_index + 1);
  }
  return a;
}

bool BranchingProgram::eval(const std::vector<std::uint64_t>& args) const {
  // Path counting mod 2 by topological DP over vertex ids.
  std::vector<std::uint8_t> count(v_, 0);
  count[0] = 1;
  // Edges may be in any order; process grouped by source in id order.
  std::vector<std::vector<const BpEdge*>> by_source(v_);
  for (const BpEdge& e : edges_) by_source[e.from].push_back(&e);
  for (std::size_t u = 0; u < v_; ++u) {
    if (count[u] == 0) continue;
    for (const BpEdge* e : by_source[u]) {
      if (e->guard.eval(args)) count[e->to] ^= count[u];
    }
  }
  return count[v_ - 1] != 0;
}

namespace {

// Recursive series/parallel compiler. Returns a BP fragment as edges over a
// private vertex numbering with designated source/sink; `offset` renumbers.
struct Fragment {
  std::size_t vertices;  // includes source (0) and sink (vertices-1)
  std::vector<BpEdge> edges;
};

Fragment compile(const Formula& f);

Fragment leaf_fragment(BpGuard guard) {
  Fragment frag;
  frag.vertices = 2;
  frag.edges.push_back({0, 1, guard});
  return frag;
}

// AND: series composition (sink of a = source of b).
Fragment series(Fragment a, Fragment b) {
  Fragment out;
  out.vertices = a.vertices + b.vertices - 1;
  out.edges = std::move(a.edges);
  const std::uint32_t shift = static_cast<std::uint32_t>(a.vertices - 1);
  for (BpEdge e : b.edges) {
    e.from += shift;
    e.to += shift;
    out.edges.push_back(e);
  }
  return out;
}

// XOR: parallel composition sharing source and sink. Internal vertices of b
// are renumbered after a's; the shared sink must stay the largest id, so
// a's sink is moved to the end.
Fragment parallel(Fragment a, Fragment b) {
  Fragment out;
  // Layout: source 0, a-internals, b-internals, shared sink.
  const std::size_t a_internal = a.vertices - 2;
  const std::size_t b_internal = b.vertices - 2;
  out.vertices = 2 + a_internal + b_internal;
  const std::uint32_t sink = static_cast<std::uint32_t>(out.vertices - 1);
  auto remap_a = [&](std::uint32_t v) -> std::uint32_t {
    if (v == 0) return 0;
    if (v == a.vertices - 1) return sink;
    return v;  // internal ids 1..a_internal stay
  };
  auto remap_b = [&](std::uint32_t v) -> std::uint32_t {
    if (v == 0) return 0;
    if (v == b.vertices - 1) return sink;
    return static_cast<std::uint32_t>(v + a_internal);  // shift internals
  };
  for (const BpEdge& e : a.edges) out.edges.push_back({remap_a(e.from), remap_a(e.to), e.guard});
  for (const BpEdge& e : b.edges) out.edges.push_back({remap_b(e.from), remap_b(e.to), e.guard});
  return out;
}

Fragment negate(Fragment a) {
  // NOT a = 1 XOR a: parallel with a constant-true edge.
  return parallel(leaf_fragment(BpGuard::always()), std::move(a));
}

Fragment compile(const Formula& f) {
  switch (f.op()) {
    case FormulaOp::kLeaf:
      return leaf_fragment(BpGuard::literal(f.arg_index(), 0));
    case FormulaOp::kConst:
      // Constant 1: a single always-true edge; constant 0: parallel of two
      // always-true edges (two paths cancel mod 2).
      return f.const_value()
                 ? leaf_fragment(BpGuard::always())
                 : parallel(leaf_fragment(BpGuard::always()), leaf_fragment(BpGuard::always()));
    case FormulaOp::kNot:
      return negate(compile(f.left()));
    case FormulaOp::kAnd:
      return series(compile(f.left()), compile(f.right()));
    case FormulaOp::kXor:
      return parallel(compile(f.left()), compile(f.right()));
    case FormulaOp::kOr: {
      // a | b = ~(~a & ~b)
      return negate(series(negate(compile(f.left())), negate(compile(f.right()))));
    }
  }
  throw InvalidArgument("BranchingProgram: corrupt formula op");
}

}  // namespace

BranchingProgram BranchingProgram::from_formula(const Formula& formula) {
  const Fragment frag = compile(formula);
  BranchingProgram bp(frag.vertices);
  for (const BpEdge& e : frag.edges) {
    // Fragment numbering may have from > to for edges into the shared sink
    // after remapping; normalize is unnecessary because series/parallel only
    // produce forward edges by construction — but verify defensively.
    bp.add_edge(e.from, e.to, e.guard);
  }
  return bp;
}

BranchingProgram BranchingProgram::equals_constant(std::size_t bits, std::uint64_t constant) {
  if (bits == 0 || bits > 63) {
    throw InvalidArgument("BranchingProgram::equals_constant: bits in [1, 63]");
  }
  if (bits < 64 && (constant >> bits) != 0) {
    throw InvalidArgument("BranchingProgram::equals_constant: constant too wide");
  }
  BranchingProgram bp(bits + 1);
  for (std::size_t b = 0; b < bits; ++b) {
    const bool want = ((constant >> b) & 1) != 0;
    bp.add_edge(static_cast<std::uint32_t>(b), static_cast<std::uint32_t>(b + 1),
                BpGuard::literal(0, b, /*negated=*/!want));
  }
  return bp;
}

}  // namespace spfe::circuits
