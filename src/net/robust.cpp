#include "net/robust.h"

#include <algorithm>

namespace spfe::net {

const char* server_fate_name(ServerFate fate) {
  switch (fate) {
    case ServerFate::kOk:
      return "ok";
    case ServerFate::kUnavailable:
      return "unavailable";
    case ServerFate::kMalformed:
      return "malformed";
    case ServerFate::kCorrected:
      return "corrected";
    case ServerFate::kSpare:
      return "spare";
  }
  return "?";
}

const char* blame_name(Blame blame) {
  switch (blame) {
    case Blame::kNone:
      return "none";
    case Blame::kByzantine:
      return "byzantine";
    case Blame::kCrashed:
      return "crashed";
    case Blame::kStraggler:
      return "straggler";
  }
  return "?";
}

namespace {

void append_verdict_lines(std::string& out, const std::vector<ServerReport>& verdicts,
                          const char* indent) {
  for (std::size_t s = 0; s < verdicts.size(); ++s) {
    if (verdicts[s].fate == ServerFate::kOk) continue;
    out += "\n";
    out += indent;
    out += "server " + std::to_string(s) + ": " + server_fate_name(verdicts[s].fate);
    if (verdicts[s].blame != Blame::kNone) {
      out += " blame=" + std::string(blame_name(verdicts[s].blame));
    }
    if (!verdicts[s].detail.empty()) out += " (" + verdicts[s].detail + ")";
    if (verdicts[s].answer_us > 0) {
      out += " [answer at +" + std::to_string(verdicts[s].answer_us) + "us]";
    }
  }
}

}  // namespace

std::string AttemptRecord::summary() const {
  std::string out = "attempt " + std::to_string(attempt) + ": ";
  out += failure_reason.empty() ? "decoded" : failure_reason;
  if (ended_us > started_us) {
    out += " [" + std::to_string(started_us) + "us..+" + std::to_string(ended_us - started_us) +
           "us]";
  }
  append_verdict_lines(out, verdicts, "    ");
  return out;
}

std::string RobustnessReport::summary() const {
  std::string out = success ? "robust run succeeded" : "robust run FAILED";
  out += " after " + std::to_string(attempts) + " attempt(s): " + std::to_string(servers) +
         " servers, " + std::to_string(erasures) + " erasure(s), " +
         std::to_string(errors_corrected) + " corrected error(s)";
  if (completion_us > 0) out += ", " + std::to_string(completion_us) + "us virtual time";
  if (!failure_reason.empty()) out += "; " + failure_reason;
  append_verdict_lines(out, verdicts, "  ");
  // Earlier attempts (the final attempt's verdicts are already shown above).
  if (history.size() > 1) {
    for (std::size_t i = 0; i + 1 < history.size(); ++i) {
      out += "\n  " + history[i].summary();
    }
  }
  return out;
}

void drain_star_network(StarNetwork& net) {
  // A clocked network discards abandoned traffic without waiting for it —
  // flushing through timed receives would charge the client virtual time
  // for answers it no longer wants.
  if (auto* sim = dynamic_cast<SimStarNetwork*>(&net)) {
    sim->discard_in_flight();
    return;
  }
  for (std::size_t s = 0; s < net.num_servers(); ++s) {
    // Each receive either pops a message, clears a delay mark, or (for a
    // crashed server) clears the whole queue — so both loops terminate.
    while (net.server_has_message(s)) {
      try {
        net.server_receive(s);
      } catch (const ServerUnavailable&) {
      }
    }
    while (net.client_has_message(s)) {
      try {
        net.client_receive(s);
      } catch (const ServerUnavailable&) {
      }
    }
  }
}

namespace detail {

std::uint64_t backoff_wait_us(const TimingPolicy& tp, std::size_t attempt) {
  std::uint64_t wait = tp.backoff_base_us;
  for (std::size_t i = 1; i < attempt && wait < tp.backoff_max_us; ++i) {
    wait *= 2;
  }
  wait = std::min(wait, tp.backoff_max_us);
  const std::uint64_t jitter_cap =
      wait / 1000 * tp.backoff_jitter_permille +
      wait % 1000 * tp.backoff_jitter_permille / 1000;
  if (jitter_cap == 0) return wait;
  crypto::Prg prg(tp.backoff_seed);
  return wait + prg.fork("backoff-" + std::to_string(attempt)).uniform(jitter_cap + 1);
}

std::vector<std::size_t> resolve_send_order(const TimingPolicy& tp, std::size_t k) {
  if (tp.send_order.empty()) {
    std::vector<std::size_t> order(k);
    for (std::size_t s = 0; s < k; ++s) order[s] = s;
    return order;
  }
  if (tp.send_order.size() != k) {
    throw InvalidArgument("TimingPolicy: send_order must cover every server");
  }
  std::vector<char> seen(k, 0);
  for (const std::size_t s : tp.send_order) {
    if (s >= k || seen[s] != 0) {
      throw InvalidArgument("TimingPolicy: send_order must be a permutation of 0..k-1");
    }
    seen[s] = 1;
  }
  return tp.send_order;
}

std::vector<std::size_t> deprioritize_blamed(const std::vector<std::size_t>& order,
                                             const std::vector<ServerReport>& verdicts) {
  // Culpability rank: no evidence < slow < silent < caught lying. A liar is
  // the worst retry candidate — it *will* spend error budget again — while
  // a straggler may simply have been unlucky.
  const auto rank = [&](std::size_t s) -> int {
    if (s >= verdicts.size()) return 0;
    switch (verdicts[s].blame) {
      case Blame::kNone:
        return 0;
      case Blame::kStraggler:
        return 1;
      case Blame::kCrashed:
        return 2;
      case Blame::kByzantine:
        return 3;
    }
    return 0;
  };
  std::vector<std::size_t> out = order;
  std::stable_sort(out.begin(), out.end(),
                   [&](std::size_t a, std::size_t b) { return rank(a) < rank(b); });
  return out;
}

}  // namespace detail

}  // namespace spfe::net
