#include "net/robust.h"

namespace spfe::net {

const char* server_fate_name(ServerFate fate) {
  switch (fate) {
    case ServerFate::kOk:
      return "ok";
    case ServerFate::kUnavailable:
      return "unavailable";
    case ServerFate::kMalformed:
      return "malformed";
    case ServerFate::kCorrected:
      return "corrected";
  }
  return "?";
}

std::string RobustnessReport::summary() const {
  std::string out = success ? "robust run succeeded" : "robust run FAILED";
  out += " after " + std::to_string(attempts) + " attempt(s): " + std::to_string(servers) +
         " servers, " + std::to_string(erasures) + " erasure(s), " +
         std::to_string(errors_corrected) + " corrected error(s)";
  if (!failure_reason.empty()) out += "; " + failure_reason;
  for (std::size_t s = 0; s < verdicts.size(); ++s) {
    if (verdicts[s].fate == ServerFate::kOk) continue;
    out += "\n  server " + std::to_string(s) + ": " + server_fate_name(verdicts[s].fate);
    if (!verdicts[s].detail.empty()) out += " (" + verdicts[s].detail + ")";
  }
  return out;
}

void drain_star_network(StarNetwork& net) {
  for (std::size_t s = 0; s < net.num_servers(); ++s) {
    // Each receive either pops a message, clears a delay mark, or (for a
    // crashed server) clears the whole queue — so both loops terminate.
    while (net.server_has_message(s)) {
      try {
        net.server_receive(s);
      } catch (const ServerUnavailable&) {
      }
    }
    while (net.client_has_message(s)) {
      try {
        net.client_receive(s);
      } catch (const ServerUnavailable&) {
      }
    }
  }
}

}  // namespace spfe::net
