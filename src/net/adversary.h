// Adaptive Byzantine adversary engine: strategic, colluding, content-aware.
//
// Every fault the PR 4 `FaultPlan` injects is *oblivious* — a seeded
// schedule fixed before the protocol starts, blind to message content. Real
// attacks on deployed PIR-style protocols are not: the Bringer–Chabanne
// EPIR break and the Beimel–Nissim–Omri privacy decomposition both condition
// server misbehavior on what the server *sees*. This layer models that
// adversary class:
//
//   * an `AdversaryStrategy` drives a set of controlled servers. Each
//     controlled server exposes its full local view (`LinkView`): every
//     query received and answer sent on its link, with virtual timestamps
//     and per-direction ordinals (for the one-round star protocols the
//     query ordinal IS the robust attempt counter on that link);
//   * a `Coalition` shares all member views plus free-form scratch slots,
//     so <= e colluders can coordinate (agree on one forged polynomial,
//     crash in the same instant, compare query arrival times to detect
//     hedge dispatches);
//   * the networks (`FaultyStarNetwork`, `SimStarNetwork`) interpose the
//     engine on the server->client response path: a controlled server's
//     honest answer can be sent, replaced, dropped, or delayed — decided
//     per message, after reading it.
//
// Metering contract: a replaced answer is a real transmission (metered at
// its actual size); a dropped answer is byzantine *silence* — nothing was
// transmitted, nothing is metered (same as a crashed server); a delayed
// answer is metered normally and arrives `delay_us` late (over the untimed
// FaultyStarNetwork, "late" degrades to the one-attempt kDelayHalfRound
// mark).
//
// Determinism: strategies are pure functions of (local views, coalition
// state, their own config). No wall clocks, no global randomness — a
// schedule that includes an adversary replays byte-identically at any
// SPFE_THREADS (asserted in tests/adversary_test.cpp).
//
// Shipped strategy library (see DESIGN.md "Threat model matrix"):
//   consistent-lie          colluders answer on P + delta for one shared
//                           nonzero delta: every corrupted point lies on a
//                           common degree-d polynomial — the attack class
//                           that defeats naive d+1 decoding and the reason
//                           the early-decode quorum is d + 1 + 2e
//   crash-at-worst-time     answer honestly until trusted, then all
//                           colluders go silent in the same attempt —
//                           *after* swallowing the query, so the client
//                           burns its full deadline per colluder at the
//                           moment the quorum deficit is maximal
//   equivocate-across-retries  honest on attempt 0, lie on every retry:
//                           probes whether re-randomized retries are
//                           independently protected
//   targeted-straggle       colluders compare query arrival times; a member
//                           whose query arrived long after the coalition's
//                           earliest (i.e. it was dispatched as a hedge
//                           spare) straggles its answer to defeat the
//                           TimingPolicy
//   selective-failure       misbehave only when the observed query bytes
//                           satisfy a predicate — the classic privacy
//                           attack on retry protocols, answered by the
//                           re-randomization harness in
//                           tests/adversary_test.cpp
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "crypto/prg.h"

namespace spfe::net {

// One message observed on a controlled server's link, as the server saw it
// (queries post-wire-fault, answers pre-interposition).
struct LinkEvent {
  enum class Dir : std::uint8_t { kQueryIn, kAnswerOut };
  Dir dir = Dir::kQueryIn;
  Bytes payload;
  // Virtual time the message landed on / left the server's local timeline
  // (0 over untimed networks).
  std::uint64_t at_us = 0;
  // Per-direction ordinal on this link. One-round star protocols send one
  // query per attempt per queried server, so for them the query ordinal is
  // the attempt counter as this link experienced it (a hedge spare skips
  // the attempts it was never dispatched in).
  std::size_t ordinal = 0;
};

// Full local view of one controlled server.
struct LinkView {
  std::size_t server = 0;
  std::vector<LinkEvent> events;
  std::size_t queries_seen = 0;
  std::size_t answers_sent = 0;

  // Most recent query on this link, or nullptr before any arrived.
  const LinkEvent* last_query() const;
};

// Shared state of <= e colluding servers: every member reads every other
// member's full view, plus named u64 scratch slots for agreed-on values
// (a forged delta, a crash trigger, ...).
class Coalition {
 public:
  explicit Coalition(std::vector<std::size_t> members);

  const std::vector<std::size_t>& members() const { return members_; }
  std::size_t size() const { return members_.size(); }
  bool contains(std::size_t server) const;

  const LinkView& view_of(std::size_t server) const;

  // Earliest virtual arrival time among the members' *most recent* queries
  // (nullopt until any member has seen a query). Targeted-straggle uses the
  // gap to this time to recognize a hedge dispatch.
  std::optional<std::uint64_t> earliest_last_query_us() const;

  // Named shared scratch; created zero on first access.
  std::uint64_t& slot(const std::string& key) { return slots_[key]; }
  bool has_slot(const std::string& key) const { return slots_.count(key) != 0; }

 private:
  friend class AdversaryEngine;
  std::vector<std::size_t> members_;
  std::map<std::size_t, LinkView> views_;
  std::map<std::string, std::uint64_t> slots_;
};

// What a controlled server does with the honest answer it is about to send.
struct AdversaryAction {
  enum class Kind : std::uint8_t { kSendHonest, kReplace, kDrop, kDelay };
  Kind kind = Kind::kSendHonest;
  Bytes replacement;         // kReplace: the forged wire bytes
  std::uint64_t delay_us = 0;  // kDelay: extra answer latency

  static AdversaryAction honest() { return {}; }
  static AdversaryAction replace(Bytes forged);
  static AdversaryAction drop();
  static AdversaryAction delay(std::uint64_t delay_us);
};

const char* adversary_action_name(AdversaryAction::Kind kind);

class AdversaryStrategy {
 public:
  virtual ~AdversaryStrategy() = default;
  virtual const char* name() const = 0;

  // A controlled server received `link.events.back()` (a query).
  virtual void on_query(const LinkView& link, Coalition& coalition) {
    (void)link;
    (void)coalition;
  }
  // A controlled server is about to send `honest_answer`.
  virtual AdversaryAction on_answer(const LinkView& link, BytesView honest_answer,
                                    Coalition& coalition) = 0;
};

// Per-server interposition tallies (for tests and reports).
struct AdversaryStats {
  std::uint64_t queries_observed = 0;
  std::uint64_t answers_honest = 0;
  std::uint64_t answers_forged = 0;
  std::uint64_t answers_dropped = 0;
  std::uint64_t answers_delayed = 0;
};

// Binds one strategy to one coalition and interposes on a star network.
// The engine outlives the network runs that reference it (the networks hold
// a non-owning pointer; tests stack-allocate engine above network).
class AdversaryEngine {
 public:
  AdversaryEngine(std::shared_ptr<AdversaryStrategy> strategy,
                  std::vector<std::size_t> controlled);

  bool controls(std::size_t server) const { return coalition_.contains(server); }
  const Coalition& coalition() const { return coalition_; }
  const AdversaryStrategy& strategy() const { return *strategy_; }
  const LinkView& view(std::size_t server) const { return coalition_.view_of(server); }
  const AdversaryStats& stats(std::size_t server) const;
  AdversaryStats total_stats() const;

  // Network hooks. Only ever called for controlled servers.
  void observe_query(std::size_t server, BytesView query, std::uint64_t at_us);
  AdversaryAction intercept_answer(std::size_t server, BytesView honest_answer,
                                   std::uint64_t at_us);

 private:
  LinkView& mutable_view(std::size_t server);

  std::shared_ptr<AdversaryStrategy> strategy_;
  Coalition coalition_;
  std::map<std::size_t, AdversaryStats> stats_;
};

// ---------------------------------------------------------------------------
// Strategy library.

// Reads the leading 8-byte little-endian field element of `honest`, adds
// `delta` mod `modulus`, and returns the re-serialized answer (trailing
// bytes preserved). Nullopt when the answer is too short to forge.
std::optional<Bytes> forge_field_answer(BytesView honest, std::uint64_t modulus,
                                        std::uint64_t delta);

// Colluders answer y + delta(x) for one shared polynomial offset. The
// shipped offset is the constant delta (degree 0): whatever the honest
// answers' polynomial P is, every corrupted point lies on P + delta — a
// *consistent* degree-d polynomial, indistinguishable from honest points by
// any per-point check. At the bare d+1 interpolation quorum a single such
// lie decodes to a wrong-but-consistent polynomial (the tightness witness
// in tests/adversary_test.cpp); at d + 1 + 2e, Berlekamp–Welch corrects up
// to e of them.
class ConsistentLieStrategy : public AdversaryStrategy {
 public:
  ConsistentLieStrategy(std::uint64_t modulus, std::uint64_t delta);

  const char* name() const override { return "consistent-lie"; }
  AdversaryAction on_answer(const LinkView& link, BytesView honest_answer,
                            Coalition& coalition) override;

 private:
  std::uint64_t modulus_;
  std::uint64_t delta_;
};

// Answer honestly for `honest_attempts` queries (earning healthy-first send
// priority), then every colluder goes silent in the same attempt — the
// coalition-wide maximum query ordinal arms the trigger, so a member that
// was held back as a spare crashes in lockstep with the members that were
// queried. Silence happens *after* the query is swallowed: the client has
// already committed an attempt deadline to this server, which is the worst
// virtual instant to learn nothing is coming (crash-at-worst-time).
class CrashAtWorstTimeStrategy : public AdversaryStrategy {
 public:
  explicit CrashAtWorstTimeStrategy(std::size_t honest_attempts = 1);

  const char* name() const override { return "crash-at-worst-time"; }
  void on_query(const LinkView& link, Coalition& coalition) override;
  AdversaryAction on_answer(const LinkView& link, BytesView honest_answer,
                            Coalition& coalition) override;

 private:
  std::size_t honest_attempts_;
};

// Honest on each link's first query, forged (consistent-lie style) on every
// later one: probes whether the re-randomized retry path is as protected as
// the first attempt.
class EquivocateAcrossRetriesStrategy : public AdversaryStrategy {
 public:
  EquivocateAcrossRetriesStrategy(std::uint64_t modulus, std::uint64_t delta);

  const char* name() const override { return "equivocate-across-retries"; }
  AdversaryAction on_answer(const LinkView& link, BytesView honest_answer,
                            Coalition& coalition) override;

 private:
  std::uint64_t modulus_;
  std::uint64_t delta_;
};

// Straggle only hedge dispatches: a colluder whose query arrived more than
// `spare_gap_us` after the coalition's earliest concurrent query was
// dispatched late — i.e. it is a hedge spare sent to rescue the attempt —
// and delays its answer by `straggle_us` to defeat the TimingPolicy's
// rescue. Primaries answer honestly (no budget spent, nothing for the
// health tracker to demote). Needs virtual timestamps; over untimed
// networks every arrival time is 0 and the strategy stays honest.
class TargetedStraggleStrategy : public AdversaryStrategy {
 public:
  TargetedStraggleStrategy(std::uint64_t spare_gap_us, std::uint64_t straggle_us);

  const char* name() const override { return "targeted-straggle"; }
  AdversaryAction on_answer(const LinkView& link, BytesView honest_answer,
                            Coalition& coalition) override;

 private:
  std::uint64_t spare_gap_us_;
  std::uint64_t straggle_us_;
};

// Misbehave only when the observed query bytes satisfy `predicate` — the
// classic selective-failure privacy attack on retry protocols: if retries
// were not re-randomized, which attempts the adversary kills would be
// correlated with the client's secret. The harness in
// tests/adversary_test.cpp verifies the kill pattern is statistically
// independent of the retrieved index.
class SelectiveFailureStrategy : public AdversaryStrategy {
 public:
  using Predicate = std::function<bool(BytesView query)>;

  SelectiveFailureStrategy(Predicate predicate, AdversaryAction on_match);

  // Canonical content predicate: true when `query[byte_index] & mask` is
  // nonzero (byte_index reduced mod the query size; empty queries never
  // match).
  static Predicate byte_mask(std::size_t byte_index, std::uint8_t mask = 0x01);

  const char* name() const override { return "selective-failure"; }
  AdversaryAction on_answer(const LinkView& link, BytesView honest_answer,
                            Coalition& coalition) override;

  // How often the predicate matched (kills) vs not — the adversary's whole
  // observable decision sequence, exposed for the independence harness.
  std::uint64_t matches() const { return matches_; }
  std::uint64_t misses() const { return misses_; }

 private:
  Predicate predicate_;
  AdversaryAction on_match_;
  std::uint64_t matches_ = 0;
  std::uint64_t misses_ = 0;
};

// ---------------------------------------------------------------------------
// Seeded strategy sampling for chaos-style sweeps.

enum class StrategyKind : std::uint8_t {
  kConsistentLie,
  kCrashAtWorstTime,
  kEquivocateAcrossRetries,
  kTargetedStraggle,
  kSelectiveFailure,
};
inline constexpr std::size_t kNumStrategyKinds = 5;

const char* strategy_kind_name(StrategyKind kind);

// Materializes `kind` with parameters drawn from `prg` (lie deltas in
// [1, modulus), probe bytes, straggle latencies). Deterministic per seed.
std::shared_ptr<AdversaryStrategy> make_strategy(StrategyKind kind, std::uint64_t modulus,
                                                 crypto::Prg& prg);

// True when every behavior `kind` can exhibit stays within the *byzantine*
// budget accounting (a lie costs 2 points); crash/straggle/selective-drop
// strategies only cost erasures and fit either budget.
bool strategy_lies(StrategyKind kind);

}  // namespace spfe::net
