// Session-level server-health tracking for long-running query workloads.
//
// A production client doing millions of §4 statistics queries against the
// same k servers should not treat every query as the first: servers that
// keep straggling, crashing, or lying should be *demoted* — moved to the
// back of the send order, where the hedged robust driver (net/robust.h)
// uses them only as spares — and the hedge deadline should track the
// latency the healthy servers actually deliver, not a static guess.
//
// `ServerHealthTracker` consumes the `RobustnessReport` of every finished
// query: each non-ok verdict adds demerits (a corrected lie costs more
// than a crash — a liar is adversarial, a crash is weather), each ok
// verdict halves them (flaky-then-recovered servers work their way back),
// and each answered verdict contributes its virtual-time answer latency to
// a bounded sample window. Everything is deterministic: same report
// sequence, same ranking, same quantiles.
#pragma once

#include <cstdint>
#include <vector>

#include "net/robust.h"

namespace spfe::net {

class ServerHealthTracker {
 public:
  // Demerit tariff (see class comment for the rationale).
  static constexpr std::uint64_t kUnavailableDemerit = 4;
  static constexpr std::uint64_t kMalformedDemerit = 6;
  static constexpr std::uint64_t kCorrectedDemerit = 8;

  explicit ServerHealthTracker(std::size_t num_servers,
                               std::uint64_t demote_threshold = 8,
                               std::size_t latency_window = 1024);

  std::size_t num_servers() const { return demerits_.size(); }

  // Folds one finished query's report into the session state: demerit
  // penalties from every attempt in `report.history` (a lie caught on an
  // early attempt counts even when the retry succeeded; reports without
  // history fall back to the final verdicts), recovery credit and latency
  // samples from the final-attempt verdicts. Reports for a different
  // server count are rejected.
  void observe(const RobustnessReport& report);

  std::uint64_t demerits(std::size_t s) const;
  bool demoted(std::size_t s) const;
  std::size_t queries_observed() const { return queries_; }

  // Healthy-first send order: ascending demerits, server index as the
  // deterministic tie-break. The robust driver sends queries to the first
  // k - h servers and holds the (least healthy) tail as hedge spares.
  std::vector<std::size_t> ranked_order() const;

  // Nearest-rank quantile of the observed answer latencies (virtual us),
  // or `fallback_us` while no answer has been observed yet. Feeds the
  // hedge deadline: dispatch spares once a straggler exceeds what the
  // q-quantile of past answers took.
  std::uint64_t latency_quantile_us(double q, std::uint64_t fallback_us) const;

 private:
  std::uint64_t demote_threshold_;
  std::size_t latency_window_;
  std::size_t queries_ = 0;
  std::vector<std::uint64_t> demerits_;
  std::vector<std::uint64_t> latencies_;  // ring buffer of answer_us samples
  std::size_t latency_next_ = 0;          // ring write cursor
};

}  // namespace spfe::net
