#include "net/fault.h"

#include <algorithm>
#include <string>
#include <utility>

#include "net/adversary.h"
#include "obs/obs.h"

namespace spfe::net {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kCorruptByte:
      return "corrupt-byte";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kDelayHalfRound:
      return "delay-half-round";
  }
  return "?";
}

FaultAction apply_fault(const Fault* fault, Bytes& message) {
  if (fault == nullptr) return FaultAction::kDeliver;
  switch (fault->kind) {
    case FaultKind::kDrop:
      return FaultAction::kDrop;
    case FaultKind::kCorruptByte:
      if (!message.empty()) {
        message[fault->byte_index % message.size()] ^= fault->xor_mask;
      }
      return FaultAction::kDeliver;
    case FaultKind::kTruncate:
      message.resize(std::min(fault->keep_bytes, message.size()));
      return FaultAction::kDeliver;
    case FaultKind::kDuplicate:
      return FaultAction::kDeliverTwice;
    case FaultKind::kDelayHalfRound:
      return FaultAction::kDeliverDelayed;
  }
  return FaultAction::kDeliver;
}

void FaultPlan::add(Direction direction, std::size_t server, std::size_t ordinal, Fault fault) {
  if (direction == Direction::kNone) {
    throw InvalidArgument("FaultPlan: faults must target a concrete direction");
  }
  if (fault.kind == FaultKind::kCorruptByte && fault.xor_mask == 0) {
    throw InvalidArgument("FaultPlan: corrupt-byte fault needs a nonzero mask");
  }
  faults_.emplace(Key{static_cast<int>(direction), server, ordinal}, fault);
}

void FaultPlan::crash_after(std::size_t server, std::size_t ops) {
  crash_points_.emplace(server, ops);
}

const Fault* FaultPlan::find(Direction direction, std::size_t server, std::size_t ordinal) const {
  auto it = faults_.find(Key{static_cast<int>(direction), server, ordinal});
  return it == faults_.end() ? nullptr : &it->second;
}

std::optional<std::size_t> FaultPlan::crash_point(std::size_t server) const {
  auto it = crash_points_.find(server);
  if (it == crash_points_.end()) return std::nullopt;
  return it->second;
}

FaultPlan FaultPlan::random(crypto::Prg& prg, std::size_t num_servers, std::size_t byzantine,
                            std::size_t unavailable, std::size_t rounds) {
  if (byzantine + unavailable > num_servers) {
    throw InvalidArgument("FaultPlan::random: more faulty servers than servers");
  }
  FaultPlan plan;

  // Fisher-Yates over server indices; the first `byzantine` entries corrupt,
  // the next `unavailable` entries crash/drop — disjoint by construction.
  std::vector<std::size_t> order(num_servers);
  for (std::size_t i = 0; i < num_servers; ++i) order[i] = i;
  for (std::size_t i = num_servers; i > 1; --i) {
    std::swap(order[i - 1], order[prg.uniform(i)]);
  }
  plan.byzantine_.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(byzantine));
  plan.unavailable_.assign(order.begin() + static_cast<std::ptrdiff_t>(byzantine),
                           order.begin() + static_cast<std::ptrdiff_t>(byzantine + unavailable));

  for (std::size_t b : plan.byzantine_) {
    for (std::size_t r = 0; r < rounds; ++r) {
      Fault f;
      switch (prg.uniform(3)) {
        case 0:
          // Flip a low-order byte of the answer: the corrupted value usually
          // stays inside the field, i.e. a silent lie only Berlekamp-Welch
          // can catch.
          f.kind = FaultKind::kCorruptByte;
          f.byte_index = prg.uniform(6);
          f.xor_mask = static_cast<std::uint8_t>(1 + prg.uniform(255));
          plan.add(Direction::kServerToClient, b, r, f);
          break;
        case 1:
          // Truncated answer: detected at the parser, costs an erasure.
          f.kind = FaultKind::kTruncate;
          f.keep_bytes = prg.uniform(8);
          plan.add(Direction::kServerToClient, b, r, f);
          break;
        default:
          // Corrupt the query instead: the server answers honestly on a
          // mangled query, which surfaces as either a rejection or a silently
          // wrong answer.
          f.kind = FaultKind::kCorruptByte;
          f.byte_index = prg.uniform(64);
          f.xor_mask = static_cast<std::uint8_t>(1 + prg.uniform(255));
          plan.add(Direction::kClientToServer, b, r, f);
          break;
      }
    }
  }

  for (std::size_t u : plan.unavailable_) {
    switch (prg.uniform(3)) {
      case 0:
        plan.crash_after(u, prg.uniform(3));
        break;
      case 1:
        // Answers never arrive (or arrive a half-round late).
        for (std::size_t r = 0; r < rounds; ++r) {
          Fault f;
          f.kind = prg.coin() ? FaultKind::kDrop : FaultKind::kDelayHalfRound;
          plan.add(Direction::kServerToClient, u, r, f);
        }
        break;
      default:
        // Queries never arrive: the server times out waiting.
        for (std::size_t r = 0; r < rounds; ++r) {
          plan.add(Direction::kClientToServer, u, r, Fault{FaultKind::kDrop, 0, 0x01, 0});
        }
        break;
    }
  }

  // Benign duplicates anywhere: cost nothing from the e/c budget, so robust
  // decoding must shrug them off. emplace keeps any fault already scheduled.
  std::size_t dups = prg.uniform(num_servers + 1);
  for (std::size_t i = 0; i < dups; ++i) {
    Direction dir = prg.coin() ? Direction::kClientToServer : Direction::kServerToClient;
    plan.faults_.emplace(
        Key{static_cast<int>(dir), prg.uniform(num_servers), prg.uniform(rounds)},
        Fault{FaultKind::kDuplicate, 0, 0x01, 0});
  }
  return plan;
}

FaultyStarNetwork::FaultyStarNetwork(std::size_t num_servers, FaultPlan plan)
    : StarNetwork(num_servers),
      plan_(std::move(plan)),
      client_ordinal_(num_servers, 0),
      server_ordinal_(num_servers, 0),
      server_ops_(num_servers, 0),
      to_server_delayed_(num_servers),
      to_client_delayed_(num_servers) {}

bool FaultyStarNetwork::server_crashed(std::size_t s) const {
  check_server(s);
  auto point = plan_.crash_point(s);
  return point.has_value() && server_ops_[s] >= *point;
}

void FaultyStarNetwork::deliver(std::deque<Bytes>& queue, std::deque<bool>& delayed,
                                const Fault* fault, Bytes message, bool force_delayed) {
  switch (apply_fault(fault, message)) {
    case FaultAction::kDrop:
      return;
    case FaultAction::kDeliver:
      queue.push_back(std::move(message));
      delayed.push_back(force_delayed);
      return;
    case FaultAction::kDeliverTwice:
      queue.push_back(message);
      delayed.push_back(force_delayed);
      queue.push_back(std::move(message));
      delayed.push_back(force_delayed);
      return;
    case FaultAction::kDeliverDelayed:
      queue.push_back(std::move(message));
      delayed.push_back(true);
      return;
  }
}

void FaultyStarNetwork::client_send(std::size_t s, Bytes message) {
  check_server(s);
  // The client pays for the transmission even when the server is dead or the
  // wire eats it: metering counts what was sent, not what arrived.
  meter_send(Direction::kClientToServer, message.size());
  std::size_t ordinal = client_ordinal_[s]++;
  if (server_crashed(s)) return;
  deliver(to_server_[s], to_server_delayed_[s],
          plan_.find(Direction::kClientToServer, s, ordinal), std::move(message));
}

void FaultyStarNetwork::server_send(std::size_t s, Bytes message) {
  check_server(s);
  if (server_crashed(s)) return;  // a dead server transmits nothing: unmetered
  bool adv_delayed = false;
  if (adversary_ != nullptr && adversary_->controls(s)) {
    AdversaryAction action = adversary_->intercept_answer(s, message, 0);
    switch (action.kind) {
      case AdversaryAction::Kind::kSendHonest:
        break;
      case AdversaryAction::Kind::kReplace:
        // A forged answer is a real transmission, metered at its own size.
        message = std::move(action.replacement);
        obs::count(obs::Op::kAdvForgedAnswer);
        break;
      case AdversaryAction::Kind::kDrop:
        // Byzantine silence: nothing transmitted, nothing metered — the wire
        // cannot distinguish it from a crash.
        obs::count(obs::Op::kAdvDroppedAnswer);
        return;
      case AdversaryAction::Kind::kDelay:
        adv_delayed = true;
        obs::count(obs::Op::kAdvDelayedAnswer);
        break;
    }
  }
  meter_send(Direction::kServerToClient, message.size());
  ++server_ops_[s];
  std::size_t ordinal = server_ordinal_[s]++;
  deliver(to_client_[s], to_client_delayed_[s],
          plan_.find(Direction::kServerToClient, s, ordinal), std::move(message), adv_delayed);
}

Bytes FaultyStarNetwork::server_receive(std::size_t s) {
  check_server(s);
  if (server_crashed(s)) {
    // Discard anything queued at a dead server so repeated receive attempts
    // terminate and idle() can still hold after the protocol gives up on it.
    to_server_[s].clear();
    to_server_delayed_[s].clear();
    throw ServerUnavailable("FaultyStarNetwork: server " + std::to_string(s) +
                            " crashed; receive timed out (" + channel_state(s) + ")");
  }
  if (to_server_[s].empty()) {
    throw ServerUnavailable("FaultyStarNetwork: server timed out waiting for a message (" +
                            channel_state(s) + ")");
  }
  if (to_server_delayed_[s].front()) {
    to_server_delayed_[s].front() = false;
    throw DeadlineMiss(
        "FaultyStarNetwork: message to server delayed past the round deadline (" +
        channel_state(s) + ")");
  }
  Bytes m = std::move(to_server_[s].front());
  to_server_[s].pop_front();
  to_server_delayed_[s].pop_front();
  ++server_ops_[s];
  if (adversary_ != nullptr && adversary_->controls(s)) {
    adversary_->observe_query(s, m, 0);
  }
  return m;
}

Bytes FaultyStarNetwork::client_receive(std::size_t s) {
  check_server(s);
  if (to_client_[s].empty()) {
    throw ServerUnavailable("FaultyStarNetwork: client timed out waiting for server " +
                            std::to_string(s) + " (" + channel_state(s) + ")");
  }
  if (to_client_delayed_[s].front()) {
    to_client_delayed_[s].front() = false;
    throw DeadlineMiss(
        "FaultyStarNetwork: answer from server " + std::to_string(s) +
        " delayed past the round deadline (" + channel_state(s) + ")");
  }
  Bytes m = std::move(to_client_[s].front());
  to_client_[s].pop_front();
  to_client_delayed_[s].pop_front();
  return m;
}

}  // namespace spfe::net
