// In-process message-passing substrate with communication metering.
//
// All SPFE protocols run over a `StarNetwork`: one client connected to k
// servers by FIFO channels. The network meters exactly what the paper
// measures — bytes in each direction, message counts, and rounds. Rounds are
// detected automatically from direction changes: a half-round is a maximal
// batch of messages flowing one way, and the paper's "round" (client ->
// every server -> client) is two half-rounds. This reproduces fractional
// round counts such as the 1.5/2.5 rounds of §3.3.2 variant 2, where the
// server speaks first.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace spfe::net {

struct CommStats {
  std::uint64_t client_to_server_bytes = 0;
  std::uint64_t server_to_client_bytes = 0;
  std::uint64_t client_to_server_messages = 0;
  std::uint64_t server_to_client_messages = 0;
  std::uint64_t half_rounds = 0;

  std::uint64_t total_bytes() const { return client_to_server_bytes + server_to_client_bytes; }
  double rounds() const { return static_cast<double>(half_rounds) / 2.0; }
};

class StarNetwork {
 public:
  explicit StarNetwork(std::size_t num_servers);

  std::size_t num_servers() const { return to_server_.size(); }

  // Client -> server `s`.
  void client_send(std::size_t s, Bytes message);
  // Server `s` -> client.
  void server_send(std::size_t s, Bytes message);
  // Receives throw ProtocolError when no message is pending (a protocol bug
  // or a deviating counterparty).
  Bytes server_receive(std::size_t s);
  Bytes client_receive(std::size_t s);

  bool server_has_message(std::size_t s) const;
  bool client_has_message(std::size_t s) const;
  // True when every queue is drained (useful as a protocol postcondition).
  bool idle() const;

  const CommStats& stats() const { return stats_; }
  void reset_stats();

 private:
  enum class Direction { kNone, kClientToServer, kServerToClient };

  void note_direction(Direction d);
  void check_server(std::size_t s) const;

  std::vector<std::deque<Bytes>> to_server_;
  std::vector<std::deque<Bytes>> to_client_;
  Direction last_direction_ = Direction::kNone;
  CommStats stats_;
};

}  // namespace spfe::net
