// In-process message-passing substrate with communication metering.
//
// All SPFE protocols run over a `StarNetwork`: one client connected to k
// servers by FIFO channels. The network meters exactly what the paper
// measures — bytes in each direction, message counts, and rounds. Rounds are
// detected automatically from direction changes: a half-round is a maximal
// batch of messages flowing one way, and the paper's "round" (client ->
// every server -> client) is two half-rounds. This reproduces fractional
// round counts such as the 1.5/2.5 rounds of §3.3.2 variant 2, where the
// server speaks first.
//
// The send/receive methods are virtual so a decorator can inject faults
// underneath an unmodified protocol implementation (see net/fault.h for the
// adversarial `FaultyStarNetwork`); the base class always delivers
// perfectly.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace spfe::net {

struct CommStats {
  std::uint64_t client_to_server_bytes = 0;
  std::uint64_t server_to_client_bytes = 0;
  std::uint64_t client_to_server_messages = 0;
  std::uint64_t server_to_client_messages = 0;
  std::uint64_t half_rounds = 0;

  std::uint64_t total_bytes() const { return client_to_server_bytes + server_to_client_bytes; }
  double rounds() const { return static_cast<double>(half_rounds) / 2.0; }
};

// Direction of the last message flow (drives half-round accounting).
enum class Direction { kNone, kClientToServer, kServerToClient };
const char* direction_name(Direction d);

class StarNetwork {
 public:
  explicit StarNetwork(std::size_t num_servers);
  virtual ~StarNetwork() = default;

  std::size_t num_servers() const { return to_server_.size(); }

  // Client -> server `s`.
  virtual void client_send(std::size_t s, Bytes message);
  // Server `s` -> client.
  virtual void server_send(std::size_t s, Bytes message);
  // Receives throw ProtocolError when no message is pending (a protocol bug
  // or a deviating counterparty).
  virtual Bytes server_receive(std::size_t s);
  virtual Bytes client_receive(std::size_t s);

  bool server_has_message(std::size_t s) const;
  bool client_has_message(std::size_t s) const;
  // True when every queue is drained (useful as a protocol postcondition).
  bool idle() const;

  const CommStats& stats() const { return stats_; }
  void reset_stats();

 protected:
  // Meters one sent message (byte/message counters + half-round detection)
  // without touching the queues, so fault decorators can account for a
  // transmission exactly once however delivery is mangled.
  void meter_send(Direction d, std::size_t num_bytes);
  void check_server(std::size_t s) const;
  // One-line queue/direction snapshot for error messages.
  std::string channel_state(std::size_t s) const;

  std::vector<std::deque<Bytes>> to_server_;
  std::vector<std::deque<Bytes>> to_client_;
  Direction last_direction_ = Direction::kNone;
  CommStats stats_;

 private:
  void note_direction(Direction d);
};

}  // namespace spfe::net
