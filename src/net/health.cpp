#include "net/health.h"

#include <algorithm>

namespace spfe::net {

ServerHealthTracker::ServerHealthTracker(std::size_t num_servers,
                                         std::uint64_t demote_threshold,
                                         std::size_t latency_window)
    : demote_threshold_(demote_threshold),
      latency_window_(latency_window),
      demerits_(num_servers, 0) {
  if (num_servers == 0) throw InvalidArgument("ServerHealthTracker: need at least one server");
  if (demote_threshold == 0 || latency_window == 0) {
    throw InvalidArgument("ServerHealthTracker: threshold and window must be positive");
  }
}

void ServerHealthTracker::observe(const RobustnessReport& report) {
  if (report.verdicts.size() != demerits_.size()) {
    throw InvalidArgument("ServerHealthTracker: report covers a different server count");
  }
  ++queries_;
  // Penalties come from *every* attempt, not just the last one: a server
  // caught lying by Berlekamp–Welch on attempt 0 is still a liar when the
  // retry happens to succeed without exposing it, and must not keep its
  // healthy-first send priority. The final attempt is handled below (its
  // verdicts are `report.verdicts`), where recovery credit and latency
  // samples are also taken.
  for (std::size_t a = 0; a + 1 < report.history.size(); ++a) {
    const AttemptRecord& rec = report.history[a];
    if (rec.verdicts.size() != demerits_.size()) {
      throw InvalidArgument("ServerHealthTracker: attempt covers a different server count");
    }
    for (std::size_t s = 0; s < rec.verdicts.size(); ++s) {
      switch (rec.verdicts[s].fate) {
        case ServerFate::kOk:
        case ServerFate::kSpare:
          break;  // recovery is credited from the final verdicts only
        case ServerFate::kUnavailable:
          demerits_[s] += kUnavailableDemerit;
          break;
        case ServerFate::kMalformed:
          demerits_[s] += kMalformedDemerit;
          break;
        case ServerFate::kCorrected:
          demerits_[s] += kCorrectedDemerit;
          break;
      }
    }
  }
  for (std::size_t s = 0; s < report.verdicts.size(); ++s) {
    const ServerReport& v = report.verdicts[s];
    switch (v.fate) {
      case ServerFate::kOk:
        demerits_[s] /= 2;
        break;
      case ServerFate::kUnavailable:
        demerits_[s] += kUnavailableDemerit;
        break;
      case ServerFate::kMalformed:
        demerits_[s] += kMalformedDemerit;
        break;
      case ServerFate::kCorrected:
        demerits_[s] += kCorrectedDemerit;
        break;
      case ServerFate::kSpare:
        break;  // never queried: no evidence either way
    }
    if (v.answer_us > 0) {
      if (latencies_.size() < latency_window_) {
        latencies_.push_back(v.answer_us);
      } else {
        latencies_[latency_next_] = v.answer_us;
        latency_next_ = (latency_next_ + 1) % latency_window_;
      }
    }
  }
}

std::uint64_t ServerHealthTracker::demerits(std::size_t s) const {
  if (s >= demerits_.size()) throw InvalidArgument("ServerHealthTracker: server out of range");
  return demerits_[s];
}

bool ServerHealthTracker::demoted(std::size_t s) const {
  return demerits(s) >= demote_threshold_;
}

std::vector<std::size_t> ServerHealthTracker::ranked_order() const {
  std::vector<std::size_t> order(demerits_.size());
  for (std::size_t s = 0; s < order.size(); ++s) order[s] = s;
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return demerits_[a] < demerits_[b];
  });
  return order;
}

std::uint64_t ServerHealthTracker::latency_quantile_us(double q,
                                                       std::uint64_t fallback_us) const {
  if (q <= 0.0 || q > 1.0) {
    throw InvalidArgument("ServerHealthTracker: quantile must be in (0, 1]");
  }
  if (latencies_.empty()) return fallback_us;
  std::vector<std::uint64_t> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  std::size_t rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size()));
  if (rank > 0) --rank;
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace spfe::net
