// Deterministic virtual-time network simulation (discrete-event).
//
// The fault layer (net/fault.h) models *what* goes wrong on the wire; this
// layer models *when*. A `SimClock` is a seedless virtual microsecond
// counter that only ever moves forward; a `SimStarNetwork` is a StarNetwork
// whose messages carry per-message latencies drawn from seeded per-server
// distributions (base + jitter + occasional straggler multiplier), so
// stragglers, deadlines, retry policy, and hedged queries become concrete,
// testable virtual-time behaviours instead of abstract flags.
//
// Timeline model (one client timeline == the global clock, one timeline per
// server):
//   * client_send at client time T: the query arrives at the server at
//     T + latency(c2s). Sends during a link outage are dropped (metered at
//     the sender, like every transmission).
//   * server_receive: stamps the server's local time to the query's arrival
//     (never touches the global clock — server work is concurrent).
//   * server_send: departs at the server's local time; the answer is ready
//     at the client at departure + latency(s2c).
//   * client_receive: delivers the front message after advancing the global
//     clock to its ready time — unless a deadline is set and the message is
//     not ready by it, in which case the clock advances to the deadline and
//     the receive throws `ServerUnavailable` (a deadline miss; the message
//     stays in flight and a later receive with a longer deadline can still
//     get it — that is how stragglers eventually land and how hedging wins).
//
// Fault integration: a FaultPlan applies exactly as in FaultyStarNetwork
// (same metering contract: the sender pays once per transmission, a crashed
// server transmits nothing, duplicates are free), except that
// `kDelayHalfRound` now adds `SimConfig::delay_fault_penalty_us` of latency
// — a concrete virtual-time delay — instead of the untimed one-attempt
// bool mark.
//
// Determinism: every latency is sampled by (direction, server, ordinal)
// from the SimConfig seed, independent of call interleaving and of
// SPFE_THREADS; a whole chaos schedule replays byte-identically from its
// seeds. All protocol-visible time must flow through `net::Clock`
// (enforced tree-wide by the spfe-analyze `wall-clock` hygiene lint).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "crypto/prg.h"
#include "net/fault.h"
#include "net/network.h"

namespace spfe::net {

class AdversaryEngine;  // net/adversary.h

// Abstract time source. Protocol code outside src/net/ takes time from here
// (or not at all) — never from std::chrono wall clocks.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::uint64_t now_us() const = 0;
};

// Virtual microseconds since the simulation epoch; moves only forward.
class SimClock final : public Clock {
 public:
  std::uint64_t now_us() const override { return now_us_; }

  // No-op when `t_us` is in the past (a wait that already elapsed).
  void advance_to(std::uint64_t t_us) {
    if (t_us > now_us_) now_us_ = t_us;
  }
  void advance_by(std::uint64_t d_us) { now_us_ += d_us; }

 private:
  std::uint64_t now_us_ = 0;
};

// Per-server message-latency distribution. The default is a zero-latency
// perfect link, which makes `SimStarNetwork(k, SimConfig{})` byte- and
// time-identical to a plain StarNetwork.
struct ServerProfile {
  std::uint64_t base_us = 0;            // deterministic floor
  std::uint64_t jitter_us = 0;          // + uniform [0, jitter_us]
  std::uint32_t straggle_permille = 0;  // chance a message straggles
  std::uint64_t straggle_factor = 20;   // latency multiplier when it does

  // A plausible same-datacenter link for benches and chaos schedules.
  static ServerProfile typical() { return {200, 100, 0, 20}; }
};

// Half-open window [begin_us, end_us) during which the link to a server is
// down: transmissions in the window are metered at the sender and lost.
struct Outage {
  std::uint64_t begin_us = 0;
  std::uint64_t end_us = 0;
};

struct SimConfig {
  crypto::Prg::Seed seed{};                  // drives jitter + straggle coins
  std::vector<ServerProfile> profiles;       // size k, or empty = default all
  std::vector<std::vector<Outage>> outages;  // per server, or empty
  // Extra latency a FaultKind::kDelayHalfRound adds — large enough to blow
  // any sane per-attempt deadline, mirroring the untimed "delayed past the
  // round deadline" semantics.
  std::uint64_t delay_fault_penalty_us = 1'000'000;

  // Same profile for every one of `k` servers.
  static SimConfig uniform(std::size_t k, ServerProfile profile, const crypto::Prg::Seed& seed);
};

// Seeded, order-independent latency sampler: the latency of the ordinal-th
// message towards/from a server depends only on (seed, direction, server,
// ordinal).
class LatencyModel {
 public:
  explicit LatencyModel(const SimConfig& config);

  std::uint64_t sample_us(Direction direction, std::size_t server,
                          std::uint64_t ordinal) const;
  bool in_outage(std::size_t server, std::uint64_t at_us) const;
  const ServerProfile& profile(std::size_t server) const;

  // Nearest-rank quantile of the single-message latency distribution of
  // `server` (by seeded sampling, not analytically) — a principled default
  // for hedge deadlines before any live observations exist.
  std::uint64_t quantile_us(std::size_t server, double q, std::size_t samples = 200) const;

 private:
  SimConfig config_;
  crypto::Prg base_;
};

class SimStarNetwork : public StarNetwork {
 public:
  static constexpr std::uint64_t kNoDeadline = ~std::uint64_t{0};

  SimStarNetwork(std::size_t num_servers, SimConfig config, FaultPlan plan = {});

  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  const LatencyModel& latency_model() const { return model_; }
  const FaultPlan& plan() const { return plan_; }

  // Adaptive adversary interposition (net/adversary.h): controlled servers
  // see every query they receive and decide what to do with every answer
  // they are about to send (send / forge / drop / delay). Non-owning — the
  // engine must outlive the network. Nullptr disables interposition.
  void set_adversary(AdversaryEngine* engine) { adversary_ = engine; }
  const AdversaryEngine* adversary() const { return adversary_; }

  // Deadline applied to subsequent client receives (kNoDeadline = block
  // until the message is ready). Deadlines only gate the client — the
  // driver of the star protocols — because that is where timeout policy
  // lives.
  void set_deadline(std::uint64_t at_us) { deadline_us_ = at_us; }
  std::uint64_t deadline() const { return deadline_us_; }

  // Virtual ready-time of the message most recently handed to the client
  // (for per-server latency observations).
  std::uint64_t last_delivery_us() const { return last_delivery_us_; }

  // Position in `candidates` of the server whose front client-bound message
  // becomes ready earliest — the channel an event-driven client's select()
  // would wake on first. Ties break to the earlier candidate; nullopt when
  // every candidate queue is empty. Purely a peek: no clock movement.
  std::optional<std::size_t> earliest_client_ready(
      const std::vector<std::size_t>& candidates) const;

  bool server_crashed(std::size_t s) const;

  // Clears every queue without advancing the clock: simulation teardown for
  // messages the client abandoned (their transmissions stay metered).
  void discard_in_flight();

  void client_send(std::size_t s, Bytes message) override;
  void server_send(std::size_t s, Bytes message) override;
  Bytes server_receive(std::size_t s) override;
  Bytes client_receive(std::size_t s) override;

 private:
  void enqueue(std::size_t s, Direction direction, const Fault* fault, Bytes message,
               std::uint64_t depart_us, std::uint64_t ordinal, std::uint64_t extra_us = 0);

  SimClock clock_;
  SimConfig config_;
  LatencyModel model_;
  FaultPlan plan_;
  AdversaryEngine* adversary_ = nullptr;
  std::uint64_t deadline_us_ = kNoDeadline;
  std::uint64_t last_delivery_us_ = 0;
  std::vector<std::uint64_t> server_now_us_;  // per-server local timelines
  std::vector<std::uint64_t> client_ordinal_;
  std::vector<std::uint64_t> server_ordinal_;
  std::vector<std::size_t> server_ops_;  // completed receives + sends per server
  // Ready stamps parallel to the base queues.
  std::vector<std::deque<std::uint64_t>> to_server_ready_;
  std::vector<std::deque<std::uint64_t>> to_client_ready_;
};

}  // namespace spfe::net
