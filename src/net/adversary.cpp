#include "net/adversary.h"

#include <algorithm>
#include <utility>

#include "common/serialize.h"

namespace spfe::net {

const LinkEvent* LinkView::last_query() const {
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    if (it->dir == LinkEvent::Dir::kQueryIn) return &*it;
  }
  return nullptr;
}

Coalition::Coalition(std::vector<std::size_t> members) : members_(std::move(members)) {
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()), members_.end());
  for (std::size_t s : members_) views_[s].server = s;
}

bool Coalition::contains(std::size_t server) const {
  return std::binary_search(members_.begin(), members_.end(), server);
}

const LinkView& Coalition::view_of(std::size_t server) const {
  auto it = views_.find(server);
  if (it == views_.end()) {
    throw InvalidArgument("Coalition::view_of: server " + std::to_string(server) +
                          " is not a coalition member");
  }
  return it->second;
}

std::optional<std::uint64_t> Coalition::earliest_last_query_us() const {
  std::optional<std::uint64_t> earliest;
  for (const auto& [s, view] : views_) {
    const LinkEvent* q = view.last_query();
    if (q != nullptr && (!earliest || q->at_us < *earliest)) earliest = q->at_us;
  }
  return earliest;
}

AdversaryAction AdversaryAction::replace(Bytes forged) {
  AdversaryAction a;
  a.kind = Kind::kReplace;
  a.replacement = std::move(forged);
  return a;
}

AdversaryAction AdversaryAction::drop() {
  AdversaryAction a;
  a.kind = Kind::kDrop;
  return a;
}

AdversaryAction AdversaryAction::delay(std::uint64_t delay_us) {
  AdversaryAction a;
  a.kind = Kind::kDelay;
  a.delay_us = delay_us;
  return a;
}

const char* adversary_action_name(AdversaryAction::Kind kind) {
  switch (kind) {
    case AdversaryAction::Kind::kSendHonest:
      return "send-honest";
    case AdversaryAction::Kind::kReplace:
      return "replace";
    case AdversaryAction::Kind::kDrop:
      return "drop";
    case AdversaryAction::Kind::kDelay:
      return "delay";
  }
  return "?";
}

AdversaryEngine::AdversaryEngine(std::shared_ptr<AdversaryStrategy> strategy,
                                 std::vector<std::size_t> controlled)
    : strategy_(std::move(strategy)), coalition_(std::move(controlled)) {
  if (strategy_ == nullptr) throw InvalidArgument("AdversaryEngine: null strategy");
  for (std::size_t s : coalition_.members()) stats_[s] = AdversaryStats{};
}

const AdversaryStats& AdversaryEngine::stats(std::size_t server) const {
  auto it = stats_.find(server);
  if (it == stats_.end()) {
    throw InvalidArgument("AdversaryEngine::stats: server " + std::to_string(server) +
                          " is not controlled");
  }
  return it->second;
}

AdversaryStats AdversaryEngine::total_stats() const {
  AdversaryStats total;
  for (const auto& [s, st] : stats_) {
    total.queries_observed += st.queries_observed;
    total.answers_honest += st.answers_honest;
    total.answers_forged += st.answers_forged;
    total.answers_dropped += st.answers_dropped;
    total.answers_delayed += st.answers_delayed;
  }
  return total;
}

LinkView& AdversaryEngine::mutable_view(std::size_t server) {
  auto it = coalition_.views_.find(server);
  if (it == coalition_.views_.end()) {
    throw InvalidArgument("AdversaryEngine: server " + std::to_string(server) +
                          " is not controlled");
  }
  return it->second;
}

void AdversaryEngine::observe_query(std::size_t server, BytesView query, std::uint64_t at_us) {
  LinkView& view = mutable_view(server);
  LinkEvent ev;
  ev.dir = LinkEvent::Dir::kQueryIn;
  ev.payload.assign(query.begin(), query.end());
  ev.at_us = at_us;
  ev.ordinal = view.queries_seen++;
  view.events.push_back(std::move(ev));
  stats_[server].queries_observed++;
  strategy_->on_query(view, coalition_);
}

AdversaryAction AdversaryEngine::intercept_answer(std::size_t server, BytesView honest_answer,
                                                  std::uint64_t at_us) {
  LinkView& view = mutable_view(server);
  AdversaryAction action = strategy_->on_answer(view, honest_answer, coalition_);

  LinkEvent ev;
  ev.dir = LinkEvent::Dir::kAnswerOut;
  ev.at_us = at_us;
  ev.ordinal = view.answers_sent++;
  AdversaryStats& st = stats_[server];
  switch (action.kind) {
    case AdversaryAction::Kind::kSendHonest:
      ev.payload.assign(honest_answer.begin(), honest_answer.end());
      st.answers_honest++;
      break;
    case AdversaryAction::Kind::kReplace:
      ev.payload = action.replacement;
      st.answers_forged++;
      break;
    case AdversaryAction::Kind::kDrop:
      st.answers_dropped++;
      break;
    case AdversaryAction::Kind::kDelay:
      ev.payload.assign(honest_answer.begin(), honest_answer.end());
      st.answers_delayed++;
      break;
  }
  view.events.push_back(std::move(ev));
  return action;
}

// ---------------------------------------------------------------------------
// Strategy library.

std::optional<Bytes> forge_field_answer(BytesView honest, std::uint64_t modulus,
                                        std::uint64_t delta) {
  if (honest.size() < 8 || modulus == 0) return std::nullopt;
  Reader r(honest);
  std::uint64_t y = r.u64();
  // (y + delta) mod p without overflow: both operands already < p in honest
  // transcripts, but a malformed wire value may not be — reduce first.
  y %= modulus;
  delta %= modulus;
  std::uint64_t forged = y >= modulus - delta ? y - (modulus - delta) : y + delta;
  Writer w;
  w.u64(forged);
  Bytes out = std::move(w).take();
  out.insert(out.end(), honest.begin() + 8, honest.end());
  return out;
}

ConsistentLieStrategy::ConsistentLieStrategy(std::uint64_t modulus, std::uint64_t delta)
    : modulus_(modulus), delta_(delta % modulus) {
  if (modulus < 2) throw InvalidArgument("ConsistentLieStrategy: modulus must be >= 2");
  if (delta_ == 0) delta_ = 1;  // a zero offset would be honesty in disguise
}

AdversaryAction ConsistentLieStrategy::on_answer(const LinkView& link, BytesView honest_answer,
                                                 Coalition& coalition) {
  (void)link;
  (void)coalition;
  std::optional<Bytes> forged = forge_field_answer(honest_answer, modulus_, delta_);
  // An answer too short to carry a field element cannot be forged
  // consistently; silence is the next-best deviation.
  if (!forged) return AdversaryAction::drop();
  return AdversaryAction::replace(std::move(*forged));
}

CrashAtWorstTimeStrategy::CrashAtWorstTimeStrategy(std::size_t honest_attempts)
    : honest_attempts_(honest_attempts) {}

void CrashAtWorstTimeStrategy::on_query(const LinkView& link, Coalition& coalition) {
  // Arm the coalition-wide trigger on the *maximum* query ordinal any member
  // has seen: a member held back as a spare (fewer queries on its link) still
  // crashes in the same protocol attempt as the members that were queried
  // every round.
  std::uint64_t& armed = coalition.slot("crash-at-worst-time/max-ordinal");
  const LinkEvent* q = link.last_query();
  if (q != nullptr) armed = std::max(armed, static_cast<std::uint64_t>(q->ordinal));
}

AdversaryAction CrashAtWorstTimeStrategy::on_answer(const LinkView& link, BytesView honest_answer,
                                                    Coalition& coalition) {
  (void)honest_answer;
  (void)link;
  std::uint64_t armed = coalition.slot("crash-at-worst-time/max-ordinal");
  if (armed + 1 <= honest_attempts_) return AdversaryAction::honest();
  // The query was already swallowed; going silent now forces the client to
  // burn its full attempt deadline before it can blame anyone.
  return AdversaryAction::drop();
}

EquivocateAcrossRetriesStrategy::EquivocateAcrossRetriesStrategy(std::uint64_t modulus,
                                                                 std::uint64_t delta)
    : modulus_(modulus), delta_(delta % modulus) {
  if (modulus < 2) {
    throw InvalidArgument("EquivocateAcrossRetriesStrategy: modulus must be >= 2");
  }
  if (delta_ == 0) delta_ = 1;
}

AdversaryAction EquivocateAcrossRetriesStrategy::on_answer(const LinkView& link,
                                                           BytesView honest_answer,
                                                           Coalition& coalition) {
  (void)coalition;
  const LinkEvent* q = link.last_query();
  // Build trust on the first exchange this link sees, deviate afterwards.
  if (q == nullptr || q->ordinal == 0) return AdversaryAction::honest();
  std::optional<Bytes> forged = forge_field_answer(honest_answer, modulus_, delta_);
  if (!forged) return AdversaryAction::drop();
  return AdversaryAction::replace(std::move(*forged));
}

TargetedStraggleStrategy::TargetedStraggleStrategy(std::uint64_t spare_gap_us,
                                                   std::uint64_t straggle_us)
    : spare_gap_us_(spare_gap_us), straggle_us_(straggle_us) {}

AdversaryAction TargetedStraggleStrategy::on_answer(const LinkView& link, BytesView honest_answer,
                                                    Coalition& coalition) {
  (void)honest_answer;
  const LinkEvent* q = link.last_query();
  std::optional<std::uint64_t> earliest = coalition.earliest_last_query_us();
  if (q == nullptr || !earliest) return AdversaryAction::honest();
  // A query dispatched well after the coalition's earliest concurrent one is
  // a hedge spare sent to rescue the attempt; that rescue is what we stall.
  // (Over untimed networks all timestamps are 0 and we stay honest.)
  if (q->at_us > *earliest && q->at_us - *earliest > spare_gap_us_) {
    return AdversaryAction::delay(straggle_us_);
  }
  return AdversaryAction::honest();
}

SelectiveFailureStrategy::SelectiveFailureStrategy(Predicate predicate, AdversaryAction on_match)
    : predicate_(std::move(predicate)), on_match_(std::move(on_match)) {
  if (!predicate_) throw InvalidArgument("SelectiveFailureStrategy: null predicate");
}

SelectiveFailureStrategy::Predicate SelectiveFailureStrategy::byte_mask(std::size_t byte_index,
                                                                        std::uint8_t mask) {
  return [byte_index, mask](BytesView query) {
    if (query.empty()) return false;
    return (query[byte_index % query.size()] & mask) != 0;
  };
}

AdversaryAction SelectiveFailureStrategy::on_answer(const LinkView& link, BytesView honest_answer,
                                                    Coalition& coalition) {
  (void)honest_answer;
  (void)coalition;
  const LinkEvent* q = link.last_query();
  bool match = q != nullptr && predicate_(BytesView(q->payload));
  if (!match) {
    misses_++;
    return AdversaryAction::honest();
  }
  matches_++;
  return on_match_;
}

// ---------------------------------------------------------------------------
// Seeded sampling.

const char* strategy_kind_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kConsistentLie:
      return "consistent-lie";
    case StrategyKind::kCrashAtWorstTime:
      return "crash-at-worst-time";
    case StrategyKind::kEquivocateAcrossRetries:
      return "equivocate-across-retries";
    case StrategyKind::kTargetedStraggle:
      return "targeted-straggle";
    case StrategyKind::kSelectiveFailure:
      return "selective-failure";
  }
  return "?";
}

std::shared_ptr<AdversaryStrategy> make_strategy(StrategyKind kind, std::uint64_t modulus,
                                                 crypto::Prg& prg) {
  switch (kind) {
    case StrategyKind::kConsistentLie:
      return std::make_shared<ConsistentLieStrategy>(modulus, 1 + prg.uniform(modulus - 1));
    case StrategyKind::kCrashAtWorstTime:
      return std::make_shared<CrashAtWorstTimeStrategy>(1 + prg.uniform(2));
    case StrategyKind::kEquivocateAcrossRetries:
      return std::make_shared<EquivocateAcrossRetriesStrategy>(modulus,
                                                               1 + prg.uniform(modulus - 1));
    case StrategyKind::kTargetedStraggle:
      return std::make_shared<TargetedStraggleStrategy>(100 + prg.uniform(400),
                                                        2000 + prg.uniform(8000));
    case StrategyKind::kSelectiveFailure: {
      std::size_t byte_index = prg.uniform(64);
      auto mask = static_cast<std::uint8_t>(1u << prg.uniform(8));
      // Kill by silence: a dropped answer is an erasure, the cheapest
      // misbehavior against the unit-budget accounting.
      return std::make_shared<SelectiveFailureStrategy>(
          SelectiveFailureStrategy::byte_mask(byte_index, mask), AdversaryAction::drop());
    }
  }
  throw InvalidArgument("make_strategy: unknown StrategyKind");
}

bool strategy_lies(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kConsistentLie:
    case StrategyKind::kEquivocateAcrossRetries:
      return true;
    case StrategyKind::kCrashAtWorstTime:
    case StrategyKind::kTargetedStraggle:
    case StrategyKind::kSelectiveFailure:
      return false;
  }
  return true;
}

}  // namespace spfe::net
