// Deterministic fault injection for the message-passing substrate.
//
// A `FaultPlan` is a seeded, per-server, per-message schedule of network
// faults; a `FaultyStarNetwork` is a `StarNetwork` decorator that applies it
// while keeping `CommStats` metering exact (a sender pays for every message
// it transmits exactly once, however delivery is mangled; a crashed server
// transmits nothing). Protocols run over the decorator unchanged — the only
// behavioural difference is that receives on an empty or crashed channel
// throw the typed `ServerUnavailable` (the simulator's timeout) instead of
// `ProtocolError`, so robust clients can mark the server as an erasure and
// keep going. An empty plan is byte-identical to the perfect network.
//
// Fault taxonomy (see DESIGN.md "Fault model and robust reconstruction"):
//   kDrop           message is metered at the sender, never delivered
//   kCorruptByte    one byte XORed with a nonzero mask (Byzantine server)
//   kTruncate       only a prefix is delivered (malformed at the parser)
//   kDuplicate      delivered twice; the duplicate is not metered
//   kDelayHalfRound first receive attempt times out (ServerUnavailable),
//                   the message is available on the next attempt
//   crash_after     server dies after N channel operations: later receives
//                   throw ServerUnavailable, later sends vanish unmetered
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "crypto/prg.h"
#include "net/network.h"

namespace spfe::net {

class AdversaryEngine;  // net/adversary.h

enum class FaultKind : std::uint8_t {
  kDrop,
  kCorruptByte,
  kTruncate,
  kDuplicate,
  kDelayHalfRound,
};

const char* fault_kind_name(FaultKind kind);

struct Fault {
  FaultKind kind = FaultKind::kDrop;
  std::size_t byte_index = 0;     // kCorruptByte: position (reduced mod message size)
  std::uint8_t xor_mask = 0x01;   // kCorruptByte: nonzero flip mask
  std::size_t keep_bytes = 0;     // kTruncate: delivered prefix length
};

// What delivery should do after a fault mangled the payload. Shared by the
// untimed FaultyStarNetwork (delay = a one-attempt bool mark) and the
// virtual-time SimStarNetwork (delay = a concrete latency penalty; see
// net/sim.h).
enum class FaultAction : std::uint8_t {
  kDeliver,        // enqueue the (possibly mutated) message
  kDrop,           // never enqueue; the sender's metering already happened
  kDeliverDelayed, // enqueue, but past the receiver's current deadline
  kDeliverTwice,   // enqueue two copies (only one transmission is metered)
};

// Applies `fault` (may be null) to `message` in place and says how to
// enqueue it.
FaultAction apply_fault(const Fault* fault, Bytes& message);

class FaultPlan {
 public:
  FaultPlan() = default;

  // Schedules `fault` for the `ordinal`-th message (0-based, counted per
  // channel and direction) sent towards/from server `server`. The first
  // fault registered for a (direction, server, ordinal) slot wins.
  void add(Direction direction, std::size_t server, std::size_t ordinal, Fault fault);

  // Server `server` dies after completing `ops` channel operations
  // (receives + sends). 0 means dead on arrival.
  void crash_after(std::size_t server, std::size_t ops);

  const Fault* find(Direction direction, std::size_t server, std::size_t ordinal) const;
  std::optional<std::size_t> crash_point(std::size_t server) const;

  bool empty() const { return faults_.empty() && crash_points_.empty(); }
  std::size_t num_faults() const { return faults_.size() + crash_points_.size(); }

  // Seeded random plan over `num_servers` servers: picks disjoint server
  // subsets of the given sizes and schedules persistent faults for `rounds`
  // protocol rounds. Byzantine servers silently corrupt (sometimes truncate)
  // answers or have their queries corrupted in flight; unavailable servers
  // drop, delay, or crash. Benign duplicates are sprinkled over all servers.
  // A plan drawn with byzantine <= e and unavailable <= c stays within the
  // e/c budget of a client provisioned with k >= d + 1 + 2e + c servers.
  static FaultPlan random(crypto::Prg& prg, std::size_t num_servers, std::size_t byzantine,
                          std::size_t unavailable, std::size_t rounds = 4);

  const std::vector<std::size_t>& byzantine_servers() const { return byzantine_; }
  const std::vector<std::size_t>& unavailable_servers() const { return unavailable_; }

 private:
  // key: (direction, server, ordinal)
  using Key = std::tuple<int, std::size_t, std::size_t>;
  std::map<Key, Fault> faults_;
  std::map<std::size_t, std::size_t> crash_points_;
  std::vector<std::size_t> byzantine_;
  std::vector<std::size_t> unavailable_;
};

class FaultyStarNetwork : public StarNetwork {
 public:
  FaultyStarNetwork(std::size_t num_servers, FaultPlan plan);

  void client_send(std::size_t s, Bytes message) override;
  void server_send(std::size_t s, Bytes message) override;
  // Throw ServerUnavailable (never ProtocolError) when nothing is
  // deliverable: empty queue, delayed front message, or crashed server.
  Bytes server_receive(std::size_t s) override;
  Bytes client_receive(std::size_t s) override;

  bool server_crashed(std::size_t s) const;
  const FaultPlan& plan() const { return plan_; }

  // Adaptive adversary interposition (net/adversary.h): controlled servers
  // observe every query and choose per answer to send / forge / drop /
  // delay. Non-owning — the engine must outlive the network. Over this
  // untimed network kDelay degrades to the one-attempt delayed mark, same
  // as FaultKind::kDelayHalfRound.
  void set_adversary(AdversaryEngine* engine) { adversary_ = engine; }
  const AdversaryEngine* adversary() const { return adversary_; }

 private:
  // Applies a fault to `message` and enqueues the result (or doesn't).
  void deliver(std::deque<Bytes>& queue, std::deque<bool>& delayed, const Fault* fault,
               Bytes message, bool force_delayed = false);

  FaultPlan plan_;
  AdversaryEngine* adversary_ = nullptr;
  std::vector<std::size_t> client_ordinal_;  // messages sent client -> s
  std::vector<std::size_t> server_ordinal_;  // messages sent s -> client
  std::vector<std::size_t> server_ops_;      // completed receives + sends per server
  // Parallel to the base queues: true marks a message still held back by
  // kDelayHalfRound (the first receive attempt clears the mark and throws).
  std::vector<std::deque<bool>> to_server_delayed_;
  std::vector<std::deque<bool>> to_client_delayed_;
};

}  // namespace spfe::net
