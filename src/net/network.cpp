#include "net/network.h"

namespace spfe::net {

StarNetwork::StarNetwork(std::size_t num_servers)
    : to_server_(num_servers), to_client_(num_servers) {
  if (num_servers == 0) throw InvalidArgument("StarNetwork: need at least one server");
}

void StarNetwork::check_server(std::size_t s) const {
  if (s >= to_server_.size()) throw InvalidArgument("StarNetwork: server index out of range");
}

void StarNetwork::note_direction(Direction d) {
  if (d != last_direction_) {
    ++stats_.half_rounds;
    last_direction_ = d;
  }
}

void StarNetwork::client_send(std::size_t s, Bytes message) {
  check_server(s);
  note_direction(Direction::kClientToServer);
  stats_.client_to_server_bytes += message.size();
  ++stats_.client_to_server_messages;
  to_server_[s].push_back(std::move(message));
}

void StarNetwork::server_send(std::size_t s, Bytes message) {
  check_server(s);
  note_direction(Direction::kServerToClient);
  stats_.server_to_client_bytes += message.size();
  ++stats_.server_to_client_messages;
  to_client_[s].push_back(std::move(message));
}

Bytes StarNetwork::server_receive(std::size_t s) {
  check_server(s);
  if (to_server_[s].empty()) {
    throw ProtocolError("StarNetwork: server expected a message but none pending");
  }
  Bytes m = std::move(to_server_[s].front());
  to_server_[s].pop_front();
  return m;
}

Bytes StarNetwork::client_receive(std::size_t s) {
  check_server(s);
  if (to_client_[s].empty()) {
    throw ProtocolError("StarNetwork: client expected a message but none pending");
  }
  Bytes m = std::move(to_client_[s].front());
  to_client_[s].pop_front();
  return m;
}

bool StarNetwork::server_has_message(std::size_t s) const {
  check_server(s);
  return !to_server_[s].empty();
}

bool StarNetwork::client_has_message(std::size_t s) const {
  check_server(s);
  return !to_client_[s].empty();
}

bool StarNetwork::idle() const {
  for (const auto& q : to_server_) {
    if (!q.empty()) return false;
  }
  for (const auto& q : to_client_) {
    if (!q.empty()) return false;
  }
  return true;
}

void StarNetwork::reset_stats() {
  stats_ = CommStats{};
  last_direction_ = Direction::kNone;
}

}  // namespace spfe::net
