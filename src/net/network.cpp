#include "net/network.h"

#include <string>

namespace spfe::net {

const char* direction_name(Direction d) {
  switch (d) {
    case Direction::kNone:
      return "none";
    case Direction::kClientToServer:
      return "client->server";
    case Direction::kServerToClient:
      return "server->client";
  }
  return "?";
}

StarNetwork::StarNetwork(std::size_t num_servers)
    : to_server_(num_servers), to_client_(num_servers) {
  if (num_servers == 0) throw InvalidArgument("StarNetwork: need at least one server");
}

void StarNetwork::check_server(std::size_t s) const {
  if (s >= to_server_.size()) {
    throw InvalidArgument("StarNetwork: server index " + std::to_string(s) +
                          " out of range (have " + std::to_string(to_server_.size()) +
                          " servers)");
  }
}

std::string StarNetwork::channel_state(std::size_t s) const {
  return "server " + std::to_string(s) + ", to-server queue depth " +
         std::to_string(to_server_[s].size()) + ", to-client queue depth " +
         std::to_string(to_client_[s].size()) + ", last direction " +
         direction_name(last_direction_);
}

void StarNetwork::note_direction(Direction d) {
  if (d != last_direction_) {
    ++stats_.half_rounds;
    last_direction_ = d;
  }
}

void StarNetwork::meter_send(Direction d, std::size_t num_bytes) {
  note_direction(d);
  if (d == Direction::kClientToServer) {
    stats_.client_to_server_bytes += num_bytes;
    ++stats_.client_to_server_messages;
  } else {
    stats_.server_to_client_bytes += num_bytes;
    ++stats_.server_to_client_messages;
  }
}

void StarNetwork::client_send(std::size_t s, Bytes message) {
  check_server(s);
  meter_send(Direction::kClientToServer, message.size());
  to_server_[s].push_back(std::move(message));
}

void StarNetwork::server_send(std::size_t s, Bytes message) {
  check_server(s);
  meter_send(Direction::kServerToClient, message.size());
  to_client_[s].push_back(std::move(message));
}

Bytes StarNetwork::server_receive(std::size_t s) {
  check_server(s);
  if (to_server_[s].empty()) {
    throw ProtocolError("StarNetwork: server expected a message but none pending (" +
                        channel_state(s) + ")");
  }
  Bytes m = std::move(to_server_[s].front());
  to_server_[s].pop_front();
  return m;
}

Bytes StarNetwork::client_receive(std::size_t s) {
  check_server(s);
  if (to_client_[s].empty()) {
    throw ProtocolError("StarNetwork: client expected a message but none pending (" +
                        channel_state(s) + ")");
  }
  Bytes m = std::move(to_client_[s].front());
  to_client_[s].pop_front();
  return m;
}

bool StarNetwork::server_has_message(std::size_t s) const {
  check_server(s);
  return !to_server_[s].empty();
}

bool StarNetwork::client_has_message(std::size_t s) const {
  check_server(s);
  return !to_client_[s].empty();
}

bool StarNetwork::idle() const {
  for (const auto& q : to_server_) {
    if (!q.empty()) return false;
  }
  for (const auto& q : to_client_) {
    if (!q.empty()) return false;
  }
  return true;
}

void StarNetwork::reset_stats() {
  stats_ = CommStats{};
  last_direction_ = Direction::kNone;
}

}  // namespace spfe::net
