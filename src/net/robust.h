// Byzantine/crash-tolerant client driver for the one-round star protocols.
//
// All §3.1-style protocols share one shape: the client sends k independent
// queries, every server replies with one point of a degree-d polynomial, and
// the client interpolates at 0. `run_robust_star` runs that exchange against
// an unreliable network: servers that time out (`ServerUnavailable`) or send
// unparseable answers become *erasures*; the surviving points go through
// Berlekamp–Welch, which additionally corrects up to floor((s-d-1)/2) silent
// lies among s survivors. A client provisioned with k >= d + 1 + 2e + c
// servers therefore tolerates any mix of <= e corruptions and <= c crashes
// (a detected fault costs one point, an undetected one costs two).
//
// If an attempt is not decodable the client retries with *fresh randomness*
// (new curve, new SPIR mask seed — query points are never reused, so the
// privacy of the retrieved index is preserved across retries; see DESIGN.md
// "Fault model and robust reconstruction"). After `max_attempts` the driver
// throws `RobustProtocolError` carrying a `RobustnessReport` that names each
// server's fate — never a wrong value, never a hang.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "field/field.h"
#include "field/reed_solomon.h"
#include "net/network.h"
#include "obs/obs.h"

namespace spfe::net {

enum class ServerFate : std::uint8_t {
  kOk,           // answered; answer lay on the decoded polynomial
  kUnavailable,  // crashed / dropped / delayed past the deadline (erasure)
  kMalformed,    // rejected the query or sent an unparseable answer (erasure)
  kCorrected,    // answered in-field but off-polynomial (a corrected lie)
};

const char* server_fate_name(ServerFate fate);

struct ServerReport {
  ServerFate fate = ServerFate::kOk;
  std::string detail;
};

// Diagnostic attached to every robust run (and to the terminal error):
// which servers were excluded and why, and what the decoding cost.
struct RobustnessReport {
  bool success = false;
  std::size_t attempts = 0;
  std::size_t servers = 0;
  std::size_t erasures = 0;          // final attempt: unavailable + malformed
  std::size_t errors_corrected = 0;  // final attempt: off-polynomial answers
  std::vector<ServerReport> verdicts;  // final attempt, one per server
  std::string failure_reason;          // empty on success

  std::string summary() const;
};

struct RobustConfig {
  // Query rounds before giving up (>= 1). Each retry re-randomizes.
  std::size_t max_attempts = 3;
};

class RobustProtocolError : public ProtocolError {
 public:
  RobustProtocolError(const std::string& what, RobustnessReport report)
      : ProtocolError(what + "\n" + report.summary()), report_(std::move(report)) {}

  const RobustnessReport& report() const { return report_; }

 private:
  RobustnessReport report_;
};

// A robust run's result: the honest protocol output plus the diagnostic.
struct RobustResult {
  std::uint64_t value = 0;
  RobustnessReport report;
};

// Discards every queued message so `net.idle()` holds again, swallowing the
// ServerUnavailable timeouts thrown while flushing delayed/crashed channels.
void drain_star_network(StarNetwork& net);

// Runs one robust exchange. Callbacks:
//   make_queries(attempt, abscissae_out) -> k query messages; must use fresh
//       randomness each attempt and record each server's abscissa;
//   server_eval(server, attempt, query) -> answer bytes; a thrown spfe::Error
//       means the server rejected the (possibly mangled) query;
//   parse_answer(answer) -> field value; a thrown spfe::Error marks the
//       answer malformed (an erasure, not a decoding input).
// Returns the polynomial's value at 0 and the report. Throws
// RobustProtocolError when no attempt decodes.
template <field::FieldLike F, typename MakeQueries, typename ServerEval, typename ParseAnswer>
std::pair<typename F::value_type, RobustnessReport> run_robust_star(
    const F& field, StarNetwork& net, std::size_t degree, const RobustConfig& cfg,
    MakeQueries&& make_queries, ServerEval&& server_eval, ParseAnswer&& parse_answer) {
  if (cfg.max_attempts == 0) {
    throw InvalidArgument("run_robust_star: max_attempts must be >= 1");
  }
  const std::size_t k = net.num_servers();
  RobustnessReport report;
  report.servers = k;

  for (std::size_t attempt = 0; attempt < cfg.max_attempts; ++attempt) {
    obs::Span attempt_span("robust.attempt");
    attempt_span.note("attempt=" + std::to_string(attempt));
    if (attempt > 0) obs::count(obs::Op::kRobustRetry);
    report.attempts = attempt + 1;
    report.verdicts.assign(k, ServerReport{});
    // Stale messages from a previous attempt (delayed answers, duplicates)
    // must never leak into this attempt's decode.
    if (attempt > 0) drain_star_network(net);

    std::vector<typename F::value_type> abscissae;
    const std::vector<Bytes> queries = make_queries(attempt, abscissae);
    if (queries.size() != k || abscissae.size() != k) {
      throw InvalidArgument("run_robust_star: make_queries must cover every server");
    }
    for (std::size_t s = 0; s < k; ++s) net.client_send(s, queries[s]);

    // Server side: evaluate and reply; a server that never saw its query or
    // rejected it sends nothing.
    for (std::size_t s = 0; s < k; ++s) {
      try {
        Bytes query = net.server_receive(s);
        Bytes ans = server_eval(s, attempt, std::move(query));
        net.server_send(s, std::move(ans));
      } catch (const ServerUnavailable& e) {
        report.verdicts[s] = {ServerFate::kUnavailable, e.what()};
      } catch (const Error& e) {
        report.verdicts[s] = {ServerFate::kMalformed,
                              std::string("server rejected query: ") + e.what()};
      }
      // Flush duplicate queries so they cannot shadow the next attempt.
      while (net.server_has_message(s)) {
        try {
          net.server_receive(s);
        } catch (const ServerUnavailable&) {
        }
      }
    }

    // Client side: collect whatever arrived.
    std::vector<typename F::value_type> xs, ys;
    std::vector<std::size_t> owners;  // survivor -> server index
    for (std::size_t s = 0; s < k; ++s) {
      if (report.verdicts[s].fate == ServerFate::kOk) {
        try {
          const Bytes answer = net.client_receive(s);
          const typename F::value_type y = parse_answer(answer);
          xs.push_back(abscissae[s]);
          ys.push_back(y);
          owners.push_back(s);
        } catch (const ServerUnavailable& e) {
          report.verdicts[s] = {ServerFate::kUnavailable, e.what()};
        } catch (const Error& e) {
          report.verdicts[s] = {ServerFate::kMalformed,
                                std::string("unparseable answer: ") + e.what()};
        }
      }
      while (net.client_has_message(s)) {
        try {
          net.client_receive(s);
        } catch (const ServerUnavailable&) {
        }
      }
    }

    if (xs.size() >= degree + 1) {
      const auto decoding = field::decode_with_erasures(field, xs, ys, degree);
      if (decoding.has_value()) {
        for (std::size_t i = 0; i < owners.size(); ++i) {
          if (!decoding->agrees[i]) {
            report.verdicts[owners[i]] = {ServerFate::kCorrected,
                                          "answer did not lie on the decoded polynomial"};
          }
        }
        report.success = true;
        report.erasures = k - xs.size();
        report.errors_corrected = decoding->num_errors();
        report.failure_reason.clear();
        attempt_span.note("ok erasures=" + std::to_string(report.erasures) +
                          " corrected=" + std::to_string(report.errors_corrected));
        drain_star_network(net);
        return {decoding->eval(field, field.zero()), std::move(report)};
      }
      report.failure_reason = "surviving answers not within the correctable error budget (" +
                              std::to_string(xs.size()) + " of " + std::to_string(k) +
                              " usable, degree " + std::to_string(degree) + ")";
    } else {
      report.failure_reason = "only " + std::to_string(xs.size()) + " of " + std::to_string(k) +
                              " answers usable; interpolation needs " +
                              std::to_string(degree + 1);
    }
    attempt_span.note("failed: " + report.failure_reason);
  }

  report.success = false;
  drain_star_network(net);
  RobustnessReport thrown = report;
  throw RobustProtocolError("robust protocol failed after " +
                                std::to_string(report.attempts) + " attempt(s)",
                            std::move(thrown));
}

}  // namespace spfe::net
