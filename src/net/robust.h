// Byzantine/crash-tolerant client driver for the one-round star protocols,
// with an optional virtual-time availability policy (deadlines, seeded
// exponential backoff, hedged queries).
//
// All §3.1-style protocols share one shape: the client sends k independent
// queries, every server replies with one point of a degree-d polynomial, and
// the client interpolates at 0. `run_robust_star` runs that exchange against
// an unreliable network: servers that time out (`ServerUnavailable`) or send
// unparseable answers become *erasures*; the surviving points go through
// Berlekamp–Welch, which additionally corrects up to floor((s-d-1)/2) silent
// lies among s survivors. A client provisioned with k >= d + 1 + 2e + c
// servers therefore tolerates any mix of <= e corruptions and <= c crashes
// (a detected fault costs one point, an undetected one costs two).
//
// If an attempt is not decodable the client retries with *fresh randomness*
// (new curve, new SPIR mask seed — query points are never reused, so the
// privacy of the retrieved index is preserved across retries; see DESIGN.md
// "Fault model and robust reconstruction"). After `max_attempts` the driver
// throws `RobustProtocolError` carrying a `RobustnessReport` with the full
// per-attempt verdict history — never a wrong value, never a hang.
//
// Timed mode (`RobustConfig::timing.enabled` over a `net::SimStarNetwork`):
//   * every attempt gets a virtual-time deadline; answers still in flight
//     when it expires are deadline misses, not mystery hangs;
//   * retries wait out a seeded exponential backoff (with jitter) in
//     virtual time before re-querying;
//   * hedged queries: of the k provisioned servers only k - h *primaries*
//     are queried up front; when a primary straggles past the hedge
//     deadline (a latency quantile, see net/health.h), the driver
//     speculatively dispatches the *fresh, independent* query points it
//     already generated for up to h spare servers and decodes from
//     whichever answers land first. Every server still sees at most one
//     point of the attempt's degree-t curve, so t-privacy is untouched
//     (see DESIGN.md "Time, deadlines, and hedging").
// Over a plain (untimed) network, or with `timing.enabled == false`, the
// driver is byte-identical to the untimed robust path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "crypto/prg.h"
#include "field/field.h"
#include "field/reed_solomon.h"
#include "net/network.h"
#include "net/sim.h"
#include "obs/obs.h"

namespace spfe::net {

enum class ServerFate : std::uint8_t {
  kOk,           // answered; answer lay on the decoded polynomial
  kUnavailable,  // crashed / dropped / delayed past the deadline (erasure)
  kMalformed,    // rejected the query or sent an unparseable answer (erasure)
  kCorrected,    // answered in-field but off-polynomial (a corrected lie)
  kSpare,        // held in reserve as a hedge spare; never queried
};

const char* server_fate_name(ServerFate fate);

// *Why* a server earned its fate — the culpability axis the fate alone
// conflates: kUnavailable covers both a crashed channel (nothing will ever
// arrive) and a straggler (the answer is in flight but late), and both
// kMalformed and kCorrected are evidence of a lying server. Operators page
// on byzantine, wait out stragglers, and replace crashes; the health
// tracker (net/health.h) prices the three differently.
enum class Blame : std::uint8_t {
  kNone,       // ok, or held in reserve: no evidence against the server
  kByzantine,  // caught lying: off-polynomial answer, unparseable answer,
               // or a rejected query on a channel that delivered it
  kCrashed,    // silent: nothing in flight when the client gave up
  kStraggler,  // slow: an answer was in flight but missed a deadline
};

const char* blame_name(Blame blame);

struct ServerReport {
  ServerFate fate = ServerFate::kOk;
  std::string detail;
  // Virtual-time answer latency (receive - attempt start), 0 when the
  // answer never arrived or the network is untimed.
  std::uint64_t answer_us = 0;
  Blame blame = Blame::kNone;
};

// One attempt's complete outcome, kept so a failed run is diagnosable from
// the terminal error alone: which servers failed *each* time, not just the
// last time.
struct AttemptRecord {
  std::size_t attempt = 0;
  std::vector<ServerReport> verdicts;
  std::string failure_reason;  // empty when the attempt decoded
  std::uint64_t started_us = 0;  // virtual time; 0 over untimed networks
  std::uint64_t ended_us = 0;

  std::string summary() const;
};

// Diagnostic attached to every robust run (and to the terminal error):
// which servers were excluded and why, what the decoding cost, and the
// verdicts of every attempt along the way.
struct RobustnessReport {
  bool success = false;
  std::size_t attempts = 0;
  std::size_t servers = 0;
  std::size_t erasures = 0;          // final attempt: queried but unusable
  std::size_t errors_corrected = 0;  // final attempt: off-polynomial answers
  std::vector<ServerReport> verdicts;  // final attempt, one per server
  std::string failure_reason;          // empty on success
  std::vector<AttemptRecord> history;  // one record per attempt, in order
  // Virtual time from the first attempt's start to the decode (or to the
  // terminal failure); 0 over untimed networks.
  std::uint64_t completion_us = 0;

  std::string summary() const;
};

// Virtual-time availability policy. Only effective when the run's network
// is a SimStarNetwork; over untimed networks the policy is ignored and the
// driver behaves exactly like the untimed robust path.
struct TimingPolicy {
  bool enabled = false;
  // Per-attempt deadline: answers not decodable by then fail the attempt.
  std::uint64_t attempt_timeout_us = 20'000;
  // Hedge trigger: a primary that has not answered this long after the
  // queries went out is a straggler, and spares are dispatched. Set from a
  // latency quantile when history exists (ServerHealthTracker). 0 disables
  // hedging.
  std::uint64_t hedge_timeout_us = 0;
  // Servers held back as hedge spares (h of the k provisioned).
  std::size_t hedge_spares = 0;
  // Silent-lie budget the early decode must honor: an in-attempt decode is
  // trusted only once degree + 1 + 2*byzantine_budget usable answers are
  // in, because Berlekamp–Welch on s points corrects just
  // floor((s-d-1)/2) lies — at the bare d+1 quorum a single lie decodes
  // to a consistent wrong polynomial. Keep this equal to the e used when
  // provisioning k = d + 1 + 2e + c + spares.
  std::size_t byzantine_budget = 0;
  // Seeded exponential backoff between attempts: wait
  // min(base * 2^(attempt-1), max) plus uniform jitter of up to
  // jitter_permille/1000 of the wait.
  std::uint64_t backoff_base_us = 1'000;
  std::uint64_t backoff_max_us = 32'000;
  std::uint32_t backoff_jitter_permille = 500;
  crypto::Prg::Seed backoff_seed{};
  // Send order: the first k - h entries are primaries, the tail the hedge
  // spares (healthy-first from ServerHealthTracker::ranked_order()).
  // Empty = identity. Must be a permutation of 0..k-1.
  std::vector<std::size_t> send_order;
};

struct RobustConfig {
  // Query rounds before giving up (>= 1). Each retry re-randomizes.
  std::size_t max_attempts = 3;
  TimingPolicy timing;
};

// Servers to provision so degree-`degree` decoding survives <= `byzantine`
// silent lies and <= `crashes` crash faults, with `spares` extra servers
// held back for hedging.
constexpr std::size_t provisioned_servers(std::size_t degree, std::size_t byzantine,
                                          std::size_t crashes, std::size_t spares = 0) {
  return degree + 1 + 2 * byzantine + crashes + spares;
}

class RobustProtocolError : public ProtocolError {
 public:
  RobustProtocolError(const std::string& what, RobustnessReport report)
      : ProtocolError(what + "\n" + report.summary()), report_(std::move(report)) {}

  const RobustnessReport& report() const { return report_; }

 private:
  RobustnessReport report_;
};

// A robust run's result: the honest protocol output plus the diagnostic.
struct RobustResult {
  std::uint64_t value = 0;
  RobustnessReport report;
};

// Discards every queued message so `net.idle()` holds again, swallowing the
// ServerUnavailable timeouts thrown while flushing delayed/crashed channels.
// Over a SimStarNetwork the abandoned messages are discarded without moving
// the clock (the client does not wait for answers it no longer wants).
void drain_star_network(StarNetwork& net);

namespace detail {

// Backoff wait for retry `attempt` (>= 1): exponential with seeded jitter.
std::uint64_t backoff_wait_us(const TimingPolicy& tp, std::size_t attempt);

// Validated send order: identity when unset.
std::vector<std::size_t> resolve_send_order(const TimingPolicy& tp, std::size_t k);

// Re-ranks `order` by the blame a failed attempt assigned: unblamed servers
// first, then stragglers, then crashed, then caught liars — so a retry's
// primaries (the head of the order) and hedge spares are drawn from
// honest-looking replicas before servers with evidence against them. The
// sort is stable: within one blame class the incoming (healthy-first)
// order is preserved.
std::vector<std::size_t> deprioritize_blamed(const std::vector<std::size_t>& order,
                                             const std::vector<ServerReport>& verdicts);

}  // namespace detail

// Runs one robust exchange. Callbacks:
//   make_queries(attempt, abscissae_out) -> k query messages; must use fresh
//       randomness each attempt and record each server's abscissa;
//   server_eval(server, attempt, query) -> answer bytes; a thrown spfe::Error
//       means the server rejected the (possibly mangled) query;
//   parse_answer(answer) -> field value; a thrown spfe::Error marks the
//       answer malformed (an erasure, not a decoding input).
// Returns the polynomial's value at 0 and the report. Throws
// RobustProtocolError when no attempt decodes.
template <field::FieldLike F, typename MakeQueries, typename ServerEval, typename ParseAnswer>
std::pair<typename F::value_type, RobustnessReport> run_robust_star(
    const F& field, StarNetwork& net, std::size_t degree, const RobustConfig& cfg,
    MakeQueries&& make_queries, ServerEval&& server_eval, ParseAnswer&& parse_answer) {
  using V = typename F::value_type;
  if (cfg.max_attempts == 0) {
    throw InvalidArgument("run_robust_star: max_attempts must be >= 1");
  }
  const std::size_t k = net.num_servers();
  auto* sim = dynamic_cast<SimStarNetwork*>(&net);
  const bool timed = sim != nullptr && cfg.timing.enabled;

  RobustnessReport report;
  report.servers = k;

  // --- shared per-attempt machinery -----------------------------------------
  // One server's full exchange on the server side; failures become verdicts.
  const auto server_phase = [&](std::size_t s, std::size_t attempt) {
    try {
      Bytes query = net.server_receive(s);
      Bytes ans = server_eval(s, attempt, std::move(query));
      net.server_send(s, std::move(ans));
    } catch (const DeadlineMiss& e) {
      report.verdicts[s] = {ServerFate::kUnavailable, e.what(), 0, Blame::kStraggler};
    } catch (const ServerUnavailable& e) {
      report.verdicts[s] = {ServerFate::kUnavailable, e.what(), 0, Blame::kCrashed};
    } catch (const Error& e) {
      // The channel delivered a query this server refused: either the wire
      // corrupted it or the server is lying about it — blamed on the server,
      // matching how FaultPlan::random charges query corruption to its
      // byzantine set.
      report.verdicts[s] = {ServerFate::kMalformed,
                            std::string("server rejected query: ") + e.what(), 0,
                            Blame::kByzantine};
    }
    // Flush duplicate queries so they cannot shadow the next attempt.
    while (net.server_has_message(s)) {
      try {
        net.server_receive(s);
      } catch (const ServerUnavailable&) {
      }
    }
  };

  if (!timed) {
    // ------------------- untimed path (byte-identical to PR 4) -------------
    for (std::size_t attempt = 0; attempt < cfg.max_attempts; ++attempt) {
      obs::Span attempt_span("robust.attempt");
      attempt_span.note("attempt=" + std::to_string(attempt));
      if (attempt > 0) obs::count(obs::Op::kRobustRetry);
      report.attempts = attempt + 1;
      report.verdicts.assign(k, ServerReport{});
      // Stale messages from a previous attempt (delayed answers, duplicates)
      // must never leak into this attempt's decode.
      if (attempt > 0) drain_star_network(net);

      std::vector<V> abscissae;
      const std::vector<Bytes> queries = make_queries(attempt, abscissae);
      if (queries.size() != k || abscissae.size() != k) {
        throw InvalidArgument("run_robust_star: make_queries must cover every server");
      }
      for (std::size_t s = 0; s < k; ++s) net.client_send(s, queries[s]);

      // Server side: evaluate and reply; a server that never saw its query
      // or rejected it sends nothing.
      for (std::size_t s = 0; s < k; ++s) server_phase(s, attempt);

      // Client side: collect whatever arrived.
      std::vector<V> xs, ys;
      std::vector<std::size_t> owners;  // survivor -> server index
      for (std::size_t s = 0; s < k; ++s) {
        if (report.verdicts[s].fate == ServerFate::kOk) {
          try {
            const Bytes answer = net.client_receive(s);
            const V y = parse_answer(answer);
            xs.push_back(abscissae[s]);
            ys.push_back(y);
            owners.push_back(s);
          } catch (const DeadlineMiss& e) {
            report.verdicts[s] = {ServerFate::kUnavailable, e.what(), 0, Blame::kStraggler};
          } catch (const ServerUnavailable& e) {
            report.verdicts[s] = {ServerFate::kUnavailable, e.what(), 0, Blame::kCrashed};
          } catch (const Error& e) {
            report.verdicts[s] = {ServerFate::kMalformed,
                                  std::string("unparseable answer: ") + e.what(), 0,
                                  Blame::kByzantine};
          }
        }
        while (net.client_has_message(s)) {
          try {
            net.client_receive(s);
          } catch (const ServerUnavailable&) {
          }
        }
      }

      if (xs.size() >= degree + 1) {
        const auto decoding = field::decode_with_erasures(field, xs, ys, degree);
        if (decoding.has_value()) {
          for (const std::size_t i : decoding->error_positions()) {
            report.verdicts[owners[i]] = {ServerFate::kCorrected,
                                          "answer did not lie on the decoded polynomial", 0,
                                          Blame::kByzantine};
          }
          report.success = true;
          report.erasures = k - xs.size();
          report.errors_corrected = decoding->num_errors();
          report.failure_reason.clear();
          report.history.push_back({attempt, report.verdicts, "", 0, 0});
          attempt_span.note("ok erasures=" + std::to_string(report.erasures) +
                            " corrected=" + std::to_string(report.errors_corrected));
          drain_star_network(net);
          return {decoding->eval(field, field.zero()), std::move(report)};
        }
        report.failure_reason = "surviving answers not within the correctable error budget (" +
                                std::to_string(xs.size()) + " of " + std::to_string(k) +
                                " usable, degree " + std::to_string(degree) + ")";
      } else {
        report.failure_reason = "only " + std::to_string(xs.size()) + " of " +
                                std::to_string(k) + " answers usable; interpolation needs " +
                                std::to_string(degree + 1);
      }
      report.history.push_back({attempt, report.verdicts, report.failure_reason, 0, 0});
      attempt_span.note("failed: " + report.failure_reason);
    }

    report.success = false;
    drain_star_network(net);
    RobustnessReport thrown = report;
    throw RobustProtocolError("robust protocol failed after " +
                                  std::to_string(report.attempts) + " attempt(s)",
                              std::move(thrown));
  }

  // --------------------------- timed path ------------------------------------
  const TimingPolicy& tp = cfg.timing;
  const std::size_t decode_quorum = degree + 1 + 2 * tp.byzantine_budget;
  if (k < decode_quorum) {
    throw InvalidArgument("run_robust_star: fewer servers than the decode quorum needs");
  }
  std::vector<std::size_t> order = detail::resolve_send_order(tp, k);
  // Hedging never cuts the primaries below the decode quorum.
  const std::size_t spares =
      tp.hedge_timeout_us == 0 ? 0 : std::min(tp.hedge_spares, k - decode_quorum);
  const bool hedging = spares > 0;
  const std::size_t num_primaries = k - spares;
  const std::uint64_t session_start_us = sim->clock().now_us();

  for (std::size_t attempt = 0; attempt < cfg.max_attempts; ++attempt) {
    obs::Span attempt_span("robust.attempt");
    attempt_span.note("attempt=" + std::to_string(attempt) + " timed");
    if (attempt > 0) {
      obs::count(obs::Op::kRobustRetry);
      const std::uint64_t wait = detail::backoff_wait_us(tp, attempt);
      sim->clock().advance_by(wait);
      obs::count(obs::Op::kBackoffWait);
      attempt_span.note("backoff_us=" + std::to_string(wait));
      // Stale in-flight answers from the previous attempt are abandoned
      // without waiting for them.
      sim->discard_in_flight();
      // Retries learn from the failed attempt's blame: servers caught lying
      // or crashed go to the back of the order, so this attempt's primaries
      // and hedge spares come from honest-looking replicas first.
      order = detail::deprioritize_blamed(order, report.history.back().verdicts);
    }
    report.attempts = attempt + 1;
    report.verdicts.assign(k, ServerReport{});
    AttemptRecord rec;
    rec.attempt = attempt;
    rec.started_us = sim->clock().now_us();
    const std::uint64_t attempt_deadline = rec.started_us + tp.attempt_timeout_us;

    std::vector<V> abscissae;
    const std::vector<Bytes> queries = make_queries(attempt, abscissae);
    if (queries.size() != k || abscissae.size() != k) {
      throw InvalidArgument("run_robust_star: make_queries must cover every server");
    }

    std::vector<V> xs, ys;
    std::vector<std::size_t> owners;
    std::vector<char> collected(k, 0);
    std::optional<V> value;

    // Collects one answer; on a parse failure sets the malformed verdict.
    // On a timeout, `timeout_blame` says whether the answer is merely late
    // (in flight past the deadline) or will never come (crashed channel).
    enum class Collect { kGot, kTimeout, kBad };
    const auto collect = [&](std::size_t s, std::string* timeout_detail,
                             Blame* timeout_blame) -> Collect {
      try {
        const Bytes answer = net.client_receive(s);
        const V y = parse_answer(answer);
        xs.push_back(abscissae[s]);
        ys.push_back(y);
        owners.push_back(s);
        collected[s] = 1;
        report.verdicts[s].answer_us = sim->last_delivery_us() - rec.started_us;
        return Collect::kGot;
      } catch (const DeadlineMiss& e) {
        if (timeout_detail != nullptr) *timeout_detail = e.what();
        if (timeout_blame != nullptr) *timeout_blame = Blame::kStraggler;
        return Collect::kTimeout;
      } catch (const ServerUnavailable& e) {
        if (timeout_detail != nullptr) *timeout_detail = e.what();
        if (timeout_blame != nullptr) *timeout_blame = Blame::kCrashed;
        return Collect::kTimeout;
      } catch (const Error& e) {
        report.verdicts[s] = {ServerFate::kMalformed,
                              std::string("unparseable answer: ") + e.what(), 0,
                              Blame::kByzantine};
        return Collect::kBad;
      }
    };
    const auto try_decode = [&]() {
      if (value.has_value() || xs.size() < decode_quorum) return;
      const auto decoding = field::decode_with_erasures(field, xs, ys, degree);
      if (!decoding.has_value()) return;
      for (const std::size_t i : decoding->error_positions()) {
        report.verdicts[owners[i]] = {ServerFate::kCorrected,
                                      "answer did not lie on the decoded polynomial",
                                      report.verdicts[owners[i]].answer_us, Blame::kByzantine};
      }
      report.errors_corrected = decoding->num_errors();
      value = decoding->eval(field, field.zero());
    };

    // Queries go to the primaries; spares keep their (already generated,
    // never reused) points in reserve.
    for (std::size_t i = 0; i < num_primaries; ++i) net.client_send(order[i], queries[order[i]]);
    for (std::size_t i = 0; i < num_primaries; ++i) server_phase(order[i], attempt);

    // Pass 1: primaries, against the hedge deadline (or the full attempt
    // deadline when hedging is off).
    const std::uint64_t hedge_deadline =
        hedging ? std::min(attempt_deadline, rec.started_us + tp.hedge_timeout_us)
                : attempt_deadline;
    sim->set_deadline(hedge_deadline);
    std::vector<std::size_t> stragglers;
    for (std::size_t i = 0; i < num_primaries; ++i) {
      const std::size_t s = order[i];
      if (report.verdicts[s].fate != ServerFate::kOk) continue;
      std::string detail_msg;
      Blame timeout_blame = Blame::kCrashed;
      if (collect(s, &detail_msg, &timeout_blame) == Collect::kTimeout) {
        if (hedging) {
          stragglers.push_back(s);  // the hedge may still beat it
        } else {
          report.verdicts[s] = {ServerFate::kUnavailable, detail_msg, 0, timeout_blame};
        }
      }
    }
    try_decode();

    // Hedge dispatch: enough spares to cover the stragglers (or the quorum
    // deficit left by malformed primaries), spending the points already
    // generated for the spares (fresh and independent — never a reuse).
    std::vector<std::size_t> dispatched;
    const std::size_t quorum_deficit =
        xs.size() < decode_quorum ? decode_quorum - xs.size() : 0;
    const std::size_t hedges_wanted = std::max(stragglers.size(), quorum_deficit);
    if (!value.has_value() && hedging && hedges_wanted > 0) {
      for (std::size_t i = num_primaries; i < k && dispatched.size() < hedges_wanted;
           ++i) {
        const std::size_t s = order[i];
        net.client_send(s, queries[s]);
        obs::count(obs::Op::kHedgeSent);
        server_phase(s, attempt);
        dispatched.push_back(s);
      }
      attempt_span.note("hedged=" + std::to_string(dispatched.size()) +
                        " stragglers=" + std::to_string(stragglers.size()));

      // Wave A: the freshly dispatched spares get their own hedge window —
      // a straggling spare must not stall the quorum either.
      sim->set_deadline(std::min(attempt_deadline,
                                 sim->clock().now_us() + tp.hedge_timeout_us));
      std::vector<std::size_t> pending_spares;
      for (const std::size_t s : dispatched) {
        if (report.verdicts[s].fate != ServerFate::kOk) continue;
        if (value.has_value()) break;
        if (collect(s, nullptr, nullptr) == Collect::kGot) {
          obs::count(obs::Op::kHedgeWon);
          try_decode();
        } else {
          pending_spares.push_back(s);
        }
      }

      // Wave B: still short of a decode — escalate to the attempt deadline,
      // draining the still-owed answers in arrival order (an event-driven
      // client wakes on whichever lands first; a fixed escalation order
      // would block head-of-line on one straggler while a faster answer
      // sits ready).
      sim->set_deadline(attempt_deadline);
      std::vector<std::size_t> waiting = pending_spares;
      for (const std::size_t s : stragglers) {
        if (collected[s] == 0 && report.verdicts[s].fate == ServerFate::kOk) {
          waiting.push_back(s);
        }
      }
      while (!value.has_value() && !waiting.empty()) {
        const std::size_t pos = sim->earliest_client_ready(waiting).value_or(0);
        const std::size_t s = waiting[pos];
        waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(pos));
        std::string detail_msg;
        Blame timeout_blame = Blame::kCrashed;
        const Collect got = collect(s, &detail_msg, &timeout_blame);
        if (got == Collect::kGot) {
          const bool was_spare =
              std::find(stragglers.begin(), stragglers.end(), s) == stragglers.end();
          if (was_spare) obs::count(obs::Op::kHedgeWon);
          try_decode();
        } else if (got == Collect::kTimeout) {
          report.verdicts[s] = {ServerFate::kUnavailable, detail_msg, 0, timeout_blame};
        }
      }
    }

    // Final bookkeeping for everything still unresolved. Servers abandoned
    // once the quorum was in were never observed crashed — their answers may
    // still be in flight, so the blame stays "straggler".
    for (const std::size_t s : stragglers) {
      if (collected[s] != 0 || report.verdicts[s].fate != ServerFate::kOk) continue;
      report.verdicts[s] = {ServerFate::kUnavailable,
                            value.has_value()
                                ? "straggler abandoned: quorum reached without it"
                                : "no usable answer before the attempt deadline",
                            0, Blame::kStraggler};
    }
    for (const std::size_t s : dispatched) {
      if (collected[s] != 0 || report.verdicts[s].fate != ServerFate::kOk) continue;
      report.verdicts[s] = {ServerFate::kUnavailable,
                            value.has_value()
                                ? "hedge answer abandoned: quorum reached without it"
                                : "hedge answer missed the attempt deadline",
                            0, Blame::kStraggler};
    }
    for (std::size_t i = num_primaries; i < k; ++i) {
      const std::size_t s = order[i];
      if (std::find(dispatched.begin(), dispatched.end(), s) == dispatched.end()) {
        report.verdicts[s] = {ServerFate::kSpare, "held in reserve; never queried"};
      }
    }
    sim->set_deadline(SimStarNetwork::kNoDeadline);
    rec.ended_us = sim->clock().now_us();

    const std::size_t queried = num_primaries + dispatched.size();
    if (value.has_value()) {
      report.success = true;
      report.erasures = queried - xs.size();
      report.failure_reason.clear();
      report.completion_us = rec.ended_us - session_start_us;
      rec.verdicts = report.verdicts;
      report.history.push_back(std::move(rec));
      attempt_span.note("ok erasures=" + std::to_string(report.erasures) +
                        " corrected=" + std::to_string(report.errors_corrected) +
                        " completion_us=" + std::to_string(report.completion_us));
      drain_star_network(net);
      return {*value, std::move(report)};
    }
    if (xs.size() >= decode_quorum) {
      report.failure_reason = "surviving answers not within the correctable error budget (" +
                              std::to_string(xs.size()) + " of " + std::to_string(queried) +
                              " queried usable, degree " + std::to_string(degree) + ")";
    } else {
      report.failure_reason = "only " + std::to_string(xs.size()) + " of " +
                              std::to_string(queried) +
                              " queried answers usable before the deadline; the decode "
                              "quorum needs " +
                              std::to_string(decode_quorum);
    }
    rec.failure_reason = report.failure_reason;
    rec.verdicts = report.verdicts;
    report.history.push_back(std::move(rec));
    attempt_span.note("failed: " + report.failure_reason);
  }

  report.success = false;
  report.completion_us = sim->clock().now_us() - session_start_us;
  drain_star_network(net);
  RobustnessReport thrown = report;
  throw RobustProtocolError("robust protocol failed after " + std::to_string(report.attempts) +
                                " attempt(s)",
                            std::move(thrown));
}

}  // namespace spfe::net
