#include "net/sim.h"

#include <algorithm>
#include <string>
#include <utility>

#include "net/adversary.h"
#include "obs/obs.h"

namespace spfe::net {

SimConfig SimConfig::uniform(std::size_t k, ServerProfile profile,
                             const crypto::Prg::Seed& seed) {
  SimConfig cfg;
  cfg.seed = seed;
  cfg.profiles.assign(k, profile);
  return cfg;
}

LatencyModel::LatencyModel(const SimConfig& config) : config_(config), base_(config.seed) {
  for (const auto& windows : config_.outages) {
    for (const Outage& o : windows) {
      if (o.end_us < o.begin_us) {
        throw InvalidArgument("LatencyModel: outage window ends before it begins");
      }
    }
  }
}

const ServerProfile& LatencyModel::profile(std::size_t server) const {
  static const ServerProfile kPerfect{};
  if (server < config_.profiles.size()) return config_.profiles[server];
  return kPerfect;
}

std::uint64_t LatencyModel::sample_us(Direction direction, std::size_t server,
                                      std::uint64_t ordinal) const {
  const ServerProfile& p = profile(server);
  if (p.jitter_us == 0 && p.straggle_permille == 0) return p.base_us;
  // Keyed fork: the sample depends only on (seed, direction, server,
  // ordinal), never on sampling order — the bedrock of transcript
  // determinism at any thread count.
  crypto::Prg prg = base_.fork("lat-" + std::string(direction_name(direction)) + "-" +
                               std::to_string(server) + "-" + std::to_string(ordinal));
  std::uint64_t us = p.base_us + prg.uniform(p.jitter_us + 1);
  if (p.straggle_permille > 0 && prg.uniform(1000) < p.straggle_permille) {
    us *= p.straggle_factor;
  }
  return us;
}

bool LatencyModel::in_outage(std::size_t server, std::uint64_t at_us) const {
  if (server >= config_.outages.size()) return false;
  for (const Outage& o : config_.outages[server]) {
    if (at_us >= o.begin_us && at_us < o.end_us) return true;
  }
  return false;
}

std::uint64_t LatencyModel::quantile_us(std::size_t server, double q,
                                        std::size_t samples) const {
  if (q <= 0.0 || q > 1.0 || samples == 0) {
    throw InvalidArgument("LatencyModel::quantile_us: need q in (0, 1] and samples > 0");
  }
  // Sample the marginal distribution with a dedicated fork so the probe
  // never perturbs the per-message stream.
  crypto::Prg prg = base_.fork("quantile-" + std::to_string(server));
  const ServerProfile& p = profile(server);
  std::vector<std::uint64_t> draws(samples);
  for (auto& us : draws) {
    us = p.base_us + (p.jitter_us == 0 ? 0 : prg.uniform(p.jitter_us + 1));
    if (p.straggle_permille > 0 && prg.uniform(1000) < p.straggle_permille) {
      us *= p.straggle_factor;
    }
  }
  std::sort(draws.begin(), draws.end());
  std::size_t rank = static_cast<std::size_t>(q * static_cast<double>(samples));
  if (rank > 0) --rank;
  return draws[std::min(rank, samples - 1)];
}

SimStarNetwork::SimStarNetwork(std::size_t num_servers, SimConfig config, FaultPlan plan)
    : StarNetwork(num_servers),
      config_(std::move(config)),
      model_(config_),
      plan_(std::move(plan)),
      server_now_us_(num_servers, 0),
      client_ordinal_(num_servers, 0),
      server_ordinal_(num_servers, 0),
      server_ops_(num_servers, 0),
      to_server_ready_(num_servers),
      to_client_ready_(num_servers) {
  if (!config_.profiles.empty() && config_.profiles.size() != num_servers) {
    throw InvalidArgument("SimStarNetwork: profile count must match server count");
  }
  if (!config_.outages.empty() && config_.outages.size() != num_servers) {
    throw InvalidArgument("SimStarNetwork: outage schedule must match server count");
  }
}

bool SimStarNetwork::server_crashed(std::size_t s) const {
  check_server(s);
  auto point = plan_.crash_point(s);
  return point.has_value() && server_ops_[s] >= *point;
}

std::optional<std::size_t> SimStarNetwork::earliest_client_ready(
    const std::vector<std::size_t>& candidates) const {
  std::optional<std::size_t> best;
  std::uint64_t best_ready = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const std::size_t s = candidates[i];
    check_server(s);
    if (to_client_ready_[s].empty()) continue;
    const std::uint64_t ready = to_client_ready_[s].front();
    if (!best.has_value() || ready < best_ready) {
      best = i;
      best_ready = ready;
    }
  }
  return best;
}

void SimStarNetwork::discard_in_flight() {
  for (std::size_t s = 0; s < num_servers(); ++s) {
    to_server_[s].clear();
    to_client_[s].clear();
    to_server_ready_[s].clear();
    to_client_ready_[s].clear();
  }
}

void SimStarNetwork::enqueue(std::size_t s, Direction direction, const Fault* fault,
                             Bytes message, std::uint64_t depart_us, std::uint64_t ordinal,
                             std::uint64_t extra_us) {
  const FaultAction action = apply_fault(fault, message);
  if (action == FaultAction::kDrop) return;
  if (model_.in_outage(s, depart_us)) return;  // link down: transmission lost
  std::uint64_t ready = depart_us + model_.sample_us(direction, s, ordinal) + extra_us;
  if (action == FaultAction::kDeliverDelayed) ready += config_.delay_fault_penalty_us;
  auto& queue = direction == Direction::kClientToServer ? to_server_[s] : to_client_[s];
  auto& stamps =
      direction == Direction::kClientToServer ? to_server_ready_[s] : to_client_ready_[s];
  queue.push_back(message);
  stamps.push_back(ready);
  if (action == FaultAction::kDeliverTwice) {
    queue.push_back(std::move(message));
    stamps.push_back(ready);
  }
}

void SimStarNetwork::client_send(std::size_t s, Bytes message) {
  check_server(s);
  // The client pays for the transmission even when the wire eats it or the
  // server is dead: metering counts what was sent, not what arrived.
  meter_send(Direction::kClientToServer, message.size());
  const std::uint64_t ordinal = client_ordinal_[s]++;
  if (server_crashed(s)) return;
  enqueue(s, Direction::kClientToServer, plan_.find(Direction::kClientToServer, s, ordinal),
          std::move(message), clock_.now_us(), ordinal);
}

void SimStarNetwork::server_send(std::size_t s, Bytes message) {
  check_server(s);
  if (server_crashed(s)) return;  // a dead server transmits nothing: unmetered
  std::uint64_t adv_extra_us = 0;
  if (adversary_ != nullptr && adversary_->controls(s)) {
    AdversaryAction action = adversary_->intercept_answer(s, message, server_now_us_[s]);
    switch (action.kind) {
      case AdversaryAction::Kind::kSendHonest:
        break;
      case AdversaryAction::Kind::kReplace:
        // A forged answer is a real transmission, metered at its own size.
        message = std::move(action.replacement);
        obs::count(obs::Op::kAdvForgedAnswer);
        break;
      case AdversaryAction::Kind::kDrop:
        // Byzantine silence: nothing transmitted, nothing metered — the wire
        // cannot distinguish it from a crash.
        obs::count(obs::Op::kAdvDroppedAnswer);
        return;
      case AdversaryAction::Kind::kDelay:
        adv_extra_us = action.delay_us;
        obs::count(obs::Op::kAdvDelayedAnswer);
        break;
    }
  }
  meter_send(Direction::kServerToClient, message.size());
  ++server_ops_[s];
  const std::uint64_t ordinal = server_ordinal_[s]++;
  enqueue(s, Direction::kServerToClient, plan_.find(Direction::kServerToClient, s, ordinal),
          std::move(message), server_now_us_[s], ordinal, adv_extra_us);
}

Bytes SimStarNetwork::server_receive(std::size_t s) {
  check_server(s);
  if (server_crashed(s)) {
    to_server_[s].clear();
    to_server_ready_[s].clear();
    throw ServerUnavailable("SimStarNetwork: server " + std::to_string(s) +
                            " crashed; receive timed out (" + channel_state(s) + ")");
  }
  if (to_server_[s].empty()) {
    throw ServerUnavailable("SimStarNetwork: server timed out waiting for a message (" +
                            channel_state(s) + ")");
  }
  Bytes m = std::move(to_server_[s].front());
  to_server_[s].pop_front();
  // Server work starts when the query lands on its local timeline; the
  // global (client) clock is untouched — servers run concurrently.
  server_now_us_[s] = std::max(server_now_us_[s], to_server_ready_[s].front());
  to_server_ready_[s].pop_front();
  ++server_ops_[s];
  if (adversary_ != nullptr && adversary_->controls(s)) {
    adversary_->observe_query(s, m, server_now_us_[s]);
  }
  return m;
}

Bytes SimStarNetwork::client_receive(std::size_t s) {
  check_server(s);
  if (to_client_[s].empty()) {
    // Nothing in flight: the client waits out its deadline for an answer
    // that will never come (a dropped or crashed transmission).
    if (deadline_us_ != kNoDeadline) clock_.advance_to(deadline_us_);
    throw ServerUnavailable("SimStarNetwork: client timed out waiting for server " +
                            std::to_string(s) + " (" + channel_state(s) + ")");
  }
  const std::uint64_t ready = to_client_ready_[s].front();
  if (ready > deadline_us_) {
    // A true straggler: the answer is in flight but missed the deadline.
    // Leave it queued — a later receive with a longer deadline gets it.
    clock_.advance_to(deadline_us_);
    obs::count(obs::Op::kDeadlineMiss);
    throw DeadlineMiss("SimStarNetwork: answer from server " + std::to_string(s) +
                       " missed the deadline (ready at " + std::to_string(ready) +
                       "us, deadline " + std::to_string(deadline_us_) + "us)");
  }
  clock_.advance_to(ready);
  last_delivery_us_ = ready;
  Bytes m = std::move(to_client_[s].front());
  to_client_[s].pop_front();
  to_client_ready_[s].pop_front();
  return m;
}

}  // namespace spfe::net
