// Synthetic census-style workload generator.
//
// Models the paper's motivating scenario: each record has *public*
// attributes (zip code, age bracket) that the client can see, and a
// *private* attribute (salary) held by the server. The client selects
// records by a predicate on the public columns and privately computes
// statistics over the corresponding private values.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "crypto/prg.h"

namespace spfe::dbgen {

struct CensusRecord {
  std::uint32_t zip_code;    // public
  std::uint8_t age_bracket;  // public: 0..7 (decades 10-90)
  std::uint32_t salary;      // private (the SPFE database value)
};

struct CensusDatabase {
  std::vector<CensusRecord> records;

  std::size_t size() const { return records.size(); }
  // The private column as an SPFE database.
  std::vector<std::uint64_t> private_column() const;
  // Indices of records matching a public-attribute predicate.
  std::vector<std::size_t> select(
      const std::function<bool(const CensusRecord&)>& predicate) const;
  // First m matches (the client's selected sample).
  std::vector<std::size_t> select_sample(
      const std::function<bool(const CensusRecord&)>& predicate, std::size_t m) const;
};

struct CensusOptions {
  std::size_t num_records = 1024;
  std::uint32_t num_zip_codes = 100;
  std::uint32_t max_salary = 200'000;
};

CensusDatabase generate_census(const CensusOptions& options, crypto::Prg& prg);

}  // namespace spfe::dbgen
