#include "dbgen/census.h"

#include "common/error.h"

namespace spfe::dbgen {

std::vector<std::uint64_t> CensusDatabase::private_column() const {
  std::vector<std::uint64_t> out;
  out.reserve(records.size());
  for (const CensusRecord& r : records) out.push_back(r.salary);
  return out;
}

std::vector<std::size_t> CensusDatabase::select(
    const std::function<bool(const CensusRecord&)>& predicate) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (predicate(records[i])) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> CensusDatabase::select_sample(
    const std::function<bool(const CensusRecord&)>& predicate, std::size_t m) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < records.size() && out.size() < m; ++i) {
    if (predicate(records[i])) out.push_back(i);
  }
  if (out.size() < m) {
    throw InvalidArgument("CensusDatabase: fewer than m records match the predicate");
  }
  return out;
}

CensusDatabase generate_census(const CensusOptions& options, crypto::Prg& prg) {
  if (options.num_records == 0 || options.num_zip_codes == 0 || options.max_salary == 0) {
    throw InvalidArgument("generate_census: empty geometry");
  }
  CensusDatabase db;
  db.records.reserve(options.num_records);
  for (std::size_t i = 0; i < options.num_records; ++i) {
    CensusRecord r;
    r.zip_code = static_cast<std::uint32_t>(prg.uniform(options.num_zip_codes));
    r.age_bracket = static_cast<std::uint8_t>(prg.uniform(8));
    // Salary loosely correlated with age bracket (older = higher median),
    // so per-bracket statistics differ measurably in the examples.
    const std::uint64_t base = options.max_salary / 10 + r.age_bracket * 7000ull;
    const std::uint64_t spread = options.max_salary - base;
    r.salary = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(base + prg.uniform(std::max<std::uint64_t>(spread, 1)),
                                options.max_salary));
    db.records.push_back(r);
  }
  return db;
}

}  // namespace spfe::dbgen
