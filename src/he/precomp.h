// Offline/online precomputation for the client-side public-key hot paths
// (the Naor–Nisan offline/online split, cs/0109011).
//
// Every homomorphic encryption this library performs splits into a
// message-independent part and a cheap message-dependent part:
//   Paillier:  E(m, r) = (1 + mN) * r^N mod N^2  — r^N is independent of m;
//   GM:        E(b, r) = z^b * r^2 mod N         — r^2 and z*r^2 likewise.
// The expensive factors (one |N|-bit modexp for Paillier) can therefore be
// computed *offline*, pooled, and consumed online with a single modular
// multiplication each — turning an ~11 s depth-1 cPIR query generation at
// n = 4096 into milliseconds once the pool is warm.
//
// Determinism contract (tested in tests/precomp_test.cpp):
//   * A pool owns its own seeded Prg. The i-th factor it hands out is
//     always derived from the i-th `random_unit` draw of that stream —
//     regardless of pool warmth, refill timing, batch sizes, or thread
//     count. Pooled transcripts depend only on seeds.
//   * A consumer whose only PRG use is encryption randomness (e.g.
//     PaillierPir::make_query) therefore produces *byte-identical* output
//     whether it encrypts through a pool seeded with S or directly from a
//     Prg seeded with S.
//
// Concurrency: `draw`/`encrypt` and `refill` may race freely. When the pool
// is stocked a draw is a mutex-guarded pop (never blocks on crypto work).
// While a refill batch is in flight, a draw that finds the pool empty waits
// for the batch rather than skipping ahead in the randomness stream; with
// no refill in flight it falls back to computing the factor synchronously
// (still in stream order — the fallback serializes on the pool mutex).
// Refill fans its modexps out across the global ThreadPool (SPFE_THREADS).
//
// FixedBaseCache: process-wide cache of constant-time fixed-base comb
// tables keyed by (modulus, base, max exponent bits), so repeated
// exponentiations of a fixed public base under secret exponents (the OT
// group generator) pay the table build once per process instead of a full
// square-and-multiply chain per call. Evaluation is constant time in the
// exponent value: every 4-bit window is processed with a masked full-table
// lookup and an unconditional Montgomery multiply, mirroring
// MontgomeryContext::pow (results are byte-identical to it).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <tuple>

#include "bignum/bigint.h"
#include "bignum/modarith.h"
#include "crypto/prg.h"
#include "he/goldwasser_micali.h"
#include "he/paillier.h"

namespace spfe::he {

struct PoolConfig {
  // Maximum factors stocked; refill() tops the pool up to this level.
  std::size_t capacity = 256;
};

// Monotonic per-pool counters. Invariant: hits + misses == draws (asserted
// by tests and mirrored in the global obs counters kPoolHit/kPoolMiss).
struct PoolStats {
  std::uint64_t draws = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t refills = 0;       // completed refill batches
  std::uint64_t precomputed = 0;   // factors ever computed offline
};

// Pool of Paillier encryption factors r^N mod N^2 for one public key. One
// factor encrypts (or rerandomizes) exactly one ciphertext.
class PaillierRandomnessPool {
 public:
  // The pool copies `pk` (no lifetime coupling) and takes ownership of the
  // randomness stream.
  PaillierRandomnessPool(const PaillierPublicKey& pk, crypto::Prg prg, PoolConfig cfg = {});

  const PaillierPublicKey& public_key() const { return pk_; }

  // Offline phase: tops the pool up to capacity, fanning the modexps across
  // the global thread pool. Returns the number of factors computed (0 if
  // already full or another refill is in flight). Safe to call while other
  // threads draw.
  std::size_t refill();

  // Online phase: next factor in stream order. Stocked: one guarded pop.
  // Empty: waits for an in-flight refill batch, else computes synchronously.
  bignum::BigInt next_factor();

  // encrypt(m) == pk.encrypt(m, prg) for the pool's stream; one factor.
  bignum::BigInt encrypt(const bignum::BigInt& m);
  // rerandomize(c) == pk.rerandomize(c, prg) for the pool's stream.
  bignum::BigInt rerandomize(const bignum::BigInt& c);
  // Pooled counterpart of pk.rerandomize_all: factors are drawn serially in
  // stream order, the (cheap) multiplications fan out across the pool.
  void rerandomize_all(std::span<bignum::BigInt> cts);

  std::size_t stocked() const;
  PoolStats stats() const;

 private:
  PaillierPublicKey pk_;
  PoolConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<bignum::BigInt> ready_;  // factors, oldest (stream order) first
  bool refill_inflight_ = false;
  crypto::Prg prg_;
  PoolStats stats_;
};

// Pool of GM factor pairs (r^2, z * r^2) for one public key. Cheap to
// compute (two modular multiplications), pooled for interface uniformity
// and to keep the client's online loop free of PRG rejection sampling.
class GmRandomnessPool {
 public:
  struct Factors {
    bignum::BigInt r2;   // r^2 mod N      (encrypts 0 / rerandomizes)
    bignum::BigInt zr2;  // z * r^2 mod N  (encrypts 1)
  };

  GmRandomnessPool(const GmPublicKey& pk, crypto::Prg prg, PoolConfig cfg = {});

  const GmPublicKey& public_key() const { return pk_; }

  std::size_t refill();
  Factors next_factors();

  // encrypt(b) == pk.encrypt(b, prg) for the pool's stream; one pair.
  bignum::BigInt encrypt(bool bit);
  // rerandomize(c) == pk.rerandomize(c, prg) for the pool's stream.
  bignum::BigInt rerandomize(const bignum::BigInt& c);

  std::size_t stocked() const;
  PoolStats stats() const;

 private:
  GmPublicKey pk_;
  PoolConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Factors> ready_;
  bool refill_inflight_ = false;
  crypto::Prg prg_;
  PoolStats stats_;
};

// Constant-time fixed-base comb table: per 4-bit window j it stores
// base^(d * 16^j) for d in [0, 16), all in Montgomery form. pow() processes
// ceil(bit_length/4) windows, each with a masked full-table lookup and an
// unconditional mont_mul — no squarings, no zero-digit skips — so it is
// safe for secret exponents and returns exactly MontgomeryContext::pow's
// canonical result. The table owns its MontgomeryContext copy.
class CtFixedBaseTable {
 public:
  CtFixedBaseTable(const bignum::BigInt& modulus, const bignum::BigInt& base,
                   std::size_t max_exp_bits);

  // base^exp mod modulus; exp in [0, 2^max_exp_bits). Byte-identical to
  // MontgomeryContext(modulus).pow(base, exp). Constant time in the
  // exponent value (its bit length is public by policy, as in pow).
  bignum::BigInt pow(const bignum::BigInt& exp) const;

  std::size_t max_exp_bits() const { return windows_ * 4; }

 private:
  bignum::MontgomeryContext ctx_;
  std::size_t windows_;
  // window_[j] holds 16 contiguous entries of ctx_.limbs() limbs each.
  std::vector<std::vector<std::uint64_t>> window_;
};

// Process-wide cache of CtFixedBaseTable keyed by (modulus, base, max exp
// bits). First get() for a key builds the table (kFbTableBuild, with a
// "precomp.fbtable_build" span); later gets share it (kFbTableHit).
class FixedBaseCache {
 public:
  static FixedBaseCache& global();

  std::shared_ptr<const CtFixedBaseTable> get(const bignum::BigInt& modulus,
                                              const bignum::BigInt& base,
                                              std::size_t max_exp_bits);

  std::size_t size() const;
  void clear();  // tests only

 private:
  mutable std::mutex mu_;
  std::map<std::tuple<bignum::BigInt, bignum::BigInt, std::size_t>,
           std::shared_ptr<const CtFixedBaseTable>>
      tables_;
};

// Optional bundle of client-side precomputation handles threaded through
// protocol entry points. Null members mean "compute online" — passing a
// default-constructed ClientPrecomp reproduces the unpooled behaviour
// exactly. Pools are checked against the protocol's keys at use.
struct ClientPrecomp {
  PaillierRandomnessPool* paillier = nullptr;  // client-key encryption factors
  GmRandomnessPool* gm = nullptr;              // GM blinding factors
};

}  // namespace spfe::he
