#include "he/goldwasser_micali.h"

#include "bignum/primes.h"
#include "bignum/serialize.h"
#include "common/error.h"
#include "common/secret.h"
#include "obs/obs.h"

namespace spfe::he {

using bignum::BigInt;

GmPublicKey::GmPublicKey(BigInt n, BigInt z)
    : n_(std::move(n)), z_(std::move(z)), mont_(n_) {
  if (n_ <= BigInt(3) || !n_.is_odd()) {
    throw InvalidArgument("GmPublicKey: N must be odd and > 3");
  }
  if (bignum::jacobi(z_, n_) != 1) {
    throw InvalidArgument("GmPublicKey: z must have Jacobi symbol +1");
  }
}

BigInt GmPublicKey::encrypt(bool bit, crypto::Prg& prg) const {
  const BigInt r = random_unit(prg);
  const BigInt r2 = bignum::mod_mul(r, r, n_);
  return encrypt_with_factors(bit, r2, bignum::mod_mul(z_, r2, n_));
}

BigInt GmPublicKey::encrypt_with_factors(bool bit, const BigInt& r2, const BigInt& zr2) const {
  obs::count(obs::Op::kGmEncrypt);
  return bit ? zr2 : r2;
}

BigInt GmPublicKey::random_unit(crypto::Prg& prg) const {
  // Uniform over [1, N): draw from [0, N) and reject 0, so neither end of
  // the documented range is silently excluded. The zero test runs over all
  // limbs through the mask primitives; only the accept/reject bit is
  // declassified (rejected draws are independent of the surviving secret).
  for (;;) {
    BigInt r = BigInt::random_below(prg, n_);
    common::SecretBool nonzero;
    for (const std::uint64_t limb : r.limbs()) {
      nonzero = nonzero | common::SecretBool::from_mask(common::ct_is_nonzero_u64(limb));
    }
    // SPFE_DECLASSIFY: rejection-sampling accept bit; rejected draws are discarded and independent of the survivor
    if (nonzero.declassify()) return r;
  }
}

BigInt GmPublicKey::xor_ct(const BigInt& ca, const BigInt& cb) const {
  return bignum::mod_mul(ca, cb, n_);
}

BigInt GmPublicKey::rerandomize(const BigInt& c, crypto::Prg& prg) const {
  const BigInt r = random_unit(prg);
  return rerandomize_with_factor(c, bignum::mod_mul(r, r, n_));
}

BigInt GmPublicKey::rerandomize_with_factor(const BigInt& c, const BigInt& r2) const {
  return bignum::mod_mul(c, r2, n_);
}

void GmPublicKey::serialize(Writer& w) const {
  bignum::write_bigint(w, n_);
  bignum::write_bigint(w, z_);
}

GmPublicKey GmPublicKey::deserialize(Reader& r) {
  BigInt n = bignum::read_bigint(r);
  BigInt z = bignum::read_bigint(r);
  return GmPublicKey(std::move(n), std::move(z));
}

GmPrivateKey::GmPrivateKey(BigInt p, BigInt q, BigInt z)
    : pk_(p * q, std::move(z)),
      p_(std::move(p)),
      mont_p_(p_),
      euler_exp_((p_ - BigInt(1)) >> 1) {}

bool GmPrivateKey::decrypt(const BigInt& c) const {
  obs::count(obs::Op::kGmDecrypt);
  // c is a residue mod p iff the plaintext bit is 0. Euler criterion:
  // c^((p-1)/2) mod p is 1 for residues and p-1 for non-residues — same
  // verdict as the Legendre symbol, but computed with the constant-time
  // modexp instead of a Euclid chain whose iteration count and remainder
  // sizes depend on the secret factor.
  const BigInt ls = mont_p_.pow(c.mod_floor(p_), euler_exp_);
  if (ls.is_zero()) throw CryptoError("GM decrypt: ciphertext shares factor with N");
  return !ls.is_one();
}

GmPrivateKey gm_keygen(crypto::Prg& prg, std::size_t modulus_bits) {
  if (modulus_bits < 16) throw InvalidArgument("gm_keygen: modulus too small");
  const std::size_t half = modulus_bits / 2;
  const BigInt p = bignum::random_prime(prg, half);
  BigInt q = bignum::random_prime(prg, modulus_bits - half);
  while (q == p) q = bignum::random_prime(prg, modulus_bits - half);
  const BigInt n = p * q;
  // Find z: non-residue mod p and mod q (Jacobi(z, N) = +1 but z is not a QR).
  for (;;) {
    const BigInt z = BigInt::random_below(prg, n - BigInt(2)) + BigInt(2);
    if (bignum::jacobi(z, p) == -1 && bignum::jacobi(z, q) == -1) {
      return GmPrivateKey(p, q, z);
    }
  }
}

}  // namespace spfe::he
