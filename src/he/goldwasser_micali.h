// Goldwasser–Micali bit encryption ([29] in the paper): XOR-homomorphic,
// plaintext group Z_2. Included as the paper's canonical homomorphic scheme
// for the Boolean data domain; the benches ablate it against Paillier for
// bit-valued protocols.
//
// E(b) = z^b * r^2 mod N where z is a pseudosquare (Jacobi symbol +1,
// non-residue mod both primes). Decryption tests quadratic residuosity
// modulo p. E(a) * E(b) = E(a XOR b).
#pragma once

#include "bignum/bigint.h"
#include "bignum/modarith.h"
#include "common/serialize.h"
#include "crypto/prg.h"

namespace spfe::he {

class GmPublicKey {
 public:
  GmPublicKey(bignum::BigInt n, bignum::BigInt z);

  const bignum::BigInt& n() const { return n_; }
  const bignum::BigInt& z() const { return z_; }
  std::size_t ciphertext_bytes() const { return (n_.bit_length() + 7) / 8; }

  bignum::BigInt encrypt(bool bit, crypto::Prg& prg) const;
  // Uniform randomness in [1, N) for encryption/rerandomization.
  bignum::BigInt random_unit(crypto::Prg& prg) const;
  // Encrypts with precomputed factors r2 = r^2 mod N, zr2 = z * r^2 mod N
  // (he/precomp.h pools these). Equals encrypt(bit, prg) when r came from
  // the same stream position.
  bignum::BigInt encrypt_with_factors(bool bit, const bignum::BigInt& r2,
                                      const bignum::BigInt& zr2) const;
  // E(a) * E(b) = E(a ^ b).
  bignum::BigInt xor_ct(const bignum::BigInt& ca, const bignum::BigInt& cb) const;
  bignum::BigInt rerandomize(const bignum::BigInt& c, crypto::Prg& prg) const;
  // Rerandomization with a precomputed square r2: c * r2 mod N.
  bignum::BigInt rerandomize_with_factor(const bignum::BigInt& c,
                                         const bignum::BigInt& r2) const;

  void serialize(Writer& w) const;
  static GmPublicKey deserialize(Reader& r);

  bool operator==(const GmPublicKey& o) const { return n_ == o.n_ && z_ == o.z_; }

 private:
  bignum::BigInt n_;
  bignum::BigInt z_;
  bignum::MontgomeryContext mont_;
};

class GmPrivateKey {
 public:
  GmPrivateKey(bignum::BigInt p, bignum::BigInt q, bignum::BigInt z);

  const GmPublicKey& public_key() const { return pk_; }

  // Quadratic-residuosity test via the Euler criterion c^((p-1)/2) mod p,
  // evaluated with the constant-time Montgomery exponentiation — unlike a
  // Jacobi-symbol Euclid chain, the running time does not trace the secret
  // factor p through a data-dependent remainder cascade.
  bool decrypt(const bignum::BigInt& c) const;

 private:
  GmPublicKey pk_;
  bignum::BigInt p_;
  bignum::MontgomeryContext mont_p_;
  bignum::BigInt euler_exp_;  // (p - 1) / 2
};

GmPrivateKey gm_keygen(crypto::Prg& prg, std::size_t modulus_bits);

}  // namespace spfe::he
