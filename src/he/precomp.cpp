#include "he/precomp.h"

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "common/secret.h"
#include "obs/obs.h"

namespace spfe::he {

using bignum::BigInt;

// --- PaillierRandomnessPool --------------------------------------------------

PaillierRandomnessPool::PaillierRandomnessPool(const PaillierPublicKey& pk, crypto::Prg prg,
                                               PoolConfig cfg)
    : pk_(pk), cfg_(cfg), prg_(std::move(prg)) {
  if (cfg_.capacity == 0) throw InvalidArgument("PaillierRandomnessPool: zero capacity");
}

std::size_t PaillierRandomnessPool::refill() {
  // Draw the batch's randomness serially under the lock (stream order),
  // then release it for the expensive modexps so stocked draws keep flowing.
  std::vector<BigInt> rs;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (refill_inflight_ || ready_.size() >= cfg_.capacity) return 0;
    rs.reserve(cfg_.capacity - ready_.size());
    for (std::size_t i = ready_.size(); i < cfg_.capacity; ++i) {
      rs.push_back(pk_.random_unit(prg_));
    }
    refill_inflight_ = true;
  }
  obs::Span span("precomp.refill");
  span.note("paillier factors=" + std::to_string(rs.size()));
  std::vector<BigInt> factors(rs.size());
  common::parallel_for(rs.size(), [&](std::size_t i) {
    factors[i] = pk_.encryption_factor(rs[i]);
  });
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (BigInt& f : factors) ready_.push_back(std::move(f));
    refill_inflight_ = false;
    stats_.refills += 1;
    stats_.precomputed += factors.size();
  }
  cv_.notify_all();
  obs::count(obs::Op::kPoolRefill);
  return rs.size();
}

BigInt PaillierRandomnessPool::next_factor() {
  std::unique_lock<std::mutex> lk(mu_);
  ++stats_.draws;
  // An in-flight refill batch holds randomness drawn *before* ours would
  // be: wait for it instead of computing out of stream order.
  cv_.wait(lk, [&] { return !ready_.empty() || !refill_inflight_; });
  if (!ready_.empty()) {
    ++stats_.hits;
    obs::count(obs::Op::kPoolHit);
    BigInt f = std::move(ready_.front());
    ready_.pop_front();
    return f;
  }
  // Miss: synchronous fallback under the lock, so concurrent misses consume
  // the stream in a serial order.
  ++stats_.misses;
  obs::count(obs::Op::kPoolMiss);
  return pk_.encryption_factor(pk_.random_unit(prg_));
}

BigInt PaillierRandomnessPool::encrypt(const BigInt& m) {
  return pk_.encrypt_with_factor(m, next_factor());
}

BigInt PaillierRandomnessPool::rerandomize(const BigInt& c) {
  return pk_.rerandomize_with_factor(c, next_factor());
}

void PaillierRandomnessPool::rerandomize_all(std::span<BigInt> cts) {
  std::vector<BigInt> factors(cts.size());
  for (BigInt& f : factors) f = next_factor();
  common::parallel_for(cts.size(), [&](std::size_t i) {
    cts[i] = pk_.rerandomize_with_factor(cts[i], factors[i]);
  });
}

std::size_t PaillierRandomnessPool::stocked() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ready_.size();
}

PoolStats PaillierRandomnessPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

// --- GmRandomnessPool --------------------------------------------------------

GmRandomnessPool::GmRandomnessPool(const GmPublicKey& pk, crypto::Prg prg, PoolConfig cfg)
    : pk_(pk), cfg_(cfg), prg_(std::move(prg)) {
  if (cfg_.capacity == 0) throw InvalidArgument("GmRandomnessPool: zero capacity");
}

std::size_t GmRandomnessPool::refill() {
  std::vector<BigInt> rs;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (refill_inflight_ || ready_.size() >= cfg_.capacity) return 0;
    rs.reserve(cfg_.capacity - ready_.size());
    for (std::size_t i = ready_.size(); i < cfg_.capacity; ++i) {
      rs.push_back(pk_.random_unit(prg_));
    }
    refill_inflight_ = true;
  }
  obs::Span span("precomp.refill");
  span.note("gm factors=" + std::to_string(rs.size()));
  std::vector<Factors> factors(rs.size());
  common::parallel_for(rs.size(), [&](std::size_t i) {
    Factors f;
    f.r2 = bignum::mod_mul(rs[i], rs[i], pk_.n());
    f.zr2 = bignum::mod_mul(pk_.z(), f.r2, pk_.n());
    factors[i] = std::move(f);
  });
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (Factors& f : factors) ready_.push_back(std::move(f));
    refill_inflight_ = false;
    stats_.refills += 1;
    stats_.precomputed += factors.size();
  }
  cv_.notify_all();
  obs::count(obs::Op::kPoolRefill);
  return rs.size();
}

GmRandomnessPool::Factors GmRandomnessPool::next_factors() {
  std::unique_lock<std::mutex> lk(mu_);
  ++stats_.draws;
  cv_.wait(lk, [&] { return !ready_.empty() || !refill_inflight_; });
  if (!ready_.empty()) {
    ++stats_.hits;
    obs::count(obs::Op::kPoolHit);
    Factors f = std::move(ready_.front());
    ready_.pop_front();
    return f;
  }
  ++stats_.misses;
  obs::count(obs::Op::kPoolMiss);
  const BigInt r = pk_.random_unit(prg_);
  Factors f;
  f.r2 = bignum::mod_mul(r, r, pk_.n());
  f.zr2 = bignum::mod_mul(pk_.z(), f.r2, pk_.n());
  return f;
}

BigInt GmRandomnessPool::encrypt(bool bit) {
  const Factors f = next_factors();
  return pk_.encrypt_with_factors(bit, f.r2, f.zr2);
}

BigInt GmRandomnessPool::rerandomize(const BigInt& c) {
  const Factors f = next_factors();
  return pk_.rerandomize_with_factor(c, f.r2);
}

std::size_t GmRandomnessPool::stocked() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ready_.size();
}

PoolStats GmRandomnessPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

// --- CtFixedBaseTable --------------------------------------------------------

CtFixedBaseTable::CtFixedBaseTable(const BigInt& modulus, const BigInt& base,
                                   std::size_t max_exp_bits)
    : ctx_(modulus), windows_((std::max<std::size_t>(max_exp_bits, 1) + 3) / 4) {
  using MontVec = std::vector<std::uint64_t>;
  const std::size_t k = ctx_.limbs();
  // Comb anchors g_j = base^(16^j): a serial squaring chain, then each
  // window's 16 entries g_j^d fill independently across the thread pool.
  std::vector<MontVec> anchors(windows_);
  anchors[0] = ctx_.to_mont(base.mod_floor(modulus));
  for (std::size_t j = 1; j < windows_; ++j) {
    MontVec p = anchors[j - 1];
    for (int s = 0; s < 4; ++s) p = ctx_.mont_sqr(p);
    anchors[j] = std::move(p);
  }
  window_.resize(windows_);
  common::parallel_for(windows_, [&](std::size_t j) {
    std::array<MontVec, 16> entries;
    entries[0] = ctx_.mont_one();
    entries[1] = anchors[j];
    for (std::size_t d = 2; d < 16; ++d) {
      entries[d] = (d % 2 == 0) ? ctx_.mont_sqr(entries[d / 2])
                                : ctx_.mont_mul(entries[d - 1], anchors[j]);
    }
    std::vector<std::uint64_t> flat(16 * k);
    for (std::size_t d = 0; d < 16; ++d) {
      std::copy(entries[d].begin(), entries[d].end(), flat.begin() + d * k);
    }
    window_[j] = std::move(flat);
  });
}

BigInt CtFixedBaseTable::pow(const BigInt& /*secret*/ exp) const {
  if (exp.is_negative()) throw InvalidArgument("CtFixedBaseTable: negative exponent");
  const std::size_t bits = exp.bit_length();
  if (bits > windows_ * 4) {
    throw InvalidArgument("CtFixedBaseTable: exponent exceeds table capacity");
  }
  // The cached comb is still one modular exponentiation to the caller, so
  // it meters like MontgomeryContext::pow (whose result it reproduces).
  obs::count(obs::Op::kModExp);
  if (exp.is_zero()) return BigInt(1).mod_floor(ctx_.modulus());
  const std::size_t used = (bits + 3) / 4;  // public, as in mont pow
  const std::size_t k = ctx_.limbs();
  const std::vector<std::uint64_t>& el = exp.limbs();
  std::vector<std::uint64_t> acc = ctx_.mont_one();
  std::vector<std::uint64_t> entry(k);
  // Every window pays one masked full-table scan and one unconditional
  // multiply (digit 0 multiplies by the Montgomery identity) — no squarings
  // and no value-dependent skips.
  // SPFE_CT_BEGIN(fbtable_pow)
  for (std::size_t j = 0; j < used; ++j) {
    // 4-bit windows never straddle a limb; the limb index is the public
    // window position.
    const std::uint64_t digit = (el[(4 * j) / 64] >> ((4 * j) % 64)) & 0xf;
    const std::vector<std::uint64_t>& flat = window_[j];
    for (std::size_t i = 0; i < k; ++i) entry[i] = 0;
    for (std::size_t e = 0; e < 16; ++e) {
      const std::uint64_t m = common::ct_eq_u64(e, digit);
      for (std::size_t i = 0; i < k; ++i) entry[i] |= m & flat[e * k + i];
    }
    acc = ctx_.mont_mul(acc, entry);
  }
  // SPFE_CT_END
  return ctx_.from_mont(acc);
}

// --- FixedBaseCache ----------------------------------------------------------

FixedBaseCache& FixedBaseCache::global() {
  static FixedBaseCache cache;
  return cache;
}

std::shared_ptr<const CtFixedBaseTable> FixedBaseCache::get(const BigInt& modulus,
                                                            const BigInt& base,
                                                            std::size_t max_exp_bits) {
  // Key on the window count so requests within the same 4-bit round-up
  // share one table.
  const std::size_t windows = (std::max<std::size_t>(max_exp_bits, 1) + 3) / 4;
  const auto key = std::make_tuple(modulus, base, windows);
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = tables_.find(key);
    if (it != tables_.end()) {
      obs::count(obs::Op::kFbTableHit);
      return it->second;
    }
  }
  // Build outside the lock: a long build must not serialize unrelated keys.
  // A racing build of the same key keeps the first insertion.
  obs::Span span("precomp.fbtable_build");
  span.note("bits=" + std::to_string(windows * 4));
  auto table = std::make_shared<const CtFixedBaseTable>(modulus, base, windows * 4);
  std::lock_guard<std::mutex> lk(mu_);
  const auto [it, inserted] = tables_.emplace(key, std::move(table));
  obs::count(inserted ? obs::Op::kFbTableBuild : obs::Op::kFbTableHit);
  return it->second;
}

std::size_t FixedBaseCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return tables_.size();
}

void FixedBaseCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  tables_.clear();
}

}  // namespace spfe::he
