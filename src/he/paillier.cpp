#include "he/paillier.h"

#include "bignum/primes.h"
#include "bignum/serialize.h"
#include "common/error.h"

namespace spfe::he {

using bignum::BigInt;

PaillierPublicKey::PaillierPublicKey(BigInt n)
    : n_(std::move(n)), n2_(n_ * n_), mont_n2_(n2_) {
  if (n_ <= BigInt(3) || !n_.is_odd()) {
    throw InvalidArgument("PaillierPublicKey: N must be an odd composite > 3");
  }
}

BigInt PaillierPublicKey::encrypt(const BigInt& m, crypto::Prg& prg) const {
  // r uniform in [1, N); gcd(r, N) = 1 holds except with negligible
  // probability (a violation would factor N).
  const BigInt r = BigInt::random_below(prg, n_ - BigInt(1)) + BigInt(1);
  return encrypt_with_randomness(m, r);
}

BigInt PaillierPublicKey::encrypt_with_randomness(const BigInt& m, const BigInt& r) const {
  const BigInt m_red = m.mod_floor(n_);
  // (1 + N)^m = 1 + m*N (mod N^2)
  const BigInt gm = (BigInt(1) + m_red * n_).mod_floor(n2_);
  const BigInt rn = mont_n2_.pow(r, n_);
  return bignum::mod_mul(gm, rn, n2_);
}

BigInt PaillierPublicKey::add(const BigInt& ca, const BigInt& cb) const {
  return bignum::mod_mul(ca, cb, n2_);
}

BigInt PaillierPublicKey::mul_scalar(const BigInt& c, const BigInt& scalar) const {
  if (scalar.is_negative()) {
    const BigInt inv = bignum::mod_inverse(c, n2_);
    return mont_n2_.pow(inv, -scalar);
  }
  return mont_n2_.pow(c, scalar);
}

BigInt PaillierPublicKey::negate(const BigInt& c) const { return bignum::mod_inverse(c, n2_); }

BigInt PaillierPublicKey::rerandomize(const BigInt& c, crypto::Prg& prg) const {
  const BigInt r = BigInt::random_below(prg, n_ - BigInt(1)) + BigInt(1);
  return bignum::mod_mul(c, mont_n2_.pow(r, n_), n2_);
}

void PaillierPublicKey::serialize(Writer& w) const { bignum::write_bigint(w, n_); }

PaillierPublicKey PaillierPublicKey::deserialize(Reader& r) {
  return PaillierPublicKey(bignum::read_bigint(r));
}

PaillierPrivateKey::PaillierPrivateKey(BigInt p, BigInt q) : pk_(p * q) {
  if (p == q) throw InvalidArgument("PaillierPrivateKey: p and q must differ");
  const BigInt p1 = p - BigInt(1);
  const BigInt q1 = q - BigInt(1);
  lambda_ = (p1 * q1) / bignum::gcd(p1, q1);  // lcm
  // mu = (L(g^lambda mod N^2))^{-1} mod N; with g = N+1,
  // g^lambda = 1 + lambda*N mod N^2, so L(g^lambda) = lambda mod N.
  mu_ = bignum::mod_inverse(lambda_, pk_.n());
}

BigInt PaillierPrivateKey::decrypt(const BigInt& c) const {
  const BigInt& n = pk_.n();
  const BigInt& n2 = pk_.n_squared();
  if (c.is_negative() || c >= n2) throw InvalidArgument("Paillier decrypt: ciphertext range");
  if (!bignum::gcd(c, n).is_one()) throw CryptoError("Paillier decrypt: invalid ciphertext");
  const BigInt u = bignum::mod_pow(c, lambda_, n2);
  const BigInt l = (u - BigInt(1)) / n;  // L function
  return bignum::mod_mul(l, mu_, n);
}

BigInt PaillierPrivateKey::decrypt_signed(const BigInt& c) const {
  const BigInt m = decrypt(c);
  const BigInt half = pk_.n() >> 1;
  return m > half ? m - pk_.n() : m;
}

PaillierPrivateKey paillier_keygen(crypto::Prg& prg, std::size_t modulus_bits) {
  if (modulus_bits < 16) throw InvalidArgument("paillier_keygen: modulus too small");
  const std::size_t half = modulus_bits / 2;
  for (;;) {
    const BigInt p = bignum::random_prime(prg, half);
    const BigInt q = bignum::random_prime(prg, modulus_bits - half);
    if (p == q) continue;
    // Guarantee gcd(N, phi(N)) = 1 (needed for correctness); distinct
    // same-size primes give this automatically unless p | q-1 or q | p-1,
    // which trial keygen simply retries on.
    const BigInt n = p * q;
    if (n.bit_length() != modulus_bits) continue;
    if (!bignum::gcd(n, (p - BigInt(1)) * (q - BigInt(1))).is_one()) continue;
    return PaillierPrivateKey(p, q);
  }
}

}  // namespace spfe::he
