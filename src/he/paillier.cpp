#include "he/paillier.h"

#include "bignum/multiexp.h"
#include "bignum/primes.h"
#include "bignum/serialize.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/secret.h"
#include "obs/obs.h"

namespace spfe::he {

using bignum::BigInt;

PaillierPublicKey::PaillierPublicKey(BigInt n)
    : n_(std::move(n)), n2_(n_ * n_), mont_n2_(n2_) {
  if (n_ <= BigInt(3) || !n_.is_odd()) {
    throw InvalidArgument("PaillierPublicKey: N must be an odd composite > 3");
  }
}

BigInt PaillierPublicKey::random_unit(crypto::Prg& prg) const {
  // Draw directly from [0, N) and reject 0, so the support is exactly
  // [1, N) as documented (including N - 1) with no off-by-one at either end.
  // The zero test scans every limb through the mask primitives; only the
  // final accept/reject bit is declassified, which is safe by design:
  // rejected draws are discarded and independent of the surviving secret.
  for (;;) {
    BigInt r = BigInt::random_below(prg, n_);
    common::SecretBool nonzero;
    for (const std::uint64_t limb : r.limbs()) {
      nonzero = nonzero | common::SecretBool::from_mask(common::ct_is_nonzero_u64(limb));
    }
    // SPFE_DECLASSIFY: rejection-sampling accept bit; rejected draws are discarded and independent of the survivor
    if (nonzero.declassify()) return r;
  }
}

BigInt PaillierPublicKey::encrypt(const BigInt& m, crypto::Prg& prg) const {
  return encrypt_with_randomness(m, random_unit(prg));
}

BigInt PaillierPublicKey::encrypt_with_randomness(const BigInt& m, const BigInt& r) const {
  return encrypt_with_factor(m, encryption_factor(r));
}

BigInt PaillierPublicKey::encryption_factor(const BigInt& r) const {
  return mont_n2_.pow(r, n_);
}

BigInt PaillierPublicKey::encrypt_with_factor(const BigInt& m, const BigInt& rn) const {
  obs::count(obs::Op::kPaillierEncrypt);
  const BigInt m_red = m.mod_floor(n_);
  // (1 + N)^m = 1 + m*N (mod N^2)
  const BigInt gm = (BigInt(1) + m_red * n_).mod_floor(n2_);
  return bignum::mod_mul(gm, rn, n2_);
}

BigInt PaillierPublicKey::rerandomize_with_factor(const BigInt& c, const BigInt& rn) const {
  obs::count(obs::Op::kPaillierRerandomize);
  return bignum::mod_mul(c, rn, n2_);
}

BigInt PaillierPublicKey::add(const BigInt& ca, const BigInt& cb) const {
  return bignum::mod_mul(ca, cb, n2_);
}

BigInt PaillierPublicKey::mul_scalar(const BigInt& c, const BigInt& scalar) const {
  // Reduce the scalar into [0, N) first: exponents congruent mod N encrypt
  // the same plaintext (c*a mod N), so the reduction is semantics-preserving,
  // bounds the modexp at |N| bits however large the protocol-level scalar
  // is, and folds the negative-scalar case into the same single modexp.
  return mont_n2_.pow(c, scalar.mod_floor(n_));
}

BigInt PaillierPublicKey::mul_scalar_sum(std::span<const BigInt> cts,
                                         std::span<const BigInt> scalars) const {
  if (cts.size() != scalars.size()) {
    throw InvalidArgument("Paillier mul_scalar_sum: size mismatch");
  }
  // Reduce scalars into [0, N) first — same semantics as mul_scalar (the
  // exponent is only meaningful mod N) and it bounds the multi-exp width.
  std::vector<BigInt> reduced(scalars.size());
  for (std::size_t i = 0; i < scalars.size(); ++i) reduced[i] = scalars[i].mod_floor(n_);
  return bignum::multi_pow(mont_n2_, cts, reduced);
}

std::vector<BigInt> PaillierPublicKey::mul_scalar_sum_matrix(
    std::span<const BigInt> cts, const std::vector<std::vector<BigInt>>& scalars) const {
  std::vector<std::vector<BigInt>> reduced(scalars.size());
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    reduced[i].resize(scalars[i].size());
    for (std::size_t c = 0; c < scalars[i].size(); ++c) {
      reduced[i][c] = scalars[i][c].mod_floor(n_);
    }
  }
  return bignum::multi_pow_matrix(mont_n2_, cts, reduced);
}

BigInt PaillierPublicKey::negate(const BigInt& c) const { return bignum::mod_inverse(c, n2_); }

BigInt PaillierPublicKey::rerandomize(const BigInt& c, crypto::Prg& prg) const {
  return rerandomize_with_randomness(c, random_unit(prg));
}

BigInt PaillierPublicKey::rerandomize_with_randomness(const BigInt& c, const BigInt& r) const {
  return rerandomize_with_factor(c, encryption_factor(r));
}

void PaillierPublicKey::rerandomize_all(std::span<BigInt> cts, crypto::Prg& prg) const {
  std::vector<BigInt> rs(cts.size());
  for (BigInt& r : rs) r = random_unit(prg);
  common::parallel_for(cts.size(), [&](std::size_t i) {
    cts[i] = rerandomize_with_randomness(cts[i], rs[i]);
  });
}

void PaillierPublicKey::serialize(Writer& w) const { bignum::write_bigint(w, n_); }

PaillierPublicKey PaillierPublicKey::deserialize(Reader& r) {
  return PaillierPublicKey(bignum::read_bigint(r));
}

namespace {

// Keygen guarantees gcd(N, phi(N)) = 1 (needed for the decryption equation
// to hold), but the constructor is public and can be handed adversarial
// factors — enforce the invariant here rather than trusting the caller.
BigInt checked_modulus(const BigInt& p, const BigInt& q) {
  if (p == q) throw InvalidArgument("PaillierPrivateKey: p and q must differ");
  if (p <= BigInt(2) || q <= BigInt(2) || !p.is_odd() || !q.is_odd()) {
    throw InvalidArgument("PaillierPrivateKey: p and q must be odd and > 2");
  }
  if (!bignum::gcd(p, q).is_one()) {
    throw InvalidArgument("PaillierPrivateKey: p and q must be coprime");
  }
  const BigInt n = p * q;
  if (!bignum::gcd(n, (p - BigInt(1)) * (q - BigInt(1))).is_one()) {
    throw InvalidArgument("PaillierPrivateKey: gcd(N, phi(N)) must be 1");
  }
  return n;
}

}  // namespace

PaillierPrivateKey::PaillierPrivateKey(BigInt p, BigInt q)
    : pk_(checked_modulus(p, q)),
      p_(std::move(p)),
      q_(std::move(q)),
      p2_(p_ * p_),
      q2_(q_ * q_),
      mont_p2_(p2_),
      mont_q2_(q2_),
      ep_(p_ - BigInt(1)),
      eq_(q_ - BigInt(1)) {
  lambda_ = (ep_ * eq_) / bignum::gcd(ep_, eq_);  // lcm(p-1, q-1)
  // mu = (L(g^lambda mod N^2))^{-1} mod N; with g = N+1,
  // g^lambda = 1 + lambda*N mod N^2, so L(g^lambda) = lambda mod N.
  mu_ = bignum::mod_inverse(lambda_, pk_.n());
  // CRT precomputation. For c = g^m r^N in Z_{N^2}^*, working mod p^2:
  // c^{p-1} = (1+N)^{m(p-1)} * (r^{p(p-1)})^q = 1 + m(p-1)N mod p^2, so
  // L_p(c^{p-1} mod p^2) = m * (p-1) * q mod p and multiplying by
  // hp = ((p-1)q)^{-1} mod p recovers m mod p. Symmetrically mod q.
  hp_ = bignum::mod_inverse(bignum::mod_mul(ep_, q_, p_), p_);
  hq_ = bignum::mod_inverse(bignum::mod_mul(eq_, p_, q_), q_);
  pinv_q_ = bignum::mod_inverse(p_, q_);
}

void PaillierPrivateKey::check_ciphertext(const BigInt& c) const {
  if (c.is_negative() || c >= pk_.n_squared()) {
    throw InvalidArgument("Paillier decrypt: ciphertext range");
  }
}

// CRT decryption. The two half-size modexps run under the constant-time
// MontgomeryContext::pow with the fixed secret exponents p-1 and q-1; the
// surrounding L-function divisions and the CRT recombination are exact
// divisions/reductions by the fixed key moduli, whose Knuth-D cost is
// determined by the (per-key-constant) operand widths. Residual per-value
// timing jitter (qhat corrections) is smoke-checked by the dudect harness
// in tests/ct_harness_test.cpp.
BigInt PaillierPrivateKey::decrypt(const BigInt& c) const {
  obs::count(obs::Op::kPaillierDecrypt);
  check_ciphertext(c);
  const BigInt cp = c.mod_floor(p2_);
  const BigInt cq = c.mod_floor(q2_);
  // gcd(c, N) is 1 unless p or q divides c — check the residues directly
  // rather than running Euclid on the 2|N|-bit ciphertext.
  if (cp.mod_floor(p_).is_zero() || cq.mod_floor(q_).is_zero()) {
    throw CryptoError("Paillier decrypt: invalid ciphertext");
  }
  const BigInt up = mont_p2_.pow(cp, ep_);
  const BigInt mp = bignum::mod_mul((up - BigInt(1)) / p_, hp_, p_);
  const BigInt uq = mont_q2_.pow(cq, eq_);
  const BigInt mq = bignum::mod_mul((uq - BigInt(1)) / q_, hq_, q_);
  return bignum::crt_combine(mp, p_, mq, q_, pinv_q_);
}

BigInt PaillierPrivateKey::decrypt_reference(const BigInt& c) const {
  obs::count(obs::Op::kPaillierDecrypt);
  check_ciphertext(c);
  if (!bignum::gcd(c, pk_.n()).is_one()) {
    throw CryptoError("Paillier decrypt: invalid ciphertext");
  }
  const BigInt& n = pk_.n();
  const BigInt u = bignum::mod_pow(c, lambda_, pk_.n_squared());
  const BigInt l = (u - BigInt(1)) / n;  // L function
  return bignum::mod_mul(l, mu_, n);
}

std::vector<BigInt> PaillierPrivateKey::decrypt_all(std::span<const BigInt> cts) const {
  std::vector<BigInt> out(cts.size());
  common::parallel_for(cts.size(), [&](std::size_t i) { out[i] = decrypt(cts[i]); });
  return out;
}

BigInt PaillierPrivateKey::decrypt_signed(const BigInt& c) const {
  const BigInt m = decrypt(c);
  const BigInt half = pk_.n() >> 1;
  return m > half ? m - pk_.n() : m;
}

PaillierPrivateKey paillier_keygen(crypto::Prg& prg, std::size_t modulus_bits) {
  if (modulus_bits < 16) throw InvalidArgument("paillier_keygen: modulus too small");
  const std::size_t half = modulus_bits / 2;
  for (;;) {
    const BigInt p = bignum::random_prime(prg, half);
    const BigInt q = bignum::random_prime(prg, modulus_bits - half);
    if (p == q) continue;
    // Guarantee gcd(N, phi(N)) = 1 (needed for correctness); distinct
    // same-size primes give this automatically unless p | q-1 or q | p-1,
    // which trial keygen simply retries on.
    const BigInt n = p * q;
    if (n.bit_length() != modulus_bits) continue;
    if (!bignum::gcd(n, (p - BigInt(1)) * (q - BigInt(1))).is_one()) continue;
    return PaillierPrivateKey(p, q);
  }
}

}  // namespace spfe::he
