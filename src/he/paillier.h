// Paillier additively homomorphic encryption (cited as [41] in the paper).
//
// Plaintext group is Z_N; ciphertexts live in Z_{N^2}^*. The homomorphism is
// exactly what §3.3.2/§3.3.3/§3.3.4/§4 require:
//   E(a) (*) E(b)   = E(a + b mod N)      (ciphertext multiplication)
//   E(a) ^ c        = E(c * a mod N)      (scalar exponentiation)
// Protocols that work over a small ring Z_u embed Z_u in Z_N (u << N) and
// track value ranges so blinding stays statistically hiding — see
// mpc/arith_protocol.h for the bookkeeping.
//
// Encryption uses g = N + 1, so E(m, r) = (1 + m*N) * r^N mod N^2 costs a
// single modexp. Decryption is CRT-free: L(c^lambda mod N^2) * mu mod N.
#pragma once

#include <cstddef>

#include "bignum/bigint.h"
#include "bignum/modarith.h"
#include "common/serialize.h"
#include "crypto/prg.h"

namespace spfe::he {

class PaillierPublicKey {
 public:
  explicit PaillierPublicKey(bignum::BigInt n);

  const bignum::BigInt& n() const { return n_; }
  const bignum::BigInt& n_squared() const { return n2_; }
  std::size_t modulus_bits() const { return n_.bit_length(); }
  // Serialized ciphertext size in bytes (fixed width).
  std::size_t ciphertext_bytes() const { return (n2_.bit_length() + 7) / 8; }

  // Encrypts m (reduced mod N) with fresh randomness from `prg`.
  bignum::BigInt encrypt(const bignum::BigInt& m, crypto::Prg& prg) const;
  // Deterministic encryption with explicit randomness r in Z_N^*.
  bignum::BigInt encrypt_with_randomness(const bignum::BigInt& m,
                                         const bignum::BigInt& r) const;

  // E(a) * E(b) = E(a + b).
  bignum::BigInt add(const bignum::BigInt& ca, const bignum::BigInt& cb) const;
  // E(a)^c = E(c * a). Negative scalars use the group inverse.
  bignum::BigInt mul_scalar(const bignum::BigInt& c, const bignum::BigInt& scalar) const;
  // E(a) -> E(-a).
  bignum::BigInt negate(const bignum::BigInt& c) const;
  // Refreshes randomness without changing the plaintext.
  bignum::BigInt rerandomize(const bignum::BigInt& c, crypto::Prg& prg) const;

  void serialize(Writer& w) const;
  static PaillierPublicKey deserialize(Reader& r);

  bool operator==(const PaillierPublicKey& o) const { return n_ == o.n_; }

 private:
  bignum::BigInt n_;
  bignum::BigInt n2_;
  bignum::MontgomeryContext mont_n2_;
};

class PaillierPrivateKey {
 public:
  PaillierPrivateKey(bignum::BigInt p, bignum::BigInt q);

  const PaillierPublicKey& public_key() const { return pk_; }

  bignum::BigInt decrypt(const bignum::BigInt& c) const;
  // Decrypts into the symmetric range (-N/2, N/2]; used by protocols that
  // encode signed differences.
  bignum::BigInt decrypt_signed(const bignum::BigInt& c) const;

 private:
  PaillierPublicKey pk_;
  bignum::BigInt lambda_;  // lcm(p-1, q-1)
  bignum::BigInt mu_;      // lambda^{-1} mod N
};

struct PaillierKeyPair {
  PaillierPrivateKey sk;
};

// Generates a key with an N of `modulus_bits` bits (two primes of half size).
PaillierPrivateKey paillier_keygen(crypto::Prg& prg, std::size_t modulus_bits);

}  // namespace spfe::he
