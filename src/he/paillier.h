// Paillier additively homomorphic encryption (cited as [41] in the paper).
//
// Plaintext group is Z_N; ciphertexts live in Z_{N^2}^*. The homomorphism is
// exactly what §3.3.2/§3.3.3/§3.3.4/§4 require:
//   E(a) (*) E(b)   = E(a + b mod N)      (ciphertext multiplication)
//   E(a) ^ c        = E(c * a mod N)      (scalar exponentiation)
// Protocols that work over a small ring Z_u embed Z_u in Z_N (u << N) and
// track value ranges so blinding stays statistically hiding — see
// mpc/arith_protocol.h for the bookkeeping.
//
// Encryption uses g = N + 1, so E(m, r) = (1 + m*N) * r^N mod N^2 costs a
// single modexp. Decryption uses the standard CRT split: with knowledge of
// p and q, m mod p = L_p(c^{p-1} mod p^2) * h_p mod p (h_p precomputed, and
// symmetrically mod q), recombined with bignum::crt_combine — two half-size
// modexps with half-size exponents, ~4x cheaper than the direct
// L(c^lambda mod N^2) * mu mod N path, which is kept as
// `decrypt_reference` for equivalence tests and the ablation benchmark.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/modarith.h"
#include "common/serialize.h"
#include "crypto/prg.h"

namespace spfe::he {

class PaillierPublicKey {
 public:
  explicit PaillierPublicKey(bignum::BigInt n);

  const bignum::BigInt& n() const { return n_; }
  const bignum::BigInt& n_squared() const { return n2_; }
  std::size_t modulus_bits() const { return n_.bit_length(); }
  // Serialized ciphertext size in bytes (fixed width).
  std::size_t ciphertext_bytes() const { return (n2_.bit_length() + 7) / 8; }

  // Encrypts m (reduced mod N) with fresh randomness from `prg`.
  bignum::BigInt encrypt(const bignum::BigInt& m, crypto::Prg& prg) const;
  // Deterministic encryption with explicit randomness r in Z_N^*.
  bignum::BigInt encrypt_with_randomness(const bignum::BigInt& m,
                                         const bignum::BigInt& r) const;

  // The message-independent encryption factor r^N mod N^2 — the entire
  // modexp cost of an encryption. Precomputable offline (he/precomp.h).
  bignum::BigInt encryption_factor(const bignum::BigInt& r) const;
  // Encrypts m with a precomputed factor rn = encryption_factor(r): one
  // modular multiplication. encrypt_with_factor(m, encryption_factor(r)) ==
  // encrypt_with_randomness(m, r).
  bignum::BigInt encrypt_with_factor(const bignum::BigInt& m,
                                     const bignum::BigInt& rn) const;
  // Rerandomization with a precomputed factor: c * rn mod N^2.
  bignum::BigInt rerandomize_with_factor(const bignum::BigInt& c,
                                         const bignum::BigInt& rn) const;

  // Uniform randomness in [1, N) for encryption/rerandomization; gcd(r, N)
  // is 1 except with negligible probability (a violation would factor N).
  bignum::BigInt random_unit(crypto::Prg& prg) const;

  // E(a) * E(b) = E(a + b).
  bignum::BigInt add(const bignum::BigInt& ca, const bignum::BigInt& cb) const;
  // E(a)^c = E(c * a). Negative scalars use the group inverse.
  bignum::BigInt mul_scalar(const bignum::BigInt& c, const bignum::BigInt& scalar) const;
  // Homomorphic weighted sum E(sum_i scalars[i] * a_i) = prod_i cts[i]^{scalars[i]}
  // evaluated as one simultaneous multi-exponentiation (shared squaring
  // chain) instead of |cts| independent modexps. Byte-identical to folding
  // mul_scalar results with add.
  bignum::BigInt mul_scalar_sum(std::span<const bignum::BigInt> cts,
                                std::span<const bignum::BigInt> scalars) const;
  // Column-wise batch of the above: out[c] = E(sum_i scalars[i][c] * a_i).
  // Window/comb tables are shared across columns and the columns fan out
  // across the global thread pool — the cPIR server fold kernel.
  std::vector<bignum::BigInt> mul_scalar_sum_matrix(
      std::span<const bignum::BigInt> cts,
      const std::vector<std::vector<bignum::BigInt>>& scalars) const;
  // E(a) -> E(-a).
  bignum::BigInt negate(const bignum::BigInt& c) const;
  // Refreshes randomness without changing the plaintext.
  bignum::BigInt rerandomize(const bignum::BigInt& c, crypto::Prg& prg) const;
  // Deterministic rerandomization with explicit r in Z_N^*; lets callers
  // pre-draw randomness serially and fan the modexps out across threads.
  bignum::BigInt rerandomize_with_randomness(const bignum::BigInt& c,
                                             const bignum::BigInt& r) const;
  // Rerandomizes every ciphertext in place: randomness is pre-drawn
  // serially (PRG order matches a fully serial run), the modexps fan out
  // across the global thread pool.
  void rerandomize_all(std::span<bignum::BigInt> cts, crypto::Prg& prg) const;

  void serialize(Writer& w) const;
  static PaillierPublicKey deserialize(Reader& r);

  bool operator==(const PaillierPublicKey& o) const { return n_ == o.n_; }

 private:
  bignum::BigInt n_;
  bignum::BigInt n2_;
  bignum::MontgomeryContext mont_n2_;
};

class PaillierPrivateKey {
 public:
  // Requires odd p != q > 2 with gcd(pq, (p-1)(q-1)) = 1 (the keygen
  // invariant the decryption equation relies on); throws InvalidArgument
  // otherwise, so adversarially constructed keys fail fast.
  PaillierPrivateKey(bignum::BigInt p, bignum::BigInt q);

  const PaillierPublicKey& public_key() const { return pk_; }

  // CRT decryption (see the file comment); the default fast path.
  bignum::BigInt decrypt(const bignum::BigInt& c) const;
  // Reference CRT-free decryption L(c^lambda mod N^2) * mu mod N. Same
  // output as `decrypt` for every c in Z_{N^2}^*; ~4x slower.
  bignum::BigInt decrypt_reference(const bignum::BigInt& c) const;
  // Batch decryption fanned out across the global thread pool; element i of
  // the result is decrypt(cts[i]).
  std::vector<bignum::BigInt> decrypt_all(std::span<const bignum::BigInt> cts) const;
  // Decrypts into the symmetric range (-N/2, N/2]; used by protocols that
  // encode signed differences.
  bignum::BigInt decrypt_signed(const bignum::BigInt& c) const;

 private:
  void check_ciphertext(const bignum::BigInt& c) const;

  PaillierPublicKey pk_;
  bignum::BigInt lambda_;  // lcm(p-1, q-1)
  bignum::BigInt mu_;      // lambda^{-1} mod N
  bignum::BigInt p_;
  bignum::BigInt q_;
  bignum::BigInt p2_;  // p^2
  bignum::BigInt q2_;  // q^2
  bignum::MontgomeryContext mont_p2_;
  bignum::MontgomeryContext mont_q2_;
  bignum::BigInt ep_;  // p - 1 (CRT decryption exponent mod p^2)
  bignum::BigInt eq_;  // q - 1
  bignum::BigInt hp_;  // ((p-1) * q)^{-1} mod p
  bignum::BigInt hq_;  // ((q-1) * p)^{-1} mod q
  bignum::BigInt pinv_q_;  // p^{-1} mod q (CRT recombination)
};

struct PaillierKeyPair {
  PaillierPrivateKey sk;
};

// Generates a key with an N of `modulus_bits` bits (two primes of half size).
PaillierPrivateKey paillier_keygen(crypto::Prg& prg, std::size_t modulus_bits);

}  // namespace spfe::he
