// Private simultaneous messages (PSM) protocols — the §3.2 building block.
//
// In the PSM model, m players share a common random input r (unknown to the
// referee); player j sends a single message p_j determined by its input y_j
// and r; an extra input-less player P0 sends a message determined by r
// alone. The referee reconstructs f(y_1..y_m) from the m+1 messages and
// learns nothing else. The paper measures a PSM protocol by (alpha, beta):
// per-player message length alpha and extra-message length beta.
//
// Two instantiations:
//   - SumPsm (the paper's Example 1): f = sum over Z_u; p_j = y_j + r_j with
//     the r_j summing to zero. (alpha, beta) = (item length, 0), perfectly
//     secure.
//   - YaoPsm ([23, 46]): any Boolean circuit f. All players derive the same
//     garbling from r; player j sends the active labels of its input wires;
//     P0 sends the garbled circuit. (alpha, beta) = (kappa * bits_per_player,
//     O(kappa * C_f)), computationally secure.
//
// The §3.2 SPFE construction (spfe/psm_spfe.h) puts a SPIR protocol on top:
// each server materializes the *virtual database* of player-j messages over
// all possible data items, and the client retrieves the message matching its
// selected index.
#pragma once

#include <cstdint>
#include <vector>

#include "circuits/boolean_circuit.h"
#include "common/bytes.h"
#include "crypto/prg.h"

namespace spfe::psm {

class SumPsm {
 public:
  SumPsm(std::size_t num_players, std::uint64_t modulus);

  std::size_t num_players() const { return m_; }
  std::uint64_t modulus() const { return u_; }
  // alpha: fixed per-player message length (8 bytes; a Z_u element).
  std::size_t message_bytes() const { return 8; }

  // Player j's message on input y under common randomness `seed`.
  Bytes player_message(std::size_t j, std::uint64_t y, const crypto::Prg::Seed& seed) const;
  // Player j's messages for many inputs at once (the §3.2 virtual database;
  // shares the randomness derivation across items).
  std::vector<Bytes> player_messages(std::size_t j, std::span<const std::uint64_t> ys,
                                     const crypto::Prg::Seed& seed) const;
  // P0's message (empty: beta = 0).
  Bytes referee_extra(const crypto::Prg::Seed& seed) const;
  std::uint64_t reconstruct(const std::vector<Bytes>& messages, const Bytes& extra) const;

  // The player-j mask r_j (used by tests to verify the zero-sum property).
  std::uint64_t mask_of(std::size_t j, const crypto::Prg::Seed& seed) const;

 private:
  std::size_t m_;
  std::uint64_t u_;
};

class YaoPsm {
 public:
  // `circuit` has num_players * bits_per_player inputs; player j owns wires
  // [j * bits_per_player, (j+1) * bits_per_player).
  YaoPsm(const circuits::BooleanCircuit& circuit, std::size_t num_players,
         std::size_t bits_per_player);

  std::size_t num_players() const { return m_; }
  std::size_t bits_per_player() const { return bits_; }
  std::size_t message_bytes() const;  // alpha

  Bytes player_message(std::size_t j, std::uint64_t y, const crypto::Prg::Seed& seed) const;
  // Batch variant: garbles once and emits one message per input value.
  std::vector<Bytes> player_messages(std::size_t j, std::span<const std::uint64_t> ys,
                                     const crypto::Prg::Seed& seed) const;
  Bytes referee_extra(const crypto::Prg::Seed& seed) const;  // the garbled circuit
  std::vector<bool> reconstruct(const std::vector<Bytes>& messages, const Bytes& extra) const;

 private:
  const circuits::BooleanCircuit& circuit_;
  std::size_t m_;
  std::size_t bits_;
};

}  // namespace spfe::psm
