// Perfectly secure PSM from mod-2 branching programs ([30] in the paper —
// the instantiation behind Corollary 4(2) for general functions).
//
// Construction (Ishai–Kushilevitz randomizing polynomials, determinant
// form): the BP's path matrix M(x) over GF(2) has unit subdiagonal, zeros
// below, det(M(x)) = f(x), and decomposes affinely by player:
//     M(x) = M_const + sum_j M_j(x_j).
// The common randomness is a pair (L, R) of uniform *unit upper-triangular*
// matrices plus zero-sum masks Z_j. Player j sends L*M_j(x_j)*R + Z_j; the
// extra player sends L*M_const*R + Z_0; the referee sums and takes the
// determinant. The group action L*M*R is transitive on each determinant
// class of such matrices (Gaussian reduction by the subdiagonal pivots uses
// exactly row operations r_i += c*r_j (j > i) and column operations
// c_j += c*c_i (i < j)), so the encoding's distribution depends only on
// f(x): *perfect* privacy. Verified exhaustively for small dimensions in
// tests/psm_bp_test.cpp.
//
// (alpha, beta) = (dim^2 bits, dim^2 bits) where dim = #BP vertices - 1.
#pragma once

#include <cstdint>
#include <vector>

#include "circuits/branching_program.h"
#include "common/bytes.h"
#include "crypto/prg.h"
#include "field/gf2.h"

namespace spfe::psm {

class BpPsm {
 public:
  // One player per BP argument slot (player j holds argument j).
  explicit BpPsm(circuits::BranchingProgram bp);

  std::size_t num_players() const { return m_; }
  std::size_t matrix_dim() const { return bp_.matrix_dim(); }
  std::size_t message_bytes() const { return field::Gf2Matrix::byte_size(matrix_dim()); }

  Bytes player_message(std::size_t j, std::uint64_t y, const crypto::Prg::Seed& seed) const;
  std::vector<Bytes> player_messages(std::size_t j, std::span<const std::uint64_t> ys,
                                     const crypto::Prg::Seed& seed) const;
  Bytes referee_extra(const crypto::Prg::Seed& seed) const;
  bool reconstruct(const std::vector<Bytes>& messages, const Bytes& extra) const;

  // Exposed for the privacy tests: the encoded matrix L*M(x)*R.
  field::Gf2Matrix encode(const std::vector<std::uint64_t>& args,
                          const crypto::Prg::Seed& seed) const;

 private:
  struct Randomness {
    field::Gf2Matrix l;
    field::Gf2Matrix r;
    std::vector<field::Gf2Matrix> masks;  // m player masks + 1 extra, XOR = 0
  };
  Randomness derive(const crypto::Prg::Seed& seed) const;
  field::Gf2Matrix m_const() const;
  field::Gf2Matrix m_player(std::size_t j, std::uint64_t y) const;

  circuits::BranchingProgram bp_;
  std::size_t m_;
};

}  // namespace spfe::psm
