#include "psm/psm.h"

#include "common/error.h"
#include "common/serialize.h"
#include "mpc/yao.h"

namespace spfe::psm {
namespace {

std::uint64_t add_mod(std::uint64_t a, std::uint64_t b, std::uint64_t u) {
  return static_cast<std::uint64_t>((static_cast<unsigned __int128>(a) + b) % u);
}

}  // namespace

SumPsm::SumPsm(std::size_t num_players, std::uint64_t modulus) : m_(num_players), u_(modulus) {
  if (num_players == 0) throw InvalidArgument("SumPsm: need at least one player");
  if (modulus < 2) throw InvalidArgument("SumPsm: modulus must be >= 2");
}

std::uint64_t SumPsm::mask_of(std::size_t j, const crypto::Prg::Seed& seed) const {
  if (j >= m_) throw InvalidArgument("SumPsm: player index out of range");
  // r_1..r_{m-1} are uniform; r_m = -(r_1 + ... + r_{m-1}).
  crypto::Prg prg(seed);
  crypto::Prg masks = prg.fork("sum-psm-masks");
  std::uint64_t sum = 0;
  std::uint64_t r_j = 0;
  for (std::size_t i = 0; i + 1 < m_; ++i) {
    const std::uint64_t r = masks.uniform(u_);
    if (i == j) r_j = r;
    sum = add_mod(sum, r, u_);
  }
  if (j + 1 == m_) r_j = (u_ - sum) % u_;
  return r_j;
}

Bytes SumPsm::player_message(std::size_t j, std::uint64_t y,
                             const crypto::Prg::Seed& seed) const {
  Writer w;
  w.u64(add_mod(y % u_, mask_of(j, seed), u_));
  return w.take();
}

std::vector<Bytes> SumPsm::player_messages(std::size_t j, std::span<const std::uint64_t> ys,
                                           const crypto::Prg::Seed& seed) const {
  const std::uint64_t r_j = mask_of(j, seed);
  std::vector<Bytes> out;
  out.reserve(ys.size());
  for (const std::uint64_t y : ys) {
    Writer w;
    w.u64(add_mod(y % u_, r_j, u_));
    out.push_back(w.take());
  }
  return out;
}

Bytes SumPsm::referee_extra(const crypto::Prg::Seed&) const { return {}; }

std::uint64_t SumPsm::reconstruct(const std::vector<Bytes>& messages, const Bytes& extra) const {
  if (messages.size() != m_) throw InvalidArgument("SumPsm: wrong message count");
  if (!extra.empty()) throw InvalidArgument("SumPsm: unexpected extra message");
  std::uint64_t acc = 0;
  for (const Bytes& msg : messages) {
    Reader r(msg);
    acc = add_mod(acc, r.u64() % u_, u_);
    r.expect_done();
  }
  return acc;
}

YaoPsm::YaoPsm(const circuits::BooleanCircuit& circuit, std::size_t num_players,
               std::size_t bits_per_player)
    : circuit_(circuit), m_(num_players), bits_(bits_per_player) {
  if (num_players == 0 || bits_per_player == 0) {
    throw InvalidArgument("YaoPsm: need players and bits");
  }
  if (circuit.num_inputs() != num_players * bits_per_player) {
    throw InvalidArgument("YaoPsm: circuit inputs must equal players * bits");
  }
}

std::size_t YaoPsm::message_bytes() const { return bits_ * mpc::kLabelBytes; }

Bytes YaoPsm::player_message(std::size_t j, std::uint64_t y,
                             const crypto::Prg::Seed& seed) const {
  if (j >= m_) throw InvalidArgument("YaoPsm: player index out of range");
  // All players derive the identical garbling from the shared seed; the
  // message is the active label of each owned wire.
  crypto::Prg prg(crypto::Prg(seed).fork_seed("yao-psm-garble"));
  const mpc::GarblingResult g = mpc::garble(circuit_, prg);
  Writer w;
  for (std::size_t b = 0; b < bits_; ++b) {
    // ct_get: y is the player's private input — the active-label selection
    // must not branch on its bits.
    const bool bit = ((y >> b) & 1) != 0;
    w.raw(mpc::label_to_bytes(g.input_labels[j * bits_ + b].ct_get(bit)));
  }
  return w.take();
}

std::vector<Bytes> YaoPsm::player_messages(std::size_t j, std::span<const std::uint64_t> ys,
                                           const crypto::Prg::Seed& seed) const {
  if (j >= m_) throw InvalidArgument("YaoPsm: player index out of range");
  crypto::Prg prg(crypto::Prg(seed).fork_seed("yao-psm-garble"));
  const mpc::GarblingResult g = mpc::garble(circuit_, prg);
  std::vector<Bytes> out;
  out.reserve(ys.size());
  for (const std::uint64_t y : ys) {
    Writer w;
    for (std::size_t b = 0; b < bits_; ++b) {
      const bool bit = ((y >> b) & 1) != 0;
      w.raw(mpc::label_to_bytes(g.input_labels[j * bits_ + b].ct_get(bit)));
    }
    out.push_back(w.take());
  }
  return out;
}

Bytes YaoPsm::referee_extra(const crypto::Prg::Seed& seed) const {
  crypto::Prg prg(crypto::Prg(seed).fork_seed("yao-psm-garble"));
  const mpc::GarblingResult g = mpc::garble(circuit_, prg);
  return g.garbled.serialize();
}

std::vector<bool> YaoPsm::reconstruct(const std::vector<Bytes>& messages,
                                      const Bytes& extra) const {
  if (messages.size() != m_) throw InvalidArgument("YaoPsm: wrong message count");
  const mpc::GarbledCircuit gc = mpc::GarbledCircuit::deserialize(extra);
  std::vector<mpc::Label> active;
  active.reserve(m_ * bits_);
  for (const Bytes& msg : messages) {
    Reader r(msg);
    for (std::size_t b = 0; b < bits_; ++b) {
      active.push_back(mpc::label_from_bytes(r.raw(mpc::kLabelBytes)));
    }
    r.expect_done();
  }
  return mpc::evaluate(circuit_, gc, active);
}

}  // namespace spfe::psm
