#include "psm/psm_bp.h"

#include "common/error.h"

namespace spfe::psm {

using circuits::BpEdge;
using field::Gf2Matrix;

BpPsm::BpPsm(circuits::BranchingProgram bp) : bp_(std::move(bp)), m_(bp_.arity()) {
  if (m_ == 0) throw InvalidArgument("BpPsm: branching program reads no inputs");
  if (bp_.matrix_dim() > 64) {
    throw InvalidArgument("BpPsm: branching program too large (matrix dim > 64)");
  }
}

Gf2Matrix BpPsm::m_const() const {
  const std::size_t dim = bp_.matrix_dim();
  Gf2Matrix m(dim);
  // Subdiagonal 1s from the -I part of (A - I).
  for (std::size_t c = 0; c + 1 < dim; ++c) m.set(c + 1, c, true);
  for (const BpEdge& e : bp_.edges()) {
    // M[r][c] = (A - I)[r][c+1] with r = from, c = to - 1.
    const std::size_t r = e.from;
    const std::size_t c = e.to - 1;
    if (e.guard.is_const || e.guard.negated) m.flip(r, c);
  }
  return m;
}

Gf2Matrix BpPsm::m_player(std::size_t j, std::uint64_t y) const {
  const std::size_t dim = bp_.matrix_dim();
  Gf2Matrix m(dim);
  for (const BpEdge& e : bp_.edges()) {
    if (e.guard.is_const || e.guard.arg_index != j) continue;
    if (((y >> e.guard.bit_index) & 1) != 0) m.flip(e.from, e.to - 1);
  }
  return m;
}

BpPsm::Randomness BpPsm::derive(const crypto::Prg::Seed& seed) const {
  const std::size_t dim = bp_.matrix_dim();
  crypto::Prg root(seed);
  crypto::Prg lr = root.fork("bp-psm-lr");
  Randomness rnd{Gf2Matrix::random_unit_upper(dim, lr),
                 Gf2Matrix::random_unit_upper(dim, lr),
                 {}};
  crypto::Prg masks = root.fork("bp-psm-masks");
  Gf2Matrix acc(dim);
  for (std::size_t j = 0; j < m_; ++j) {
    rnd.masks.push_back(Gf2Matrix::random(dim, masks));
    acc += rnd.masks.back();
  }
  rnd.masks.push_back(acc);  // the extra player's balancing mask
  return rnd;
}

Bytes BpPsm::player_message(std::size_t j, std::uint64_t y,
                            const crypto::Prg::Seed& seed) const {
  if (j >= m_) throw InvalidArgument("BpPsm: player index out of range");
  const Randomness rnd = derive(seed);
  return (rnd.l * m_player(j, y) * rnd.r + rnd.masks[j]).to_bytes();
}

std::vector<Bytes> BpPsm::player_messages(std::size_t j, std::span<const std::uint64_t> ys,
                                          const crypto::Prg::Seed& seed) const {
  if (j >= m_) throw InvalidArgument("BpPsm: player index out of range");
  const Randomness rnd = derive(seed);
  std::vector<Bytes> out;
  out.reserve(ys.size());
  for (const std::uint64_t y : ys) {
    out.push_back((rnd.l * m_player(j, y) * rnd.r + rnd.masks[j]).to_bytes());
  }
  return out;
}

Bytes BpPsm::referee_extra(const crypto::Prg::Seed& seed) const {
  const Randomness rnd = derive(seed);
  return (rnd.l * m_const() * rnd.r + rnd.masks[m_]).to_bytes();
}

bool BpPsm::reconstruct(const std::vector<Bytes>& messages, const Bytes& extra) const {
  if (messages.size() != m_) throw InvalidArgument("BpPsm: wrong message count");
  const std::size_t dim = bp_.matrix_dim();
  Gf2Matrix acc = Gf2Matrix::from_bytes(dim, extra);
  for (const Bytes& msg : messages) acc += Gf2Matrix::from_bytes(dim, msg);
  return acc.determinant();
}

Gf2Matrix BpPsm::encode(const std::vector<std::uint64_t>& args,
                        const crypto::Prg::Seed& seed) const {
  if (args.size() != m_) throw InvalidArgument("BpPsm: wrong argument count");
  const Randomness rnd = derive(seed);
  Gf2Matrix m = m_const();
  for (std::size_t j = 0; j < m_; ++j) m += m_player(j, args[j]);
  return rnd.l * m * rnd.r;
}

}  // namespace spfe::psm
