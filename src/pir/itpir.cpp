#include "pir/itpir.h"

#include "common/error.h"
#include "common/secret.h"
#include "common/serialize.h"
#include "field/polynomial.h"
#include "field/reed_solomon.h"
#include "obs/obs.h"

namespace spfe::pir {
namespace {

std::size_t index_bits_for(std::size_t n) {
  std::size_t l = 0;
  while ((std::size_t(1) << l) < n) ++l;
  return std::max<std::size_t>(l, 1);
}

}  // namespace

std::uint64_t eval_selection_polynomial(const field::Fp64& f,
                                        std::span<const std::uint64_t> database,
                                        std::span<const std::uint64_t> point) {
  const std::size_t l = point.size();
  // Build per-bit selectors once, then the product over bits per index via
  // a prefix tree: selector(i) = prod_k (point[k] if i(k)=1 else 1-point[k]).
  // Iterative doubling keeps this O(n) multiplications total.
  std::vector<std::uint64_t> weights(1, f.one());
  for (std::size_t k = 0; k < l; ++k) {
    const std::uint64_t yk = point[k];
    const std::uint64_t not_yk = f.sub(f.one(), yk);
    std::vector<std::uint64_t> next(weights.size() * 2);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      next[2 * i] = f.mul(weights[i], not_yk);   // bit k = 0
      next[2 * i + 1] = f.mul(weights[i], yk);   // bit k = 1
    }
    weights = std::move(next);
  }
  // weights is indexed by the l-bit string (leftmost bit = MSB), matching i.
  std::uint64_t acc = f.zero();
  for (std::size_t i = 0; i < database.size(); ++i) {
    acc = f.add(acc, f.mul(weights[i], database[i]));
  }
  return acc;
}

PolyItPir::PolyItPir(field::Fp64 field, std::size_t n, std::size_t num_servers,
                     std::size_t threshold)
    : field_(field), n_(n), k_(num_servers), t_(threshold), l_(index_bits_for(n)) {
  if (n == 0) throw InvalidArgument("PolyItPir: empty database");
  if (threshold == 0) throw InvalidArgument("PolyItPir: threshold must be >= 1");
  if (num_servers <= threshold * l_) {
    throw InvalidArgument("PolyItPir: need more than t*log2(n) servers");
  }
  if (field.modulus() <= num_servers) {
    throw InvalidArgument("PolyItPir: field must be larger than the server count");
  }
}

std::size_t PolyItPir::min_servers(std::size_t n, std::size_t threshold) {
  return threshold * index_bits_for(n) + 1;
}

std::vector<Bytes> PolyItPir::make_queries(std::size_t /*secret*/ index, ClientState& state,
                                           crypto::Prg& prg) const {
  if (index >= n_) throw InvalidArgument("PolyItPir: index out of range");
  // Encode the index bits into field constants branch-free: the shift
  // amounts are public (bit position within the l-bit index), and the
  // 0/1 selection runs through ct_select so the encoding time does not
  // depend on which record the client wants.
  std::vector<std::uint64_t> constants(l_);
  // SPFE_CT_BEGIN(itpir_index_bits)
  for (std::size_t k = 0; k < l_; ++k) {
    const std::uint64_t bit = (static_cast<std::uint64_t>(index) >> (l_ - 1 - k)) & 1;
    constants[k] =
        common::ct_select_u64(common::ct_mask_from_bit(bit), field_.one(), field_.zero());
  }
  // SPFE_CT_END
  // Random degree-t curve gamma with gamma(0) = encoded index bits.
  std::vector<field::Polynomial<field::Fp64>> curve;
  curve.reserve(l_);
  for (std::size_t k = 0; k < l_; ++k) {
    curve.push_back(
        field::Polynomial<field::Fp64>::random_with_constant(field_, t_, constants[k], prg));
  }
  state.query_points.resize(k_);
  std::vector<Bytes> msgs;
  msgs.reserve(k_);
  for (std::size_t h = 0; h < k_; ++h) {
    const std::uint64_t alpha = field_.from_u64(h + 1);
    state.query_points[h] = alpha;
    Writer w;
    for (std::size_t k = 0; k < l_; ++k) w.u64(curve[k].eval(alpha));
    msgs.push_back(w.take());
  }
  return msgs;
}

Bytes PolyItPir::answer(std::size_t server_id, std::span<const std::uint64_t> database,
                        BytesView query, const crypto::Prg::Seed* spir_seed) const {
  if (database.size() != n_) throw InvalidArgument("PolyItPir: database size mismatch");
  if (server_id >= k_) throw InvalidArgument("PolyItPir: server id out of range");
  Reader r(query);
  std::vector<std::uint64_t> point(l_);
  for (auto& p : point) {
    p = r.u64();
    if (p >= field_.modulus()) throw ProtocolError("PolyItPir: query element out of field");
  }
  r.expect_done();

  std::uint64_t value = eval_selection_polynomial(field_, database, point);
  if (spir_seed != nullptr) {
    // Shared masking polynomial R of degree l*t with R(0) = 0: answers still
    // interpolate to the selected item, but reveal nothing else [25].
    crypto::Prg shared(*spir_seed);
    const auto mask = field::Polynomial<field::Fp64>::random_with_constant(
        field_, l_ * t_, field_.zero(), shared);
    value = field_.add(value, mask.eval(field_.from_u64(server_id + 1)));
  }
  Writer w;
  w.u64(value);
  return w.take();
}

std::uint64_t PolyItPir::decode(const std::vector<Bytes>& answers,
                                const ClientState& state) const {
  if (answers.size() != k_ || state.query_points.size() != k_) {
    throw InvalidArgument("PolyItPir: need one answer per server");
  }
  std::vector<std::uint64_t> xs(k_), ys(k_);
  for (std::size_t h = 0; h < k_; ++h) {
    Reader r(answers[h]);
    xs[h] = state.query_points[h];
    ys[h] = r.u64();
    r.expect_done();
    if (ys[h] >= field_.modulus()) throw ProtocolError("PolyItPir: answer out of field");
  }
  return field::interpolate_at(field_, xs, ys, field_.zero());
}

std::uint64_t PolyItPir::decode_with_errors(const std::vector<Bytes>& answers,
                                            const ClientState& state,
                                            std::size_t max_errors) const {
  if (answers.size() != k_ || state.query_points.size() != k_) {
    throw InvalidArgument("PolyItPir: need one answer per server");
  }
  std::vector<std::uint64_t> xs(k_), ys(k_);
  for (std::size_t h = 0; h < k_; ++h) {
    Reader r(answers[h]);
    xs[h] = state.query_points[h];
    ys[h] = r.u64();
    r.expect_done();
    if (ys[h] >= field_.modulus()) throw ProtocolError("PolyItPir: answer out of field");
  }
  const auto result =
      field::berlekamp_welch(field_, xs, ys, l_ * t_, max_errors, field_.zero());
  if (!result.has_value()) {
    throw ProtocolError("PolyItPir: more corrupted answers than the error budget");
  }
  return *result;
}

std::uint64_t PolyItPir::run(net::StarNetwork& net, std::span<const std::uint64_t> database,
                             std::size_t index,
                             const std::optional<crypto::Prg::Seed>& spir_seed,
                             crypto::Prg& prg) const {
  if (net.num_servers() != k_) throw InvalidArgument("PolyItPir: network has wrong server count");
  SPFE_OBS_SPAN("itpir.run");
  ClientState state;
  const auto queries = make_queries(index, state, prg);
  for (std::size_t h = 0; h < k_; ++h) net.client_send(h, queries[h]);
  const crypto::Prg::Seed* seed = spir_seed ? &*spir_seed : nullptr;
  for (std::size_t h = 0; h < k_; ++h) {
    net.server_send(h, answer(h, database, net.server_receive(h), seed));
  }
  std::vector<Bytes> answers;
  answers.reserve(k_);
  for (std::size_t h = 0; h < k_; ++h) answers.push_back(net.client_receive(h));
  return decode(answers, state);
}

net::RobustResult PolyItPir::run_robust(net::StarNetwork& net,
                                        std::span<const std::uint64_t> database,
                                        std::size_t index,
                                        const std::optional<crypto::Prg::Seed>& spir_seed,
                                        crypto::Prg& prg, const net::RobustConfig& cfg) const {
  if (net.num_servers() != k_) throw InvalidArgument("PolyItPir: network has wrong server count");
  SPFE_OBS_SPAN("itpir.run_robust");
  auto [value, report] = net::run_robust_star(
      field_, net, l_ * t_, cfg,
      [&](std::size_t /*attempt*/, std::vector<std::uint64_t>& abscissae) {
        // Fresh curve randomness from `prg` on every attempt: query points
        // are never reused, so retries leak nothing about the index.
        ClientState state;
        auto queries = make_queries(index, state, prg);
        abscissae = std::move(state.query_points);
        return queries;
      },
      [&](std::size_t s, std::size_t attempt, Bytes query) {
        // All servers of one attempt must share the mask seed; retries use a
        // fresh one so masks are never reused across query curves.
        crypto::Prg::Seed derived;
        const crypto::Prg::Seed* seed = nullptr;
        if (spir_seed.has_value()) {
          if (attempt == 0) {
            seed = &*spir_seed;
          } else {
            derived = crypto::Prg(*spir_seed).fork_seed("robust-retry-" +
                                                        std::to_string(attempt));
            seed = &derived;
          }
        }
        return answer(s, database, query, seed);
      },
      [&](const Bytes& ans) {
        Reader r(ans);
        const std::uint64_t y = r.u64();
        r.expect_done();
        if (y >= field_.modulus()) throw ProtocolError("PolyItPir: answer out of field");
        return y;
      });
  return net::RobustResult{value, std::move(report)};
}

TwoServerXorPir::TwoServerXorPir(std::size_t n, std::size_t item_bytes)
    : n_(n), item_bytes_(item_bytes) {
  if (n == 0 || item_bytes == 0) throw InvalidArgument("TwoServerXorPir: empty geometry");
  rows_ = 1;
  while (rows_ * rows_ < n) ++rows_;
  cols_ = (n + rows_ - 1) / rows_;
}

std::pair<Bytes, Bytes> TwoServerXorPir::make_queries(std::size_t /*secret*/ index,
                                                      ClientState& state,
                                                      crypto::Prg& prg) const {
  if (index >= n_) throw InvalidArgument("TwoServerXorPir: index out of range");
  Bytes s0((rows_ + 7) / 8);
  prg.fill(s0.data(), s0.size());
  Bytes s1 = s0;
  // Split the index into its (row, col) grid position and flip the row bit
  // of the second share branch-free: the div/mod runs through ct_divmod and
  // the flip touches every byte of the share with a mask, so neither the
  // access pattern nor the time reveals the row.
  // SPFE_CT_BEGIN(xorpir_make_queries)
  const common::CtDivmod dm = common::ct_divmod_u64(index, cols_);
  state.row = static_cast<std::size_t>(dm.quotient);
  state.col = static_cast<std::size_t>(dm.remainder);
  for (std::size_t b = 0; b < s1.size(); ++b) {
    std::uint8_t flip = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      flip |= static_cast<std::uint8_t>((common::ct_eq_u64(b * 8 + i, dm.quotient) & 1) << i);
    }
    s1[b] ^= flip;
  }
  // SPFE_CT_END
  return {std::move(s0), std::move(s1)};
}

Bytes TwoServerXorPir::answer(std::span<const Bytes> database, BytesView query) const {
  if (database.size() != n_) throw InvalidArgument("TwoServerXorPir: database size mismatch");
  if (query.size() != (rows_ + 7) / 8) throw ProtocolError("TwoServerXorPir: bad query size");
  Bytes acc(cols_ * item_bytes_, 0);
  for (std::size_t row = 0; row < rows_; ++row) {
    if (((query[row / 8] >> (row % 8)) & 1) == 0) continue;
    for (std::size_t col = 0; col < cols_; ++col) {
      const std::size_t idx = row * cols_ + col;
      if (idx >= n_) break;
      const Bytes& item = database[idx];
      if (item.size() != item_bytes_) {
        throw InvalidArgument("TwoServerXorPir: item size mismatch");
      }
      for (std::size_t b = 0; b < item_bytes_; ++b) acc[col * item_bytes_ + b] ^= item[b];
    }
  }
  return acc;
}

Bytes TwoServerXorPir::decode(const Bytes& answer0, const Bytes& answer1,
                              const ClientState& state) const {
  if (answer0.size() != cols_ * item_bytes_ || answer1.size() != answer0.size()) {
    throw ProtocolError("TwoServerXorPir: bad answer size");
  }
  Bytes out(item_bytes_);
  for (std::size_t b = 0; b < item_bytes_; ++b) {
    out[b] = static_cast<std::uint8_t>(answer0[state.col * item_bytes_ + b] ^
                                       answer1[state.col * item_bytes_ + b]);
  }
  return out;
}

}  // namespace spfe::pir
