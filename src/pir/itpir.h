// Information-theoretic multi-server PIR / SPIR.
//
// Two schemes:
//
// 1. PolyItPir — t-private k-server PIR by instance hiding (Beaver–
//    Feigenbaum [5], the same machinery as §3.1 with f = identity). The
//    database is the multilinear selection polynomial
//        P0(y_1..y_l) = sum_i x_i * prod_k (y_k if i(k)=1 else 1-y_k),
//    of total degree l = ceil(log2 n). The client sends each server one
//    point of a random degree-t curve through the encoded index and
//    interpolates the answers; k must exceed l*t. For *symmetric* privacy
//    (SPIR, [25]) the servers add a shared random degree-(l*t) polynomial R
//    with R(0) = 0, so the client learns only the selected item. The shared
//    randomness comes from a common PRG seed (the paper's "common random
//    input ... regarded as an extension of the database").
//
// 2. TwoServerXorPir — the classic sqrt(n) 2-server scheme: the database is
//    arranged as a matrix; the client sends one server a uniform row subset
//    S and the other S xor {row(i)}; each returns the XOR of its rows. One
//    server's view is a uniform subset — perfect 1-privacy. Bench ablation
//    against the polynomial scheme.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "crypto/prg.h"
#include "field/fp64.h"
#include "net/network.h"
#include "net/robust.h"

namespace spfe::pir {

class PolyItPir {
 public:
  // Items are elements of `field`; k servers, privacy threshold t.
  // Requires k > t * ceil(log2 n) and field order > k.
  PolyItPir(field::Fp64 field, std::size_t n, std::size_t num_servers, std::size_t threshold);

  static std::size_t min_servers(std::size_t n, std::size_t threshold);

  std::size_t n() const { return n_; }
  std::size_t num_servers() const { return k_; }
  std::size_t threshold() const { return t_; }
  std::size_t index_bits() const { return l_; }
  const field::Fp64& field() const { return field_; }

  struct ClientState {
    std::vector<std::uint64_t> query_points;  // abscissa per server (1..k)
  };

  // Client: one message per server (l field elements — the curve point).
  std::vector<Bytes> make_queries(std::size_t index, ClientState& state,
                                  crypto::Prg& prg) const;

  // Server `server_id` (0-based): evaluates P0 at the queried point.
  // If `spir_seed` is non-null, adds the shared masking polynomial R(alpha_h)
  // (symmetric privacy); all servers must use the same seed per query.
  Bytes answer(std::size_t server_id, std::span<const std::uint64_t> database,
               BytesView query, const crypto::Prg::Seed* spir_seed) const;

  // Client: interpolates the k answers at 0.
  std::uint64_t decode(const std::vector<Bytes>& answers, const ClientState& state) const;

  // Fault-tolerant decode: recovers the item even if up to `max_errors`
  // answers are wrong, provided k >= l*t + 1 + 2*max_errors. Throws
  // ProtocolError when the answers are beyond that budget.
  std::uint64_t decode_with_errors(const std::vector<Bytes>& answers, const ClientState& state,
                                   std::size_t max_errors) const;

  // Full exchange over a k-server network (client drives all roles).
  std::uint64_t run(net::StarNetwork& net, std::span<const std::uint64_t> database,
                    std::size_t index, const std::optional<crypto::Prg::Seed>& spir_seed,
                    crypto::Prg& prg) const;

  // Fault-tolerant exchange: tolerates crashed/Byzantine servers up to the
  // provisioned redundancy (see net/robust.h), retrying with fresh
  // randomness before throwing net::RobustProtocolError.
  net::RobustResult run_robust(net::StarNetwork& net, std::span<const std::uint64_t> database,
                               std::size_t index,
                               const std::optional<crypto::Prg::Seed>& spir_seed,
                               crypto::Prg& prg, const net::RobustConfig& cfg = {}) const;

  // Upstream bytes per server for one query (for analytic cross-checks).
  std::size_t query_bytes() const { return l_ * 8; }

 private:
  field::Fp64 field_;
  std::size_t n_;
  std::size_t k_;
  std::size_t t_;
  std::size_t l_;  // index bits
};

// Evaluates the multilinear selection polynomial P0 at an arbitrary field
// point (shared with the §3.1 SPFE engine). `point` holds l field elements,
// most significant index bit first (the paper's "k-th leftmost bit").
std::uint64_t eval_selection_polynomial(const field::Fp64& f,
                                        std::span<const std::uint64_t> database,
                                        std::span<const std::uint64_t> point);

class TwoServerXorPir {
 public:
  // Byte-string items of fixed length `item_bytes`; n items.
  TwoServerXorPir(std::size_t n, std::size_t item_bytes);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  struct ClientState {
    std::size_t row = 0;
    std::size_t col = 0;
  };

  // Returns the two query messages (row-subset bitmaps).
  std::pair<Bytes, Bytes> make_queries(std::size_t index, ClientState& state,
                                       crypto::Prg& prg) const;

  // XOR of the selected rows (cols * item_bytes bytes).
  Bytes answer(std::span<const Bytes> database, BytesView query) const;

  Bytes decode(const Bytes& answer0, const Bytes& answer1, const ClientState& state) const;

 private:
  std::size_t n_;
  std::size_t item_bytes_;
  std::size_t rows_;
  std::size_t cols_;
};

}  // namespace spfe::pir
