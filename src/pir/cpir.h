// Single-server computational PIR from additively homomorphic encryption
// (Kushilevitz–Ostrovsky [32] style, instantiated with Paillier).
//
// The client sends, per recursion dimension, an encrypted one-hot selector;
// the server folds the database dimension-by-dimension:
//   level 0: E(x_i0) = prod_r E(sel0[r])^{x_r}  (exponents are *data*, small)
//   level j>0: previous-level ciphertexts are split into chunks < N and the
//   fold is repeated, tripling the ciphertext count per level.
// depth 1 is the linear baseline (n ciphertexts up), depth 2 gives the
// classic O(sqrt n) communication, depth 3 O(n^{1/3}) with a 9x response
// expansion — bench_spir ablates the trade-off.
//
// Database secrecy: a semi-honest client learns exactly one item. A
// malicious client can submit a non-one-hot selector and learn one *linear
// combination* of items — which is precisely one function of <= m database
// locations, i.e. the paper's weak-security class. This is documented
// behaviour (tested in tests/pir_test.cpp), matching how §3.3 consumes SPIR.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "bignum/bigint.h"
#include "common/bytes.h"
#include "crypto/prg.h"
#include "he/paillier.h"
#include "he/precomp.h"

namespace spfe::pir {

class PaillierPir {
 public:
  // `depth` recursion dimensions (1..4); dims are balanced ~ n^(1/depth).
  PaillierPir(he::PaillierPublicKey pk, std::size_t n, std::size_t depth);

  std::size_t n() const { return n_; }
  std::size_t depth() const { return dims_.size(); }
  const std::vector<std::size_t>& dims() const { return dims_; }
  const he::PaillierPublicKey& public_key() const { return pk_; }

  // Server fold kernel. kMultiExp (default) evaluates each recursion level
  // as one simultaneous multi-exponentiation with shared window tables;
  // kNaive folds per-row mul_scalar/add exactly like the original serial
  // loop. Both consume the PRG identically and produce byte-identical
  // answers — kNaive is kept as the regression/ablation baseline.
  enum class FoldKernel { kMultiExp, kNaive };
  void set_fold_kernel(FoldKernel k) { fold_kernel_ = k; }
  FoldKernel fold_kernel() const { return fold_kernel_; }

  struct ClientState {
    std::vector<std::size_t> positions;  // per-dimension coordinate
  };

  // Client: encrypted selector per dimension (sum(dims) ciphertexts).
  Bytes make_query(std::size_t index, ClientState& state, crypto::Prg& prg) const;
  // Pooled client query: encryption factors come from the precomputation
  // pool (he/precomp.h). Byte-identical to the Prg overload when the pool's
  // stream is seeded with the same seed, whatever the pool's warmth. The
  // pool must hold factors for this PIR's public key.
  Bytes make_query(std::size_t index, ClientState& state,
                   he::PaillierRandomnessPool& pool) const;

  // Server: database of u64 values (must each be < N).
  Bytes answer_u64(std::span<const std::uint64_t> database, BytesView query,
                   crypto::Prg& prg) const;
  // Server: database of equal-length byte items (arbitrary length; chunked).
  Bytes answer_bytes(std::span<const Bytes> database, std::size_t item_bytes, BytesView query,
                     crypto::Prg& prg) const;

  // Client: recursive decryption.
  std::uint64_t decode_u64(const he::PaillierPrivateKey& sk, BytesView answer) const;
  Bytes decode_bytes(const he::PaillierPrivateKey& sk, std::size_t item_bytes,
                     BytesView answer) const;

 private:
  // Shared query construction; `encrypt` supplies E(bit) ciphertexts (from
  // a Prg or a randomness pool, both in stream order).
  Bytes make_query_impl(std::size_t index, ClientState& state,
                        const std::function<bignum::BigInt(const bignum::BigInt&)>& encrypt) const;
  // Core fold over a matrix of plaintext chunks per item.
  Bytes answer_chunks(std::vector<std::vector<bignum::BigInt>> items, BytesView query,
                      crypto::Prg& prg) const;
  std::vector<bignum::BigInt> decode_chunks(const he::PaillierPrivateKey& sk, BytesView answer,
                                            std::size_t level0_chunks) const;

  std::size_t chunk_bytes() const;  // plaintext chunk size for recursion

  he::PaillierPublicKey pk_;
  std::size_t n_;
  std::vector<std::size_t> dims_;
  FoldKernel fold_kernel_ = FoldKernel::kMultiExp;
};

}  // namespace spfe::pir
