#include "pir/batch_pir.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/serialize.h"

namespace spfe::pir {
namespace {

// splitmix64 — a public-domain mixer; deterministic across both parties.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<std::size_t> CuckooParams::buckets_of(std::size_t index) const {
  std::vector<std::size_t> out;
  out.reserve(kNumHashes);
  for (std::size_t h = 0; h < kNumHashes; ++h) {
    const std::size_t b = static_cast<std::size_t>(
        mix64(hash_seed ^ mix64(index * kNumHashes + h)) % num_buckets);
    if (std::find(out.begin(), out.end(), b) == out.end()) out.push_back(b);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<std::size_t>> CuckooParams::all_bucket_contents() const {
  std::vector<std::vector<std::size_t>> out(num_buckets);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t b : buckets_of(i)) out[b].push_back(i);
  }
  return out;  // each ascending by construction
}

std::vector<std::size_t> CuckooParams::bucket_contents(std::size_t b) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n; ++i) {
    const auto bs = buckets_of(i);
    if (std::find(bs.begin(), bs.end(), b) != bs.end()) out.push_back(i);
  }
  return out;  // ascending by construction
}

std::size_t CuckooParams::max_load() const {
  std::size_t cap = 1;
  for (const auto& bucket : all_bucket_contents()) cap = std::max(cap, bucket.size());
  return cap;
}

std::size_t CuckooParams::bucket_capacity() const {
  // Mean load mu = kNumHashes * n / B; allow a generous balls-into-bins
  // deviation so that rejection (reseeding) is rare.
  const double mu =
      static_cast<double>(kNumHashes) * static_cast<double>(n) / static_cast<double>(num_buckets);
  const double slack = 4.0 * std::sqrt(mu * (1.0 + std::log(static_cast<double>(num_buckets))));
  return static_cast<std::size_t>(mu + slack) + 8;
}

CuckooBatchPir::CuckooBatchPir(he::PaillierPublicKey pk, std::size_t n, std::size_t m,
                               std::size_t depth)
    : pk_(std::move(pk)), m_(m), depth_(depth) {
  if (n == 0 || m == 0) throw InvalidArgument("CuckooBatchPir: empty batch or database");
  params_.n = n;
  params_.num_buckets = std::max<std::size_t>(2 * m, 4);
}

std::vector<std::size_t> CuckooBatchPir::place(const CuckooParams& params,
                                               const std::vector<std::size_t>& indices,
                                               crypto::Prg& prg) {
  // Random-walk cuckoo insertion of query slots into buckets.
  std::vector<std::optional<std::size_t>> owner(params.num_buckets);  // bucket -> slot
  std::vector<std::size_t> slot_bucket(indices.size(), SIZE_MAX);
  for (std::size_t j = 0; j < indices.size(); ++j) {
    std::size_t slot = j;
    for (std::size_t steps = 0; steps < 64 * (indices.size() + 1); ++steps) {
      const auto candidates = params.buckets_of(indices[slot]);
      // Prefer a free candidate bucket.
      bool placed = false;
      for (const std::size_t b : candidates) {
        if (!owner[b].has_value()) {
          owner[b] = slot;
          slot_bucket[slot] = b;
          placed = true;
          break;
        }
      }
      if (placed) break;
      // Evict a random occupant.
      const std::size_t b = candidates[prg.uniform(candidates.size())];
      const std::size_t evicted = *owner[b];
      owner[b] = slot;
      slot_bucket[slot] = b;
      slot_bucket[evicted] = SIZE_MAX;
      slot = evicted;
      if (steps + 1 == 64 * (indices.size() + 1)) {
        throw ProtocolError("CuckooBatchPir: placement failed; re-seed and retry");
      }
    }
  }
  return slot_bucket;
}

Bytes CuckooBatchPir::make_query(const std::vector<std::size_t>& indices, ClientState& state,
                                 crypto::Prg& prg) const {
  return make_query(indices, state, prg, nullptr);
}

Bytes CuckooBatchPir::make_query(const std::vector<std::size_t>& indices, ClientState& state,
                                 crypto::Prg& prg, he::PaillierRandomnessPool* pool) const {
  if (pool != nullptr && !(pool->public_key() == pk_)) pool = nullptr;
  if (indices.size() != m_) throw InvalidArgument("CuckooBatchPir: wrong batch size");
  for (const std::size_t i : indices) {
    if (i >= params_.n) throw InvalidArgument("CuckooBatchPir: index out of range");
  }
  state.params = params_;
  // Retry with fresh public seeds until placement succeeds *and* the seed's
  // max bucket load fits the deterministic capacity bound (both w.h.p. on
  // the first try at B = 2m with 3 hashes).
  for (int attempt = 0;; ++attempt) {
    state.params.hash_seed = prg.u64();
    try {
      if (state.params.max_load() > state.params.bucket_capacity()) {
        throw ProtocolError("CuckooBatchPir: bucket overflow; re-seed");
      }
      state.bucket_for_query = place(state.params, indices, prg);
      break;
    } catch (const ProtocolError&) {
      if (attempt >= 16) throw;
    }
  }

  const std::size_t cap = state.params.bucket_capacity();
  const PaillierPir bucket_pir(pk_, cap, depth_);

  // Which query slot does each bucket serve (if any)?
  std::vector<std::optional<std::size_t>> bucket_slot(state.params.num_buckets);
  for (std::size_t j = 0; j < m_; ++j) bucket_slot[state.bucket_for_query[j]] = j;

  state.pir_states.assign(state.params.num_buckets, {});
  Writer w;
  w.u64(state.params.hash_seed);
  for (std::size_t b = 0; b < state.params.num_buckets; ++b) {
    std::size_t position = 0;  // dummy queries fetch slot 0
    if (bucket_slot[b].has_value()) {
      const std::size_t want = indices[*bucket_slot[b]];
      const auto contents = state.params.bucket_contents(b);
      const auto it = std::find(contents.begin(), contents.end(), want);
      if (it == contents.end()) throw ProtocolError("CuckooBatchPir: placement inconsistent");
      position = static_cast<std::size_t>(it - contents.begin());
    }
    w.bytes(pool != nullptr ? bucket_pir.make_query(position, state.pir_states[b], *pool)
                            : bucket_pir.make_query(position, state.pir_states[b], prg));
  }
  return w.take();
}

Bytes CuckooBatchPir::answer_u64(std::span<const std::uint64_t> database, BytesView query,
                                 crypto::Prg& prg) const {
  if (database.size() != params_.n) {
    throw InvalidArgument("CuckooBatchPir: database size mismatch");
  }
  Reader r(query);
  CuckooParams params = params_;
  params.hash_seed = r.u64();
  const std::size_t cap = params.bucket_capacity();
  const PaillierPir bucket_pir(pk_, cap, depth_);

  const auto all_contents = params.all_bucket_contents();
  Writer w;
  for (std::size_t b = 0; b < params.num_buckets; ++b) {
    const Bytes q = r.bytes();
    std::vector<std::uint64_t> bucket(cap, 0);
    const auto& contents = all_contents[b];
    if (contents.size() > cap) {
      throw ProtocolError("CuckooBatchPir: seed exceeds capacity bound");
    }
    for (std::size_t pos = 0; pos < contents.size(); ++pos) {
      bucket[pos] = database[contents[pos]];
    }
    w.bytes(bucket_pir.answer_u64(bucket, q, prg));
  }
  r.expect_done();
  return w.take();
}

Bytes CuckooBatchPir::answer_bytes(std::span<const Bytes> database, std::size_t item_bytes,
                                   BytesView query, crypto::Prg& prg) const {
  if (database.size() != params_.n) {
    throw InvalidArgument("CuckooBatchPir: database size mismatch");
  }
  Reader r(query);
  CuckooParams params = params_;
  params.hash_seed = r.u64();
  const std::size_t cap = params.bucket_capacity();
  const PaillierPir bucket_pir(pk_, cap, depth_);

  const auto all_contents = params.all_bucket_contents();
  const Bytes zero_item(item_bytes, 0);
  Writer w;
  for (std::size_t b = 0; b < params.num_buckets; ++b) {
    const Bytes q = r.bytes();
    std::vector<Bytes> bucket(cap, zero_item);
    const auto& contents = all_contents[b];
    if (contents.size() > cap) {
      throw ProtocolError("CuckooBatchPir: seed exceeds capacity bound");
    }
    for (std::size_t pos = 0; pos < contents.size(); ++pos) {
      bucket[pos] = database[contents[pos]];
    }
    w.bytes(bucket_pir.answer_bytes(bucket, item_bytes, q, prg));
  }
  r.expect_done();
  return w.take();
}

std::vector<Bytes> CuckooBatchPir::decode_bytes(const he::PaillierPrivateKey& sk,
                                                std::size_t item_bytes, BytesView answer,
                                                const ClientState& state) const {
  const std::size_t cap = state.params.bucket_capacity();
  const PaillierPir bucket_pir(pk_, cap, depth_);
  Reader r(answer);
  std::vector<Bytes> per_bucket(state.params.num_buckets);
  for (std::size_t b = 0; b < state.params.num_buckets; ++b) {
    per_bucket[b] = bucket_pir.decode_bytes(sk, item_bytes, r.bytes());
  }
  r.expect_done();
  std::vector<Bytes> out(m_);
  for (std::size_t j = 0; j < m_; ++j) out[j] = per_bucket[state.bucket_for_query[j]];
  return out;
}

std::vector<std::uint64_t> CuckooBatchPir::decode_u64(const he::PaillierPrivateKey& sk,
                                                      BytesView answer,
                                                      const ClientState& state) const {
  const std::size_t cap = state.params.bucket_capacity();
  const PaillierPir bucket_pir(pk_, cap, depth_);
  Reader r(answer);
  std::vector<std::uint64_t> per_bucket(state.params.num_buckets);
  for (std::size_t b = 0; b < state.params.num_buckets; ++b) {
    per_bucket[b] = bucket_pir.decode_u64(sk, r.bytes());
  }
  r.expect_done();
  std::vector<std::uint64_t> out(m_);
  for (std::size_t j = 0; j < m_; ++j) out[j] = per_bucket[state.bucket_for_query[j]];
  return out;
}

}  // namespace spfe::pir
